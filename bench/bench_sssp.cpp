// Corollary 1.5: approximate SSSP in Õ((bD + c)/beta) rounds and Õ(m/beta)
// messages with approximation L^{O(log log n)/log(1/beta)}.
//
// The beta knob trades cost for stretch: the harness sweeps beta and
// reports measured stretch against Dijkstra together with rounds/messages.
// The corollary's shape: smaller beta => more rounds and messages (the
// 1/beta factor) and tighter stretch.
#include "bench/common.hpp"

#include "src/apps/sssp.hpp"

namespace pw::bench {
namespace {

void run() {
  Rng rng(47);
  Table table({"graph", "beta", "scales", "max stretch", "mean stretch",
               "relax rnds", "relax msgs", "total rnds", "total msgs"});

  auto bench_graph = [&](const std::string& name, const graph::Graph& g,
                         int source) {
    const auto exact = graph::dijkstra(g, source);
    for (double beta : {0.5, 0.25, 0.1}) {
      sim::Engine eng(g);
      core::PaSolverConfig cfg;
      cfg.seed = 41;
      const auto res = apps::approx_sssp(eng, source, beta, cfg);
      const auto s = apps::measure_stretch(exact, res.dist);
      table.add_row({name, fd(beta), fm(static_cast<std::uint64_t>(res.scales)),
                     fd(s.max_stretch), fd(s.mean_stretch),
                     fm(res.relax_stats.rounds), fm(res.relax_stats.messages),
                     fm(res.stats.rounds), fm(res.stats.messages)});
    }
  };

  // High-hop-count shortest paths are where the approximation bites: a long
  // weighted path (hop diameter ~ n) and a moderate grid.
  bench_graph("path(n=512,w<=4)",
              graph::gen::with_random_weights(graph::gen::path(512), 4, rng),
              0);
  bench_graph("grid(16x16,w<=20)",
              graph::gen::with_random_weights(graph::gen::grid(16, 16), 20, rng),
              0);
  bench_graph("GNM(n=256,w<=50)",
              graph::gen::with_random_weights(
                  graph::gen::random_connected(256, 640, rng), 50, rng),
              0);

  table.print(
      "Corollary 1.5 — approximate SSSP: smaller beta buys stretch (the "
      "approximation column) at the 1/beta relaxation cost (relax columns); "
      "totals include the per-scale PA component machinery, which dominates "
      "at laptop scale (see EXPERIMENTS.md)");
}

}  // namespace
}  // namespace pw::bench

int main() {
  pw::bench::run();
  return 0;
}
