// Chaos bench (DESIGN.md §9): what network faults cost a protocol that
// survives them.
//
// The harness runs the ARQ reliable flood (src/apps/arq.hpp) over a
// drop-probability × thread-count sweep and reports the degradation curve:
// rounds and retransmissions as a function of loss, with drop_prob = 0 as
// the fault-free baseline (where the flood provably never retransmits).
// Every row re-validates completion — a lossy network may slow the protocol
// down, never break it — and the accounting columns are thread-count
// invariant (same seed -> same faults -> same trace, §9), so only wall_ns
// moves across the thread sweep.
#include "bench/common.hpp"
#include "src/apps/arq.hpp"

namespace pw::bench {
namespace {

constexpr std::uint64_t kToken = 0x70ce;

void run() {
  Rng rng(91);
  Table table({"graph", "n", "drop", "thr", "rounds", "msgs", "data sends",
               "retransmits", "dropped", "ms"});
  JsonEmitter json("fault_degradation");
  const int host_threads = detected_cores();

  const double drops[] = {0.0, 0.05, 0.2};
  auto bench_instance = [&](const Instance& inst) {
    for (const double drop : drops) {
      for (const int threads : thread_sweep(inst.g.n())) {
        sim::FaultPolicy faults;
        faults.seed = 1913;
        faults.drop_prob = drop;
        const sim::ExecutionPolicy policy{threads};
        sim::Engine eng(inst.g, policy, faults);
        const auto t0 = now_ns();
        const auto res = apps::arq_flood(eng, 0, kToken);
        const auto wall_ns = now_ns() - t0;
        apps::validate_arq(inst.g, res, kToken);
        const sim::FaultStats fs = eng.fault_stats();

        table.add_row({inst.name, fm(static_cast<std::uint64_t>(inst.g.n())),
                       fd(drop), fm(static_cast<std::uint64_t>(threads)),
                       fm(res.stats.rounds), fm(res.stats.messages),
                       fm(res.data_sends), fm(res.retransmissions),
                       fm(fs.messages_dropped),
                       fd(static_cast<double>(wall_ns) * 1e-6, 3)});
        json.add_row(
            {{"workload", "arq_flood"},
             {"graph", inst.name},
             {"n", inst.g.n()},
             {"drop_prob", drop},
             {"threads", threads},
             {"pipeline", eng.pipelined() ? 1 : 0},
             {"host_threads", host_threads},
             {"completed", res.completed ? 1 : 0},
             {"rounds", res.stats.rounds},
             {"messages", res.stats.messages},
             {"data_sends", res.data_sends},
             {"retransmissions", res.retransmissions},
             {"messages_dropped", fs.messages_dropped},
             {"wall_ns", wall_ns},
             {"ns_per_message",
              static_cast<double>(wall_ns) /
                  static_cast<double>(
                      std::max<std::uint64_t>(1, res.stats.messages))}});
      }
    }
  };

  bench_instance(general_instance(768, rng));
  bench_instance(planar_instance(24));

  table.print(
      "Chaos degradation (§9) — ARQ reliable flood under the deterministic "
      "fault plane: loss buys retransmissions and rounds, never wrong "
      "answers");
  json.write("BENCH_fault.json");
}

}  // namespace
}  // namespace pw::bench

int main() {
  pw::bench::run();
  return 0;
}
