// Figure 5 / Lemma 6.6 (Algorithm 7): path shortcut doubling.
//
// The figure illustrates the doubling schedule; the lemma claims
// O(c log D + D) rounds and O(c log D) output congestion on a length-D
// path. The harness sweeps path length and congestion cap with one claiming
// part per position (the densest input) and reports the exact pipelined
// schedule cost and the max edge congestion against the lemma's envelopes.
#include "bench/common.hpp"

#include "src/core/detshortcut.hpp"

namespace pw::bench {
namespace {

void run() {
  Table table({"path len L", "cap c", "rounds", "c*logL + 2L env", "max edge",
               "2c*logL env", "sink set", "messages"});
  for (int len : {64, 256, 1024}) {
    for (int cap : {1, 4, 16}) {
      std::vector<std::vector<int>> seed(len);
      for (int k = 0; k < len; ++k) seed[k] = {k};
      const auto r = core::path_shortcut_double(seed, cap);
      std::size_t max_edge = 0;
      for (const auto& e : r.claimed) max_edge = std::max(max_edge, e.size());
      const double logL = std::log2(len);
      table.add_row(
          {fm(static_cast<std::uint64_t>(len)), fm(static_cast<std::uint64_t>(cap)),
           fm(r.rounds), fd(cap * logL + 2.0 * len, 0),
           fm(static_cast<std::uint64_t>(max_edge)), fd(2 * cap * logL, 0),
           fm(r.sink_set.size()), fm(r.messages)});
    }
  }
  table.print(
      "Figure 5 / Lemma 6.6 — Algorithm 7 on a path with one claiming part "
      "per position: measured schedule vs the lemma's envelopes");
}

}  // namespace
}  // namespace pw::bench

int main() {
  pw::bench::run();
  return 0;
}
