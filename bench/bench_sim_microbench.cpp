// Engine micro-benchmarks (google-benchmark): the cost of simulating one
// CONGEST round/message, so the wall-clock of every other harness can be
// related to simulated work. Not a paper artifact; a health check for the
// substrate.
#include <benchmark/benchmark.h>

#include "src/graph/generators.hpp"
#include "src/sim/engine.hpp"
#include "src/tree/bfs.hpp"
#include "src/tree/treeops.hpp"
#include "src/util/rng.hpp"

namespace pw {
namespace {

void BM_FloodRound(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(1);
  const auto g = graph::gen::random_connected(n, 3 * n, rng);
  for (auto _ : state) {
    sim::Engine eng(g);
    eng.wake(0);
    std::vector<char> seen(g.n(), 0);
    seen[0] = 1;
    eng.run([&](int v) {
      bool fresh = v == 0 && eng.inbox(v).empty();
      if (!seen[v]) {
        seen[v] = 1;
        fresh = true;
      }
      if (!fresh) return;
      for (int p = 0; p < g.degree(v); ++p) eng.send(v, p, sim::Msg{});
    });
    benchmark::DoNotOptimize(eng.messages());
    state.counters["msgs"] = static_cast<double>(eng.messages());
  }
  state.SetItemsProcessed(state.iterations() * 2 * g.m());
}
BENCHMARK(BM_FloodRound)->Arg(1024)->Arg(8192);

void BM_BfsTree(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(2);
  const auto g = graph::gen::random_connected(n, 3 * n, rng);
  for (auto _ : state) {
    sim::Engine eng(g);
    const auto t = tree::build_bfs_tree(eng, 0);
    benchmark::DoNotOptimize(t.height());
  }
  state.SetItemsProcessed(state.iterations() * g.n());
}
BENCHMARK(BM_BfsTree)->Arg(1024)->Arg(8192);

void BM_TreeConvergecast(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Rng rng(3);
  const auto g = graph::gen::random_connected(n, 2 * n, rng);
  sim::Engine setup(g);
  const auto t = tree::build_bfs_tree(setup, 0);
  std::vector<std::uint64_t> values(g.n(), 1);
  for (auto _ : state) {
    sim::Engine eng(g);
    const auto sums = tree::forest_convergecast(eng, t, agg::sum(), values);
    benchmark::DoNotOptimize(sums[0]);
  }
  state.SetItemsProcessed(state.iterations() * g.n());
}
BENCHMARK(BM_TreeConvergecast)->Arg(1024)->Arg(8192);

}  // namespace
}  // namespace pw

BENCHMARK_MAIN();
