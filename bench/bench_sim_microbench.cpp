// Engine micro-benchmarks: the cost of simulating one CONGEST round/message,
// so the wall-clock of every other harness can be related to simulated work.
// Not a paper artifact; a health check for the substrate — and the anchor of
// the repo's perf trajectory: results land in BENCH_engine.json so regressions
// are machine-checkable across PRs.
//
// Workloads:
//   flood_steady  repeated flood phases on one engine — the steady-state cost
//                 of begin_round/send/end_round with all buffers warm. This is
//                 the number the flat-arena engine is judged on.
//   flood_cold    one engine per flood phase — includes per-engine setup.
//   skewed_flood  repeated skewed-activity phases (only the top n/skew ids
//                 send, re-waking every round) — callback work concentrates
//                 in one shard, the regime the eager per-bucket seal and the
//                 incremental merge (DESIGN.md §8) target. Compare its
//                 pipeline=2/3 rows against pipeline=1 to see what bucket-
//                 granular sealing and the incremental scatter buy over
//                 shard-granular. Swept over hot-band denominators (the
//                 `skew` column; PW_BENCH_SKEW=8,32 comma-list override,
//                 default {8, 32}), and each (n, skew) combo also reports
//                 the per-shard incoming-message imbalance (max/mean over
//                 destination shards, `shard_imbalance`) that the size-aware
//                 largest-first merge claim is scheduling against.
//   bfs_tree      build_bfs_tree per repetition (engine per rep).
//   convergecast  forest_convergecast per repetition (engine per rep).
//
// Timing is the median of `reps` repetitions (steady_clock); each row reports
// rounds and messages per repetition plus derived ns/round and ns/message.
//
// Thread counts are autotuned from std::thread::hardware_concurrency() via
// the shared bench::thread_sweep helper (bench/common.hpp) — {1, 2, hc}
// deduped, capped at the workload's node count, PW_BENCH_THREADS override.
// Every JSON row records the detected core count (`host_threads`) so
// artifacts from different runner classes are distinguishable, and
// multi-thread flood rows are swept over all four round-close modes of
// DESIGN.md §8 (`pipeline` column: 0 = barriered, 1 = pipelined with
// shard-granular seals, 2 = pipelined with the eager per-bucket seal, 3 =
// pipelined with the incremental per-bucket merge), so the regression gate
// watches every close mode independently.
#include "bench/common.hpp"
#include "bench/workloads.hpp"
#include "src/tree/treeops.hpp"

namespace pw::bench {
namespace {

struct Result {
  std::uint64_t median_ns = 0;
  std::uint64_t rounds = 0;    // per repetition
  std::uint64_t messages = 0;  // per repetition
};

// Runs fn() `reps` times after `warmup` unrecorded runs; returns the median
// wall-clock of one run plus the engine work one run performed. Every rep
// must do identical work — median_ns spans all reps while rounds/messages
// come from one, so a drifting workload would silently skew ns/round and
// ns/msg. Drift aborts instead.
template <class F>
Result measure(sim::Engine& eng, int warmup, int reps, F&& fn) {
  for (int i = 0; i < warmup; ++i) fn();
  std::vector<std::uint64_t> ns(static_cast<std::size_t>(reps));
  Result r;
  bool first = true;
  for (auto& sample : ns) {
    const auto snap = eng.snap();
    const auto t0 = now_ns();
    fn();
    sample = now_ns() - t0;
    const auto stats = eng.since(snap);
    if (!first && (stats.rounds != r.rounds || stats.messages != r.messages)) {
      std::fprintf(stderr,
                   "measure(): workload drifted across reps "
                   "(%llu rounds / %llu msgs vs %llu / %llu)\n",
                   static_cast<unsigned long long>(stats.rounds),
                   static_cast<unsigned long long>(stats.messages),
                   static_cast<unsigned long long>(r.rounds),
                   static_cast<unsigned long long>(r.messages));
      std::abort();
    }
    first = false;
    r.rounds = stats.rounds;
    r.messages = stats.messages;
  }
  std::nth_element(ns.begin(), ns.begin() + reps / 2, ns.end());
  r.median_ns = ns[static_cast<std::size_t>(reps) / 2];
  return r;
}

// The skewed_flood hot-band denominators to sweep (senders = top n/skew
// ids). PW_BENCH_SKEW=8,32 (comma-separated) overrides; the default keeps
// the historical 8 plus a thinner, hotter 32 so the artifact always carries
// two skew settings per size.
std::vector<int> skew_sweep() {
  std::vector<int> out;
  if (const char* env = std::getenv("PW_BENCH_SKEW")) {
    constexpr int kMaxSkew = 1 << 20;
    int cur = 0;
    bool in_number = false;
    for (const char* c = env;; ++c) {
      if (*c >= '0' && *c <= '9') {
        cur = std::min(kMaxSkew, cur * 10 + (*c - '0'));
        in_number = true;
      } else {
        if (in_number && cur > 0) out.push_back(cur);
        cur = 0;
        in_number = false;
        if (*c == '\0') break;
      }
    }
  }
  if (out.empty()) out = {8, 32};
  return out;
}

// Per-destination-shard incoming-message imbalance of one steady skewed
// round: every hot sender (top n/skew ids) sends on all ports, so shard d
// receives one message per arc from the hot band into d. Replicates the
// engine's shard layout (contiguous power-of-two chunks, data_plane.cpp) so
// the number describes exactly the merge tasks the §8 largest-first claim
// schedules. Returns max/mean over destination shards (1.0 = perfectly
// even); 0 when the layout degenerates to one shard.
double shard_imbalance(const graph::Graph& g, int threads, int skew) {
  const int n = g.n();
  const int chunk = (n + threads - 1) / threads;
  int shift = 0;
  while ((1 << shift) < chunk) ++shift;
  const int shards = ((n - 1) >> shift) + 1;
  if (shards <= 1) return 0.0;
  const int hot_beg = n - std::max(1, n / std::max(1, skew));
  std::vector<std::uint64_t> in(static_cast<std::size_t>(shards), 0);
  std::uint64_t total = 0;
  for (int v = hot_beg; v < n; ++v) {
    for (const auto& a : g.arcs(v)) {
      ++in[static_cast<std::size_t>(a.to >> shift)];
      ++total;
    }
  }
  const double mean =
      static_cast<double>(total) / static_cast<double>(shards);
  const std::uint64_t mx = *std::max_element(in.begin(), in.end());
  return mean > 0 ? static_cast<double>(mx) / mean : 0.0;
}

void run() {
  Table table({"workload", "n", "m", "threads", "pipe", "skew", "reps",
               "rounds/rep", "msgs/rep", "ns/round", "ns/msg", "ms/rep"});
  JsonEmitter json("engine_microbench");
  const int host_threads = detected_cores();

  // `pipe` is the pipeline column of the artifact: 0 = barriered close,
  // 1 = pipelined with shard-granular seals, 2 = pipelined with the eager
  // per-bucket seal, 3 = pipelined with the incremental per-bucket merge
  // (DESIGN.md §8).
  auto policy_of = [](int threads, int pipe) {
    return sim::ExecutionPolicy{threads, pipe >= 1, pipe >= 2, pipe == 3};
  };
  const char* const kPipeNames[] = {"off", "on", "eager", "inc"};
  // skew < 0 = not a skewed workload: no skew column in the JSON row, so the
  // row keys of every pre-existing workload are unchanged and old baselines
  // keep matching (check_regression defaults absent skew to 8 on both sides).
  // transport == nullptr: the in-proc data plane; no transport column in the
  // JSON row, so every pre-existing row key is unchanged and old baselines
  // keep matching (check_regression defaults absent transport to "inproc").
  auto report = [&](const std::string& name, const graph::Graph& g,
                    int threads, int pipe, int reps, const Result& r,
                    int skew = -1, double imbalance = -1.0,
                    const char* transport = nullptr) {
    const double ns_per_round =
        static_cast<double>(r.median_ns) / std::max<std::uint64_t>(1, r.rounds);
    const double ns_per_msg = static_cast<double>(r.median_ns) /
                              std::max<std::uint64_t>(1, r.messages);
    table.add_row({transport == nullptr ? name : name + "/" + transport,
                   fm(static_cast<std::uint64_t>(g.n())),
                   fm(static_cast<std::uint64_t>(g.m())),
                   fm(static_cast<std::uint64_t>(threads)), kPipeNames[pipe],
                   skew < 0 ? "-" : fm(static_cast<std::uint64_t>(skew)),
                   fm(static_cast<std::uint64_t>(reps)), fm(r.rounds),
                   fm(r.messages), fd(ns_per_round), fd(ns_per_msg),
                   fd(static_cast<double>(r.median_ns) * 1e-6, 3)});
    JsonRow row{{"workload", name},
                {"n", g.n()},
                {"m", g.m()},
                {"threads", threads},
                {"pipeline", pipe},
                {"host_threads", host_threads},
                {"reps", reps},
                {"rounds", r.rounds},
                {"messages", r.messages},
                {"wall_ns", r.median_ns},
                {"ns_per_round", ns_per_round},
                {"ns_per_message", ns_per_msg}};
    if (skew >= 0) {
      row.push_back({"skew", skew});
      if (imbalance >= 0) row.push_back({"shard_imbalance", imbalance});
    }
    if (transport != nullptr) row.push_back({"transport", std::string(transport)});
    json.add_row(std::move(row));
  };

  for (const int n : {1024, 8192, 65536}) {
    Rng rng(1);
    const auto g = graph::gen::random_connected(n, 3 * n, rng);
    // The biggest size gets 16 reps (not 8): its ~20ms repetitions are the
    // most exposed to load bursts, and the per-run median needs enough
    // samples to shrug one off — the regression gate keys on these rows.
    const int reps = n <= 1024 ? 256 : n <= 8192 ? 32 : 16;

    // The anchor workload, swept over thread counts and all four round-close
    // modes: the sharded engine must reproduce identical rounds/messages
    // (measure() aborts on drift) while the wall clock shows what the shards
    // — and the §8 merge/callback overlap, shard-, bucket-sealed, or
    // incremental — buy on this machine. With one thread there is a single
    // shard and the close modes coincide, so only pipeline=off is emitted.
    for (const int threads : thread_sweep(n)) {
      for (int pipe = 0; pipe <= (threads > 1 ? 3 : 0); ++pipe) {
        sim::Engine eng(g, policy_of(threads, pipe));
        std::vector<char> seen(static_cast<std::size_t>(g.n()), 0);
        const auto r =
            measure(eng, 3, reps, [&] { flood_workload(eng, seen); });
        report("flood_steady", g, threads, pipe, reps, r);
        if (threads > 1) {
          // The same workload over the §10 shared-memory ring transport:
          // every cross-shard bucket pays serialize + ring + deserialize.
          // The gap to the in-proc row above IS the transport tax, gated so
          // the wire path cannot quietly rot.
          sim::ExecutionPolicy shm = policy_of(threads, pipe);
          shm.transport = sim::TransportKind::kShmRing;
          sim::Engine ring_eng(g, shm);
          std::vector<char> ring_seen(static_cast<std::size_t>(g.n()), 0);
          const auto rr = measure(ring_eng, 3, reps,
                                  [&] { flood_workload(ring_eng, ring_seen); });
          report("flood_steady", g, threads, pipe, reps, rr, -1, -1.0, "shm");
        }
      }
    }
    {
      sim::Engine probe(g);  // accounting reference for the per-rep engines
      std::vector<char> seen(static_cast<std::size_t>(g.n()), 0);
      const auto r = measure(probe, 1, reps, [&] {
        sim::Engine eng(g);
        flood_workload(eng, seen);
        probe.charge_rounds(eng.rounds());
        probe.charge_messages(eng.messages());
      });
      report("flood_cold", g, 1, 0, reps, r);
    }
  }

  // Skewed sender activity (only the top n/skew ids send, re-waking for a
  // fixed round budget): the callback work of every round concentrates in
  // the top shard, so under the shard-granular pipelined close every merge
  // waits for that one long sweep — the eager per-bucket seal (pipeline=2)
  // and the incremental merge (pipeline=3) are expected to pull ahead of
  // pipeline=1 here on a multi-core runner, and must never be meaningfully
  // behind it. Each (n, threads, skew) combo carries the per-shard incoming-
  // message imbalance the largest-first claim schedules against — the skew
  // study: higher skew, higher imbalance, more for pipeline=3 to reclaim.
  const auto skews = skew_sweep();
  for (const int n : {8192, 65536}) {
    Rng rng(4);
    const auto g = graph::gen::random_connected(n, 3 * n, rng);
    const int reps = n <= 8192 ? 32 : 8;
    for (const int skew : skews) {
      for (const int threads : thread_sweep(n)) {
        const double imb = shard_imbalance(g, threads, skew);
        for (int pipe = 0; pipe <= (threads > 1 ? 3 : 0); ++pipe) {
          sim::Engine eng(g, policy_of(threads, pipe));
          const auto r = measure(
              eng, 2, reps, [&] { skewed_flood_workload(eng, 12, skew); });
          report("skewed_flood", g, threads, pipe, reps, r, skew, imb);
        }
      }
    }
  }

  for (const int n : {1024, 8192}) {
    Rng rng(2);
    const auto g = graph::gen::random_connected(n, 3 * n, rng);
    const int reps = n > 1024 ? 16 : 64;
    sim::Engine probe(g);
    const auto r = measure(probe, 1, reps, [&] {
      sim::Engine eng(g);
      const auto t = tree::build_bfs_tree(eng, 0);
      probe.charge_rounds(eng.rounds());
      probe.charge_messages(eng.messages());
      if (t.height() < 0) std::abort();  // keep the tree from being optimized out
    });
    report("bfs_tree", g, 1, 0, reps, r);
  }

  for (const int n : {1024, 8192}) {
    Rng rng(3);
    const auto g = graph::gen::random_connected(n, 2 * n, rng);
    const int reps = n > 1024 ? 16 : 64;
    sim::Engine setup(g);
    const auto t = tree::build_bfs_tree(setup, 0);
    std::vector<std::uint64_t> values(static_cast<std::size_t>(g.n()), 1);
    sim::Engine probe(g);
    const auto r = measure(probe, 1, reps, [&] {
      sim::Engine eng(g);
      const auto sums = tree::forest_convergecast(eng, t, agg::sum(), values);
      probe.charge_rounds(eng.rounds());
      probe.charge_messages(eng.messages());
      if (sums[0] != static_cast<std::uint64_t>(g.n())) std::abort();
    });
    report("convergecast", g, 1, 0, reps, r);
  }

  table.print("Engine microbench — simulation cost per round and per message");
  json.write("BENCH_engine.json");
}

}  // namespace
}  // namespace pw::bench

int main() {
  pw::bench::run();
  return 0;
}
