#!/usr/bin/env python3
"""Perf regression gate for the engine microbench (DESIGN.md §6).

Compares a freshly produced BENCH_engine.json against the committed baseline
(bench/baseline/BENCH_engine.json) row by row — rows are matched on
(workload, n, threads, pipeline) — and fails (exit 1) when any matched row's
ns_per_message regressed by more than the threshold (default 20%).

The `pipeline` key (0/1) selects the round-close mode of DESIGN.md §8, so
both the barriered and the pipelined close are gated independently; rows
written before the column existed default to 0 (the barriered close was the
only mode then). Schema details: bench/README.md.

Rows present on only one side are reported but never fail the gate, so adding
or retiring bench configurations (e.g. the autotuned thread sweep producing
different thread counts on different runner classes) doesn't require
lock-step baseline edits. Large improvements are reported too: they usually
mean the baseline is stale and should be refreshed (--update rewrites it from
the current file).

Usage:
  check_regression.py CURRENT [BASELINE] [--threshold 0.20] [--update]
"""

import argparse
import json
import os
import shutil
import sys

DEFAULT_BASELINE = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                                "baseline", "BENCH_engine.json")
METRIC = "ns_per_message"
KEY_FIELDS = ("workload", "n", "threads", "pipeline")
KEY_DEFAULTS = {"pipeline": 0}


def load_rows(path):
    with open(path) as f:
        doc = json.load(f)
    rows = {}
    for row in doc.get("rows", []):
        key = tuple(row.get(k, KEY_DEFAULTS.get(k)) for k in KEY_FIELDS)
        if key in rows:
            raise SystemExit(f"{path}: duplicate row key {key}")
        rows[key] = row
    return rows


def fmt_key(key):
    return "/".join(str(k) for k in key)


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", help="freshly produced BENCH_engine.json")
    ap.add_argument("baseline", nargs="?", default=DEFAULT_BASELINE,
                    help=f"committed baseline (default: {DEFAULT_BASELINE})")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="allowed fractional ns/message regression (default 0.20)")
    ap.add_argument("--update", action="store_true",
                    help="overwrite the baseline with the current file and exit")
    args = ap.parse_args()

    if args.update:
        os.makedirs(os.path.dirname(args.baseline), exist_ok=True)
        shutil.copyfile(args.current, args.baseline)
        print(f"baseline updated: {args.baseline} <- {args.current}")
        return 0

    current = load_rows(args.current)
    baseline = load_rows(args.baseline)

    regressions = []
    compared = 0
    for key, row in sorted(current.items(), key=lambda kv: fmt_key(kv[0])):
        base = baseline.get(key)
        if base is None:
            print(f"  [new]      {fmt_key(key)}: no baseline row, skipped")
            continue
        cur_v, base_v = row.get(METRIC), base.get(METRIC)
        if not cur_v or not base_v:
            print(f"  [no data]  {fmt_key(key)}: missing {METRIC}, skipped")
            continue
        compared += 1
        ratio = cur_v / base_v
        tag = "ok"
        if ratio > 1 + args.threshold:
            tag = "REGRESSED"
            regressions.append((key, base_v, cur_v, ratio))
        elif ratio < 1 / (1 + args.threshold):
            tag = "improved (baseline stale? rerun with --update)"
        print(f"  [{ratio:5.2f}x]   {fmt_key(key)}: "
              f"{base_v:.1f} -> {cur_v:.1f} {METRIC}  {tag}")
    for key in sorted(set(baseline) - set(current), key=fmt_key):
        print(f"  [gone]     {fmt_key(key)}: baseline row not reproduced")

    if compared == 0:
        print("error: no comparable rows between current and baseline")
        return 1
    if regressions:
        print(f"\nFAIL: {len(regressions)} row(s) regressed more than "
              f"{args.threshold:.0%} on {METRIC}:")
        for key, base_v, cur_v, ratio in regressions:
            print(f"  {fmt_key(key)}: {base_v:.1f} -> {cur_v:.1f} ({ratio:.2f}x)")
        return 1
    print(f"\nOK: {compared} row(s) within {args.threshold:.0%} of baseline")
    return 0


if __name__ == "__main__":
    sys.exit(main())
