#!/usr/bin/env python3
"""Perf regression gate + report for the BENCH_*.json artifacts (DESIGN.md §6).

Takes one or more freshly produced BENCH_*.json files, groups them by their
embedded "benchmark" name, and compares each benchmark's rows against its
committed baseline (bench/baseline/<same filename>). Rows are matched on the
benchmark's key fields (see SCHEMAS); when several input files — or several
rows within one file — share a key, the compared value is the PER-KEY MEDIAN
of the metric across all samples, which is also how baselines are captured
(run the bench a few times, pass every artifact, --update; a one-shot capture
under load desensitizes the gate, a lucky-fast one cries wolf).

Only the engine microbench is a hard gate: a matched row whose median
ns_per_message regressed by more than the threshold (default 20%) fails with
exit 1. The app benches (mst / mincut / noleader / cds_kdom) are ingested
REPORT-ONLY — their per-row medians and ratios are printed for drift
tracking, but they never fail CI: their wall clocks sit on top of whole
algorithm stacks whose variance hasn't been characterized (ROADMAP), so a
hard gate would cry wolf.

The `pipeline` key selects the round-close mode of DESIGN.md §8 — 0 =
barriered, 1 = pipelined with shard-granular seals, 2 = pipelined with the
eager per-bucket seal, 3 = pipelined with the incremental per-bucket merge —
so every close mode is tracked independently; rows written before the column
existed default to 0 (the barriered close was the only mode then). The
`skew` key is the skewed_flood hot-band denominator (senders = top n/skew
ids); rows without it — all non-skewed workloads, plus skewed rows written
before the sweep existed — default to the historical 8.
Rows present on only one side are reported but never fail,
so adding or retiring bench configurations (e.g. the autotuned thread sweep
producing different thread counts on different runner classes) doesn't
require lock-step baseline edits. Schema details: bench/README.md.

Usage:
  check_regression.py CURRENT... [--threshold 0.20] [--update]
                      [--baseline FILE]

  CURRENT...   one or more BENCH_*.json files (mixed benchmarks fine)
  --baseline   override the baseline path (single-benchmark input only)
  --update     rewrite each benchmark's baseline from the pooled medians
"""

import argparse
import json
import os
import statistics
import sys

BASELINE_DIR = os.path.join(os.path.dirname(os.path.abspath(__file__)),
                            "baseline")
METRIC = "ns_per_message"
# Key fields absent from a row default here, so rows written before a key
# column existed keep matching: `pipeline` predates the close-mode sweep
# (0 = barriered was the only mode), `skew` predates the skewed_flood
# hot-band sweep (8 = the historical top-n/8 band; non-skewed workloads
# never carry the field, so they default identically on both sides), and
# `transport` predates the §10 shared-memory ring backend ("inproc" was the
# only data plane transport).
KEY_DEFAULTS = {"pipeline": 0, "skew": 8, "transport": "inproc"}

# Key fields per benchmark name (the "benchmark" field of the artifact).
# `gated`: regressions FAIL; otherwise the comparison is report-only.
SCHEMAS = {
    "engine_microbench": {
        "file": "BENCH_engine.json",
        "keys": ("workload", "n", "threads", "pipeline", "skew", "transport"),
        "gated": True,
    },
    "mst_corollary_1_3": {
        "file": "BENCH_mst.json",
        "keys": ("graph", "strategy", "threads", "pipeline"),
        "gated": False,
    },
    "mincut_corollary_1_4": {
        "file": "BENCH_mincut.json",
        "keys": ("graph", "eps", "threads", "pipeline"),
        "gated": False,
    },
    "noleader_ablation_ab3": {
        "file": "BENCH_noleader.json",
        "keys": ("graph", "threads", "pipeline"),
        "gated": False,
    },
    "cds_kdom_corollaries_a2_a3": {
        "file": "BENCH_cds_kdom.json",
        "keys": ("section", "graph", "primitive", "n", "k", "threads",
                 "pipeline"),
        "gated": False,
    },
    "fault_degradation": {
        "file": "BENCH_fault.json",
        "keys": ("workload", "graph", "drop_prob", "threads", "pipeline"),
        "gated": False,
    },
}


def row_key(row, keys):
    return tuple(row.get(k, KEY_DEFAULTS.get(k)) for k in keys)


def load(path):
    with open(path) as f:
        doc = json.load(f)
    name = doc.get("benchmark")
    if name not in SCHEMAS:
        raise SystemExit(f"{path}: unknown benchmark {name!r} "
                         f"(known: {', '.join(sorted(SCHEMAS))})")
    return name, doc.get("rows", [])


def pool_medians(row_lists, keys):
    """Groups rows by key; returns {key: (representative row, median metric,
    sample count)}. Rows without the metric are kept (count 0, median None)
    so [no data] keys still show up in the report."""
    groups = {}
    for rows in row_lists:
        for row in rows:
            groups.setdefault(row_key(row, keys), []).append(row)
    pooled = {}
    for key, rows in groups.items():
        values = [r[METRIC] for r in rows if r.get(METRIC)]
        median = statistics.median(values) if values else None
        pooled[key] = (rows[0], median, len(values))
    return pooled


def fmt_key(key):
    return "/".join("-" if k is None else str(k) for k in key)


def write_baseline(path, name, pooled, keys):
    """One representative row per key, its metric replaced by the median.

    Keys whose pooled median is None (no sample carried the metric) are
    SKIPPED with a warning: a baseline row without the metric could never
    gate anything, it would only ever print [no data] forever."""
    rows = []
    skipped = 0
    for key in sorted(pooled, key=fmt_key):
        rep, median, _ = pooled[key]
        if median is None:
            print(f"  warning: {fmt_key(key)}: no {METRIC} in any sample, "
                  f"not writing a metric-less baseline row")
            skipped += 1
            continue
        row = dict(rep)
        row[METRIC] = median
        rows.append(row)
    os.makedirs(os.path.dirname(path), exist_ok=True)
    with open(path, "w") as f:
        json.dump({"benchmark": name, "rows": rows}, f, indent=2)
        f.write("\n")
    note = f", {skipped} metric-less key(s) skipped" if skipped else ""
    print(f"baseline updated: {path} ({len(rows)} rows{note})")


def compare(name, pooled, baseline_path, threshold):
    """Prints the per-key report; returns the list of gating failures."""
    schema = SCHEMAS[name]
    gated = schema["gated"]
    print(f"== {name} ({'GATED' if gated else 'report-only'}) "
          f"vs {os.path.relpath(baseline_path)}")
    if not os.path.exists(baseline_path):
        print("  [no baseline] nothing to compare against "
              "(--update creates it)")
        return [], 0
    base_name, base_rows = load(baseline_path)
    if base_name != name:
        raise SystemExit(f"{baseline_path}: benchmark {base_name!r} does not "
                         f"match current {name!r}")
    base = pool_medians([base_rows], schema["keys"])

    regressions = []
    compared = 0
    for key in sorted(pooled, key=fmt_key):
        _, cur_v, samples = pooled[key]
        if key not in base:
            print(f"  [new]      {fmt_key(key)}: no baseline row, skipped")
            continue
        base_v = base[key][1]
        if cur_v is None or base_v is None:
            # A row can legitimately lack the metric (e.g. a phase that moved
            # zero messages): warn-and-skip rather than crash on the ratio or
            # silently count it as compared.
            side = "current" if cur_v is None else "baseline"
            print(f"  [no data]  {fmt_key(key)}: {side} side has no "
                  f"{METRIC} median, skipped")
            continue
        if not cur_v or not base_v:
            print(f"  [no data]  {fmt_key(key)}: zero {METRIC}, skipped")
            continue
        compared += 1
        ratio = cur_v / base_v
        tag = "ok"
        if ratio > 1 + threshold:
            if gated:
                tag = "REGRESSED"
                regressions.append((key, base_v, cur_v, ratio))
            else:
                tag = "slower (report-only)"
        elif ratio < 1 / (1 + threshold):
            tag = "improved (baseline stale? rerun with --update)"
        note = f" [{samples} samples]" if samples > 1 else ""
        print(f"  [{ratio:5.2f}x]   {fmt_key(key)}: "
              f"{base_v:.1f} -> {cur_v:.1f} {METRIC}  {tag}{note}")
    # Baseline rows with no current counterpart. The thread sweep autotunes
    # to host cores, so rows captured on a bigger machine (their `threads`
    # exceeds this capture's host_threads) CANNOT be reproduced here — that
    # is a property of the runner, not a lost configuration: summarize them
    # in one line instead of a per-row [gone] wall. Everything else still
    # reports per row.
    host = None
    for rep, _, _ in pooled.values():
        ht = rep.get("host_threads")
        if isinstance(ht, (int, float)) and not isinstance(ht, bool):
            host = ht if host is None else max(host, ht)
    keys = schema["keys"]
    t_idx = keys.index("threads") if "threads" in keys else None
    oversized = 0
    for key in sorted(set(base) - set(pooled), key=fmt_key):
        threads = key[t_idx] if t_idx is not None else None
        if (host is not None and isinstance(threads, (int, float))
                and not isinstance(threads, bool) and threads > host):
            oversized += 1
            continue
        print(f"  [gone]     {fmt_key(key)}: baseline row not reproduced")
    if oversized:
        print(f"  [skipped]  {oversized} baseline row(s): threads exceeds "
              f"host_threads={host} of this capture")
    return regressions, compared


def main():
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("current", nargs="+",
                    help="freshly produced BENCH_*.json file(s)")
    ap.add_argument("--baseline",
                    help="baseline path override (single-benchmark input only;"
                         " default: bench/baseline/<artifact filename>)")
    ap.add_argument("--threshold", type=float, default=0.20,
                    help="allowed fractional ns/message regression "
                         "(default 0.20)")
    ap.add_argument("--update", action="store_true",
                    help="rewrite each benchmark's baseline from the pooled "
                         "per-key medians of the given files")
    args = ap.parse_args()

    by_benchmark = {}
    for path in args.current:
        name, rows = load(path)
        by_benchmark.setdefault(name, []).append(rows)
    if args.baseline and len(by_benchmark) > 1:
        raise SystemExit("--baseline only applies to single-benchmark input")

    regressions = []
    compared_gated = 0
    saw_gated = False
    for name, row_lists in by_benchmark.items():
        schema = SCHEMAS[name]
        pooled = pool_medians(row_lists, schema["keys"])
        baseline_path = args.baseline or os.path.join(BASELINE_DIR,
                                                      schema["file"])
        if args.update:
            write_baseline(baseline_path, name, pooled, schema["keys"])
            continue
        fails, compared = compare(name, pooled, baseline_path, args.threshold)
        regressions.extend(fails)
        if schema["gated"]:
            saw_gated = True
            compared_gated += compared
    if args.update:
        return 0

    if saw_gated and compared_gated == 0:
        print("error: no comparable rows for the gated benchmark")
        return 1
    if regressions:
        print(f"\nFAIL: {len(regressions)} gated row(s) regressed more than "
              f"{args.threshold:.0%} on {METRIC}:")
        for key, base_v, cur_v, ratio in regressions:
            print(f"  {fmt_key(key)}: {base_v:.1f} -> {cur_v:.1f} "
                  f"({ratio:.2f}x)")
        return 1
    print(f"\nOK: no gated regressions "
          f"({compared_gated} gated row(s) within {args.threshold:.0%})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
