// Shared helpers for the benchmark harnesses.
//
// Every bench binary regenerates one artifact of the paper (a table, a
// figure, or a corollary's claim) and prints the rows the paper reports:
// measured rounds/messages next to the quantities the theory predicts
// (D, sqrt(n), m, ...), so the SHAPE of each claim — who wins, by what
// factor, where crossovers sit — can be read off directly.
#pragma once

#include <cmath>
#include <cstdio>
#include <string>

#include "src/core/baselines.hpp"
#include "src/core/noleader.hpp"
#include "src/core/solver.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/properties.hpp"
#include "src/tree/bfs.hpp"
#include "src/util/table.hpp"

namespace pw::bench {

struct Instance {
  std::string name;
  graph::Graph g;
  graph::Partition p;
  int diameter = 0;
};

inline Instance make_instance(std::string name, graph::Graph g,
                              graph::Partition p) {
  Instance inst{std::move(name), std::move(g), std::move(p), 0};
  inst.p.elect_min_id_leaders();
  inst.diameter = graph::diameter_estimate(inst.g);
  return inst;
}

// The graph families of Appendix C's tables.
inline Instance general_instance(int n, Rng& rng) {
  auto g = graph::gen::random_connected(n, 3 * n, rng);
  auto p = graph::random_bfs_partition(g, std::max(2, n / 24), rng);
  return make_instance("general(GNM)", std::move(g), std::move(p));
}

inline Instance planar_instance(int side) {
  auto g = graph::gen::grid(side, side);
  auto p = graph::grid_row_partition(side, side);
  return make_instance("planar(grid)", std::move(g), std::move(p));
}

// Genus 1 (the torus embeds on it); Appendix C's genus-g column.
inline Instance genus_instance(int side, Rng& rng) {
  auto g = graph::gen::torus(side, side);
  auto p = graph::random_bfs_partition(g, std::max(2, side / 2), rng);
  return make_instance("genus1(torus)", std::move(g), std::move(p));
}

inline Instance treewidth_instance(int n, int k, Rng& rng) {
  auto g = graph::gen::k_tree(n, k, rng);
  auto p = graph::random_bfs_partition(g, std::max(2, n / 24), rng);
  return make_instance("treewidth(k-tree,k=" + std::to_string(k) + ")",
                       std::move(g), std::move(p));
}

inline Instance pathwidth_instance(int spine, int legs, Rng& rng) {
  auto g = graph::gen::caterpillar(spine, legs);
  auto p = graph::random_bfs_partition(g, std::max(2, spine / 8), rng);
  return make_instance("pathwidth(caterpillar)", std::move(g), std::move(p));
}

inline Instance apex_instance(int depth, int width) {
  auto g = graph::gen::apex_grid(depth, width);
  auto p = graph::apex_grid_row_partition(depth, width);
  return make_instance("apex_grid(" + std::to_string(depth) + "x" +
                           std::to_string(width) + ")",
                       std::move(g), std::move(p));
}

struct PaMeasurement {
  sim::PhaseStats setup;   // tree + division + shortcut construction
  sim::PhaseStats query;   // one PA instance (Algorithm 1, all 3 stages)
  int shortcut_congestion = 0;
  int block_parameter = 0;
  int final_guess = 0;
};

inline PaMeasurement measure_pa(const Instance& inst, core::PaSolverConfig cfg,
                                std::uint64_t value_seed = 7) {
  sim::Engine eng(inst.g);
  core::PaSolver solver(eng, cfg);
  const auto s0 = eng.snap();
  solver.set_partition(inst.p);
  PaMeasurement m;
  m.setup = eng.since(s0);

  Rng rng(value_seed);
  std::vector<std::uint64_t> values(inst.g.n());
  for (auto& x : values) x = rng.next_below(1u << 20);
  const auto s1 = eng.snap();
  solver.aggregate(agg::min(), values);
  m.query = eng.since(s1);

  const auto& st = solver.structures();
  m.shortcut_congestion = shortcut::congestion(st.sc);
  m.block_parameter = shortcut::block_parameter(inst.g, st.t, inst.p, st.sc);
  m.final_guess = st.final_guess;
  return m;
}

inline std::string fm(std::uint64_t v) { return Table::fmt(v); }
inline std::string fd(double v, int prec = 2) { return Table::fmt(v, prec); }

}  // namespace pw::bench
