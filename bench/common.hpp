// Shared helpers for the benchmark harnesses.
//
// Every bench binary regenerates one artifact of the paper (a table, a
// figure, or a corollary's claim) and prints the rows the paper reports:
// measured rounds/messages next to the quantities the theory predicts
// (D, sqrt(n), m, ...), so the SHAPE of each claim — who wins, by what
// factor, where crossovers sit — can be read off directly.
#pragma once

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/core/baselines.hpp"
#include "src/core/noleader.hpp"
#include "src/core/solver.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/properties.hpp"
#include "src/tree/bfs.hpp"
#include "src/util/table.hpp"

namespace pw::bench {

struct Instance {
  std::string name;
  graph::Graph g;
  graph::Partition p;
  int diameter = 0;
};

inline Instance make_instance(std::string name, graph::Graph g,
                              graph::Partition p) {
  Instance inst{std::move(name), std::move(g), std::move(p), 0};
  inst.p.elect_min_id_leaders();
  inst.diameter = graph::diameter_estimate(inst.g);
  return inst;
}

// The graph families of Appendix C's tables.
inline Instance general_instance(int n, Rng& rng) {
  auto g = graph::gen::random_connected(n, 3 * n, rng);
  auto p = graph::random_bfs_partition(g, std::max(2, n / 24), rng);
  return make_instance("general(GNM)", std::move(g), std::move(p));
}

inline Instance planar_instance(int side) {
  auto g = graph::gen::grid(side, side);
  auto p = graph::grid_row_partition(side, side);
  return make_instance("planar(grid)", std::move(g), std::move(p));
}

// Genus 1 (the torus embeds on it); Appendix C's genus-g column.
inline Instance genus_instance(int side, Rng& rng) {
  auto g = graph::gen::torus(side, side);
  auto p = graph::random_bfs_partition(g, std::max(2, side / 2), rng);
  return make_instance("genus1(torus)", std::move(g), std::move(p));
}

inline Instance treewidth_instance(int n, int k, Rng& rng) {
  auto g = graph::gen::k_tree(n, k, rng);
  auto p = graph::random_bfs_partition(g, std::max(2, n / 24), rng);
  return make_instance("treewidth(k-tree,k=" + std::to_string(k) + ")",
                       std::move(g), std::move(p));
}

inline Instance pathwidth_instance(int spine, int legs, Rng& rng) {
  auto g = graph::gen::caterpillar(spine, legs);
  auto p = graph::random_bfs_partition(g, std::max(2, spine / 8), rng);
  return make_instance("pathwidth(caterpillar)", std::move(g), std::move(p));
}

inline Instance apex_instance(int depth, int width) {
  auto g = graph::gen::apex_grid(depth, width);
  auto p = graph::apex_grid_row_partition(depth, width);
  return make_instance("apex_grid(" + std::to_string(depth) + "x" +
                           std::to_string(width) + ")",
                       std::move(g), std::move(p));
}

struct PaMeasurement {
  sim::PhaseStats setup;   // tree + division + shortcut construction
  sim::PhaseStats query;   // one PA instance (Algorithm 1, all 3 stages)
  std::uint64_t setup_ns = 0;  // wall-clock of the setup phase
  std::uint64_t query_ns = 0;  // wall-clock of the query phase
  int shortcut_congestion = 0;
  int block_parameter = 0;
  int final_guess = 0;
};

inline std::uint64_t now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

// --- Thread sweeps ----------------------------------------------------------
//
// Every bench that constructs engines sweeps ExecutionPolicy thread counts
// from one shared helper so artifacts are comparable across benches: the
// default sweep is {1, 2, hardware_concurrency} deduped ascending, capped at
// the workload's node count (the engine never holds more shards than nodes).
// 2 stays pinned so the sharded machinery is exercised even on single-core
// hosts, where multi-thread rows measure dispatch overhead, not speedup.
//
// PW_BENCH_THREADS=1,2,4 (comma-separated) overrides the sweep — still
// deduped and capped — which is how baselines gain rows a 1-core host would
// not emit and how a CI runner class can be pinned to a fixed sweep.

inline int detected_cores() {
  return static_cast<int>(std::max(1u, std::thread::hardware_concurrency()));
}

inline std::vector<int> thread_sweep(int n) {
  std::vector<int> t;
  if (const char* env = std::getenv("PW_BENCH_THREADS")) {
    // No host has more hardware threads than this; saturating here keeps a
    // runaway digit string from overflowing the accumulator — or from
    // requesting an engine with tens of thousands of workers.
    constexpr int kMaxThreads = 1024;
    int cur = 0;
    bool in_number = false;
    for (const char* c = env;; ++c) {
      if (*c >= '0' && *c <= '9') {
        cur = std::min(kMaxThreads, cur * 10 + (*c - '0'));
        in_number = true;
      } else {
        if (in_number && cur > 0) t.push_back(cur);
        cur = 0;
        in_number = false;
        if (*c == '\0') break;
      }
    }
  }
  if (t.empty()) t = {1, 2, detected_cores()};
  for (auto& x : t) x = std::min(x, std::max(1, n));
  std::sort(t.begin(), t.end());
  t.erase(std::unique(t.begin(), t.end()), t.end());
  return t;
}

inline PaMeasurement measure_pa(const Instance& inst, core::PaSolverConfig cfg,
                                std::uint64_t value_seed = 7) {
  sim::Engine eng(inst.g);
  core::PaSolver solver(eng, cfg);
  const auto s0 = eng.snap();
  const auto t0 = now_ns();
  solver.set_partition(inst.p);
  PaMeasurement m;
  m.setup_ns = now_ns() - t0;
  m.setup = eng.since(s0);

  Rng rng(value_seed);
  std::vector<std::uint64_t> values(inst.g.n());
  for (auto& x : values) x = rng.next_below(1u << 20);
  const auto s1 = eng.snap();
  const auto t1 = now_ns();
  solver.aggregate(agg::min(), values);
  m.query_ns = now_ns() - t1;
  m.query = eng.since(s1);

  const auto& st = solver.structures();
  m.shortcut_congestion = shortcut::congestion(st.sc);
  m.block_parameter = shortcut::block_parameter(inst.g, st.t, inst.p, st.sc);
  m.final_guess = st.final_guess;
  return m;
}

inline std::string fm(std::uint64_t v) { return Table::fmt(v); }
inline std::string fd(double v, int prec = 2) { return Table::fmt(v, prec); }

// --- Machine-readable bench artifacts (BENCH_*.json) -----------------------
//
// Every bench binary that feeds the perf trajectory writes a flat JSON file
// next to its human-readable table: {"benchmark": ..., "rows": [{...}, ...]}.
// Rows are flat objects of numbers and strings so any plotting/regression
// script can consume them without a schema. Times are wall-clock nanoseconds.

class JsonValue {
 public:
  JsonValue(double v) : kind_(Kind::Number) { num_ = v; }            // NOLINT
  JsonValue(std::uint64_t v) : kind_(Kind::Unsigned) { u_ = v; }     // NOLINT
  JsonValue(int v) : kind_(Kind::Unsigned) {                         // NOLINT
    if (v < 0) {
      kind_ = Kind::Number;
      num_ = v;
    } else {
      u_ = static_cast<std::uint64_t>(v);
    }
  }
  JsonValue(std::string v) : kind_(Kind::String), str_(std::move(v)) {}  // NOLINT
  JsonValue(const char* v) : kind_(Kind::String), str_(v) {}             // NOLINT

  std::string dump() const {
    switch (kind_) {
      case Kind::Unsigned:
        return std::to_string(u_);
      case Kind::Number: {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.6g", num_);
        return buf;
      }
      case Kind::String: {
        std::string out = "\"";
        for (const char c : str_) {
          switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            default:
              if (static_cast<unsigned char>(c) < 0x20) {
                char esc[8];
                std::snprintf(esc, sizeof(esc), "\\u%04x", c);
                out += esc;
              } else {
                out += c;
              }
          }
        }
        out += '"';
        return out;
      }
    }
    return "null";
  }

 private:
  enum class Kind { Number, Unsigned, String };
  Kind kind_;
  double num_ = 0;
  std::uint64_t u_ = 0;
  std::string str_;
};

using JsonRow = std::vector<std::pair<std::string, JsonValue>>;

class JsonEmitter {
 public:
  explicit JsonEmitter(std::string benchmark) : benchmark_(std::move(benchmark)) {}

  void add_row(JsonRow row) { rows_.push_back(std::move(row)); }

  // Writes the artifact; returns false (and warns) if the file can't be
  // opened or written in full, so a read-only working directory never fails
  // a bench run but a truncated artifact is never reported as success.
  bool write(const std::string& path) const {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return false;
    }
    std::string out = "{\n  \"benchmark\": " + JsonValue(benchmark_).dump() +
                      ",\n  \"rows\": [\n";
    for (std::size_t i = 0; i < rows_.size(); ++i) {
      out += "    {";
      for (std::size_t j = 0; j < rows_[i].size(); ++j) {
        if (j > 0) out += ", ";
        out += JsonValue(rows_[i][j].first).dump() + ": " +
               rows_[i][j].second.dump();
      }
      out += i + 1 < rows_.size() ? "},\n" : "}\n";
    }
    out += "  ]\n}\n";
    const std::size_t written = std::fwrite(out.data(), 1, out.size(), f);
    const bool ok = (std::fclose(f) == 0) && written == out.size();
    if (!ok) {
      std::fprintf(stderr, "warning: short write to %s, artifact is invalid\n",
                   path.c_str());
      return false;
    }
    std::printf("wrote %s (%zu rows)\n", path.c_str(), rows_.size());
    return true;
  }

 private:
  std::string benchmark_;
  std::vector<JsonRow> rows_;
};

}  // namespace pw::bench
