#!/usr/bin/env python3
"""Inproc-vs-shm transport-tax summary for BENCH_engine.json (DESIGN.md §10).

Pairs every shm-transport row with its matching inproc row (same workload,
n, threads, pipeline, skew) and prints the per-key ns_per_message delta —
the live transport tax of the zero-copy wire path. Pure report: exit code
is 0 whenever the input parses and at least one pair exists (the regression
gate in check_regression.py is what fails CI). CI runs this in bench-smoke
and uploads the table next to the JSON artifacts.

Usage:
  shm_delta.py BENCH_engine.json [more BENCH_engine.json ...]
"""

import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_regression as cr  # noqa: E402

KEYS = cr.SCHEMAS["engine_microbench"]["keys"]
T_IDX = KEYS.index("transport")


def main(argv):
    if len(argv) < 2:
        sys.exit(__doc__.strip())
    row_lists = []
    for path in argv[1:]:
        name, rows = cr.load(path)
        if name != "engine_microbench":
            sys.exit(f"{path}: expected engine_microbench, got {name!r}")
        row_lists.append(rows)
    pooled = cr.pool_medians(row_lists, KEYS)

    pairs = []
    for key, (_, median, _) in pooled.items():
        if key[T_IDX] != "shm" or median is None:
            continue
        inproc_key = key[:T_IDX] + ("inproc",) + key[T_IDX + 1:]
        base = pooled.get(inproc_key)
        if base is None or base[1] is None:
            print(f"  [unpaired] {cr.fmt_key(key)}: no inproc row to compare")
            continue
        pairs.append((key, base[1], median))

    print("== shm transport tax (ns_per_message, shm vs inproc)")
    if not pairs:
        sys.exit("error: no shm/inproc row pairs found — was the bench run "
                 "with the transport sweep?")
    worst = 0.0
    for key, inproc_v, shm_v in sorted(pairs, key=lambda p: cr.fmt_key(p[0])):
        tax = shm_v / inproc_v - 1.0
        worst = max(worst, tax)
        print(f"  [{tax:+7.1%}] {cr.fmt_key(key)}: "
              f"{inproc_v:.1f} -> {shm_v:.1f}")
    print(f"worst shm tax: {worst:+.1%} across {len(pairs)} pair(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
