#!/usr/bin/env python3
"""Unit tests for check_regression.py's metric-less-row handling.

A BENCH_*.json row can legitimately lack ns_per_message (e.g. a phase that
moved zero messages, or an emitter bug): the pooling keeps such keys visible,
compare() must skip-and-warn on a None median on EITHER side instead of
crashing on the ratio or silently counting the key as compared, and --update
must never write a baseline row without the metric (it could never gate
anything and would print [no data] forever).

Run directly (python3 bench/test_check_regression.py) or via ctest
(check_regression_py).
"""

import io
import json
import os
import sys
import tempfile
import unittest
from contextlib import redirect_stdout

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))
import check_regression as cr  # noqa: E402

KEYS = cr.SCHEMAS["engine_microbench"]["keys"]


def row(workload="flood_steady", n=1024, threads=1, pipeline=0, metric=10.0,
        skew=None, transport=None):
    r = {"workload": workload, "n": n, "threads": threads,
         "pipeline": pipeline}
    if skew is not None:
        r["skew"] = skew
    if transport is not None:
        r["transport"] = transport
    if metric is not None:
        r[cr.METRIC] = metric
    return r


class PoolMediansTest(unittest.TestCase):
    def test_metricless_row_kept_with_none_median(self):
        pooled = cr.pool_medians([[row(metric=None)]], KEYS)
        self.assertEqual(len(pooled), 1)
        ((rep, median, samples),) = pooled.values()
        self.assertIsNone(median)
        self.assertEqual(samples, 0)
        self.assertNotIn(cr.METRIC, rep)

    def test_median_pools_across_files_and_skips_metricless_samples(self):
        lists = [[row(metric=10.0)], [row(metric=None)], [row(metric=30.0)]]
        pooled = cr.pool_medians(lists, KEYS)
        ((_, median, samples),) = pooled.values()
        self.assertEqual(median, 20.0)
        self.assertEqual(samples, 2)


class CompareTest(unittest.TestCase):
    def _compare(self, current_rows, baseline_rows):
        pooled = cr.pool_medians([current_rows], KEYS)
        with tempfile.TemporaryDirectory() as tmp:
            baseline = os.path.join(tmp, "BENCH_engine.json")
            with open(baseline, "w") as f:
                json.dump({"benchmark": "engine_microbench",
                           "rows": baseline_rows}, f)
            out = io.StringIO()
            with redirect_stdout(out):
                regressions, compared = cr.compare(
                    "engine_microbench", pooled, baseline, 0.20)
        return regressions, compared, out.getvalue()

    def test_metricless_current_row_skips_and_warns(self):
        regressions, compared, out = self._compare(
            [row(metric=None), row(n=8192, metric=10.0)],
            [row(metric=10.0), row(n=8192, metric=10.0)])
        self.assertEqual(regressions, [])
        self.assertEqual(compared, 1)  # only the row with data on both sides
        self.assertIn("current side has no", out)

    def test_metricless_baseline_row_skips_and_warns(self):
        regressions, compared, out = self._compare(
            [row(metric=10.0)], [row(metric=None)])
        self.assertEqual(regressions, [])
        self.assertEqual(compared, 0)
        self.assertIn("baseline side has no", out)

    def test_real_regression_still_fails(self):
        regressions, compared, _ = self._compare(
            [row(metric=30.0), row(n=8192, metric=None)],
            [row(metric=10.0), row(n=8192, metric=None)])
        self.assertEqual(compared, 1)
        self.assertEqual(len(regressions), 1)


class SkewKeyTest(unittest.TestCase):
    """The skew column joined the engine schema after baselines existed:
    old skewless rows must keep gating against new skew=8 rows (the KEY
    DEFAULT is the historical top-n/8 band), while distinct skew settings
    form distinct keys."""

    def test_old_skewless_baseline_matches_current_skew8_row(self):
        pooled = cr.pool_medians(
            [[row(workload="skewed_flood", skew=8, metric=30.0)]], KEYS)
        with tempfile.TemporaryDirectory() as tmp:
            baseline = os.path.join(tmp, "BENCH_engine.json")
            with open(baseline, "w") as f:
                json.dump({"benchmark": "engine_microbench",
                           "rows": [row(workload="skewed_flood",
                                        metric=10.0)]}, f)
            out = io.StringIO()
            with redirect_stdout(out):
                regressions, compared = cr.compare(
                    "engine_microbench", pooled, baseline, 0.20)
        self.assertEqual(compared, 1)  # matched despite the baseline's
        self.assertEqual(len(regressions), 1)  # missing skew field — and gated

    def test_distinct_skews_are_distinct_keys(self):
        pooled = cr.pool_medians(
            [[row(workload="skewed_flood", skew=8, metric=10.0),
              row(workload="skewed_flood", skew=32, metric=10.0)]], KEYS)
        self.assertEqual(len(pooled), 2)

    def test_new_skew_row_reports_as_new_not_fails(self):
        pooled = cr.pool_medians(
            [[row(workload="skewed_flood", skew=8, metric=10.0),
              row(workload="skewed_flood", skew=32, metric=99.0)]], KEYS)
        with tempfile.TemporaryDirectory() as tmp:
            baseline = os.path.join(tmp, "BENCH_engine.json")
            with open(baseline, "w") as f:
                json.dump({"benchmark": "engine_microbench",
                           "rows": [row(workload="skewed_flood",
                                        metric=10.0)]}, f)
            out = io.StringIO()
            with redirect_stdout(out):
                regressions, compared = cr.compare(
                    "engine_microbench", pooled, baseline, 0.20)
        self.assertEqual(compared, 1)
        self.assertEqual(regressions, [])
        self.assertIn("[new]", out.getvalue())

    def test_non_skewed_workloads_unaffected_by_skew_default(self):
        pooled = cr.pool_medians([[row(metric=10.0)]], KEYS)
        with tempfile.TemporaryDirectory() as tmp:
            baseline = os.path.join(tmp, "BENCH_engine.json")
            with open(baseline, "w") as f:
                json.dump({"benchmark": "engine_microbench",
                           "rows": [row(metric=10.0)]}, f)
            out = io.StringIO()
            with redirect_stdout(out):
                regressions, compared = cr.compare(
                    "engine_microbench", pooled, baseline, 0.20)
        self.assertEqual(compared, 1)
        self.assertEqual(regressions, [])


class TransportKeyTest(unittest.TestCase):
    """The transport column joined the engine schema after baselines existed
    (the §10 shm ring backend): transport-less rows must keep gating against
    explicit transport="inproc" rows (the KEY DEFAULT — in-proc was the only
    data plane), while shm rows form distinct, independently gated keys."""

    def _compare(self, current_rows, baseline_rows):
        pooled = cr.pool_medians([current_rows], KEYS)
        with tempfile.TemporaryDirectory() as tmp:
            baseline = os.path.join(tmp, "BENCH_engine.json")
            with open(baseline, "w") as f:
                json.dump({"benchmark": "engine_microbench",
                           "rows": baseline_rows}, f)
            out = io.StringIO()
            with redirect_stdout(out):
                regressions, compared = cr.compare(
                    "engine_microbench", pooled, baseline, 0.20)
        return regressions, compared, out.getvalue()

    def test_old_transportless_baseline_matches_explicit_inproc_row(self):
        regressions, compared, _ = self._compare(
            [row(threads=4, transport="inproc", metric=30.0)],
            [row(threads=4, metric=10.0)])
        self.assertEqual(compared, 1)  # matched despite the baseline's
        self.assertEqual(len(regressions), 1)  # missing field — and gated

    def test_shm_and_inproc_rows_are_distinct_keys(self):
        pooled = cr.pool_medians(
            [[row(threads=4, metric=10.0),
              row(threads=4, transport="shm", metric=10.0)]], KEYS)
        self.assertEqual(len(pooled), 2)

    def test_new_shm_row_reports_as_new_against_old_baseline(self):
        regressions, compared, out = self._compare(
            [row(threads=4, metric=10.0),
             row(threads=4, transport="shm", metric=99.0)],
            [row(threads=4, metric=10.0)])
        self.assertEqual(compared, 1)
        self.assertEqual(regressions, [])
        self.assertIn("[new]", out)

    def test_shm_regression_gates_independently(self):
        regressions, compared, _ = self._compare(
            [row(threads=4, metric=10.0),
             row(threads=4, transport="shm", metric=40.0)],
            [row(threads=4, metric=10.0),
             row(threads=4, transport="shm", metric=12.0)])
        self.assertEqual(compared, 2)
        self.assertEqual(len(regressions), 1)


class GoneRowTest(unittest.TestCase):
    """Baseline rows whose `threads` exceeds the current capture's
    host_threads cannot be reproduced on this runner (the thread sweep
    autotunes to host cores): they collapse into one [skipped] summary line
    instead of a per-row [gone] wall. Gone rows within the host's reach —
    and every gone row when no current sample carries host_threads — still
    report per row."""

    def _compare(self, current_rows, baseline_rows):
        pooled = cr.pool_medians([current_rows], KEYS)
        with tempfile.TemporaryDirectory() as tmp:
            baseline = os.path.join(tmp, "BENCH_engine.json")
            with open(baseline, "w") as f:
                json.dump({"benchmark": "engine_microbench",
                           "rows": baseline_rows}, f)
            out = io.StringIO()
            with redirect_stdout(out):
                regressions, compared = cr.compare(
                    "engine_microbench", pooled, baseline, 0.20)
        return regressions, compared, out.getvalue()

    @staticmethod
    def _hosted(r, host_threads):
        r["host_threads"] = host_threads
        return r

    def test_oversized_gone_rows_collapse_to_skipped_summary(self):
        regressions, compared, out = self._compare(
            [self._hosted(row(threads=1, metric=10.0), 2),
             self._hosted(row(threads=2, metric=10.0), 2)],
            [row(threads=1, metric=10.0), row(threads=2, metric=10.0),
             row(threads=4, metric=10.0), row(threads=8, metric=10.0)])
        self.assertEqual(regressions, [])
        self.assertEqual(compared, 2)
        self.assertNotIn("[gone]", out)
        self.assertIn("[skipped]  2 baseline row(s)", out)
        self.assertIn("host_threads=2", out)

    def test_reachable_gone_row_still_reports_per_row(self):
        _, _, out = self._compare(
            [self._hosted(row(threads=2, metric=10.0), 4)],
            [row(threads=2, metric=10.0),
             row(workload="skewed_flood", threads=2, skew=8, metric=10.0),
             row(threads=8, metric=10.0)])
        self.assertIn("[gone]", out)       # skewed_flood/2 is reachable
        self.assertIn("skewed_flood", out)
        self.assertIn("[skipped]  1 baseline row(s)", out)  # threads=8 is not

    def test_without_host_threads_every_gone_row_reports(self):
        _, _, out = self._compare(
            [row(threads=1, metric=10.0)],
            [row(threads=1, metric=10.0), row(threads=64, metric=10.0)])
        self.assertIn("[gone]", out)
        self.assertNotIn("[skipped]", out)


class UpdateTest(unittest.TestCase):
    def test_update_never_writes_metricless_baseline_row(self):
        pooled = cr.pool_medians(
            [[row(metric=None), row(n=8192, metric=12.0)]], KEYS)
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "BENCH_engine.json")
            out = io.StringIO()
            with redirect_stdout(out):
                cr.write_baseline(path, "engine_microbench", pooled, KEYS)
            with open(path) as f:
                doc = json.load(f)
        self.assertEqual(len(doc["rows"]), 1)
        for r in doc["rows"]:
            self.assertIn(cr.METRIC, r)
        self.assertIn("not writing a metric-less baseline row", out.getvalue())


if __name__ == "__main__":
    unittest.main()
