// Ablation AB1 (Section 3.2): sub-part divisions are the message rescue.
//
// Same graph, same shortcut machinery; the only knob is who injects into
// blocks — Õ(n/D) sub-part representatives (ours) or every node (prior
// work). Sweeping the apex grid depth D shows the message gap widening
// linearly in D while rounds stay comparable: exactly the paper's Section
// 3.1/3.2 narrative.
#include "bench/common.hpp"

namespace pw::bench {
namespace {

void run() {
  Table table({"depth D", "n", "strategy", "#subparts", "setup msgs",
               "query rnds", "query msgs", "query msgs/m"});
  for (int depth : {8, 16, 32}) {
    auto inst = apex_instance(depth, 2048 / depth);
    for (const auto strat :
         {core::PaStrategy::Ours, core::PaStrategy::NoSubparts}) {
      sim::Engine eng(inst.g);
      core::PaSolverConfig cfg;
      cfg.strategy = strat;
      cfg.seed = 53;
      core::PaSolver solver(eng, cfg);
      const auto s0 = eng.snap();
      solver.set_partition(inst.p);
      const auto setup = eng.since(s0);
      std::vector<std::uint64_t> values(inst.g.n(), 1);
      const auto s1 = eng.snap();
      solver.aggregate(agg::sum(), values);
      const auto query = eng.since(s1);
      table.add_row(
          {fm(static_cast<std::uint64_t>(depth)),
           fm(static_cast<std::uint64_t>(inst.g.n())),
           strat == core::PaStrategy::Ours ? "ours" : "no-subparts",
           fm(static_cast<std::uint64_t>(solver.structures().div.num_subparts)),
           fm(setup.messages), fm(query.rounds), fm(query.messages),
           fd(static_cast<double>(query.messages) / inst.g.num_arcs())});
    }
  }
  table.print(
      "Ablation AB1 — sub-part divisions on the apex grid: representative-"
      "only injection keeps messages near m while every-node injection "
      "grows with D");
}

}  // namespace
}  // namespace pw::bench

int main() {
  pw::bench::run();
  return 0;
}
