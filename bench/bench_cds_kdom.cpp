// Corollaries A.2 and A.3: connected dominating sets and k-dominating sets.
//
// k-dominating set (A.3): size <= 6n/k with every node within k hops of a
// dominator, in Õ(D + sqrt(n)) rounds — including k far beyond D or
// sqrt(n), the regime the corollary highlights. The harness sweeps k and
// reports set size against the 6n/k bound plus the actual max distance.
//
// CDS (A.2): the BFS-internal-nodes CDS and its size ratio against the
// centralized greedy reference, plus the component-aggregate primitives
// (top-k, sum) that Ghaffari's O(log n)-approximation consumes.
#include "bench/common.hpp"

#include "src/apps/domination.hpp"

namespace pw::bench {
namespace {

int max_domination_distance(const graph::Graph& g, const std::vector<int>& dom) {
  std::vector<int> dist(g.n(), -1);
  std::vector<int> frontier;
  for (int v : dom) {
    dist[v] = 0;
    frontier.push_back(v);
  }
  int d = 0;
  while (!frontier.empty()) {
    std::vector<int> next;
    for (int v : frontier)
      for (const auto& arc : g.arcs(v))
        if (dist[arc.to] < 0) {
          dist[arc.to] = d + 1;
          next.push_back(arc.to);
        }
    frontier.swap(next);
    if (!frontier.empty()) ++d;
  }
  return d;
}

void run() {
  Rng rng(49);
  JsonEmitter json("cds_kdom_corollaries_a2_a3");
  const int host_threads = detected_cores();

  {
    Table table({"graph", "k", "thr", "|S|", "6n/k bound", "max dist",
                 "rounds", "messages", "ms"});
    auto g = graph::gen::grid(24, 48);  // D = 70, n = 1152
    for (const int threads : thread_sweep(g.n()))
      for (int k : {12, 24, 48, 96, 192}) {
        sim::Engine eng(g, sim::ExecutionPolicy{threads});
        const auto t0 = now_ns();
        const auto res = apps::k_dominating_set(eng, k, {});
        const auto wall_ns = now_ns() - t0;
        apps::validate_k_domination(g, res.dominators, k);
        table.add_row({"grid(24x48)", fm(static_cast<std::uint64_t>(k)),
                       fm(static_cast<std::uint64_t>(threads)),
                       fm(res.dominators.size()),
                       fm(static_cast<std::uint64_t>(6 * g.n() / k + 1)),
                       fm(static_cast<std::uint64_t>(
                           max_domination_distance(g, res.dominators))),
                       fm(res.stats.rounds), fm(res.stats.messages),
                       fd(static_cast<double>(wall_ns) * 1e-6, 3)});
        json.add_row({{"section", "kdom"},
                      {"graph", "grid(24x48)"},
                      {"n", g.n()},
                      {"k", k},
                      {"threads", threads},
                      {"pipeline", eng.pipelined() ? 1 : 0},
                      {"host_threads", host_threads},
                      {"set_size", res.dominators.size()},
                      {"bound", static_cast<std::uint64_t>(6 * g.n() / k + 1)},
                      {"rounds", res.stats.rounds},
                      {"messages", res.stats.messages},
                      {"wall_ns", wall_ns},
                      {"ns_per_message",
                       static_cast<double>(wall_ns) /
                           static_cast<double>(std::max<std::uint64_t>(
                               1, res.stats.messages))}});
      }
    table.print("Corollary A.3 — k-dominating sets (size <= 6n/k, distance <= k)");
  }

  {
    Table table({"graph", "n", "thr", "CDS size", "greedy ref", "ratio",
                 "rounds", "messages", "ms"});
    for (int n : {256, 512, 1024}) {
      auto g = graph::gen::random_connected(n, 3 * n, rng);
      const auto ref = apps::greedy_cds_reference(g);
      int ref_size = 0;
      for (char c : ref) ref_size += c;
      for (const int threads : thread_sweep(n)) {
        sim::Engine eng(g, sim::ExecutionPolicy{threads});
        const auto t0 = now_ns();
        const auto res = apps::connected_dominating_set(eng, {});
        const auto wall_ns = now_ns() - t0;
        apps::validate_cds(g, res.in_cds);
        table.add_row(
            {"GNM", fm(static_cast<std::uint64_t>(n)),
             fm(static_cast<std::uint64_t>(threads)),
             fm(static_cast<std::uint64_t>(res.size)),
             fm(static_cast<std::uint64_t>(ref_size)),
             fd(static_cast<double>(res.size) / std::max(1, ref_size)),
             fm(res.stats.rounds), fm(res.stats.messages),
             fd(static_cast<double>(wall_ns) * 1e-6, 3)});
        json.add_row({{"section", "cds"},
                      {"graph", "GNM"},
                      {"n", n},
                      {"threads", threads},
                      {"pipeline", eng.pipelined() ? 1 : 0},
                      {"host_threads", host_threads},
                      {"cds_size", res.size},
                      {"greedy_ref", ref_size},
                      {"rounds", res.stats.rounds},
                      {"messages", res.stats.messages},
                      {"wall_ns", wall_ns},
                      {"ns_per_message",
                       static_cast<double>(wall_ns) /
                           static_cast<double>(std::max<std::uint64_t>(
                               1, res.stats.messages))}});
      }
    }
    table.print(
        "Corollary A.2 — connected dominating sets (distributed vs greedy "
        "reference; see DESIGN.md for the substitution note)");
  }

  {
    // The component aggregates Ghaffari's algorithm actually consumes.
    Table table({"primitive", "n", "thr", "components", "rounds", "messages",
                 "ms"});
    auto g = graph::gen::random_connected(512, 1280, rng);
    std::vector<char> h(g.m(), 0);
    for (int e = 0; e < g.m(); ++e) h[e] = rng.next_bool(0.5);
    std::vector<std::uint64_t> values(g.n());
    for (auto& x : values) x = rng.next_below(1u << 16);
    auto report = [&](const char* primitive, int threads, bool pipeline,
                      const sim::PhaseStats& st, std::uint64_t wall_ns) {
      table.add_row({primitive, fm(static_cast<std::uint64_t>(g.n())),
                     fm(static_cast<std::uint64_t>(threads)), "-",
                     fm(st.rounds), fm(st.messages),
                     fd(static_cast<double>(wall_ns) * 1e-6, 3)});
      json.add_row({{"section", "aggregates"},
                    {"primitive", primitive},
                    {"n", g.n()},
                    {"threads", threads},
                    {"pipeline", pipeline ? 1 : 0},
                    {"host_threads", host_threads},
                    {"rounds", st.rounds},
                    {"messages", st.messages},
                    {"wall_ns", wall_ns},
                    {"ns_per_message",
                     static_cast<double>(wall_ns) /
                         static_cast<double>(
                             std::max<std::uint64_t>(1, st.messages))}});
    };
    for (const int threads : thread_sweep(g.n())) {
      {
        sim::Engine eng(g, sim::ExecutionPolicy{threads});
        const auto snap = eng.snap();
        const auto t0 = now_ns();
        apps::component_sum(eng, h, values, {});
        report("component_sum", threads, eng.pipelined(), eng.since(snap),
               now_ns() - t0);
      }
      {
        sim::Engine eng(g, sim::ExecutionPolicy{threads});
        const auto snap = eng.snap();
        const auto t0 = now_ns();
        apps::component_topk(eng, h, values, 3, {});
        report("component_top3", threads, eng.pipelined(), eng.since(snap),
               now_ns() - t0);
      }
    }
    table.print("Corollary A.2 — Thurimella-extension aggregates (PA instances)");
  }
  json.write("BENCH_cds_kdom.json");
}

}  // namespace
}  // namespace pw::bench

int main() {
  pw::bench::run();
  return 0;
}
