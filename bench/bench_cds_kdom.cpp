// Corollaries A.2 and A.3: connected dominating sets and k-dominating sets.
//
// k-dominating set (A.3): size <= 6n/k with every node within k hops of a
// dominator, in Õ(D + sqrt(n)) rounds — including k far beyond D or
// sqrt(n), the regime the corollary highlights. The harness sweeps k and
// reports set size against the 6n/k bound plus the actual max distance.
//
// CDS (A.2): the BFS-internal-nodes CDS and its size ratio against the
// centralized greedy reference, plus the component-aggregate primitives
// (top-k, sum) that Ghaffari's O(log n)-approximation consumes.
#include "bench/common.hpp"

#include "src/apps/domination.hpp"

namespace pw::bench {
namespace {

int max_domination_distance(const graph::Graph& g, const std::vector<int>& dom) {
  std::vector<int> dist(g.n(), -1);
  std::vector<int> frontier;
  for (int v : dom) {
    dist[v] = 0;
    frontier.push_back(v);
  }
  int d = 0;
  while (!frontier.empty()) {
    std::vector<int> next;
    for (int v : frontier)
      for (const auto& arc : g.arcs(v))
        if (dist[arc.to] < 0) {
          dist[arc.to] = d + 1;
          next.push_back(arc.to);
        }
    frontier.swap(next);
    if (!frontier.empty()) ++d;
  }
  return d;
}

void run() {
  Rng rng(49);

  {
    Table table({"graph", "k", "|S|", "6n/k bound", "max dist", "rounds",
                 "messages"});
    auto g = graph::gen::grid(24, 48);  // D = 70, n = 1152
    for (int k : {12, 24, 48, 96, 192}) {
      sim::Engine eng(g);
      const auto res = apps::k_dominating_set(eng, k, {});
      apps::validate_k_domination(g, res.dominators, k);
      table.add_row({"grid(24x48)", fm(static_cast<std::uint64_t>(k)),
                     fm(res.dominators.size()),
                     fm(static_cast<std::uint64_t>(6 * g.n() / k + 1)),
                     fm(static_cast<std::uint64_t>(
                         max_domination_distance(g, res.dominators))),
                     fm(res.stats.rounds), fm(res.stats.messages)});
    }
    table.print("Corollary A.3 — k-dominating sets (size <= 6n/k, distance <= k)");
  }

  {
    Table table({"graph", "n", "CDS size", "greedy ref", "ratio", "rounds",
                 "messages"});
    for (int n : {256, 512, 1024}) {
      auto g = graph::gen::random_connected(n, 3 * n, rng);
      sim::Engine eng(g);
      const auto res = apps::connected_dominating_set(eng, {});
      apps::validate_cds(g, res.in_cds);
      const auto ref = apps::greedy_cds_reference(g);
      int ref_size = 0;
      for (char c : ref) ref_size += c;
      table.add_row({"GNM", fm(static_cast<std::uint64_t>(n)),
                     fm(static_cast<std::uint64_t>(res.size)),
                     fm(static_cast<std::uint64_t>(ref_size)),
                     fd(static_cast<double>(res.size) / std::max(1, ref_size)),
                     fm(res.stats.rounds), fm(res.stats.messages)});
    }
    table.print(
        "Corollary A.2 — connected dominating sets (distributed vs greedy "
        "reference; see DESIGN.md for the substitution note)");
  }

  {
    // The component aggregates Ghaffari's algorithm actually consumes.
    Table table({"primitive", "n", "components", "rounds", "messages"});
    auto g = graph::gen::random_connected(512, 1280, rng);
    std::vector<char> h(g.m(), 0);
    for (int e = 0; e < g.m(); ++e) h[e] = rng.next_bool(0.5);
    std::vector<std::uint64_t> values(g.n());
    for (auto& x : values) x = rng.next_below(1u << 16);
    {
      sim::Engine eng(g);
      const auto snap = eng.snap();
      apps::component_sum(eng, h, values, {});
      const auto st = eng.since(snap);
      table.add_row({"component_sum", fm(static_cast<std::uint64_t>(g.n())),
                     "-", fm(st.rounds), fm(st.messages)});
    }
    {
      sim::Engine eng(g);
      const auto snap = eng.snap();
      apps::component_topk(eng, h, values, 3, {});
      const auto st = eng.since(snap);
      table.add_row({"component_top3", fm(static_cast<std::uint64_t>(g.n())),
                     "-", fm(st.rounds), fm(st.messages)});
    }
    table.print("Corollary A.2 — Thurimella-extension aggregates (PA instances)");
  }
}

}  // namespace
}  // namespace pw::bench

int main() {
  pw::bench::run();
  return 0;
}
