// Corollary 1.3: MST in Õ(bD + c) rounds and Õ(m) messages, and the
// trade-off it resolves — prior algorithms were either message-optimal but
// round-suboptimal (aggregating inside parts only) or round-friendly but
// message-hungry (every node talks to the shortcut / global tree).
//
// On the apex-grid family (small D, long parts) the harness reports rounds
// and messages of Borůvka-over-PA under the three strategies, plus weight
// correctness against Kruskal. The paper's shape: ours is simultaneously
// close to the best of both columns.
#include "bench/common.hpp"

#include "src/apps/mst.hpp"

namespace pw::bench {
namespace {

void run() {
  Rng rng(45);
  Table table({"graph", "n", "strategy", "thr", "total rnds", "total msgs",
               "select rnds", "select msgs", "msgs/m", "phases", "ms",
               "weight ok"});
  JsonEmitter json("mst_corollary_1_3");
  const int host_threads = detected_cores();

  auto bench_graph = [&](const std::string& name, const graph::Graph& g) {
    const std::int64_t ref = apps::kruskal_mst_weight(g);
    // Rounds/messages are policy-invariant (DESIGN.md §7; pinned by
    // tests/apps_parallel_test.cpp), so the thread sweep only moves the
    // wall-clock columns; every row still re-checks the weight oracle.
    auto report = [&](const char* strategy, int threads, bool pipeline,
                      const apps::MstResult& res, std::uint64_t wall_ns) {
      table.add_row({name, fm(static_cast<std::uint64_t>(g.n())), strategy,
                     fm(static_cast<std::uint64_t>(threads)),
                     fm(res.stats.rounds), fm(res.stats.messages),
                     fm(res.select_stats.rounds), fm(res.select_stats.messages),
                     fd(static_cast<double>(res.stats.messages) / g.num_arcs()),
                     fm(static_cast<std::uint64_t>(res.phases)),
                     fd(static_cast<double>(wall_ns) * 1e-6, 3),
                     res.total_weight == ref ? "yes" : "NO"});
      json.add_row(
          {{"graph", name},
           {"n", g.n()},
           {"strategy", strategy},
           {"threads", threads},
           {"pipeline", pipeline ? 1 : 0},
           {"host_threads", host_threads},
           {"rounds", res.stats.rounds},
           {"messages", res.stats.messages},
           {"select_rounds", res.select_stats.rounds},
           {"select_messages", res.select_stats.messages},
           {"phases", res.phases},
           {"wall_ns", wall_ns},
           {"ns_per_message",
            static_cast<double>(wall_ns) /
                static_cast<double>(std::max<std::uint64_t>(
                    1, res.stats.messages))},
           {"weight_ok", res.total_weight == ref ? "yes" : "NO"}});
    };
    struct Strat {
      const char* name;
      core::PaStrategy s;
    };
    for (const int threads : thread_sweep(g.n())) {
      const sim::ExecutionPolicy policy{threads};
      for (const auto strat :
           {Strat{"ours", core::PaStrategy::Ours},
            Strat{"no-subparts", core::PaStrategy::NoSubparts}}) {
        sim::Engine eng(g, policy);
        core::PaSolverConfig cfg;
        cfg.strategy = strat.s;
        cfg.seed = 31;
        const auto t0 = now_ns();
        const auto res = apps::boruvka_mst(eng, cfg);
        report(strat.name, threads, eng.pipelined(), res, now_ns() - t0);
      }
      {
        sim::Engine eng(g, policy);
        const auto t0 = now_ns();
        const auto res = apps::ghs_style_mst(eng);
        report("ghs-style", threads, eng.pipelined(), res, now_ns() - t0);
      }
    }
  };

  // The shape-separating instance: a light path (its edges form the MST, so
  // Boruvka fragments become long path segments) plus an apex joined to
  // every 16th node by heavy edges (keeping D ~ 18 while fragments reach
  // diameter ~n). Min-edge selection without shortcuts pays the fragment
  // diameter per phase; with shortcuts it pays Õ(D).
  {
    const int len = 3072, spoke = 16;
    std::vector<graph::Edge> edges;
    for (int i = 0; i + 1 < len; ++i)
      edges.push_back({i, i + 1, 1 + static_cast<graph::Weight>(i % 9)});
    for (int i = 0; i < len; i += spoke)
      edges.push_back({len, i, 1000000});
    bench_graph("apex_path(n=3072)",
                graph::Graph::from_edges(len + 1, std::move(edges)));
  }
  bench_graph("apex_grid(6x512)", graph::gen::with_random_weights(
                                      graph::gen::apex_grid(6, 512), 1000, rng));
  bench_graph("GNM(n=1024)", graph::gen::with_random_weights(
                                 graph::gen::random_connected(1024, 3072, rng),
                                 1000, rng));
  bench_graph("grid(24x24)", graph::gen::with_random_weights(
                                 graph::gen::grid(24, 24), 1000, rng));

  table.print(
      "Corollary 1.3 — Boruvka-over-PA vs the round-suboptimal ghs-style "
      "baseline (fragment-tree-only coordination, Õ(m) messages, Θ(n)-round "
      "phases) and the message-suboptimal no-subparts strategy. 'select' "
      "columns isolate the min-outgoing-edge coordination per run; totals "
      "include per-phase structure (re)construction");
  json.write("BENCH_mst.json");
}

}  // namespace
}  // namespace pw::bench

int main() {
  pw::bench::run();
  return 0;
}
