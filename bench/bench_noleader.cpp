// Ablation AB3 (Appendix B / Lemma B.1): dropping the known-leader
// assumption costs only a logarithmic factor.
//
// The harness runs the same PA instances with leaders given (PaSolver) and
// with leaders unknown (Algorithm 9) and reports the multiplicative
// overhead in rounds and messages, together with the number of coarsening
// rounds (the log factor itself).
#include "bench/common.hpp"

namespace pw::bench {
namespace {

void run() {
  Rng rng(55);
  Table table({"graph", "n", "parts", "thr", "with-leader rnds",
               "no-leader rnds", "rnds x", "with-leader msgs",
               "no-leader msgs", "msgs x", "coarsenings", "wl ms", "nl ms"});
  JsonEmitter json("noleader_ablation_ab3");
  const int host_threads = detected_cores();

  auto bench_instance = [&](const Instance& inst) {
    for (const int threads : thread_sweep(inst.g.n())) {
      const sim::ExecutionPolicy policy{threads};
      std::vector<std::uint64_t> values(inst.g.n(), 1);

      // With-leader reference, split into the setup_ns/query_ns phases
      // measure_pa records for the table benches.
      sim::Engine eng1(inst.g, policy);
      core::PaSolverConfig cfg;
      cfg.seed = 67;
      core::PaSolver solver(eng1, cfg);
      const auto w0 = eng1.snap();
      const auto t0 = now_ns();
      solver.set_partition(inst.p);
      const auto setup_ns = now_ns() - t0;
      const auto t1 = now_ns();
      solver.aggregate(agg::sum(), values);
      const auto query_ns = now_ns() - t1;
      const auto with_leader = eng1.since(w0);

      sim::Engine eng2(inst.g, policy);
      graph::Partition no_leader_p = inst.p;
      no_leader_p.leader.clear();
      const auto t2 = now_ns();
      const auto res =
          core::pa_noleader(eng2, no_leader_p, agg::sum(), values, cfg);
      const auto noleader_ns = now_ns() - t2;

      table.add_row(
          {inst.name, fm(static_cast<std::uint64_t>(inst.g.n())),
           fm(static_cast<std::uint64_t>(inst.p.num_parts)),
           fm(static_cast<std::uint64_t>(threads)),
           fm(with_leader.rounds), fm(res.stats.rounds),
           fd(static_cast<double>(res.stats.rounds) / with_leader.rounds),
           fm(with_leader.messages), fm(res.stats.messages),
           fd(static_cast<double>(res.stats.messages) / with_leader.messages),
           fm(static_cast<std::uint64_t>(res.coarsening_rounds)),
           fd(static_cast<double>(setup_ns + query_ns) * 1e-6, 3),
           fd(static_cast<double>(noleader_ns) * 1e-6, 3)});
      json.add_row(
          {{"graph", inst.name},
           {"n", inst.g.n()},
           {"parts", inst.p.num_parts},
           {"threads", threads},
           {"pipeline", eng2.pipelined() ? 1 : 0},
           {"host_threads", host_threads},
           {"with_leader_rounds", with_leader.rounds},
           {"with_leader_messages", with_leader.messages},
           {"with_leader_setup_ns", setup_ns},
           {"with_leader_query_ns", query_ns},
           {"noleader_rounds", res.stats.rounds},
           {"noleader_messages", res.stats.messages},
           {"noleader_wall_ns", noleader_ns},
           {"ns_per_message",
            static_cast<double>(noleader_ns) /
                static_cast<double>(
                    std::max<std::uint64_t>(1, res.stats.messages))},
           {"rounds_overhead",
            static_cast<double>(res.stats.rounds) / with_leader.rounds},
           {"messages_overhead",
            static_cast<double>(res.stats.messages) / with_leader.messages},
           {"coarsenings", res.coarsening_rounds}});
    }
  };

  bench_instance(planar_instance(24));
  bench_instance(general_instance(768, rng));
  bench_instance(apex_instance(12, 96));

  table.print(
      "Ablation AB3 (Lemma B.1) — PA with vs without known leaders "
      "(Algorithm 9): overhead is the logarithmic coarsening factor");
  json.write("BENCH_noleader.json");
}

}  // namespace
}  // namespace pw::bench

int main() {
  pw::bench::run();
  return 0;
}
