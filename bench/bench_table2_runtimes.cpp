// Table 2 (Appendix C): running times of PA per graph family, deterministic
// and randomized:
//
//   general: Õ(D + sqrt(n))   planar: Õ(D)   treewidth t: Õ(tD)
//   pathwidth p: Õ(pD)
//
// Measured query rounds are reported next to the paper's predictor for the
// family (D + sqrt(n) for general, D for the bounded-parameter families) and
// the ratio between the two — the paper's claim is that this ratio stays a
// polylog constant as instances grow. Messages are reported as a multiple of
// m (the Õ(m) claim of Theorem 1.2).
#include "bench/common.hpp"

namespace pw::bench {
namespace {

void run() {
  Rng rng(43);
  struct Row {
    Instance inst;
    double predictor;
    std::string predictor_name;
  };
  std::vector<Row> rows;
  {
    auto i = general_instance(512, rng);
    const double pred = i.diameter + std::sqrt(i.g.n());
    rows.push_back({std::move(i), pred, "D+sqrt(n)"});
  }
  {
    auto i = general_instance(2048, rng);
    const double pred = i.diameter + std::sqrt(i.g.n());
    rows.push_back({std::move(i), pred, "D+sqrt(n)"});
  }
  {
    auto i = planar_instance(24);
    rows.push_back({std::move(i), 0, "D"});
    rows.back().predictor = rows.back().inst.diameter;
  }
  {
    auto i = planar_instance(48);
    rows.push_back({std::move(i), 0, "D"});
    rows.back().predictor = rows.back().inst.diameter;
  }
  {
    auto i = genus_instance(32, rng);
    rows.push_back({std::move(i), 0, "sqrt(g)*D"});
    rows.back().predictor = rows.back().inst.diameter;
  }
  {
    auto i = treewidth_instance(1024, 3, rng);
    rows.push_back({std::move(i), 0, "t*D"});
    rows.back().predictor = 3.0 * rows.back().inst.diameter;
  }
  {
    auto i = pathwidth_instance(384, 2, rng);
    rows.push_back({std::move(i), 0, "p*D"});
    rows.back().predictor = rows.back().inst.diameter;
  }

  Table table({"family", "n", "D", "mode", "PA rounds", "pred", "rounds/pred",
               "PA msgs", "msgs/m"});
  JsonEmitter json("table2_pa_runtimes");
  for (const auto& row : rows) {
    for (const auto mode : {core::PaMode::Randomized, core::PaMode::Deterministic}) {
      core::PaSolverConfig cfg;
      cfg.mode = mode;
      cfg.seed = 17;
      const auto m = measure_pa(row.inst, cfg);
      table.add_row(
          {row.inst.name, fm(static_cast<std::uint64_t>(row.inst.g.n())),
           fm(static_cast<std::uint64_t>(row.inst.diameter)),
           mode == core::PaMode::Randomized ? "rand" : "det",
           fm(m.query.rounds), row.predictor_name,
           fd(static_cast<double>(m.query.rounds) / std::max(1.0, row.predictor)),
           fm(m.query.messages),
           fd(static_cast<double>(m.query.messages) / row.inst.g.num_arcs())});
      json.add_row(
          {{"family", row.inst.name},
           {"n", row.inst.g.n()},
           {"m", row.inst.g.m()},
           {"diameter", row.inst.diameter},
           {"mode", mode == core::PaMode::Randomized ? "rand" : "det"},
           {"predictor", row.predictor_name},
           {"predictor_value", row.predictor},
           {"rounds", m.query.rounds},
           {"messages", m.query.messages},
           {"wall_ns", m.query_ns},
           {"ns_per_round",
            static_cast<double>(m.query_ns) /
                static_cast<double>(std::max<std::uint64_t>(1, m.query.rounds))},
           {"ns_per_message",
            static_cast<double>(m.query_ns) /
                static_cast<double>(std::max<std::uint64_t>(1, m.query.messages))},
           {"setup_rounds", m.setup.rounds},
           {"setup_messages", m.setup.messages},
           {"setup_wall_ns", m.setup_ns}});
    }
  }
  table.print(
      "Table 2 — PA round complexity per family (one Algorithm-1 query on "
      "the constructed structures)");
  json.write("BENCH_table2.json");
}

}  // namespace
}  // namespace pw::bench

int main() {
  pw::bench::run();
  return 0;
}
