// Table 1 (Appendix C): known bounds on block parameter b and congestion c
// per graph family, versus the parameters our constructions actually find.
//
//   family     paper's b     paper's c
//   general        1          sqrt(n)
//   planar      O(log D)       Õ(D)
//   treewidth t    O(t)        Õ(t)
//   pathwidth p      p           p
//
// For each family this harness builds the randomized and deterministic
// shortcut through the full pipeline (doubling trick included) and reports
// the measured block parameter and congestion next to the paper's bound.
#include "bench/common.hpp"

namespace pw::bench {
namespace {

void run() {
  Rng rng(42);
  std::vector<std::pair<Instance, std::string>> rows;
  rows.push_back({general_instance(1024, rng), "b=1, c=sqrt(n)=32"});
  rows.push_back({planar_instance(32), "b=O(log D), c=~D"});
  rows.push_back({genus_instance(32, rng), "b=O(sqrt g)=O(1), c=~D"});
  rows.push_back({treewidth_instance(1024, 3, rng), "b=O(t)=O(3), c=~t"});
  rows.push_back({pathwidth_instance(256, 3, rng), "b=p=1, c=p=1"});

  Table table({"family", "n", "m", "D", "paper (b, c)", "mode", "b meas",
               "c meas", "kappa*"});
  JsonEmitter json("table1_shortcut_params");
  for (const auto& [inst, bound] : rows) {
    for (const auto mode : {core::PaMode::Randomized, core::PaMode::Deterministic}) {
      core::PaSolverConfig cfg;
      cfg.mode = mode;
      cfg.seed = 11;
      const auto m = measure_pa(inst, cfg);
      table.add_row({inst.name, fm(static_cast<std::uint64_t>(inst.g.n())),
                     fm(static_cast<std::uint64_t>(inst.g.m())),
                     fm(static_cast<std::uint64_t>(inst.diameter)), bound,
                     mode == core::PaMode::Randomized ? "rand" : "det",
                     fm(static_cast<std::uint64_t>(m.block_parameter)),
                     fm(static_cast<std::uint64_t>(m.shortcut_congestion)),
                     fm(static_cast<std::uint64_t>(m.final_guess))});
      json.add_row({{"family", inst.name},
                    {"n", inst.g.n()},
                    {"m", inst.g.m()},
                    {"diameter", inst.diameter},
                    {"paper_bound", bound},
                    {"mode", mode == core::PaMode::Randomized ? "rand" : "det"},
                    {"block_parameter", m.block_parameter},
                    {"congestion", m.shortcut_congestion},
                    {"final_guess", m.final_guess},
                    {"setup_rounds", m.setup.rounds},
                    {"setup_messages", m.setup.messages},
                    {"setup_wall_ns", m.setup_ns},
                    {"query_rounds", m.query.rounds},
                    {"query_messages", m.query.messages},
                    {"query_wall_ns", m.query_ns}});
    }
  }
  table.print(
      "Table 1 — shortcut quality per family (measured vs paper bounds); "
      "kappa* = doubling-trick guess at which the last part froze");
  json.write("BENCH_table1.json");
}

}  // namespace
}  // namespace pw::bench

int main() {
  pw::bench::run();
  return 0;
}
