// Theorem 1.2: PA in Õ(bD + c) rounds (randomized) / Õ(b(D + c)) rounds
// (deterministic) with Õ(m) messages — scaling sweep over n on general
// graphs, with the per-stage construction/query breakdown.
//
// The series to read: query rounds / (D + sqrt(n)) and query messages / m
// staying (poly)logarithmically flat as n grows 8x.
#include "bench/common.hpp"

namespace pw::bench {
namespace {

void run() {
  Rng rng(44);
  Table table({"n", "m", "D", "mode", "setup rnds", "setup msgs", "query rnds",
               "query msgs", "rnds/(D+sqrt n)", "msgs/m"});
  for (int n : {256, 512, 1024, 2048}) {
    auto inst = general_instance(n, rng);
    for (const auto mode : {core::PaMode::Randomized, core::PaMode::Deterministic}) {
      core::PaSolverConfig cfg;
      cfg.mode = mode;
      cfg.seed = 29;
      const auto m = measure_pa(inst, cfg);
      const double pred = inst.diameter + std::sqrt(n);
      table.add_row({fm(static_cast<std::uint64_t>(n)),
                     fm(static_cast<std::uint64_t>(inst.g.m())),
                     fm(static_cast<std::uint64_t>(inst.diameter)),
                     mode == core::PaMode::Randomized ? "rand" : "det",
                     fm(m.setup.rounds), fm(m.setup.messages),
                     fm(m.query.rounds), fm(m.query.messages),
                     fd(m.query.rounds / pred),
                     fd(static_cast<double>(m.query.messages) /
                        inst.g.num_arcs())});
    }
  }
  table.print(
      "Theorem 1.2 — PA scaling on general graphs (setup = leader election + "
      "BFS tree + sub-part division + shortcut construction, query = one "
      "Algorithm-1 run)");
}

}  // namespace
}  // namespace pw::bench

int main() {
  pw::bench::run();
  return 0;
}
