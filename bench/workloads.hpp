// Tiny synthetic engine workloads shared by the microbench and the engine
// allocation tests, so the workload the perf trajectory measures and the
// workload the zero-allocation guard protects are the same by construction.
#pragma once

#include <algorithm>
#include <vector>

#include "src/sim/engine.hpp"

namespace pw::bench {

// One flood phase from node 0: every node forwards on all ports the first
// time it is reached. `seen` is caller-owned scratch of size n, reused
// across phases so repeated floods allocate nothing.
inline void flood_workload(sim::Engine& eng, std::vector<char>& seen) {
  const auto& g = eng.graph();
  std::fill(seen.begin(), seen.end(), 0);
  seen[0] = 1;
  eng.wake(0);
  eng.run([&](int v) {
    bool fresh = v == 0 && eng.inbox(v).empty();
    if (!seen[v]) {
      seen[v] = 1;
      fresh = true;
    }
    if (!fresh) return;
    for (int p = 0; p < g.degree(v); ++p) eng.send(v, p, sim::Msg{});
  });
}

}  // namespace pw::bench
