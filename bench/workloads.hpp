// Tiny synthetic engine workloads shared by the microbench and the engine
// allocation tests, so the workload the perf trajectory measures and the
// workload the zero-allocation guard protects are the same by construction.
#pragma once

#include <algorithm>
#include <vector>

#include "src/sim/engine.hpp"

namespace pw::bench {

// One flood phase from node 0: every node forwards on all ports the first
// time it is reached. `seen` is caller-owned scratch of size n, reused
// across phases so repeated floods allocate nothing.
inline void flood_workload(sim::Engine& eng, std::vector<char>& seen) {
  const auto& g = eng.graph();
  std::fill(seen.begin(), seen.end(), 0);
  seen[0] = 1;
  eng.wake(0);
  eng.run([&](int v) {
    bool fresh = v == 0 && eng.inbox(v).empty();
    if (!seen[v]) {
      seen[v] = 1;
      fresh = true;
    }
    if (!fresh) return;
    for (int p = 0; p < g.degree(v); ++p) eng.send(v, p, sim::Msg{});
  });
}

// One skewed-activity phase: only the TOP n/skew_denom node ids are senders
// — they re-wake themselves and send on every port each of `rounds` rounds,
// while everything below just receives. With contiguous id-range shards the
// callback work of a round concentrates in the top shard(s) and the rest
// finish their sweeps almost immediately — exactly the regime the eager
// per-bucket seal of DESIGN.md §8 targets: a low-activity destination's
// merge unlocks as soon as the hot shard's sweep passes its last arc into
// it, instead of waiting out the whole hot sweep. Defined purely in node-id
// terms, so the work is identical under every shard layout (the trace/drift
// guards rely on that). The final drain discards the hot set's last
// self-wakes so repeated phases do identical work.
//
// `skew_denom` sets the hot-band fraction (hot senders = n / skew_denom,
// at least 1): 8 is the historical default, larger values concentrate the
// sending into a thinner, hotter band — the regime the incremental merge's
// largest-first claim targets. The microbench sweeps it via PW_BENCH_SKEW.
inline void skewed_flood_workload(sim::Engine& eng, int rounds,
                                  int skew_denom = 8) {
  const auto& g = eng.graph();
  if (skew_denom < 1) skew_denom = 1;
  const int hot_beg = g.n() - std::max(1, g.n() / skew_denom);
  for (int v = hot_beg; v < g.n(); ++v) eng.wake(v);
  eng.run(
      [&](int v) {
        if (v < hot_beg) return;  // cold band: receive only
        eng.wake(v);
        for (int p = 0; p < g.degree(v); ++p) eng.send(v, p, sim::Msg{});
      },
      static_cast<std::uint64_t>(rounds));
  eng.drain();
}

}  // namespace pw::bench
