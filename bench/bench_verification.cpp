// Corollary A.1: the Das Sarma et al. verification problems in Õ(D+sqrt(n))
// rounds and Õ(m) messages, via the Thurimella component-labelling PA
// instance.
//
// For each verifier the harness reports rounds/messages and the ratios to
// (D + sqrt(n)) and m; the claim is that both ratios stay polylog-bounded.
#include "bench/common.hpp"

#include "src/apps/verification.hpp"

namespace pw::bench {
namespace {

void run() {
  Rng rng(48);
  Table table({"verifier", "n", "m", "verdict", "rounds", "messages",
               "rnds/(D+sqrt n)", "msgs/m"});

  auto add = [&](const std::string& name, const graph::Graph& g, bool verdict,
                 const sim::PhaseStats& st) {
    const double pred = graph::diameter_estimate(g) + std::sqrt(g.n());
    table.add_row({name, fm(static_cast<std::uint64_t>(g.n())),
                   fm(static_cast<std::uint64_t>(g.m())),
                   verdict ? "accept" : "reject", fm(st.rounds),
                   fm(st.messages), fd(st.rounds / pred),
                   fd(static_cast<double>(st.messages) / g.num_arcs())});
  };

  auto g = graph::gen::random_connected(512, 1400, rng);

  // Spanning tree verification: a real BFS tree, then one edge dropped.
  {
    const auto dist = graph::bfs_distances(g, 0);
    std::vector<char> h(g.m(), 0);
    std::vector<char> has_parent(g.n(), 0);
    for (int e = 0; e < g.m(); ++e) {
      const auto& ed = g.edge(e);
      int child = -1;
      if (dist[ed.u] == dist[ed.v] + 1) child = ed.u;
      if (dist[ed.v] == dist[ed.u] + 1) child = ed.v;
      if (child >= 0 && !has_parent[child]) {
        has_parent[child] = 1;
        h[e] = 1;
      }
    }
    sim::Engine eng(g);
    const auto good = apps::verify_spanning_tree(eng, h, {});
    add("spanning-tree(true)", g, good.ok, good.stats);
    for (int e = 0; e < g.m(); ++e)
      if (h[e]) {
        h[e] = 0;
        break;
      }
    sim::Engine eng2(g);
    const auto bad = apps::verify_spanning_tree(eng2, h, {});
    add("spanning-tree(broken)", g, bad.ok, bad.stats);
  }

  // Connectivity of a random subgraph.
  {
    std::vector<char> h(g.m(), 0);
    for (int e = 0; e < g.m(); ++e) h[e] = rng.next_bool(0.7);
    sim::Engine eng(g);
    const auto v = apps::verify_connectivity(eng, h, {});
    add("connectivity(random H)", g, v.ok, v.stats);
  }

  // Cut verification on a planted bridge.
  {
    graph::Graph bridged = [&] {
      auto c1 = graph::gen::random_connected(200, 500, rng);
      auto c2 = graph::gen::random_connected(200, 500, rng);
      std::vector<graph::Edge> edges = c1.edges();
      for (const auto& e : c2.edges()) edges.push_back({e.u + 200, e.v + 200, 1});
      edges.push_back({0, 200, 1});
      return graph::Graph::from_edges(400, std::move(edges));
    }();
    std::vector<char> h(bridged.m(), 0);
    h[bridged.m() - 1] = 1;
    sim::Engine eng(bridged);
    const auto v = apps::verify_cut(eng, h, {});
    add("cut(bridge)", bridged, v.ok, v.stats);
  }

  // s-t connectivity.
  {
    std::vector<char> h(g.m(), 0);
    for (int e = 0; e < g.m(); ++e) h[e] = rng.next_bool(0.5);
    sim::Engine eng(g);
    const auto v = apps::verify_s_t_connectivity(eng, h, 0, g.n() - 1, {});
    add("s-t connectivity", g, v.ok, v.stats);
  }


  // Bipartiteness: a grid (bipartite) and the grid plus one odd diagonal.
  {
    graph::Graph grid = graph::gen::grid(16, 16);
    std::vector<char> h(grid.m(), 1);
    sim::Engine eng(grid);
    const auto v = apps::verify_bipartiteness(eng, h, {});
    add("bipartiteness(grid)", grid, v.ok, v.stats);

    std::vector<graph::Edge> edges = grid.edges();
    edges.push_back({0, 17, 1});  // a diagonal: odd cycle
    graph::Graph spoiled = graph::Graph::from_edges(grid.n(), std::move(edges));
    std::vector<char> h2(spoiled.m(), 1);
    sim::Engine eng2(spoiled);
    const auto v2 = apps::verify_bipartiteness(eng2, h2, {});
    add("bipartiteness(odd cycle)", spoiled, v2.ok, v2.stats);
  }


  table.print(
      "Corollary A.1 — verification problems via Thurimella labelling "
      "(PA without leaders / Algorithm 9)");
}

}  // namespace
}  // namespace pw::bench

int main() {
  pw::bench::run();
  return 0;
}
