// Figure 2 (Section 3.1): the Ω(nD)-message lower-bound network.
//
// The instance is the D x (n-1)/D grid plus an apex r adjacent to the whole
// top row; rows are the parts. The paper's claim:
//   * prior shortcut algorithms — every node injects into its block —
//     spend Ω(nD) messages (Figure 2a);
//   * the sub-part workaround (Figure 2b / the paper's algorithm) spends
//     O(n), i.e. O(m) on this network.
//
// This harness sweeps D at (roughly) fixed n and reports the PA-query
// message counts of:
//   ours         sub-part division + constructed shortcut (Theorem 1.2)
//   no-subparts  every node its own sub-part (prior work's strategy)
//   global-tree  pipelined aggregation over one BFS tree
// Messages are normalized by n so the Θ(D) growth of the baselines versus
// the flat curve of ours is the visible "figure".
#include "bench/common.hpp"

namespace pw::bench {
namespace {

sim::PhaseStats query_cost(const Instance& inst, core::PaStrategy strategy) {
  core::PaSolverConfig cfg;
  cfg.strategy = strategy;
  cfg.seed = 23;
  return measure_pa(inst, cfg).query;
}

sim::PhaseStats global_tree_cost(const Instance& inst) {
  sim::Engine eng(inst.g);
  const auto t = tree::build_bfs_tree(eng, 0);
  std::vector<std::uint64_t> values(inst.g.n(), 1);
  return core::global_tree_pa(eng, inst.p, t, agg::sum(), values).stats;
}

void run() {
  const int target_nodes = 4096;
  Table table({"depth D", "n", "m", "ours msgs", "no-subpart msgs",
               "global-tree msgs", "ours/n", "no-subpart/n", "global/n"});
  for (int depth : {4, 8, 16, 32, 64}) {
    const int width = target_nodes / depth;
    auto inst = apex_instance(depth, width);
    const auto ours = query_cost(inst, core::PaStrategy::Ours);
    const auto nosub = query_cost(inst, core::PaStrategy::NoSubparts);
    const auto global = global_tree_cost(inst);
    const double n = inst.g.n();
    table.add_row({fm(static_cast<std::uint64_t>(depth)),
                   fm(static_cast<std::uint64_t>(inst.g.n())),
                   fm(static_cast<std::uint64_t>(inst.g.m())),
                   fm(ours.messages), fm(nosub.messages), fm(global.messages),
                   fd(ours.messages / n), fd(nosub.messages / n),
                   fd(global.messages / n)});
  }
  table.print(
      "Figure 2 — messages on the apex-grid network (rows as parts, n ~= "
      "4096): per-node message cost of ours stays flat while every-node-"
      "injects and global-tree grow with D");
}

}  // namespace
}  // namespace pw::bench

int main() {
  pw::bench::run();
  return 0;
}
