// Ablation AB2 (Section 4.2): random part delays vs deterministic
// Lemma-4.2 scheduling inside Algorithm 1.
//
// Both variants run on identical structures; the deterministic scheduler
// resolves edge contention by block-root depth while the randomized one
// spreads part start times uniformly over [c]. The harness reports query
// rounds for both and a sweep of the randomized delay range (0 = no delay,
// showing the contention the delays exist to dissolve).
#include "bench/common.hpp"

#include "src/core/pa_given.hpp"

namespace pw::bench {
namespace {

void run() {
  Rng rng(54);
  Table table({"graph", "mode", "delay range", "query rounds", "query msgs"});

  auto bench_instance = [&](const Instance& inst) {
    sim::Engine eng(inst.g);
    core::PaSolverConfig cfg;
    cfg.seed = 59;
    core::PaSolver solver(eng, cfg);
    solver.set_partition(inst.p);
    const auto& st = solver.structures();
    const int c = std::max(1, shortcut::congestion(st.sc));

    std::vector<std::uint64_t> values(inst.g.n(), 1);
    auto run_once = [&](core::PaMode mode, int delay_range) {
      core::PaGivenConfig pc;
      pc.mode = mode;
      pc.delay_range = delay_range;
      pc.seed = 61;
      const auto snap = eng.snap();
      const auto res = core::pa_given(eng, solver.partition(), st.div, st.sc,
                                      st.t, agg::sum(), values, pc);
      PW_CHECK(res.all_covered());
      return eng.since(snap);
    };

    {
      const auto det = run_once(core::PaMode::Deterministic, 0);
      table.add_row({inst.name, "det (Lemma 4.2 priorities)", "-",
                     fm(det.rounds), fm(det.messages)});
    }
    for (int range : {1, c / 2 + 1, c, 2 * c}) {
      const auto r = run_once(core::PaMode::Randomized, range);
      table.add_row({inst.name, "rand", fm(static_cast<std::uint64_t>(range)),
                     fm(r.rounds), fm(r.messages)});
    }
  };

  bench_instance(apex_instance(16, 128));
  bench_instance(general_instance(1024, rng));

  table.print(
      "Ablation AB2 — contention resolution inside Algorithm 1: "
      "deterministic tie-breaking vs random start delays (range sweep; "
      "range=c is the paper's choice)");
}

}  // namespace
}  // namespace pw::bench

int main() {
  pw::bench::run();
  return 0;
}
