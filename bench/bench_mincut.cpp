// Corollary 1.4: (1+eps)-approximate min-cut in Õ(bD + c) * poly(1/eps)
// rounds and Õ(m) * poly(1/eps) messages.
//
// The harness sweeps eps on graphs with planted cuts and reports the
// approximation ratio against Stoer-Wagner and the poly(1/eps) growth of
// rounds/messages — the two halves of the corollary's claim.
#include "bench/common.hpp"

#include "src/apps/mincut.hpp"

namespace pw::bench {
namespace {

graph::Graph planted_two_cluster(int half, int bridges, Rng& rng) {
  std::vector<graph::Edge> edges;
  for (int u = 0; u < half; ++u)
    for (int v = u + 1; v < half; ++v)
      if (rng.next_bool(0.35)) {
        edges.push_back({u, v, 4});
        edges.push_back({u + half, v + half, 4});
      }
  for (int b = 0; b < bridges; ++b) edges.push_back({b, half + b, 1});
  return graph::Graph::from_edges(2 * half, std::move(edges));
}

void run() {
  Rng rng(46);
  Table table({"graph", "eps", "thr", "exact", "found", "ratio", "trials",
               "rounds", "messages", "ms"});
  JsonEmitter json("mincut_corollary_1_4");
  const int host_threads = detected_cores();

  auto bench_graph = [&](const std::string& name, const graph::Graph& g) {
    const auto exact = apps::stoer_wagner_min_cut(g);
    // The per-trial MST engines inherit the outer engine's policy
    // (Engine::policy()), so the thread sweep reaches the inner Borůvka
    // phases — the bulk of the work — not just the outer accounting.
    for (const int threads : thread_sweep(g.n()))
      for (double eps : {1.0, 0.5, 0.25}) {
        sim::Engine eng(g, sim::ExecutionPolicy{threads});
        core::PaSolverConfig cfg;
        cfg.seed = 37;
        const auto t0 = now_ns();
        const auto res = apps::approx_min_cut(eng, eps, cfg);
        const auto wall_ns = now_ns() - t0;
        table.add_row({name, fd(eps), fm(static_cast<std::uint64_t>(threads)),
                       fm(static_cast<std::uint64_t>(exact)),
                       fm(static_cast<std::uint64_t>(res.cut_value)),
                       fd(static_cast<double>(res.cut_value) / exact),
                       fm(static_cast<std::uint64_t>(res.trials)),
                       fm(res.stats.rounds), fm(res.stats.messages),
                       fd(static_cast<double>(wall_ns) * 1e-6, 3)});
        json.add_row(
            {{"graph", name},
             {"n", g.n()},
             {"eps", eps},
             {"threads", threads},
             {"pipeline", eng.pipelined() ? 1 : 0},
             {"host_threads", host_threads},
             {"exact_cut", static_cast<std::uint64_t>(exact)},
             {"found_cut", static_cast<std::uint64_t>(res.cut_value)},
             {"ratio", static_cast<double>(res.cut_value) / exact},
             {"trials", res.trials},
             {"rounds", res.stats.rounds},
             {"messages", res.stats.messages},
             {"wall_ns", wall_ns},
             {"ns_per_message",
              static_cast<double>(wall_ns) /
                  static_cast<double>(std::max<std::uint64_t>(
                      1, res.stats.messages))}});
      }
  };

  bench_graph("planted(2x24, cut=3)", planted_two_cluster(24, 3, rng));
  bench_graph("GNM(n=96)", graph::gen::with_random_weights(
                               graph::gen::random_connected(96, 320, rng), 6,
                               rng));
  bench_graph("cycle(64) cut=2", graph::gen::cycle(64));

  table.print(
      "Corollary 1.4 — (1+eps)-approximate min-cut: quality vs Stoer-Wagner "
      "and the poly(1/eps) cost growth (trials = tree-packing samples)");
  json.write("BENCH_mincut.json");
}

}  // namespace
}  // namespace pw::bench

int main() {
  pw::bench::run();
  return 0;
}
