// Cluster health monitoring: per-zone aggregates over a datacenter fabric.
//
// The scenario the paper's introduction motivates: a large network whose
// nodes are grouped into administrative zones (connected parts), and every
// zone must agree on summary statistics — without any central coordinator,
// with messages bounded by the fabric size. Zones here have NO designated
// coordinator: the example uses Algorithm 9 (PA without known leaders),
// which elects one per zone as a side effect.
//
//   $ ./cluster_health
#include <cstdio>

#include "src/core/noleader.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/partition.hpp"

int main() {
  using namespace pw;
  Rng rng(2026);

  // A 1500-node fabric with average degree 6, split into 40 zones.
  graph::Graph fabric = graph::gen::random_connected(1500, 4500, rng);
  graph::Partition zones = graph::random_bfs_partition(fabric, 40, rng);
  zones.leader.clear();  // nobody is in charge

  // Per-node load percentage and free memory (GiB).
  std::vector<std::uint64_t> load(fabric.n()), free_mem(fabric.n());
  for (int v = 0; v < fabric.n(); ++v) {
    load[v] = rng.next_below(101);
    free_mem[v] = 4 + rng.next_below(60);
  }

  // Multi-threaded by default (DESIGN.md §7: policy never moves results).
  sim::Engine engine(fabric, sim::ExecutionPolicy::hardware());
  const auto max_load = core::pa_noleader(engine, zones, agg::max(), load, {});
  const auto min_free = core::pa_noleader(engine, zones, agg::min(), free_mem, {});

  std::printf("zone health summary (%d zones, %d nodes, %d links):\n",
              zones.num_parts, fabric.n(), fabric.m());
  int alerts = 0;
  for (int z = 0; z < zones.num_parts; ++z) {
    const bool hot = max_load.part_value[z] > 99;
    const bool tight = min_free.part_value[z] < 5;
    if (hot || tight) {
      ++alerts;
      if (alerts <= 8)
        std::printf("  zone %2d  max-load=%3llu%%  min-free=%2lluGiB  %s%s\n", z,
                    static_cast<unsigned long long>(max_load.part_value[z]),
                    static_cast<unsigned long long>(min_free.part_value[z]),
                    hot ? "[HOT]" : "", tight ? "[LOW-MEM]" : "");
    }
  }
  if (alerts > 8) std::printf("  ... and %d more alerting zones\n", alerts - 8);
  std::printf("  %d zones healthy, %d alerting\n", zones.num_parts - alerts,
              alerts);
  std::printf(
      "cost: %llu rounds / %llu messages for both sweeps, leaderless "
      "(%d coarsening rounds to elect zone leaders)\n",
      static_cast<unsigned long long>(max_load.stats.rounds +
                                      min_free.stats.rounds),
      static_cast<unsigned long long>(max_load.stats.messages +
                                      min_free.stats.messages),
      max_load.coarsening_rounds);
  return 0;
}
