// partwise_cli — run the library's algorithms on generated topologies from
// the command line and print round/message accounting.
//
//   partwise_cli <algorithm> <family> [n] [seed] [--threads K] [fault flags]
//
//   algorithm: pa | pa-noleader | mst | mincut | sssp | kdom | cds | arq
//   family:    gnm | grid | torus | apex | ktree | caterpillar | path
//   --threads: engine worker threads (default: hardware concurrency). The
//              results and the round/message accounting are identical at any
//              thread count (DESIGN.md §7) — only the wall clock moves.
//
// Fault-injection flags (DESIGN.md §9) arm the deterministic fault plane:
//   --fault-seed S   hash seed for the drop/delay/dup verdicts (default 1)
//   --drop P         per-message drop probability in [0, 1]
//   --delay P        per-message delay probability (arrives 1 round late)
//   --dup P          per-message duplication probability
//   --crash R:V      node V crashes at round R and never recovers
//   --crash A-B:V    node V is down for rounds [A, B), then reboots
// The same seed reproduces the same faults at any thread count. The paper's
// algorithms assume the reliable CONGEST model and will generally fail
// validation under loss — `arq` is the workload built to survive it.
//
// Examples:
//   ./partwise_cli pa grid 1024
//   ./partwise_cli mst apex 2048 7 --threads 4
//   ./partwise_cli mincut gnm 96
//   ./partwise_cli arq grid 1024 1 --drop 0.2 --fault-seed 42
//   ./partwise_cli arq gnm 256 1 --drop 0.1 --crash 3-40:17
#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/apps/arq.hpp"
#include "src/apps/domination.hpp"
#include "src/apps/mincut.hpp"
#include "src/apps/mst.hpp"
#include "src/apps/sssp.hpp"
#include "src/core/noleader.hpp"
#include "src/core/solver.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/properties.hpp"

namespace {

using namespace pw;

graph::Graph make_graph(const std::string& family, int n, Rng& rng) {
  if (family == "gnm") return graph::gen::random_connected(n, 3 * n, rng);
  if (family == "grid") {
    int side = 2;
    while (side * side < n) ++side;
    return graph::gen::grid(side, side);
  }
  if (family == "torus") {
    int side = 3;
    while (side * side < n) ++side;
    return graph::gen::torus(side, side);
  }
  if (family == "apex") return graph::gen::apex_grid(8, std::max(1, n / 8));
  if (family == "ktree") return graph::gen::k_tree(n, 3, rng);
  if (family == "caterpillar")
    return graph::gen::caterpillar(std::max(1, n / 4), 3);
  if (family == "path") return graph::gen::path(n);
  std::fprintf(stderr, "unknown family '%s'\n", family.c_str());
  std::exit(2);
}

void report(const char* what, const sim::PhaseStats& st, const graph::Graph& g) {
  std::printf("%-12s %10llu rounds  %12llu messages  (%.2f msgs/edge)\n", what,
              static_cast<unsigned long long>(st.rounds),
              static_cast<unsigned long long>(st.messages),
              static_cast<double>(st.messages) / std::max(1, g.num_arcs()));
}

void report_faults(const sim::Engine& eng) {
  if (!eng.faulty()) return;
  const sim::FaultStats fs = eng.fault_stats();
  std::printf(
      "faults: dropped %llu delayed %llu duplicated %llu shed-crashed %llu "
      "wakes-suppressed %llu\n",
      static_cast<unsigned long long>(fs.messages_dropped),
      static_cast<unsigned long long>(fs.messages_delayed),
      static_cast<unsigned long long>(fs.messages_duplicated),
      static_cast<unsigned long long>(fs.messages_shed_crashed),
      static_cast<unsigned long long>(fs.wakes_suppressed));
}

// "R:V" (down at R forever) or "A-B:V" (down for rounds [A, B)).
bool parse_crash(const char* s, sim::CrashSpan* out) {
  char* end = nullptr;
  out->from = std::strtoull(s, &end, 10);
  out->until = sim::CrashSpan::kNever;
  if (*end == '-') {
    out->until = std::strtoull(end + 1, &end, 10);
    if (out->until <= out->from) return false;
  }
  if (*end != ':') return false;
  out->node = std::atoi(end + 1);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  // Pull "--flag V" / "--flag=V" options out of argv; the rest stay
  // positional. A trailing flag with no value is an error, not a positional.
  int threads = sim::ExecutionPolicy::hardware().num_threads;
  sim::TransportKind transport = sim::TransportKind::kInProc;
  sim::FaultPolicy faults;
  bool bad_flag = false;
  std::vector<const char*> pos;
  for (int i = 1; i < argc && !bad_flag; ++i) {
    const char* val = nullptr;
    const auto match = [&](const char* name) {
      const std::size_t len = std::strlen(name);
      if (std::strcmp(argv[i], name) == 0) {
        if (i + 1 >= argc) {
          bad_flag = true;
          return false;
        }
        val = argv[++i];
        return true;
      }
      if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
        val = argv[i] + len + 1;
        return true;
      }
      return false;
    };
    if (match("--threads")) {
      threads = std::atoi(val);
    } else if (match("--transport")) {
      if (std::strcmp(val, "shm") == 0)
        transport = sim::TransportKind::kShmRing;
      else if (std::strcmp(val, "inproc") == 0)
        transport = sim::TransportKind::kInProc;
      else
        bad_flag = true;
    } else if (match("--fault-seed")) {
      faults.seed = std::strtoull(val, nullptr, 0);
    } else if (match("--drop")) {
      faults.drop_prob = std::atof(val);
    } else if (match("--delay")) {
      faults.delay_prob = std::atof(val);
    } else if (match("--dup")) {
      faults.dup_prob = std::atof(val);
    } else if (match("--crash")) {
      sim::CrashSpan span;
      if (parse_crash(val, &span))
        faults.crashes.push_back(span);
      else
        bad_flag = true;
    } else if (std::strncmp(argv[i], "--", 2) == 0) {
      bad_flag = true;
    } else {
      pos.push_back(argv[i]);
    }
  }
  if (bad_flag || pos.size() < 2 || threads < 1) {
    std::fprintf(stderr,
                 "usage: %s <pa|pa-noleader|mst|mincut|sssp|kdom|cds|arq> "
                 "<gnm|grid|torus|apex|ktree|caterpillar|path> [n=512] "
                 "[seed=1] [--threads K] [--transport inproc|shm] "
                 "[--fault-seed S] [--drop P] "
                 "[--delay P] [--dup P] [--crash R:V | --crash A-B:V]\n",
                 argv[0]);
    return 2;
  }
  const std::string algorithm = pos[0];
  const std::string family = pos[1];
  const int n = pos.size() > 2 ? std::atoi(pos[2]) : 512;
  const std::uint64_t seed =
      pos.size() > 3 ? std::strtoull(pos[3], nullptr, 10) : 1;
  sim::ExecutionPolicy policy{threads};
  policy.transport = transport;

  Rng rng(seed);
  graph::Graph g = make_graph(family, n, rng);
  std::printf("graph: %s  n=%d m=%d D~%d  threads=%d transport=%s\n",
              family.c_str(), g.n(), g.m(), graph::diameter_estimate(g),
              threads,
              transport == sim::TransportKind::kShmRing ? "shm" : "inproc");

  core::PaSolverConfig cfg;
  cfg.seed = seed;

  if (algorithm == "pa" || algorithm == "pa-noleader") {
    graph::Partition p =
        graph::random_bfs_partition(g, std::max(2, g.n() / 20), rng);
    std::vector<std::uint64_t> values(g.n(), 1);
    sim::Engine eng(g, policy, faults);
    if (algorithm == "pa") {
      p.elect_min_id_leaders();
      core::PaSolver solver(eng, cfg);
      const auto s0 = eng.snap();
      solver.set_partition(p);
      report("setup", eng.since(s0), g);
      const auto res = solver.aggregate(agg::sum(), values);
      report("query", res.stats, g);
      std::printf("parts: %d, first part size: %llu\n", p.num_parts,
                  static_cast<unsigned long long>(res.part_value[0]));
    } else {
      p.leader.clear();
      const auto res = core::pa_noleader(eng, p, agg::sum(), values, cfg);
      report("total", res.stats, g);
      std::printf("parts: %d, coarsening rounds: %d\n", p.num_parts,
                  res.coarsening_rounds);
    }
    report_faults(eng);
  } else if (algorithm == "mst") {
    graph::Graph wg = graph::gen::with_random_weights(g, 1000, rng);
    sim::Engine eng(wg, policy, faults);
    const auto res = apps::boruvka_mst(eng, cfg);
    apps::validate_spanning_tree(wg, res.in_mst);
    report("mst", res.stats, wg);
    std::printf("weight: %lld (= Kruskal: %s), %d phases\n",
                static_cast<long long>(res.total_weight),
                res.total_weight == apps::kruskal_mst_weight(wg) ? "yes" : "NO",
                res.phases);
    report_faults(eng);
  } else if (algorithm == "mincut") {
    graph::Graph wg = graph::gen::with_random_weights(g, 16, rng);
    sim::Engine eng(wg, policy, faults);
    const auto res = apps::approx_min_cut(eng, 0.5, cfg);
    report("mincut", res.stats, wg);
    std::printf("cut found: %lld over %d trials\n",
                static_cast<long long>(res.cut_value), res.trials);
    report_faults(eng);
  } else if (algorithm == "sssp") {
    graph::Graph wg = graph::gen::with_random_weights(g, 32, rng);
    sim::Engine eng(wg, policy, faults);
    const auto res = apps::approx_sssp(eng, 0, 0.25, cfg);
    const auto exact = graph::dijkstra(wg, 0);
    const auto s = apps::measure_stretch(exact, res.dist);
    report("sssp", res.stats, wg);
    std::printf("stretch: max %.2f mean %.2f over %d scales\n", s.max_stretch,
                s.mean_stretch, res.scales);
    report_faults(eng);
  } else if (algorithm == "kdom") {
    const int k = std::max(2, graph::diameter_estimate(g) / 2);
    sim::Engine eng(g, policy, faults);
    const auto res = apps::k_dominating_set(eng, k, cfg);
    apps::validate_k_domination(g, res.dominators, k);
    report("kdom", res.stats, g);
    std::printf("k=%d dominators=%zu (bound %d)\n", k, res.dominators.size(),
                6 * g.n() / k + 1);
    report_faults(eng);
  } else if (algorithm == "cds") {
    sim::Engine eng(g, policy, faults);
    const auto res = apps::connected_dominating_set(eng, cfg);
    apps::validate_cds(g, res.in_cds);
    report("cds", res.stats, g);
    std::printf("CDS size: %d of %d nodes\n", res.size, g.n());
    report_faults(eng);
  } else if (algorithm == "arq") {
    sim::Engine eng(g, policy, faults);
    const auto res = apps::arq_flood(eng, 0, seed | 1);
    report("arq", res.stats, g);
    if (res.completed) apps::validate_arq(g, res, seed | 1);
    int informed = 0;
    for (const auto t : res.token)
      if (t != apps::ArqResult::kNoToken) ++informed;
    std::printf(
        "completed: %s  informed: %d/%d  data sends: %llu  "
        "retransmissions: %llu\n",
        res.completed ? "yes" : "NO", informed, g.n(),
        static_cast<unsigned long long>(res.data_sends),
        static_cast<unsigned long long>(res.retransmissions));
    report_faults(eng);
  } else {
    std::fprintf(stderr, "unknown algorithm '%s'\n", algorithm.c_str());
    return 2;
  }
  return 0;
}
