// Building a minimum spanning tree of a WAN, two ways.
//
// The MST is the classic "which links should the overlay keep" question.
// This demo runs Borůvka-over-PA (Corollary 1.3) and the GHS-style
// fragment-tree baseline on the same topology and prints the trade-off the
// paper closes: the baseline is frugal with messages but pays the fragment
// diameter in rounds; ours pays Õ(D + sqrt(n)) rounds at Õ(m) messages.
//
//   $ ./mst_demo
#include <cstdio>

#include "src/apps/mst.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/properties.hpp"

int main() {
  using namespace pw;
  Rng rng(7);

  // A WAN-ish topology: long light backbone chain + heavy crosslinks to a
  // small core, so MST fragments grow long while the diameter stays small.
  const int chain = 1200, spoke = 24;
  std::vector<graph::Edge> edges;
  for (int i = 0; i + 1 < chain; ++i)
    edges.push_back({i, i + 1, 1 + static_cast<graph::Weight>(rng.next_below(8))});
  for (int i = 0; i < chain; i += spoke)
    edges.push_back({chain, i, 100000 + static_cast<graph::Weight>(rng.next_below(1000))});
  graph::Graph wan = graph::Graph::from_edges(chain + 1, std::move(edges));

  std::printf("WAN: %d routers, %d links, diameter %d\n", wan.n(), wan.m(),
              graph::diameter_estimate(wan));

  // Multi-threaded by default (DESIGN.md §7: policy never moves results).
  const auto policy = sim::ExecutionPolicy::hardware();
  sim::Engine ours_eng(wan, policy);
  const auto ours = apps::boruvka_mst(ours_eng, {});
  sim::Engine ghs_eng(wan, policy);
  const auto ghs = apps::ghs_style_mst(ghs_eng);

  apps::validate_spanning_tree(wan, ours.in_mst);
  std::printf("MST weight: %lld (reference: %lld)\n",
              static_cast<long long>(ours.total_weight),
              static_cast<long long>(apps::kruskal_mst_weight(wan)));
  std::printf("%-22s %10s %12s\n", "algorithm", "rounds", "messages");
  std::printf("%-22s %10llu %12llu\n", "Boruvka-over-PA (ours)",
              static_cast<unsigned long long>(ours.stats.rounds),
              static_cast<unsigned long long>(ours.stats.messages));
  std::printf("%-22s %10llu %12llu\n", "GHS-style baseline",
              static_cast<unsigned long long>(ghs.stats.rounds),
              static_cast<unsigned long long>(ghs.stats.messages));
  std::printf(
      "the paper's point: the baseline's rounds grow with fragment "
      "diameter (Theta(n) here), ours stay near the network diameter.\n");
  return 0;
}
