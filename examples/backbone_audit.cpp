// Auditing a claimed backbone: distributed verification (Corollary A.1).
//
// An operator claims a set of links forms a spanning tree of the network
// (a broadcast backbone). No single node can check that locally; the
// verification algorithms let the NETWORK check it in Õ(D + sqrt(n))
// rounds, every router learning the verdict. The demo also audits a
// firewall plan: does removing the marked links actually disconnect the
// untrusted segment (is it a cut)?
//
//   $ ./backbone_audit
#include <cstdio>

#include "src/apps/verification.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/properties.hpp"

int main() {
  using namespace pw;
  Rng rng(11);
  graph::Graph net = graph::gen::random_connected(600, 1800, rng);
  // Multi-threaded by default (DESIGN.md §7: policy never moves results).
  const auto policy = sim::ExecutionPolicy::hardware();

  // Claimed backbone: a BFS tree... with one "fat finger" edge swapped in.
  const auto dist = graph::bfs_distances(net, 0);
  std::vector<char> backbone(net.m(), 0);
  std::vector<char> has_parent(net.n(), 0);
  for (int e = 0; e < net.m(); ++e) {
    const auto& ed = net.edge(e);
    int child = -1;
    if (dist[ed.u] == dist[ed.v] + 1) child = ed.u;
    if (dist[ed.v] == dist[ed.u] + 1) child = ed.v;
    if (child >= 0 && !has_parent[child]) {
      has_parent[child] = 1;
      backbone[e] = 1;
    }
  }

  {
    sim::Engine eng(net, policy);
    const auto v = apps::verify_spanning_tree(eng, backbone, {});
    std::printf("claimed backbone is a spanning tree: %s  (%llu rounds, %llu msgs)\n",
                v.ok ? "VERIFIED" : "REJECTED",
                static_cast<unsigned long long>(v.stats.rounds),
                static_cast<unsigned long long>(v.stats.messages));
  }

  // Sabotage: drop one backbone link.
  for (int e = 0; e < net.m(); ++e)
    if (backbone[e]) {
      backbone[e] = 0;
      break;
    }
  {
    sim::Engine eng(net, policy);
    const auto v = apps::verify_spanning_tree(eng, backbone, {});
    std::printf("after dropping one link:          %s\n",
                v.ok ? "VERIFIED" : "REJECTED");
  }

  // Firewall audit on a two-segment network with a known chokepoint.
  {
    auto seg1 = graph::gen::random_connected(250, 700, rng);
    auto seg2 = graph::gen::random_connected(250, 700, rng);
    std::vector<graph::Edge> edges = seg1.edges();
    for (const auto& e : seg2.edges()) edges.push_back({e.u + 250, e.v + 250, 1});
    edges.push_back({3, 253, 1});
    edges.push_back({7, 257, 1});
    graph::Graph two = graph::Graph::from_edges(500, std::move(edges));

    std::vector<char> firewall(two.m(), 0);
    firewall[two.m() - 1] = 1;
    firewall[two.m() - 2] = 1;  // both chokepoint links
    sim::Engine eng(two, policy);
    const auto v = apps::verify_cut(eng, firewall, {});
    std::printf("firewall plan severs the segments: %s\n",
                v.ok ? "VERIFIED (it is a cut)" : "REJECTED (traffic leaks)");

    sim::Engine eng2(two, policy);
    const auto st = apps::verify_s_t_connectivity(eng2, firewall, 3, 253, {});
    std::printf("chokepoint links alone connect 3 and 253: %s\n",
                st.ok ? "yes" : "no");
  }
  return 0;
}
