// Quickstart: solve a Part-Wise Aggregation instance end to end.
//
// Build a graph, choose a partition into connected parts, hand both to
// PaSolver, and ask for aggregates. The solver runs the paper's full
// pipeline on a simulated CONGEST network — leader election, BFS tree,
// sub-part division, shortcut construction with the doubling trick, then
// Algorithm 1 — and reports exactly what a real deployment would care
// about: rounds and messages.
//
//   $ ./quickstart
#include <cstdio>

#include "src/core/solver.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/partition.hpp"

int main() {
  using namespace pw;

  // A 12 x 40 grid; each row is one part (a "chain of sensors" per row).
  const int rows = 12, cols = 40;
  graph::Graph g = graph::gen::grid(rows, cols);
  graph::Partition parts = graph::grid_row_partition(rows, cols);
  parts.elect_min_id_leaders();

  // One engine per simulated network; every message the algorithms send
  // flows through it.
  // Multi-threaded by default: results and accounting are identical at
  // any thread count (DESIGN.md §7); only the wall clock moves.
  sim::Engine engine(g, sim::ExecutionPolicy::hardware());
  core::PaSolver solver(engine, {});
  solver.set_partition(parts);

  // Each node contributes a value; ask each part for its minimum and total.
  std::vector<std::uint64_t> readings(g.n());
  for (int v = 0; v < g.n(); ++v) readings[v] = 100 + (v * 37) % 900;

  const auto mins = solver.aggregate(agg::min(), readings);
  const auto sums = solver.aggregate(agg::sum(), readings);

  std::printf("Part-wise aggregation over %d nodes, %d parts\n", g.n(),
              parts.num_parts);
  for (int i = 0; i < std::min(4, parts.num_parts); ++i)
    std::printf("  part %2d: min reading = %4llu, total = %6llu\n", i,
                static_cast<unsigned long long>(mins.part_value[i]),
                static_cast<unsigned long long>(sums.part_value[i]));
  std::printf("  ...\n");
  std::printf("one PA query cost: %llu rounds, %llu messages (m = %d)\n",
              static_cast<unsigned long long>(sums.stats.rounds),
              static_cast<unsigned long long>(sums.stats.messages), g.m());
  std::printf("shortcut found: congestion %d at doubling guess %d\n",
              shortcut::congestion(solver.structures().sc),
              solver.structures().final_guess);
  return 0;
}
