// partwise_shard: one OS process per shard over the §10 shared-memory rings.
//
// The in-engine ShmRingTransport proves the wire format and the ring
// protocol inside one process; this runner proves the "shared" in shared
// memory. The parent builds the graph, a ring segment (same SpscRing structs
// the engine uses — the frame IS the staged SoA bucket, §10), and a small
// control segment, then forks one worker per shard. Each worker runs a BFS
// flood over its own contiguous node range, staging cross-shard sends
// directly into the ring frame regions, publishing each frame at the end of
// every round (a pure release-bump — nothing is copied) and draining its
// incoming rings in ascending sender-shard order — the same deterministic
// merge order as the engine — while hashing its full delivery trace. The
// parent then replays the identical flood on a sequential sim::Engine and
// compares per-shard trace hashes: bit-identical delivery across the process
// boundary, or a nonzero exit.
//
// --kill-shard K --kill-round R turns it into the §10 peer-crash drill:
// worker K calls _exit at the top of round R, every surviving worker times
// out on its deadline (a stalled ring or a silent barrier slot), and the
// parent prints a PW_SHARD_WATCHDOG report naming the dead peer and its
// stalled rings before exiting 1 — the multi-process analogue of the §9
// in-engine watchdog dump.
//
// Usage:
//   partwise_shard [--family grid|random|star] [--n N] [--seed S]
//                  [--shards K] [--rounds CAP] [--watchdog-ms MS] [--verify]
//                  [--kill-shard K --kill-round R]
#include <algorithm>
#include <atomic>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/graph/generators.hpp"
#include "src/graph/graph.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/transport.hpp"
#include "src/util/rng.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <time.h>
#include <unistd.h>
#define PW_HAVE_FORK 1
#endif

namespace {

using pw::graph::Graph;
using pw::sim::Incoming;
using pw::sim::Msg;
using pw::sim::ShmArena;
using pw::sim::SpscRing;

struct Options {
  std::string family = "grid";
  int n = 64;
  std::uint64_t seed = 1;
  int shards = 2;
  int rounds_cap = 0;  // 0: derived from n
  int watchdog_ms = 5000;
  bool verify = false;
  int kill_shard = -1;
  int kill_round = -1;
};

// Per-worker control slot in the shared control segment. `state[r & 1]`
// holds ((round << 1) | had_activity) for the end-of-round barrier; the
// barrier itself bounds cross-worker skew to one round, so two parity slots
// suffice. `done` marks a clean exit, `aborted` a deadline abort — a worker
// with neither is a dead peer.
struct alignas(64) PeerSlot {
  std::atomic<std::uint64_t> state[2];
  std::atomic<std::uint64_t> trace_hash;
  std::atomic<std::uint64_t> delivered;
  std::atomic<std::uint32_t> done;
  std::atomic<std::uint32_t> aborted;
};
static_assert(sizeof(PeerSlot) == 64);

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;

// Contiguous id-range partition (the data plane uses a power-of-two chunk;
// here any chunk works — worker and reference only need to agree).
struct Partition {
  int chunk = 1;
  int shards = 1;
  int shard_of(int v) const {
    const int s = v / chunk;
    return s < shards ? s : shards - 1;
  }
  int beg(int s) const { return s * chunk; }
  int end(int s, int n) const {
    return s + 1 == shards ? n : (s + 1) * chunk;
  }
};

Graph build_graph(const Options& opt) {
  pw::Rng rng(opt.seed);
  if (opt.family == "grid") {
    int side = 2;
    while ((side + 1) * (side + 1) <= opt.n) ++side;
    return pw::graph::gen::grid(side, side);
  }
  if (opt.family == "star") return pw::graph::gen::star(opt.n);
  if (opt.family == "random")
    return pw::graph::gen::random_connected(opt.n, 2 * opt.n, rng);
  std::fprintf(stderr, "unknown --family %s\n", opt.family.c_str());
  std::exit(2);
}

#ifdef PW_HAVE_FORK

std::uint64_t now_ms() {
  timespec ts{};
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000 +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000000;
}

// Exponential backoff for the deadline polls: sleep the current interval —
// capped at 10ms and at the time left before the deadline — then double it.
// The crash drill's survivors wait out most of a multi-second watchdog
// window in these polls; a fixed-interval spin would burn one core per
// surviving worker for the whole wait.
void sleep_backoff(std::uint64_t& ns, std::uint64_t remaining_ms) {
  std::uint64_t cap_ns = 10'000'000;
  const std::uint64_t rem_ns = remaining_ms * 1'000'000;
  if (rem_ns < cap_ns) cap_ns = rem_ns < 1'000 ? 1'000 : rem_ns;
  const std::uint64_t dur = ns < cap_ns ? ns : cap_ns;
  timespec ts{static_cast<time_t>(dur / 1'000'000'000),
              static_cast<long>(dur % 1'000'000'000)};
  nanosleep(&ts, nullptr);
  if (ns < cap_ns) ns *= 2;
}

// The shared ring table: one SPSC ring per nonzero cross-shard link, packed
// into a single MAP_SHARED arena exactly like ShmRingTransport lays them
// out. Built by the parent BEFORE forking — children inherit the SpscRing
// views (private structs pointing into the shared pages).
struct RingTable {
  int S = 0;
  std::vector<int> cap;        // (d * S + s) link capacity in messages
  std::vector<SpscRing> rings; // same indexing; unattached where cap == 0
  std::unique_ptr<ShmArena> arena;

  RingTable(const Graph& g, const Partition& part) : S(part.shards) {
    cap.assign(static_cast<std::size_t>(S) * S, 0);
    for (int v = 0; v < g.n(); ++v) {
      const int s = part.shard_of(v);
      for (const auto& arc : g.arcs(v))
        ++cap[static_cast<std::size_t>(part.shard_of(arc.to)) * S + s];
    }
    std::size_t bytes = 0;
    std::vector<std::size_t> off(cap.size(), 0);
    for (int d = 0; d < S; ++d)
      for (int s = 0; s < S; ++s) {
        const auto i = static_cast<std::size_t>(d) * S + s;
        if (s == d || cap[i] == 0) continue;
        off[i] = bytes;
        bytes += SpscRing::bytes(cap[i]);
      }
    arena = std::make_unique<ShmArena>(bytes ? bytes : 64);
    rings.resize(cap.size());
    for (int d = 0; d < S; ++d)
      for (int s = 0; s < S; ++s) {
        const auto i = static_cast<std::size_t>(d) * S + s;
        if (s == d || cap[i] == 0) continue;
        rings[i] = SpscRing(static_cast<unsigned char*>(arena->base()) + off[i],
                            cap[i], /*create=*/true);
      }
  }

  SpscRing& ring(int s, int d) {
    return rings[static_cast<std::size_t>(d) * S + s];
  }
};

// One shard worker: BFS flood over the owned node range, rings for every
// cross-shard delivery, trace hash over everything the shard's nodes
// observe. Returns the process exit code.
int run_worker(int k, const Graph& g, const Partition& part, RingTable& rt,
               PeerSlot* slots, const Options& opt) {
  const int S = part.shards;
  const int n = g.n();
  const std::uint64_t deadline_ms =
      static_cast<std::uint64_t>(opt.watchdog_ms);
  std::vector<std::vector<Incoming>> inbox(static_cast<std::size_t>(n));
  std::vector<std::vector<Incoming>> next_inbox(static_cast<std::size_t>(n));
  std::vector<char> seen(static_cast<std::size_t>(n), 0);
  std::vector<char> woken(static_cast<std::size_t>(n), 0);
  std::vector<int> active, next_active;
  // The loopback out bucket (k → k never rings). Cross-shard sends are
  // staged directly into the ring frame regions at their final wire offsets
  // (§10 in-place wire path); only the per-destination fill cursors live
  // here.
  std::vector<int> loop_to;
  std::vector<Incoming> loop_inc;
  std::vector<int> out_cnt(static_cast<std::size_t>(S), 0);

  std::uint64_t hash = kFnvOffset;
  const auto mix = [&hash](std::uint64_t x) { hash = (hash ^ x) * kFnvPrime; };
  std::uint64_t delivered = 0;

  if (part.shard_of(0) == k) active.push_back(0);  // the explicit wake

  const int cap =
      opt.rounds_cap > 0 ? opt.rounds_cap : n + 4;
  for (int r = 0; r < cap; ++r) {
    if (k == opt.kill_shard && r == opt.kill_round) _exit(42);

    // Callback sweep, ascending owned ids — identical observation trace to
    // the engine's flood callback.
    for (const int v : active) {
      mix(static_cast<std::uint64_t>(v) << 32 | 0xa0a0a0a0u);
      std::uint64_t dmin = ~0ULL;
      for (const auto& in : inbox[static_cast<std::size_t>(v)]) {
        mix(static_cast<std::uint64_t>(in.from) << 32 |
            static_cast<std::uint32_t>(in.port));
        mix(in.msg.tag);
        mix(in.msg.a);
        if (in.msg.a < dmin) dmin = in.msg.a;
      }
      if (seen[static_cast<std::size_t>(v)]) continue;
      seen[static_cast<std::size_t>(v)] = 1;
      const std::uint64_t dist =
          inbox[static_cast<std::size_t>(v)].empty() ? 0 : dmin + 1;
      for (int p = 0; p < g.degree(v); ++p) {
        const int a = g.arc_id(v, p);
        const int to = g.arc(a).to;
        const int port_in = g.port_of_arc(g.mirror(a));
        const int d = part.shard_of(to);
        const Incoming in{v, port_in, Msg{1, dist, 0, 0}};
        if (d == k) {
          loop_to.push_back(to);
          loop_inc.push_back(in);
        } else {
          // Stage at the record's final wire offset. The region is writable:
          // the previous frame on this link was consumed before its peer
          // posted the last barrier state that released this worker (§10
          // one-frame-per-round protocol).
          SpscRing& ring = rt.ring(k, d);
          const int c = out_cnt[static_cast<std::size_t>(d)]++;
          ring.to()[c] = to;
          ring.inc()[c] = in;
        }
      }
    }

    // Publish every outgoing cross-shard bucket — one frame per round per
    // link, empty frames included, so ring indices advance in lockstep. The
    // records are already in place; publishing is the release bump.
    for (int d = 0; d < S; ++d) {
      if (d == k) continue;
      SpscRing& ring = rt.ring(k, d);
      if (!ring.attached()) continue;
      ring.publish(out_cnt[static_cast<std::size_t>(d)]);
    }

    // Drain in ascending sender-shard order — the engine's merge order. The
    // loopback bucket takes its slot at s == k.
    const auto deliver = [&](int to, const Incoming& in) {
      next_inbox[static_cast<std::size_t>(to)].push_back(in);
      ++delivered;
      if (!woken[static_cast<std::size_t>(to)]) {
        woken[static_cast<std::size_t>(to)] = 1;
        next_active.push_back(to);
      }
    };
    bool dead = false;
    for (int s = 0; s < S && !dead; ++s) {
      if (s == k) {
        for (std::size_t i = 0; i < loop_to.size(); ++i)
          deliver(loop_to[i], loop_inc[i]);
        continue;
      }
      SpscRing& ring = rt.ring(s, k);
      if (!ring.attached()) continue;
      const std::uint64_t t0 = now_ms();
      std::uint64_t backoff_ns = 1'000;
      while (!ring.frame_ready()) {
        const std::uint64_t elapsed = now_ms() - t0;
        if (elapsed > deadline_ms) {
          dead = true;
          break;
        }
        sleep_backoff(backoff_ns, deadline_ms - elapsed);
      }
      if (dead) break;
      // The frame is read in place — the records were never copied on either
      // side of the link.
      const int count = ring.frame_count();
      const int* fto = ring.to();
      const Incoming* finc = ring.inc();
      for (int i = 0; i < count; ++i) deliver(fto[i], finc[i]);
      ring.consume();
    }
    if (dead) {
      slots[k].aborted.store(1, std::memory_order_release);
      return 3;
    }

    mix(~0ULL);  // round separator

    // End-of-round barrier + global-activity vote through the control slots.
    const std::uint64_t next = static_cast<std::uint64_t>(r) + 1;
    slots[k].state[next & 1].store(
        next << 1 | (next_active.empty() ? 0 : 1), std::memory_order_release);
    bool global_active = false;
    for (int s = 0; s < S && !dead; ++s) {
      const std::uint64_t t0 = now_ms();
      std::uint64_t backoff_ns = 1'000;
      std::uint64_t st = 0;
      while ((st = slots[s].state[next & 1].load(std::memory_order_acquire)) >>
                 1 !=
             next) {
        const std::uint64_t elapsed = now_ms() - t0;
        if (elapsed > deadline_ms) {
          dead = true;
          break;
        }
        sleep_backoff(backoff_ns, deadline_ms - elapsed);
      }
      global_active = global_active || (st & 1) != 0;
    }
    if (dead) {
      slots[k].aborted.store(1, std::memory_order_release);
      return 3;
    }

    // Swap round state.
    for (const int v : active) inbox[static_cast<std::size_t>(v)].clear();
    active.swap(next_active);
    next_active.clear();
    // Wakes were discovered in delivery order; the engine's active set is
    // ascending.
    std::sort(active.begin(), active.end());
    for (const int v : active) {
      woken[static_cast<std::size_t>(v)] = 0;
      inbox[static_cast<std::size_t>(v)].swap(
          next_inbox[static_cast<std::size_t>(v)]);
    }
    loop_to.clear();
    loop_inc.clear();
    std::fill(out_cnt.begin(), out_cnt.end(), 0);

    if (!global_active) {
      slots[k].trace_hash.store(hash, std::memory_order_release);
      slots[k].delivered.store(delivered, std::memory_order_release);
      slots[k].done.store(1, std::memory_order_release);
      return 0;
    }
  }
  std::fprintf(stderr, "shard %d: round cap %d reached without quiescence\n",
               k, cap);
  slots[k].aborted.store(1, std::memory_order_release);
  return 4;
}

// Sequential in-engine replay of the exact same flood; per-shard trace
// hashes in the same mixing order as the workers.
void reference_hashes(const Graph& g, const Partition& part,
                      std::vector<std::uint64_t>& hash,
                      std::vector<std::uint64_t>& delivered) {
  const int S = part.shards;
  hash.assign(static_cast<std::size_t>(S), kFnvOffset);
  delivered.assign(static_cast<std::size_t>(S), 0);
  std::vector<std::uint64_t> mixv(hash.size());
  pw::sim::Engine eng(g, pw::sim::ExecutionPolicy{1, false, false, false});
  std::vector<char> seen(static_cast<std::size_t>(g.n()), 0);
  eng.wake(0);
  while (!eng.idle()) {
    eng.begin_round();
    for (const int v : eng.active_nodes()) {
      const auto s = static_cast<std::size_t>(part.shard_of(v));
      const auto mix = [&](std::uint64_t x) {
        hash[s] = (hash[s] ^ x) * kFnvPrime;
      };
      mix(static_cast<std::uint64_t>(v) << 32 | 0xa0a0a0a0u);
      std::uint64_t dmin = ~0ULL;
      for (const auto& in : eng.inbox(v)) {
        mix(static_cast<std::uint64_t>(in.from) << 32 |
            static_cast<std::uint32_t>(in.port));
        mix(in.msg.tag);
        mix(in.msg.a);
        if (in.msg.a < dmin) dmin = in.msg.a;
        ++delivered[s];
      }
      if (seen[static_cast<std::size_t>(v)]) continue;
      seen[static_cast<std::size_t>(v)] = 1;
      const std::uint64_t dist = eng.inbox(v).empty() ? 0 : dmin + 1;
      for (int p = 0; p < g.degree(v); ++p)
        eng.send(v, p, Msg{1, dist, 0, 0});
    }
    eng.end_round();
    for (auto& h : hash) h = (h ^ ~0ULL) * kFnvPrime;  // round separator
  }
}

int run(const Options& opt) {
  const Graph g = build_graph(opt);
  if (g.n() < opt.shards) {
    std::fprintf(stderr, "need n >= shards (n=%d shards=%d)\n", g.n(),
                 opt.shards);
    return 2;
  }
  Partition part{(g.n() + opt.shards - 1) / opt.shards, opt.shards};
  RingTable rt(g, part);
  ShmArena control(static_cast<std::size_t>(opt.shards) * sizeof(PeerSlot));
  auto* slots = static_cast<PeerSlot*>(control.base());
  for (int s = 0; s < opt.shards; ++s) new (slots + s) PeerSlot{};

  std::vector<pid_t> pid(static_cast<std::size_t>(opt.shards), -1);
  for (int k = 0; k < opt.shards; ++k) {
    const pid_t p = fork();
    if (p < 0) {
      std::perror("fork");
      return 2;
    }
    if (p == 0) _exit(run_worker(k, g, part, rt, slots, opt));
    pid[static_cast<std::size_t>(k)] = p;
  }

  bool all_clean = true;
  for (int k = 0; k < opt.shards; ++k) {
    int status = 0;
    waitpid(pid[static_cast<std::size_t>(k)], &status, 0);
    if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) all_clean = false;
  }

  if (!all_clean) {
    // The multi-process watchdog report: name every worker that died without
    // reaching a clean or aborted exit, then the liveness counters of each
    // ring touching it — the cross-process analogue of the §9 dump.
    std::vector<char> is_dead(static_cast<std::size_t>(opt.shards), 0);
    for (int k = 0; k < opt.shards; ++k) {
      if (slots[k].done.load(std::memory_order_acquire) == 0 &&
          slots[k].aborted.load(std::memory_order_acquire) == 0) {
        is_dead[static_cast<std::size_t>(k)] = 1;
        std::fprintf(stderr, "PW_SHARD_WATCHDOG: dead peer shard %d (pid %d)\n",
                     k, static_cast<int>(pid[static_cast<std::size_t>(k)]));
      }
    }
    for (int d = 0; d < opt.shards; ++d)
      for (int s = 0; s < opt.shards; ++s) {
        SpscRing& ring = rt.ring(s, d);
        if (!ring.attached()) continue;
        const std::uint64_t pub = ring.pub_seq(), cons = ring.cons_seq();
        if (pub != cons || is_dead[static_cast<std::size_t>(s)] ||
            is_dead[static_cast<std::size_t>(d)])
          std::fprintf(stderr,
                       "PW_SHARD_WATCHDOG: stalled ring (%d -> %d): published "
                       "%" PRIu64 " consumed %" PRIu64 "\n",
                       s, d, pub, cons);
      }
    return 1;
  }

  if (opt.verify) {
    std::vector<std::uint64_t> ref_hash, ref_delivered;
    reference_hashes(g, part, ref_hash, ref_delivered);
    bool match = true;
    for (int k = 0; k < opt.shards; ++k) {
      const std::uint64_t wh =
          slots[k].trace_hash.load(std::memory_order_acquire);
      const std::uint64_t wd =
          slots[k].delivered.load(std::memory_order_acquire);
      if (wh != ref_hash[static_cast<std::size_t>(k)] ||
          wd != ref_delivered[static_cast<std::size_t>(k)]) {
        match = false;
        std::fprintf(stderr,
                     "shard %d MISMATCH: worker hash %" PRIx64 " delivered %" PRIu64
                     ", reference hash %" PRIx64 " delivered %" PRIu64 "\n",
                     k, wh, wd, ref_hash[static_cast<std::size_t>(k)],
                     ref_delivered[static_cast<std::size_t>(k)]);
      }
    }
    if (!match) return 1;
    std::printf("PW_SHARD_TRACES_MATCH shards=%d n=%d family=%s\n", opt.shards,
                g.n(), opt.family.c_str());
    return 0;
  }

  std::printf("PW_SHARD_OK shards=%d n=%d family=%s\n", opt.shards, g.n(),
              opt.family.c_str());
  return 0;
}

#endif  // PW_HAVE_FORK

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    const auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", a.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (a == "--family") opt.family = next();
    else if (a == "--n") opt.n = std::atoi(next());
    else if (a == "--seed") opt.seed = std::strtoull(next(), nullptr, 10);
    else if (a == "--shards") opt.shards = std::atoi(next());
    else if (a == "--rounds") opt.rounds_cap = std::atoi(next());
    else if (a == "--watchdog-ms") opt.watchdog_ms = std::atoi(next());
    else if (a == "--verify") opt.verify = true;
    else if (a == "--kill-shard") opt.kill_shard = std::atoi(next());
    else if (a == "--kill-round") opt.kill_round = std::atoi(next());
    else {
      std::fprintf(stderr, "unknown flag %s\n", a.c_str());
      return 2;
    }
  }
  if (opt.shards < 2) {
    std::fprintf(stderr, "need --shards >= 2\n");
    return 2;
  }
#ifdef PW_HAVE_FORK
  return run(opt);
#else
  std::fprintf(stderr, "partwise_shard requires fork(); unsupported here\n");
  return 2;
#endif
}
