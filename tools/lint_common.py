"""Shared helpers for the repo's static-analysis lints (DESIGN.md §11).

Three lints build on this module:

  * check_vectorization.py — VEC-GUARD markers vs. the compiler's
    vectorization report (compiler detection + marker scanning live here),
  * check_atomics.py       — the §11 atomics pairing audit (comment-aware
    source scanning, marker attachment, balanced-call extraction),
  * check_contracts.py     — the §11 invariant lint (atomic-member layout,
    futex wait phasing, death-contract registry).

Everything here is dependency-free standard library so the lints run on any
CI runner with a bare python3. The helpers are deliberately textual: a full
AST (libclang) is used by check_atomics.py when available, but the textual
scanners are the portable fallback and the single source of truth for the
marker grammar, so they live here and are unit-tested directly
(tools/test_lint_common.py).
"""

import os
import re
import subprocess


def repo_root():
    """The repository root: parent of the tools/ directory holding us."""
    return os.path.dirname(os.path.dirname(os.path.abspath(__file__)))


# ---------------------------------------------------------------------------
# Marker scanning (VEC-GUARD, PAIR, SC-INTENT, SHARED-LINE, WD-PHASE, ...)
# ---------------------------------------------------------------------------

def find_markers(source, marker_re):
    """All (match-group-1, lineno) pairs of `marker_re` in file `source`.

    The regex is searched per physical line; line numbers are 1-based. This
    is the scanner check_vectorization.py has always used for VEC-GUARD and
    is shared so every §11 marker family parses the same way.
    """
    markers = []
    with open(source, encoding="utf-8") as f:
        for lineno, line in enumerate(f, start=1):
            m = marker_re.search(line)
            if m:
                markers.append((m.group(1), lineno))
    return markers


# ---------------------------------------------------------------------------
# Compiler detection
# ---------------------------------------------------------------------------

def compiler_kind(compiler):
    """'clang', 'gcc', or None when `compiler` is missing or unrecognized.

    None is the portable skip-with-warning signal: a lint that needs a
    vectorizer/diagnostic report from the compiler should warn and skip
    rather than hard-fail on a runner whose toolchain it cannot drive.
    """
    try:
        out = subprocess.run([compiler, "--version"], capture_output=True,
                             text=True, check=False)
    except (OSError, FileNotFoundError):
        return None
    banner = (out.stdout + out.stderr).lower()
    if "clang" in banner:
        return "clang"
    # GCC's banner says "g++ (..." / "gcc (..." or "Free Software Foundation".
    if "g++" in banner or "gcc" in banner or "free software" in banner:
        return "gcc"
    return None


# ---------------------------------------------------------------------------
# Comment-aware C++ source scanning
# ---------------------------------------------------------------------------

_LINE_COMMENT = "//"


def split_code_comments(text):
    """Split C++ source into per-line (code, comment) pairs.

    Handles // and /* */ comments and skips comment openers inside string
    and character literals (good enough for this codebase's style; raw
    strings are not used in src/). Returns a list with one entry per line:
    index i holds line i+1's code text and comment text (either may be "").
    Markers live in comments, operations live in code — splitting once lets
    every lint scan the right half.
    """
    lines = text.split("\n")
    out = []
    in_block = False
    for line in lines:
        code = []
        comment = []
        i = 0
        n = len(line)
        in_str = None  # active quote char inside code
        while i < n:
            c = line[i]
            if in_block:
                end = line.find("*/", i)
                if end < 0:
                    comment.append(line[i:])
                    i = n
                else:
                    comment.append(line[i:end])
                    i = end + 2
                    in_block = False
                continue
            if in_str is not None:
                code.append(c)
                if c == "\\" and i + 1 < n:
                    code.append(line[i + 1])
                    i += 2
                    continue
                if c == in_str:
                    in_str = None
                i += 1
                continue
            if c in "\"'":
                in_str = c
                code.append(c)
                i += 1
                continue
            if line.startswith(_LINE_COMMENT, i):
                comment.append(line[i + 2:])
                i = n
                continue
            if line.startswith("/*", i):
                in_block = True
                i += 2
                continue
            code.append(c)
            i += 1
        out.append(("".join(code), "".join(comment)))
    return out


class SourceFile:
    """A scanned C++ file: joined comment-free code plus line bookkeeping."""

    def __init__(self, path, text=None):
        self.path = path
        if text is None:
            with open(path, encoding="utf-8") as f:
                text = f.read()
        self.split = split_code_comments(text)
        self.code_lines = [c for c, _ in self.split]
        self.comment_lines = [m for _, m in self.split]
        # Joined code with newlines preserved, so offsets map back to lines.
        self.code = "\n".join(self.code_lines)
        self._line_starts = [0]
        for cl in self.code_lines:
            self._line_starts.append(self._line_starts[-1] + len(cl) + 1)

    @classmethod
    def from_split(cls, path, code_lines, comment_lines):
        """A SourceFile built from an externally-computed code/comment split
        (check_atomics.py's libclang lexer path); same invariants as the
        textual constructor: one entry per line, newlines preserved."""
        sf = cls.__new__(cls)
        sf.path = path
        sf.code_lines = list(code_lines)
        sf.comment_lines = list(comment_lines)
        sf.split = list(zip(sf.code_lines, sf.comment_lines))
        sf.code = "\n".join(sf.code_lines)
        sf._line_starts = [0]
        for cl in sf.code_lines:
            sf._line_starts.append(sf._line_starts[-1] + len(cl) + 1)
        return sf

    def lineno(self, offset):
        """1-based line number of a character offset into self.code."""
        lo, hi = 0, len(self._line_starts) - 1
        while lo < hi:
            mid = (lo + hi + 1) // 2
            if self._line_starts[mid] <= offset:
                lo = mid
            else:
                hi = mid - 1
        return lo + 1

    def comment_window(self, lineno, span):
        """Comment text on `lineno` and up to `span` lines above, nearest
        first, as (lineno, text) pairs. Used for marker attachment."""
        out = []
        for ln in range(lineno, max(0, lineno - span - 1), -1):
            if 1 <= ln <= len(self.comment_lines):
                text = self.comment_lines[ln - 1]
                if text.strip():
                    out.append((ln, text))
        return out


def balanced_span(text, open_pos, open_ch="(", close_ch=")"):
    """End offset (exclusive, past the closer) of the bracketed span whose
    opener sits at `open_pos` in `text`, or -1 if unbalanced."""
    assert text[open_pos] == open_ch
    depth = 0
    i = open_pos
    n = len(text)
    while i < n:
        c = text[i]
        if c == open_ch:
            depth += 1
        elif c == close_ch:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return -1


def rscan_object_expr(code, dot_pos):
    """Walk backward from the '.' (or '->') of a method call and return the
    innermost member name of the object expression, e.g.:

        ready_state_[f(x)].load(...)     -> ready_state_
        hdr_->pub_seq.load(...)          -> pub_seq
        dq.top.compare_exchange_strong(..) -> top
        a->wait(...)                     -> a

    Returns "" when no identifier is found (expression too exotic)."""
    i = dot_pos - 1
    # Skip whitespace between object and accessor.
    while i >= 0 and code[i] in " \t\n":
        i -= 1
    # Skip a trailing index / call suffix: ...] or ...).
    while i >= 0 and code[i] in ")]":
        close = code[i]
        opener = "(" if close == ")" else "["
        depth = 0
        while i >= 0:
            if code[i] == close:
                depth += 1
            elif code[i] == opener:
                depth -= 1
                if depth == 0:
                    break
            i -= 1
        i -= 1
        while i >= 0 and code[i] in " \t\n":
            i -= 1
    end = i + 1
    while i >= 0 and (code[i].isalnum() or code[i] == "_"):
        i -= 1
    return code[i + 1:end]


_ATOMIC_DECL = "std::atomic<"


def declared_atomic_names(code):
    """Names declared with std::atomic<...> type anywhere in `code`
    (members, parameters, references — the lints filter by context), as a
    list of (name, offset-of-declaration) pairs.

    Handles nested templates (std::atomic<std::uint64_t>, std::vector<
    std::atomic<int>>) by balancing the atomic's angle brackets, then
    skipping any outer closers / cv-ref-pointer decoration before the
    identifier."""
    out = []
    pos = 0
    while True:
        pos = code.find(_ATOMIC_DECL, pos)
        if pos < 0:
            break
        i = pos + len(_ATOMIC_DECL) - 1  # at '<'
        depth = 0
        n = len(code)
        while i < n:
            if code[i] == "<":
                depth += 1
            elif code[i] == ">":
                depth -= 1
                if depth == 0:
                    break
            i += 1
        i += 1
        # Skip outer template closers, whitespace, cv/ref/pointer decoration.
        while i < n and (code[i] in "> \t\n*&" or
                         code.startswith("const", i)):
            i += 5 if code.startswith("const", i) else 1
        m = re.match(r"[A-Za-z_]\w*", code[i:])
        if m:
            name = m.group(0)
            # `std::atomic<T>::is_always_lock_free` and casts declare nothing.
            after = code[i + len(name):i + len(name) + 2]
            if not after.startswith("::"):
                out.append((name, pos, i + len(name)))
        pos = pos + 1
    return out
