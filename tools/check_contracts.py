#!/usr/bin/env python3
"""Invariant lint for the §11 concurrency contracts (DESIGN.md).

Three checks over src/sim plus the DESIGN.md death-contract registry:

  A. Atomic-member layout: every `std::atomic` member must either live in
     an `alignas`-grouped struct (ThreadState, ClaimDeque, RingHdr — the
     contended-line grouping is the layout) or carry a
     `// SHARED-LINE(<why>)` marker recording that sharing its cache line
     is a decision, not an accident.

  B. Wait phasing: every futex/atomic wait site must carry
     `// WD-PHASE(<name>)` (it parks inside the §9 watchdog-phased
     wrapper) or `// WD-EXEMPT: <why>` (it is deliberately outside the
     watchdog's reach — the dispatch park the caller always releases, the
     fired-sibling terminal park, the park primitive itself). A hang the
     watchdog cannot name is a hang the §9 dump cannot debug.

  C. Death-contract registry: the table under
     `<!-- DEATH-CONTRACT-REGISTRY -->` in DESIGN.md §11 must be live —
     each row's abort anchor still present at its named check site, each
     named death test still present (with an EXPECT_DEATH/ASSERT_DEATH
     body) in its named test file. Deleting a runtime check or its death
     test without updating the table fails this lint.

Anti-vacuous like the other §11 lints: finding zero atomic members, zero
wait sites, or fewer than --min-contracts registry rows is a failure —
a scanner regression must not pass by seeing nothing.

Usage:
    check_contracts.py [files...] [--design DESIGN.md] [--min-contracts N]
"""

import argparse
import glob
import os
import re
import sys

import lint_common

# Markers attach to the nearest declaration / wait site at-or-below them,
# within this many lines (same window as check_atomics.py).
ATTACH_WINDOW = 6

SHARED_LINE_RE = re.compile(r"SHARED-LINE\(([^)]*)")
WD_PHASE_RE = re.compile(r"WD-PHASE\(([A-Za-z0-9_.-]+)\)")
WD_EXEMPT_RE = re.compile(r"WD-EXEMPT:\s*(\S.*)")

# A wait site is a call to the futex primitive or an atomic wait method.
FUTEX_CALL_RE = re.compile(r"\bfutex_wait\s*\(")
FUTEX_DEF_RE = re.compile(r"\bvoid\s+futex_wait\s*\(")
ATOMIC_WAIT_RE = re.compile(r"(?:\.|->)\s*wait\s*\(")

MIN_ATOMIC_MEMBERS = 5
MIN_WAIT_SITES = 3

REGISTRY_MARK = "<!-- DEATH-CONTRACT-REGISTRY -->"
DEATH_RE = re.compile(r"\b(?:EXPECT|ASSERT)_DEATH\b")


# ---------------------------------------------------------------------------
# Check A: atomic-member layout
# ---------------------------------------------------------------------------

_SCOPE_HEAD_RE = re.compile(r"\b(struct|class)\b")


def atomic_member_decls(sf):
    """(name, lineno, in_alignas_scope) for every std::atomic member of a
    struct/class in `sf`.

    Walks the comment-free code classifying each brace scope by the text
    between the previous ';'/'{'/'}' and the '{': a `struct`/`class` head
    opens a member scope (alignas-grouped when the head says so); anything
    else (function body, enum, lambda, initializer) opens a plain scope.
    Declarations whose innermost scope is not a struct/class — locals — and
    declarations inside parentheses — parameters, casts, static_asserts —
    are not members and are skipped."""
    code = sf.code
    decls = lint_common.declared_atomic_names(code)
    # scope stack entries: (is_member_scope, has_alignas)
    stack = []
    events = []  # (offset, 'push'|'pop', entry) in code order
    seg_start = 0
    paren_depth_at = {}
    depth = 0
    for i, c in enumerate(code):
        if c == "(":
            depth += 1
        elif c == ")":
            depth = max(0, depth - 1)
        elif c in ";}":
            seg_start = i + 1
        if c == "{":
            head = code[seg_start:i]
            m = _SCOPE_HEAD_RE.search(head)
            is_member = bool(m)
            has_alignas = is_member and "alignas" in head
            events.append((i, "push", (is_member, has_alignas)))
            seg_start = i + 1
        elif c == "}":
            events.append((i, "pop", None))
        paren_depth_at[i] = depth

    out = []
    ev = 0
    for name, pos, _end in decls:
        while ev < len(events) and events[ev][0] < pos:
            _, kind, entry = events[ev]
            if kind == "push":
                stack.append(entry)
            elif stack:
                stack.pop()
            ev += 1
        if paren_depth_at.get(pos, 0) > 0:
            continue  # parameter / cast / static_assert operand
        if not stack or not stack[-1][0]:
            continue  # local or namespace-scope — not a member
        out.append((name, sf.lineno(pos), stack[-1][1]))
    return out


def check_layout(sources, errors):
    total = 0
    for sf in sources:
        marker_lines = [ln for ln, text in enumerate(sf.comment_lines, 1)
                        if SHARED_LINE_RE.search(text)]
        covered = set()
        for name, lineno, aligned in atomic_member_decls(sf):
            total += 1
            if aligned:
                continue
            hit = [(ln, t) for ln, t in sf.comment_window(lineno, ATTACH_WINDOW)
                   if SHARED_LINE_RE.search(t)]
            if hit:
                covered.add(hit[0][0])
            else:
                errors.append(
                    f"{sf.path}:{lineno}: atomic member '{name}' is neither "
                    f"in an alignas-grouped struct nor tagged "
                    f"// SHARED-LINE(<why>) (§11 check A)")
        for ln in marker_lines:
            near = any(ln <= dl <= ln + ATTACH_WINDOW
                       for _, dl, _ in atomic_member_decls(sf))
            if not near:
                errors.append(
                    f"{sf.path}:{ln}: dangling SHARED-LINE marker — no "
                    f"atomic member declaration within {ATTACH_WINDOW} "
                    f"lines below it")
    if total < MIN_ATOMIC_MEMBERS:
        errors.append(
            f"check A found only {total} atomic member(s) across "
            f"{len(sources)} file(s) (< {MIN_ATOMIC_MEMBERS}) — scanner "
            f"or fileset regression, refusing to pass vacuously")
    return total


# ---------------------------------------------------------------------------
# Check B: wait-site phasing
# ---------------------------------------------------------------------------

def wait_sites(sf):
    """1-based line numbers of futex_wait calls and atomic .wait() calls."""
    out = []
    for ln, code in enumerate(sf.code_lines, 1):
        if FUTEX_DEF_RE.search(code):
            continue  # the primitive's own signature, not a call
        if FUTEX_CALL_RE.search(code) or ATOMIC_WAIT_RE.search(code):
            out.append(ln)
    return out

def check_waits(sources, errors):
    total = 0
    for sf in sources:
        sites = wait_sites(sf)
        total += len(sites)
        for lineno in sites:
            window = sf.comment_window(lineno, ATTACH_WINDOW)
            if any(WD_PHASE_RE.search(t) or WD_EXEMPT_RE.search(t)
                   for _, t in window):
                continue
            errors.append(
                f"{sf.path}:{lineno}: wait site without // WD-PHASE(<name>) "
                f"or // WD-EXEMPT: <why> within {ATTACH_WINDOW} lines "
                f"(§11 check B — the §9 watchdog must be able to name "
                f"every park)")
        for ln, text in enumerate(sf.comment_lines, 1):
            if WD_PHASE_RE.search(text) or WD_EXEMPT_RE.search(text):
                if not any(ln <= s <= ln + ATTACH_WINDOW for s in sites):
                    errors.append(
                        f"{sf.path}:{ln}: dangling WD marker — no wait site "
                        f"within {ATTACH_WINDOW} lines below it")
    if total < MIN_WAIT_SITES:
        errors.append(
            f"check B found only {total} wait site(s) (< {MIN_WAIT_SITES}) "
            f"— scanner or fileset regression, refusing to pass vacuously")
    return total


# ---------------------------------------------------------------------------
# Check C: death-contract registry
# ---------------------------------------------------------------------------

_ROW_RE = re.compile(r"^\s*\|(.+)\|\s*$")
_TEST_CELL_RE = re.compile(r"(\S+\.cpp)\s+`([A-Za-z_]\w*)\.([A-Za-z_]\w*)`")


def parse_registry(design_path):
    """Rows of the DEATH-CONTRACT-REGISTRY table as dicts, or None when the
    marker is absent."""
    with open(design_path, encoding="utf-8") as f:
        text = f.read()
    mark = text.find(REGISTRY_MARK)
    if mark < 0:
        return None
    rows = []
    for line in text[mark:].splitlines():
        m = _ROW_RE.match(line)
        if not m:
            if rows:
                break  # table ended
            continue
        cells = [c.strip() for c in m.group(1).split("|")]
        if len(cells) != 4 or cells[0] in ("contract", ""):
            continue
        if set(cells[0]) <= {"-", " "}:
            continue  # separator row
        rows.append({"contract": cells[0],
                     "site": cells[1],
                     "anchor": cells[2].strip("`"),
                     "test": cells[3]})
    return rows


def check_registry(design_path, root, min_rows, errors):
    rows = parse_registry(design_path)
    if rows is None:
        errors.append(f"{design_path}: no '{REGISTRY_MARK}' table "
                      f"(§11 check C)")
        return 0
    if len(rows) < min_rows:
        errors.append(
            f"{design_path}: death-contract registry has {len(rows)} row(s) "
            f"(< {min_rows}) — refusing to pass vacuously (§11 check C)")
    for row in rows:
        site = os.path.join(root, row["site"])
        tag = f"registry row '{row['contract']}'"
        try:
            with open(site, encoding="utf-8") as f:
                site_text = f.read()
        except OSError:
            errors.append(f"{design_path}: {tag}: check site "
                          f"{row['site']} does not exist")
            continue
        if row["anchor"] not in site_text:
            errors.append(
                f"{design_path}: {tag}: abort anchor '{row['anchor']}' no "
                f"longer appears in {row['site']} — the runtime check moved "
                f"or was deleted; update the §11 registry")
        m = _TEST_CELL_RE.search(row["test"])
        if not m:
            errors.append(f"{design_path}: {tag}: death-test cell "
                          f"'{row['test']}' is not 'path.cpp `Suite.Name`'")
            continue
        test_path, suite, name = m.groups()
        full = os.path.join(root, test_path)
        try:
            with open(full, encoding="utf-8") as f:
                test_text = f.read()
        except OSError:
            errors.append(f"{design_path}: {tag}: test file {test_path} "
                          f"does not exist")
            continue
        tm = re.search(r"TEST(?:_F)?\(\s*%s\s*,\s*%s\s*\)"
                       % (re.escape(suite), re.escape(name)), test_text)
        if not tm:
            errors.append(
                f"{design_path}: {tag}: TEST({suite}, {name}) not found in "
                f"{test_path} — the death test was renamed or deleted; "
                f"update the §11 registry")
            continue
        nxt = test_text.find("\nTEST", tm.end())
        body = test_text[tm.end():nxt if nxt > 0 else len(test_text)]
        if not DEATH_RE.search(body):
            errors.append(
                f"{design_path}: {tag}: TEST({suite}, {name}) has no "
                f"EXPECT_DEATH/ASSERT_DEATH in its body — it no longer "
                f"pins the abort")
    return len(rows)


# ---------------------------------------------------------------------------


def default_files(root):
    pats = [os.path.join(root, "src", "sim", "*.hpp"),
            os.path.join(root, "src", "sim", "*.cpp")]
    out = []
    for p in pats:
        out.extend(sorted(glob.glob(p)))
    return out


def main(argv=None):
    root = lint_common.repo_root()
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*",
                    help="sources to audit (default: src/sim/*.{hpp,cpp})")
    ap.add_argument("--root", default=root,
                    help="repo root registry paths resolve against")
    ap.add_argument("--design",
                    default=None,
                    help="DESIGN.md holding the death-contract registry "
                         "(default: <root>/DESIGN.md; 'skip' disables "
                         "check C)")
    ap.add_argument("--min-contracts", type=int, default=6)
    args = ap.parse_args(argv)

    files = args.files or default_files(args.root)
    if not files:
        sys.exit("error: no input files — refusing to pass vacuously")
    sources = [lint_common.SourceFile(p) for p in files]

    errors = []
    n_members = check_layout(sources, errors)
    n_waits = check_waits(sources, errors)
    design = args.design or os.path.join(args.root, "DESIGN.md")
    n_rows = 0
    if design != "skip":
        n_rows = check_registry(design, args.root, args.min_contracts,
                                errors)

    if errors:
        for e in errors:
            print(e, file=sys.stderr)
        sys.exit(f"check_contracts: {len(errors)} violation(s)")
    print(f"check_contracts: {n_members} atomic member(s) layout-tagged, "
          f"{n_waits} wait site(s) phased, {n_rows} death contract(s) "
          f"live across {len(sources)} file(s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
