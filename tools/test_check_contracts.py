#!/usr/bin/env python3
"""Unit tests for check_contracts.py — layout tagging (A), wait phasing
(B), the death-contract registry (C), and the anti-vacuous floors (§11)."""

import contextlib
import io
import os
import shutil
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_contracts
import lint_common

# Passes every check with room above the anti-vacuous floors: 5 atomic
# members (2 alignas-grouped, 3 SHARED-LINE'd) and 3 phased wait sites.
GOOD = """\
struct alignas(64) Padded {
  std::atomic<int> a{0};
  std::atomic<int> b{0};
};
struct Eng {
  // SHARED-LINE(the three counters move together in one handshake)
  std::atomic<int> c_{0};
  std::atomic<int> d_{0};
  std::atomic<int> e_{0};
  void park() {
    // WD-PHASE(claim-wait): inside the phased wrapper
    c_.wait(0, std::memory_order_acquire);
  }
  void park_exempt() {
    // WD-EXEMPT: the caller always bumps this; not a deadlock class
    d_.wait(0, std::memory_order_acquire);
  }
  void park_timed() {
    // WD-PHASE(timed): watchdog-armed park
    futex_wait(&e_, 0, remaining);
  }
};
"""


class ContractsBase(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.mkdtemp(prefix="ckcontracts")

    def tearDown(self):
        shutil.rmtree(self.dir, ignore_errors=True)

    def write(self, rel, text):
        path = os.path.join(self.dir, rel)
        os.makedirs(os.path.dirname(path), exist_ok=True)
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
        return path

    def run_main(self, argv):
        err = io.StringIO()
        with contextlib.redirect_stdout(io.StringIO()), \
                contextlib.redirect_stderr(err):
            try:
                check_contracts.main(argv)
            except SystemExit as e:
                return str(e), err.getvalue()
        return None, err.getvalue()

    def lint(self, files, design="skip", extra=()):
        return self.run_main(list(files) + ["--design", design,
                                            "--root", self.dir, *extra])


class CheckLayout(ContractsBase):
    def test_good_fixture_passes(self):
        msg, err = self.lint([self.write("good.hpp", GOOD)])
        self.assertIsNone(msg, f"{msg}\n{err}")

    def test_naked_member_fails(self):
        pads = "\n".join(f"  int pad{i};" for i in range(7))
        src = GOOD.replace("std::atomic<int> e_{0};",
                           "std::atomic<int> e_{0};\n" + pads +
                           "\n  std::atomic<int> naked_{0};")
        msg, err = self.lint([self.write("bad.hpp", src)])
        self.assertIsNotNone(msg)
        self.assertIn("naked_", err)
        self.assertIn("SHARED-LINE", err)

    def test_dangling_shared_line_fails(self):
        src = GOOD + "// SHARED-LINE(nothing below)\nint not_atomic;\n"
        msg, err = self.lint([self.write("bad.hpp", src)])
        self.assertIsNotNone(msg)
        self.assertIn("dangling SHARED-LINE", err)

    def test_parameters_and_locals_are_not_members(self):
        src = GOOD + """\
void helper(const std::atomic<int>* p, std::atomic<int>& q);
void body() {
  std::atomic<int> local{0};
}
"""
        msg, err = self.lint([self.write("good.hpp", src)])
        self.assertIsNone(msg, f"{msg}\n{err}")

    def test_min_members_floor(self):
        src = """\
struct Eng {
  // SHARED-LINE(only one)
  std::atomic<int> a_{0};
  void park() {
    // WD-PHASE(p): x
    a_.wait(0, std::memory_order_acquire);
  }
  void park2() {
    // WD-PHASE(p): x
    a_.wait(1, std::memory_order_acquire);
  }
  void park3() {
    // WD-PHASE(p): x
    a_.wait(2, std::memory_order_acquire);
  }
};
"""
        msg, err = self.lint([self.write("small.hpp", src)])
        self.assertIsNotNone(msg)
        self.assertIn("refusing to pass vacuously", err)


class CheckWaits(ContractsBase):
    def test_unphased_wait_fails(self):
        src = GOOD.replace("    // WD-PHASE(claim-wait): inside the phased "
                           "wrapper\n", "")
        msg, err = self.lint([self.write("bad.hpp", src)])
        self.assertIsNotNone(msg)
        self.assertIn("WD-PHASE", err)

    def test_dangling_wd_marker_fails(self):
        src = GOOD + "// WD-EXEMPT: nothing parks below\nint trailing;\n"
        msg, err = self.lint([self.write("bad.hpp", src)])
        self.assertIsNotNone(msg)
        self.assertIn("dangling WD marker", err)

    def test_futex_definition_is_not_a_call_site(self):
        src = GOOD + """\
void futex_wait(const std::atomic<int>* a, int expected,
                long timeout_ns);
"""
        msg, err = self.lint([self.write("good.hpp", src)])
        self.assertIsNone(msg, f"{msg}\n{err}")

    def test_min_wait_sites_floor(self):
        src = """\
struct alignas(64) P {
  std::atomic<int> a{0};
  std::atomic<int> b{0};
  std::atomic<int> c{0};
  std::atomic<int> d{0};
  std::atomic<int> e{0};
};
"""
        msg, err = self.lint([self.write("nowaits.hpp", src)])
        self.assertIsNotNone(msg)
        self.assertIn("wait site(s)", err)


class CheckRegistry(ContractsBase):
    ROW = ("| my contract | src/sim/thing.cpp | `my abort anchor` | "
           "tests/thing_test.cpp `Suite.Name` |")

    def arrange(self, site_text=None, test_text=None, row=None, rows=None):
        self.write("src/sim/thing.cpp",
                   site_text if site_text is not None else
                   'PW_CHECK_MSG(ok, "my abort anchor");\n')
        self.write("tests/thing_test.cpp",
                   test_text if test_text is not None else
                   'TEST(Suite, Name) {\n'
                   '  EXPECT_DEATH(boom(), "my abort anchor");\n'
                   '}\n')
        table = rows if rows is not None else [row or self.ROW]
        design = self.write("DESIGN.md", "\n".join(
            ["# doc", "", "<!-- DEATH-CONTRACT-REGISTRY -->", "",
             "| contract | checked at | abort anchor | death test |",
             "|---|---|---|---|"] + table) + "\n")
        return design

    def lint_reg(self, design):
        return self.lint([self.write("good.hpp", GOOD)], design=design,
                         extra=["--min-contracts", "1"])

    def test_live_registry_passes(self):
        msg, err = self.lint_reg(self.arrange())
        self.assertIsNone(msg, f"{msg}\n{err}")

    def test_missing_marker_fails(self):
        design = self.write("DESIGN.md", "# doc with no registry\n")
        msg, err = self.lint_reg(design)
        self.assertIsNotNone(msg)
        self.assertIn("DEATH-CONTRACT-REGISTRY", err)

    def test_stale_anchor_fails(self):
        msg, err = self.lint_reg(
            self.arrange(site_text='PW_CHECK_MSG(ok, "renamed message");\n'))
        self.assertIsNotNone(msg)
        self.assertIn("no longer appears", err)

    def test_missing_check_site_file_fails(self):
        design = self.arrange()
        os.unlink(os.path.join(self.dir, "src", "sim", "thing.cpp"))
        msg, err = self.lint_reg(design)
        self.assertIsNotNone(msg)
        self.assertIn("does not exist", err)

    def test_renamed_death_test_fails(self):
        msg, err = self.lint_reg(self.arrange(
            test_text='TEST(Suite, Renamed) {\n'
                      '  EXPECT_DEATH(boom(), "x");\n'
                      '}\n'))
        self.assertIsNotNone(msg)
        self.assertIn("not found", err)

    def test_death_test_without_death_assertion_fails(self):
        msg, err = self.lint_reg(self.arrange(
            test_text='TEST(Suite, Name) {\n'
                      '  EXPECT_TRUE(true);\n'
                      '}\n'))
        self.assertIsNotNone(msg)
        self.assertIn("no ", err)
        self.assertIn("DEATH", err)

    def test_min_rows_floor(self):
        design = self.arrange()
        msg, err = self.lint([self.write("good.hpp", GOOD)], design=design,
                             extra=["--min-contracts", "6"])
        self.assertIsNotNone(msg)
        self.assertIn("refusing to pass vacuously", err)

    def test_malformed_test_cell_fails(self):
        msg, err = self.lint_reg(self.arrange(
            row="| my contract | src/sim/thing.cpp | `my abort anchor` | "
                "just prose |"))
        self.assertIsNotNone(msg)
        self.assertIn("is not", err)


class RealTree(unittest.TestCase):
    """The shipped fixture: the lint must pass on the actual repo, and its
    scanners must see the §9 wait sites it exists to phase."""

    def test_repo_passes(self):
        repo = lint_common.repo_root()
        execu = os.path.join(repo, "src", "sim", "executor.cpp")
        sf = lint_common.SourceFile(execu)
        self.assertGreaterEqual(len(check_contracts.wait_sites(sf)), 4)


if __name__ == "__main__":
    unittest.main()
