#!/usr/bin/env python3
"""Assert that every VEC-GUARD loop in a source file still autovectorizes.

The hot scatter loops in src/sim/data_plane.cpp are written so the compiler
provably vectorizes them (DESIGN.md section 6); a refactor that silently
drops one off the vectorizer is a perf regression no unit test catches. Each
such loop is marked in the source with a comment of the form

    // VEC-GUARD: <name>

and this script recompiles the file with the compiler's vectorization report
enabled, then requires a "loop vectorized" remark within WINDOW lines after
every marker. Supports GCC (-fopt-info-vec-optimized) and Clang
(-Rpass=loop-vectorize). Exits nonzero, naming the markers that failed, if
any guarded loop is no longer vectorized.

When the requested compiler is missing or is neither GCC nor Clang, the
guard SKIPS with a warning and exit 0 (no vectorizer report to read — a
hard failure would just make the lint job unportable); pass --strict to
turn that skip into a failure on runners where the toolchain is mandatory.

Usage:
    check_vectorization.py [--compiler CXX] [--source FILE] [--include DIR]
"""

import argparse
import os
import re
import subprocess
import sys
import tempfile

import lint_common

MARKER_RE = re.compile(r"//\s*VEC-GUARD:\s*(\S+)")
# How far below its marker a loop's vectorization remark may land. Markers
# sit directly above the loop; the window absorbs multi-line loop headers
# and the compiler reporting the body rather than the `for` line.
WINDOW = 40


def vectorized_lines(compiler, kind, source, include_dir):
    """Compile `source` and return the line numbers of vectorized loops."""
    base = [compiler, "-O3", "-DNDEBUG", "-std=c++20", "-I", include_dir,
            "-c", source, "-o", os.devnull]
    lines = set()
    if kind == "clang":
        cmd = base + ["-Rpass=loop-vectorize"]
        proc = subprocess.run(cmd, capture_output=True, text=True, check=False)
        report = proc.stderr
        pattern = re.compile(r"^[^:\n]*:(\d+):\d+: remark: vectorized loop",
                             re.MULTILINE)
    else:
        with tempfile.NamedTemporaryFile(mode="r", suffix=".vec",
                                         delete=False) as tmp:
            report_path = tmp.name
        cmd = base + [f"-fopt-info-vec-optimized={report_path}"]
        proc = subprocess.run(cmd, capture_output=True, text=True, check=False)
        try:
            with open(report_path, encoding="utf-8") as f:
                report = f.read()
        except OSError:
            report = ""
        finally:
            try:
                os.unlink(report_path)
            except OSError:
                pass
        pattern = re.compile(r"^[^:\n]*:(\d+):\d+: optimized: loop vectorized",
                             re.MULTILINE)
    if proc.returncode != 0:
        sys.stderr.write(proc.stderr)
        sys.exit(f"error: vectorization-report compile failed: {' '.join(cmd)}")
    for m in pattern.finditer(report):
        lines.add(int(m.group(1)))
    return lines


def main(argv=None):
    repo = lint_common.repo_root()
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--compiler", default=os.environ.get("CXX", "c++"))
    ap.add_argument("--source",
                    default=os.path.join(repo, "src", "sim", "data_plane.cpp"))
    ap.add_argument("--include", default=repo,
                    help="repo root the source's includes resolve against")
    ap.add_argument("--strict", action="store_true",
                    help="fail (instead of skip) when no GCC/Clang is found")
    args = ap.parse_args(argv)

    markers = lint_common.find_markers(args.source, MARKER_RE)
    if not markers:
        sys.exit(f"error: no '// VEC-GUARD:' markers in {args.source} — the "
                 "guard would vacuously pass; fix the markers or this script")

    kind = lint_common.compiler_kind(args.compiler)
    if kind is None:
        msg = (f"warning: vec-guard SKIPPED — compiler '{args.compiler}' is "
               "missing or is neither GCC nor Clang, so no vectorizer report "
               f"is available ({len(markers)} marker(s) unchecked)")
        if args.strict:
            sys.exit(msg.replace("warning", "error") + " [--strict]")
        print(msg)
        return 0

    vec = vectorized_lines(args.compiler, kind, args.source, args.include)

    failed = []
    for name, lineno in markers:
        hits = [l for l in vec if lineno < l <= lineno + WINDOW]
        status = "ok" if hits else "NOT VECTORIZED"
        where = f"remark at line {min(hits)}" if hits else \
                f"no vectorized-loop remark in lines {lineno + 1}..{lineno + WINDOW}"
        print(f"  [{status:>14}] {name} (marker at line {lineno}: {where})")
        if not hits:
            failed.append(name)
    if failed:
        sys.exit(f"error: guarded loop(s) fell off the vectorizer: "
                 f"{', '.join(failed)}")
    print(f"vec-guard: {len(markers)} guarded loop(s) vectorized "
          f"({os.path.basename(args.compiler)})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
