#!/usr/bin/env python3
"""Audit the engine's atomics for explicit ordering and PAIR discipline.

The lock-free surface of the sharded engine — executor claim deques,
per-edge seal flags, ring pub_seq handshakes (DESIGN.md §8/§10) — depends
on release/acquire pairings that prose documents and TSan only samples.
This lint makes them machine-checked (DESIGN.md §11):

  1. Every std::atomic load/store/RMW/wait in the audited files must name
     an explicit std::memory_order. An op that relies on the defaulted
     seq_cst must carry a `// SC-INTENT: <why>` marker instead — the
     default is allowed only when someone wrote down why.
  2. Every RELEASE-side operation (store/RMW with release, acq_rel, or
     seq_cst ordering) must carry a `// PAIR(<name>)` tag, and the group
     <name> must also contain at least one ACQUIRE-side tagged site
     (load/RMW/wait with acquire, consume, acq_rel, or seq_cst) — an
     acq_rel/seq_cst RMW chain satisfies both sides of its own group.
     The tagged groups form the pairing registry emitted as
     docs/ATOMICS_MAP.md.
  3. Assignments / increments on known atomic names outside declarations
     (`flag_ = 1`, `ctr_++`) are rejected outright: they are implicit
     seq_cst ops the textual scanner cannot classify — use the named
     methods.
  4. Anti-vacuous (the VEC-GUARD precedent): finding zero atomic
     operations, or fewer than --min-groups PAIR groups, is a failure —
     a path typo must not produce a green run.

Marker grammar (§11): markers live in comments on the op's line or up to
ATTACH_WINDOW lines above it; a marker that attaches to no operation is an
error (stale annotations must not linger). `// PAIR(<name>): <role note>`
and `// SC-INTENT: <why>` may share a line with each other.

Engine: uses libclang for the token stream when the python bindings are
importable (exact comment/op positions from the real lexer), else falls
back to the textual scanner in lint_common.py — same grammar, same rules.
The fallback is the one CI exercises; libclang is an accuracy upgrade, not
a behavior change.

Usage:
    check_atomics.py [files...] [--min-groups N]
                     [--write-map PATH | --check-map PATH]
"""

import argparse
import glob
import os
import re
import sys

import lint_common

ATTACH_WINDOW = 6

PAIR_RE = re.compile(r"PAIR\(([A-Za-z0-9_.-]+)\)")
SC_INTENT_RE = re.compile(r"SC-INTENT:\s*(\S.*)")

# Method name -> op kind. `notify_one`/`notify_all` take no order and are
# pure wake calls, deliberately absent. `wait` is a read (its reload uses
# the given order).
OP_KINDS = {
    "load": "load",
    "store": "store",
    "exchange": "rmw",
    "fetch_add": "rmw",
    "fetch_sub": "rmw",
    "fetch_and": "rmw",
    "fetch_or": "rmw",
    "fetch_xor": "rmw",
    "compare_exchange_strong": "rmw",
    "compare_exchange_weak": "rmw",
    "test_and_set": "rmw",
    "clear": "store",
    "wait": "load",
}
OP_RE = re.compile(r"(?:\.|->)\s*(" + "|".join(OP_KINDS) + r")\s*\(")

ORDER_RE = re.compile(r"memory_order(?:::|_)"
                      r"(relaxed|consume|acquire|release|acq_rel|seq_cst)")

RELEASE_ORDERS = {"release", "acq_rel", "seq_cst"}
ACQUIRE_ORDERS = {"acquire", "consume", "acq_rel", "seq_cst"}

# Implicit-op detectors on known atomic names (rule 3). The declaration
# itself (brace/equals init at declaration site) is excluded by checking
# the preceding token is not a type closer.
ASSIGN_RE = re.compile(r"(?<![=!<>+\-*/%&|^])=(?!=)")


class Site:
    """One atomic operation site."""

    def __init__(self, path, lineno, member, op, order, is_fence=False):
        self.path = path
        self.lineno = lineno
        self.member = member
        self.op = op
        self.order = order          # order token or None (defaulted seq_cst)
        self.is_fence = is_fence
        self.pair = None            # PAIR group name
        self.sc_intent = None       # SC-INTENT justification text
        self.pair_note = ""

    @property
    def releases(self):
        if self.order is None:
            return False
        if self.op == "load":
            return False
        return self.order in RELEASE_ORDERS

    @property
    def acquires(self):
        if self.order is None:
            return False
        if self.op == "store":
            return False
        return self.order in ACQUIRE_ORDERS

    def where(self):
        return f"{self.path}:{self.lineno}"


def top_level_orders(args):
    """memory_order tokens at the TOP level of an argument list — orders
    inside nested calls (`x.store(y.load(relaxed) + 1, release)`) belong to
    the nested op, so parenthesized sub-spans are stripped first."""
    out = []
    depth = 0
    start = 0
    stripped = []
    for i, c in enumerate(args):
        if c == "(":
            if depth == 0:
                stripped.append(args[start:i])
            depth += 1
        elif c == ")":
            depth -= 1
            if depth == 0:
                start = i + 1
    if depth == 0:
        stripped.append(args[start:])
    out = ORDER_RE.findall(" ".join(stripped))
    return out


def load_source(path):
    """SourceFile for `path`, preferring libclang's lexer for the
    code/comment split when the python bindings are importable (exact
    comment extents from the real lexer); any failure — no bindings, no
    libclang.so, a parse crash — falls back to the textual scanner, which
    implements the same split."""
    try:
        import clang.cindex as ci
        with open(path, "rb") as f:
            raw = f.read()
        tu = ci.Index.create().parse(
            path, args=["-std=c++20"], unsaved_files=[(path, raw)])
        # Blank each comment token's bytes out of a code copy and into a
        # comment copy (newlines kept in both so line numbers line up);
        # byte offsets sidestep the multibyte em dashes in the comments.
        code = bytearray(raw)
        comment = bytearray(b" " * len(raw))
        for i, b in enumerate(raw):
            if b == 0x0A:
                comment[i] = b
        saw_comment = False
        for tok in tu.cursor.get_tokens():
            if tok.kind is not ci.TokenKind.COMMENT:
                continue
            saw_comment = True
            for i in range(tok.extent.start.offset, tok.extent.end.offset):
                if raw[i] != 0x0A:
                    comment[i] = raw[i]
                    code[i] = 0x20
        if not saw_comment and b"//" in raw:
            raise RuntimeError("lexer returned no comment tokens")
        return lint_common.SourceFile.from_split(
            path,
            code.decode("utf-8", errors="replace").split("\n"),
            comment.decode("utf-8", errors="replace").split("\n"))
    except Exception:  # noqa: BLE001 — fallback is the contract
        return lint_common.SourceFile(path)


def scan_file(path, errors, shared_atomic_names, src=None):
    """All atomic op sites + attached markers for one file.

    `shared_atomic_names` is the fileset-wide set of declared atomic names:
    ops in a .cpp act on members declared in its header, so the name
    registry must span the whole audited set, not one file."""
    if src is None:
        src = lint_common.SourceFile(path)
    decls = lint_common.declared_atomic_names(src.code)
    atomic_names = set(shared_atomic_names)
    decl_linenos = {src.lineno(pos) for _, pos, _ in decls}
    # Alias tracking: `auto& x = <atomic_member>[...]` makes x atomic too.
    for m in re.finditer(r"auto&\s+(\w+)\s*=\s*(\w+)\s*\[", src.code):
        if m.group(2) in atomic_names:
            atomic_names.add(m.group(1))

    sites = []
    for m in OP_RE.finditer(src.code):
        method = m.group(1)
        member = lint_common.rscan_object_expr(src.code, m.start())
        if member not in atomic_names:
            continue  # .load()/.store() on some non-atomic type
        open_pos = src.code.index("(", m.end() - 1)
        end = lint_common.balanced_span(src.code, open_pos)
        if end < 0:
            errors.append(f"{path}:{src.lineno(m.start())}: unbalanced call "
                          f"arguments for {member}.{method}()")
            continue
        args = src.code[open_pos + 1:end - 1]
        orders = top_level_orders(args)
        # compare_exchange: the SUCCESS order (first) is the op's strength.
        order = orders[0] if orders else None
        sites.append(Site(path, src.lineno(m.start(1)), member, method,
                          order))

    # Fences: always ordered explicitly or they are defaulted-seq_cst ops.
    for m in re.finditer(r"\batomic_thread_fence\s*\(", src.code):
        open_pos = src.code.index("(", m.end() - 1)
        end = lint_common.balanced_span(src.code, open_pos)
        args = src.code[open_pos + 1:end - 1] if end > 0 else ""
        orders = ORDER_RE.findall(args)
        sites.append(Site(path, src.lineno(m.start()), "<fence>", "fence",
                          orders[0] if orders else None, is_fence=True))

    # Rule 3: implicit ops on known atomic names. Only flag statement-ish
    # contexts: an identifier token followed by =, ++, --, or op=.
    for m in re.finditer(r"\b(\w+)\s*(\+\+|--|[+\-|&^]=)", src.code):
        if m.group(1) in atomic_names:
            errors.append(
                f"{path}:{src.lineno(m.start())}: implicit atomic RMW "
                f"'{m.group(0).strip()}' on '{m.group(1)}' — use the named "
                "method with an explicit memory_order (§11)")
    for m in re.finditer(r"\b(\w+)\s*=[^=]", src.code):
        name = m.group(1)
        if name not in atomic_names:
            continue
        lineno = src.lineno(m.start())
        if lineno in decl_linenos:
            continue  # declaration initializer
        # `int x = atomic_name...` reads; only flag when the atomic is the
        # TARGET: preceding non-space char must be a statement boundary.
        before = src.code[:m.start()].rstrip()
        if before.endswith((";", "{", "}", ")")) or before == "":
            errors.append(
                f"{path}:{lineno}: implicit seq_cst store '{name} = ...' — "
                "use .store(v, std::memory_order_*) (§11)")

    # Marker attachment: nearest op at or below the marker line, within the
    # window. Markers that attach nowhere are stale -> error.
    by_line = sorted(sites, key=lambda s: s.lineno)
    for lineno, comment in enumerate(src.comment_lines, start=1):
        for regex, attr in ((PAIR_RE, "pair"), (SC_INTENT_RE, "sc_intent")):
            cm = regex.search(comment)
            if not cm:
                continue
            target = None
            for s in by_line:
                if lineno <= s.lineno <= lineno + ATTACH_WINDOW:
                    target = s
                    break
            if target is None:
                errors.append(
                    f"{path}:{lineno}: {attr.upper().replace('_', '-')} "
                    f"marker attaches to no atomic operation within "
                    f"{ATTACH_WINDOW} lines (stale annotation?)")
                continue
            if getattr(target, attr) is not None:
                errors.append(
                    f"{path}:{lineno}: duplicate {attr} marker for the "
                    f"operation at line {target.lineno}")
                continue
            setattr(target, attr, cm.group(1).strip())
            if attr == "pair":
                note = comment[cm.end():].lstrip(": ").strip()
                target.pair_note = note
    return sites


def audit(sites, errors):
    """Rules 1 and 2 over the collected sites; returns the group registry."""
    groups = {}
    for s in sites:
        if s.order is None:
            if s.sc_intent is None:
                errors.append(
                    f"{s.where()}: {s.member}.{s.op}() relies on the "
                    "defaulted seq_cst order — name the order explicitly or "
                    "justify the default with '// SC-INTENT: <why>' (§11)")
            # An SC-INTENT'd default is seq_cst for pairing purposes.
            continue
        if s.releases and s.pair is None and not s.is_fence:
            errors.append(
                f"{s.where()}: release-side {s.op}({s.order}) on "
                f"'{s.member}' has no '// PAIR(<name>)' tag — every publish "
                "needs a named acquire partner (§11)")
        if s.pair is not None:
            groups.setdefault(s.pair, []).append(s)

    for name, members in sorted(groups.items()):
        has_release = any(s.releases for s in members)
        has_acquire = any(s.acquires for s in members)
        if not has_release:
            errors.append(
                f"PAIR({name}): no release-side site is tagged "
                f"({', '.join(s.where() for s in members)})")
        if not has_acquire:
            errors.append(
                f"PAIR({name}): no acquire/consume-side site is tagged — a "
                "publish nobody is proven to subscribe to "
                f"({', '.join(s.where() for s in members)})")
    return groups


def render_map(groups, sites, files, root):
    """The docs/ATOMICS_MAP.md registry text."""
    def rel(p):
        return os.path.relpath(p, root).replace(os.sep, "/")

    out = []
    out.append("# Atomics pairing registry")
    out.append("")
    out.append("<!-- GENERATED by tools/check_atomics.py --write-map; do not "
               "edit by hand. CI checks this file is current (--check-map). "
               "-->")
    out.append("")
    out.append("Machine-checked publish/subscribe pairing map of every "
               "`std::atomic` operation")
    out.append("in the audited files (DESIGN.md §11). A **rel** row "
               "publishes (store/RMW with")
    out.append("release, acq_rel, or seq_cst order); an **acq** row "
               "subscribes (load/RMW/wait")
    out.append("with acquire, consume, acq_rel, or seq_cst). An acq_rel or "
               "seq_cst RMW is both")
    out.append("sides at once (**r+a**) — the RMW-chain case.")
    out.append("")
    out.append("Audited files: " + ", ".join(f"`{rel(f)}`" for f in files))
    out.append("")
    out.append("## PAIR groups")
    for name in sorted(groups):
        members = sorted(groups[name], key=lambda s: (s.path, s.lineno))
        out.append("")
        out.append(f"### `{name}`")
        out.append("")
        out.append("| side | site | operation | order | note |")
        out.append("|---|---|---|---|---|")
        for s in members:
            side = ("r+a" if s.releases and s.acquires else
                    "rel" if s.releases else
                    "acq" if s.acquires else "—")
            note = s.pair_note if s.pair_note else ""
            out.append(f"| {side} | {rel(s.path)}:{s.lineno} | "
                       f"`{s.member}.{s.op}` | {s.order} | {note} |")
    sc = [s for s in sites if s.sc_intent is not None]
    out.append("")
    out.append("## SC-INTENT sites (justified defaulted seq_cst)")
    out.append("")
    if sc:
        out.append("| site | operation | why |")
        out.append("|---|---|---|")
        for s in sorted(sc, key=lambda s: (s.path, s.lineno)):
            out.append(f"| {rel(s.path)}:{s.lineno} | `{s.member}.{s.op}` | "
                       f"{s.sc_intent} |")
    else:
        out.append("None — every operation names its order explicitly.")
    relaxed = sum(1 for s in sites if s.order == "relaxed")
    out.append("")
    out.append(f"Coverage: {len(sites)} atomic operations audited, "
               f"{len(groups)} PAIR groups, {relaxed} relaxed "
               "(unpaired-by-design) operations.")
    out.append("")
    return "\n".join(out)


def default_files(root):
    pats = [os.path.join(root, "src", "sim", "*.hpp"),
            os.path.join(root, "src", "sim", "*.cpp")]
    files = []
    for p in pats:
        files.extend(sorted(glob.glob(p)))
    return files


def main(argv=None):
    root = lint_common.repo_root()
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("files", nargs="*",
                    help="files to audit (default: src/sim/*.{hpp,cpp})")
    ap.add_argument("--min-groups", type=int, default=8,
                    help="minimum PAIR groups (anti-vacuous floor)")
    ap.add_argument("--write-map", metavar="PATH",
                    help="emit the pairing registry markdown to PATH")
    ap.add_argument("--check-map", metavar="PATH",
                    help="fail unless PATH matches the regenerated registry")
    ap.add_argument("--root", default=root,
                    help="repo root for relative paths in the registry")
    args = ap.parse_args(argv)

    files = args.files or default_files(args.root)
    if not files:
        sys.exit("error: no files to audit (path typo?) — refusing a "
                 "vacuous pass")
    missing = [f for f in files if not os.path.isfile(f)]
    if missing:
        sys.exit(f"error: no such file(s): {', '.join(missing)} — refusing "
                 "a vacuous pass")

    errors = []
    sites = []
    sources = {path: load_source(path) for path in files}
    shared_names = set()
    for src in sources.values():
        shared_names.update(
            name for name, _, _ in
            lint_common.declared_atomic_names(src.code))
    for path in files:
        sites.extend(scan_file(path, errors, shared_names, sources[path]))

    # Anti-vacuous only when the scan ALSO found nothing wrong: implicit-op
    # errors are evidence the scanner did see atomics, and must be reported
    # rather than masked by the zero-sites exit.
    if not sites and not errors:
        sys.exit(f"error: zero atomic operations found across "
                 f"{len(files)} file(s) — the audit would vacuously pass; "
                 "fix the file list or this script")

    groups = audit(sites, errors)

    if len(groups) < args.min_groups:
        errors.append(
            f"only {len(groups)} PAIR group(s) tagged, expected at least "
            f"{args.min_groups} — the pairing registry is the point of this "
            "lint (anti-vacuous floor; adjust --min-groups only with the "
            "map)")

    if errors:
        for e in errors:
            print(f"check_atomics: {e}", file=sys.stderr)
        sys.exit(f"error: {len(errors)} atomics-contract violation(s)")

    text = render_map(groups, sites, files, args.root)
    if args.write_map:
        with open(args.write_map, "w", encoding="utf-8") as f:
            f.write(text)
        print(f"check_atomics: wrote {args.write_map}")
    if args.check_map:
        try:
            with open(args.check_map, encoding="utf-8") as f:
                committed = f.read()
        except OSError:
            committed = None
        if committed != text:
            sys.exit(f"error: {args.check_map} is stale — regenerate with "
                     f"tools/check_atomics.py --write-map {args.check_map}")
    print(f"check_atomics: {len(sites)} atomic op(s) across {len(files)} "
          f"file(s): all explicitly ordered; {len(groups)} PAIR group(s) "
          "complete")
    return 0


if __name__ == "__main__":
    sys.exit(main())
