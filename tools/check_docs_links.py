#!/usr/bin/env python3
"""Docs link checker: every intra-repo Markdown link must resolve.

Scans the repo's Markdown files (README.md, DESIGN.md, ROADMAP.md, docs/,
bench/, ...) for inline links [text](target) and checks that

  * relative file targets exist (relative to the file containing the link);
  * pure-anchor targets (#section) match a heading in the same file, using
    GitHub's slug rules (lowercase, spaces -> dashes, punctuation dropped);
  * file#anchor targets match a heading of the target file.

External links (http/https/mailto) are not fetched — CI must not depend on
the outside world — but are counted so the summary shows coverage. Exits 1
with a per-link report when anything dangles.

Usage: check_docs_links.py [repo_root]
"""

import os
import re
import sys

LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")
HEADING_RE = re.compile(r"^#{1,6}\s+(.*)$", re.MULTILINE)
CODE_FENCE_RE = re.compile(r"```.*?```", re.DOTALL)
EXTERNAL = ("http://", "https://", "mailto:")

# Directories never scanned (build trees, third-party).
SKIP_DIRS = {".git", "build", "build-asan", "build-tsan", ".claude"}


def slugify(heading):
    """GitHub-style anchor slug (close enough for ASCII docs)."""
    s = heading.strip().lower()
    s = re.sub(r"[^\w\- ]", "", s, flags=re.UNICODE)
    return s.replace(" ", "-")


def markdown_files(root):
    for dirpath, dirnames, filenames in os.walk(root):
        dirnames[:] = [d for d in dirnames if d not in SKIP_DIRS]
        for f in filenames:
            if f.endswith(".md"):
                yield os.path.join(dirpath, f)


def headings_of(path, cache={}):
    if path not in cache:
        try:
            with open(path, encoding="utf-8") as f:
                text = CODE_FENCE_RE.sub("", f.read())
        except OSError:
            cache[path] = set()
        else:
            cache[path] = {slugify(h) for h in HEADING_RE.findall(text)}
    return cache[path]


def main():
    root = os.path.abspath(sys.argv[1] if len(sys.argv) > 1 else ".")
    broken, checked, external = [], 0, 0
    for md in sorted(markdown_files(root)):
        with open(md, encoding="utf-8") as f:
            text = CODE_FENCE_RE.sub("", f.read())
        rel_md = os.path.relpath(md, root)
        for target in LINK_RE.findall(text):
            if target.startswith(EXTERNAL):
                external += 1
                continue
            checked += 1
            if target.startswith("#"):
                if slugify(target[1:]) not in headings_of(md):
                    broken.append((rel_md, target, "no such heading"))
                continue
            path_part, _, anchor = target.partition("#")
            dest = os.path.normpath(os.path.join(os.path.dirname(md), path_part))
            if not os.path.exists(dest):
                broken.append((rel_md, target, "file not found"))
                continue
            if anchor and slugify(anchor) not in headings_of(dest):
                broken.append((rel_md, target, "no such heading in target"))

    if broken:
        print(f"BROKEN: {len(broken)} dangling intra-repo link(s):")
        for src, target, why in broken:
            print(f"  {src}: ({target}) — {why}")
        return 1
    print(f"OK: {checked} intra-repo link(s) resolve "
          f"({external} external link(s) not fetched)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
