#!/usr/bin/env python3
"""Unit tests for lint_common.py — the textual C++ scanners every §11 lint
builds on, plus the check_vectorization.py skip path that rides on
compiler_kind()."""

import os
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_vectorization
import lint_common


class SplitCodeComments(unittest.TestCase):
    def test_line_comment_split(self):
        split = lint_common.split_code_comments("x = 1;  // PAIR(a)\ny = 2;")
        self.assertEqual(split[0], ("x = 1;  ", " PAIR(a)"))
        self.assertEqual(split[1], ("y = 2;", ""))

    def test_block_comment_spans_lines(self):
        split = lint_common.split_code_comments(
            "a; /* start\n middle\n end */ b;")
        self.assertEqual(split[0][0], "a; ")
        self.assertIn("start", split[0][1])
        self.assertEqual(split[1][0], "")
        self.assertIn("middle", split[1][1])
        self.assertEqual(split[2][0].strip(), "b;")

    def test_comment_openers_inside_strings_ignored(self):
        split = lint_common.split_code_comments(
            'printf("// not a comment /* either");')
        self.assertIn("// not a comment", split[0][0])
        self.assertEqual(split[0][1], "")

    def test_escaped_quote_in_string(self):
        split = lint_common.split_code_comments(
            'f("quote \\" then"); // real comment')
        self.assertEqual(split[0][1], " real comment")


class SourceFileTest(unittest.TestCase):
    def make(self, text):
        return lint_common.SourceFile("<mem>", text=text)

    def test_lineno_roundtrip(self):
        sf = self.make("aa;\nbb;\ncc;\n")
        self.assertEqual(sf.lineno(sf.code.index("bb")), 2)
        self.assertEqual(sf.lineno(sf.code.index("cc")), 3)

    def test_lineno_unchanged_by_comments(self):
        sf = self.make("aa;\n// only a comment\ncc;\n")
        self.assertEqual(sf.lineno(sf.code.index("cc")), 3)

    def test_comment_window_nearest_first(self):
        sf = self.make("// far\n// near\nx.load();\n")
        window = sf.comment_window(3, 6)
        self.assertEqual([ln for ln, _ in window], [2, 1])

    def test_from_split_matches_textual(self):
        text = "int x;  // note\n/* block */ int y;\n"
        a = self.make(text)
        b = lint_common.SourceFile.from_split(
            "<mem>", a.code_lines, a.comment_lines)
        self.assertEqual(a.code, b.code)
        self.assertEqual(a.comment_lines, b.comment_lines)
        self.assertEqual(a.lineno(a.code.index("y")),
                         b.lineno(b.code.index("y")))


class RscanObjectExpr(unittest.TestCase):
    def scan(self, code):
        return lint_common.rscan_object_expr(code, code.rindex("."))

    def test_plain_member(self):
        self.assertEqual(self.scan("generation_.load"), "generation_")

    def test_indexed_member_with_call_inside(self):
        self.assertEqual(self.scan("ready_state_[f(x, g(y))].load"),
                         "ready_state_")

    def test_arrow_chain_returns_innermost(self):
        code = "hdr_->pub_seq.load"
        self.assertEqual(
            lint_common.rscan_object_expr(code, code.rindex(".")), "pub_seq")

    def test_nested_struct_member(self):
        self.assertEqual(self.scan("deques_[t].top.load"), "top")


class DeclaredAtomicNames(unittest.TestCase):
    def names(self, code):
        return [n for n, _, _ in lint_common.declared_atomic_names(code)]

    def test_plain_and_templated(self):
        code = ("std::atomic<int> x_{0};\n"
                "std::atomic<std::uint64_t> y_{0};\n")
        self.assertEqual(self.names(code), ["x_", "y_"])

    def test_vector_of_atomic(self):
        self.assertEqual(self.names("std::vector<std::atomic<int>> v_;"),
                         ["v_"])

    def test_is_always_lock_free_not_a_decl(self):
        self.assertEqual(
            self.names("static_assert(std::atomic<int>::is_always_lock_free);"),
            [])

    def test_pointer_and_reference_params(self):
        self.assertEqual(
            self.names("void f(const std::atomic<int>* a, "
                       "std::atomic<int>& b);"),
            ["a", "b"])


class BalancedSpan(unittest.TestCase):
    def test_nested(self):
        code = "f(g(h(1)), 2) tail"
        end = lint_common.balanced_span(code, code.index("("))
        self.assertEqual(code[:end], "f(g(h(1)), 2)")

    def test_unbalanced_returns_minus_one(self):
        self.assertEqual(lint_common.balanced_span("f(g(", 1), -1)


class CompilerKind(unittest.TestCase):
    def test_missing_compiler_is_none(self):
        self.assertIsNone(
            lint_common.compiler_kind("/nonexistent/definitely-not-a-cxx"))

    def test_python_is_not_a_compiler(self):
        self.assertIsNone(lint_common.compiler_kind(sys.executable))


class VecGuardSkipPath(unittest.TestCase):
    """check_vectorization must skip-with-warning (exit 0) when no GCC or
    Clang is available, and hard-fail the same situation under --strict."""

    def setUp(self):
        self.tmp = tempfile.NamedTemporaryFile(
            mode="w", suffix=".cpp", delete=False)
        self.tmp.write("// VEC-GUARD: dummy\n"
                       "void f(int* a) { for (int i = 0; i < 8; ++i) "
                       "a[i] += 1; }\n")
        self.tmp.close()

    def tearDown(self):
        os.unlink(self.tmp.name)

    def test_missing_compiler_skips_with_warning(self):
        rc = check_vectorization.main(
            ["--compiler", "/nonexistent/cxx", "--source", self.tmp.name])
        self.assertEqual(rc, 0)

    def test_strict_turns_skip_into_failure(self):
        with self.assertRaises(SystemExit) as ctx:
            check_vectorization.main(
                ["--compiler", "/nonexistent/cxx", "--source", self.tmp.name,
                 "--strict"])
        self.assertIn("--strict", str(ctx.exception))

    def test_no_markers_is_an_error_even_when_skipping(self):
        bare = tempfile.NamedTemporaryFile(
            mode="w", suffix=".cpp", delete=False)
        bare.write("void f() {}\n")
        bare.close()
        try:
            with self.assertRaises(SystemExit) as ctx:
                check_vectorization.main(
                    ["--compiler", "/nonexistent/cxx", "--source", bare.name])
            self.assertIn("VEC-GUARD", str(ctx.exception))
        finally:
            os.unlink(bare.name)


if __name__ == "__main__":
    unittest.main()
