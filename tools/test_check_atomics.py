#!/usr/bin/env python3
"""Unit tests for check_atomics.py — positive pairings, each violation
class, and the anti-vacuous floors (§11)."""

import contextlib
import io
import os
import shutil
import sys
import tempfile
import unittest

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import check_atomics

GOOD_PAIR = """\
struct Eng {
  std::atomic<int> seq_{0};
  void publish() {
    // PAIR(seq): payload published
    seq_.store(1, std::memory_order_release);
  }
  int read() {
    // PAIR(seq): subscribe
    return seq_.load(std::memory_order_acquire);
  }
};
"""


class CheckAtomicsMain(unittest.TestCase):
    def setUp(self):
        self.dir = tempfile.mkdtemp(prefix="ckatomics")

    def tearDown(self):
        shutil.rmtree(self.dir, ignore_errors=True)

    def write(self, name, text):
        path = os.path.join(self.dir, name)
        with open(path, "w", encoding="utf-8") as f:
            f.write(text)
        return path

    def run_main(self, argv):
        """(exit_message_or_None, stderr_text); None means a clean pass."""
        err = io.StringIO()
        with contextlib.redirect_stdout(io.StringIO()), \
                contextlib.redirect_stderr(err):
            try:
                check_atomics.main(argv)
            except SystemExit as e:
                return str(e), err.getvalue()
        return None, err.getvalue()

    def assert_fails(self, files, needle, extra=()):
        msg, err = self.run_main(list(files) + ["--min-groups", "1",
                                                *extra])
        self.assertIsNotNone(msg, "expected a failure, lint passed")
        self.assertIn(needle, err + msg)

    def assert_passes(self, files, extra=()):
        msg, err = self.run_main(list(files) + ["--min-groups", "1",
                                                *extra])
        self.assertIsNone(msg, f"expected a pass, got: {msg}\n{err}")

    # --- positive paths ----------------------------------------------------

    def test_complete_pair_passes(self):
        self.assert_passes([self.write("a.hpp", GOOD_PAIR)])

    def test_acq_rel_rmw_chain_is_both_sides(self):
        self.assert_passes([self.write("a.hpp", """\
struct Eng {
  std::atomic<int> deps_{2};
  bool drop() {
    // PAIR(deps): RMW chain
    return deps_.fetch_sub(1, std::memory_order_acq_rel) == 1;
  }
};
""")])

    def test_sc_intent_justifies_defaulted_order(self):
        self.assert_passes([self.write("a.hpp", """\
struct Eng {
  std::atomic<int> w_{0};
  int dekker() {
    // SC-INTENT: store-buffer handshake against the register side
    return w_.load();
  }
};
""")], extra=["--min-groups", "0"])

    def test_cross_file_member_resolution(self):
        hpp = self.write("eng.hpp", """\
struct Eng {
  std::atomic<int> seq_{0};
  void f();
  int g();
};
""")
        cpp = self.write("eng.cpp", """\
void Eng::f() {
  // PAIR(seq): publish
  seq_.store(1, std::memory_order_release);
}
int Eng::g() {
  // PAIR(seq): subscribe
  return seq_.load(std::memory_order_acquire);
}
""")
        self.assert_passes([hpp, cpp])

    def test_nested_call_order_does_not_leak(self):
        # The relaxed load nested INSIDE the store's value argument must not
        # count as the store's order.
        self.assert_fails([self.write("a.hpp", """\
struct Eng {
  std::atomic<int> seq_{0};
  void bump() {
    seq_.store(seq_.load(std::memory_order_relaxed) + 1,
               std::memory_order_release);
  }
};
""")], "PAIR")

    # --- violation classes -------------------------------------------------

    def test_defaulted_order_without_sc_intent_fails(self):
        self.assert_fails([self.write("a.hpp", """\
struct Eng {
  std::atomic<int> x_{0};
  int f() { return x_.load(); }
};
""")], "defaulted seq_cst")

    def test_release_without_pair_fails(self):
        self.assert_fails([self.write("a.hpp", """\
struct Eng {
  std::atomic<int> x_{0};
  void f() { x_.store(1, std::memory_order_release); }
};
""")], "PAIR")

    def test_group_without_acquire_side_fails(self):
        self.assert_fails([self.write("a.hpp", """\
struct Eng {
  std::atomic<int> x_{0};
  void f() {
    // PAIR(lonely): publish
    x_.store(1, std::memory_order_release);
  }
};
""")], "no acquire")

    def test_implicit_store_fails(self):
        self.assert_fails([self.write("a.hpp", """\
struct Eng {
  std::atomic<int> x_{0};
  void f() {
    x_ = 1;
  }
};
""")], "implicit seq_cst store")

    def test_implicit_increment_fails(self):
        self.assert_fails([self.write("a.hpp", """\
struct Eng {
  std::atomic<int> x_{0};
  void f() { x_++; }
};
""")], "implicit atomic RMW")

    def test_dangling_marker_fails(self):
        self.assert_fails([self.write("a.hpp", """\
struct Eng {
  // PAIR(ghost): there is no operation below
  std::atomic<int> x_{0};
  int far();
  int away();
  int fields();
  int here();
  int too();
  int deep();
  int f() { return x_.load(std::memory_order_acquire); }
};
""")], "attaches to no atomic operation")

    def test_duplicate_marker_fails(self):
        self.assert_fails([self.write("a.hpp", """\
struct Eng {
  std::atomic<int> x_{0};
  void f() {
    // PAIR(a): one
    // PAIR(b): two, same op
    x_.store(1, std::memory_order_release);
  }
};
""")], "duplicate")

    # --- anti-vacuous floors -----------------------------------------------

    def test_zero_atomics_fails(self):
        self.assert_fails([self.write("a.hpp", "struct Eng { int x; };\n")],
                          "zero atomic operations")

    def test_min_groups_floor(self):
        path = self.write("a.hpp", GOOD_PAIR)
        msg, err = self.run_main([path, "--min-groups", "8"])
        self.assertIsNotNone(msg)
        self.assertIn("PAIR group(s) tagged, expected at least", err + msg)

    def test_no_files_fails(self):
        msg, _ = self.run_main(
            [os.path.join(self.dir, "no_such_glob_dir", "x.hpp")])
        self.assertIsNotNone(msg)

    # --- registry map ------------------------------------------------------

    def test_map_roundtrip_and_staleness(self):
        src = self.write("a.hpp", GOOD_PAIR)
        map_path = os.path.join(self.dir, "MAP.md")
        self.assert_passes([src], extra=["--write-map", map_path])
        self.assert_passes([src], extra=["--check-map", map_path])
        with open(map_path, "a", encoding="utf-8") as f:
            f.write("drift\n")
        self.assert_fails([src], "stale", extra=["--check-map", map_path])

    def test_map_contains_group_and_sides(self):
        src = self.write("a.hpp", GOOD_PAIR)
        map_path = os.path.join(self.dir, "MAP.md")
        self.assert_passes([src], extra=["--write-map", map_path])
        with open(map_path, encoding="utf-8") as f:
            text = f.read()
        self.assertIn("### `seq`", text)
        self.assertIn("| rel |", text)
        self.assertIn("| acq |", text)
        self.assertIn("GENERATED", text)


class LoadSourceFallback(unittest.TestCase):
    def test_load_source_always_yields_scannable_file(self):
        # Whether or not libclang bindings are importable, load_source must
        # produce the same split the textual scanner defines.
        with tempfile.NamedTemporaryFile(
                mode="w", suffix=".hpp", delete=False) as f:
            f.write("std::atomic<int> x_{0};  // PAIR(p)\n")
            path = f.name
        try:
            sf = check_atomics.load_source(path)
            self.assertIn("std::atomic<int> x_{0};", sf.code_lines[0])
            self.assertIn("PAIR(p)", sf.comment_lines[0])
        finally:
            os.unlink(path)


if __name__ == "__main__":
    unittest.main()
