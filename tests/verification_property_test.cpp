// Property sweep: every verifier must agree with a centralized oracle on
// randomized subgraph instances (accept and reject cases both exercised).
#include <gtest/gtest.h>

#include <optional>

#include "src/apps/verification.hpp"
#include "src/graph/dsu.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/properties.hpp"

namespace pw::apps {
namespace {

using graph::Graph;

struct SweepCase {
  std::uint64_t seed;
  double density;  // probability an edge is in H
};

class VerifierSweep : public ::testing::TestWithParam<SweepCase> {
 protected:
  void SetUp() override {
    Rng rng(GetParam().seed);
    g_ = graph::gen::random_connected(90, 230, rng);
    h_.assign(g_->m(), 0);
    for (int e = 0; e < g_->m(); ++e)
      h_[e] = rng.next_bool(GetParam().density) ? 1 : 0;
  }

  bool oracle_connected(const std::vector<char>& h) const {
    graph::Dsu dsu(g_->n());
    for (int e = 0; e < g_->m(); ++e)
      if (h[e]) dsu.unite(g_->edge(e).u, g_->edge(e).v);
    return dsu.components() == 1;
  }

  std::optional<Graph> g_;
  std::vector<char> h_;
};

TEST_P(VerifierSweep, ConnectivityAgreesWithOracle) {
  sim::Engine eng(*g_);
  EXPECT_EQ(verify_connectivity(eng, h_, {}).ok, oracle_connected(h_));
}

TEST_P(VerifierSweep, SpanningTreeAgreesWithOracle) {
  int count = 0;
  for (char c : h_) count += c;
  const bool oracle = oracle_connected(h_) && count == g_->n() - 1;
  sim::Engine eng(*g_);
  EXPECT_EQ(verify_spanning_tree(eng, h_, {}).ok, oracle);
}

TEST_P(VerifierSweep, CutAgreesWithOracle) {
  std::vector<char> complement(h_.size());
  for (std::size_t e = 0; e < h_.size(); ++e) complement[e] = h_[e] ? 0 : 1;
  const bool oracle = !oracle_connected(complement);
  sim::Engine eng(*g_);
  EXPECT_EQ(verify_cut(eng, h_, {}).ok, oracle);
}

TEST_P(VerifierSweep, STConnectivityAgreesWithOracle) {
  graph::Dsu dsu(g_->n());
  for (int e = 0; e < g_->m(); ++e)
    if (h_[e]) dsu.unite(g_->edge(e).u, g_->edge(e).v);
  const int s = 0, t = g_->n() / 2;
  sim::Engine eng(*g_);
  EXPECT_EQ(verify_s_t_connectivity(eng, h_, s, t, {}).ok, dsu.same(s, t));
}

TEST_P(VerifierSweep, LabelsArePartitionHomomorphic) {
  sim::Engine eng(*g_);
  const auto res = h_component_labels(eng, h_, {});
  graph::Dsu dsu(g_->n());
  for (int e = 0; e < g_->m(); ++e)
    if (h_[e]) dsu.unite(g_->edge(e).u, g_->edge(e).v);
  for (const auto& e : g_->edges())
    EXPECT_EQ(res.label[e.u] == res.label[e.v], dsu.same(e.u, e.v));
}


TEST_P(VerifierSweep, BipartitenessAgreesWithOracle) {
  // Oracle: 2-color H by BFS.
  std::vector<int> color(g_->n(), -1);
  bool oracle = true;
  std::vector<std::vector<std::pair<int, int>>> hadj(g_->n());
  for (int e = 0; e < g_->m(); ++e)
    if (h_[e]) {
      hadj[g_->edge(e).u].push_back({g_->edge(e).v, e});
      hadj[g_->edge(e).v].push_back({g_->edge(e).u, e});
    }
  for (int s = 0; s < g_->n() && oracle; ++s) {
    if (color[s] >= 0) continue;
    color[s] = 0;
    std::vector<int> stack{s};
    while (!stack.empty() && oracle) {
      const int v = stack.back();
      stack.pop_back();
      for (const auto& [u, e] : hadj[v]) {
        if (color[u] < 0) {
          color[u] = color[v] ^ 1;
          stack.push_back(u);
        } else if (color[u] == color[v]) {
          oracle = false;
        }
      }
    }
  }
  sim::Engine eng(*g_);
  EXPECT_EQ(verify_bipartiteness(eng, h_, {}).ok, oracle);
}

INSTANTIATE_TEST_SUITE_P(
    DensitySweep, VerifierSweep,
    ::testing::Values(SweepCase{201, 0.05}, SweepCase{202, 0.2},
                      SweepCase{203, 0.5}, SweepCase{204, 0.8},
                      SweepCase{205, 0.95}, SweepCase{206, 1.0},
                      SweepCase{207, 0.0}),
    [](const ::testing::TestParamInfo<SweepCase>& info) {
      return "seed" + std::to_string(info.param.seed) + "_density" +
             std::to_string(static_cast<int>(info.param.density * 100));
    });

}  // namespace
}  // namespace pw::apps
