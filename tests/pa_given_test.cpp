#include <gtest/gtest.h>

#include "src/core/pa_given.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/properties.hpp"
#include "src/tree/bfs.hpp"

namespace pw::core {
namespace {

using graph::Graph;
using graph::Partition;

// Centralized reference for PA.
std::vector<std::uint64_t> reference_pa(const Partition& p, const Agg& agg,
                                        const std::vector<std::uint64_t>& values) {
  std::vector<std::uint64_t> out(p.num_parts, agg.identity);
  for (std::size_t v = 0; v < values.size(); ++v)
    out[p.part_of[v]] = agg(out[p.part_of[v]], values[v]);
  return out;
}

struct Pipeline {
  sim::Engine eng;
  tree::SpanningForest t;
  shortcut::SubPartDivision div;
  shortcut::Shortcut sc;

  Pipeline(const Graph& g, const Partition& p, int diameter, Rng& rng,
           bool with_trivial_shortcut)
      : eng(g),
        t(tree::build_bfs_tree(eng, 0)),
        div(shortcut::build_subpart_division_random(eng, p, std::max(1, diameter),
                                                    rng)),
        sc(with_trivial_shortcut
               ? shortcut::trivial_whole_tree_shortcut(
                     g, t, p, std::max(1, diameter))
               : shortcut::Shortcut::empty(g.n())) {}
};

void expect_pa_correct(const Graph& g, Partition p, PaMode mode,
                       bool with_shortcut, std::uint64_t seed) {
  Rng rng(seed);
  p.elect_min_id_leaders();
  graph::validate_partition(g, p);
  const int diameter = graph::diameter_estimate(g);
  Pipeline pipe(g, p, diameter, rng, with_shortcut);
  shortcut::validate_subpart_division(g, p, pipe.div, std::max(1, diameter));

  std::vector<std::uint64_t> values(g.n());
  for (int v = 0; v < g.n(); ++v) values[v] = rng.next_below(1u << 20);

  for (const Agg& agg : {agg::min(), agg::max(), agg::sum()}) {
    PaGivenConfig cfg;
    cfg.mode = mode;
    cfg.delay_range = mode == PaMode::Randomized ? 8 : 0;
    cfg.seed = seed;
    const auto res =
        pa_given(pipe.eng, p, pipe.div, pipe.sc, pipe.t, agg, values, cfg);
    const auto ref = reference_pa(p, agg, values);
    ASSERT_TRUE(res.all_covered());
    for (int i = 0; i < p.num_parts; ++i)
      EXPECT_EQ(res.part_value[i], ref[i]) << "agg=" << agg.name << " part " << i;
    for (int v = 0; v < g.n(); ++v)
      EXPECT_EQ(res.node_value[v], ref[p.part_of[v]])
          << "agg=" << agg.name << " node " << v;
  }
}

TEST(PaGiven, GridRowsDeterministic) {
  expect_pa_correct(graph::gen::grid(6, 20), graph::grid_row_partition(6, 20),
                    PaMode::Deterministic, /*with_shortcut=*/true, 101);
}

TEST(PaGiven, GridRowsRandomized) {
  expect_pa_correct(graph::gen::grid(6, 20), graph::grid_row_partition(6, 20),
                    PaMode::Randomized, /*with_shortcut=*/true, 102);
}

TEST(PaGiven, GridRowsNoShortcutStillCorrect) {
  expect_pa_correct(graph::gen::grid(6, 20), graph::grid_row_partition(6, 20),
                    PaMode::Deterministic, /*with_shortcut=*/false, 103);
}

TEST(PaGiven, ApexGridFigure2a) {
  expect_pa_correct(graph::gen::apex_grid(8, 12),
                    graph::apex_grid_row_partition(8, 12),
                    PaMode::Deterministic, /*with_shortcut=*/true, 104);
}

TEST(PaGiven, RandomGraphRandomParts) {
  Rng rng(7);
  for (int trial = 0; trial < 4; ++trial) {
    Graph g = graph::gen::random_connected(150, 400, rng);
    Partition p = graph::random_bfs_partition(g, 9, rng);
    expect_pa_correct(g, p, PaMode::Deterministic, true, 200 + trial);
    expect_pa_correct(g, p, PaMode::Randomized, true, 300 + trial);
  }
}

TEST(PaGiven, SingletonPartition) {
  Graph g = graph::gen::cycle(30);
  expect_pa_correct(g, graph::singleton_partition(g), PaMode::Deterministic,
                    false, 105);
}

TEST(PaGiven, WholeGraphOnePart) {
  Rng rng(8);
  Graph g = graph::gen::random_connected(120, 260, rng);
  expect_pa_correct(g, graph::whole_partition(g), PaMode::Deterministic, true,
                    106);
  expect_pa_correct(g, graph::whole_partition(g), PaMode::Randomized, true,
                    107);
}

TEST(PaGiven, PathLongParts) {
  // Halves of a long path: part diameter far above graph "D"-scale; exercises
  // multi-sub-part spreading through cross edges.
  Graph g = graph::gen::path(200);
  std::vector<int> labels(200);
  for (int v = 0; v < 200; ++v) labels[v] = v < 100 ? 0 : 1;
  expect_pa_correct(g, Partition::from_labels(labels), PaMode::Deterministic,
                    true, 108);
}

TEST(PaGiven, MessageComplexityLinearInEdgesWithoutShortcut) {
  Rng rng(9);
  Graph g = graph::gen::random_connected(400, 1200, rng);
  Partition p = graph::random_bfs_partition(g, 20, rng);
  p.elect_min_id_leaders();
  const int diameter = graph::diameter_estimate(g);
  Pipeline pipe(g, p, diameter, rng, false);
  std::vector<std::uint64_t> values(g.n(), 1);
  const auto snap = pipe.eng.snap();
  const auto res = pa_given(pipe.eng, p, pipe.div, pipe.sc, pipe.t, agg::sum(),
                            values, {});
  ASSERT_TRUE(res.all_covered());
  const auto stats = pipe.eng.since(snap);
  // Announce (2m) + tokens (<= 2m + 2n) + acks (<= n + ...) + gather/scatter
  // (wave-tree edges twice). A slack factor of 8 over arcs is conservative.
  EXPECT_LE(stats.messages, 8u * static_cast<std::uint64_t>(g.num_arcs()));
}

TEST(PaGiven, TrivialShortcutGivesOneBlockToBigParts) {
  Graph g = graph::gen::grid(5, 30);
  Partition p = graph::grid_row_partition(5, 30);
  p.elect_min_id_leaders();
  Rng rng(10);
  const int diameter = graph::diameter_exact(g);  // 33
  Pipeline pipe(g, p, diameter, rng, true);
  // Rows have 30 < 33 nodes: nobody exceeds the threshold; use a lower one.
  auto sc = shortcut::trivial_whole_tree_shortcut(g, pipe.t, p, 10);
  EXPECT_EQ(shortcut::block_parameter(g, pipe.t, p, sc), 1);
  EXPECT_EQ(shortcut::congestion(sc), 5);

  std::vector<std::uint64_t> values(g.n(), 1);
  const auto res =
      pa_given(pipe.eng, p, pipe.div, sc, pipe.t, agg::sum(), values, {});
  ASSERT_TRUE(res.all_covered());
  for (int i = 0; i < p.num_parts; ++i) {
    EXPECT_EQ(res.part_value[i], 30u);
    EXPECT_LE(res.blocks_touched[i], 1u);
  }
}

TEST(PaGiven, VerifyAcceptsGoodShortcut) {
  Graph g = graph::gen::grid(5, 30);
  Partition p = graph::grid_row_partition(5, 30);
  p.elect_min_id_leaders();
  Rng rng(11);
  Pipeline pipe(g, p, 33, rng, false);
  auto sc = shortcut::trivial_whole_tree_shortcut(g, pipe.t, p, 10);
  const auto vr =
      verify_block_parameter(pipe.eng, p, pipe.div, sc, pipe.t, 1, {});
  for (int i = 0; i < p.num_parts; ++i) {
    EXPECT_TRUE(vr.part_good[i]) << i;
    EXPECT_LE(vr.blocks_counted[i], 1u);
  }
}

TEST(PaGiven, VerifyRejectsWhenBlockBudgetTooSmall) {
  // Hand-build a shortcut with >= 2 blocks for part 0 on a path: claim two
  // disjoint tree-edge segments.
  Graph g = graph::gen::path(12);
  Partition p = graph::whole_partition(g);
  p.elect_min_id_leaders();
  Rng rng(12);
  sim::Engine eng(g);
  auto t = tree::build_bfs_tree(eng, 0);
  auto div = shortcut::build_subpart_division_random(eng, p, 3, rng);
  auto sc = shortcut::Shortcut::empty(g.n());
  sc.parts_on[2] = {0};
  sc.parts_on[3] = {0};
  sc.parts_on[7] = {0};  // separated from the first segment: second block
  shortcut::annotate_block_roots(g, t, sc);
  EXPECT_EQ(shortcut::block_parameter(g, t, p, sc), 2);

  const auto vr = verify_block_parameter(eng, p, div, sc, t, 1, {});
  // The wave may touch both blocks; budget 1 must reject if it counted 2.
  if (vr.blocks_counted[0] >= 2) {
    EXPECT_FALSE(vr.part_good[0]);
  }
  const auto vr2 = verify_block_parameter(eng, p, div, sc, t, 2, {});
  EXPECT_TRUE(vr2.part_good[0]);
}

TEST(PaGiven, StatsPhasesAllAccounted) {
  Graph g = graph::gen::grid(6, 10);
  Partition p = graph::grid_row_partition(6, 10);
  p.elect_min_id_leaders();
  Rng rng(13);
  Pipeline pipe(g, p, 14, rng, true);
  std::vector<std::uint64_t> values(g.n(), 2);
  const auto before = pipe.eng.snap();
  const auto res = pa_given(pipe.eng, p, pipe.div, pipe.sc, pipe.t, agg::sum(),
                            values, {});
  const auto total = pipe.eng.since(before);
  EXPECT_EQ(res.total().rounds, total.rounds);
  EXPECT_EQ(res.total().messages, total.messages);
  EXPECT_GT(res.wave_stats.messages, 0u);
  EXPECT_GT(res.gather_stats.messages, 0u);
  EXPECT_GT(res.scatter_stats.messages, 0u);
}

}  // namespace
}  // namespace pw::core
