#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>

#include "src/graph/generators.hpp"
#include "src/graph/partition.hpp"
#include "src/graph/properties.hpp"
#include "src/tree/bfs.hpp"
#include "src/tree/heavypath.hpp"
#include "src/tree/leader.hpp"
#include "src/tree/treeops.hpp"

namespace pw::tree {
namespace {

using graph::Graph;

TEST(Bfs, DepthsMatchCentralizedBfs) {
  Rng rng(17);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = graph::gen::random_connected(120, 300, rng);
    sim::Engine eng(g);
    const auto f = build_bfs_tree(eng, 0);
    validate_forest(g, f);
    const auto ref = graph::bfs_distances(g, 0);
    for (int v = 0; v < g.n(); ++v) EXPECT_EQ(f.depth[v], ref[v]);
  }
}

TEST(Bfs, RoundAndMessageBounds) {
  Graph g = graph::gen::grid(12, 12);
  sim::Engine eng(g);
  const auto f = build_bfs_tree(eng, 0);
  const int ecc = graph::eccentricity(g, 0);
  EXPECT_EQ(f.height(), ecc);
  // O(ecc) rounds, <= 1 explore per arc + 1 child per node.
  EXPECT_LE(eng.rounds(), static_cast<std::uint64_t>(ecc + 3));
  EXPECT_LE(eng.messages(),
            static_cast<std::uint64_t>(g.num_arcs() + g.n()));
}

TEST(Bfs, RestrictedToPartition) {
  // 2x6 grid; restrict BFS to stay within rows.
  Graph g = graph::gen::grid(2, 6);
  const auto part = graph::grid_row_partition(2, 6);
  sim::Engine eng(g);
  const auto f = build_restricted_bfs(
      eng, {0, 6},
      [&](int v, int port) {
        return part.part_of[v] == part.part_of[g.arcs(v)[port].to];
      });
  validate_forest(g, f);
  for (int v = 0; v < g.n(); ++v) {
    EXPECT_GE(f.depth[v], 0);
    if (f.parent[v] >= 0) {
      EXPECT_EQ(part.part_of[v], part.part_of[f.parent[v]]);
    }
  }
}

TEST(Bfs, MaxDepthCutsOff) {
  Graph g = graph::gen::path(10);
  sim::Engine eng(g);
  const auto f = build_restricted_bfs(
      eng, {0}, [](int, int) { return true; }, 3);
  for (int v = 0; v < g.n(); ++v) {
    if (v <= 3)
      EXPECT_EQ(f.depth[v], v);
    else
      EXPECT_EQ(f.depth[v], -1);
  }
}

TEST(Leader, DeterministicPicksMinId) {
  Rng rng(23);
  Graph g = graph::gen::random_connected(80, 200, rng);
  sim::Engine eng(g);
  const auto r = elect_leader_det(eng);
  EXPECT_EQ(r.leader, 0);
  for (int v = 0; v < g.n(); ++v) EXPECT_EQ(r.believed_leader[v], 0);
}

TEST(Leader, RandomizedConvergesAndIsMessageEfficient) {
  Rng rng(29);
  Graph g = graph::gen::grid(15, 15);
  sim::Engine eng(g);
  const auto r = elect_leader_random(eng, rng);
  EXPECT_GE(r.leader, 0);
  // O(m log n) message budget with generous constant.
  const double budget = 4.0 * g.num_arcs() * (std::log2(g.n()) + 1);
  EXPECT_LE(static_cast<double>(eng.messages()), budget);
}

TEST(TreeOps, BroadcastReachesEveryone) {
  Rng rng(31);
  Graph g = graph::gen::random_connected(90, 180, rng);
  sim::Engine eng(g);
  const auto f = build_bfs_tree(eng, 5);
  std::vector<std::uint64_t> payload(g.n(), 0);
  payload[5] = 777;
  const auto got = forest_broadcast(eng, f, payload);
  for (int v = 0; v < g.n(); ++v) EXPECT_EQ(got[v], 777u);
}

TEST(TreeOps, ConvergecastComputesSubtreeAggregates) {
  Graph g = graph::gen::balanced_tree(15, 2);
  sim::Engine eng(g);
  const auto f = build_bfs_tree(eng, 0);
  std::vector<std::uint64_t> values(g.n());
  for (int v = 0; v < g.n(); ++v) values[v] = v;
  const auto sums = forest_convergecast(eng, f, agg::sum(), values);
  EXPECT_EQ(sums[0], static_cast<std::uint64_t>(15 * 14 / 2));
  // A leaf's subtree aggregate is its own value.
  EXPECT_EQ(sums[14], 14u);

  const auto mins = forest_convergecast(eng, f, agg::min(), values);
  EXPECT_EQ(mins[0], 0u);
  EXPECT_EQ(mins[1], 1u);  // subtree of node 1 holds {1,3,4,7,...}
}

TEST(TreeOps, MultiRootForestAggregatesPerTree) {
  // Two disjoint row-trees in a 2x5 grid.
  Graph g = graph::gen::grid(2, 5);
  const auto part = graph::grid_row_partition(2, 5);
  sim::Engine eng(g);
  const auto f = build_restricted_bfs(
      eng, {0, 5},
      [&](int v, int port) {
        return part.part_of[v] == part.part_of[g.arcs(v)[port].to];
      });
  const auto sizes = subtree_sizes(eng, f);
  EXPECT_EQ(sizes[0], 5u);
  EXPECT_EQ(sizes[5], 5u);

  std::vector<std::uint64_t> payload(g.n(), 0);
  payload[0] = 11;
  payload[5] = 22;
  const auto got = forest_broadcast(eng, f, payload);
  for (int v = 0; v < 5; ++v) EXPECT_EQ(got[v], 11u);
  for (int v = 5; v < 10; ++v) EXPECT_EQ(got[v], 22u);
}

TEST(TreeOps, MessageCountOnePerTreeEdgePerWave) {
  Graph g = graph::gen::path(50);
  sim::Engine eng(g);
  const auto f = build_bfs_tree(eng, 0);
  const auto before = eng.snap();
  std::vector<std::uint64_t> payload(g.n(), 1);
  forest_broadcast(eng, f, payload);
  EXPECT_EQ(eng.since(before).messages, 49u);
  const auto before2 = eng.snap();
  subtree_sizes(eng, f);
  EXPECT_EQ(eng.since(before2).messages, 49u);
}

TEST(HeavyPath, PathGraphDecomposesPerDefinition) {
  // Definition 6.5 is strict ("more than half"), so the deepest leaf — whose
  // subtree is exactly half of its parent's — hangs off by a light edge:
  // a 20-node path splits into a 19-node heavy path plus that leaf.
  Graph g = graph::gen::path(20);
  sim::Engine eng(g);
  const auto f = build_bfs_tree(eng, 0);
  const auto hp = heavy_path_decompose(eng, f);
  ASSERT_EQ(hp.paths.size(), 2u);
  const auto& long_path = hp.paths[hp.path_of[0]];
  EXPECT_EQ(static_cast<int>(long_path.size()), 19);
  // Source is the deepest node on the path, head is the root.
  EXPECT_EQ(long_path.front(), 18);
  EXPECT_EQ(long_path.back(), 0);
  EXPECT_EQ(hp.max_level, 1);
}

TEST(HeavyPath, StarIsOneHeavyPathPlusSingletons) {
  Graph g = graph::gen::star(10);
  sim::Engine eng(g);
  const auto f = build_bfs_tree(eng, 0);
  const auto hp = heavy_path_decompose(eng, f);
  // No leaf holds more than half of the hub's 10-node subtree, so the hub
  // has no heavy child: every node is a singleton path.
  EXPECT_EQ(hp.paths.size(), 10u);
  EXPECT_EQ(hp.max_level, 1);
}

TEST(HeavyPath, DefinitionHolds) {
  Rng rng(37);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = graph::gen::random_tree(100, rng);
    sim::Engine eng(g);
    const auto f = build_bfs_tree(eng, 0);
    const auto hp = heavy_path_decompose(eng, f);
    sim::Engine eng2(g);
    const auto size = subtree_sizes(eng2, f);
    for (int v = 0; v < g.n(); ++v) {
      if (hp.heavy_child_port[v] >= 0) {
        const int c = g.arcs(v)[hp.heavy_child_port[v]].to;
        EXPECT_GT(2 * size[c], size[v]);  // Definition 6.5
      } else {
        for (int cp : f.children_ports[v]) {
          const int c = g.arcs(v)[cp].to;
          EXPECT_LE(2 * size[c], size[v]);
        }
      }
    }
    // Root-to-leaf path property: <= log2(n) light edges.
    for (int v = 0; v < g.n(); ++v) {
      int crossings = 0;
      int cur = v;
      while (f.parent[cur] >= 0) {
        if (hp.head[cur] == cur) ++crossings;  // leaving a path upward
        cur = f.parent[cur];
      }
      EXPECT_LE(crossings, static_cast<int>(std::log2(g.n())) + 1);
    }
  }
}

TEST(HeavyPath, PathsPartitionNodes) {
  Rng rng(41);
  Graph g = graph::gen::random_tree(200, rng);
  sim::Engine eng(g);
  const auto f = build_bfs_tree(eng, 0);
  const auto hp = heavy_path_decompose(eng, f);
  std::vector<int> seen(g.n(), 0);
  for (const auto& path : hp.paths) {
    for (std::size_t i = 0; i < path.size(); ++i) {
      ++seen[path[i]];
      EXPECT_EQ(hp.pos_in_path[path[i]], static_cast<int>(i));
      // Consecutive path nodes are parent/child with the deeper node first.
      if (i + 1 < path.size()) {
        EXPECT_EQ(f.parent[path[i]], path[i + 1]);
      }
    }
  }
  for (int v = 0; v < g.n(); ++v) EXPECT_EQ(seen[v], 1) << v;
}

TEST(HeavyPath, LevelsRespectLightEdges) {
  Rng rng(43);
  Graph g = graph::gen::random_tree(150, rng);
  sim::Engine eng(g);
  const auto f = build_bfs_tree(eng, 0);
  const auto hp = heavy_path_decompose(eng, f);
  for (std::size_t p = 0; p < hp.paths.size(); ++p) {
    const int head = hp.paths[p].back();
    if (f.parent[head] < 0) continue;
    const int above = hp.path_of[f.parent[head]];
    EXPECT_GT(hp.level_of_path[above], hp.level_of_path[p]);
  }
}

}  // namespace
}  // namespace pw::tree
