// Edge cases and robustness: degenerate graphs, extreme partitions, and
// seed sweeps through the full pipeline.
#include <gtest/gtest.h>

#include "src/apps/mst.hpp"
#include "src/core/noleader.hpp"
#include "src/core/solver.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/properties.hpp"
#include "src/tree/bfs.hpp"
#include "src/tree/leader.hpp"

namespace pw {
namespace {

using graph::Graph;
using graph::Partition;

TEST(EdgeCases, SingleNodeGraph) {
  Graph g = Graph::from_edges(1, {});
  sim::Engine eng(g);
  const auto r = tree::elect_leader_det(eng);
  EXPECT_EQ(r.leader, 0);
  const auto t = tree::build_bfs_tree(eng, 0);
  EXPECT_EQ(t.height(), 0);

  Partition p = graph::whole_partition(g);
  p.elect_min_id_leaders();
  core::PaSolver solver(eng, {});
  solver.set_partition(p);
  const auto res = solver.aggregate(agg::sum(), {42});
  EXPECT_EQ(res.part_value[0], 42u);
  EXPECT_EQ(res.node_value[0], 42u);
}

TEST(EdgeCases, TwoNodeGraph) {
  Graph g = Graph::from_edges(2, {{0, 1, 5}});
  for (auto mode : {core::PaMode::Randomized, core::PaMode::Deterministic}) {
    sim::Engine eng(g);
    core::PaSolverConfig cfg;
    cfg.mode = mode;
    core::PaSolver solver(eng, cfg);
    Partition p = graph::singleton_partition(g);
    solver.set_partition(p);
    const auto res = solver.aggregate(agg::max(), {3, 9});
    EXPECT_EQ(res.part_value[p.part_of[0]], 3u);
    EXPECT_EQ(res.part_value[p.part_of[1]], 9u);
  }
}

TEST(EdgeCases, TwoNodeMst) {
  Graph g = Graph::from_edges(2, {{0, 1, 7}});
  sim::Engine eng(g);
  const auto res = apps::boruvka_mst(eng, {});
  EXPECT_EQ(res.total_weight, 7);
  EXPECT_TRUE(res.in_mst[0]);
}

TEST(EdgeCases, StarGraphFullPipeline) {
  Graph g = graph::gen::star(40);
  Rng rng(1);
  Partition p = graph::random_bfs_partition(g, 4, rng);
  p.elect_min_id_leaders();
  sim::Engine eng(g);
  core::PaSolver solver(eng, {});
  solver.set_partition(p);
  std::vector<std::uint64_t> values(g.n(), 1);
  const auto res = solver.aggregate(agg::sum(), values);
  std::uint64_t total = 0;
  for (auto x : res.part_value) total += x;
  EXPECT_EQ(total, 40u);
}

TEST(EdgeCases, CompleteGraphDiameterOne) {
  Graph g = graph::gen::complete(30);
  Rng rng(2);
  Partition p = graph::random_bfs_partition(g, 6, rng);
  p.elect_min_id_leaders();
  for (auto mode : {core::PaMode::Randomized, core::PaMode::Deterministic}) {
    sim::Engine eng(g);
    core::PaSolverConfig cfg;
    cfg.mode = mode;
    core::PaSolver solver(eng, cfg);
    solver.set_partition(p);
    std::vector<std::uint64_t> values(g.n());
    for (int v = 0; v < g.n(); ++v) values[v] = v;
    const auto res = solver.aggregate(agg::min(), values);
    for (int v = 0; v < g.n(); ++v)
      EXPECT_EQ(res.node_value[v],
                static_cast<std::uint64_t>(p.leader[p.part_of[v]]));
  }
}

TEST(EdgeCases, PartitionIntoTwoHalvesOfClique) {
  Graph g = graph::gen::complete(20);
  std::vector<int> labels(20);
  for (int v = 0; v < 20; ++v) labels[v] = v < 10 ? 0 : 1;
  Partition p = Partition::from_labels(labels);
  p.elect_min_id_leaders();
  sim::Engine eng(g);
  core::PaSolver solver(eng, {});
  solver.set_partition(p);
  std::vector<std::uint64_t> ones(20, 1);
  const auto res = solver.aggregate(agg::sum(), ones);
  EXPECT_EQ(res.part_value[0], 10u);
  EXPECT_EQ(res.part_value[1], 10u);
}

TEST(EdgeCases, MaxValuesSurviveAggregation) {
  // Values at the top of the 64-bit range must flow through untouched
  // (min/max/or are lossless; O(log n)-bit model packs 64-bit words).
  Graph g = graph::gen::path(16);
  Partition p = graph::whole_partition(g);
  p.elect_min_id_leaders();
  sim::Engine eng(g);
  core::PaSolver solver(eng, {});
  solver.set_partition(p);
  std::vector<std::uint64_t> values(16, agg::kU64Max - 3);
  values[7] = agg::kU64Max - 9;
  const auto mn = solver.aggregate(agg::min(), values);
  EXPECT_EQ(mn.part_value[0], agg::kU64Max - 9);
  const auto mx = solver.aggregate(agg::max(), values);
  EXPECT_EQ(mx.part_value[0], agg::kU64Max - 3);
}

TEST(EdgeCases, RepeatedSetPartitionOnSameSolver) {
  Rng rng(3);
  Graph g = graph::gen::random_connected(80, 200, rng);
  sim::Engine eng(g);
  core::PaSolver solver(eng, {});
  std::vector<std::uint64_t> ones(g.n(), 1);
  for (int k : {2, 5, 11, 3}) {
    Partition p = graph::random_bfs_partition(g, k, rng);
    p.elect_min_id_leaders();
    solver.set_partition(p);
    const auto res = solver.aggregate(agg::sum(), ones);
    std::uint64_t total = 0;
    for (auto x : res.part_value) total += x;
    EXPECT_EQ(total, static_cast<std::uint64_t>(g.n()));
  }
}

class SeedSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SeedSweep, RandomizedPipelineCorrectAcrossSeeds) {
  Rng instance_rng(777);
  Graph g = graph::gen::random_connected(130, 340, instance_rng);
  Partition p = graph::random_bfs_partition(g, 9, instance_rng);
  p.elect_min_id_leaders();

  sim::Engine eng(g);
  core::PaSolverConfig cfg;
  cfg.seed = GetParam();
  core::PaSolver solver(eng, cfg);
  solver.set_partition(p);
  std::vector<std::uint64_t> values(g.n());
  for (int v = 0; v < g.n(); ++v) values[v] = (v * 2654435761u) % 100000;
  const auto res = solver.aggregate(agg::min(), values);
  std::vector<std::uint64_t> ref(p.num_parts, agg::kU64Max);
  for (int v = 0; v < g.n(); ++v)
    ref[p.part_of[v]] = std::min(ref[p.part_of[v]], values[v]);
  for (int i = 0; i < p.num_parts; ++i) ASSERT_EQ(res.part_value[i], ref[i]);
}

INSTANTIATE_TEST_SUITE_P(TenSeeds, SeedSweep,
                         ::testing::Values(1, 2, 3, 5, 8, 13, 21, 34, 55, 89));

TEST(EdgeCases, NoLeaderOnTwoNodes) {
  Graph g = Graph::from_edges(2, {{0, 1, 1}});
  Partition p = graph::whole_partition(g);
  p.leader.clear();
  sim::Engine eng(g);
  const auto res = core::pa_noleader(eng, p, agg::sum(), {5, 6}, {});
  EXPECT_EQ(res.part_value[0], 11u);
}

TEST(EdgeCases, LeaderElectionOnCompleteGraphIsFast) {
  Graph g = graph::gen::complete(50);
  sim::Engine eng(g);
  const auto r = tree::elect_leader_det(eng);
  EXPECT_EQ(r.leader, 0);
  EXPECT_LE(eng.rounds(), 4u);  // D=1: two rounds of flooding suffice
}

}  // namespace
}  // namespace pw
