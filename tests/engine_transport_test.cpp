// The §10 transport layer: in-place wire format, SPSC ring protocol, and the
// shared-memory ring backend's bit-identical delivery guarantee.
//
// The transport swap is the largest observable-behavior risk in the engine:
// every cross-shard message is staged directly into a ring's frame region,
// published by a release bump, and read in place by the merge — no copy on
// either side of the link. These tests pin (a) the in-place stage → publish
// → drain round trip and the one-frame-per-round ring protocol in isolation,
// (b) full delivery traces bit-identical between InProcTransport and
// ShmRingTransport across {2,4} threads × all four close modes — for both
// the manual end_round() loop (the barriered publish_all path) and run()'s
// pipelined closes (the publish-at-seal path), (c) the single-shard
// degeneration to kInProc, (d) the watchdog's per-ring liveness lines when a
// shm-backed close wedges, and (e) the multi-process runner: forked shard
// workers over the same rings produce traces matching a sequential engine,
// and a killed worker is named — with its stalled rings — by the parent's
// watchdog report.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <string>
#include <vector>

#include "src/graph/generators.hpp"
#include "src/sim/engine.hpp"
#include "src/sim/transport.hpp"
#include "src/util/rng.hpp"

#if defined(__unix__) || defined(__APPLE__)
#include <sys/wait.h>
#include <unistd.h>
#define PW_HAVE_POPEN 1
#endif

namespace pw::sim {
namespace {

using graph::Graph;
using pw::Rng;

// --- wire format ------------------------------------------------------------

// The frame regions must tile the ring slice exactly as documented:
// [RingHdr | Incoming inc[cap] | int to[cap]], header on its own cache line,
// id run immediately after the payload run. A layout drift here is a silent
// cross-process protocol break, so it is pinned as a test, not just a
// comment.
TEST(WireFormat, FrameRegionsFollowTheDocumentedLayout) {
  constexpr int kCap = 8;
  alignas(64) unsigned char mem[SpscRing::bytes(kCap)] = {};
  SpscRing ring(mem, kCap, /*create=*/true);
  EXPECT_EQ(reinterpret_cast<unsigned char*>(ring.inc()),
            mem + sizeof(RingHdr));
  EXPECT_EQ(reinterpret_cast<unsigned char*>(ring.to()),
            mem + sizeof(RingHdr) + kCap * sizeof(Incoming));
  // The region byte count covers both runs (plus the header) and is padded
  // to a cache line so adjacent rings in a segment never share one.
  EXPECT_GE(SpscRing::bytes(kCap),
            sizeof(RingHdr) + kCap * (sizeof(Incoming) + sizeof(int)));
  EXPECT_EQ(SpscRing::bytes(kCap) % 64, 0u);
}

// --- ring protocol ----------------------------------------------------------

TEST(SpscRing, PublishDrainCycleAdvancesFrameCounters) {
  constexpr int kCap = 8;
  std::vector<unsigned char> mem(SpscRing::bytes(kCap) + 64);
  void* base = mem.data() + (64 - reinterpret_cast<std::uintptr_t>(mem.data()) % 64) % 64;
  SpscRing ring(base, kCap, /*create=*/true);
  ASSERT_TRUE(ring.attached());
  EXPECT_EQ(ring.capacity(), kCap);
  EXPECT_FALSE(ring.frame_ready());

  // Three full stage/publish/drain rounds, one with an empty frame: records
  // are staged IN PLACE through the frame-region pointers, the counters
  // advance one frame per round, and the payload is read back from the very
  // bytes the producer wrote (zero-copy §10 path).
  for (std::uint64_t round = 0; round < 3; ++round) {
    const int count = round == 1 ? 0 : 5;
    for (int i = 0; i < count; ++i) {
      ring.to()[i] = 100 + i;
      ring.inc()[i] =
          Incoming{i, i * 2, Msg{7, static_cast<std::uint64_t>(i) + round, 0, 0}};
    }
    ring.publish(count);
    EXPECT_EQ(ring.pub_seq(), round + 1);
    ASSERT_TRUE(ring.frame_ready());
    ASSERT_EQ(ring.frame_count(), count);
    for (int i = 0; i < count; ++i) {
      EXPECT_EQ(ring.to()[i], 100 + i);
      EXPECT_EQ(ring.inc()[i].from, i);
      EXPECT_EQ(ring.inc()[i].port, i * 2);
      EXPECT_EQ(ring.inc()[i].msg.tag, 7);
      EXPECT_EQ(ring.inc()[i].msg.a, static_cast<std::uint64_t>(i) + round);
    }
    ring.consume();
    EXPECT_EQ(ring.cons_seq(), round + 1);
    EXPECT_FALSE(ring.frame_ready());
  }
}

// --- in-engine trace equality ----------------------------------------------

// {2,4} threads × {barriered, shard-sealed pipelined, eager-sealed,
// incremental}; the transport field is set per test.
constexpr ExecutionPolicy kParallelPolicies[] = {
    {2, false, false, false},  //
    {2, true, false, false},   //
    {2, true, true, false},    //
    {2, true, true, true},     //
    {4, false, false, false},  //
    {4, true, false, false},   //
    {4, true, true, false},    //
    {4, true, true, true}};

std::string label(const ExecutionPolicy& p) {
  std::string out = p.num_threads == 1 ? "sequential"
                    : !p.pipeline      ? "barriered"
                    : !p.eager_seal    ? "pipelined"
                    : p.incremental    ? "pipelined+eager+inc"
                                       : "pipelined+eager";
  out += p.transport == TransportKind::kShmRing ? "/shm" : "/inproc";
  out += "@" + std::to_string(p.num_threads);
  return out;
}

// Full delivery trace of a BFS flood via the MANUAL round loop — this is the
// path where shm publishes happen in end_round()'s barriered publish_all(),
// with no seal schedule in play.
std::vector<std::uint64_t> manual_loop_trace(const Graph& g,
                                             ExecutionPolicy policy) {
  Engine eng(g, policy);
  std::vector<std::uint64_t> trace;
  std::vector<char> seen(static_cast<std::size_t>(g.n()), 0);
  seen[0] = 1;
  eng.wake(0);
  while (!eng.idle()) {
    eng.begin_round();
    for (const int v : eng.active_nodes()) {
      trace.push_back(static_cast<std::uint64_t>(v) << 32 | 0xa0a0a0a0u);
      for (const auto& in : eng.inbox(v)) {
        trace.push_back(static_cast<std::uint64_t>(in.from) << 32 |
                        static_cast<std::uint32_t>(in.port));
        trace.push_back(in.msg.tag);
        trace.push_back(in.msg.a);
      }
      bool fresh = v == 0 && eng.inbox(v).empty();
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        fresh = true;
      }
      if (!fresh) continue;
      for (int p = 0; p < g.degree(v); ++p)
        eng.send(v, p, Msg{7, static_cast<std::uint64_t>(v), 0, 0});
    }
    eng.end_round();
    trace.push_back(~0ULL);  // round separator
  }
  trace.push_back(eng.rounds());
  trace.push_back(eng.messages());
  return trace;
}

// Full per-node observation trace of a chatter run through run() — the path
// where shm publishes ride the §8 seal points (or whole-shard seals under
// the non-eager pipelined close).
std::vector<std::vector<std::uint64_t>> run_trace(const Graph& g,
                                                  ExecutionPolicy policy) {
  Engine eng(g, policy);
  std::vector<std::vector<std::uint64_t>> trace(
      static_cast<std::size_t>(g.n()));
  std::vector<int> left(static_cast<std::size_t>(g.n()), 5);
  for (int v = 0; v < g.n(); ++v) eng.wake(v);
  eng.run([&](int v) {
    auto& t = trace[static_cast<std::size_t>(v)];
    t.push_back(0xc0c0c0c0ULL);
    for (const auto& in : eng.inbox(v)) {
      t.push_back(static_cast<std::uint64_t>(in.from) << 32 |
                  static_cast<std::uint32_t>(in.port));
      t.push_back(in.msg.a);
    }
    int& r = left[static_cast<std::size_t>(v)];
    if (r <= 0) return;
    --r;
    const auto payload =
        static_cast<std::uint64_t>(v) << 8 | static_cast<std::uint64_t>(r);
    for (int p = 0; p < g.degree(v); ++p) eng.send(v, p, Msg{1, payload, 0, 0});
    if (r > 0) eng.wake(v);
  });
  trace.push_back({eng.rounds(), eng.messages()});
  return trace;
}

TEST(ShmTransport, ManualLoopTraceIdenticalToInProc) {
  Rng rng(17);
  const Graph g = graph::gen::random_connected(300, 900, rng);
  const auto reference = manual_loop_trace(g, ExecutionPolicy{1});
  ASSERT_GT(reference.size(), 4u);
  for (ExecutionPolicy policy : kParallelPolicies) {
    policy.transport = TransportKind::kShmRing;
    EXPECT_EQ(reference, manual_loop_trace(g, policy)) << label(policy);
  }
}

TEST(ShmTransport, RunTraceIdenticalToInProcAcrossCloseModes) {
  const Graph g = graph::gen::torus(8, 8);
  const auto reference = run_trace(g, ExecutionPolicy{1});
  for (ExecutionPolicy policy : kParallelPolicies) {
    const auto inproc = run_trace(g, policy);
    EXPECT_EQ(reference, inproc) << label(policy);
    policy.transport = TransportKind::kShmRing;
    EXPECT_EQ(reference, run_trace(g, policy)) << label(policy);
  }
}

TEST(ShmTransport, ReportsArmedKindAndSingleShardDegenerates) {
  const Graph g = graph::gen::grid(6, 6);
  ExecutionPolicy shm{4, true, true, false};
  shm.transport = TransportKind::kShmRing;
  Engine multi(g, shm);
  EXPECT_EQ(multi.transport_kind(), TransportKind::kShmRing);

  // A single shard has no cross-shard links to carry: the request degrades
  // to the identity transport, visibly.
  shm.num_threads = 1;
  Engine single(g, shm);
  EXPECT_EQ(single.transport_kind(), TransportKind::kInProc);

  Engine def(g, ExecutionPolicy{4, true, true, false});
  EXPECT_EQ(def.transport_kind(), TransportKind::kInProc);
}

// Star from the hub: every round's cross-shard traffic is maximally skewed
// (shard 0 feeds everyone); a good stress of empty vs full frames since the
// leaf shards publish empty buckets every round.
TEST(ShmTransport, SkewedTrafficIdenticalToInProc) {
  const Graph g = graph::gen::star(257);
  const auto reference = manual_loop_trace(g, ExecutionPolicy{1});
  for (ExecutionPolicy policy : kParallelPolicies) {
    policy.transport = TransportKind::kShmRing;
    EXPECT_EQ(reference, manual_loop_trace(g, policy)) << label(policy);
  }
}

// --- watchdog ring liveness --------------------------------------------------

#if defined(__SANITIZE_THREAD__)  // GCC
#define PW_UNDER_TSAN 1
#elif defined(__has_feature)  // Clang
#if __has_feature(thread_sanitizer)
#define PW_UNDER_TSAN 1
#endif
#endif

// Withhold one bucket seal under the shm transport: the seal never fires, so
// its ring's frame is never published, the close wedges, and the §9 watchdog
// dump must now include the transport's per-ring liveness lines — the
// starved link shows "awaiting publish".
[[maybe_unused]] void run_shm_with_withheld_seal(const Graph& g) {
  ExecutionPolicy policy{4, true, true};
  policy.watchdog_ms = 1000;
  policy.transport = TransportKind::kShmRing;
  Engine eng(g, policy);
  eng.debug_withhold_seal(1, 0);
  std::vector<int> left(static_cast<std::size_t>(g.n()), 3);
  for (int v = 0; v < g.n(); ++v) eng.wake(v);
  eng.run([&](int v) {
    int& r = left[static_cast<std::size_t>(v)];
    if (r <= 0) return;
    --r;
    for (int p = 0; p < g.degree(v); ++p) eng.send(v, p, Msg{1, 1, 0, 0});
    if (r > 0) eng.wake(v);
  });
}

TEST(ShmTransportWatchdog, WithheldSealDumpNamesStalledRing) {
#ifdef PW_UNDER_TSAN
  GTEST_SKIP() << "death test forks after threads exist; the watchdog dump "
                  "intentionally reads racing counters TSan would flag";
#else
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  const Graph g = graph::gen::grid(8, 8);
  EXPECT_DEATH(run_shm_with_withheld_seal(g),
               "ring \\(1 -> 0\\).*stalled: awaiting publish");
#endif
}

// --- the multi-process runner ------------------------------------------------

#ifdef PW_HAVE_POPEN

struct CmdResult {
  std::string out;
  int exit_code = -1;  // -1: did not exit normally
};

CmdResult run_cmd(const std::string& cmd) {
  CmdResult r;
  FILE* p = popen((cmd + " 2>&1").c_str(), "r");
  if (p == nullptr) return r;
  char buf[4096];
  std::size_t got = 0;
  while ((got = fread(buf, 1, sizeof buf, p)) > 0) r.out.append(buf, got);
  const int status = pclose(p);
  if (WIFEXITED(status)) r.exit_code = WEXITSTATUS(status);
  return r;
}

// ctest runs tests from the build directory, where the runner binary lands.
bool runner_available() { return access("./partwise_shard", X_OK) == 0; }

TEST(ShardRunner, ForkedWorkersMatchSequentialReferenceTwoShards) {
  if (!runner_available())
    GTEST_SKIP() << "partwise_shard not in CWD (run via ctest)";
  const auto r = run_cmd(
      "./partwise_shard --family grid --n 64 --shards 2 --verify");
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("PW_SHARD_TRACES_MATCH"), std::string::npos) << r.out;
}

TEST(ShardRunner, ForkedWorkersMatchSequentialReferenceFourShards) {
  if (!runner_available())
    GTEST_SKIP() << "partwise_shard not in CWD (run via ctest)";
  for (const char* extra :
       {"--family random --n 128 --seed 9", "--family star --n 101"}) {
    const auto r = run_cmd(std::string("./partwise_shard --shards 4 --verify ") +
                           extra);
    EXPECT_EQ(r.exit_code, 0) << extra << "\n" << r.out;
    EXPECT_NE(r.out.find("PW_SHARD_TRACES_MATCH"), std::string::npos)
        << extra << "\n" << r.out;
  }
}

// Kill shard 1 at round 2: the parent's watchdog report must name the dead
// peer and list its stalled rings, and the run must fail.
TEST(ShardRunner, PeerCrashNamesDeadPeerAndStalledRings) {
  if (!runner_available())
    GTEST_SKIP() << "partwise_shard not in CWD (run via ctest)";
  const auto r = run_cmd(
      "./partwise_shard --family grid --n 64 --shards 4 "
      "--kill-shard 1 --kill-round 2 --watchdog-ms 1500");
  EXPECT_NE(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("PW_SHARD_WATCHDOG: dead peer shard 1"),
            std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("stalled ring"), std::string::npos) << r.out;
}

#endif  // PW_HAVE_POPEN

}  // namespace
}  // namespace pw::sim
