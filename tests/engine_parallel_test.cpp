// Shard-parallel engine semantics (DESIGN.md §7): everything the sequential
// engine guarantees must hold verbatim under ExecutionPolicy{k > 1} — the
// same drain hygiene, fan-in delivery, self-rewake scheduling, and phase
// reuse, with shard boundaries crossing right through the traffic patterns.
// Cross-thread-count count/trace equality is pinned by
// engine_determinism_test; this file covers the stateful corners.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <set>

#include "src/graph/generators.hpp"
#include "src/sim/engine.hpp"

namespace pw::sim {
namespace {

using graph::Graph;

// Manual-round-loop tests close rounds through the barriered merge whatever
// the flag says; run()-based tests below sweep both close modes explicitly
// (the pipelined close has its own suite, engine_pipeline_test.cpp).
constexpr ExecutionPolicy kSharded{4, false};
constexpr ExecutionPolicy kClosePolicies[] = {{4, false}, {4, true}};

// Mirror of EngineStress.DrainDiscardsInFlightTrafficWithoutCorruptingLaterRounds
// with the data plane split into 4 shards: drain() must discard delivered-but-
// unread runs and wakeups in EVERY shard, and no stale run, offset, or count
// may leak into a later round's inboxes through the per-shard merge.
TEST(EngineParallel, DrainDiscardsUnderShards) {
  Rng rng(9);
  Graph g = graph::gen::random_connected(50, 150, rng);
  Engine eng(g, kSharded);

  // Phase 1: everybody sends a poison message on every port, then the phase
  // is aborted mid-flight.
  for (int v = 0; v < g.n(); ++v) eng.wake(v);
  eng.begin_round();
  for (int v : eng.active_nodes())
    for (int p = 0; p < g.degree(v); ++p)
      eng.send(v, p, Msg{66, 0xdead, 0, 0});
  eng.end_round();
  EXPECT_FALSE(eng.idle());
  eng.drain();
  EXPECT_TRUE(eng.idle());

  // Phase 2: a clean two-hop relay must see exactly its own traffic.
  eng.wake(7);
  eng.begin_round();
  ASSERT_EQ(eng.active_nodes().size(), 1u);
  EXPECT_TRUE(eng.inbox(7).empty());
  for (int p = 0; p < g.degree(7); ++p)
    eng.send(7, p, Msg{1, static_cast<std::uint64_t>(p), 0, 0});
  eng.end_round();

  eng.begin_round();
  int received = 0;
  for (int v : eng.active_nodes()) {
    for (const auto& in : eng.inbox(v)) {
      EXPECT_EQ(in.msg.tag, 1) << "stale message leaked to node " << v;
      EXPECT_EQ(in.from, 7);
      EXPECT_EQ(g.arcs(v)[in.port].to, 7);
      ++received;
    }
  }
  eng.end_round();
  EXPECT_EQ(received, g.degree(7));
  eng.drain();

  // Phase 3: drain() directly after a wake (nothing delivered).
  eng.wake(3);
  eng.drain();
  EXPECT_TRUE(eng.idle());
  eng.wake(3);
  eng.begin_round();
  EXPECT_TRUE(eng.inbox(3).empty());
  eng.end_round();
}

// The hub of a star sits in shard 0 while most senders live in other shards:
// the merge must combine all cross-shard buckets into one intact inbox, in
// ascending sender order.
TEST(EngineParallel, MaxFanInAcrossShards) {
  Graph g = graph::gen::star(64);
  Engine eng(g, kSharded);
  for (int v = 1; v < g.n(); ++v) eng.wake(v);
  eng.begin_round();
  for (int v : eng.active_nodes())
    eng.send(v, 0, Msg{7, static_cast<std::uint64_t>(v), 0, 0});
  eng.end_round();

  eng.begin_round();
  std::set<std::uint64_t> senders;
  int last = -1;
  for (const auto& in : eng.inbox(0)) {
    EXPECT_EQ(in.msg.tag, 7);
    EXPECT_LT(last, in.from) << "delivery order broke ascending sender order";
    last = in.from;
    senders.insert(in.msg.a);
  }
  eng.end_round();
  EXPECT_EQ(senders.size(), 63u);
}

// Self-rewake from inside shard-parallel callbacks (the one wake() the §7
// contract allows there), with the rewaking nodes spread over all shards.
TEST(EngineParallel, SelfRewakeInParallelCallbacks) {
  Graph g = graph::gen::path(64);
  for (const auto policy : kClosePolicies) {
    Engine eng(g, policy);
    const int probes[] = {0, 17, 33, 63};  // one per shard
    std::array<std::atomic<int>, 64> activations{};
    for (int v : probes) eng.wake(v);
    eng.run([&](int v) {
      const int k = activations[static_cast<std::size_t>(v)].fetch_add(1) + 1;
      if (k < 5) eng.wake(v);  // self-rewake
    });
    for (int v : probes)
      EXPECT_EQ(activations[static_cast<std::size_t>(v)].load(), 5) << v;
    EXPECT_EQ(eng.rounds(), 5u);
  }
}

// Repeated flood phases on one sharded engine must behave identically —
// shard wake lists, bucket cursors, and runs all reset cleanly.
TEST(EngineParallel, PhasesReuseCleanlyUnderShards) {
  Rng rng(5);
  Graph g = graph::gen::random_connected(200, 500, rng);
  for (const auto policy : kClosePolicies) {
    Engine eng(g, policy);
    std::uint64_t first_phase_msgs = 0;
    for (int phase = 0; phase < 5; ++phase) {
      const auto snap = eng.snap();
      std::vector<char> seen(static_cast<std::size_t>(g.n()), 0);
      seen[static_cast<std::size_t>(phase)] = 1;
      eng.wake(phase);
      eng.run([&](int v) {
        bool fresh = v == phase && eng.inbox(v).empty();
        if (!seen[static_cast<std::size_t>(v)]) {
          seen[static_cast<std::size_t>(v)] = 1;
          fresh = true;
        }
        if (!fresh) return;
        for (int p = 0; p < g.degree(v); ++p) eng.send(v, p, Msg{});
      });
      for (int v = 0; v < g.n(); ++v)
        EXPECT_TRUE(seen[static_cast<std::size_t>(v)]);
      const auto stats = eng.since(snap);
      if (phase == 0) {
        first_phase_msgs = stats.messages;
      } else {
        EXPECT_EQ(stats.messages, first_phase_msgs) << "phase " << phase;
      }
      EXPECT_TRUE(eng.idle());
    }
  }
}

// idle() must answer identically mid-round at any shard count: the single-
// shard plane wakes receivers at send() time while the sharded one defers to
// the end_round() merge, but staged traffic counts as pending either way.
TEST(EngineParallel, MidRoundIdleMatchesSequential) {
  Graph g = graph::gen::path(64);
  for (const int threads : {1, 4}) {
    Engine eng(g, ExecutionPolicy{threads});
    eng.wake(0);
    EXPECT_FALSE(eng.idle()) << threads;
    eng.begin_round();
    EXPECT_TRUE(eng.idle()) << threads;  // wake consumed, nothing in flight
    eng.send(0, 0, Msg{});
    EXPECT_FALSE(eng.idle()) << threads;  // staged message is in flight
    eng.end_round();
    EXPECT_FALSE(eng.idle()) << threads;
    eng.drain();
    EXPECT_TRUE(eng.idle()) << threads;
  }
}

// A manual loop sending out of ascending sender order on a multi-shard
// engine would receive a different inbox order than the 1-thread engine
// (the merge reconstructs ascending-sender order) — it must abort, not
// silently diverge. The whole engine lives inside EXPECT_DEATH so the
// worker pool spawns in the death-test child, not the forking parent.
TEST(EngineParallelDeath, OutOfOrderManualSendAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Graph g = graph::gen::path(64);
  EXPECT_DEATH(
      {
        Engine eng(g, kSharded);
        eng.wake(1);
        eng.wake(40);
        eng.begin_round();
        eng.send(40, 0, Msg{});
        eng.send(1, 0, Msg{});
      },
      "non-decreasing sender");
}

// wake() is shard-local like send(): a parallel callback may wake same-shard
// siblings (their wake lists merge only after the shard's sweep) but never a
// node of another shard, whose list its owner may be mutating right now
// (§7 contract, checked in DataPlane::wake).
TEST(EngineParallelDeath, CrossShardWakeFromParallelCallbackAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        Graph g = graph::gen::path(64);
        Engine eng(g, kSharded);
        eng.wake(40);  // shard 2; node 1 lives in shard 0
        eng.run([&](int) { eng.wake(1); });
      },
      "outside its shard");
}

// idle() reads every shard's wake list, so calling it from inside a parallel
// callback races with the other shards' sweeps — forbidden like every other
// cross-shard access (§7 contract, checked in DataPlane::pending).
TEST(EngineParallelDeath, IdleFromParallelCallbackAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        Graph g = graph::gen::path(64);
        Engine eng(g, kSharded);
        eng.wake(40);
        eng.run([&](int) { (void)eng.idle(); });
      },
      "shard-parallel callback");
}

// A policy requesting more threads than the graph has nodes must degrade to
// one shard per node at most (and still work).
TEST(EngineParallel, MoreThreadsThanNodes) {
  Graph g = graph::gen::path(3);
  Engine eng(g, ExecutionPolicy{16});
  eng.wake(0);
  int deliveries = 0;
  eng.run([&](int v) {
    if (v == 0 && eng.inbox(v).empty()) {
      eng.send(0, 0, Msg{7, 42, 0, 0});
      return;
    }
    for (const auto& in : eng.inbox(v)) {
      EXPECT_EQ(in.msg.tag, 7);
      ++deliveries;
    }
  });
  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(eng.messages(), 1u);
}

}  // namespace
}  // namespace pw::sim
