// The deterministic fault plane and the pipelined-close watchdog
// (DESIGN.md §9).
//
// The fault plane turns the engine into a chaos harness: messages are
// dropped, delayed, and duplicated by a counter-based hash of
// (seed, round, receiver-side arc), nodes crash and reboot on a fixed
// schedule. Because every verdict is a pure function of that triple, a fixed
// seed must produce BIT-IDENTICAL delivery traces across every execution
// policy — {1} ∪ {2,4} × {barriered, pipelined, eager, incremental} —
// including under the
// forced round-id / wake-epoch wraps. These tests pin that, the exact
// drop/delay/dup/crash semantics on tiny graphs where the schedule can be
// computed by hand, the ARQ workload's completion guarantee under chaos, and
// the §9 watchdog: a forcibly withheld bucket seal must abort the wedged
// close with a dependency-counter dump instead of hanging forever.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <string>
#include <vector>

#include "src/apps/arq.hpp"
#include "src/graph/generators.hpp"
#include "src/sim/engine.hpp"

namespace pw::sim {
namespace {

using graph::Graph;

// {2,4} threads × {barriered, shard-sealed pipelined, eager-sealed
// pipelined, incremental}; index 0 is the sequential reference. The default
// 60 s watchdog stays armed, so every parallel test here doubles as "an
// armed watchdog never fires on a live engine".
constexpr ExecutionPolicy kAllPolicies[] = {
    {1, false, false, false},  //
    {2, false, false, false},
    {2, true, false, false},
    {2, true, true, false},
    {2, true, true, true},
    {4, false, false, false},
    {4, true, false, false},
    {4, true, true, false},
    {4, true, true, true}};

std::string label(const ExecutionPolicy& p) {
  std::string out = p.num_threads == 1 ? "sequential"
                    : !p.pipeline      ? "barriered"
                    : !p.eager_seal    ? "pipelined"
                    : p.incremental    ? "pipelined+eager+inc"
                                       : "pipelined+eager";
  if (p.transport == TransportKind::kShmRing) out += "/shm";
  return out;
}

// Full per-node observation trace of a faulty run: every (activation, from,
// port, payload) tuple each callback sees, in order, plus the engine totals
// AND the fault accounting — so trace equality across policies pins the
// fault plane's verdicts, the delayed-delivery order, and the counters all
// at once.
template <class Drive>
std::vector<std::vector<std::uint64_t>> fault_trace_of(
    const Graph& g, ExecutionPolicy policy, const FaultPolicy& faults,
    Drive&& drive) {
  Engine eng(g, policy, faults);
  std::vector<std::vector<std::uint64_t>> trace(
      static_cast<std::size_t>(g.n()));
  drive(eng, trace);
  const FaultStats fs = eng.fault_stats();
  trace.push_back({eng.rounds(), eng.messages()});
  trace.push_back({fs.messages_dropped, fs.messages_delayed,
                   fs.messages_duplicated, fs.messages_shed_crashed,
                   fs.wakes_suppressed});
  return trace;
}

template <class Drive>
void expect_fault_trace_equal_across_policies(const Graph& g,
                                              const FaultPolicy& faults,
                                              Drive&& drive) {
  const auto reference = fault_trace_of(g, kAllPolicies[0], faults, drive);
  for (auto policy : kAllPolicies) {
    if (policy.num_threads == 1) continue;
    EXPECT_EQ(reference, fault_trace_of(g, policy, faults, drive))
        << label(policy) << " @" << policy.num_threads;
    // The §9 verdicts apply at the merge's receive views, so swapping the
    // §10 transport under the same policy must not move a single fate.
    policy.transport = TransportKind::kShmRing;
    EXPECT_EQ(reference, fault_trace_of(g, policy, faults, drive))
        << label(policy) << " @" << policy.num_threads;
  }
}

// Flood driver: every node forwards on all ports the first time it is
// reached; callbacks record their whole inbox. Under lossy policies some
// nodes may never be reached — the trace records exactly who was.
void flood_drive(Engine& eng, std::vector<std::vector<std::uint64_t>>& trace) {
  const auto& g = eng.graph();
  std::vector<char> seen(static_cast<std::size_t>(g.n()), 0);
  seen[0] = 1;
  eng.wake(0);
  eng.run([&](int v) {
    auto& t = trace[static_cast<std::size_t>(v)];
    t.push_back(0xa0a0a0a0ULL);
    for (const auto& in : eng.inbox(v)) {
      t.push_back(static_cast<std::uint64_t>(in.from) << 32 |
                  static_cast<std::uint32_t>(in.port));
      t.push_back(in.msg.a);
    }
    bool fresh = v == 0 && eng.inbox(v).empty();
    if (!seen[static_cast<std::size_t>(v)]) {
      seen[static_cast<std::size_t>(v)] = 1;
      fresh = true;
    }
    if (!fresh) return;
    for (int p = 0; p < g.degree(v); ++p)
      eng.send(v, p, Msg{7, static_cast<std::uint64_t>(v), 0, 0});
  });
}

// Chatter driver: every node broadcasts a fresh payload on all ports for its
// first `kChatterRounds` activations and keeps itself awake that long, so
// traffic spans enough rounds for delays, duplicates, and mid-run crash
// spans to interleave.
constexpr int kChatterRounds = 6;

void chatter_drive(Engine& eng,
                   std::vector<std::vector<std::uint64_t>>& trace) {
  const auto& g = eng.graph();
  std::vector<int> left(static_cast<std::size_t>(g.n()), kChatterRounds);
  for (int v = 0; v < g.n(); ++v) eng.wake(v);
  eng.run([&](int v) {
    auto& t = trace[static_cast<std::size_t>(v)];
    t.push_back(0xb0b0b0b0ULL);
    for (const auto& in : eng.inbox(v)) {
      t.push_back(static_cast<std::uint64_t>(in.from) << 32 |
                  static_cast<std::uint32_t>(in.port));
      t.push_back(in.msg.a);
    }
    int& r = left[static_cast<std::size_t>(v)];
    if (r <= 0) return;
    --r;
    const auto payload =
        static_cast<std::uint64_t>(v) << 8 | static_cast<std::uint64_t>(r);
    for (int p = 0; p < g.degree(v); ++p) eng.send(v, p, Msg{1, payload, 0, 0});
    if (r > 0) eng.wake(v);
  });
}

// --- cross-policy determinism ----------------------------------------------

TEST(FaultTrace, DropOnlyIdenticalAcrossPolicies) {
  Rng rng(7);
  const Graph g = graph::gen::random_connected(96, 220, rng);
  FaultPolicy faults;
  faults.seed = 42;
  faults.drop_prob = 0.3;
  expect_fault_trace_equal_across_policies(g, faults, flood_drive);
  expect_fault_trace_equal_across_policies(g, faults, chatter_drive);
}

TEST(FaultTrace, MixedFaultsIdenticalAcrossPolicies) {
  const Graph g = graph::gen::grid(8, 8);
  FaultPolicy faults;
  faults.seed = 0xfeedface;
  faults.drop_prob = 0.15;
  faults.delay_prob = 0.2;
  faults.dup_prob = 0.15;
  faults.delay_rounds = 2;
  expect_fault_trace_equal_across_policies(g, faults, flood_drive);
  expect_fault_trace_equal_across_policies(g, faults, chatter_drive);
}

TEST(FaultTrace, CrashScheduleIdenticalAcrossPolicies) {
  const Graph g = graph::gen::torus(8, 8);
  FaultPolicy faults;
  faults.seed = 3;
  faults.drop_prob = 0.1;
  faults.crashes = {{5, 0, 3}, {17, 2, 5}, {17, 7, CrashSpan::kNever},
                    {40, 1, 4}, {63, 0, CrashSpan::kNever}};
  expect_fault_trace_equal_across_policies(g, faults, chatter_drive);
}

TEST(FaultTrace, IdenticalUnderForcedWraps) {
  const Graph g = graph::gen::grid(8, 8);
  FaultPolicy faults;
  faults.seed = 11;
  faults.drop_prob = 0.1;
  faults.delay_prob = 0.2;
  faults.delay_rounds = 3;
  faults.crashes = {{9, 2, 4}};
  // Jump both counters to just below their wrap points before driving: the
  // stamp wrap and the wake-epoch wrap then happen mid-chatter, and the
  // fault plane's own 64-bit round clock must sail through both.
  const auto wrap_drive = [&](Engine& eng,
                              std::vector<std::vector<std::uint64_t>>& trace) {
    eng.debug_set_wrap_state(std::numeric_limits<std::uint32_t>::max() - 2,
                             (1ULL << 40) - 2);
    chatter_drive(eng, trace);
  };
  expect_fault_trace_equal_across_policies(g, faults, wrap_drive);
}

// Satellite of the incremental merge (§8): the merge is the fault plane's
// single choke point, and the incremental close both reorders fault-free
// scatters (arrival order) and blocks per bucket under faults to keep the
// per-destination delay queues in append order. Seven policy configurations
// spanning every verdict type — and their compositions — must produce
// bit-identical traces AND fault counters under the incremental merge at
// {2,4} threads vs the sequential reference.
TEST(FaultTrace, SevenFaultConfigsIdenticalUnderIncrementalMerge) {
  const Graph g = graph::gen::grid(8, 8);
  std::vector<FaultPolicy> configs(7);
  for (std::size_t i = 0; i < configs.size(); ++i)
    configs[i].seed = 0x5eed0 + i;
  configs[0].drop_prob = 0.25;                                  // drop only
  configs[1].delay_prob = 0.3;                                  // delay only
  configs[1].delay_rounds = 2;
  configs[2].dup_prob = 0.3;                                    // dup only
  configs[3].crashes = {{5, 0, 3}, {30, 2, 5}, {60, 1, 4}};     // crash only
  configs[4].drop_prob = 0.15;                                  // drop+delay
  configs[4].delay_prob = 0.2;
  configs[4].delay_rounds = 3;
  configs[5].drop_prob = 0.1;                                   // drop+delay+dup
  configs[5].delay_prob = 0.15;
  configs[5].dup_prob = 0.15;
  configs[5].delay_rounds = 2;
  configs[6].drop_prob = 0.1;                                   // everything
  configs[6].delay_prob = 0.1;
  configs[6].dup_prob = 0.1;
  configs[6].delay_rounds = 2;
  configs[6].crashes = {{9, 1, 4}, {41, 3, 6}};
  for (std::size_t i = 0; i < configs.size(); ++i) {
    const auto reference =
        fault_trace_of(g, kAllPolicies[0], configs[i], chatter_drive);
    for (const int threads : {2, 4}) {
      ExecutionPolicy inc{threads, true, true, true};
      EXPECT_EQ(reference, fault_trace_of(g, inc, configs[i], chatter_drive))
          << "config " << i << " @" << threads;
      inc.transport = TransportKind::kShmRing;
      EXPECT_EQ(reference, fault_trace_of(g, inc, configs[i], chatter_drive))
          << "config " << i << " @" << threads << " shm";
    }
  }
}

TEST(FaultTrace, SameSeedReproducesDifferentSeedDiverges) {
  const Graph g = graph::gen::grid(6, 6);
  FaultPolicy faults;
  faults.seed = 1234;
  faults.drop_prob = 0.5;
  const auto a = fault_trace_of(g, kAllPolicies[0], faults, flood_drive);
  const auto b = fault_trace_of(g, kAllPolicies[0], faults, flood_drive);
  EXPECT_EQ(a, b);
  faults.seed = 1235;
  const auto c = fault_trace_of(g, kAllPolicies[0], faults, flood_drive);
  EXPECT_NE(a, c);
}

// --- exact single-fault semantics ------------------------------------------

// One message on a two-node path, delay_prob == 1: it must arrive exactly
// delay_rounds late, and the run must stretch by exactly that much.
TEST(FaultSemantics, DelayArrivesExactlyLate) {
  const Graph g = graph::gen::path(2);
  const auto rounds_with = [&](const FaultPolicy& faults) {
    Engine eng(g, ExecutionPolicy{1, false, false}, faults);
    std::uint64_t seen_at = 0;
    eng.wake(0);
    const std::uint64_t executed = eng.run([&](int v) {
      if (v == 0 && eng.inbox(v).empty())
        eng.send(v, 0, Msg{1, 99, 0, 0});
      if (v == 1) {
        EXPECT_EQ(eng.inbox(v).size(), 1u);
        EXPECT_EQ(eng.inbox(v)[0].msg.a, 99u);
        seen_at = eng.rounds();
      }
    });
    EXPECT_GT(seen_at, 0u);
    return executed;
  };
  const std::uint64_t plain = rounds_with(FaultPolicy{});
  FaultPolicy delayed;
  delayed.delay_prob = 1.0;
  delayed.delay_rounds = 3;
  Engine probe(g, ExecutionPolicy{1, false, false}, delayed);
  EXPECT_TRUE(probe.faulty());
  EXPECT_EQ(rounds_with(delayed), plain + 3);
}

// dup_prob == 1: the receiver sees the same message twice, back to back, and
// the duplicate is accounted but NOT counted as a send.
TEST(FaultSemantics, DupDeliversTwice) {
  const Graph g = graph::gen::path(2);
  FaultPolicy faults;
  faults.dup_prob = 1.0;
  Engine eng(g, ExecutionPolicy{1, false, false}, faults);
  std::size_t seen = 0;
  eng.wake(0);
  eng.run([&](int v) {
    if (v == 0 && eng.inbox(v).empty()) eng.send(v, 0, Msg{1, 7, 0, 0});
    if (v == 1) {
      seen = eng.inbox(v).size();
      for (const auto& in : eng.inbox(v)) EXPECT_EQ(in.msg.a, 7u);
    }
  });
  EXPECT_EQ(seen, 2u);
  EXPECT_EQ(eng.messages(), 1u);
  EXPECT_EQ(eng.fault_stats().messages_duplicated, 1u);
}

// drop_prob == 1: the hub's sends are all dropped, no leaf ever runs, and
// the run still terminates (an all-lossy network is just an idle one).
TEST(FaultSemantics, DropEverythingTerminates) {
  const Graph g = graph::gen::star(9);
  FaultPolicy faults;
  faults.drop_prob = 1.0;
  Engine eng(g, ExecutionPolicy{1, false, false}, faults);
  std::vector<char> ran(static_cast<std::size_t>(g.n()), 0);
  eng.wake(0);
  eng.run([&](int v) {
    ran[static_cast<std::size_t>(v)] = 1;
    if (v == 0 && eng.inbox(v).empty())
      for (int p = 0; p < g.degree(v); ++p) eng.send(v, p, Msg{1, 0, 0, 0});
  });
  for (int v = 1; v < g.n(); ++v) EXPECT_EQ(ran[static_cast<std::size_t>(v)], 0);
  EXPECT_EQ(eng.messages(), 8u);  // sends are still counted (drain convention)
  EXPECT_EQ(eng.fault_stats().messages_dropped, 8u);
}

// A crash span [from, until): no callback while down, inbound deliveries
// shed, wakes suppressed, and the fault plane reboots the node at `until`.
TEST(FaultSemantics, CrashShedsAndReboots) {
  const Graph g = graph::gen::path(2);
  FaultPolicy faults;
  faults.crashes = {{1, 0, 4}};  // node 1 down for rounds 0..3, up at 4
  Engine eng(g, ExecutionPolicy{1, false, false}, faults);
  std::vector<std::uint64_t> node1_rounds;
  int node0_left = 5;
  eng.wake(1);  // targets round 0, node down -> suppressed
  eng.wake(0);
  eng.run([&](int v) {
    if (v == 1) {
      node1_rounds.push_back(eng.rounds());
      return;
    }
    if (node0_left-- <= 0) return;
    eng.send(v, 0, Msg{1, static_cast<std::uint64_t>(node0_left), 0, 0});
    if (node0_left > 0) eng.wake(v);
  });
  // Node 0 sends in rounds 0..4, targeting deliveries in rounds 1..5. The
  // first three land in down rounds and are shed; the reboot wakes node 1
  // for round 4, where the round-3 send arrives, and the round-4 send
  // follows in round 5.
  ASSERT_EQ(node1_rounds.size(), 2u);
  EXPECT_EQ(node1_rounds[0], 4u);
  EXPECT_EQ(node1_rounds[1], 5u);
  const FaultStats fs = eng.fault_stats();
  EXPECT_EQ(fs.messages_shed_crashed, 3u);
  EXPECT_EQ(fs.wakes_suppressed, 1u);
  ASSERT_EQ(eng.crash_epochs(1).size(), 1u);
  EXPECT_EQ(eng.crash_epochs(1)[0].from, 0u);
  EXPECT_EQ(eng.crash_epochs(1)[0].until, 4u);
  EXPECT_TRUE(eng.crash_epochs(0).empty());
}

TEST(FaultSemantics, FaultFreeEngineReportsNothing) {
  const Graph g = graph::gen::path(4);
  Engine eng(g, ExecutionPolicy{1, false, false});
  EXPECT_FALSE(eng.faulty());
  const FaultStats fs = eng.fault_stats();
  EXPECT_EQ(fs.messages_dropped, 0u);
  EXPECT_EQ(fs.wakes_suppressed, 0u);
  EXPECT_TRUE(eng.crash_epochs(0).empty());
}

// drain() must discard parked delayed traffic too, so a drained faulty
// engine is quiescent enough for phase changes and the wrap test hook.
TEST(FaultSemantics, DrainClearsDelayedTraffic) {
  const Graph g = graph::gen::path(2);
  FaultPolicy faults;
  faults.delay_prob = 1.0;
  faults.delay_rounds = 5;
  Engine eng(g, ExecutionPolicy{1, false, false}, faults);
  eng.wake(0);
  eng.run([&](int v) { eng.send(v, 0, Msg{1, 0, 0, 0}); }, 1);
  EXPECT_FALSE(eng.idle());  // the message is parked in a delay queue
  eng.drain();
  EXPECT_TRUE(eng.idle());
  eng.debug_set_wrap_state(1000, 1000);  // legal again: engine is quiescent
}

// --- the ARQ workload under chaos ------------------------------------------

// Shared check: the flood completes, every node holds the token, and the
// whole result (rounds, sends, retransmissions) is identical across every
// policy in the matrix.
void expect_arq_converges(const Graph& g, const FaultPolicy& faults,
                          std::uint64_t min_retransmissions) {
  apps::ArqResult ref;
  bool have_ref = false;
  for (const auto policy : kAllPolicies) {
    Engine eng(g, policy, faults);
    const apps::ArqResult r = apps::arq_flood(eng, 0, 0xabcdef);
    EXPECT_TRUE(r.completed) << label(policy);
    apps::validate_arq(g, r, 0xabcdef);
    EXPECT_GE(r.retransmissions, min_retransmissions) << label(policy);
    if (!have_ref) {
      ref = r;
      have_ref = true;
      continue;
    }
    EXPECT_EQ(ref.token, r.token) << label(policy);
    EXPECT_EQ(ref.executed_rounds, r.executed_rounds) << label(policy);
    EXPECT_EQ(ref.data_sends, r.data_sends) << label(policy);
    EXPECT_EQ(ref.retransmissions, r.retransmissions) << label(policy);
  }
}

// Fault-free, the default RTO equals the ACK round trip exactly: the flood
// must not retransmit a single frame on any policy.
TEST(Arq, FaultFreeNeverRetransmits) {
  const Graph g = graph::gen::grid(6, 6);
  for (const auto policy : kAllPolicies) {
    Engine eng(g, policy);
    const apps::ArqResult r = apps::arq_flood(eng, 0, 42);
    EXPECT_TRUE(r.completed) << label(policy);
    apps::validate_arq(g, r, 42);
    EXPECT_EQ(r.retransmissions, 0u) << label(policy);
  }
}

TEST(Arq, CompletesUnderFivePercentDrop) {
  const Graph g = graph::gen::grid(6, 6);
  FaultPolicy faults;
  faults.seed = 21;
  faults.drop_prob = 0.05;
  expect_arq_converges(g, faults, 0);
}

TEST(Arq, CompletesUnderTwentyPercentDrop) {
  Rng rng(5);
  const Graph g = graph::gen::random_connected(64, 160, rng);
  FaultPolicy faults;
  faults.seed = 22;
  faults.drop_prob = 0.2;
  // At 20% loss over 320 arcs some DATA or ACK is certainly lost (pinned by
  // the fixed seed), so the protocol must visibly earn its keep.
  expect_arq_converges(g, faults, 1);
}

TEST(Arq, CompletesUnderMixedChaosWithCrashes) {
  const Graph g = graph::gen::torus(6, 6);
  FaultPolicy faults;
  faults.seed = 77;
  faults.drop_prob = 0.1;
  faults.delay_prob = 0.1;
  faults.dup_prob = 0.1;
  faults.delay_rounds = 2;
  faults.crashes = {{7, 2, 6}, {20, 0, 9}, {33, 4, 5}};
  expect_arq_converges(g, faults, 1);
}

// drop_prob == 1 can never complete; the round budget must terminate the
// run and the engine must come back quiescent (the arcs stay unacked).
TEST(Arq, TotalLossTerminatesOnBudget) {
  const Graph g = graph::gen::cycle(8);
  FaultPolicy faults;
  faults.drop_prob = 1.0;
  Engine eng(g, ExecutionPolicy{1, false, false}, faults);
  apps::ArqConfig cfg;
  cfg.max_rounds = 64;
  const apps::ArqResult r = apps::arq_flood(eng, 0, 9, cfg);
  EXPECT_FALSE(r.completed);
  EXPECT_EQ(r.executed_rounds, 64u);
  EXPECT_GT(r.retransmissions, 0u);
  EXPECT_TRUE(eng.idle());
}

// CI's chaos job re-runs the convergence sweep under a per-run randomized
// seed (PW_CHAOS_SEED, echoed below for replay); locally it uses a default.
TEST(Arq, ChaosSeedSweep) {
  std::uint64_t seed = 0xc0ffee;
  if (const char* e = std::getenv("PW_CHAOS_SEED"))
    seed = std::strtoull(e, nullptr, 0);
  std::printf("PW_CHAOS_SEED=%llu (set this env var to replay)\n",
              static_cast<unsigned long long>(seed));
  const Graph g = graph::gen::grid(6, 6);
  FaultPolicy faults;
  faults.seed = seed;
  faults.drop_prob = 0.15;
  faults.delay_prob = 0.1;
  faults.dup_prob = 0.05;
  expect_arq_converges(g, faults, 0);
}

// --- the §9 watchdog --------------------------------------------------------

// A tightly armed watchdog must never fire while the engine is making
// progress, even on a long multi-round parallel run.
TEST(Watchdog, ArmedRunCompletes) {
  const Graph g = graph::gen::grid(8, 8);
  for (const auto base : kAllPolicies) {
    if (base.num_threads == 1) continue;
    ExecutionPolicy policy = base;
    policy.watchdog_ms = 200;
    Engine eng(g, policy);
    std::vector<std::vector<std::uint64_t>> trace(
        static_cast<std::size_t>(g.n()));
    chatter_drive(eng, trace);
    EXPECT_GT(eng.rounds(), 0u) << label(policy);
  }
}

#if defined(__SANITIZE_THREAD__)  // GCC
#define PW_UNDER_TSAN 1
#elif defined(__has_feature)  // Clang
#if __has_feature(thread_sanitizer)
#define PW_UNDER_TSAN 1
#endif
#endif

// Forcibly withhold one bucket seal: the pipelined close wedges, and the
// watchdog must abort with the dependency-counter dump ("deps_left" is
// printed only by the §9 diagnostics) instead of hanging.
[[maybe_unused]] void run_with_withheld_seal(const Graph& g) {
  ExecutionPolicy policy{4, true, true};
  policy.watchdog_ms = 1000;
  Engine eng(g, policy);
  eng.debug_withhold_seal(1, 0);
  std::vector<std::vector<std::uint64_t>> trace(
      static_cast<std::size_t>(g.n()));
  chatter_drive(eng, trace);
}

TEST(Watchdog, WithheldSealAbortsWithDiagnostics) {
#ifdef PW_UNDER_TSAN
  GTEST_SKIP() << "death test forks after threads exist; the watchdog dump "
                  "intentionally reads racing counters TSan would flag";
#else
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  const Graph g = graph::gen::grid(8, 8);
  EXPECT_DEATH(run_with_withheld_seal(g), "deps_left");
#endif
}

// Same wedge under the INCREMENTAL merge: the claimed merge for dest 0 parks
// in its scatter wait for the seal task 1 never issues, and the dump must
// include the per-destination scatter-cursor lines (sealed/scattered/
// committed state — printed only by the incremental §9 diagnostics) so the
// missing feeder is identifiable.
[[maybe_unused]] void run_incremental_with_withheld_seal(const Graph& g) {
  ExecutionPolicy policy{4, true, true, true};
  policy.watchdog_ms = 1000;
  Engine eng(g, policy);
  eng.debug_withhold_seal(1, 0);
  std::vector<std::vector<std::uint64_t>> trace(
      static_cast<std::size_t>(g.n()));
  chatter_drive(eng, trace);
}

TEST(Watchdog, WithheldSealUnderIncrementalMergeDumpsScatterCursors) {
#ifdef PW_UNDER_TSAN
  GTEST_SKIP() << "death test forks after threads exist; the watchdog dump "
                  "intentionally reads racing counters TSan would flag";
#else
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  const Graph g = graph::gen::grid(8, 8);
  EXPECT_DEATH(run_incremental_with_withheld_seal(g), "scatter cursor");
#endif
}

}  // namespace
}  // namespace pw::sim
