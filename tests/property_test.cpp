// Parameterized property sweeps: every (graph family x partition x mode x
// strategy) combination must satisfy the paper's invariants.
#include <gtest/gtest.h>

#include <cmath>

#include "src/apps/mst.hpp"
#include "src/core/noleader.hpp"
#include "src/core/solver.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/properties.hpp"

namespace pw {
namespace {

using graph::Graph;
using graph::Partition;

enum class Family {
  Gnm,
  Grid,
  ApexGrid,
  KTree,
  Caterpillar,
  Torus,
  Hypercube,
  RandomTree,
  Lollipop,
};

const char* family_name(Family f) {
  switch (f) {
    case Family::Gnm: return "Gnm";
    case Family::Grid: return "Grid";
    case Family::ApexGrid: return "ApexGrid";
    case Family::KTree: return "KTree";
    case Family::Caterpillar: return "Caterpillar";
    case Family::Torus: return "Torus";
    case Family::Hypercube: return "Hypercube";
    case Family::RandomTree: return "RandomTree";
    case Family::Lollipop: return "Lollipop";
  }
  return "?";
}

struct Instance {
  Graph g;
  Partition p;
};

Instance make_instance(Family f, std::uint64_t seed) {
  Rng rng(seed);
  Graph g = [&] {
    switch (f) {
      case Family::Gnm: return graph::gen::random_connected(160, 420, rng);
      case Family::Grid: return graph::gen::grid(10, 16);
      case Family::ApexGrid: return graph::gen::apex_grid(7, 22);
      case Family::KTree: return graph::gen::k_tree(150, 3, rng);
      case Family::Caterpillar: return graph::gen::caterpillar(40, 3);
      case Family::Torus: return graph::gen::torus(9, 13);
      case Family::Hypercube: return graph::gen::hypercube(7);
      case Family::RandomTree: return graph::gen::random_tree(140, rng);
      case Family::Lollipop: return graph::gen::lollipop(12, 60);
    }
    PW_CHECK(false);
  }();
  Partition p = f == Family::ApexGrid
                    ? graph::apex_grid_row_partition(7, 22)
                    : graph::random_bfs_partition(g, std::max(2, g.n() / 18), rng);
  p.elect_min_id_leaders();
  return {std::move(g), std::move(p)};
}

std::vector<std::uint64_t> reference_pa(const Partition& p, const Agg& agg,
                                        const std::vector<std::uint64_t>& values) {
  std::vector<std::uint64_t> out(p.num_parts, agg.identity);
  for (std::size_t v = 0; v < values.size(); ++v)
    out[p.part_of[v]] = agg(out[p.part_of[v]], values[v]);
  return out;
}

// --- PA correctness across everything ----------------------------------------

struct PaCase {
  Family family;
  core::PaMode mode;
  core::PaStrategy strategy;
};

class PaProperty : public ::testing::TestWithParam<PaCase> {};

TEST_P(PaProperty, MatchesReferenceOnEveryAggregate) {
  const auto c = GetParam();
  auto inst = make_instance(c.family, 7'000 + static_cast<int>(c.family));
  graph::validate_partition(inst.g, inst.p);

  sim::Engine eng(inst.g);
  core::PaSolverConfig cfg;
  cfg.mode = c.mode;
  cfg.strategy = c.strategy;
  cfg.seed = 99;
  core::PaSolver solver(eng, cfg);
  solver.set_partition(inst.p);

  Rng rng(5);
  std::vector<std::uint64_t> values(inst.g.n());
  for (auto& x : values) x = rng.next_below(1u << 18);
  for (const Agg& agg : {agg::min(), agg::max(), agg::sum(), agg::bit_or()}) {
    const auto res = solver.aggregate(agg, values);
    const auto ref = reference_pa(inst.p, agg, values);
    for (int i = 0; i < inst.p.num_parts; ++i)
      ASSERT_EQ(res.part_value[i], ref[i])
          << family_name(c.family) << " agg=" << agg.name << " part " << i;
    for (int v = 0; v < inst.g.n(); ++v)
      ASSERT_EQ(res.node_value[v], ref[inst.p.part_of[v]]);
  }
}

std::string pa_case_name(const ::testing::TestParamInfo<PaCase>& info) {
  std::string s = family_name(info.param.family);
  s += info.param.mode == core::PaMode::Randomized ? "_rand" : "_det";
  switch (info.param.strategy) {
    case core::PaStrategy::Ours: s += "_ours"; break;
    case core::PaStrategy::NoShortcut: s += "_noshortcut"; break;
    case core::PaStrategy::NoSubparts: s += "_nosubparts"; break;
  }
  return s;
}

std::vector<PaCase> all_pa_cases() {
  std::vector<PaCase> cases;
  for (Family f : {Family::Gnm, Family::Grid, Family::ApexGrid, Family::KTree,
                   Family::Caterpillar, Family::Torus, Family::Hypercube,
                   Family::RandomTree, Family::Lollipop}) {
    for (auto mode : {core::PaMode::Randomized, core::PaMode::Deterministic})
      cases.push_back({f, mode, core::PaStrategy::Ours});
    cases.push_back({f, core::PaMode::Randomized, core::PaStrategy::NoShortcut});
    cases.push_back({f, core::PaMode::Randomized, core::PaStrategy::NoSubparts});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, PaProperty,
                         ::testing::ValuesIn(all_pa_cases()), pa_case_name);

// --- Structure invariants across families ------------------------------------

struct StructureCase {
  Family family;
  core::PaMode mode;
};

class StructureProperty : public ::testing::TestWithParam<StructureCase> {};

TEST_P(StructureProperty, StructuresSatisfyPaperInvariants) {
  const auto c = GetParam();
  auto inst = make_instance(c.family, 8'000 + static_cast<int>(c.family));
  sim::Engine eng(inst.g);
  core::PaSolverConfig cfg;
  cfg.mode = c.mode;
  cfg.seed = 3;
  core::PaSolver solver(eng, cfg);
  solver.set_partition(inst.p);
  const auto& st = solver.structures();

  // Tree: a BFS tree of the whole graph.
  tree::validate_forest(inst.g, st.t);
  ASSERT_EQ(static_cast<int>(st.t.roots.size()), 1);
  const auto dist = graph::bfs_distances(inst.g, st.t.roots[0]);
  for (int v = 0; v < inst.g.n(); ++v) ASSERT_EQ(st.t.depth[v], dist[v]);

  // Division: Definition 4.1 (depth envelope is mode-dependent; see
  // DESIGN.md on deterministic chains).
  const int depth_cap =
      (c.mode == core::PaMode::Deterministic ? 8 : 1) *
          (4 * std::max(1, st.diameter_bound)) +
      4;
  shortcut::validate_subpart_division(inst.g, inst.p, st.div, depth_cap);

  // Shortcut: structural validity + the doubling guarantee b <= 3 kappa*.
  shortcut::validate_shortcut(inst.g, st.t, inst.p, st.sc);
  const auto blocks = shortcut::blocks_per_part(inst.g, st.t, inst.p, st.sc);
  for (int i = 0; i < inst.p.num_parts; ++i)
    ASSERT_LE(blocks[i], 3 * std::max(1, st.frozen_at_guess[i])) << i;
  // Congestion is Õ(kappa*): final guess x iterations x log envelope.
  const double logn = std::log2(std::max(2, inst.g.n()));
  ASSERT_LE(shortcut::congestion(st.sc),
            st.final_guess * (2 * logn + 8) * solver.config().corefast_iters_per_guess);
}

std::string structure_case_name(
    const ::testing::TestParamInfo<StructureCase>& info) {
  std::string s = family_name(info.param.family);
  s += info.param.mode == core::PaMode::Randomized ? "_rand" : "_det";
  return s;
}

std::vector<StructureCase> all_structure_cases() {
  std::vector<StructureCase> cases;
  for (Family f : {Family::Gnm, Family::Grid, Family::ApexGrid, Family::KTree,
                   Family::Caterpillar, Family::Torus, Family::Hypercube,
                   Family::RandomTree, Family::Lollipop})
    for (auto mode : {core::PaMode::Randomized, core::PaMode::Deterministic})
      cases.push_back({f, mode});
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, StructureProperty,
                         ::testing::ValuesIn(all_structure_cases()),
                         structure_case_name);

// --- MST across families -------------------------------------------------------

class MstProperty : public ::testing::TestWithParam<Family> {};

TEST_P(MstProperty, EqualsKruskalWithRandomWeights) {
  Rng rng(9'000 + static_cast<int>(GetParam()));
  auto inst = make_instance(GetParam(), 9'100 + static_cast<int>(GetParam()));
  Graph weighted = graph::gen::with_random_weights(inst.g, 997, rng);
  sim::Engine eng(weighted);
  const auto res = apps::boruvka_mst(eng, {});
  apps::validate_spanning_tree(weighted, res.in_mst);
  ASSERT_EQ(res.total_weight, apps::kruskal_mst_weight(weighted));
  ASSERT_EQ(res.in_mst, apps::kruskal_mst_edges(weighted));
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, MstProperty,
    ::testing::Values(Family::Gnm, Family::Grid, Family::ApexGrid,
                      Family::KTree, Family::Caterpillar, Family::Torus,
                      Family::Hypercube, Family::RandomTree, Family::Lollipop),
    [](const ::testing::TestParamInfo<Family>& info) {
      return std::string(family_name(info.param));
    });

// --- Algorithm 9 across families ------------------------------------------------

class NoLeaderProperty : public ::testing::TestWithParam<Family> {};

TEST_P(NoLeaderProperty, MatchesReferenceWithoutLeaders) {
  auto inst = make_instance(GetParam(), 9'500 + static_cast<int>(GetParam()));
  graph::Partition p = inst.p;
  p.leader.clear();
  Rng rng(13);
  std::vector<std::uint64_t> values(inst.g.n());
  for (auto& x : values) x = rng.next_below(1u << 16);

  sim::Engine eng(inst.g);
  const auto res = core::pa_noleader(eng, p, agg::min(), values, {});
  const auto ref = reference_pa(p, agg::min(), values);
  for (int i = 0; i < p.num_parts; ++i) ASSERT_EQ(res.part_value[i], ref[i]);
}

INSTANTIATE_TEST_SUITE_P(
    AllFamilies, NoLeaderProperty,
    ::testing::Values(Family::Gnm, Family::Grid, Family::KTree,
                      Family::Caterpillar, Family::Hypercube,
                      Family::RandomTree),
    [](const ::testing::TestParamInfo<Family>& info) {
      return std::string(family_name(info.param));
    });

}  // namespace
}  // namespace pw
