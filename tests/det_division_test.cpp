#include <gtest/gtest.h>

#include <cmath>

#include "src/graph/generators.hpp"
#include "src/graph/properties.hpp"
#include "src/shortcut/colevishkin.hpp"
#include "src/shortcut/subpart_det.hpp"

namespace pw::shortcut {
namespace {

using graph::Graph;
using graph::Partition;

// --- Cole-Vishkin -----------------------------------------------------------

TEST(ColeVishkin, StepShrinksColors) {
  // From distinct 32-bit colors one step lands below 2*32+2.
  EXPECT_LT(cv::cv_step(0xdeadbeefULL, 0xdeadbeeeULL), 66u);
  // Differ at bit 0: new color = 0*2 + bit0(own).
  EXPECT_EQ(cv::cv_step(0b1010, 0b1011), 0u);
  EXPECT_EQ(cv::cv_step(0b1011, 0b1010), 1u);
  // Differ at bit 2 only.
  EXPECT_EQ(cv::cv_step(0b0100, 0b0000), 2u * 2 + 1);
}

TEST(ColeVishkin, ThreeColorsDirectedPath) {
  const int n = 100;
  std::vector<int> succ(n);
  for (int v = 0; v < n; ++v) succ[v] = v + 1 < n ? v + 1 : -1;
  const auto colors = cv::three_color(succ);
  EXPECT_TRUE(cv::is_proper_three_coloring(succ, colors));
}

TEST(ColeVishkin, ThreeColorsDirectedCycles) {
  for (int n : {3, 4, 5, 7, 64, 101}) {
    std::vector<int> succ(n);
    for (int v = 0; v < n; ++v) succ[v] = (v + 1) % n;
    const auto colors = cv::three_color(succ);
    EXPECT_TRUE(cv::is_proper_three_coloring(succ, colors)) << "n=" << n;
  }
}

TEST(ColeVishkin, MixedPathsAndCycles) {
  Rng rng(71);
  // Random union of paths and cycles with in-degree <= 1.
  const int n = 200;
  std::vector<int> succ(n, -1);
  std::vector<int> perm(n);
  for (int i = 0; i < n; ++i) perm[i] = i;
  for (int i = n - 1; i > 0; --i)
    std::swap(perm[i], perm[rng.next_below(i + 1)]);
  // Chain segments of random lengths; every third segment closes a cycle.
  std::size_t i = 0;
  int seg = 0;
  while (i < perm.size()) {
    const std::size_t len = 2 + rng.next_below(9);
    const std::size_t end = std::min(perm.size(), i + len);
    for (std::size_t k = i; k + 1 < end; ++k) succ[perm[k]] = perm[k + 1];
    if (seg % 3 == 0 && end - i >= 3) succ[perm[end - 1]] = perm[i];
    i = end;
    ++seg;
  }
  const auto colors = cv::three_color(succ);
  EXPECT_TRUE(cv::is_proper_three_coloring(succ, colors));
}

// --- Deterministic sub-part division (Algorithms 5 + 6) ---------------------

void expect_valid_det_division(const Graph& g, Partition p, int diameter) {
  p.elect_min_id_leaders();
  graph::validate_partition(g, p);
  sim::Engine eng(g);
  DetDivisionStats stats;
  const auto div = build_subpart_division_det(eng, p, diameter, &stats);

  // Depth can stack D per star-joining iteration in the worst case (see
  // DESIGN.md); validate against that envelope.
  const int depth_cap = std::max(4, 4 + stats.iterations) * std::max(1, diameter);
  validate_subpart_division(g, p, div, depth_cap);

  // Density (Definition 4.1): every sub-part is complete (>= D nodes) or
  // spans its entire part, so each part has at most |Pi|/D + 1 sub-parts.
  std::vector<int> part_size(p.num_parts, 0);
  for (int v = 0; v < g.n(); ++v) ++part_size[p.part_of[v]];
  const auto per_part = subparts_per_part(p, div);
  for (int i = 0; i < p.num_parts; ++i)
    EXPECT_LE(per_part[i], part_size[i] / std::max(1, diameter) + 1) << i;

  // Logarithmic iteration count.
  EXPECT_LE(stats.iterations,
            6 * static_cast<int>(std::ceil(std::log2(std::max(2, g.n())))) + 12);
}

TEST(DetDivision, PathWholePart) {
  expect_valid_det_division(graph::gen::path(64), graph::whole_partition(graph::gen::path(64)), 8);
}

TEST(DetDivision, GridRows) {
  expect_valid_det_division(graph::gen::grid(6, 40), graph::grid_row_partition(6, 40), 10);
}

TEST(DetDivision, ApexGrid) {
  expect_valid_det_division(graph::gen::apex_grid(8, 30),
                            graph::apex_grid_row_partition(8, 30), 10);
}

TEST(DetDivision, RandomGraphsRandomParts) {
  Rng rng(72);
  for (int trial = 0; trial < 4; ++trial) {
    Graph g = graph::gen::random_connected(150, 400, rng);
    Partition p = graph::random_bfs_partition(g, 8, rng);
    const int d = std::max(1, graph::diameter_estimate(g));
    expect_valid_det_division(g, p, d);
  }
}

TEST(DetDivision, SmallDiameterBoundMakesManySubparts) {
  Graph g = graph::gen::path(100);
  Partition p = graph::whole_partition(g);
  p.elect_min_id_leaders();
  sim::Engine eng(g);
  const auto div = build_subpart_division_det(eng, p, 5);
  // 100 nodes, completeness at 5: at least 100/10 sub-parts (each sub-part
  // stops merging once complete, and complete sub-parts absorb at most what
  // gets attached to them).
  EXPECT_GE(div.num_subparts, 10);
  EXPECT_LE(div.num_subparts, 21);
}

TEST(DetDivision, SingletonDiameterOne) {
  Graph g = graph::gen::complete(12);
  Partition p = graph::whole_partition(g);
  p.elect_min_id_leaders();
  sim::Engine eng(g);
  const auto div = build_subpart_division_det(eng, p, 1);
  // D = 1: every singleton is already complete.
  EXPECT_EQ(div.num_subparts, 12);
}

TEST(DetDivision, DeterministicAcrossRuns) {
  Graph g = graph::gen::grid(5, 24);
  Partition p = graph::grid_row_partition(5, 24);
  p.elect_min_id_leaders();
  auto run = [&] {
    sim::Engine eng(g);
    const auto div = build_subpart_division_det(eng, p, 7);
    return std::tuple{div.subpart_of, div.rep_of_subpart, eng.messages()};
  };
  EXPECT_EQ(run(), run());
}

TEST(DetDivision, MessageComplexityNearLinear) {
  Rng rng(73);
  Graph g = graph::gen::random_connected(300, 750, rng);
  Partition p = graph::random_bfs_partition(g, 6, rng);
  p.elect_min_id_leaders();
  sim::Engine eng(g);
  DetDivisionStats stats;
  build_subpart_division_det(eng, p, std::max(1, graph::diameter_estimate(g)),
                             &stats);
  const double logn = std::log2(g.n());
  // Õ(n + m): per iteration O(m) announcements dominate.
  EXPECT_LE(static_cast<double>(stats.traffic.messages),
            4.0 * (g.num_arcs() + g.n()) * (logn + stats.iterations));
}

}  // namespace
}  // namespace pw::shortcut
