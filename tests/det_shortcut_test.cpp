#include <gtest/gtest.h>

#include <cmath>

#include "src/core/detshortcut.hpp"
#include "src/core/solver.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/properties.hpp"
#include "src/shortcut/subpart_det.hpp"
#include "src/tree/bfs.hpp"

namespace pw::core {
namespace {

using graph::Graph;
using graph::Partition;

// --- Algorithm 7 ------------------------------------------------------------

TEST(PathDouble, SingleClaimTravelsToSink) {
  std::vector<std::vector<int>> seed(8);
  seed[0] = {7};  // part 7 enters at the bottom
  const auto r = path_shortcut_double(seed, 4);
  ASSERT_EQ(r.sink_set, std::vector<int>{7});
  // Edges above positions 1..7 all claimed.
  for (int k = 0; k + 1 < 8; ++k)
    EXPECT_EQ(r.claimed[k], std::vector<int>{7}) << k;
  EXPECT_GT(r.messages, 0u);
  EXPECT_GT(r.rounds, 0u);
}

TEST(PathDouble, MergingDeduplicates) {
  std::vector<std::vector<int>> seed(8);
  seed[0] = {3};
  seed[3] = {3};  // same part claims twice
  seed[5] = {9};
  const auto r = path_shortcut_double(seed, 8);
  EXPECT_EQ(r.sink_set, (std::vector<int>{3, 9}));
}

TEST(PathDouble, CongestionBreaksEdges) {
  // cap c=1: any set of size >= 2 breaks its edge.
  std::vector<std::vector<int>> seed(8);
  seed[0] = {1};
  seed[1] = {2};  // positions 1 and 2 merge at position 2 -> {1,2} breaks
  const auto r = path_shortcut_double(seed, 1);
  EXPECT_TRUE(r.sink_set.empty() || static_cast<int>(r.sink_set.size()) < 2);
  bool any_broken = false;
  for (char b : r.broken) any_broken = any_broken || b;
  EXPECT_TRUE(any_broken);
}

TEST(PathDouble, OutputCongestionBounded) {
  // Lemma 6.6: every edge carries O(c log L) parts.
  const int L = 64, c = 2;
  std::vector<std::vector<int>> seed(L);
  for (int k = 0; k < L; ++k) seed[k] = {k};  // distinct part per position
  const auto r = path_shortcut_double(seed, c);
  const int bound = 2 * c * (static_cast<int>(std::log2(L)) + 1);
  for (const auto& on_edge : r.claimed)
    EXPECT_LE(static_cast<int>(on_edge.size()), bound);
  EXPECT_LE(static_cast<int>(r.sink_set.size()), bound);
}

TEST(PathDouble, LengthOnePathPassesThrough) {
  std::vector<std::vector<int>> seed(1);
  seed[0] = {5};
  const auto r = path_shortcut_double(seed, 3);
  EXPECT_EQ(r.sink_set, std::vector<int>{5});
  EXPECT_EQ(r.messages, 0u);  // no physical path edge crossed
}

// --- Algorithm 8 --------------------------------------------------------------

struct DetPipeline {
  sim::Engine eng;
  tree::SpanningForest t;
  tree::HeavyPaths hp;
  shortcut::SubPartDivision div;

  DetPipeline(const Graph& g, const Partition& p, int diameter)
      : eng(g),
        t(tree::build_bfs_tree(eng, 0)),
        hp(tree::heavy_path_decompose(eng, t)),
        div(shortcut::build_subpart_division_det(eng, p, diameter)) {}
};

TEST(DetShortcut, BuildsValidFrozenShortcut) {
  Graph g = graph::gen::grid(6, 30);
  Partition p = graph::grid_row_partition(6, 30);
  p.elect_min_id_leaders();
  DetPipeline pipe(g, p, 34);
  DetShortcutConfig dc;
  dc.congestion_cap = 8;
  dc.block_target = 8;
  const auto res = build_shortcut_det(pipe.eng, p, pipe.div, pipe.t, pipe.hp, dc);
  EXPECT_TRUE(res.all_frozen());
  shortcut::validate_shortcut(g, pipe.t, p, res.sc);
  const auto blocks = shortcut::blocks_per_part(g, pipe.t, p, res.sc);
  for (int i = 0; i < p.num_parts; ++i)
    EXPECT_LE(blocks[i], 3 * dc.block_target);
}

TEST(DetShortcut, HighCapGivesOneBlock) {
  Graph g = graph::gen::grid(5, 24);
  Partition p = graph::grid_row_partition(5, 24);
  p.elect_min_id_leaders();
  DetPipeline pipe(g, p, 27);
  DetShortcutConfig dc;
  dc.congestion_cap = p.num_parts + 1;
  dc.block_target = p.num_parts + 1;
  const auto res = build_shortcut_det(pipe.eng, p, pipe.div, pipe.t, pipe.hp, dc);
  EXPECT_TRUE(res.all_frozen());
  const auto blocks = shortcut::blocks_per_part(g, pipe.t, p, res.sc);
  for (int i = 0; i < p.num_parts; ++i) EXPECT_LE(blocks[i], 1);
}

TEST(DetShortcut, FullyDeterministic) {
  Graph g = graph::gen::apex_grid(6, 25);
  Partition p = graph::apex_grid_row_partition(6, 25);
  p.elect_min_id_leaders();
  auto run = [&] {
    DetPipeline pipe(g, p, 10);
    DetShortcutConfig dc;
    dc.congestion_cap = 4;
    dc.block_target = 4;
    const auto res =
        build_shortcut_det(pipe.eng, p, pipe.div, pipe.t, pipe.hp, dc);
    return std::pair{res.sc.parts_on, pipe.eng.messages()};
  };
  EXPECT_EQ(run(), run());
}

TEST(DetSolver, EndToEndCorrectness) {
  Rng rng(81);
  for (int trial = 0; trial < 3; ++trial) {
    Graph g = graph::gen::random_connected(140, 350, rng);
    Partition p = graph::random_bfs_partition(g, 8, rng);
    p.elect_min_id_leaders();
    sim::Engine eng(g);
    PaSolverConfig cfg;
    cfg.mode = PaMode::Deterministic;
    cfg.seed = 900 + trial;
    PaSolver solver(eng, cfg);
    solver.set_partition(p);

    std::vector<std::uint64_t> values(g.n());
    for (int v = 0; v < g.n(); ++v) values[v] = (v * 131) % 9973;
    const auto res = solver.aggregate(agg::min(), values);
    std::vector<std::uint64_t> ref(p.num_parts, ~0ULL);
    for (int v = 0; v < g.n(); ++v)
      ref[p.part_of[v]] = std::min(ref[p.part_of[v]], values[v]);
    for (int i = 0; i < p.num_parts; ++i) EXPECT_EQ(res.part_value[i], ref[i]);
  }
}

TEST(DetSolver, ApexGridDeterministicPipeline) {
  Graph g = graph::gen::apex_grid(8, 40);
  Partition p = graph::apex_grid_row_partition(8, 40);
  p.elect_min_id_leaders();
  sim::Engine eng(g);
  PaSolverConfig cfg;
  cfg.mode = PaMode::Deterministic;
  PaSolver solver(eng, cfg);
  solver.set_partition(p);
  std::vector<std::uint64_t> values(g.n(), 1);
  const auto res = solver.aggregate(agg::sum(), values);
  EXPECT_EQ(res.part_value[0], 1u);  // apex
  for (int i = 1; i < p.num_parts; ++i) EXPECT_EQ(res.part_value[i], 40u);
}

}  // namespace
}  // namespace pw::core
