// The arena engine's contract (DESIGN.md §5): after warm-up, the round loop
// — begin_round / send / end_round — performs ZERO heap allocations, on both
// the dense-sweep and the radix active-set paths. This test replaces the
// global allocator with a counting one and measures steady-state phases.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "bench/workloads.hpp"
#include "src/graph/generators.hpp"
#include "src/sim/engine.hpp"

namespace {
std::atomic<std::uint64_t> g_news{0};
}  // namespace

void* operator new(std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t n) {
  g_news.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(n)) return p;
  throw std::bad_alloc();
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }

namespace pw::sim {
namespace {

// The flood workload is shared with bench_sim_microbench (bench/workloads.hpp)
// so the workload the perf trajectory measures is the one this guard protects.
void flood_phase(Engine& eng, std::vector<char>& seen) {
  bench::flood_workload(eng, seen);
}

TEST(EngineAlloc, DenseSteadyStateRoundLoopAllocatesNothing) {
  Rng rng(1);
  const auto g = graph::gen::random_connected(2048, 6144, rng);
  Engine eng(g, ExecutionPolicy{1});
  std::vector<char> seen(static_cast<std::size_t>(g.n()), 0);
  // Warm-up: lets active_/wake_list_ reach their steady-state capacity.
  flood_phase(eng, seen);
  flood_phase(eng, seen);

  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  for (int i = 0; i < 5; ++i) flood_phase(eng, seen);
  const std::uint64_t after = g_news.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "heap allocation in the dense round loop";
}

// The sharded plane preserves the contract: per-shard wake lists, staging
// buckets, and the worker pool are all sized at construction, and a futex
// dispatch allocates nothing. (Thread spawn happens in the ctor, before the
// counted window.) All four round-close modes are covered: the pipelined
// two-stage dispatch (DESIGN.md §8) reuses dependency counters and per-task
// publish states sized at construction, the eager seal's per-round seal
// points are rebuilt in place (fixed-size per-shard arrays, std::sort over
// at most S-1 elements; all-active rounds reuse the static schedule built at
// construction), and the incremental merge's scatter cursors are fixed
// arrays too — all must be allocation-free.
TEST(EngineAlloc, ShardedSteadyStateRoundLoopAllocatesNothing) {
  Rng rng(1);
  const auto g = graph::gen::random_connected(2048, 6144, rng);
  constexpr ExecutionPolicy kModes[] = {{4, false, false},
                                        {4, true, false},
                                        {4, true, true},
                                        {4, true, true, true}};
  for (const auto policy : kModes) {
    Engine eng(g, policy);
    std::vector<char> seen(static_cast<std::size_t>(g.n()), 0);
    flood_phase(eng, seen);
    flood_phase(eng, seen);

    const std::uint64_t before = g_news.load(std::memory_order_relaxed);
    for (int i = 0; i < 5; ++i) flood_phase(eng, seen);
    const std::uint64_t after = g_news.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << "heap allocation in the sharded round loop (pipeline="
        << policy.pipeline << ", eager_seal=" << policy.eager_seal << ")";
  }
}

TEST(EngineAlloc, SparseRadixSteadyStateAllocatesNothing) {
  // Two far-apart walkers on a long path: tiny active set over a huge id
  // range forces the radix ordering path every round.
  const auto g = graph::gen::path(1 << 16);
  Engine eng(g);
  // Every active node (a fresh wake or a message recipient) relays one hop
  // toward the middle of the path, so both walkers stay live — and far apart,
  // pinning the radix path — for the whole 12-round budget. run() then exits
  // with messages still in flight, so drain() discards real pending traffic.
  auto relay_phase = [&] {
    eng.wake(1);
    eng.wake(g.n() - 2);
    eng.run(
        [&](int v) {
          const int next = v < g.n() / 2 ? v + 1 : v - 1;
          eng.send(v, g.port_to(v, next), Msg{});
        },
        12);
    eng.drain();
  };
  relay_phase();
  relay_phase();

  const std::uint64_t before = g_news.load(std::memory_order_relaxed);
  for (int i = 0; i < 5; ++i) relay_phase();
  const std::uint64_t after = g_news.load(std::memory_order_relaxed);
  EXPECT_EQ(after - before, 0u) << "heap allocation in the radix round loop";
}

}  // namespace
}  // namespace pw::sim
