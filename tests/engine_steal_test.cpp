// Work-stealing merge claims (DESIGN.md §8): publishing a stage-2 task
// pushes it onto the publisher's own claim deque; free threads pop their own
// deque, steal the heaviest victim top, and fall back to a full ready-state
// scan — with ready_state_'s CAS as the exactly-once arbiter throughout.
// These tests drive the Executor directly: exactly-once stage-2 execution
// under repeated skewed dispatches (own-pop vs. steal races on every deque
// slot), the empty-steal park/retry path (one slow publisher forces every
// other thread to drain the deques and park until its seals land), the
// degenerate inline dispatch, and the watchdog dump's per-thread deque
// cursors when a withheld seal wedges the claim loop. The TSan CI job runs
// this file (name matches its -R filter) — the deque's fences and the claim
// CAS are exactly what it exists to check.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <vector>

#include "src/sim/executor.hpp"

namespace pw::sim {
namespace {

// All-to-all dependency graph over `t` tasks: every stage-1 task feeds every
// stage-2 task, so nothing publishes before the last seal and the claim
// traffic all lands at once — the worst case for the claim CAS.
struct AllToAll {
  explicit AllToAll(int t) : out_beg(static_cast<std::size_t>(t) + 1) {
    for (int s = 0; s <= t; ++s)
      out_beg[static_cast<std::size_t>(s)] = s * t;
    for (int s = 0; s < t; ++s)
      for (int d = 0; d < t; ++d) out.push_back(d);
    dep_count.assign(static_cast<std::size_t>(t), t);
  }
  Executor::PipelineDeps deps() const {
    return {out_beg.data(), out.data(), dep_count.data()};
  }
  std::vector<int> out_beg, out, dep_count;
};

// Identity graph: task s feeds only stage-2 task s, so publishes trickle in
// one at a time and fast threads repeatedly find empty deques and park.
struct Identity {
  explicit Identity(int t) : out_beg(static_cast<std::size_t>(t) + 1) {
    for (int s = 0; s <= t; ++s) out_beg[static_cast<std::size_t>(s)] = s;
    for (int s = 0; s < t; ++s) out.push_back(s);
    dep_count.assign(static_cast<std::size_t>(t), 1);
  }
  Executor::PipelineDeps deps() const {
    return {out_beg.data(), out.data(), dep_count.data()};
  }
  std::vector<int> out_beg, out, dep_count;
};

struct ClaimCtx {
  std::vector<std::atomic<int>> runs;  // per stage-2 task
  std::vector<int> weights;            // size_of result per task
  int slow_task = -1;                  // stage-1 task that busy-waits
  explicit ClaimCtx(int t) : runs(static_cast<std::size_t>(t)) {
    for (int d = 0; d < t; ++d) weights.push_back((t - d) * 100);
  }
  void reset() {
    for (auto& r : runs) r.store(0, std::memory_order_relaxed);
  }
};

void stage1(void* ctx, int task) {
  auto* c = static_cast<ClaimCtx*>(ctx);
  if (task == c->slow_task) {
    // Long enough that on real cores the siblings drain their deques and
    // park before this thread's seals publish anything new.
    const auto until =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(2);
    while (std::chrono::steady_clock::now() < until) {
    }
  }
}

void stage2(void* ctx, int task) {
  static_cast<ClaimCtx*>(ctx)
      ->runs[static_cast<std::size_t>(task)]
      .fetch_add(1, std::memory_order_relaxed);
}

int size_of(void* ctx, int task) {
  return static_cast<ClaimCtx*>(ctx)
      ->weights[static_cast<std::size_t>(task)];
}

// Every deque slot is contended: the all-to-all graph publishes all tasks
// from whichever thread seals last, so the other threads must steal from a
// single victim deque while the victim pops its own bottom. Repeats shake
// the interleavings; each dispatch must run each stage-2 task exactly once
// (a double claim would double-count, a lost task would hang the dispatch).
TEST(WorkStealingClaims, ExactlyOnceUnderRepeatedSkewedDispatches) {
  const int kThreads = 4;
  Executor ex(kThreads, /*watchdog_ms=*/60000);
  AllToAll graph(kThreads);
  ClaimCtx ctx(kThreads);
  Executor::PipelineOpts opts;
  opts.size_of = size_of;
  for (int rep = 0; rep < 300; ++rep) {
    ctx.reset();
    ex.pipeline(kThreads, stage1, stage2, graph.deps(), &ctx, opts);
    for (int d = 0; d < kThreads; ++d)
      ASSERT_EQ(ctx.runs[static_cast<std::size_t>(d)].load(), 1)
          << "rep " << rep << " task " << d;
  }
}

// Fewer tasks than threads: the surplus threads skip stage 1 entirely and
// live in the claim loop — pure thieves racing the publishers' own pops.
TEST(WorkStealingClaims, SurplusThreadsAreThievesOnly) {
  const int kThreads = 4;
  const int kTasks = 2;
  Executor ex(kThreads, /*watchdog_ms=*/60000);
  AllToAll graph(kTasks);
  ClaimCtx ctx(kTasks);
  for (int rep = 0; rep < 300; ++rep) {
    ctx.reset();
    ex.pipeline(kTasks, stage1, stage2, graph.deps(), &ctx,
                Executor::PipelineOpts());
    for (int d = 0; d < kTasks; ++d)
      ASSERT_EQ(ctx.runs[static_cast<std::size_t>(d)].load(), 1)
          << "rep " << rep << " task " << d;
  }
}

// One slow stage-1 task under the identity graph: the fast threads run their
// own stage-2 task immediately (own-deque pop), find every deque empty, and
// park; the slow thread's eventual publish must wake a parked claimer, and
// the final claim's broadcast must release the rest. A missed wake here is a
// hang, which the armed watchdog converts into a loud failure.
TEST(WorkStealingClaims, EmptyStealParksUntilSlowPublisherSeals) {
  const int kThreads = 4;
  Executor ex(kThreads, /*watchdog_ms=*/60000);
  Identity graph(kThreads);
  ClaimCtx ctx(kThreads);
  ctx.slow_task = kThreads - 1;
  Executor::PipelineOpts opts;
  opts.size_of = size_of;
  for (int rep = 0; rep < 50; ++rep) {
    ctx.reset();
    ex.pipeline(kThreads, stage1, stage2, graph.deps(), &ctx, opts);
    for (int d = 0; d < kThreads; ++d)
      ASSERT_EQ(ctx.runs[static_cast<std::size_t>(d)].load(), 1)
          << "rep " << rep << " task " << d;
  }
}

// The single-thread executor and the single-task dispatch both take the
// inline path: no deques, no workers, stage 2 right after stage 1.
TEST(WorkStealingClaims, DegenerateDispatchesRunInline) {
  Executor ex1(1);
  AllToAll graph(1);
  ClaimCtx ctx(1);
  ex1.pipeline(1, stage1, stage2, graph.deps(), &ctx,
               Executor::PipelineOpts());
  EXPECT_EQ(ctx.runs[0].load(), 1);

  Executor ex4(4);
  ctx.reset();
  ex4.pipeline(1, stage1, stage2, graph.deps(), &ctx,
               Executor::PipelineOpts());
  EXPECT_EQ(ctx.runs[0].load(), 1);
}

#if defined(__SANITIZE_THREAD__)  // GCC
#define PW_UNDER_TSAN 1
#elif defined(__has_feature)  // Clang
#if __has_feature(thread_sanitizer)
#define PW_UNDER_TSAN 1
#endif
#endif

// A withheld seal starves stage-2 task 0 forever; the watchdog must abort
// with the per-thread claim-deque cursors in the dump (printed only by the
// §9 diagnostics) so a wedged claim loop is attributable to an empty — or
// clogged — deque at a glance.
[[maybe_unused]] void run_with_withheld_seal() {
  const int kThreads = 4;
  Executor ex(kThreads, /*watchdog_ms=*/1000);
  ex.debug_withhold_seal(1, 0);
  AllToAll graph(kThreads);
  ClaimCtx ctx(kThreads);
  ex.pipeline(kThreads, stage1, stage2, graph.deps(), &ctx,
              Executor::PipelineOpts());
}

TEST(WorkStealingClaimsDeath, WithheldSealDumpsClaimDequeCursors) {
#ifdef PW_UNDER_TSAN
  GTEST_SKIP() << "death test forks after threads exist; the watchdog dump "
                  "intentionally reads racing counters TSan would flag";
#else
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(run_with_withheld_seal(), "claim deque: top=");
#endif
}

}  // namespace
}  // namespace pw::sim
