// Eager per-bucket sealing of the pipelined round close (DESIGN.md §8).
//
// With ExecutionPolicy::eager_seal a destination shard's merge no longer
// waits for a sender shard's ENTIRE callback sweep: bucket (s → d) seals the
// moment the last active node of s with arcs into d has run, so on skewed
// rounds merges start while most callbacks are still running. Everything
// observable must stay BIT-IDENTICAL to the sequential engine across
// {1} ∪ {2,4} × {barriered, pipelined, eager-sealed, incremental}. These tests
// pin that under the adversarial shapes eager sealing introduces — a sender
// shard whose last feeder runs first vs last in the sweep, buckets with
// capacity but zero staged traffic, rounds whose traffic never crosses a
// shard boundary — plus the stamp/epoch wrap fallbacks and the hardened
// drain() protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <limits>
#include <vector>

#include "src/graph/generators.hpp"
#include "src/sim/engine.hpp"

namespace pw::sim {
namespace {

using graph::Graph;

// {2,4} threads × {barriered, shard-sealed pipelined, eager-sealed
// pipelined, incremental}; index 0 is the sequential reference.
constexpr ExecutionPolicy kAllPolicies[] = {
    {1, false, false, false},  //
    {2, false, false, false},
    {2, true, false, false},
    {2, true, true, false},
    {2, true, true, true},
    {4, false, false, false},
    {4, true, false, false},
    {4, true, true, false},
    {4, true, true, true}};

const char* label(const ExecutionPolicy& p) {
  if (p.num_threads == 1) return "sequential";
  if (!p.pipeline) return "barriered";
  if (!p.eager_seal) return "pipelined";
  return p.incremental ? "pipelined+eager+inc" : "pipelined+eager";
}

// Full per-node delivery trace of a flood driven by `fn`-agnostic rules:
// every (activation, from, port, payload) tuple each callback observes, in
// order. Collection is §7-conforming (node v's callback appends to trace[v]
// only).
template <class Drive>
std::vector<std::vector<std::uint64_t>> trace_of(const Graph& g,
                                                 ExecutionPolicy policy,
                                                 Drive&& drive) {
  Engine eng(g, policy);
  std::vector<std::vector<std::uint64_t>> trace(
      static_cast<std::size_t>(g.n()));
  drive(eng, trace);
  // Fold accounting into the comparison so totals are pinned too.
  trace.push_back({eng.rounds(), eng.messages()});
  return trace;
}

template <class Drive>
void expect_trace_equal_across_policies(const Graph& g, Drive&& drive) {
  const auto reference = trace_of(g, kAllPolicies[0], drive);
  for (const auto policy : kAllPolicies) {
    if (policy.num_threads == 1) continue;
    EXPECT_EQ(reference, trace_of(g, policy, drive))
        << label(policy) << " @" << policy.num_threads;
  }
}

// Flood driver: every node forwards on all ports the first time it is
// reached; callbacks record their whole inbox.
void flood_drive(Engine& eng, std::vector<std::vector<std::uint64_t>>& trace) {
  const auto& g = eng.graph();
  std::vector<char> seen(static_cast<std::size_t>(g.n()), 0);
  seen[0] = 1;
  eng.wake(0);
  eng.run([&](int v) {
    auto& t = trace[static_cast<std::size_t>(v)];
    t.push_back(0xa0a0a0a0ULL);
    for (const auto& in : eng.inbox(v)) {
      t.push_back(static_cast<std::uint64_t>(in.from) << 32 |
                  static_cast<std::uint32_t>(in.port));
      t.push_back(in.msg.a);
    }
    bool fresh = v == 0 && eng.inbox(v).empty();
    if (!seen[static_cast<std::size_t>(v)]) {
      seen[static_cast<std::size_t>(v)] = 1;
      fresh = true;
    }
    if (!fresh) return;
    for (int p = 0; p < g.degree(v); ++p)
      eng.send(v, p, Msg{7, static_cast<std::uint64_t>(v), 0, 0});
  });
}

// 64 nodes; under ExecutionPolicy{4} shards are {0..15}, {16..31}, {32..47},
// {48..63}. The top shard runs a long busy chain every round, and its ONLY
// arc into the bottom shard leaves from `feeder` — put the feeder at the
// front of the sweep (48) and the bucket (3 → 0) seals after the sweep's
// FIRST callback, at the back (63) and it seals after the LAST. Chains in
// the other shards give every bucket pair some capacity to exercise empty
// seals too.
Graph skewed_star(int feeder) {
  std::vector<graph::Edge> es;
  es.push_back({0, feeder, 1});
  for (int v = 0; v < 63; ++v) es.push_back({v, v + 1, 1});
  return Graph::from_edges(64, es);
}

// Wakes the whole top shard (48..63) every round so its sweep is long, while
// the hub (node 0) just records what arrives. The workload is defined purely
// in node-id terms, so it is identical under every shard layout.
void skewed_drive(Engine& eng, std::vector<std::vector<std::uint64_t>>& trace) {
  const auto& g = eng.graph();
  for (int v = 48; v < 64; ++v) eng.wake(v);
  std::vector<int> rounds_left(static_cast<std::size_t>(g.n()), 3);
  eng.run([&](int v) {
    auto& t = trace[static_cast<std::size_t>(v)];
    t.push_back(0xb1b1b1b1ULL);
    for (const auto& in : eng.inbox(v))
      t.push_back(static_cast<std::uint64_t>(in.from) << 32 |
                  static_cast<std::uint32_t>(in.port));
    if (v < 48) return;  // below the hot band: receive only
    if (--rounds_left[static_cast<std::size_t>(v)] <= 0) return;
    eng.wake(v);
    for (int p = 0; p < g.degree(v); ++p)
      eng.send(v, p, Msg{9, static_cast<std::uint64_t>(v), 0, 0});
  });
}

TEST(EngineSeal, SkewedStarLastFeederFirstInSweep) {
  expect_trace_equal_across_policies(skewed_star(48), skewed_drive);
}

TEST(EngineSeal, SkewedStarLastFeederLastInSweep) {
  expect_trace_equal_across_policies(skewed_star(63), skewed_drive);
}

TEST(EngineSeal, PlainFloodOnSkewedStar) {
  expect_trace_equal_across_policies(skewed_star(48), flood_drive);
  expect_trace_equal_across_policies(skewed_star(63), flood_drive);
}

// Buckets with CAPACITY but zero staged traffic: the path edges carry the
// flood while the long-range chords never carry a message — their buckets
// must seal (eagerly: at their feeder's seal point or up front) without a
// single staged entry, or the destination merges would deadlock.
TEST(EngineSeal, CapacityCarryingBucketWithZeroStagedMessages) {
  std::vector<graph::Edge> es;
  for (int v = 0; v < 63; ++v) es.push_back({v, v + 1, 1});
  // Chords spanning every shard pair under both the 2- and 4-shard layouts.
  es.push_back({0, 33, 1});
  es.push_back({10, 50, 1});
  es.push_back({20, 60, 1});
  es.push_back({5, 18, 1});
  const Graph g = Graph::from_edges(64, es);
  expect_trace_equal_across_policies(g, [](Engine& eng, auto& trace) {
    const auto& gg = eng.graph();
    std::vector<char> seen(static_cast<std::size_t>(gg.n()), 0);
    seen[0] = 1;
    eng.wake(0);
    eng.run([&](int v) {
      auto& t = trace[static_cast<std::size_t>(v)];
      t.push_back(0xc2c2c2c2ULL);
      for (const auto& in : eng.inbox(v))
        t.push_back(static_cast<std::uint64_t>(in.from) << 32 |
                    static_cast<std::uint32_t>(in.port));
      bool fresh = v == 0 && eng.inbox(v).empty();
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        fresh = true;
      }
      if (!fresh) return;
      // Forward only along path edges (|v - w| == 1): the chord ports stay
      // silent although their buckets have capacity.
      const auto arcs = gg.arcs(v);
      for (int p = 0; p < gg.degree(v); ++p) {
        const int w = arcs[static_cast<std::size_t>(p)].to;
        if (w == v + 1 || w == v - 1)
          eng.send(v, p, Msg{3, static_cast<std::uint64_t>(v), 0, 0});
      }
    });
  });
}

// A round whose traffic never crosses a shard boundary: nodes 5..10 poke
// their path neighbors (all of 4..11 sit inside the lowest shard under both
// the 2- and 4-shard layouts), so every cross-shard bucket is empty and
// every cross-shard seal fires before the sweeps' first callbacks.
TEST(EngineSeal, SelfEdgeOnlyRound) {
  const Graph g = graph::gen::path(64);
  expect_trace_equal_across_policies(g, [](Engine& eng, auto& trace) {
    const auto& gg = eng.graph();
    for (int v = 5; v <= 10; ++v) eng.wake(v);
    eng.run([&](int v) {
      auto& t = trace[static_cast<std::size_t>(v)];
      t.push_back(0xd3d3d3d3ULL);
      for (const auto& in : eng.inbox(v))
        t.push_back(static_cast<std::uint64_t>(in.from) << 32 |
                    static_cast<std::uint32_t>(in.port));
      if (v < 5 || v > 10 || !eng.inbox(v).empty()) return;
      for (int p = 0; p < gg.degree(v); ++p)
        eng.send(v, p, Msg{4, static_cast<std::uint64_t>(v), 0, 0});
    });
  });
}

// The once-per-2^32-rounds stamp wrap falls back to a barriered close for
// exactly one round mid-run; the seal metadata must be rebuilt by that
// round's merges so the eager-sealed close resumes cleanly. Forced via the
// debug_set_wrap_state test hook a few rounds before the wrap.
TEST(EngineSeal, ForcedRoundIdWrapMidRun) {
  Rng rng(21);
  const Graph g = graph::gen::random_connected(256, 768, rng);
  auto drive = [](Engine& eng, std::vector<std::vector<std::uint64_t>>& tr) {
    eng.debug_set_wrap_state(std::numeric_limits<std::uint32_t>::max() - 2, 5);
    flood_drive(eng, tr);
  };
  expect_trace_equal_across_policies(g, drive);
}

// Same for the once-per-2^40 wake-epoch wrap (clears every wake word): the
// positional seal metadata must survive the epoch restart.
TEST(EngineSeal, ForcedWakeEpochWrapMidRun) {
  Rng rng(22);
  const Graph g = graph::gen::random_connected(256, 768, rng);
  auto drive = [](Engine& eng, std::vector<std::vector<std::uint64_t>>& tr) {
    eng.debug_set_wrap_state(100, (1ULL << 40) - 3);
    flood_drive(eng, tr);
  };
  expect_trace_equal_across_policies(g, drive);
}

// Both wraps armed at once, crossing within a few rounds of each other.
TEST(EngineSeal, ForcedDoubleWrapMidRun) {
  Rng rng(23);
  const Graph g = graph::gen::random_connected(256, 768, rng);
  auto drive = [](Engine& eng, std::vector<std::vector<std::uint64_t>>& tr) {
    eng.debug_set_wrap_state(std::numeric_limits<std::uint32_t>::max() - 3,
                             (1ULL << 40) - 2);
    flood_drive(eng, tr);
  };
  expect_trace_equal_across_policies(g, drive);
}

// drain() between budgeted eager-sealed segments: the first segment exits
// with a full round of traffic delivered-but-unread and the whole hot band
// re-woken; drain must discard all of it, and the next begin_round() must
// see no leaked cursor state (begin_round PW_CHECKs the staging buckets are
// empty, and an empty round trip must move no messages).
TEST(EngineSeal, DrainBetweenEagerSegmentsLeaksNothing) {
  Rng rng(31);
  const Graph g = graph::gen::random_connected(96, 288, rng);
  Engine eng(g, ExecutionPolicy{4, true, true});

  for (int v = 0; v < g.n(); ++v) eng.wake(v);
  eng.run(
      [&](int v) {
        eng.wake(v);  // keep every shard hot past the budget
        for (int p = 0; p < g.degree(v); ++p)
          eng.send(v, p, Msg{66, 0xdead, 0, 0});
      },
      2);
  EXPECT_FALSE(eng.idle());
  eng.drain();
  EXPECT_TRUE(eng.idle());

  // No leaked cursors or actives: an empty round trip is truly empty.
  const auto snap = eng.snap();
  eng.begin_round();
  EXPECT_TRUE(eng.active_nodes().empty());
  eng.end_round();
  EXPECT_EQ(eng.since(snap).messages, 0u);

  // A clean probe phase on the drained engine matches a fresh engine.
  auto probe = [&](Engine& e) {
    std::atomic<std::uint64_t> received{0};
    e.wake(7);
    e.run([&](int v) {
      if (v == 7 && e.inbox(v).empty()) {
        for (int p = 0; p < g.degree(7); ++p)
          e.send(7, p, Msg{1, static_cast<std::uint64_t>(p), 0, 0});
        return;
      }
      for (const auto& in : e.inbox(v)) {
        EXPECT_EQ(in.msg.tag, 1) << "stale message leaked to node " << v;
        received.fetch_add(in.msg.a + 1);
      }
    });
    return received.load();
  };
  Engine fresh(g, ExecutionPolicy{4, true, true});
  const auto fresh_snap = fresh.snap();
  const auto drained_snap = eng.snap();
  const auto fresh_sum = probe(fresh);
  EXPECT_EQ(probe(eng), fresh_sum);
  EXPECT_EQ(eng.since(drained_snap).messages,
            fresh.since(fresh_snap).messages);
}

// drain() from INSIDE an open eager-sealed round must abort: sibling shards
// may still be sweeping and merge tasks in flight (§8), so discarding wake
// lists here would race with the merges writing them.
TEST(EngineSealDeath, DrainFromInsideEagerRoundAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        Graph g = graph::gen::path(64);
        Engine eng(g, ExecutionPolicy{4, true, true});
        eng.wake(40);
        eng.run([&](int) { eng.drain(); });
      },
      "inside an open round");
}

// The §7 cross-shard checks keep firing while eager merges overlap the
// sweep: a cross-shard send from an eager-sealed callback aborts exactly
// like it does under the other close modes.
TEST(EngineSealDeath, CrossShardSendFromEagerCallbackAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        Graph g = graph::gen::path(64);
        Engine eng(g, ExecutionPolicy{4, true, true});
        eng.wake(40);
        eng.run([&](int) { eng.send(1, 0, Msg{}); });
      },
      "outside its shard");
}

// A parallel callback may send only AS the node it was invoked on: a send
// on behalf of a SAME-SHARD sibling (here: node 41's callback sending as
// its neighbor 40) could land after the sibling's bucket sealed under the
// eager close — into a bucket a merge may already be scanning — so it
// aborts in every parallel mode (§7).
TEST(EngineSealDeath, SiblingProxySendFromParallelCallbackAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  for (const auto policy :
       {ExecutionPolicy{4, false, false}, ExecutionPolicy{4, true, false},
        ExecutionPolicy{4, true, true}}) {
    EXPECT_DEATH(
        {
          Graph g = graph::gen::path(64);
          Engine eng(g, policy);
          eng.wake(41);  // shard 2; neighbor 40 shares the shard
          eng.run([&](int v) {
            if (v == 41) eng.send(40, 0, Msg{});
          });
        },
        "only for the invoked node");
  }
}

}  // namespace
}  // namespace pw::sim
