// Pipelined round close (DESIGN.md §8): with ExecutionPolicy::pipeline the
// callback and merge phases of a round overlap — a destination shard merges
// as soon as its incoming traffic is complete, while unrelated shards still
// run callbacks. Everything observable must be BIT-IDENTICAL to both the
// barriered sharded engine (§7) and the sequential engine: these tests pin
// that under adversarial fan-in, self-rewake, mid-flight drains, and the
// checked §7 contract violations, which must still abort while merge-stage
// tasks are in flight.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdint>
#include <vector>

#include "src/graph/generators.hpp"
#include "src/sim/engine.hpp"

namespace pw::sim {
namespace {

using graph::Graph;

// All three pipelined granularities (§8): shard-sealed (a sender's buckets
// all seal when its sweep returns), eager-sealed (each bucket seals at its
// per-round seal point, mid-sweep), and incremental (merges additionally
// scatter each bucket as it seals). Identical observables, different
// schedules — most tests here sweep them all.
constexpr ExecutionPolicy kPipelined{4, true, false};
constexpr ExecutionPolicy kEager{4, true, true};
constexpr ExecutionPolicy kIncremental{4, true, true, true};
constexpr ExecutionPolicy kBarriered{4, false};

TEST(EnginePipeline, PolicySelectsThePipelinedClose) {
  Graph g = graph::gen::path(64);
  EXPECT_TRUE(Engine(g, kPipelined).pipelined());
  EXPECT_FALSE(Engine(g, kPipelined).eager_sealed());
  EXPECT_TRUE(Engine(g, kEager).pipelined());
  EXPECT_TRUE(Engine(g, kEager).eager_sealed());
  EXPECT_FALSE(Engine(g, kEager).incremental_merge());
  EXPECT_TRUE(Engine(g, kIncremental).eager_sealed());
  EXPECT_TRUE(Engine(g, kIncremental).incremental_merge());
  EXPECT_FALSE(Engine(g, kBarriered).pipelined());
  EXPECT_FALSE(Engine(g, kBarriered).eager_sealed());
  // Incremental requires the eager seal underneath; without it the flag is
  // inert, not a new mode.
  EXPECT_FALSE(Engine(g, ExecutionPolicy{4, true, false, true}).incremental_merge());
  // One shard has no phases to overlap: the flags degrade to sequential.
  EXPECT_FALSE(Engine(g, ExecutionPolicy{1, true}).pipelined());
  EXPECT_FALSE(Engine(g, ExecutionPolicy{1, true, true}).eager_sealed());
  EXPECT_FALSE(Engine(g, ExecutionPolicy{1, true, true, true}).incremental_merge());
}

// Full per-node delivery traces — every (activation, from, port, payload)
// tuple a callback observes, in order — must be identical to the sequential
// engine. Per-node collection is §7-conforming: node v's callback appends
// only to trace[v].
TEST(EnginePipeline, PerNodeDeliveryTraceMatchesSequential) {
  Rng rng(11);
  const Graph g = graph::gen::random_connected(512, 1536, rng);

  auto trace_with = [&](ExecutionPolicy policy) {
    Engine eng(g, policy);
    std::vector<std::vector<std::uint64_t>> trace(
        static_cast<std::size_t>(g.n()));
    std::vector<char> seen(static_cast<std::size_t>(g.n()), 0);
    seen[0] = 1;
    eng.wake(0);
    eng.run([&](int v) {
      auto& t = trace[static_cast<std::size_t>(v)];
      t.push_back(0xa0a0a0a0ULL);  // activation marker
      for (const auto& in : eng.inbox(v)) {
        t.push_back(static_cast<std::uint64_t>(in.from) << 32 |
                    static_cast<std::uint32_t>(in.port));
        t.push_back(in.msg.a);
      }
      bool fresh = v == 0 && eng.inbox(v).empty();
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        fresh = true;
      }
      if (!fresh) return;
      for (int p = 0; p < g.degree(v); ++p)
        eng.send(v, p, Msg{7, static_cast<std::uint64_t>(v), 0, 0});
    });
    return trace;
  };

  const auto reference = trace_with(ExecutionPolicy{1});
  EXPECT_EQ(reference, trace_with(kPipelined));
  EXPECT_EQ(reference, trace_with(kEager));
  EXPECT_EQ(reference, trace_with(kIncremental));
  EXPECT_EQ(reference, trace_with(kBarriered));
  EXPECT_EQ(reference, trace_with(ExecutionPolicy{2, true, false}));
  EXPECT_EQ(reference, trace_with(ExecutionPolicy{2, true, true}));
  EXPECT_EQ(reference, trace_with(ExecutionPolicy{2, true, true, true}));
}

// The hub of a star sits in shard 0 and its merge depends on every other
// shard's callbacks; the leaves' shards merge with a single-entry dependency
// column. The hub must still see one intact inbox in ascending sender order.
TEST(EnginePipeline, AdversarialFanInAcrossShards) {
  const Graph g = graph::gen::star(64);
  for (const auto policy : {kPipelined, kEager, kIncremental}) {
    Engine eng(g, policy);
    std::vector<std::uint64_t> hub_inbox;  // only node 0's callback writes this
    for (int v = 1; v < g.n(); ++v) eng.wake(v);
    eng.run([&](int v) {
      if (v == 0) {
        for (const auto& in : eng.inbox(v)) {
          EXPECT_EQ(in.msg.tag, 7);
          hub_inbox.push_back(in.msg.a);
        }
        return;
      }
      if (eng.inbox(v).empty())
        eng.send(v, 0, Msg{7, static_cast<std::uint64_t>(v), 0, 0});
    });
    ASSERT_EQ(hub_inbox.size(), 63u);
    for (std::size_t i = 0; i < hub_inbox.size(); ++i)
      EXPECT_EQ(hub_inbox[i], i + 1) << "ascending sender order broke at " << i;
  }
}

// Self-rewake plus neighbor traffic from inside pipelined callbacks: the
// rewaking nodes span all shards, so every round has both fresh wakes (from
// callbacks) and merged deliveries (from the overlapped stage) landing in
// the same wake epoch.
TEST(EnginePipeline, SelfRewakeWithTrafficAcrossModes) {
  const Graph g = graph::gen::path(64);
  auto totals = [&](ExecutionPolicy policy) {
    Engine eng(g, policy);
    const int probes[] = {0, 17, 33, 63};  // one per shard
    std::array<std::atomic<int>, 64> activations{};
    for (int v : probes) eng.wake(v);
    eng.run([&](int v) {
      const int k = activations[static_cast<std::size_t>(v)].fetch_add(1) + 1;
      bool probe = false;
      for (int p : probes) probe = probe || p == v;
      if (probe && k < 5) {
        eng.wake(v);                // self-rewake
        eng.send(v, 0, Msg{1, 0, 0, 0});  // plus a neighbor poke
      }
    });
    for (int v : probes)
      EXPECT_EQ(activations[static_cast<std::size_t>(v)].load(), 5) << v;
    return std::pair{eng.rounds(), eng.messages()};
  };
  const auto reference = totals(ExecutionPolicy{1});
  EXPECT_EQ(reference, totals(kPipelined));
  EXPECT_EQ(reference, totals(kEager));
  EXPECT_EQ(reference, totals(kIncremental));
  EXPECT_EQ(reference, totals(kBarriered));
}

// drain() between pipelined phases: a budgeted run() exits with poison
// traffic mid-flight in every shard's buckets-already-merged state; drain
// must discard all of it and the next phase must see only its own traffic.
TEST(EnginePipeline, DrainDiscardsMidFlightPipelinedTraffic) {
  Rng rng(9);
  const Graph g = graph::gen::random_connected(50, 150, rng);
  Engine eng(g, kPipelined);

  for (int v = 0; v < g.n(); ++v) eng.wake(v);
  eng.run(
      [&](int v) {
        for (int p = 0; p < g.degree(v); ++p) {
          // One poison message per arc per round; the stamp rule allows it
          // because each round is a fresh send.
          eng.send(v, p, Msg{66, 0xdead, 0, 0});
        }
      },
      2);  // exit with a full round of traffic still undelivered
  EXPECT_FALSE(eng.idle());
  eng.drain();
  EXPECT_TRUE(eng.idle());

  // Clean relay phase: only node 7's probe may be visible. The receipt
  // counter is shared across shards, so it must be atomic (§7 contract).
  eng.wake(7);
  std::atomic<int> received{0};
  eng.run([&](int v) {
    if (v == 7 && eng.inbox(v).empty()) {
      for (int p = 0; p < g.degree(7); ++p)
        eng.send(7, p, Msg{1, static_cast<std::uint64_t>(p), 0, 0});
      return;
    }
    for (const auto& in : eng.inbox(v)) {
      EXPECT_EQ(in.msg.tag, 1) << "stale message leaked to node " << v;
      EXPECT_EQ(in.from, 7);
      received.fetch_add(1);
    }
  });
  EXPECT_EQ(received.load(), g.degree(7));
  EXPECT_TRUE(eng.idle());
}

// Repeated phases on one pipelined engine: wake lists, bucket cursors, runs,
// and the dependency counters of the two-stage dispatch must all reset
// cleanly between rounds and phases.
TEST(EnginePipeline, PhasesRepeatIdentically) {
  Rng rng(5);
  const Graph g = graph::gen::random_connected(200, 500, rng);
  Engine eng(g, kPipelined);
  std::uint64_t first_phase_msgs = 0;
  for (int phase = 0; phase < 5; ++phase) {
    const auto snap = eng.snap();
    std::vector<char> seen(static_cast<std::size_t>(g.n()), 0);
    seen[static_cast<std::size_t>(phase)] = 1;
    eng.wake(phase);
    eng.run([&](int v) {
      bool fresh = v == phase && eng.inbox(v).empty();
      if (!seen[static_cast<std::size_t>(v)]) {
        seen[static_cast<std::size_t>(v)] = 1;
        fresh = true;
      }
      if (!fresh) return;
      for (int p = 0; p < g.degree(v); ++p) eng.send(v, p, Msg{});
    });
    for (int v = 0; v < g.n(); ++v) EXPECT_TRUE(seen[static_cast<std::size_t>(v)]);
    const auto stats = eng.since(snap);
    if (phase == 0) {
      first_phase_msgs = stats.messages;
    } else {
      EXPECT_EQ(stats.messages, first_phase_msgs) << "phase " << phase;
    }
    EXPECT_TRUE(eng.idle());
  }
}

// Degenerate shard shapes: more threads than nodes still pipelines over the
// few shards that exist.
TEST(EnginePipeline, MoreThreadsThanNodes) {
  const Graph g = graph::gen::path(3);
  Engine eng(g, ExecutionPolicy{16, true});
  eng.wake(0);
  std::atomic<int> deliveries{0};
  eng.run([&](int v) {
    if (v == 0 && eng.inbox(v).empty()) {
      eng.send(0, 0, Msg{7, 42, 0, 0});
      return;
    }
    for (const auto& in : eng.inbox(v)) {
      EXPECT_EQ(in.msg.tag, 7);
      deliveries.fetch_add(1);
    }
  });
  EXPECT_EQ(deliveries.load(), 1);
  EXPECT_EQ(eng.messages(), 1u);
}

// The §7 contract checks must keep firing while merge-stage tasks share the
// dispatch with callbacks: a cross-shard send from a pipelined callback
// aborts exactly like it does under the barriered dispatch. The whole engine
// lives inside EXPECT_DEATH so the worker pool spawns in the death-test
// child, not the forking parent.
TEST(EnginePipelineDeath, CrossShardSendFromPipelinedCallbackAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        Graph g = graph::gen::path(64);
        Engine eng(g, kPipelined);
        eng.wake(40);  // shard 2; its neighbor 39 lives in shard 2 as well,
                       // but sending AS node 1 (shard 0) is cross-shard
        eng.run([&](int) { eng.send(1, 0, Msg{}); });
      },
      "outside its shard");
}

// Cross-shard inbox READS abort too: under the pipelined close the other
// shard's delivery region may already be merging for the next round, so the
// read that was mere nondeterminism under the barriered close would be a
// silent data race (§7 contract, checked in DataPlane::inbox).
TEST(EnginePipelineDeath, CrossShardInboxReadFromPipelinedCallbackAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        Graph g = graph::gen::path(64);
        Engine eng(g, kPipelined);
        eng.wake(40);  // shard 2; node 1 lives in shard 0
        eng.run([&](int) { (void)eng.inbox(1).size(); });
      },
      "outside its shard");
}

// Accounting charges stay forbidden inside pipelined callbacks: the engine
// counters are global and the merge overlap makes the race window wider, not
// narrower (DESIGN.md §7).
TEST(EnginePipelineDeath, ChargeFromPipelinedCallbackAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  EXPECT_DEATH(
      {
        Graph g = graph::gen::path(64);
        Engine eng(g, kPipelined);
        eng.wake(0);
        eng.run([&](int) { eng.charge_messages(1); });
      },
      "shard-parallel callback");
}

}  // namespace
}  // namespace pw::sim
