#include <gtest/gtest.h>

#include <cmath>

#include "src/apps/domination.hpp"
#include "src/apps/mincut.hpp"
#include "src/apps/sssp.hpp"
#include "src/apps/verification.hpp"
#include "src/graph/dsu.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/properties.hpp"

namespace pw::apps {
namespace {

using graph::Graph;

// --- Verification (Corollary A.1) -------------------------------------------

TEST(Verification, ComponentLabelsMatchDsu) {
  Rng rng(101);
  Graph g = graph::gen::random_connected(100, 260, rng);
  // Random subgraph H.
  std::vector<char> h(g.m(), 0);
  for (int e = 0; e < g.m(); ++e) h[e] = rng.next_bool(0.4);

  sim::Engine eng(g);
  const auto res = h_component_labels(eng, h, {});

  graph::Dsu dsu(g.n());
  for (int e = 0; e < g.m(); ++e)
    if (h[e]) dsu.unite(g.edge(e).u, g.edge(e).v);
  for (int u = 0; u < g.n(); ++u)
    for (int v = 0; v < g.n(); ++v)
      EXPECT_EQ(res.label[u] == res.label[v], dsu.same(u, v));
  // Labels are the min id of the component.
  for (int v = 0; v < g.n(); ++v) EXPECT_LE(res.label[v], v);
}

TEST(Verification, SpanningTreeAcceptsTrueTree) {
  Rng rng(102);
  Graph g = graph::gen::random_connected(80, 200, rng);
  // Use a BFS tree of g as H.
  const auto dist = graph::bfs_distances(g, 0);
  std::vector<char> h(g.m(), 0);
  std::vector<char> has_parent(g.n(), 0);
  for (int e = 0; e < g.m(); ++e) {
    const auto& ed = g.edge(e);
    int child = -1;
    if (dist[ed.u] == dist[ed.v] + 1) child = ed.u;
    if (dist[ed.v] == dist[ed.u] + 1) child = ed.v;
    if (child >= 0 && !has_parent[child]) {
      has_parent[child] = 1;
      h[e] = 1;
    }
  }
  sim::Engine eng(g);
  EXPECT_TRUE(verify_spanning_tree(eng, h, {}).ok);

  // Remove one tree edge: no longer spanning.
  for (int e = 0; e < g.m(); ++e)
    if (h[e]) {
      h[e] = 0;
      break;
    }
  sim::Engine eng2(g);
  EXPECT_FALSE(verify_spanning_tree(eng2, h, {}).ok);
}

TEST(Verification, SpanningTreeRejectsCycleOfRightSize) {
  Graph g = graph::gen::cycle(12);
  std::vector<char> h(g.m(), 1);
  h[0] = 0;  // 11 edges on 12 nodes: a path -> a real spanning tree
  sim::Engine eng(g);
  EXPECT_TRUE(verify_spanning_tree(eng, h, {}).ok);
  h[0] = 1;
  h[5] = 0;
  h[7] = 0;  // 10 edges: disconnected
  sim::Engine eng2(g);
  EXPECT_FALSE(verify_spanning_tree(eng2, h, {}).ok);
}

TEST(Verification, CutDetection) {
  // Two cliques joined by a bridge: the bridge is a cut.
  Graph left = graph::gen::complete(6);
  Graph right = graph::gen::complete(6);
  std::vector<graph::Edge> edges = left.edges();
  for (const auto& e : right.edges()) edges.push_back({e.u + 6, e.v + 6, 1});
  edges.push_back({0, 6, 1});
  Graph g = Graph::from_edges(12, edges);

  std::vector<char> h(g.m(), 0);
  h[g.m() - 1] = 1;  // the bridge
  sim::Engine eng(g);
  EXPECT_TRUE(verify_cut(eng, h, {}).ok);

  std::vector<char> not_cut(g.m(), 0);
  not_cut[0] = 1;  // an intra-clique edge
  sim::Engine eng2(g);
  EXPECT_FALSE(verify_cut(eng2, not_cut, {}).ok);
}

TEST(Verification, STConnectivity) {
  Graph g = graph::gen::path(10);
  std::vector<char> h(g.m(), 1);
  h[4] = 0;  // split between nodes 4 and 5
  sim::Engine eng(g);
  EXPECT_TRUE(verify_s_t_connectivity(eng, h, 0, 4, {}).ok);
  sim::Engine eng2(g);
  EXPECT_FALSE(verify_s_t_connectivity(eng2, h, 0, 9, {}).ok);
}

// --- Domination (Corollaries A.2, A.3) ---------------------------------------

TEST(KDom, CoversWithinKAndSmall) {
  Rng rng(103);
  for (int k : {6, 12, 30}) {
    Graph g = graph::gen::grid(10, 30);
    sim::Engine eng(g);
    const auto res = k_dominating_set(eng, k, {});
    validate_k_domination(g, res.dominators, k);
    EXPECT_LE(static_cast<int>(res.dominators.size()), 6 * g.n() / k + 1)
        << "k=" << k;
  }
}

TEST(KDom, LargeKGivesFewDominators) {
  Graph g = graph::gen::path(120);
  sim::Engine eng(g);
  const auto res = k_dominating_set(eng, 60, {});
  validate_k_domination(g, res.dominators, 60);
  EXPECT_LE(static_cast<int>(res.dominators.size()), 13);
}

TEST(Cds, ValidOnRandomGraphs) {
  Rng rng(104);
  for (int trial = 0; trial < 3; ++trial) {
    Graph g = graph::gen::random_connected(90, 220, rng);
    sim::Engine eng(g);
    const auto res = connected_dominating_set(eng, {});
    validate_cds(g, res.in_cds);
    // The greedy reference is also valid.
    const auto ref = greedy_cds_reference(g);
    validate_cds(g, ref);
  }
}

TEST(Cds, ComponentAggregatesMatchReference) {
  Rng rng(105);
  Graph g = graph::gen::random_connected(80, 180, rng);
  std::vector<char> h(g.m(), 0);
  for (int e = 0; e < g.m(); ++e) h[e] = rng.next_bool(0.5);
  std::vector<std::uint64_t> values(g.n());
  for (auto& x : values) x = rng.next_below(5000);

  sim::Engine eng(g);
  const auto sums = component_sum(eng, h, values, {});
  graph::Dsu dsu(g.n());
  for (int e = 0; e < g.m(); ++e)
    if (h[e]) dsu.unite(g.edge(e).u, g.edge(e).v);
  std::vector<std::uint64_t> ref(g.n(), 0);
  for (int v = 0; v < g.n(); ++v) ref[dsu.find(v)] += values[v];
  for (int v = 0; v < g.n(); ++v) EXPECT_EQ(sums[v], ref[dsu.find(v)]);

  sim::Engine eng2(g);
  const auto top2 = component_topk(eng2, h, values, 2, {});
  for (int v = 0; v < g.n(); ++v) {
    // Top-1 is the component max.
    std::uint64_t best = 0;
    for (int u = 0; u < g.n(); ++u)
      if (dsu.same(u, v)) best = std::max(best, values[u]);
    ASSERT_FALSE(top2[v].empty());
    EXPECT_EQ(agg::pair_key(top2[v][0]), best);
    if (top2[v].size() > 1) {
      EXPECT_LE(agg::pair_key(top2[v][1]), agg::pair_key(top2[v][0]));
    }
  }
}

// --- Min-cut (Corollary 1.4) --------------------------------------------------

TEST(MinCut, StoerWagnerKnownValues) {
  // A cycle has min cut 2.
  EXPECT_EQ(stoer_wagner_min_cut(graph::gen::cycle(9)), 2);
  // Two triangles joined by one edge: min cut 1.
  Graph g = Graph::from_edges(
      6, {{0, 1, 1}, {1, 2, 1}, {0, 2, 1}, {3, 4, 1}, {4, 5, 1}, {3, 5, 1}, {2, 3, 1}});
  EXPECT_EQ(stoer_wagner_min_cut(g), 1);
  // Complete graph K5: min cut 4.
  EXPECT_EQ(stoer_wagner_min_cut(graph::gen::complete(5)), 4);
}

TEST(MinCut, ApproxFindsPlantedCut) {
  Rng rng(106);
  // Two dense clusters connected by 2 light edges: planted min cut = 2.
  std::vector<graph::Edge> edges;
  const int half = 14;
  for (int u = 0; u < half; ++u)
    for (int v = u + 1; v < half; ++v)
      if (rng.next_bool(0.6)) {
        edges.push_back({u, v, 4});
        edges.push_back({u + half, v + half, 4});
      }
  edges.push_back({0, half, 1});
  edges.push_back({1, half + 1, 1});
  Graph g = Graph::from_edges(2 * half, edges);
  const auto exact = stoer_wagner_min_cut(g);
  ASSERT_EQ(exact, 2);

  sim::Engine eng(g);
  core::PaSolverConfig cfg;
  cfg.seed = 1234;
  const auto res = approx_min_cut(eng, 0.5, cfg);
  EXPECT_EQ(cut_weight(g, res.side), res.cut_value);
  EXPECT_LE(res.cut_value, static_cast<std::int64_t>((1 + 0.5) * exact));
  // The side must be a nontrivial vertex split.
  int inside = 0;
  for (char c : res.side) inside += c;
  EXPECT_GT(inside, 0);
  EXPECT_LT(inside, g.n());
}

TEST(MinCut, ApproxWithinFactorOnRandomGraphs) {
  Rng rng(107);
  for (int trial = 0; trial < 2; ++trial) {
    Graph g = graph::gen::with_random_weights(
        graph::gen::random_connected(36, 90, rng), 8, rng);
    const auto exact = stoer_wagner_min_cut(g);
    sim::Engine eng(g);
    core::PaSolverConfig cfg;
    cfg.seed = 5000 + trial;
    const auto res = approx_min_cut(eng, 0.34, cfg);
    EXPECT_GE(res.cut_value, exact);  // any cut upper-bounds the minimum
    EXPECT_LE(static_cast<double>(res.cut_value), 1.5 * exact);
  }
}

// --- SSSP (Corollary 1.5) ------------------------------------------------------

TEST(Sssp, UpperBoundsExactDistances) {
  Rng rng(108);
  for (int trial = 0; trial < 3; ++trial) {
    Graph g = graph::gen::with_random_weights(
        graph::gen::random_connected(100, 250, rng), 40, rng);
    sim::Engine eng(g);
    const auto res = approx_sssp(eng, 0, 0.25, {});
    const auto exact = graph::dijkstra(g, 0);
    for (int v = 0; v < g.n(); ++v) {
      EXPECT_GE(res.dist[v], exact[v]) << v;  // never underestimates
      EXPECT_LT(res.dist[v], (1LL << 62));    // everything reached
    }
  }
}

TEST(Sssp, SmallerBetaTightensStretch) {
  Rng rng(109);
  Graph g = graph::gen::with_random_weights(graph::gen::grid(12, 12), 20, rng);
  const auto exact = graph::dijkstra(g, 0);

  auto stretch_at = [&](double beta) {
    sim::Engine eng(g);
    const auto res = approx_sssp(eng, 0, beta, {});
    return measure_stretch(exact, res.dist);
  };
  const auto coarse = stretch_at(0.5);
  const auto fine = stretch_at(0.1);
  EXPECT_LE(fine.mean_stretch, coarse.mean_stretch + 1e-9);
  EXPECT_GE(coarse.max_stretch, 1.0);
}

TEST(Sssp, UnitWeightsNearExactWithSmallBeta) {
  Rng rng(110);
  Graph g = graph::gen::random_connected(120, 300, rng);
  sim::Engine eng(g);
  const auto res = approx_sssp(eng, 5, 0.1, {});
  const auto exact = graph::dijkstra(g, 5);
  const auto s = measure_stretch(exact, res.dist);
  EXPECT_LE(s.max_stretch, 4.0);
}

}  // namespace
}  // namespace pw::apps
