#include <gtest/gtest.h>

#include <cmath>

#include "src/core/solver.hpp"
#include "src/tree/bfs.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/properties.hpp"

namespace pw::core {
namespace {

using graph::Graph;
using graph::Partition;

std::vector<std::uint64_t> reference_pa(const Partition& p, const Agg& agg,
                                        const std::vector<std::uint64_t>& values) {
  std::vector<std::uint64_t> out(p.num_parts, agg.identity);
  for (std::size_t v = 0; v < values.size(); ++v)
    out[p.part_of[v]] = agg(out[p.part_of[v]], values[v]);
  return out;
}

void expect_solver_correct(const Graph& g, Partition p, PaStrategy strategy,
                           std::uint64_t seed) {
  p.elect_min_id_leaders();
  sim::Engine eng(g);
  PaSolverConfig cfg;
  cfg.strategy = strategy;
  cfg.seed = seed;
  PaSolver solver(eng, cfg);
  solver.set_partition(p);

  Rng rng(seed ^ 1);
  std::vector<std::uint64_t> values(g.n());
  for (auto& x : values) x = rng.next_below(1u << 16);

  for (const Agg& agg : {agg::min(), agg::sum()}) {
    const auto res = solver.aggregate(agg, values);
    const auto ref = reference_pa(p, agg, values);
    for (int i = 0; i < p.num_parts; ++i) EXPECT_EQ(res.part_value[i], ref[i]);
    for (int v = 0; v < g.n(); ++v)
      EXPECT_EQ(res.node_value[v], ref[p.part_of[v]]);
  }
}

TEST(CoreFast, ClaimRespectsCongestionCap) {
  Graph g = graph::gen::grid(8, 25);
  Partition p = graph::grid_row_partition(8, 25);
  p.elect_min_id_leaders();
  sim::Engine eng(g);
  Rng rng(51);
  const auto t = tree::build_bfs_tree(eng, 0);
  const auto div = shortcut::build_subpart_division_random(eng, p, 31, rng);
  std::vector<char> all(p.num_parts, 1);
  for (int cap : {1, 2, 4}) {
    const auto sc = corefast_claim(eng, p, div, t, all, cap);
    EXPECT_LE(shortcut::congestion(sc), cap);
    shortcut::validate_shortcut(g, t, p, sc);
  }
}

TEST(CoreFast, HighCapMergesEachPartIntoOneBlock) {
  Graph g = graph::gen::grid(6, 30);
  Partition p = graph::grid_row_partition(6, 30);
  p.elect_min_id_leaders();
  sim::Engine eng(g);
  Rng rng(52);
  const auto t = tree::build_bfs_tree(eng, 0);
  const auto div = shortcut::build_subpart_division_random(eng, p, 35, rng);
  std::vector<char> all(p.num_parts, 1);
  // Cap >= number of parts: no edge ever breaks; all claims of a part merge
  // on the way to the root of T, leaving exactly one block per part.
  const auto sc = corefast_claim(eng, p, div, t, all, p.num_parts);
  const auto blocks = shortcut::blocks_per_part(g, t, p, sc);
  for (int i = 0; i < p.num_parts; ++i) EXPECT_LE(blocks[i], 1) << i;
}

TEST(CoreFast, BuildFreezesEveryPart) {
  Rng rng(53);
  Graph g = graph::gen::random_connected(200, 500, rng);
  Partition p = graph::random_bfs_partition(g, 10, rng);
  p.elect_min_id_leaders();
  sim::Engine eng(g);
  const auto t = tree::build_bfs_tree(eng, 0);
  const int D = std::max(1, t.height());
  const auto div = shortcut::build_subpart_division_random(eng, p, D, rng);
  CoreFastConfig cc;
  cc.congestion_cap = 16;
  cc.block_target = 16;
  cc.seed = 99;
  const auto res = build_shortcut_random(eng, p, div, t, cc);
  EXPECT_TRUE(res.all_frozen());
  shortcut::validate_shortcut(g, t, p, res.sc);
  // Accumulated congestion stays within iterations * cap.
  EXPECT_LE(shortcut::congestion(res.sc),
            cc.congestion_cap * (2 * static_cast<int>(std::log2(g.n())) + 4));
  // Frozen parts truly meet the 3b target.
  const auto blocks = shortcut::blocks_per_part(g, t, p, res.sc);
  for (int i = 0; i < p.num_parts; ++i)
    EXPECT_LE(blocks[i], 3 * cc.block_target);
}

TEST(CoreFast, SkipPartsReceiveNothing) {
  Graph g = graph::gen::grid(4, 20);
  Partition p = graph::grid_row_partition(4, 20);
  p.elect_min_id_leaders();
  sim::Engine eng(g);
  Rng rng(54);
  const auto t = tree::build_bfs_tree(eng, 0);
  const auto div = shortcut::build_subpart_division_random(eng, p, 22, rng);
  CoreFastConfig cc;
  cc.congestion_cap = 8;
  cc.block_target = 8;
  cc.skip_parts = {1, 0, 1, 0};
  const auto res = build_shortcut_random(eng, p, div, t, cc);
  for (int v = 0; v < g.n(); ++v)
    for (int part : res.sc.parts_on[v]) {
      EXPECT_NE(part, 0);
      EXPECT_NE(part, 2);
    }
  EXPECT_FALSE(res.part_frozen[0]);
  EXPECT_TRUE(res.part_frozen[1]);
}

TEST(Solver, CorrectAcrossStrategiesAndGraphs) {
  Rng rng(55);
  expect_solver_correct(graph::gen::grid(6, 25), graph::grid_row_partition(6, 25),
                        PaStrategy::Ours, 501);
  expect_solver_correct(graph::gen::grid(6, 25), graph::grid_row_partition(6, 25),
                        PaStrategy::NoShortcut, 502);
  expect_solver_correct(graph::gen::grid(6, 25), graph::grid_row_partition(6, 25),
                        PaStrategy::NoSubparts, 503);
  expect_solver_correct(graph::gen::apex_grid(6, 20),
                        graph::apex_grid_row_partition(6, 20), PaStrategy::Ours,
                        504);
  Graph g = graph::gen::random_connected(180, 420, rng);
  expect_solver_correct(g, graph::random_bfs_partition(g, 14, rng),
                        PaStrategy::Ours, 505);
}

TEST(Solver, DeterministicModeIsReproducible) {
  Graph g = graph::gen::grid(5, 16);
  Partition p = graph::grid_row_partition(5, 16);
  p.elect_min_id_leaders();
  std::vector<std::uint64_t> values(g.n());
  for (int v = 0; v < g.n(); ++v) values[v] = (v * 37) % 101;

  auto run = [&](std::uint64_t seed) {
    sim::Engine eng(g);
    PaSolverConfig cfg;
    cfg.mode = PaMode::Deterministic;
    cfg.seed = seed;
    PaSolver solver(eng, cfg);
    solver.set_partition(p);
    const auto res = solver.aggregate(agg::sum(), values);
    return std::pair{res.part_value, eng.messages()};
  };
  // Deterministic pipeline: identical traffic for any seed would be ideal,
  // but the randomized division is still seeded; same seed => same run.
  EXPECT_EQ(run(7), run(7));
}

TEST(Solver, OursBeatsNoShortcutOnRoundsForLongParts) {
  // A shallow apex grid: D ~ depth is tiny (every column reaches the apex
  // within `depth` hops) while rows — the parts — stay `width` long.
  // Without shortcuts PA pays ~3x the part diameter in rounds; with them it
  // pays Õ(bD + c).
  const int depth = 6, width = 200;
  Graph g = graph::gen::apex_grid(depth, width);
  Partition p = graph::apex_grid_row_partition(depth, width);
  p.elect_min_id_leaders();
  std::vector<std::uint64_t> values(g.n(), 1);

  auto rounds_of = [&](PaStrategy s) {
    sim::Engine eng(g);
    PaSolverConfig cfg;
    cfg.strategy = s;
    cfg.seed = 77;
    PaSolver solver(eng, cfg);
    solver.set_partition(p);
    return solver.aggregate(agg::sum(), values).stats.rounds;
  };
  const auto ours = rounds_of(PaStrategy::Ours);
  const auto no_shortcut = rounds_of(PaStrategy::NoShortcut);
  EXPECT_LT(ours, no_shortcut);
}

TEST(Solver, StructuresExposedAndValid) {
  Graph g = graph::gen::grid(7, 20);
  Partition p = graph::grid_row_partition(7, 20);
  p.elect_min_id_leaders();
  sim::Engine eng(g);
  PaSolver solver(eng, {});
  solver.set_partition(p);
  const auto& st = solver.structures();
  tree::validate_forest(g, st.t);
  shortcut::validate_subpart_division(g, p, st.div, st.diameter_bound);
  shortcut::validate_shortcut(g, st.t, p, st.sc);
  EXPECT_GE(st.final_guess, 1);
  for (int i = 0; i < p.num_parts; ++i) EXPECT_GE(st.frozen_at_guess[i], 1);
}


TEST(CoreFast, BackflowAnnotationMatchesCentralRecomputation) {
  // The distributed root-depth backflow must agree with what a central walk
  // of the block structure computes (the Lemma 4.2 scheduling keys).
  Rng rng(56);
  Graph g = graph::gen::random_connected(220, 520, rng);
  Partition p = graph::random_bfs_partition(g, 12, rng);
  p.elect_min_id_leaders();
  sim::Engine eng(g);
  const auto t = tree::build_bfs_tree(eng, 0);
  const auto div = shortcut::build_subpart_division_random(
      eng, p, std::max(1, t.height()), rng);
  std::vector<char> all(p.num_parts, 1);
  for (int cap : {2, 6}) {
    const auto sc = corefast_claim(eng, p, div, t, all, cap);
    auto recomputed = sc;
    shortcut::annotate_block_roots(g, t, recomputed);
    EXPECT_EQ(sc.block_root_depth_on, recomputed.block_root_depth_on)
        << "cap=" << cap;
  }
}

TEST(Solver, NoSubpartsStillMeetsBlockTargets) {
  Graph g = graph::gen::grid(6, 24);
  Partition p = graph::grid_row_partition(6, 24);
  p.elect_min_id_leaders();
  sim::Engine eng(g);
  PaSolverConfig cfg;
  cfg.strategy = PaStrategy::NoSubparts;
  PaSolver solver(eng, cfg);
  solver.set_partition(p);
  const auto& st = solver.structures();
  shortcut::validate_shortcut(g, st.t, p, st.sc);
  const auto blocks = shortcut::blocks_per_part(g, st.t, p, st.sc);
  for (int i = 0; i < p.num_parts; ++i)
    EXPECT_LE(blocks[i], 3 * std::max(1, st.frozen_at_guess[i]));
}

}  // namespace
}  // namespace pw::core
