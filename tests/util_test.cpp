#include <gtest/gtest.h>

#include <set>

#include "src/util/agg.hpp"
#include "src/util/rng.hpp"
#include "src/util/table.hpp"

namespace pw {
namespace {

TEST(Rng, DeterministicPerSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    const auto x = a.next_u64();
    EXPECT_EQ(x, b.next_u64());
  }
  bool all_equal = true;
  Rng a2(123);
  for (int i = 0; i < 10; ++i) all_equal = all_equal && a2.next_u64() == c.next_u64();
  EXPECT_FALSE(all_equal);
}

TEST(Rng, BoundsRespected) {
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
    const auto x = rng.next_in(-5, 9);
    EXPECT_GE(x, -5);
    EXPECT_LE(x, 9);
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, NextBelowCoversRange) {
  Rng rng(6);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.next_below(8));
  EXPECT_EQ(seen.size(), 8u);
}

TEST(Rng, BernoulliRoughlyCalibrated) {
  Rng rng(7);
  int hits = 0;
  const int trials = 20000;
  for (int i = 0; i < trials; ++i) hits += rng.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / trials, 0.3, 0.02);
}

TEST(Rng, ForkDiverges) {
  Rng parent(9);
  Rng child = parent.fork();
  int agree = 0;
  for (int i = 0; i < 64; ++i)
    agree += parent.next_u64() == child.next_u64() ? 1 : 0;
  EXPECT_LT(agree, 3);
}

TEST(Agg, IdentitiesAreNeutral) {
  Rng rng(11);
  for (const Agg& a : {agg::min(), agg::max(), agg::sum(), agg::bit_or(),
                       agg::bit_and()}) {
    for (int i = 0; i < 50; ++i) {
      const std::uint64_t x = rng.next_u64();
      EXPECT_EQ(a(a.identity, x), x) << a.name;
      EXPECT_EQ(a(x, a.identity), x) << a.name;
    }
  }
}

TEST(Agg, CommutativeAssociative) {
  Rng rng(12);
  for (const Agg& a : {agg::min(), agg::max(), agg::bit_or(), agg::bit_and()}) {
    for (int i = 0; i < 100; ++i) {
      const std::uint64_t x = rng.next_u64(), y = rng.next_u64(),
                          z = rng.next_u64();
      EXPECT_EQ(a(x, y), a(y, x)) << a.name;
      EXPECT_EQ(a(a(x, y), z), a(x, a(y, z))) << a.name;
    }
  }
}

TEST(Agg, PackPairOrdersByKeyThenValue) {
  EXPECT_LT(agg::pack_pair(1, 999), agg::pack_pair(2, 0));
  EXPECT_LT(agg::pack_pair(5, 3), agg::pack_pair(5, 4));
  EXPECT_EQ(agg::pair_key(agg::pack_pair(1234, 777)), 1234u);
  EXPECT_EQ(agg::pair_value(agg::pack_pair(1234, 777)), 777u);
  // Min over packs picks the lexicographically smallest (key, value).
  const Agg m = agg::min();
  EXPECT_EQ(m(agg::pack_pair(3, 9), agg::pack_pair(2, 1)), agg::pack_pair(2, 1));
}

TEST(Table, AlignsColumnsAndRules) {
  Table t({"a", "long_header", "c"});
  t.add_row({"1", "2", "3"});
  t.add_row({"wide-cell", "x", ""});
  const std::string s = t.to_string("title");
  EXPECT_NE(s.find("== title =="), std::string::npos);
  EXPECT_NE(s.find("long_header"), std::string::npos);
  // Every line between header and rows has the same width prefix structure:
  // the rule line is dashes only.
  EXPECT_NE(s.find("---"), std::string::npos);
}

TEST(Table, ShortRowsPadded) {
  Table t({"x", "y"});
  t.add_row({"only-x"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("only-x"), std::string::npos);
}

TEST(Table, NumberFormatting) {
  EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
  EXPECT_EQ(Table::fmt(std::uint64_t{42}), "42");
  EXPECT_EQ(Table::fmt(std::int64_t{-7}), "-7");
  EXPECT_EQ(Table::fmt(0), "0");
}

}  // namespace
}  // namespace pw
