// Golden determinism tests for the CONGEST engine.
//
// The engine's contract is that round/message accounting and per-round
// active-node order are pure functions of (graph, algorithm, seed) — never of
// the engine's internal data layout. These goldens were captured from the
// original vector-of-vectors engine; the flat-arena engine (and any future
// layout) must reproduce them bit-for-bit. A failure here means a rewrite
// changed SEMANTICS, not constants.
//
// Families are the Appendix-C instances (bench/common.hpp) at reduced sizes;
// workloads are BFS-tree construction, Borůvka-over-PA MST, and leaderless
// part-wise aggregation (Algorithm 9).
#include <gtest/gtest.h>

#include <cinttypes>

#include "bench/common.hpp"
#include "src/apps/mst.hpp"
#include "src/core/noleader.hpp"

namespace pw::bench {
namespace {

struct Golden {
  const char* family;
  std::uint64_t bfs_rounds, bfs_messages;
  std::uint64_t mst_rounds, mst_messages;
  std::uint64_t nl_rounds, nl_messages;
};

// Captured from the seed engine (commit 2a083dd) with the instances below.
constexpr Golden kGolden[] = {
    {"general(GNM)", 8, 3072, 183, 75399, 9029, 1342376},
    {"planar(grid)", 32, 960, 571, 26513, 2744, 127153},
    {"genus1(torus)", 14, 576, 282, 15174, 2075, 76708},
    {"treewidth(k-tree,k=3)", 6, 2292, 147, 54860, 2162, 338558},
    {"pathwidth(caterpillar)", 130, 766, 2622, 25196, 2405, 118062},
};

std::vector<Instance> instances() {
  std::vector<Instance> out;
  {
    Rng rng(43);
    out.push_back(general_instance(512, rng));
  }
  out.push_back(planar_instance(16));
  {
    Rng rng(44);
    out.push_back(genus_instance(12, rng));
  }
  {
    Rng rng(45);
    out.push_back(treewidth_instance(384, 3, rng));
  }
  {
    Rng rng(46);
    out.push_back(pathwidth_instance(128, 2, rng));
  }
  return out;
}

// Every case runs under the sequential engine AND the sharded parallel one,
// with the end-of-round merge barriered (DESIGN.md §7), pipelined into the
// callback phase at shard granularity, pipelined with the eager per-bucket
// seal, and with the incremental per-bucket scatter (§8): parallelism lives
// below the accounting layer, so every policy must reproduce the goldens
// bit-for-bit.
constexpr sim::ExecutionPolicy kPolicies[] = {
    {1, false, false, false},  //
    {2, false, false, false},
    {2, true, false, false},
    {2, true, true, false},
    {2, true, true, true},
    {4, false, false, false},
    {4, true, false, false},
    {4, true, true, false},
    {4, true, true, true}};

const char* mode_suffix(const sim::ExecutionPolicy& p) {
  return !p.pipeline      ? ""
         : !p.eager_seal  ? "+pipe"
         : !p.incremental ? "+pipe+eager"
                          : "+pipe+eager+inc";
}

// The manual-round-loop traces below always close rounds through the
// barriered end_round() (the pipelined overlap only applies to run(), §8),
// so they sweep thread counts alone.
constexpr int kThreadCounts[] = {1, 2, 4};

sim::PhaseStats run_bfs(const Instance& inst, sim::ExecutionPolicy policy) {
  sim::Engine eng(inst.g, policy);
  const auto snap = eng.snap();
  tree::build_bfs_tree(eng, 0);
  return eng.since(snap);
}

sim::PhaseStats run_mst(const Instance& inst, sim::ExecutionPolicy policy) {
  sim::Engine eng(inst.g, policy);
  core::PaSolverConfig cfg;
  cfg.seed = 17;
  const auto snap = eng.snap();
  apps::boruvka_mst(eng, cfg);
  return eng.since(snap);
}

sim::PhaseStats run_noleader(const Instance& inst, sim::ExecutionPolicy policy) {
  sim::Engine eng(inst.g, policy);
  core::PaSolverConfig cfg;
  cfg.seed = 17;
  Rng rng(7);
  std::vector<std::uint64_t> values(static_cast<std::size_t>(inst.g.n()));
  for (auto& x : values) x = rng.next_below(1u << 20);
  const auto snap = eng.snap();
  core::pa_noleader(eng, inst.p, agg::min(), values, cfg);
  return eng.since(snap);
}

TEST(EngineDeterminism, GoldenCountsPerFamilyAtEveryThreadCount) {
  const auto insts = instances();
  ASSERT_EQ(std::size(kGolden), insts.size());
  for (std::size_t i = 0; i < insts.size(); ++i) {
    const auto& inst = insts[i];
    ASSERT_EQ(std::string(kGolden[i].family), inst.name);
    for (const auto policy : kPolicies) {
      const int threads = policy.num_threads;
      const auto bfs = run_bfs(inst, policy);
      const auto mst = run_mst(inst, policy);
      const auto nl = run_noleader(inst, policy);
      if (threads == 1)
        std::printf("GOLDEN {\"%s\", %" PRIu64 ", %" PRIu64 ", %" PRIu64
                    ", %" PRIu64 ", %" PRIu64 ", %" PRIu64 "},\n",
                    inst.name.c_str(), bfs.rounds, bfs.messages, mst.rounds,
                    mst.messages, nl.rounds, nl.messages);
      EXPECT_EQ(bfs.rounds, kGolden[i].bfs_rounds)
          << inst.name << " @" << threads << mode_suffix(policy);
      EXPECT_EQ(bfs.messages, kGolden[i].bfs_messages)
          << inst.name << " @" << threads << mode_suffix(policy);
      EXPECT_EQ(mst.rounds, kGolden[i].mst_rounds)
          << inst.name << " @" << threads << mode_suffix(policy);
      EXPECT_EQ(mst.messages, kGolden[i].mst_messages)
          << inst.name << " @" << threads << mode_suffix(policy);
      EXPECT_EQ(nl.rounds, kGolden[i].nl_rounds)
          << inst.name << " @" << threads << mode_suffix(policy);
      EXPECT_EQ(nl.messages, kGolden[i].nl_messages)
          << inst.name << " @" << threads << mode_suffix(policy);
    }
  }
}

// The per-round active-node order (not just the totals) must survive any
// engine-internal layout change: algorithms iterate active_nodes() and their
// behavior — hence all the counts above — depends on this order.
TEST(EngineDeterminism, GoldenActiveOrderTrace) {
  Rng rng(43);
  const auto inst = general_instance(512, rng);
  for (const int threads : kThreadCounts) {
    sim::Engine eng(inst.g, sim::ExecutionPolicy{threads});
    std::vector<char> seen(static_cast<std::size_t>(inst.g.n()), 0);
    seen[0] = 1;
    eng.wake(0);
    std::uint64_t hash = 1469598103934665603ULL;  // FNV-1a
    auto mix = [&hash](std::uint64_t x) {
      hash = (hash ^ x) * 1099511628211ULL;
    };
    while (!eng.idle()) {
      eng.begin_round();
      for (const int v : eng.active_nodes()) {
        mix(static_cast<std::uint64_t>(v));
        bool fresh = v == 0 && eng.inbox(v).empty();
        if (!seen[v]) {
          seen[v] = 1;
          fresh = true;
        }
        if (fresh)
          for (int p = 0; p < inst.g.degree(v); ++p) eng.send(v, p, sim::Msg{});
      }
      eng.end_round();
      mix(0xffffffffffffffffULL);  // round separator
    }
    if (threads == 1)
      std::printf("GOLDEN trace hash = 0x%" PRIx64 "\n", hash);
    EXPECT_EQ(hash, 0x9a74ccc4f5e6c116ULL) << "threads=" << threads;
  }
}

// Full DELIVERY traces — every (active node, inbox entry) tuple in order,
// including payloads and receiver ports — must be identical at every thread
// count, not just the counts and the active order the goldens above pin.
// BFS-tree construction exercises the shard-parallel run() callback path;
// the trace is taken by a manual round loop re-reading what run() would see.
TEST(EngineDeterminism, GoldenDeliveryTraceIdenticalAcrossThreadCounts) {
  Rng rng(43);
  const auto inst = general_instance(512, rng);

  auto delivery_trace = [&](int threads) {
    sim::Engine eng(inst.g, sim::ExecutionPolicy{threads});
    std::vector<std::uint64_t> trace;
    std::vector<char> seen(static_cast<std::size_t>(inst.g.n()), 0);
    seen[0] = 1;
    eng.wake(0);
    while (!eng.idle()) {
      eng.begin_round();
      for (const int v : eng.active_nodes()) {
        trace.push_back(static_cast<std::uint64_t>(v) << 32 | 0xa0a0a0a0u);
        for (const auto& in : eng.inbox(v)) {
          trace.push_back(static_cast<std::uint64_t>(in.from) << 32 |
                          static_cast<std::uint32_t>(in.port));
          trace.push_back(in.msg.tag);
          trace.push_back(in.msg.a);
        }
        bool fresh = v == 0 && eng.inbox(v).empty();
        if (!seen[v]) {
          seen[v] = 1;
          fresh = true;
        }
        if (!fresh) continue;
        for (int p = 0; p < inst.g.degree(v); ++p)
          eng.send(v, p,
                   sim::Msg{7, static_cast<std::uint64_t>(v), 0, 0});
      }
      eng.end_round();
      trace.push_back(~0ULL);  // round separator
    }
    return trace;
  };

  const auto t1 = delivery_trace(1);
  ASSERT_FALSE(t1.empty());
  EXPECT_EQ(t1, delivery_trace(2));
  EXPECT_EQ(t1, delivery_trace(4));
}

}  // namespace
}  // namespace pw::bench
