// Differential trace fuzzing of the engine's execution-mode matrix (§7–§10).
//
// The determinism suites pin hand-picked workloads; this harness pins the
// space between them. Each iteration derives — from one seed — a random
// graph (family × size) and a random callback program (which ports each
// activation sends on, payloads, self-wakes, and a mid-run drain segment),
// then replays the identical program on the sequential engine and on every
// parallel configuration: {2,4} threads × {barriered, pipelined, eager,
// incremental} × {in-proc, shm-ring transport}, plus a fault-policy sample
// of the whole matrix. Every replay must produce a bit-identical full
// observation trace (per-node inbox tuples in order, totals, fault
// counters).
//
// Every failure message carries the iteration seed. Reproduce a CI failure
// locally with:
//   PW_FUZZ_SEED=<seed> PW_FUZZ_ITERS=1 ./engine_fuzz_test
// PW_FUZZ_SEED shifts the whole seed sequence; PW_FUZZ_ITERS (default 4)
// scales how many instances one run explores.
#include <gtest/gtest.h>

#include <cstdint>
#include <cstdlib>
#include <string>
#include <vector>

#include "src/graph/generators.hpp"
#include "src/sim/engine.hpp"
#include "src/util/rng.hpp"

namespace pw::sim {
namespace {

using graph::Graph;

// Counter-based mixing: every decision the fuzz program takes is a pure
// function of (seed, coordinates), so a program replays bit-identically on
// any engine configuration — the same trick the §9 fault plane uses.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

std::uint64_t h2(std::uint64_t a, std::uint64_t b) {
  return mix64(a * 0x9e3779b97f4a7c15ULL + b);
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* s = std::getenv(name);
  return s != nullptr && *s != '\0' ? std::strtoull(s, nullptr, 10) : fallback;
}

// The random instance: one of four families, 8..~160 nodes.
Graph make_graph(std::uint64_t seed) {
  Rng rng(h2(seed, 1));
  const int n = 8 + static_cast<int>(h2(seed, 2) % 150);
  switch (h2(seed, 3) % 4) {
    case 0: {
      const int m = n - 1 + static_cast<int>(h2(seed, 4) % (2 * n));
      return graph::gen::random_connected(n, m, rng);
    }
    case 1: {
      int side = 3;
      while ((side + 1) * (side + 1) <= n) ++side;
      return graph::gen::grid(side, side);
    }
    case 2: {
      int side = 3;
      while ((side + 1) * (side + 1) <= n) ++side;
      return graph::gen::torus(side, side);
    }
    default:
      return graph::gen::star(n);
  }
}

// One run of the seed's callback program on one engine configuration,
// returning the full observation trace. The program:
//   * starts from a seed-chosen wake set;
//   * on each activation, records the whole inbox, then — while the node's
//     activation budget lasts — sends on a seed-chosen subset of ports with
//     seed-derived payloads and maybe re-wakes itself;
//   * runs a capped first segment, then (seed-chosen) either drains the
//     in-flight remainder or lets it ride, re-wakes a fresh set, and runs to
//     quiescence.
// Activation budgets make quiescence unconditional: nothing sends past its
// budget, so traffic is finite in every segment.
std::vector<std::vector<std::uint64_t>> fuzz_trace(
    const Graph& g, std::uint64_t seed, ExecutionPolicy policy,
    const FaultPolicy& faults) {
  Engine eng(g, policy, faults);
  const int n = g.n();
  std::vector<std::vector<std::uint64_t>> trace(static_cast<std::size_t>(n));
  std::vector<int> budget(static_cast<std::size_t>(n),
                          2 + static_cast<int>(h2(seed, 5) % 3));

  const auto callback = [&](int v) {
    auto& t = trace[static_cast<std::size_t>(v)];
    t.push_back(0xfeedULL << 32 |
                static_cast<std::uint64_t>(t.size()));  // activation marker
    std::uint64_t digest = h2(seed, 0xabcd0000ULL + static_cast<unsigned>(v));
    for (const auto& in : eng.inbox(v)) {
      t.push_back(static_cast<std::uint64_t>(in.from) << 32 |
                  static_cast<std::uint32_t>(in.port));
      t.push_back(in.msg.tag);
      t.push_back(in.msg.a);
      digest = h2(digest, in.msg.a);
    }
    int& b = budget[static_cast<std::size_t>(v)];
    if (b <= 0) return;
    --b;
    const std::uint64_t act = h2(digest, static_cast<std::uint64_t>(b));
    for (int p = 0; p < g.degree(v); ++p) {
      const std::uint64_t hp = h2(act, static_cast<std::uint64_t>(p));
      if ((hp & 7) >= 5) continue;  // send on ~5/8 of the ports
      eng.send(v, p,
               Msg{static_cast<std::uint16_t>(hp >> 48), h2(hp, 1), 0, 0});
    }
    if ((act & 0x30) == 0 && b > 0) eng.wake(v);
  };

  const auto wake_some = [&](std::uint64_t salt) {
    const int count = 1 + static_cast<int>(h2(seed, salt) % 4);
    for (int i = 0; i < count; ++i)
      eng.wake(static_cast<int>(h2(seed, salt + 1 + static_cast<unsigned>(i)) %
                                static_cast<unsigned>(n)));
  };

  wake_some(100);
  eng.run(callback, /*max_rounds=*/2 + h2(seed, 6) % 3);
  if ((h2(seed, 7) & 1) != 0) eng.drain();  // discard the in-flight tail
  wake_some(200);
  eng.run(callback);
  EXPECT_TRUE(eng.idle());

  const FaultStats fs = eng.fault_stats();
  trace.push_back({eng.rounds(), eng.messages()});
  trace.push_back({fs.messages_dropped, fs.messages_delayed,
                   fs.messages_duplicated, fs.messages_shed_crashed,
                   fs.wakes_suppressed});
  return trace;
}

// The configuration matrix one instance is replayed across.
constexpr ExecutionPolicy kFuzzPolicies[] = {
    {2, false, false, false},  //
    {2, true, false, false},   //
    {2, true, true, false},    //
    {2, true, true, true},     //
    {4, false, false, false},  //
    {4, true, false, false},   //
    {4, true, true, false},    //
    {4, true, true, true}};

std::string label(const ExecutionPolicy& p) {
  std::string out = !p.pipeline   ? "barriered"
                    : !p.eager_seal ? "pipelined"
                    : p.incremental ? "pipelined+eager+inc"
                                    : "pipelined+eager";
  out += p.transport == TransportKind::kShmRing ? "/shm" : "/inproc";
  return out + "@" + std::to_string(p.num_threads);
}

// The fault-policy sample: fault-free, drop-only, mixed, and crash+mixed —
// one representative of each §9 verdict family.
std::vector<FaultPolicy> fault_sample(std::uint64_t seed, int n) {
  std::vector<FaultPolicy> out(4);
  for (std::size_t i = 0; i < out.size(); ++i) out[i].seed = h2(seed, 300 + i);
  out[1].drop_prob = 0.2;
  out[2].drop_prob = 0.1;
  out[2].delay_prob = 0.2;
  out[2].delay_rounds = 2;
  out[2].dup_prob = 0.1;
  out[3].drop_prob = 0.1;
  out[3].delay_prob = 0.1;
  out[3].delay_rounds = 1;
  // The two spans overlap in rounds ([1,3) vs [2,5)), and the fault plane
  // rejects overlapping spans on one node — so the victims must differ.
  const int first = static_cast<int>(h2(seed, 310) % static_cast<unsigned>(n));
  const int second =
      (first + 1 +
       static_cast<int>(h2(seed, 311) % static_cast<unsigned>(n - 1))) % n;
  out[3].crashes = {{first, 1, 3}, {second, 2, 5}};
  return out;
}

TEST(EngineFuzz, TraceIdenticalAcrossFullConfigMatrix) {
  const std::uint64_t base_seed = env_u64("PW_FUZZ_SEED", 0x5eedf00dULL);
  const std::uint64_t iters = env_u64("PW_FUZZ_ITERS", 4);
  std::uint64_t total_messages = 0;  // liveness: the matrix must carry traffic
  for (std::uint64_t it = 0; it < iters; ++it) {
    const std::uint64_t seed = h2(base_seed, it);
    SCOPED_TRACE("PW_FUZZ_SEED=" + std::to_string(base_seed) +
                 " iteration=" + std::to_string(it) +
                 " (derived seed " + std::to_string(seed) + ")");
    const Graph g = make_graph(seed);
    const auto faults = fault_sample(seed, g.n());
    for (std::size_t f = 0; f < faults.size(); ++f) {
      const auto reference =
          fuzz_trace(g, seed, ExecutionPolicy{1, false, false, false},
                     faults[f]);
      total_messages += reference[reference.size() - 2][1];
      for (ExecutionPolicy policy : kFuzzPolicies) {
        EXPECT_EQ(reference, fuzz_trace(g, seed, policy, faults[f]))
            << label(policy) << " fault-config " << f << " n=" << g.n();
        policy.transport = TransportKind::kShmRing;
        EXPECT_EQ(reference, fuzz_trace(g, seed, policy, faults[f]))
            << label(policy) << " fault-config " << f << " n=" << g.n();
        // Extra soak on the deepest configuration — the incremental merge
        // over the in-place shm wire path stacks every protocol (eager
        // seals, scatter waits, frame publish/retire, deque claims), so it
        // gets PW_FUZZ_INC_SHM_REPS more replays than the rest of the
        // matrix.
        if (policy.incremental) {
          const std::uint64_t reps = env_u64("PW_FUZZ_INC_SHM_REPS", 2);
          for (std::uint64_t r = 0; r < reps; ++r)
            EXPECT_EQ(reference, fuzz_trace(g, seed, policy, faults[f]))
                << label(policy) << " soak rep " << r << " fault-config " << f
                << " n=" << g.n();
        }
      }
    }
  }
  // A seed set whose programs never send would vacuously pass everything
  // above; insist the explored instances moved real traffic.
  EXPECT_GT(total_messages, 0u);
}

}  // namespace
}  // namespace pw::sim
