// Unit tests for the shortcut representation, validators and the trivial
// existential construction (Definitions 2.1-2.3 made executable).
#include <gtest/gtest.h>

#include <cmath>

#include "src/graph/generators.hpp"
#include "src/graph/properties.hpp"
#include "src/shortcut/shortcut.hpp"
#include "src/shortcut/subpart.hpp"
#include "src/tree/bfs.hpp"

namespace pw::shortcut {
namespace {

using graph::Graph;
using graph::Partition;

struct TreeFixture {
  Graph g;
  sim::Engine eng;
  tree::SpanningForest t;

  explicit TreeFixture(Graph graph_in)
      : g(std::move(graph_in)), eng(g), t(tree::build_bfs_tree(eng, 0)) {}
};

TEST(Shortcut, EmptyHasNoCongestionNoBlocks) {
  TreeFixture f(graph::gen::grid(4, 8));
  Partition p = graph::grid_row_partition(4, 8);
  const auto s = Shortcut::empty(f.g.n());
  EXPECT_EQ(congestion(s), 0);
  const auto blocks = blocks_per_part(f.g, f.t, p, s);
  for (int b : blocks) EXPECT_EQ(b, 0);
  EXPECT_EQ(block_parameter(f.g, f.t, p, s), 1);
  validate_shortcut(f.g, f.t, p, s);
}

TEST(Shortcut, HandBuiltBlocksCountedExactly) {
  // Path 0-1-...-9 rooted at 0: parent edge of node v is (v -> v-1).
  TreeFixture f(graph::gen::path(10));
  Partition p = graph::whole_partition(f.g);
  auto s = Shortcut::empty(10);
  // Two disjoint segments for part 0: edges above 3,4 and above 8.
  s.parts_on[3] = {0};
  s.parts_on[4] = {0};
  s.parts_on[8] = {0};
  annotate_block_roots(f.g, f.t, s);
  const auto blocks = blocks_per_part(f.g, f.t, p, s);
  EXPECT_EQ(blocks[0], 2);
  EXPECT_EQ(block_parameter(f.g, f.t, p, s), 2);
  EXPECT_EQ(congestion(s), 1);
  // Block roots: segment {3,4} climbs to node 2 (depth 2); segment {8} to
  // node 7 (depth 7).
  EXPECT_EQ(s.block_root_depth_on[3][0], 2);
  EXPECT_EQ(s.block_root_depth_on[4][0], 2);
  EXPECT_EQ(s.block_root_depth_on[8][0], 7);
  validate_shortcut(f.g, f.t, p, s);
}

TEST(Shortcut, SharedVertexMergesBlocks) {
  TreeFixture f(graph::gen::path(10));
  Partition p = graph::whole_partition(f.g);
  auto s = Shortcut::empty(10);
  s.parts_on[3] = {0};
  s.parts_on[4] = {0};
  s.parts_on[5] = {0};  // contiguous with the others through shared nodes
  annotate_block_roots(f.g, f.t, s);
  EXPECT_EQ(blocks_per_part(f.g, f.t, p, s)[0], 1);
}

TEST(Shortcut, CongestionCountsPerEdgeParts) {
  TreeFixture f(graph::gen::path(6));
  Partition p = Partition::from_labels({0, 0, 1, 1, 2, 2});
  auto s = Shortcut::empty(6);
  s.parts_on[3] = {0, 1, 2};
  s.parts_on[4] = {1};
  annotate_block_roots(f.g, f.t, s);
  EXPECT_EQ(congestion(s), 3);
  EXPECT_TRUE(s.edge_in_part(3, 1));
  EXPECT_FALSE(s.edge_in_part(4, 0));
}

TEST(Shortcut, TrivialConstructionRespectsThreshold) {
  Rng rng(31);
  TreeFixture f(graph::gen::random_connected(120, 300, rng));
  Partition p = graph::random_bfs_partition(f.g, 10, rng);
  std::vector<int> sizes(p.num_parts, 0);
  for (int v = 0; v < f.g.n(); ++v) ++sizes[p.part_of[v]];

  for (int threshold : {0, 5, 20, 200}) {
    const auto s = trivial_whole_tree_shortcut(f.g, f.t, p, threshold);
    validate_shortcut(f.g, f.t, p, s);
    int big_parts = 0;
    for (int x : sizes) big_parts += x > threshold ? 1 : 0;
    EXPECT_EQ(congestion(s), f.g.n() > 1 ? big_parts : 0);
    const auto blocks = blocks_per_part(f.g, f.t, p, s);
    for (int i = 0; i < p.num_parts; ++i) {
      if (sizes[i] > threshold) {
        EXPECT_EQ(blocks[i], 1) << "whole tree = one block";
      } else {
        EXPECT_EQ(blocks[i], 0);
      }
    }
  }
}

TEST(Shortcut, AnnotationMatchesRecomputation) {
  Rng rng(32);
  TreeFixture f(graph::gen::random_connected(100, 260, rng));
  Partition p = graph::random_bfs_partition(f.g, 8, rng);
  auto s = trivial_whole_tree_shortcut(f.g, f.t, p, 10);
  // Corrupt then re-annotate: must be restored exactly.
  auto corrupted = s;
  for (auto& d : corrupted.block_root_depth_on)
    for (auto& x : d) x = -999;
  annotate_block_roots(f.g, f.t, corrupted);
  EXPECT_EQ(corrupted.block_root_depth_on, s.block_root_depth_on);
}

TEST(ShortcutDeathTest, RootParentEdgeClaimRejected) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  TreeFixture f(graph::gen::path(4));
  Partition p = graph::whole_partition(f.g);
  auto s = Shortcut::empty(4);
  s.parts_on[0] = {0};  // node 0 is the root of T: it has no parent edge
  EXPECT_DEATH(validate_shortcut(f.g, f.t, p, s), "root");
}

TEST(ShortcutDeathTest, UnsortedPartsRejected) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  TreeFixture f(graph::gen::path(4));
  Partition p = Partition::from_labels({0, 0, 1, 1});
  auto s = Shortcut::empty(4);
  s.parts_on[2] = {1, 0};
  EXPECT_DEATH(validate_shortcut(f.g, f.t, p, s), "is_sorted");
}

TEST(SubpartValidator, RejectsCrossPartSubpart) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Graph g = graph::gen::path(4);
  Partition p = Partition::from_labels({0, 0, 1, 1});
  p.elect_min_id_leaders();
  SubPartDivision d;
  d.num_subparts = 1;
  d.subpart_of = {0, 0, 0, 0};  // spans both parts: invalid
  d.rep_of_subpart = {0};
  d.forest.parent = {-1, 0, 1, 2};
  d.forest.parent_port = {-1, 0, 0, 0};
  d.forest.depth = {0, 1, 2, 3};
  d.forest.children_ports = {{1}, {1}, {1}, {}};
  d.forest.roots = {0};
  EXPECT_DEATH(validate_subpart_division(g, p, d, 10), "PW_CHECK");
}

TEST(SubpartRandom, DensityMatchesDefinition41) {
  Rng rng(33);
  // Large single part on a path: with diameter bound d, expect ~ (n/d) log n
  // sub-parts.
  Graph g = graph::gen::path(400);
  Partition p = graph::whole_partition(g);
  p.elect_min_id_leaders();
  sim::Engine eng(g);
  const int d = 20;
  const auto div = build_subpart_division_random(eng, p, d, rng);
  validate_subpart_division(g, p, div, d);
  const double expected = 400.0 / d * std::log(400.0);
  EXPECT_LE(div.num_subparts, 3 * expected + 10);
  EXPECT_GE(div.num_subparts, 400 / d / 4);
}

TEST(SubpartRandom, SmallPartsGetExactlyOneSubpart) {
  Rng rng(34);
  Graph g = graph::gen::grid(8, 4);  // rows of 4 nodes
  Partition p = graph::grid_row_partition(8, 4);
  p.elect_min_id_leaders();
  sim::Engine eng(g);
  const auto div = build_subpart_division_random(eng, p, /*diameter=*/10, rng);
  const auto per_part = subparts_per_part(p, div);
  for (int i = 0; i < p.num_parts; ++i) EXPECT_EQ(per_part[i], 1) << i;
  // And the representative is the leader (Algorithm 3 line 3).
  for (int i = 0; i < p.num_parts; ++i)
    EXPECT_EQ(div.representative(p.leader[i]), p.leader[i]);
}

}  // namespace
}  // namespace pw::shortcut
