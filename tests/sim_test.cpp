#include <gtest/gtest.h>

#include "src/graph/generators.hpp"
#include "src/sim/engine.hpp"

namespace pw::sim {
namespace {

using graph::Graph;

TEST(Engine, DeliversNextRound) {
  Graph g = graph::gen::path(3);  // 0-1-2
  Engine eng(g);
  eng.wake(0);

  int deliveries = 0;
  eng.run([&](int v) {
    if (v == 0 && eng.inbox(v).empty()) {
      eng.send(0, 0, Msg{7, 42, 0, 0});
      return;
    }
    for (const auto& in : eng.inbox(v)) {
      EXPECT_EQ(v, 1);
      EXPECT_EQ(in.from, 0);
      EXPECT_EQ(in.msg.tag, 7);
      EXPECT_EQ(in.msg.a, 42u);
      // The port points back at the sender.
      EXPECT_EQ(eng.graph().arcs(v)[in.port].to, 0);
      ++deliveries;
    }
  });
  EXPECT_EQ(deliveries, 1);
  EXPECT_EQ(eng.messages(), 1u);
  EXPECT_EQ(eng.rounds(), 2u);  // send round + delivery round
}

TEST(Engine, OneMessagePerArcPerRoundEnforced) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Graph g = graph::gen::path(2);
  Engine eng(g);
  eng.wake(0);
  EXPECT_DEATH(
      {
        eng.begin_round();
        eng.send(0, 0, Msg{});
        eng.send(0, 0, Msg{});
      },
      "two messages");
}

TEST(Engine, BothDirectionsSameRoundAllowed) {
  Graph g = graph::gen::path(2);
  Engine eng(g);
  eng.wake(0);
  eng.wake(1);
  eng.begin_round();
  eng.send(0, 0, Msg{1, 0, 0, 0});
  eng.send(1, 0, Msg{2, 0, 0, 0});
  eng.end_round();
  EXPECT_EQ(eng.messages(), 2u);

  eng.begin_round();
  int got = 0;
  for (int v : eng.active_nodes())
    for (const auto& in : eng.inbox(v)) {
      got += in.msg.tag;
    }
  eng.end_round();
  EXPECT_EQ(got, 3);
}

TEST(Engine, IdleWithoutTraffic) {
  Graph g = graph::gen::cycle(4);
  Engine eng(g);
  EXPECT_TRUE(eng.idle());
  eng.wake(2);
  EXPECT_FALSE(eng.idle());
  const auto executed = eng.run([&](int) {});
  EXPECT_EQ(executed, 1u);
  EXPECT_TRUE(eng.idle());
}

TEST(Engine, DrainDropsPendingTraffic) {
  Graph g = graph::gen::path(2);
  Engine eng(g);
  eng.wake(0);
  eng.begin_round();
  eng.send(0, 0, Msg{9, 0, 0, 0});
  eng.end_round();
  EXPECT_FALSE(eng.idle());
  eng.drain();
  EXPECT_TRUE(eng.idle());
  // The dropped message stays counted: it was sent.
  EXPECT_EQ(eng.messages(), 1u);
}

TEST(Engine, FloodingVisitsEveryNodeOnceWithinEccRounds) {
  Rng rng(5);
  Graph g = graph::gen::random_connected(200, 500, rng);
  Engine eng(g);
  std::vector<char> visited(g.n(), 0);
  visited[0] = 1;
  eng.wake(0);
  eng.run([&](int v) {
    bool fresh = v == 0 && eng.inbox(v).empty();
    if (!visited[v]) {
      visited[v] = 1;
      fresh = true;
    }
    if (!fresh) return;
    for (int p = 0; p < g.degree(v); ++p) eng.send(v, p, Msg{});
  });
  for (int v = 0; v < g.n(); ++v) EXPECT_TRUE(visited[v]) << v;
  // Every arc carries at most one flood message.
  EXPECT_LE(eng.messages(), static_cast<std::uint64_t>(g.num_arcs()));
}

// Pins the intended (and documented, engine.hpp) semantics of run() vs
// charge_rounds(): run() returns the number of round-loop iterations it
// EXECUTED and budgets max_rounds on that count alone, while rounds() also
// absorbs any analytic charge_rounds() the callbacks issue mid-run. The two
// deliberately drift — a charge is extra simulated time inside an executed
// round, not an executed round.
TEST(Engine, RunExecutedCountIgnoresMidRunCharges) {
  Graph g = graph::gen::path(2);
  Engine eng(g);
  eng.wake(0);
  const auto snap = eng.snap();
  const auto executed = eng.run(
      [&](int v) {
        eng.charge_rounds(5);  // e.g. a pipelined phase's analytic flush gap
        eng.wake(v);           // keep the loop alive
      },
      3);
  EXPECT_EQ(executed, 3u);                    // loop iterations only
  EXPECT_EQ(eng.since(snap).rounds, 3u * 6);  // 1 executed + 5 charged each
  eng.drain();
}

TEST(Engine, ChargesAccumulate) {
  Graph g = graph::gen::path(2);
  Engine eng(g);
  eng.charge_rounds(10);
  eng.charge_messages(123);
  EXPECT_EQ(eng.rounds(), 10u);
  EXPECT_EQ(eng.messages(), 123u);
  const auto snap = eng.snap();
  eng.charge_rounds(5);
  EXPECT_EQ(eng.since(snap).rounds, 5u);
  EXPECT_EQ(eng.since(snap).messages, 0u);
}

TEST(Engine, ActiveNodesSorted) {
  Graph g = graph::gen::complete(5);
  Engine eng(g);
  eng.wake(4);
  eng.wake(1);
  eng.wake(3);
  eng.begin_round();
  const auto active = eng.active_nodes();
  ASSERT_EQ(active.size(), 3u);
  EXPECT_EQ(active[0], 1);
  EXPECT_EQ(active[1], 3);
  EXPECT_EQ(active[2], 4);
  eng.end_round();
}

}  // namespace
}  // namespace pw::sim
