#include <gtest/gtest.h>

#include <cmath>

#include "src/apps/mst.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/properties.hpp"

namespace pw::apps {
namespace {

using graph::Graph;

void expect_mst_matches_kruskal(const Graph& g, core::PaSolverConfig cfg,
                                std::uint64_t seed) {
  cfg.seed = seed;
  sim::Engine eng(g);
  const auto res = boruvka_mst(eng, cfg);
  validate_spanning_tree(g, res.in_mst);
  EXPECT_EQ(res.total_weight, kruskal_mst_weight(g));
  // With (weight, edge) tie-breaking the MST is unique: edge sets match.
  EXPECT_EQ(res.in_mst, kruskal_mst_edges(g));
}

TEST(Mst, RandomWeightedGraphs) {
  Rng rng(61);
  for (int trial = 0; trial < 4; ++trial) {
    Graph g = graph::gen::with_random_weights(
        graph::gen::random_connected(120, 320, rng), 1000, rng);
    expect_mst_matches_kruskal(g, {}, 600 + trial);
  }
}

TEST(Mst, GridAndTorus) {
  Rng rng(62);
  expect_mst_matches_kruskal(
      graph::gen::with_random_weights(graph::gen::grid(9, 13), 50, rng), {},
      610);
  expect_mst_matches_kruskal(
      graph::gen::with_random_weights(graph::gen::torus(7, 9), 50, rng), {},
      611);
}

TEST(Mst, UniformWeightsTieBreakByEdgeId) {
  Rng rng(63);
  Graph g = graph::gen::random_connected(100, 400, rng);  // all weights 1
  expect_mst_matches_kruskal(g, {}, 620);
}

TEST(Mst, TreeInputSelectsEverything) {
  Rng rng(64);
  Graph g = graph::gen::with_random_weights(graph::gen::random_tree(80, rng),
                                            9, rng);
  sim::Engine eng(g);
  const auto res = boruvka_mst(eng, {});
  for (int e = 0; e < g.m(); ++e) EXPECT_TRUE(res.in_mst[e]);
  EXPECT_EQ(res.total_weight, g.total_weight());
}

TEST(Mst, DeterministicMode) {
  Rng rng(65);
  Graph g = graph::gen::with_random_weights(
      graph::gen::random_connected(90, 200, rng), 77, rng);
  core::PaSolverConfig cfg;
  cfg.mode = core::PaMode::Deterministic;
  expect_mst_matches_kruskal(g, cfg, 630);
}

TEST(Mst, PhasesLogarithmic) {
  Rng rng(66);
  Graph g = graph::gen::with_random_weights(
      graph::gen::random_connected(256, 700, rng), 500, rng);
  sim::Engine eng(g);
  const auto res = boruvka_mst(eng, {});
  EXPECT_LE(res.phases, 9);  // ceil(log2 256) + slack: Boruvka halves fragments
  EXPECT_GE(res.phases, 2);
}

TEST(Mst, CompleteGraphOnePhaseish) {
  Rng rng(67);
  Graph g = graph::gen::with_random_weights(graph::gen::complete(24), 9999, rng);
  expect_mst_matches_kruskal(g, {}, 640);
}

TEST(Mst, MessageComplexityNearLinear) {
  Rng rng(68);
  Graph g = graph::gen::with_random_weights(
      graph::gen::random_connected(300, 900, rng), 1000, rng);
  sim::Engine eng(g);
  const auto res = boruvka_mst(eng, {});
  // Õ(m): phases (<= ~9) x a few O(m) passes each, plus construction. The
  // bound below is a conservative polylog envelope: C * m * log^2 n.
  const double logn = std::log2(g.n());
  EXPECT_LE(static_cast<double>(res.stats.messages),
            6.0 * g.num_arcs() * logn * logn);
}


TEST(Mst, GhsStyleBaselineCorrect) {
  Rng rng(69);
  Graph g = graph::gen::with_random_weights(
      graph::gen::random_connected(150, 400, rng), 500, rng);
  sim::Engine eng(g);
  const auto res = ghs_style_mst(eng);
  validate_spanning_tree(g, res.in_mst);
  EXPECT_EQ(res.total_weight, kruskal_mst_weight(g));
  EXPECT_EQ(res.in_mst, kruskal_mst_edges(g));
}

TEST(Mst, GhsStylePaysFragmentDiameterRounds) {
  // Light path + heavy apex spokes: fragments become long paths while the
  // graph diameter stays tiny; fragment-tree-only coordination must pay
  // Theta(n) rounds where ours pays Õ(D + sqrt(n)).
  const int len = 512, spoke = 16;
  std::vector<graph::Edge> edges;
  for (int i = 0; i + 1 < len; ++i)
    edges.push_back({i, i + 1, 1 + static_cast<graph::Weight>(i % 9)});
  for (int i = 0; i < len; i += spoke) edges.push_back({len, i, 1000000});
  Graph g = Graph::from_edges(len + 1, std::move(edges));

  sim::Engine ghs_eng(g);
  const auto ghs = ghs_style_mst(ghs_eng);
  sim::Engine ours_eng(g);
  const auto ours = boruvka_mst(ours_eng, {});
  EXPECT_EQ(ghs.total_weight, ours.total_weight);
  // The round gap of Corollary 1.3.
  EXPECT_GT(ghs.stats.rounds, 2 * ours.stats.rounds);
  // And GHS's message frugality (the other side of the old trade-off).
  EXPECT_LT(ghs.stats.messages, ours.stats.messages);
}

}  // namespace
}  // namespace pw::apps
