// Full-matrix policy invariance for every paper workload (DESIGN.md §7/§8).
//
// The §7 contract promises that ExecutionPolicy is invisible above the
// accounting layer: results, delivery, and round/message totals are pure
// functions of (graph, algorithm, seed), never of the thread count or the
// round-close mode. The engine suites pin that for raw round loops;
// this suite pins it END TO END for the algorithm stack — every Corollary
// 1.3–1.7 / Appendix-A workload runs at {1} ∪ {2,4} × {barriered, pipelined}
// and must reproduce the 1-thread run bit for bit: the full result vectors
// (weights, distances, labels, verdicts, dominator sets), not just hashes,
// plus the exact rounds() / messages() deltas.
//
// A failure here means a callback broke the shard-safety contract (wrote a
// slot it does not own, drew randomness inside a parallel sweep, depended on
// callback execution order) — see the §7 cookbook for the rules. The suite
// runs under ThreadSanitizer in CI, so a racy-but-lucky callback is caught
// even when its output happens to match.
#include <gtest/gtest.h>

#include <vector>

#include "bench/common.hpp"
#include "src/apps/domination.hpp"
#include "src/apps/mincut.hpp"
#include "src/apps/mst.hpp"
#include "src/apps/sssp.hpp"
#include "src/apps/verification.hpp"
#include "src/core/noleader.hpp"

namespace pw::bench {
namespace {

constexpr sim::ExecutionPolicy kPolicies[] = {
    {1, false, false, false},  //
    {2, false, false, false},
    {2, true, false, false},
    {2, true, true, false},
    {4, false, false, false},
    {4, true, false, false},
    {4, true, true, false},
    {4, true, true, true}};

// Canonical capture of one run: the app result flattened to words, plus the
// engine accounting. Policy must not move any of it.
struct Capture {
  std::vector<std::uint64_t> result;
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
};

template <class F>
void expect_policy_invariant(const char* what, F&& run) {
  const Capture ref = run(kPolicies[0]);
  ASSERT_FALSE(ref.result.empty()) << what;
  ASSERT_GT(ref.messages, 0u) << what;
  for (const auto policy : kPolicies) {
    if (policy.num_threads == 1) continue;
    const Capture got = run(policy);
    const auto label =
        std::string(what) + " @" + std::to_string(policy.num_threads) +
        (policy.pipeline ? (policy.eager_seal ? "+pipe+eager" : "+pipe") : "");
    EXPECT_EQ(got.result, ref.result) << label;
    EXPECT_EQ(got.rounds, ref.rounds) << label;
    EXPECT_EQ(got.messages, ref.messages) << label;
  }
}

Instance small_instance() {
  Rng rng(43);
  return general_instance(160, rng);
}

TEST(AppsParallel, BoruvkaMstRandomized) {
  const auto inst = small_instance();
  expect_policy_invariant("mst", [&](sim::ExecutionPolicy policy) {
    sim::Engine eng(inst.g, policy);
    core::PaSolverConfig cfg;
    cfg.seed = 17;
    const auto res = apps::boruvka_mst(eng, cfg);
    Capture c;
    c.result.assign(res.in_mst.begin(), res.in_mst.end());
    c.result.push_back(static_cast<std::uint64_t>(res.total_weight));
    c.result.push_back(static_cast<std::uint64_t>(res.phases));
    c.rounds = eng.rounds();
    c.messages = eng.messages();
    return c;
  });
}

// Deterministic mode exercises the heavy-path / deterministic-division /
// deterministic-shortcut stack (Algorithms 6-8) under parallel dispatch.
TEST(AppsParallel, BoruvkaMstDeterministic) {
  const auto inst = small_instance();
  expect_policy_invariant("mst-det", [&](sim::ExecutionPolicy policy) {
    sim::Engine eng(inst.g, policy);
    core::PaSolverConfig cfg;
    cfg.mode = core::PaMode::Deterministic;
    const auto res = apps::boruvka_mst(eng, cfg);
    Capture c;
    c.result.assign(res.in_mst.begin(), res.in_mst.end());
    c.result.push_back(static_cast<std::uint64_t>(res.total_weight));
    c.rounds = eng.rounds();
    c.messages = eng.messages();
    return c;
  });
}

TEST(AppsParallel, GhsStyleMst) {
  const auto inst = small_instance();
  expect_policy_invariant("ghs", [&](sim::ExecutionPolicy policy) {
    sim::Engine eng(inst.g, policy);
    const auto res = apps::ghs_style_mst(eng);
    Capture c;
    c.result.assign(res.in_mst.begin(), res.in_mst.end());
    c.result.push_back(static_cast<std::uint64_t>(res.total_weight));
    c.rounds = eng.rounds();
    c.messages = eng.messages();
    return c;
  });
}

TEST(AppsParallel, ApproxSssp) {
  const auto inst = small_instance();
  expect_policy_invariant("sssp", [&](sim::ExecutionPolicy policy) {
    sim::Engine eng(inst.g, policy);
    core::PaSolverConfig cfg;
    cfg.seed = 17;
    const auto res = apps::approx_sssp(eng, 0, 0.5, cfg);
    Capture c;
    for (const auto d : res.dist)
      c.result.push_back(static_cast<std::uint64_t>(d));
    c.result.push_back(static_cast<std::uint64_t>(res.scales));
    c.rounds = eng.rounds();
    c.messages = eng.messages();
    return c;
  });
}

// The per-trial MST engines inside approx_min_cut inherit the outer policy
// (Engine::policy()), so this covers parallel inner engines spawned from an
// already-parallel outer context.
TEST(AppsParallel, ApproxMinCut) {
  Rng rng(44);
  const auto g = graph::gen::with_random_weights(
      graph::gen::random_connected(72, 216, rng), 8, rng);
  expect_policy_invariant("mincut", [&](sim::ExecutionPolicy policy) {
    sim::Engine eng(g, policy);
    core::PaSolverConfig cfg;
    cfg.seed = 17;
    const auto res = apps::approx_min_cut(eng, 1.0, cfg);
    Capture c;
    c.result.assign(res.side.begin(), res.side.end());
    c.result.push_back(static_cast<std::uint64_t>(res.cut_value));
    c.result.push_back(static_cast<std::uint64_t>(res.trials));
    c.rounds = eng.rounds();
    c.messages = eng.messages();
    return c;
  });
}

TEST(AppsParallel, VerifySpanningTreeAndBipartiteness) {
  const auto inst = small_instance();
  const auto tree_edges = apps::kruskal_mst_edges(inst.g);
  expect_policy_invariant("verify", [&](sim::ExecutionPolicy policy) {
    sim::Engine eng(inst.g, policy);
    core::PaSolverConfig cfg;
    cfg.seed = 17;
    const auto st = apps::verify_spanning_tree(eng, tree_edges, cfg);
    const auto bi = apps::verify_bipartiteness(eng, tree_edges, cfg);
    Capture c;
    c.result = {static_cast<std::uint64_t>(st.ok),
                static_cast<std::uint64_t>(bi.ok)};
    c.rounds = eng.rounds();
    c.messages = eng.messages();
    return c;
  });
}

TEST(AppsParallel, PaNoLeader) {
  const auto inst = small_instance();
  Rng vals_rng(7);
  std::vector<std::uint64_t> values(static_cast<std::size_t>(inst.g.n()));
  for (auto& x : values) x = vals_rng.next_below(1u << 20);
  expect_policy_invariant("noleader", [&](sim::ExecutionPolicy policy) {
    sim::Engine eng(inst.g, policy);
    core::PaSolverConfig cfg;
    cfg.seed = 17;
    const auto res = core::pa_noleader(eng, inst.p, agg::min(), values, cfg);
    Capture c;
    c.result = res.node_value;
    c.result.insert(c.result.end(), res.part_value.begin(),
                    res.part_value.end());
    for (const int l : res.elected_leader)
      c.result.push_back(static_cast<std::uint64_t>(l));
    c.rounds = eng.rounds();
    c.messages = eng.messages();
    return c;
  });
}

TEST(AppsParallel, KDominatingSet) {
  const auto inst = small_instance();
  expect_policy_invariant("kdom", [&](sim::ExecutionPolicy policy) {
    sim::Engine eng(inst.g, policy);
    const auto res = apps::k_dominating_set(eng, 8, {});
    Capture c;
    for (const int v : res.dominators)
      c.result.push_back(static_cast<std::uint64_t>(v));
    c.rounds = eng.rounds();
    c.messages = eng.messages();
    return c;
  });
}

TEST(AppsParallel, ConnectedDominatingSet) {
  const auto inst = small_instance();
  expect_policy_invariant("cds", [&](sim::ExecutionPolicy policy) {
    sim::Engine eng(inst.g, policy);
    const auto res = apps::connected_dominating_set(eng, {});
    Capture c;
    c.result.assign(res.in_cds.begin(), res.in_cds.end());
    c.result.push_back(static_cast<std::uint64_t>(res.size));
    c.rounds = eng.rounds();
    c.messages = eng.messages();
    return c;
  });
}

// The Thurimella-extension aggregates (Corollary A.2 machinery).
TEST(AppsParallel, ComponentAggregates) {
  const auto inst = small_instance();
  Rng rng(9);
  std::vector<char> h(static_cast<std::size_t>(inst.g.m()), 0);
  for (auto& e : h) e = rng.next_bool(0.5) ? 1 : 0;
  std::vector<std::uint64_t> values(static_cast<std::size_t>(inst.g.n()));
  for (auto& x : values) x = rng.next_below(1u << 16);
  expect_policy_invariant("aggregates", [&](sim::ExecutionPolicy policy) {
    sim::Engine eng(inst.g, policy);
    const auto sums = apps::component_sum(eng, h, values, {});
    const auto topk = apps::component_topk(eng, h, values, 2, {});
    Capture c;
    c.result = sums;
    for (const auto& per_node : topk) {
      c.result.push_back(per_node.size());
      c.result.insert(c.result.end(), per_node.begin(), per_node.end());
    }
    c.rounds = eng.rounds();
    c.messages = eng.messages();
    return c;
  });
}

}  // namespace
}  // namespace pw::bench
