#include <gtest/gtest.h>

#include "src/core/baselines.hpp"
#include "src/core/noleader.hpp"
#include "src/graph/generators.hpp"
#include "src/tree/bfs.hpp"

namespace pw::core {
namespace {

using graph::Graph;
using graph::Partition;

std::vector<std::uint64_t> reference_pa(const Partition& p, const Agg& agg,
                                        const std::vector<std::uint64_t>& values) {
  std::vector<std::uint64_t> out(p.num_parts, agg.identity);
  for (std::size_t v = 0; v < values.size(); ++v)
    out[p.part_of[v]] = agg(out[p.part_of[v]], values[v]);
  return out;
}

TEST(NoLeader, MatchesReferenceOnRandomInstances) {
  Rng rng(91);
  for (int trial = 0; trial < 3; ++trial) {
    Graph g = graph::gen::random_connected(120, 300, rng);
    Partition p = graph::random_bfs_partition(g, 7, rng);  // leaders unused
    std::vector<std::uint64_t> values(g.n());
    for (auto& x : values) x = rng.next_below(1000);

    sim::Engine eng(g);
    PaSolverConfig cfg;
    cfg.seed = 910 + trial;
    const auto res = pa_noleader(eng, p, agg::sum(), values, cfg);
    const auto ref = reference_pa(p, agg::sum(), values);
    for (int i = 0; i < p.num_parts; ++i) EXPECT_EQ(res.part_value[i], ref[i]);
    for (int v = 0; v < g.n(); ++v)
      EXPECT_EQ(res.node_value[v], ref[p.part_of[v]]);
    // Elected leaders live inside their parts.
    for (int i = 0; i < p.num_parts; ++i) {
      ASSERT_GE(res.elected_leader[i], 0);
      EXPECT_EQ(p.part_of[res.elected_leader[i]], i);
    }
  }
}

TEST(NoLeader, LogarithmicCoarsening) {
  Rng rng(92);
  Graph g = graph::gen::grid(8, 32);
  Partition p = graph::grid_row_partition(8, 32);
  sim::Engine eng(g);
  std::vector<std::uint64_t> values(g.n(), 1);
  const auto res = pa_noleader(eng, p, agg::sum(), values, {});
  for (int i = 0; i < p.num_parts; ++i) EXPECT_EQ(res.part_value[i], 32u);
  EXPECT_LE(res.coarsening_rounds, 40);
  EXPECT_GE(res.coarsening_rounds, 1);
}

TEST(NoLeader, SingletonPartsNeedNoCoarsening) {
  Graph g = graph::gen::cycle(16);
  Partition p = graph::singleton_partition(g);
  p.leader.clear();
  sim::Engine eng(g);
  std::vector<std::uint64_t> values(g.n());
  for (int v = 0; v < g.n(); ++v) values[v] = v * 10;
  const auto res = pa_noleader(eng, p, agg::max(), values, {});
  EXPECT_EQ(res.coarsening_rounds, 0);
  for (int v = 0; v < g.n(); ++v)
    EXPECT_EQ(res.node_value[v], static_cast<std::uint64_t>(v * 10));
}

TEST(GlobalTreeBaseline, CorrectButMessageHungry) {
  Rng rng(93);
  Graph g = graph::gen::grid(10, 20);
  Partition p = graph::grid_row_partition(10, 20);
  p.elect_min_id_leaders();
  sim::Engine eng(g);
  const auto t = tree::build_bfs_tree(eng, 0);

  std::vector<std::uint64_t> values(g.n());
  for (auto& x : values) x = rng.next_below(100);
  const auto res = global_tree_pa(eng, p, t, agg::min(), values);
  const auto ref = reference_pa(p, agg::min(), values);
  for (int i = 0; i < p.num_parts; ++i) EXPECT_EQ(res.part_value[i], ref[i]);
  for (int v = 0; v < g.n(); ++v)
    EXPECT_EQ(res.node_value[v], ref[p.part_of[v]]);
  // The down-flood alone costs ~ n * num_parts messages.
  EXPECT_GE(res.stats.messages,
            static_cast<std::uint64_t>(g.n() - 1) * (p.num_parts - 1));
}

TEST(GlobalTreeBaseline, PipelinedRounds) {
  // Rounds stay O(D + N), far below N * D.
  Graph g = graph::gen::grid(16, 16);
  Partition p = graph::grid_row_partition(16, 16);
  p.elect_min_id_leaders();
  sim::Engine eng(g);
  const auto t = tree::build_bfs_tree(eng, 0);
  std::vector<std::uint64_t> values(g.n(), 3);
  const auto res = global_tree_pa(eng, p, t, agg::sum(), values);
  for (int i = 0; i < p.num_parts; ++i) EXPECT_EQ(res.part_value[i], 48u);
  EXPECT_LE(res.stats.rounds,
            static_cast<std::uint64_t>(4 * (t.height() + p.num_parts) + 16));
}

}  // namespace
}  // namespace pw::core
