// Stress and semantics tests for the CONGEST engine beyond the basics in
// sim_test.cpp: phase reuse, ordering determinism, fan-in limits, and the
// exact delivery timing the algorithms rely on.
#include <gtest/gtest.h>

#include "src/graph/generators.hpp"
#include "src/sim/engine.hpp"

namespace pw::sim {
namespace {

using graph::Graph;

TEST(EngineStress, PhasesReuseCleanly) {
  Graph g = graph::gen::cycle(16);
  Engine eng(g);
  // Ten independent flood phases; each must behave identically.
  std::uint64_t first_phase_msgs = 0;
  for (int phase = 0; phase < 10; ++phase) {
    const auto snap = eng.snap();
    std::vector<char> seen(g.n(), 0);
    seen[phase] = 1;
    eng.wake(phase);
    eng.run([&](int v) {
      bool fresh = v == phase && eng.inbox(v).empty();
      if (!seen[v]) {
        seen[v] = 1;
        fresh = true;
      }
      if (!fresh) return;
      for (int p = 0; p < g.degree(v); ++p) eng.send(v, p, Msg{});
    });
    for (int v = 0; v < g.n(); ++v) EXPECT_TRUE(seen[v]);
    const auto stats = eng.since(snap);
    if (phase == 0) {
      first_phase_msgs = stats.messages;
    } else {
      EXPECT_EQ(stats.messages, first_phase_msgs) << "phase " << phase;
    }
    EXPECT_TRUE(eng.idle());
  }
}

TEST(EngineStress, DeliveryIsExactlyOneRoundLater) {
  Graph g = graph::gen::path(5);
  Engine eng(g);
  // A token relays 0 -> 1 -> 2 -> 3 -> 4; node k must hear it at round k+1.
  std::vector<std::uint64_t> heard_at(g.n(), 0);
  std::uint64_t round = 0;
  eng.wake(0);
  while (!eng.idle()) {
    eng.begin_round();
    ++round;
    for (int v : eng.active_nodes()) {
      if (v == 0 && eng.inbox(v).empty()) {
        eng.send(0, g.port_to(0, 1), Msg{1, 0, 0, 0});
        continue;
      }
      for (const auto& in : eng.inbox(v)) {
        if (in.msg.tag != 1) continue;
        heard_at[v] = round;
        if (v + 1 < g.n()) eng.send(v, g.port_to(v, v + 1), Msg{1, 0, 0, 0});
      }
    }
    eng.end_round();
  }
  for (int v = 1; v < g.n(); ++v)
    EXPECT_EQ(heard_at[v], static_cast<std::uint64_t>(v + 1));
}

TEST(EngineStress, MaxFanInDeliveredIntact) {
  // Everybody messages the hub in the same round; all arrive next round.
  Graph g = graph::gen::star(64);
  Engine eng(g);
  for (int v = 1; v < g.n(); ++v) eng.wake(v);
  eng.begin_round();
  for (int v : eng.active_nodes())
    eng.send(v, 0, Msg{7, static_cast<std::uint64_t>(v), 0, 0});
  eng.end_round();

  eng.begin_round();
  std::set<std::uint64_t> senders;
  for (const auto& in : eng.inbox(0)) {
    EXPECT_EQ(in.msg.tag, 7);
    senders.insert(in.msg.a);
  }
  eng.end_round();
  EXPECT_EQ(senders.size(), 63u);
}

TEST(EngineStress, InboxPortsIdentifySenders) {
  Rng rng(3);
  Graph g = graph::gen::random_connected(60, 200, rng);
  Engine eng(g);
  for (int v = 0; v < g.n(); ++v) eng.wake(v);
  eng.begin_round();
  for (int v : eng.active_nodes())
    for (int p = 0; p < g.degree(v); ++p)
      eng.send(v, p, Msg{1, static_cast<std::uint64_t>(v), 0, 0});
  eng.end_round();
  eng.begin_round();
  for (int v : eng.active_nodes())
    for (const auto& in : eng.inbox(v)) {
      EXPECT_EQ(g.arcs(v)[in.port].to, in.from);
      EXPECT_EQ(in.msg.a, static_cast<std::uint64_t>(in.from));
    }
  eng.end_round();
}

TEST(EngineStress, WakeDuringRoundSchedulesNextRound) {
  Graph g = graph::gen::path(2);
  Engine eng(g);
  eng.wake(0);
  int activations = 0;
  eng.run(
      [&](int v) {
        if (v != 0) return;
        ++activations;
        if (activations < 5) eng.wake(0);  // self-rewake
      });
  EXPECT_EQ(activations, 5);
  EXPECT_EQ(eng.rounds(), 5u);
}

TEST(EngineStress, RunRespectsMaxRounds) {
  Graph g = graph::gen::path(2);
  Engine eng(g);
  eng.wake(0);
  const auto executed = eng.run([&](int v) { eng.wake(v); }, 7);
  EXPECT_EQ(executed, 7u);
  EXPECT_FALSE(eng.idle());
  eng.drain();
  EXPECT_TRUE(eng.idle());
}

TEST(EngineStress, SendingOnEveryPortEveryRound) {
  // Dense all-to-all chatter on K12 for 20 rounds: counts must be exact.
  Graph g = graph::gen::complete(12);
  Engine eng(g);
  for (int v = 0; v < g.n(); ++v) eng.wake(v);
  for (int r = 0; r < 20; ++r) {
    eng.begin_round();
    for (int v : eng.active_nodes())
      for (int p = 0; p < g.degree(v); ++p) eng.send(v, p, Msg{});
    eng.end_round();
  }
  EXPECT_EQ(eng.messages(), 20u * 12 * 11);
  EXPECT_EQ(eng.rounds(), 20u);
  eng.drain();
}

TEST(EngineStress, DrainDiscardsInFlightTrafficWithoutCorruptingLaterRounds) {
  // Regression test for the arena engine: drain() must discard BOTH
  // delivered-but-unread messages and scheduled wakeups, and the next phase
  // must see exactly its own traffic — no stale run, offset, or count from
  // the drained phase may leak into a later round's inboxes.
  Rng rng(9);
  Graph g = graph::gen::random_connected(50, 150, rng);
  Engine eng(g);

  // Phase 1: everybody sends a poison message on every port, then the phase
  // is aborted mid-flight (after end_round the messages sit delivered but
  // unread).
  for (int v = 0; v < g.n(); ++v) eng.wake(v);
  eng.begin_round();
  for (int v : eng.active_nodes())
    for (int p = 0; p < g.degree(v); ++p)
      eng.send(v, p, Msg{66, 0xdead, 0, 0});
  eng.end_round();
  EXPECT_FALSE(eng.idle());
  eng.drain();
  EXPECT_TRUE(eng.idle());

  // Phase 2: a clean two-hop relay. Every inbox observed must contain only
  // phase-2 messages, with exact counts and payloads.
  eng.wake(7);
  eng.begin_round();
  ASSERT_EQ(eng.active_nodes().size(), 1u);
  EXPECT_TRUE(eng.inbox(7).empty());  // the poison wave must be gone
  for (int p = 0; p < g.degree(7); ++p)
    eng.send(7, p, Msg{1, static_cast<std::uint64_t>(p), 0, 0});
  eng.end_round();

  eng.begin_round();
  int received = 0;
  for (int v : eng.active_nodes()) {
    for (const auto& in : eng.inbox(v)) {
      EXPECT_EQ(in.msg.tag, 1) << "stale message leaked to node " << v;
      EXPECT_EQ(in.from, 7);
      EXPECT_EQ(g.arcs(v)[in.port].to, 7);
      ++received;
    }
  }
  eng.end_round();
  EXPECT_EQ(received, g.degree(7));
  eng.drain();

  // Phase 3: drain() directly after a wake (nothing delivered) must also
  // leave a clean engine.
  eng.wake(3);
  eng.drain();
  EXPECT_TRUE(eng.idle());
  eng.wake(3);
  eng.begin_round();
  EXPECT_TRUE(eng.inbox(3).empty());
  eng.end_round();
}

TEST(EngineStress, DeterministicAcrossIdenticalRuns) {
  Rng rng(17);
  Graph g = graph::gen::random_connected(100, 300, rng);
  auto run_trace = [&] {
    Engine eng(g);
    std::vector<int> trace;
    eng.wake(42);
    std::vector<char> seen(g.n(), 0);
    seen[42] = 1;
    eng.run([&](int v) {
      trace.push_back(v);
      bool fresh = v == 42 && eng.inbox(v).empty();
      if (!seen[v]) {
        seen[v] = 1;
        fresh = true;
      }
      if (!fresh) return;
      for (int p = 0; p < g.degree(v); ++p) eng.send(v, p, Msg{});
    });
    return trace;
  };
  EXPECT_EQ(run_trace(), run_trace());
}

}  // namespace
}  // namespace pw::sim
