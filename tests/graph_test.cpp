#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "src/graph/dsu.hpp"
#include "src/graph/generators.hpp"
#include "src/graph/graph.hpp"
#include "src/graph/partition.hpp"
#include "src/graph/properties.hpp"

namespace pw::graph {
namespace {

TEST(Graph, CsrStructure) {
  Graph g = Graph::from_edges(4, {{0, 1, 5}, {1, 2, 7}, {2, 3, 9}, {0, 3, 2}});
  EXPECT_EQ(g.n(), 4);
  EXPECT_EQ(g.m(), 4);
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(1), 2);
  // Mirror arcs point back.
  for (int v = 0; v < g.n(); ++v) {
    const auto arcs = g.arcs(v);
    for (int k = 0; k < static_cast<int>(arcs.size()); ++k) {
      const int a = g.arc_id(v, k);
      const int ma = g.mirror(a);
      EXPECT_EQ(g.mirror(ma), a);
      EXPECT_EQ(g.arc_owner(ma), arcs[k].to);
      EXPECT_EQ(g.arc(ma).to, v);
      EXPECT_EQ(g.arc(ma).edge, arcs[k].edge);
    }
  }
}

TEST(Graph, PortOfArcInvertsArcId) {
  Rng rng(11);
  Graph g = gen::random_connected(40, 120, rng);
  for (int v = 0; v < g.n(); ++v)
    for (int k = 0; k < g.degree(v); ++k) {
      const int a = g.arc_id(v, k);
      // port_of_arc is the inverse of arc_id on the arc's owner.
      EXPECT_EQ(g.port_of_arc(a), k);
      EXPECT_EQ(g.arc_id(g.arc_owner(a), g.port_of_arc(a)), a);
      // The simulator's use: a mirror arc names the receiver's port.
      const int ma = g.mirror(a);
      EXPECT_EQ(g.arcs(g.arc_owner(ma))[g.port_of_arc(ma)].to, v);
    }
}

TEST(Graph, PortLookup) {
  Graph g = gen::cycle(5);
  for (const auto& e : g.edges()) {
    const int p = g.port_to(e.u, e.v);
    ASSERT_GE(p, 0);
    EXPECT_EQ(g.arcs(e.u)[p].to, e.v);
  }
  EXPECT_EQ(g.port_to(0, 2), -1);
}

TEST(Generators, SizesAndConnectivity) {
  Rng rng(42);
  struct Case {
    Graph g;
    int n, m;
  };
  std::vector<Case> cases;
  cases.push_back({gen::path(10), 10, 9});
  cases.push_back({gen::cycle(10), 10, 10});
  cases.push_back({gen::complete(6), 6, 15});
  cases.push_back({gen::star(7), 7, 6});
  cases.push_back({gen::grid(4, 5), 20, 31});
  cases.push_back({gen::torus(4, 5), 20, 40});
  cases.push_back({gen::hypercube(4), 16, 32});
  cases.push_back({gen::balanced_tree(15, 2), 15, 14});
  cases.push_back({gen::random_tree(33, rng), 33, 32});
  cases.push_back({gen::caterpillar(5, 3), 20, 19});
  cases.push_back({gen::random_connected(50, 120, rng), 50, 120});
  cases.push_back({gen::apex_grid(4, 6), 25, 4 * 5 + 3 * 6 + 6});
  cases.push_back({gen::lollipop(5, 4), 9, 14});
  cases.push_back({gen::broom(4, 5), 9, 8});
  for (const auto& c : cases) {
    EXPECT_EQ(c.g.n(), c.n);
    EXPECT_EQ(c.g.m(), c.m);
    EXPECT_TRUE(is_connected(c.g));
  }
}

TEST(Generators, KTreeHasExpectedEdgeCount) {
  Rng rng(7);
  const int n = 40, k = 3;
  Graph g = gen::k_tree(n, k, rng);
  // (k+1)-clique then k edges per added node.
  EXPECT_EQ(g.m(), k * (k + 1) / 2 + (n - k - 1) * k);
  EXPECT_TRUE(is_connected(g));
}

TEST(Generators, RandomWeights) {
  Rng rng(3);
  Graph g = gen::with_random_weights(gen::grid(5, 5), 100, rng);
  for (const auto& e : g.edges()) {
    EXPECT_GE(e.w, 1);
    EXPECT_LE(e.w, 100);
  }
}

TEST(Properties, DiameterMatchesKnownValues) {
  EXPECT_EQ(diameter_exact(gen::path(10)), 9);
  EXPECT_EQ(diameter_exact(gen::cycle(10)), 5);
  EXPECT_EQ(diameter_exact(gen::complete(8)), 1);
  EXPECT_EQ(diameter_exact(gen::grid(4, 7)), 3 + 6);
  EXPECT_EQ(diameter_exact(gen::star(9)), 2);
  EXPECT_EQ(diameter_exact(gen::hypercube(5)), 5);
}

TEST(Properties, DoubleSweepExactOnTrees) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = gen::random_tree(60, rng);
    EXPECT_EQ(diameter_estimate(g), diameter_exact(g));
  }
}

TEST(Properties, DoubleSweepLowerBoundsDiameter) {
  Rng rng(12);
  for (int trial = 0; trial < 10; ++trial) {
    Graph g = gen::random_connected(80, 160, rng);
    EXPECT_LE(diameter_estimate(g), diameter_exact(g));
    EXPECT_GE(2 * diameter_estimate(g), diameter_exact(g));
  }
}

TEST(Properties, DijkstraAgreesWithBfsOnUnitWeights) {
  Rng rng(13);
  Graph g = gen::random_connected(60, 150, rng);
  const auto bfs = bfs_distances(g, 0);
  const auto dij = dijkstra(g, 0);
  for (int v = 0; v < g.n(); ++v) EXPECT_EQ(dij[v], bfs[v]);
}

TEST(Dsu, UnionCount) {
  Dsu d(5);
  EXPECT_EQ(d.components(), 5);
  EXPECT_TRUE(d.unite(0, 1));
  EXPECT_FALSE(d.unite(1, 0));
  EXPECT_TRUE(d.unite(2, 3));
  EXPECT_TRUE(d.unite(0, 3));
  EXPECT_EQ(d.components(), 2);
  EXPECT_EQ(d.component_size(1), 4);
  EXPECT_TRUE(d.same(0, 2));
  EXPECT_FALSE(d.same(0, 4));
}

TEST(Partition, FromLabelsRenumbers) {
  Partition p = Partition::from_labels({5, 5, 9, 5, 2});
  EXPECT_EQ(p.num_parts, 3);
  EXPECT_EQ(p.part_of[0], p.part_of[1]);
  EXPECT_EQ(p.part_of[0], p.part_of[3]);
  EXPECT_NE(p.part_of[0], p.part_of[2]);
  EXPECT_NE(p.part_of[2], p.part_of[4]);
}

TEST(Partition, GridRowsValid) {
  Graph g = gen::grid(6, 9);
  Partition p = grid_row_partition(6, 9);
  validate_partition(g, p);
  EXPECT_EQ(p.num_parts, 6);
}

TEST(Partition, ApexGridMatchesPaperFigure2a) {
  const int depth = 5, width = 8;
  Graph g = gen::apex_grid(depth, width);
  Partition p = apex_grid_row_partition(depth, width);
  validate_partition(g, p);
  EXPECT_EQ(p.num_parts, depth + 1);
  // The apex neighbors exactly the top row.
  EXPECT_EQ(g.degree(0), width);
}

TEST(Partition, RandomBfsPartsAreConnected) {
  Rng rng(21);
  for (int trial = 0; trial < 5; ++trial) {
    Graph g = gen::random_connected(100, 220, rng);
    Partition p = random_bfs_partition(g, 12, rng);
    validate_partition(g, p);
    EXPECT_EQ(p.num_parts, 12);
  }
}

TEST(Partition, BallPartitionRespectsConnectivity) {
  Rng rng(22);
  Graph g = gen::grid(10, 10);
  Partition p = ball_partition(g, 3, rng);
  validate_partition(g, p);
  EXPECT_GE(p.num_parts, 2);
}

TEST(Partition, MinIdLeaders) {
  Partition p = Partition::from_labels({0, 0, 1, 1, 0});
  p.elect_min_id_leaders();
  EXPECT_EQ(p.leader[p.part_of[0]], 0);
  EXPECT_EQ(p.leader[p.part_of[2]], 2);
}

TEST(PartitionDeathTest, DisconnectedPartAborts) {
  GTEST_FLAG_SET(death_test_style, "threadsafe");
  Graph g = gen::path(4);  // 0-1-2-3
  Partition p = Partition::from_labels({0, 1, 1, 0});  // part 0 = {0,3}: not connected
  EXPECT_DEATH(validate_partition(g, p), "not connected");
}

}  // namespace
}  // namespace pw::graph
