// Vertex partitions — the input object of Part-Wise Aggregation.
//
// A Partition assigns every node to exactly one part; per Definition 1.1 of
// the paper every part must induce a connected subgraph of G. Parts may
// optionally carry
//   * a known leader per part (the paper's Section 4 assumption; Appendix B /
//     Algorithm 9 removes it), and
//   * a spanning forest (per-node parent port within the part). Applications
//     like Borůvka-over-PA produce parts whose connectivity is witnessed by
//     the already-selected MST edges rather than by full knowledge of
//     in-part neighbors; the forest representation captures exactly that.
#pragma once

#include <utility>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/util/rng.hpp"

namespace pw::graph {

struct Partition {
  std::vector<int> part_of;  // size n; values in [0, num_parts)
  int num_parts = 0;

  // leader[i] = node id of part i's leader, or -1 when unknown.
  std::vector<int> leader;

  // Optional spanning forest: parent_port[v] = port index (into g.arcs(v))
  // of v's parent edge inside its part, or -1 for part roots. Empty when no
  // forest is attached.
  std::vector<int> parent_port;

  bool has_forest() const { return !parent_port.empty(); }
  bool has_leaders() const { return !leader.empty(); }

  // Builds a partition from raw labels: renumbers part ids to be contiguous
  // and leaves leaders/forest unset.
  static Partition from_labels(std::vector<int> labels);

  // Members of every part (O(n) scratch).
  std::vector<std::vector<int>> members() const;

  // Sets leader[i] = smallest node id in part i.
  void elect_min_id_leaders();
};

// Validates the PA preconditions: labels in range; every part connected in
// the induced subgraph (or, when a forest is attached, connected via forest
// edges which must stay within the part and be acyclic); leaders, when
// present, live in their parts. Aborts via PW_CHECK on violation.
void validate_partition(const Graph& g, const Partition& p);

// --- Generators -----------------------------------------------------------

// Every node its own part.
Partition singleton_partition(const Graph& g);

// One part containing all nodes.
Partition whole_partition(const Graph& g);

// Parts = rows of gen::grid(rows, cols).
Partition grid_row_partition(int rows, int cols);

// Parts for gen::apex_grid(depth, width): the apex is a singleton part and
// each grid row is one part (the paper's Figure 2a instance).
Partition apex_grid_row_partition(int depth, int width);

// k connected parts grown by synchronized multi-source BFS from k random
// seeds (every part is a BFS "territory", hence connected).
Partition random_bfs_partition(const Graph& g, int k, Rng& rng);

// Connected parts of target radius: seeds are chosen greedily so that every
// node is within `radius` of some seed, then territories grow by BFS.
Partition ball_partition(const Graph& g, int radius, Rng& rng);

}  // namespace pw::graph
