#include "src/graph/partition.hpp"

#include <algorithm>
#include <numeric>

#include "src/graph/dsu.hpp"
#include "src/graph/generators.hpp"

namespace pw::graph {

Partition Partition::from_labels(std::vector<int> labels) {
  Partition p;
  // Renumber to contiguous ids in order of first appearance.
  std::vector<int> remap;
  p.part_of.resize(labels.size());
  std::vector<int> seen;
  for (std::size_t v = 0; v < labels.size(); ++v) {
    const int raw = labels[v];
    PW_CHECK(raw >= 0);
    if (raw >= static_cast<int>(remap.size())) remap.resize(raw + 1, -1);
    if (remap[raw] < 0) {
      remap[raw] = p.num_parts++;
    }
    p.part_of[v] = remap[raw];
  }
  return p;
}

std::vector<std::vector<int>> Partition::members() const {
  std::vector<std::vector<int>> out(num_parts);
  for (int v = 0; v < static_cast<int>(part_of.size()); ++v)
    out[part_of[v]].push_back(v);
  return out;
}

void Partition::elect_min_id_leaders() {
  leader.assign(num_parts, -1);
  for (int v = static_cast<int>(part_of.size()) - 1; v >= 0; --v)
    leader[part_of[v]] = v;
}

void validate_partition(const Graph& g, const Partition& p) {
  PW_CHECK(static_cast<int>(p.part_of.size()) == g.n());
  for (int v = 0; v < g.n(); ++v)
    PW_CHECK(p.part_of[v] >= 0 && p.part_of[v] < p.num_parts);

  if (p.has_leaders()) {
    PW_CHECK(static_cast<int>(p.leader.size()) == p.num_parts);
    for (int i = 0; i < p.num_parts; ++i) {
      PW_CHECK(p.leader[i] >= 0 && p.leader[i] < g.n());
      PW_CHECK_MSG(p.part_of[p.leader[i]] == i, "leader of part %d not in part", i);
    }
  }

  if (p.has_forest()) {
    PW_CHECK(static_cast<int>(p.parent_port.size()) == g.n());
    Dsu dsu(g.n());
    std::vector<int> roots_per_part(p.num_parts, 0);
    for (int v = 0; v < g.n(); ++v) {
      const int port = p.parent_port[v];
      if (port < 0) {
        ++roots_per_part[p.part_of[v]];
        continue;
      }
      PW_CHECK(port < g.degree(v));
      const int u = g.arcs(v)[port].to;
      PW_CHECK_MSG(p.part_of[u] == p.part_of[v],
                   "forest edge (%d,%d) leaves its part", v, u);
      PW_CHECK_MSG(dsu.unite(v, u), "forest has a cycle near node %d", v);
    }
    // The forest being acyclic with exactly one root per part implies each
    // part is spanned by its tree (|part|-1 in-part edges, no cycles).
    for (int i = 0; i < p.num_parts; ++i)
      PW_CHECK_MSG(roots_per_part[i] == 1, "part %d has %d forest roots", i,
                   roots_per_part[i]);
  } else {
    // Induced-subgraph connectivity.
    Dsu dsu(g.n());
    for (const auto& e : g.edges())
      if (p.part_of[e.u] == p.part_of[e.v]) dsu.unite(e.u, e.v);
    std::vector<int> rep(p.num_parts, -1);
    for (int v = 0; v < g.n(); ++v) {
      const int i = p.part_of[v];
      if (rep[i] < 0) rep[i] = v;
      PW_CHECK_MSG(dsu.same(rep[i], v), "part %d is not connected", i);
    }
  }
}

Partition singleton_partition(const Graph& g) {
  Partition p;
  p.part_of.resize(g.n());
  std::iota(p.part_of.begin(), p.part_of.end(), 0);
  p.num_parts = g.n();
  p.elect_min_id_leaders();
  return p;
}

Partition whole_partition(const Graph& g) {
  Partition p;
  p.part_of.assign(g.n(), 0);
  p.num_parts = g.n() > 0 ? 1 : 0;
  p.elect_min_id_leaders();
  return p;
}

Partition grid_row_partition(int rows, int cols) {
  Partition p;
  p.part_of.resize(rows * cols);
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) p.part_of[gen::grid_id(r, c, cols)] = r;
  p.num_parts = rows;
  p.elect_min_id_leaders();
  return p;
}

Partition apex_grid_row_partition(int depth, int width) {
  Partition p;
  p.part_of.resize(1 + depth * width);
  p.part_of[0] = 0;  // apex is its own part
  for (int r = 0; r < depth; ++r)
    for (int c = 0; c < width; ++c)
      p.part_of[1 + gen::grid_id(r, c, width)] = 1 + r;
  p.num_parts = 1 + depth;
  p.elect_min_id_leaders();
  return p;
}

namespace {

// Grows territories by synchronized BFS from the given seeds; every node is
// claimed by the first seed wave to reach it (ties: smaller seed index).
Partition grow_territories(const Graph& g, const std::vector<int>& seeds) {
  Partition p;
  p.part_of.assign(g.n(), -1);
  p.num_parts = static_cast<int>(seeds.size());
  std::vector<int> frontier;
  for (int i = 0; i < p.num_parts; ++i) {
    PW_CHECK(p.part_of[seeds[i]] < 0);
    p.part_of[seeds[i]] = i;
    frontier.push_back(seeds[i]);
  }
  std::vector<int> next;
  while (!frontier.empty()) {
    next.clear();
    for (int v : frontier)
      for (const auto& arc : g.arcs(v))
        if (p.part_of[arc.to] < 0) {
          p.part_of[arc.to] = p.part_of[v];
          next.push_back(arc.to);
        }
    frontier.swap(next);
  }
  for (int v = 0; v < g.n(); ++v)
    PW_CHECK_MSG(p.part_of[v] >= 0, "graph disconnected: node %d unclaimed", v);
  p.elect_min_id_leaders();
  return p;
}

}  // namespace

Partition random_bfs_partition(const Graph& g, int k, Rng& rng) {
  PW_CHECK(k >= 1 && k <= g.n());
  std::vector<int> nodes(g.n());
  std::iota(nodes.begin(), nodes.end(), 0);
  for (int i = g.n() - 1; i > 0; --i)
    std::swap(nodes[i], nodes[rng.next_below(i + 1)]);
  nodes.resize(k);
  return grow_territories(g, nodes);
}

Partition ball_partition(const Graph& g, int radius, Rng& rng) {
  PW_CHECK(radius >= 0);
  // Greedy 2r-net: scan nodes in random order; a node becomes a seed when no
  // existing seed is within `radius` of it.
  std::vector<int> order(g.n());
  std::iota(order.begin(), order.end(), 0);
  for (int i = g.n() - 1; i > 0; --i)
    std::swap(order[i], order[rng.next_below(i + 1)]);

  std::vector<int> dist_to_seed(g.n(), -1);
  std::vector<int> seeds;
  for (int v : order) {
    if (dist_to_seed[v] >= 0 && dist_to_seed[v] <= radius) continue;
    seeds.push_back(v);
    // Relax distances from the new seed out to `radius`.
    std::vector<int> frontier{v};
    dist_to_seed[v] = 0;
    for (int d = 1; d <= radius && !frontier.empty(); ++d) {
      std::vector<int> next;
      for (int u : frontier)
        for (const auto& arc : g.arcs(u))
          if (dist_to_seed[arc.to] < 0 || dist_to_seed[arc.to] > d) {
            dist_to_seed[arc.to] = d;
            next.push_back(arc.to);
          }
      frontier.swap(next);
    }
  }
  return grow_territories(g, seeds);
}

}  // namespace pw::graph
