#include "src/graph/generators.hpp"

#include <algorithm>
#include <unordered_set>

namespace pw::graph::gen {

namespace {

std::uint64_t edge_key(int u, int v) {
  if (u > v) std::swap(u, v);
  return (static_cast<std::uint64_t>(u) << 32) | static_cast<std::uint32_t>(v);
}

}  // namespace

Graph path(int n) {
  PW_CHECK(n >= 1);
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  for (int v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1, 1});
  return Graph::from_edges(n, std::move(edges));
}

Graph cycle(int n) {
  PW_CHECK(n >= 3);
  std::vector<Edge> edges;
  edges.reserve(n);
  for (int v = 0; v + 1 < n; ++v) edges.push_back({v, v + 1, 1});
  edges.push_back({n - 1, 0, 1});
  return Graph::from_edges(n, std::move(edges));
}

Graph complete(int n) {
  PW_CHECK(n >= 1);
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * (n - 1) / 2);
  for (int u = 0; u < n; ++u)
    for (int v = u + 1; v < n; ++v) edges.push_back({u, v, 1});
  return Graph::from_edges(n, std::move(edges));
}

Graph star(int n) {
  PW_CHECK(n >= 2);
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  for (int v = 1; v < n; ++v) edges.push_back({0, v, 1});
  return Graph::from_edges(n, std::move(edges));
}

Graph grid(int rows, int cols) {
  PW_CHECK(rows >= 1 && cols >= 1);
  std::vector<Edge> edges;
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      if (c + 1 < cols)
        edges.push_back({grid_id(r, c, cols), grid_id(r, c + 1, cols), 1});
      if (r + 1 < rows)
        edges.push_back({grid_id(r, c, cols), grid_id(r + 1, c, cols), 1});
    }
  return Graph::from_edges(rows * cols, std::move(edges));
}

Graph torus(int rows, int cols) {
  PW_CHECK(rows >= 3 && cols >= 3);
  std::vector<Edge> edges;
  for (int r = 0; r < rows; ++r)
    for (int c = 0; c < cols; ++c) {
      edges.push_back({grid_id(r, c, cols), grid_id(r, (c + 1) % cols, cols), 1});
      edges.push_back({grid_id(r, c, cols), grid_id((r + 1) % rows, c, cols), 1});
    }
  return Graph::from_edges(rows * cols, std::move(edges));
}

Graph hypercube(int dim) {
  PW_CHECK(dim >= 1 && dim <= 20);
  const int n = 1 << dim;
  std::vector<Edge> edges;
  edges.reserve(static_cast<std::size_t>(n) * dim / 2);
  for (int v = 0; v < n; ++v)
    for (int b = 0; b < dim; ++b)
      if ((v ^ (1 << b)) > v) edges.push_back({v, v ^ (1 << b), 1});
  return Graph::from_edges(n, std::move(edges));
}

Graph balanced_tree(int n, int branch) {
  PW_CHECK(n >= 1 && branch >= 1);
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  for (int v = 1; v < n; ++v) edges.push_back({(v - 1) / branch, v, 1});
  return Graph::from_edges(n, std::move(edges));
}

Graph random_tree(int n, Rng& rng) {
  PW_CHECK(n >= 1);
  if (n == 1) return Graph::from_edges(1, {});
  if (n == 2) return Graph::from_edges(2, {{0, 1, 1}});
  // Decode a uniform random Prüfer sequence.
  std::vector<int> pruefer(n - 2);
  for (auto& x : pruefer) x = static_cast<int>(rng.next_below(n));
  std::vector<int> degree(n, 1);
  for (int x : pruefer) ++degree[x];
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  // Min-leaf extraction via a moving pointer (classic O(n log n)-free trick).
  int ptr = 0;
  while (degree[ptr] != 1) ++ptr;
  int leaf = ptr;
  for (int x : pruefer) {
    edges.push_back({leaf, x, 1});
    if (--degree[x] == 1 && x < ptr) {
      leaf = x;
    } else {
      ++ptr;
      while (degree[ptr] != 1) ++ptr;
      leaf = ptr;
    }
  }
  edges.push_back({leaf, n - 1, 1});
  return Graph::from_edges(n, std::move(edges));
}

Graph caterpillar(int spine, int legs) {
  PW_CHECK(spine >= 1 && legs >= 0);
  const int n = spine * (1 + legs);
  std::vector<Edge> edges;
  edges.reserve(n - 1);
  for (int s = 0; s + 1 < spine; ++s) edges.push_back({s, s + 1, 1});
  int next = spine;
  for (int s = 0; s < spine; ++s)
    for (int l = 0; l < legs; ++l) edges.push_back({s, next++, 1});
  return Graph::from_edges(n, std::move(edges));
}

Graph k_tree(int n, int k, Rng& rng) {
  PW_CHECK(k >= 1 && n >= k + 1);
  std::vector<Edge> edges;
  // Track the k-cliques a new node may attach to. Each clique is a list of k
  // node ids. Start with all k-subsets of the initial (k+1)-clique.
  std::vector<std::vector<int>> cliques;
  for (int u = 0; u < k + 1; ++u)
    for (int v = u + 1; v < k + 1; ++v) edges.push_back({u, v, 1});
  for (int skip = 0; skip < k + 1; ++skip) {
    std::vector<int> c;
    for (int u = 0; u < k + 1; ++u)
      if (u != skip) c.push_back(u);
    cliques.push_back(std::move(c));
  }
  for (int v = k + 1; v < n; ++v) {
    // Copy: the loop below grows `cliques`, which would invalidate a
    // reference into it.
    const std::vector<int> host = cliques[rng.next_below(cliques.size())];
    for (int u : host) edges.push_back({u, v, 1});
    // New k-cliques: host with one member replaced by v.
    for (int skip = 0; skip < k; ++skip) {
      std::vector<int> c = host;
      c[skip] = v;
      cliques.push_back(std::move(c));
    }
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph random_connected(int n, int m, Rng& rng) {
  PW_CHECK(n >= 1);
  PW_CHECK(m >= n - 1);
  PW_CHECK(static_cast<std::int64_t>(m) <=
           static_cast<std::int64_t>(n) * (n - 1) / 2);
  std::unordered_set<std::uint64_t> used;
  std::vector<Edge> edges;
  edges.reserve(m);
  // Random spanning tree via a random attachment order (uniform over a rich
  // family; exact uniformity over spanning trees is not needed here).
  std::vector<int> order(n);
  for (int i = 0; i < n; ++i) order[i] = i;
  for (int i = n - 1; i > 0; --i)
    std::swap(order[i], order[rng.next_below(i + 1)]);
  for (int i = 1; i < n; ++i) {
    const int u = order[i];
    const int v = order[rng.next_below(i)];
    edges.push_back({u, v, 1});
    used.insert(edge_key(u, v));
  }
  while (static_cast<int>(edges.size()) < m) {
    const int u = static_cast<int>(rng.next_below(n));
    const int v = static_cast<int>(rng.next_below(n));
    if (u == v) continue;
    if (!used.insert(edge_key(u, v)).second) continue;
    edges.push_back({u, v, 1});
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph apex_grid(int depth, int width) {
  PW_CHECK(depth >= 1 && width >= 1);
  // Node 0 is the apex r; grid node (row, col) has id 1 + row*width + col.
  std::vector<Edge> edges;
  const auto id = [width](int r, int c) { return 1 + grid_id(r, c, width); };
  for (int c = 0; c < width; ++c) edges.push_back({0, id(0, c), 1});
  for (int r = 0; r < depth; ++r)
    for (int c = 0; c < width; ++c) {
      if (c + 1 < width) edges.push_back({id(r, c), id(r, c + 1), 1});
      if (r + 1 < depth) edges.push_back({id(r, c), id(r + 1, c), 1});
    }
  return Graph::from_edges(1 + depth * width, std::move(edges));
}

Graph lollipop(int clique, int handle) {
  PW_CHECK(clique >= 1 && handle >= 0);
  const int n = clique + handle;
  std::vector<Edge> edges;
  for (int u = 0; u < clique; ++u)
    for (int v = u + 1; v < clique; ++v) edges.push_back({u, v, 1});
  for (int i = 0; i < handle; ++i) {
    const int prev = (i == 0) ? 0 : clique + i - 1;
    edges.push_back({prev, clique + i, 1});
  }
  return Graph::from_edges(n, std::move(edges));
}

Graph broom(int handle, int bristles) {
  PW_CHECK(handle >= 1 && bristles >= 0);
  const int n = handle + bristles;
  std::vector<Edge> edges;
  for (int v = 0; v + 1 < handle; ++v) edges.push_back({v, v + 1, 1});
  for (int b = 0; b < bristles; ++b) edges.push_back({handle - 1, handle + b, 1});
  return Graph::from_edges(n, std::move(edges));
}

Graph with_random_weights(const Graph& g, Weight max_w, Rng& rng) {
  PW_CHECK(max_w >= 1);
  std::vector<Edge> edges = g.edges();
  for (auto& e : edges) e.w = 1 + static_cast<Weight>(rng.next_below(max_w));
  return Graph::from_edges(g.n(), std::move(edges));
}

}  // namespace pw::graph::gen
