#include "src/graph/properties.hpp"

#include <algorithm>
#include <queue>

namespace pw::graph {

std::vector<int> bfs_distances(const Graph& g, int src) {
  std::vector<int> dist(g.n(), -1);
  std::vector<int> frontier{src};
  dist[src] = 0;
  int d = 0;
  std::vector<int> next;
  while (!frontier.empty()) {
    ++d;
    next.clear();
    for (int v : frontier)
      for (const auto& arc : g.arcs(v))
        if (dist[arc.to] < 0) {
          dist[arc.to] = d;
          next.push_back(arc.to);
        }
    frontier.swap(next);
  }
  return dist;
}

bool is_connected(const Graph& g) {
  if (g.n() == 0) return true;
  const auto dist = bfs_distances(g, 0);
  return std::none_of(dist.begin(), dist.end(), [](int d) { return d < 0; });
}

int eccentricity(const Graph& g, int src) {
  const auto dist = bfs_distances(g, src);
  int ecc = 0;
  for (int d : dist) {
    PW_CHECK_MSG(d >= 0, "eccentricity on a disconnected graph");
    ecc = std::max(ecc, d);
  }
  return ecc;
}

int diameter_exact(const Graph& g) {
  int diam = 0;
  for (int v = 0; v < g.n(); ++v) diam = std::max(diam, eccentricity(g, v));
  return diam;
}

int diameter_estimate(const Graph& g) {
  if (g.n() == 0) return 0;
  // Double sweep: BFS from 0, then BFS from the farthest node found.
  const auto d0 = bfs_distances(g, 0);
  int far = 0;
  for (int v = 0; v < g.n(); ++v) {
    PW_CHECK_MSG(d0[v] >= 0, "diameter_estimate on a disconnected graph");
    if (d0[v] > d0[far]) far = v;
  }
  return eccentricity(g, far);
}

std::pair<std::vector<int>, int> components(const Graph& g) {
  std::vector<int> comp(g.n(), -1);
  int count = 0;
  std::vector<int> stack;
  for (int s = 0; s < g.n(); ++s) {
    if (comp[s] >= 0) continue;
    comp[s] = count;
    stack.push_back(s);
    while (!stack.empty()) {
      const int v = stack.back();
      stack.pop_back();
      for (const auto& arc : g.arcs(v))
        if (comp[arc.to] < 0) {
          comp[arc.to] = count;
          stack.push_back(arc.to);
        }
    }
    ++count;
  }
  return {std::move(comp), count};
}

std::vector<std::int64_t> dijkstra(const Graph& g, int src) {
  std::vector<std::int64_t> dist(g.n(), -1);
  using Item = std::pair<std::int64_t, int>;
  std::priority_queue<Item, std::vector<Item>, std::greater<>> pq;
  pq.emplace(0, src);
  while (!pq.empty()) {
    const auto [d, v] = pq.top();
    pq.pop();
    if (dist[v] >= 0) continue;
    dist[v] = d;
    for (const auto& arc : g.arcs(v)) {
      if (dist[arc.to] >= 0) continue;
      const Weight w = g.edge(arc.edge).w;
      PW_CHECK(w >= 0);
      pq.emplace(d + w, arc.to);
    }
  }
  return dist;
}

}  // namespace pw::graph
