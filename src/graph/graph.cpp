#include "src/graph/graph.hpp"

#include <algorithm>
#include <unordered_set>

namespace pw::graph {

Graph Graph::from_edges(int n, std::vector<Edge> edges) {
  PW_CHECK(n >= 0);
  Graph g;
  g.n_ = n;

  // Normalize and validate.
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(edges.size() * 2);
  for (auto& e : edges) {
    PW_CHECK_MSG(e.u >= 0 && e.u < n && e.v >= 0 && e.v < n,
                 "edge endpoint out of range (n=%d u=%d v=%d)", n, e.u, e.v);
    PW_CHECK_MSG(e.u != e.v, "self-loop at node %d", e.u);
    if (e.u > e.v) std::swap(e.u, e.v);
    const std::uint64_t key =
        (static_cast<std::uint64_t>(e.u) << 32) | static_cast<std::uint32_t>(e.v);
    PW_CHECK_MSG(seen.insert(key).second, "parallel edge (%d,%d)", e.u, e.v);
  }
  g.edges_ = std::move(edges);

  // Degree counting and CSR fill.
  g.adj_off_.assign(n + 1, 0);
  for (const auto& e : g.edges_) {
    ++g.adj_off_[e.u + 1];
    ++g.adj_off_[e.v + 1];
  }
  for (int v = 0; v < n; ++v) g.adj_off_[v + 1] += g.adj_off_[v];

  const int num_arcs = 2 * static_cast<int>(g.edges_.size());
  g.arcs_.resize(num_arcs);
  g.mirror_.resize(num_arcs);
  g.arc_owner_.resize(num_arcs);
  std::vector<int> cursor(g.adj_off_.begin(), g.adj_off_.end() - 1);
  for (int e = 0; e < static_cast<int>(g.edges_.size()); ++e) {
    const auto& edge = g.edges_[e];
    const int a_uv = cursor[edge.u]++;
    const int a_vu = cursor[edge.v]++;
    g.arcs_[a_uv] = Arc{edge.v, e};
    g.arcs_[a_vu] = Arc{edge.u, e};
    g.mirror_[a_uv] = a_vu;
    g.mirror_[a_vu] = a_uv;
    g.arc_owner_[a_uv] = edge.u;
    g.arc_owner_[a_vu] = edge.v;
  }
  return g;
}

int Graph::port_to(int u, int v) const {
  const auto out = arcs(u);
  for (int k = 0; k < static_cast<int>(out.size()); ++k)
    if (out[k].to == v) return k;
  return -1;
}

std::int64_t Graph::total_weight() const {
  std::int64_t s = 0;
  for (const auto& e : edges_) s += e.w;
  return s;
}

}  // namespace pw::graph
