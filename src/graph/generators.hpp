// Graph family generators used across tests and benchmarks.
//
// The families mirror the ones the paper's Appendix C tables reason about:
//   - general graphs            -> random_connected (Erdős–Rényi G(n,m) kept connected)
//   - planar graphs             -> grid
//   - bounded-treewidth graphs  -> k_tree
//   - bounded-pathwidth graphs  -> caterpillar, path
// plus the Ω(nD)-message lower-bound network of Figure 2a (`apex_grid`) and
// assorted structural families (star, hypercube, torus, broom, ...).
#pragma once

#include "src/graph/graph.hpp"
#include "src/util/rng.hpp"

namespace pw::graph::gen {

Graph path(int n);
Graph cycle(int n);
Graph complete(int n);
Graph star(int n);  // node 0 is the hub; n-1 leaves
Graph grid(int rows, int cols);
Graph torus(int rows, int cols);
Graph hypercube(int dim);

// A balanced tree where every internal node has `branch` children, grown to
// exactly n nodes in BFS order.
Graph balanced_tree(int n, int branch);

// Uniform random labelled tree (random Prüfer sequence).
Graph random_tree(int n, Rng& rng);

// Spine of `spine` nodes, each with `legs` pendant leaves. Pathwidth 1.
Graph caterpillar(int spine, int legs);

// Partial k-tree on n nodes (treewidth exactly k for n > k): start from a
// (k+1)-clique and repeatedly attach a new node to a random existing
// k-clique.
Graph k_tree(int n, int k, Rng& rng);

// Connected Erdős–Rényi-style graph: a random spanning tree plus
// (m - n + 1) extra distinct random edges.
Graph random_connected(int n, int m, Rng& rng);

// The paper's Figure 2a lower-bound network: a `depth` x `width` grid plus an
// apex node r (id 0) adjacent to every node of the top row. Rows are the
// natural "parts" and the columns the natural shortcut edges.
Graph apex_grid(int depth, int width);

// A path of length `handle` attached to a complete graph on `clique` nodes
// ("lollipop"); stresses the D vs sqrt(n) trade-off.
Graph lollipop(int clique, int handle);

// A path of `handle` nodes whose last node holds `bristles` pendant leaves.
Graph broom(int handle, int bristles);

// Copies g with fresh uniform random weights in [1, max_w].
Graph with_random_weights(const Graph& g, Weight max_w, Rng& rng);

// Node id helper for grid-family generators: the node at (row, col).
inline int grid_id(int row, int col, int cols) { return row * cols + col; }

}  // namespace pw::graph::gen
