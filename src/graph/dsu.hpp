// Union-find with path halving and union by size.
//
// Used by centralized reference algorithms (Kruskal, connectivity checks)
// and by validators; never by the distributed algorithms themselves.
#pragma once

#include <numeric>
#include <vector>

namespace pw::graph {

class Dsu {
 public:
  explicit Dsu(int n) : parent_(n), size_(n, 1), components_(n) {
    std::iota(parent_.begin(), parent_.end(), 0);
  }

  int find(int x) {
    while (parent_[x] != x) {
      parent_[x] = parent_[parent_[x]];
      x = parent_[x];
    }
    return x;
  }

  // Returns true when x and y were in different components.
  bool unite(int x, int y) {
    x = find(x);
    y = find(y);
    if (x == y) return false;
    if (size_[x] < size_[y]) std::swap(x, y);
    parent_[y] = x;
    size_[x] += size_[y];
    --components_;
    return true;
  }

  bool same(int x, int y) { return find(x) == find(y); }
  int component_size(int x) { return size_[find(x)]; }
  int components() const { return components_; }

 private:
  std::vector<int> parent_;
  std::vector<int> size_;
  int components_;
};

}  // namespace pw::graph
