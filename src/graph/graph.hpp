// Static undirected weighted graph in CSR form.
//
// This is the substrate every CONGEST algorithm in the library runs on.
// Nodes are 0..n-1. Each undirected edge is stored once in `edges()` and
// twice as directed arcs in the adjacency structure; the arc index doubles
// as the "port" identifier a CONGEST node uses to address a neighbor
// (nodes address neighbors by port, never by global topology knowledge).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/util/check.hpp"

namespace pw::graph {

using Weight = std::int64_t;

struct Edge {
  int u = 0;
  int v = 0;
  Weight w = 1;
};

// A directed adjacency entry ("port") of some node.
struct Arc {
  int to = 0;    // neighbor node id
  int edge = 0;  // undirected edge id
};

class Graph {
 public:
  Graph() = default;

  // Builds the CSR structure. Self-loops are rejected; parallel edges are
  // allowed by the representation but rejected here because CONGEST
  // algorithms in this library assume simple graphs.
  static Graph from_edges(int n, std::vector<Edge> edges);

  int n() const { return n_; }
  int m() const { return static_cast<int>(edges_.size()); }

  const Edge& edge(int e) const { return edges_[static_cast<std::size_t>(e)]; }
  const std::vector<Edge>& edges() const { return edges_; }

  int degree(int v) const { return adj_off_[v + 1] - adj_off_[v]; }

  // All arcs out of v. The k-th entry is "port k of v".
  std::span<const Arc> arcs(int v) const {
    return {arcs_.data() + adj_off_[v],
            static_cast<std::size_t>(degree(v))};
  }

  // Global directed-slot id of port k of node v (used by the simulator for
  // per-directed-edge bookkeeping).
  int arc_id(int v, int k) const { return adj_off_[v] + k; }
  int num_arcs() const { return static_cast<int>(arcs_.size()); }

  // The arc on the other side of arc `a` (the reverse direction).
  int mirror(int a) const { return mirror_[static_cast<std::size_t>(a)]; }

  // Node that owns arc id `a` (the sender side).
  int arc_owner(int a) const { return arc_owner_[static_cast<std::size_t>(a)]; }
  const Arc& arc(int a) const { return arcs_[static_cast<std::size_t>(a)]; }

  // Port index of arc `a` within its owner's arc list: the inverse of
  // arc_id(owner, port), i.e. arc_id(arc_owner(a), port_of_arc(a)) == a.
  // The simulator uses this to translate a mirror arc into the receiver's
  // port. O(1).
  int port_of_arc(int a) const {
    return a - adj_off_[static_cast<std::size_t>(arc_owner(a))];
  }

  // Port index of the arc from u to v; -1 when u and v are not adjacent.
  // Linear in deg(u); use only in setup/validation code, not inner loops.
  int port_to(int u, int v) const;

  std::int64_t total_weight() const;

 private:
  int n_ = 0;
  std::vector<Edge> edges_;
  std::vector<int> adj_off_;   // size n+1
  std::vector<Arc> arcs_;      // size 2m
  std::vector<int> mirror_;    // size 2m
  std::vector<int> arc_owner_; // size 2m
};

}  // namespace pw::graph
