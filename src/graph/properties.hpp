// Centralized graph property computations.
//
// These run outside the CONGEST model and are used for (a) sizing the
// distributed algorithms' round budgets (the paper states bounds in terms of
// the true diameter D), and (b) validating distributed outputs in tests.
#pragma once

#include <vector>

#include "src/graph/graph.hpp"

namespace pw::graph {

// Unweighted BFS distances from src; unreachable nodes get -1.
std::vector<int> bfs_distances(const Graph& g, int src);

bool is_connected(const Graph& g);

// Largest BFS distance from src (the eccentricity of src).
int eccentricity(const Graph& g, int src);

// Exact diameter by all-pairs BFS. O(nm): fine for the graph sizes the test
// and benchmark suites use (n up to a few tens of thousands on sparse
// graphs); prefer diameter_estimate for bigger inputs.
int diameter_exact(const Graph& g);

// Double-sweep estimate: a lower bound on the diameter that is exact on
// trees and within a factor 2 in general.
int diameter_estimate(const Graph& g);

// Connected components labelling; returns (component id per node, count).
std::pair<std::vector<int>, int> components(const Graph& g);

// Shortest-path distances with nonnegative weights (Dijkstra); unreachable
// nodes get -1. Reference for the approximate-SSSP application.
std::vector<std::int64_t> dijkstra(const Graph& g, int src);

}  // namespace pw::graph
