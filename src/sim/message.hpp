// CONGEST messages.
//
// The CONGEST model allows one O(log n)-bit message per edge per direction
// per round. A Msg carries a small tag plus three 64-bit words — a constant
// number of machine words, i.e. O(log n) bits for any polynomial-range
// payload (node ids, part ids, edge weights in [1, poly(n)], aggregate
// values). The static_assert keeps the type from silently growing past the
// model's budget.
#pragma once

#include <cstdint>

namespace pw::sim {

struct Msg {
  std::uint16_t tag = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};
static_assert(sizeof(Msg) <= 32, "Msg must stay O(log n) bits");

// A delivered message as seen by the receiver.
struct Incoming {
  int from = -1;  // sender node id
  int port = -1;  // receiver's port (index into graph().arcs(receiver))
  Msg msg;
};

}  // namespace pw::sim
