#include "src/sim/transport.hpp"

#include <cstdio>

#if defined(__unix__) || defined(__APPLE__)
#include <sys/mman.h>
#define PW_HAVE_MMAP 1
#endif

namespace pw::sim {

ShmArena::ShmArena(std::size_t bytes) : size_(bytes < 64 ? 64 : bytes) {
#if PW_HAVE_MMAP
  void* p = ::mmap(nullptr, size_, PROT_READ | PROT_WRITE,
                   MAP_SHARED | MAP_ANONYMOUS, -1, 0);
  if (p != MAP_FAILED) {
    base_ = p;
    mapped_ = true;
    return;
  }
#endif
  // Heap fallback (mmap unavailable or exhausted): rings still work within
  // the process; only the fork-sharing property is lost.
  base_ = ::operator new(size_, std::align_val_t{64});
  std::memset(base_, 0, size_);
}

ShmArena::~ShmArena() {
#if PW_HAVE_MMAP
  if (mapped_) {
    ::munmap(base_, size_);
    return;
  }
#endif
  ::operator delete(base_, std::align_val_t{64});
}

ShmRingTransport::ShmRingTransport(int num_shards,
                                   const std::vector<int>& bucket_base,
                                   int* staging_to, Incoming* staging_inc)
    : num_shards_(num_shards),
      bucket_base_(bucket_base),
      staging_to_(staging_to),
      staging_inc_(staging_inc) {
  const int S = num_shards_;
  PW_CHECK(S >= 1 &&
           bucket_base_.size() == static_cast<std::size_t>(S) * S + 1);
  rings_.resize(static_cast<std::size_t>(S) * S);

  // Segment layout: the rings of every nonzero cross-shard link, cache-line
  // packed, in (d, s) order. Offsets first, then one mapping, then placement-
  // new each header.
  std::vector<std::size_t> off(static_cast<std::size_t>(S) * S, SIZE_MAX);
  std::size_t total = 0;
  for (int d = 0; d < S; ++d)
    for (int s = 0; s < S; ++s) {
      if (s == d) continue;  // the self link is loopback, never a ring
      const auto b = static_cast<std::size_t>(d) * S + s;
      const int cap = bucket_base_[b + 1] - bucket_base_[b];
      if (cap == 0) continue;
      off[b] = total;
      total += SpscRing::bytes(cap);
    }
  arena_ = std::make_unique<ShmArena>(total);
  auto* base = static_cast<unsigned char*>(arena_->base());
  for (int d = 0; d < S; ++d)
    for (int s = 0; s < S; ++s) {
      const auto b = static_cast<std::size_t>(d) * S + s;
      if (off[b] == SIZE_MAX) continue;
      const int cap = bucket_base_[b + 1] - bucket_base_[b];
      rings_[b] = SpscRing(base + off[b], cap, /*create=*/true);
    }
}

BucketView ShmRingTransport::bucket(int s, int d) {
  const auto b = static_cast<std::size_t>(d) * num_shards_ + s;
  const SpscRing& r = rings_[b];
  if (r.attached()) return BucketView{r.to(), r.inc()};
  // Loopback (s == d) and zero-capacity links carry no ring: the bucket
  // lives in the staging arena at its prefix-sum offset, exactly like the
  // identity transport.
  const auto base = static_cast<std::size_t>(bucket_base_[b]);
  return BucketView{staging_to_ + base, staging_inc_ + base};
}

void ShmRingTransport::publish(int s, int d, int count) {
  if (s == d) return;  // loopback: the merge reads staging directly
  SpscRing& r = rings_[static_cast<std::size_t>(d) * num_shards_ + s];
  if (!r.attached()) {
    // Zero-capacity links carry no ring and are never sealed (§8: no
    // dependency edge), so a publish here is a protocol violation.
    PW_CHECK_MSG(false, "publish on the zero-capacity link (%d -> %d)", s, d);
  }
  // The frame's records were staged in place; publishing is the count store
  // plus the release bump.
  r.publish(count);
}

void ShmRingTransport::drain(int s, int d, int count) {
  if (s == d) return;  // loopback: never left the process, nothing to check
  const SpscRing& r = rings_[static_cast<std::size_t>(d) * num_shards_ + s];
  if (!r.attached()) {
    PW_CHECK_MSG(count == 0, "staged traffic on the zero-capacity link "
                             "(%d -> %d)", s, d);
    return;
  }
  // In-engine drains never block: the §8 seal machinery ordered the publish
  // before this merge ran. A missing or short frame is a protocol bug, not a
  // wait. The frame stays in the ring — the merge reads it in place — and is
  // retired only after the commit pass copied it out.
  PW_CHECK_MSG(r.frame_ready(),
               "merge drained link (%d -> %d) before its frame published "
               "(§10 seal/publish mapping broken)",
               s, d);
  PW_CHECK_MSG(r.frame_count() == count,
               "link (%d -> %d) frame carries %d records, cursor says %d",
               s, d, r.frame_count(), count);
}

void ShmRingTransport::retire(int s, int d) {
  if (s == d) return;
  SpscRing& r = rings_[static_cast<std::size_t>(d) * num_shards_ + s];
  if (!r.attached()) return;
  PW_CHECK_MSG(r.frame_ready(),
               "retire on link (%d -> %d) with no frame in flight", s, d);
  r.consume();
}

void ShmRingTransport::watchdog_dump() const {
  const int S = num_shards_;
  for (int d = 0; d < S; ++d)
    for (int s = 0; s < S; ++s) {
      const SpscRing& r = rings_[static_cast<std::size_t>(d) * S + s];
      if (!r.attached()) continue;
      const std::uint64_t pub = r.pub_seq();
      const std::uint64_t cons = r.cons_seq();
      // pub == cons: the link is idle — if its consumer is parked, the
      // producer died (or withheld its seal) before publishing this round's
      // frame. pub == cons + 1: a frame is in flight awaiting drain.
      std::fprintf(stderr,
                   "PW_WATCHDOG: ring (%d -> %d): capacity %d published "
                   "%llu consumed %llu%s\n",
                   s, d, r.capacity(), static_cast<unsigned long long>(pub),
                   static_cast<unsigned long long>(cons),
                   pub == cons ? " (stalled: awaiting publish)"
                               : " (frame in flight)");
    }
}

}  // namespace pw::sim
