// Persistent worker pool for the sharded CONGEST data plane (DESIGN.md §7, §8).
//
// The engine runs two kinds of shard-parallel work per round: the user's
// per-node callbacks (Engine::run) and the deterministic end-of-round merge.
// Both dispatch through this executor, either as two barriered phases
// (parallel(), DESIGN.md §7) or fused into one dependency-driven two-stage
// dispatch that overlaps them (pipeline(), DESIGN.md §8). Workers are spawned
// once at engine construction and parked on a futex between dispatches — no
// per-round thread creation, no steady-state heap allocation, and a plain
// function pointer + context void* instead of std::function (whose assignment
// may allocate).
//
// Task t of a stage-1 dispatch always executes on thread t (the calling
// thread runs task 0), so a task owns the same shard every round —
// shard-local state needs no synchronization beyond the dispatch barrier
// itself. Stage-2 tasks of a pipeline() dispatch are instead claimed
// dynamically from a ready ring: they may run on any thread, but each runs
// exactly once and only after every stage-1 task feeding it has finished, so
// the state a stage-2 task touches is still single-writer by construction.
//
// Sealing comes in two granularities (DESIGN.md §8): by default the executor
// seals a whole stage-1 task when its function returns (every out-edge at
// once). With caller_seals the stage-1 function instead calls seal(d) itself,
// edge by edge, from INSIDE its run — the data plane uses this to seal bucket
// (s, d) the moment the last active sender of shard s with arcs into d has
// executed, publishing destination merges to the ready ring while most of the
// sweep is still running. The dependency counters don't care who decrements
// them; a caller-seals stage-1 task must issue exactly its out-degree of
// seal() calls (checked after the dispatch: every counter must be zero).
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace pw::sim {

// How Engine executes rounds. num_threads == 1 (the default) is the fully
// sequential engine: no worker threads are spawned and every dispatch runs
// inline. num_threads > 1 shards the data plane and runs callbacks and the
// end-of-round merge shard-parallel; accounting and delivery stay
// bit-identical to the sequential engine (DESIGN.md §7).
//
// `pipeline` (default on, meaningful only with num_threads > 1) selects the
// pipelined round close of DESIGN.md §8 for Engine::run: a worker that
// finishes its callback shard immediately starts merging any destination
// shard whose incoming traffic is complete, instead of waiting at a full
// barrier between the callback and merge phases. Accounting stays
// bit-identical either way; the flag exists so benchmarks can measure both
// modes and bisection can rule the overlap machinery in or out.
// `eager_seal` (default on, meaningful only when `pipeline` is in effect)
// selects the bucket-granular seal of §8: stage-1 callback sweeps seal each
// (sender, destination) bucket as soon as the last active sender with arcs
// into that destination has run, instead of sealing the whole shard at sweep
// end — on skewed rounds destination merges start while most callbacks are
// still running. Off = the shard-granular pipelined close (the PR 3
// behavior), kept as a bisection/benchmark switch like `pipeline` itself.
// `watchdog_ms` (default 60 s, 0 = off) arms the no-progress watchdog of
// DESIGN.md §9 on the executor's blocking waits: if a pipelined-close wait
// (the dispatch barrier or a ready-ring claim) sees no executor-wide progress
// for a full window, the run aborts with a diagnostic dump — dependency
// counters, ready ring, per-thread stage, per-bucket seal states — instead of
// hanging CI forever. The known failure class it converts into a diagnosis is
// a missed seal (§8); the PW_WATCHDOG_MS environment variable overrides the
// policy value for whole-process tuning.
struct ExecutionPolicy {
  int num_threads = 1;
  bool pipeline = true;
  bool eager_seal = true;
  int watchdog_ms = 60000;

  // The default multi-threaded policy: one worker per hardware thread
  // (pipelined close on). What the examples and CLIs construct engines with
  // unless the user picks a thread count explicitly.
  static ExecutionPolicy hardware() {
    return {static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()))};
  }
};

class Executor {
 public:
  using TaskFn = void (*)(void* ctx, int task);

  // Static dependency graph of a pipeline() dispatch, owned by the caller
  // (the data plane builds it once at construction). Stage-1 task s feeds the
  // stage-2 tasks out[out_beg[s] .. out_beg[s+1]); dep_count[d] is the number
  // of distinct stage-1 tasks feeding stage-2 task d and must match the edge
  // lists exactly (every stage-2 task needs dep_count >= 1, so it cannot
  // start before the dispatch does).
  struct PipelineDeps {
    const int* out_beg = nullptr;    // size num_tasks + 1
    const int* out = nullptr;        // concatenated stage-2 out-lists
    const int* dep_count = nullptr;  // size num_tasks, each >= 1
  };

  // Spawns num_threads - 1 workers (thread 0 is the caller). watchdog_ms
  // arms the no-progress watchdog (§9) on the executor's blocking waits;
  // 0 disables it, the PW_WATCHDOG_MS environment variable overrides either.
  explicit Executor(int num_threads, int watchdog_ms = 0);
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  int num_threads() const { return num_threads_; }

  // Runs fn(ctx, t) for every t in [0, num_tasks), task t on thread t, and
  // returns when all tasks finished (a full barrier: every task's writes are
  // visible to the caller). num_tasks must not exceed num_threads(). Not
  // reentrant: tasks must not call parallel() themselves.
  void parallel(int num_tasks, TaskFn fn, void* ctx);

  // Two-stage dependency-driven dispatch (DESIGN.md §8): runs stage-1 task t
  // on thread t exactly like parallel(); the moment a thread finishes its
  // stage-1 task it SEALS it — decrementing the dependency counters of the
  // stage-2 tasks it feeds (deps.out) — and the thread that drops a counter
  // to zero publishes that stage-2 task to a shared ready ring. Threads then
  // claim published stage-2 tasks (any thread, each task exactly once) until
  // all num_tasks of them have run, so stage-2 work for one task overlaps
  // stage-1 work of tasks it does not depend on. Returns when both stages
  // finished everywhere (a full barrier like parallel()); there is no barrier
  // BETWEEN the stages. Not reentrant, and this_task() inside a stage-2 task
  // reports the stage-2 task id.
  //
  // With caller_seals the automatic end-of-task seal is suppressed: stage1
  // must call seal(d) exactly once for every d in its deps.out list, at any
  // point during (or after) its run — the bucket-granular eager seal of §8.
  // Either way the dispatch ends with every dependency counter at zero
  // (checked: a missed seal would deadlock a merge, a double seal could run
  // one twice).
  void pipeline(int num_tasks, TaskFn stage1, TaskFn stage2,
                const PipelineDeps& deps, void* ctx, bool caller_seals = false);

  // Seals one dependency edge into stage-2 task d from inside a running
  // stage-1 task of a caller_seals pipeline() dispatch: decrements d's
  // dependency counter (acq_rel, so everything the caller wrote for d is
  // published) and, on reaching zero, publishes d to the ready ring. The
  // caller must own the edge (each (stage-1 task, d) edge seals exactly
  // once). No-op outside a multi-thread pipeline dispatch so the degenerate
  // inline path can share the stage-1 code.
  void seal(int d);

  // True when no dispatch is in flight (all workers have finished their
  // tasks and reported). Between dispatches this is the executor's resting
  // state; Engine::drain() checks it before discarding round state.
  bool quiescent() const {
    return outstanding_.load(std::memory_order_acquire) == 0;
  }

  // Task index of the calling thread inside a dispatch, -1 outside. During
  // stage 1 of pipeline() (and all of parallel()) this is the shard the
  // thread owns; the data plane uses it to pin shard ownership violations.
  static int this_task();

  // --- watchdog (§9) --------------------------------------------------------

  // Progress heartbeat for long stage-1 sweeps: Engine::run ticks once per
  // callback so a legitimately slow round (one shard grinding through a huge
  // sweep while every other thread is parked on it) never reads as a hang.
  // Seals, stage completions, and dispatch exits beat implicitly. Callable
  // only from inside a stage-1 task (per-thread slot, relaxed, owned line).
  void tick();

  // Registers the owner's state dump, appended to the executor's own when
  // the watchdog fires (the data plane prints per-bucket seal states there).
  void set_watchdog_dump(void (*fn)(void*), void* ctx) {
    dump_fn_ = fn;
    dump_ctx_ = ctx;
  }

  // TEST HOOK (§9): the next seal() call by stage-1 task `task` for stage-2
  // task `dest` is swallowed — the missed-seal deadlock class, on demand.
  // dest's dependency counter never reaches zero, some claim wait never
  // returns, and the watchdog must convert the hang into a diagnostic abort.
  void debug_withhold_seal(int task, int dest) {
    withhold_task_.store(task, std::memory_order_relaxed);
    withhold_dest_.store(dest, std::memory_order_relaxed);
  }

 private:
  // Per-thread watchdog state, one cache line each: a monotone tick counter
  // (summed into the progress signature) and the phase/task pair the dump
  // prints for "where is every thread stuck".
  struct alignas(64) ThreadState {
    std::atomic<std::uint64_t> ticks{0};
    std::atomic<int> phase{0};  // kPhase*
    std::atomic<int> task{-1};
  };
  enum : int {
    kPhaseIdle = 0,
    kPhaseStage1,
    kPhaseBarrier,
    kPhaseClaim,
    kPhaseStage2,
  };

  void worker_loop(int idx);
  void pipeline_thread(int idx);
  void wait_barrier();

  // Blocks until a.load(acquire) != expected and returns the observed value,
  // parking on a timed futex when the watchdog is armed: a full window with
  // no change in the executor-wide progress signature fires the §9 dump +
  // abort. `phase`/`task` describe the wait for the dump.
  int wait_watched(const std::atomic<int>& a, int expected, int phase,
                   int task);
  std::uint64_t progress_signature() const;
  [[noreturn]] void watchdog_fire(int phase, int task);

  TaskFn fn_ = nullptr;
  void* ctx_ = nullptr;
  TaskFn stage2_ = nullptr;  // non-null marks a pipeline() dispatch
  PipelineDeps deps_{};
  int num_tasks_ = 0;
  bool stop_ = false;
  bool caller_seals_ = false;  // stage-1 fns issue their own seal() calls
  // Dispatch protocol: fn_/ctx_/stage2_/deps_/num_tasks_/stop_ and the
  // pipeline counters below are written by the caller, then published by the
  // generation bump (release); workers acquire-load the generation, run their
  // work, and decrement outstanding_ (release). The caller's acquire-load of
  // outstanding_ == 0 closes the barrier.
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<int> outstanding_{0};
  // Pipeline state, sized to num_threads_ once at construction. ready_ is a
  // ring of published stage-2 task ids (slot -1 = not yet published);
  // ready_tail_ reserves publish slots, ready_head_ claim slots — claiming is
  // a fetch_add, so each published task runs exactly once.
  std::vector<std::atomic<int>> deps_left_;
  std::vector<std::atomic<int>> ready_;
  std::atomic<int> ready_head_{0};
  std::atomic<int> ready_tail_{0};

  // Watchdog state (§9). progress_ is bumped (relaxed) by every seal, stage
  // completion, and dispatch exit; together with the per-thread tick counters
  // it forms the progress signature a blocked wait compares across timeout
  // windows. Zero watchdog_ns_ = disabled (plain untimed parks).
  std::int64_t watchdog_ns_ = 0;
  std::atomic<std::uint64_t> progress_{0};
  std::vector<ThreadState> threads_state_;
  std::atomic<int> fired_{0};  // first firing thread wins; others park
  void (*dump_fn_)(void*) = nullptr;
  void* dump_ctx_ = nullptr;
  // debug_withhold_seal arming, -1 = off. Atomic (relaxed): the matching
  // thread clears the arming mid-dispatch while siblings' seals still read.
  std::atomic<int> withhold_task_{-1};
  std::atomic<int> withhold_dest_{-1};

  std::vector<std::thread> workers_;
  int num_threads_ = 1;
};

}  // namespace pw::sim
