// Persistent worker pool for the sharded CONGEST data plane (DESIGN.md §7).
//
// The engine runs two kinds of shard-parallel work per round: the user's
// per-node callbacks (Engine::run) and the deterministic end_round() merge.
// Both dispatch through this executor. Workers are spawned once at engine
// construction and parked on a futex between dispatches — no per-round thread
// creation, no steady-state heap allocation, and a plain function pointer +
// context void* instead of std::function (whose assignment may allocate).
//
// Task t of a dispatch always executes on thread t (the calling thread runs
// task 0), so a task owns the same shard every round — shard-local state
// needs no synchronization beyond the dispatch barrier itself.
#pragma once

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace pw::sim {

// How Engine executes rounds. num_threads == 1 (the default) is the fully
// sequential engine: no worker threads are spawned and every dispatch runs
// inline. num_threads > 1 shards the data plane and runs callbacks and the
// end_round() merge shard-parallel; accounting and delivery stay bit-identical
// to the sequential engine (DESIGN.md §7).
struct ExecutionPolicy {
  int num_threads = 1;
};

class Executor {
 public:
  using TaskFn = void (*)(void* ctx, int task);

  // Spawns num_threads - 1 workers (thread 0 is the caller).
  explicit Executor(int num_threads);
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  int num_threads() const { return num_threads_; }

  // Runs fn(ctx, t) for every t in [0, num_tasks), task t on thread t, and
  // returns when all tasks finished (a full barrier: every task's writes are
  // visible to the caller). num_tasks must not exceed num_threads(). Not
  // reentrant: tasks must not call parallel() themselves.
  void parallel(int num_tasks, TaskFn fn, void* ctx);

  // Task index of the calling thread inside a parallel() dispatch, -1
  // outside. The data plane uses it to pin shard ownership violations.
  static int this_task();

 private:
  void worker_loop(int idx);

  TaskFn fn_ = nullptr;
  void* ctx_ = nullptr;
  int num_tasks_ = 0;
  bool stop_ = false;
  // Dispatch protocol: fn_/ctx_/num_tasks_/stop_ are written by the caller,
  // then published by the generation bump (release); workers acquire-load the
  // generation, run their task, and decrement outstanding_ (release). The
  // caller's acquire-load of outstanding_ == 0 closes the barrier.
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<int> outstanding_{0};
  std::vector<std::thread> workers_;
  int num_threads_ = 1;
};

}  // namespace pw::sim
