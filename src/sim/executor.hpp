// Persistent worker pool for the sharded CONGEST data plane (DESIGN.md §7, §8).
//
// The engine runs two kinds of shard-parallel work per round: the user's
// per-node callbacks (Engine::run) and the deterministic end-of-round merge.
// Both dispatch through this executor, either as two barriered phases
// (parallel(), DESIGN.md §7) or fused into one dependency-driven two-stage
// dispatch that overlaps them (pipeline(), DESIGN.md §8). Workers are spawned
// once at engine construction and parked on a futex between dispatches — no
// per-round thread creation, no steady-state heap allocation, and a plain
// function pointer + context void* instead of std::function (whose assignment
// may allocate).
//
// Task t of a stage-1 dispatch always executes on thread t (the calling
// thread runs task 0), so a task owns the same shard every round —
// shard-local state needs no synchronization beyond the dispatch barrier
// itself. Stage-2 tasks of a pipeline() dispatch are instead claimed
// dynamically: publishing a task pushes it onto the publisher's own
// work-stealing deque, a free thread pops its own deque first and otherwise
// steals the HEAVIEST top entry across the others (weight from a
// caller-supplied size hook), so a skewed round's heavyweight merge is never
// stuck behind lighter ones that happened to publish earlier. Each task runs
// exactly once on whichever thread wins its claim CAS — the deques only
// schedule, they never own (see ClaimDeque below).
//
// Sealing comes in two granularities (DESIGN.md §8): by default the executor
// seals a whole stage-1 task when its function returns (every out-edge at
// once). With caller_seals the stage-1 function instead calls seal(d) itself,
// edge by edge, from INSIDE its run — the data plane uses this to seal bucket
// (s, d) the moment the last active sender of shard s with arcs into d has
// executed, publishing destination merges while most of the sweep is still
// running. The dependency counters don't care who decrements them; a
// caller-seals stage-1 task must issue exactly its out-degree of seal()
// calls (checked after the dispatch: every counter must be zero).
//
// On top of caller_seals, an `incremental` dispatch (DESIGN.md §8, the
// three-stage seal → scatter → commit close) changes WHEN a stage-2 task
// becomes claimable: instead of waiting for its dependency counter to reach
// zero (all feeders sealed), stage-2 task d is published the moment its own
// stage-1 task seals the (d, d) self edge — i.e. as soon as d's sweep is
// done, since the merge mutates per-node wake state that d's callbacks also
// write. The claimed merge then consumes the remaining feeder buckets one by
// one as they seal, observing per-edge sealed flags and parking on a
// per-destination seal-event counter (wait_dest_seals) between arrivals.
// Those waits go through the same watchdog machinery as the claim wait, so a
// withheld feeder seal still dies with a diagnostic dump instead of hanging.
#pragma once

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

namespace pw::sim {

// Which transport carries sealed buckets between shards (DESIGN.md §10).
// kInProc — the identity transport: the merge reads the staging arena the
// senders wrote, ordered by the §8 seal machinery alone. The pre-§10 engine,
// bit for bit, and the default. kShmRing — sealed buckets are serialized
// into fixed-width SPSC shared-memory rings (one per nonzero cross-shard
// link) at their seal points and deserialized by the consuming merge;
// delivery traces stay bit-identical, messages just really cross a
// serialization boundary. Engines with a single shard have no links and
// silently degenerate to kInProc. Defined here rather than transport.hpp so
// ExecutionPolicy stays self-contained (transport.hpp includes this header).
enum class TransportKind : std::uint8_t { kInProc = 0, kShmRing = 1 };

// How Engine executes rounds. num_threads == 1 (the default) is the fully
// sequential engine: no worker threads are spawned and every dispatch runs
// inline. num_threads > 1 shards the data plane and runs callbacks and the
// end-of-round merge shard-parallel; accounting and delivery stay
// bit-identical to the sequential engine (DESIGN.md §7).
//
// `pipeline` (default on, meaningful only with num_threads > 1) selects the
// pipelined round close of DESIGN.md §8 for Engine::run: a worker that
// finishes its callback shard immediately starts merging any destination
// shard whose incoming traffic is complete, instead of waiting at a full
// barrier between the callback and merge phases. Accounting stays
// bit-identical either way; the flag exists so benchmarks can measure both
// modes and bisection can rule the overlap machinery in or out.
// `eager_seal` (default on, meaningful only when `pipeline` is in effect)
// selects the bucket-granular seal of §8: stage-1 callback sweeps seal each
// (sender, destination) bucket as soon as the last active sender with arcs
// into that destination has run, instead of sealing the whole shard at sweep
// end — on skewed rounds destination merges start while most callbacks are
// still running. Off = the shard-granular pipelined close (the PR 3
// behavior), kept as a bisection/benchmark switch like `pipeline` itself.
// `incremental` (default OFF, meaningful only with `pipeline && eager_seal`)
// selects the fully incremental merge of §8: a destination's merge task is
// claimable the moment its OWN callback sweep finishes and scatters each
// feeder bucket as it seals, instead of launching only after ALL feeders
// sealed — on skewed rounds the hot destination no longer idles behind its
// slowest sender. Delivery traces, accounting, and fault verdicts stay
// bit-identical to every other mode; the flag is opt-in because its
// wall-clock payoff needs real cores to verify (ROADMAP: gate promotion),
// and benchmarks record it as close mode 3.
// `watchdog_ms` (default 60 s, 0 = off) arms the no-progress watchdog of
// DESIGN.md §9 on the executor's blocking waits: if a pipelined-close wait
// (the dispatch barrier, a merge-claim park, or an incremental scatter wait)
// sees no executor-wide progress for a full window, the run aborts with a
// diagnostic dump — dependency counters, publish states, per-thread stage,
// per-bucket seal and scatter-cursor states — instead of hanging CI forever.
// The known failure class it converts into a diagnosis is a missed seal
// (§8); the PW_WATCHDOG_MS environment variable overrides the policy value
// for whole-process tuning.
// `transport` (default kInProc) selects what carries sealed buckets between
// shards — see TransportKind above. Purely a data-plane property: every
// close mode, the fault plane, and the accounting run unchanged on either.
struct ExecutionPolicy {
  int num_threads = 1;
  bool pipeline = true;
  bool eager_seal = true;
  bool incremental = false;
  int watchdog_ms = 60000;
  TransportKind transport = TransportKind::kInProc;

  // The default multi-threaded policy: one worker per hardware thread
  // (pipelined close on). What the examples and CLIs construct engines with
  // unless the user picks a thread count explicitly.
  static ExecutionPolicy hardware() {
    return {static_cast<int>(
        std::max(1u, std::thread::hardware_concurrency()))};
  }
};

class Executor {
 public:
  using TaskFn = void (*)(void* ctx, int task);

  // Static dependency graph of a pipeline() dispatch, owned by the caller
  // (the data plane builds it once at construction). Stage-1 task s feeds the
  // stage-2 tasks out[out_beg[s] .. out_beg[s+1]); dep_count[d] is the number
  // of distinct stage-1 tasks feeding stage-2 task d and must match the edge
  // lists exactly (every stage-2 task needs dep_count >= 1, so it cannot
  // start before the dispatch does).
  struct PipelineDeps {
    const int* out_beg = nullptr;    // size num_tasks + 1
    const int* out = nullptr;        // concatenated stage-2 out-lists
    const int* dep_count = nullptr;  // size num_tasks, each >= 1
  };

  // Per-dispatch knobs for pipeline(). caller_seals and incremental are the
  // two seal/claim protocol upgrades described at the top of this file
  // (incremental requires caller_seals). size_of, when non-null, is invoked
  // on the publishing thread as size_of(ctx, d) to weight stage-2 task d for
  // the largest-first claim order; it must be safe to call at publish time
  // (for a dependency-counter publish every feeder has sealed, for an
  // incremental publish only d's own stage-1 task has). Null = all tasks
  // weigh 0 and claims fall back to lowest-index-first.
  // on_seal, when non-null, is invoked as on_seal(ctx, s, d) at the top of
  // every effective seal of edge (s → d) — caller-issued or automatic — on
  // the sealing thread, BEFORE the edge flag rises and the dependency
  // counter drops. The data plane publishes bucket (s, d) on its transport
  // there (§10): the seal's release chain then carries the published frame
  // to whichever thread merges d. A withheld seal (debug_withhold_seal)
  // suppresses the hook too — it models the seal never happening.
  struct PipelineOpts {
    bool caller_seals = false;
    bool incremental = false;
    int (*size_of)(void* ctx, int d) = nullptr;
    void (*on_seal)(void* ctx, int s, int d) = nullptr;
  };

  // Spawns num_threads - 1 workers (thread 0 is the caller). watchdog_ms
  // arms the no-progress watchdog (§9) on the executor's blocking waits;
  // 0 disables it, the PW_WATCHDOG_MS environment variable overrides either.
  explicit Executor(int num_threads, int watchdog_ms = 0);
  ~Executor();
  Executor(const Executor&) = delete;
  Executor& operator=(const Executor&) = delete;

  int num_threads() const { return num_threads_; }

  // Runs fn(ctx, t) for every t in [0, num_tasks), task t on thread t, and
  // returns when all tasks finished (a full barrier: every task's writes are
  // visible to the caller). num_tasks must not exceed num_threads(). Not
  // reentrant: tasks must not call parallel() themselves.
  void parallel(int num_tasks, TaskFn fn, void* ctx);

  // Two-stage dependency-driven dispatch (DESIGN.md §8): runs stage-1 task t
  // on thread t exactly like parallel(); the moment a thread finishes its
  // stage-1 task it SEALS it — decrementing the dependency counters of the
  // stage-2 tasks it feeds (deps.out) — and the thread that drops a counter
  // to zero PUBLISHES that stage-2 task (with its size_of weight). Free
  // threads claim published stage-2 tasks largest-first (any thread, each
  // task exactly once) until all num_tasks of them have run, so stage-2 work
  // for one task overlaps stage-1 work of tasks it does not depend on.
  // Returns when both stages finished everywhere (a full barrier like
  // parallel()); there is no barrier BETWEEN the stages. Not reentrant, and
  // this_task() inside a stage-2 task reports the stage-2 task id.
  //
  // With opts.caller_seals the automatic end-of-task seal is suppressed:
  // stage1 must call seal(d) exactly once for every d in its deps.out list,
  // at any point during (or after) its run — the bucket-granular eager seal
  // of §8. Either way the dispatch ends with every dependency counter at
  // zero (checked: a missed seal would deadlock a merge, a double seal could
  // run one twice).
  //
  // With opts.incremental (requires caller_seals) stage-2 task d is instead
  // published when its own stage-1 task seals the (d, d) self edge; the
  // stage-2 function consumes the remaining feeder seals via edge_sealed() /
  // wait_dest_seals() as they arrive. Dependency counters still run to zero
  // and are checked identically — they just no longer gate publication.
  void pipeline(int num_tasks, TaskFn stage1, TaskFn stage2,
                const PipelineDeps& deps, void* ctx,
                const PipelineOpts& opts);
  // Default-opts convenience overload (defined below the class: a nested
  // aggregate's member initializers cannot back a default argument inside
  // the enclosing class).
  void pipeline(int num_tasks, TaskFn stage1, TaskFn stage2,
                const PipelineDeps& deps, void* ctx);

  // Seals one dependency edge into stage-2 task d from inside a running
  // stage-1 task of a caller_seals pipeline() dispatch: decrements d's
  // dependency counter (acq_rel, so everything the caller wrote for d is
  // published) and, on reaching zero, publishes d (in an incremental
  // dispatch, publication instead happens on the (d, d) self seal, and every
  // seal additionally raises the per-edge sealed flag and bumps d's
  // seal-event counter). The caller must own the edge (each (stage-1 task,
  // d) edge seals exactly once). No-op outside a multi-thread pipeline
  // dispatch so the degenerate inline path can share the stage-1 code.
  void seal(int d);

  // --- incremental-merge protocol (§8) --------------------------------------
  // Valid only inside an incremental pipeline() dispatch, called by the
  // stage-2 function that claimed task d.

  // True once stage-1 task s has sealed its edge into stage-2 task d
  // (acquire: the bucket contents s staged for d are visible on true).
  bool edge_sealed(int s, int d) const {
    // PAIR(edge-sealed): acquire bucket (s, d)'s staged contents on true
    return edge_sealed_[static_cast<std::size_t>(s) *
                            static_cast<std::size_t>(num_threads_) +
                        static_cast<std::size_t>(d)]
               .load(std::memory_order_acquire) != 0;
  }

  // Count of seal events observed for stage-2 task d so far this dispatch.
  // Pair with wait_dest_seals: snapshot, scan edge_sealed(), park on the
  // snapshot if nothing new.
  int dest_seals(int d) const {
    // PAIR(dest-seals): acquire the buckets behind the observed count
    return dest_seals_[static_cast<std::size_t>(d)].load(
        std::memory_order_acquire);
  }

  // Blocks until dest_seals(d) differs from `seen` and returns the new
  // count, parking on the watchdog-guarded timed futex (§9) — a feeder seal
  // that never arrives becomes a diagnostic abort, not a hang.
  int wait_dest_seals(int d, int seen);

  // True when no dispatch is in flight (all workers have finished their
  // tasks and reported). Between dispatches this is the executor's resting
  // state; Engine::drain() checks it before discarding round state.
  bool quiescent() const {
    // PAIR(dispatch-barrier): acquire the workers' final task writes
    return outstanding_.load(std::memory_order_acquire) == 0;
  }

  // Task index of the calling thread inside a dispatch, -1 outside. During
  // stage 1 of pipeline() (and all of parallel()) this is the shard the
  // thread owns; the data plane uses it to pin shard ownership violations.
  static int this_task();

  // --- watchdog (§9) --------------------------------------------------------

  // Progress heartbeat for long stage-1 sweeps: Engine::run ticks once per
  // callback so a legitimately slow round (one shard grinding through a huge
  // sweep while every other thread is parked on it) never reads as a hang.
  // Seals, stage completions, and dispatch exits beat implicitly. Callable
  // only from inside a stage-1 task (per-thread slot, relaxed, owned line).
  void tick();

  // Registers the owner's state dump, appended to the executor's own when
  // the watchdog fires (the data plane prints per-bucket seal states there).
  void set_watchdog_dump(void (*fn)(void*), void* ctx) {
    dump_fn_ = fn;
    dump_ctx_ = ctx;
  }

  // TEST HOOK (§9): the next seal() call by stage-1 task `task` for stage-2
  // task `dest` is swallowed — the missed-seal deadlock class, on demand.
  // dest's dependency counter never reaches zero, some claim wait never
  // returns, and the watchdog must convert the hang into a diagnostic abort.
  void debug_withhold_seal(int task, int dest) {
    withhold_task_.store(task, std::memory_order_relaxed);
    withhold_dest_.store(dest, std::memory_order_relaxed);
  }

 private:
  // Per-thread watchdog state, one cache line each: a monotone tick counter
  // (summed into the progress signature) and the phase/task pair the dump
  // prints for "where is every thread stuck".
  struct alignas(64) ThreadState {
    std::atomic<std::uint64_t> ticks{0};
    std::atomic<int> phase{0};  // kPhase*
    std::atomic<int> task{-1};
  };
  enum : int {
    kPhaseIdle = 0,
    kPhaseStage1,
    kPhaseBarrier,
    kPhaseClaim,
    kPhaseStage2,
    kPhaseScatter,  // stage-2 merge parked for the next feeder seal (§8)
  };
  // ready_state_ publish protocol values; any value >= 0 is a published,
  // unclaimed task carrying its size_of weight.
  enum : int {
    kReadyUnpublished = -1,
    kReadyClaimed = -2,
  };

  void worker_loop(int idx);
  void pipeline_thread(int idx);
  void wait_barrier();
  void publish(int d);
  int deque_take(int idx);
  int deque_steal(int idx);

  // Blocks until a.load(acquire) != expected and returns the observed value,
  // parking on a timed futex when the watchdog is armed: a full window with
  // no change in the executor-wide progress signature fires the §9 dump +
  // abort. `phase`/`task` describe the wait for the dump.
  int wait_watched(const std::atomic<int>& a, int expected, int phase,
                   int task);
  std::uint64_t progress_signature() const;
  [[noreturn]] void watchdog_fire(int phase, int task);

  TaskFn fn_ = nullptr;
  void* ctx_ = nullptr;
  TaskFn stage2_ = nullptr;  // non-null marks a pipeline() dispatch
  PipelineDeps deps_{};
  int num_tasks_ = 0;
  bool stop_ = false;
  bool caller_seals_ = false;  // stage-1 fns issue their own seal() calls
  bool incremental_ = false;   // self-seal publication + scatter waits (§8)
  int (*size_fn_)(void*, int) = nullptr;  // largest-first claim weights
  void (*seal_fn_)(void*, int, int) = nullptr;  // §10 transport publish hook
  // Dispatch protocol: fn_/ctx_/stage2_/deps_/num_tasks_/stop_ and the
  // pipeline counters below are written by the caller, then published by the
  // generation bump (release); workers acquire-load the generation, run their
  // work, and decrement outstanding_ (release). The caller's acquire-load of
  // outstanding_ == 0 closes the barrier.
  // SHARED-LINE(two writes per dispatch — padding these off the dispatch
  // fields they publish would buy nothing)
  std::atomic<std::uint64_t> generation_{0};
  std::atomic<int> outstanding_{0};
  // Pipeline state, sized to num_threads_ once at construction.
  // ready_state_[d] carries stage-2 task d's publish state (kReadyUnpublished
  // → size weight on publish → kReadyClaimed on claim); claiming is a CAS on
  // the published weight, so each task runs exactly once even when several
  // threads pick the same largest entry. published_seq_ counts publishes
  // (plus the final claim) and is the single futex claimers park on;
  // claimed_ counts claims so threads know when the dispatch is drained.
  // claim_waiters_ counts threads parked on published_seq_ (same seq_cst
  // handshake as dest_waiters_), so a publish skips the wake syscall when
  // nobody sleeps and wakes one claimer — not the herd — when somebody does.
  // SHARED-LINE(vector headers, cold after construction — the contended
  // elements live in the heap blocks, spaced by the §8 claim protocol)
  std::vector<std::atomic<int>> deps_left_;
  std::vector<std::atomic<int>> ready_state_;
  // Work-stealing claim index (§8): one Chase-Lev-style deque per thread. A
  // publishing thread pushes the task onto its OWN deque (bottom end, owner
  // only); a free thread pops its own bottom first, then steals the heaviest
  // top entry across the other deques (weight read back from ready_state_).
  // The entries are HINTS, not ownership: ready_state_'s CAS below stays the
  // exactly-once claim arbiter, so a stale hint (task already claimed via
  // another hint or the fallback scan) is simply discarded when that CAS
  // fails, and the fallback full scan of ready_state_ keeps every published
  // task reachable even when all its hints were consumed by CAS losers.
  // Fixed capacity num_threads_ per deque with no wraparound: a dispatch
  // publishes each of its <= num_threads_ tasks exactly once, so bottom
  // cannot pass the buffer end even if one thread publishes them all; both
  // cursors reset to zero in pipeline() setup, before the generation bump.
  struct alignas(64) ClaimDeque {
    std::atomic<int> top{0};
    std::atomic<int> bottom{0};
  };
  std::vector<ClaimDeque> deques_;
  // SHARED-LINE(the three claim counters move together in every claim
  // handshake — separating them would triple the misses; deque_buf_'s
  // header is cold, its hint slots live in the heap block)
  std::vector<std::atomic<int>> deque_buf_;  // [thread * num_threads_ + slot]
  std::atomic<int> published_seq_{0};
  std::atomic<int> claimed_{0};
  std::atomic<int> claim_waiters_{0};
  // Incremental-merge protocol state (§8): edge_sealed_[s * T + d] is the
  // per-edge sealed flag (release on seal, acquire in edge_sealed() — the
  // happens-before edge that publishes bucket (s, d)'s staged contents to
  // the scattering merge); dest_seals_[d] counts d's seal events and is the
  // futex a scatter wait parks on; dest_waiters_[d] tells the sealing side
  // whether anyone is parked there (seq_cst handshake against the counter
  // bump, so the wake syscall is skipped on the common uncontended path).
  // SHARED-LINE(vector headers, cold after construction — seal flags and
  // counters live in the heap blocks, one write per edge per round)
  std::vector<std::atomic<int>> edge_sealed_;
  std::vector<std::atomic<int>> dest_seals_;
  std::vector<std::atomic<int>> dest_waiters_;

  // Watchdog state (§9). progress_ is bumped (relaxed) by every seal, stage
  // completion, and dispatch exit; together with the per-thread tick counters
  // it forms the progress signature a blocked wait compares across timeout
  // windows. Zero watchdog_ns_ = disabled (plain untimed parks).
  std::int64_t watchdog_ns_ = 0;
  // SHARED-LINE(watchdog-rate traffic — relaxed signature bumps plus a
  // once-per-process fired flag; never on the claim/seal hot path)
  std::atomic<std::uint64_t> progress_{0};
  std::vector<ThreadState> threads_state_;
  std::atomic<int> fired_{0};  // first firing thread wins; others park
  void (*dump_fn_)(void*) = nullptr;
  void* dump_ctx_ = nullptr;
  // debug_withhold_seal arming, -1 = off. Atomic (relaxed): the matching
  // thread clears the arming mid-dispatch while siblings' seals still read.
  // SHARED-LINE(test hook — written only by debug_withhold_seal, read once
  // per seal on the chaos-test path)
  std::atomic<int> withhold_task_{-1};
  std::atomic<int> withhold_dest_{-1};

  std::vector<std::thread> workers_;
  int num_threads_ = 1;
};

inline void Executor::pipeline(int num_tasks, TaskFn stage1, TaskFn stage2,
                               const PipelineDeps& deps, void* ctx) {
  pipeline(num_tasks, stage1, stage2, deps, ctx, PipelineOpts());
}

}  // namespace pw::sim
