#include "src/sim/data_plane.hpp"

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <type_traits>

namespace pw::sim {

DataPlane::DataPlane(const graph::Graph& g, int max_shards, bool eager_seal,
                     bool incremental, const FaultPolicy* faults,
                     TransportKind transport)
    : g_(&g), eager_seal_(eager_seal), incremental_(incremental && eager_seal) {
  PW_CHECK(max_shards >= 1);
  const int n = g.n();
  // Contiguous shards with a power-of-two chunk so shard_of is one shift.
  // Rounding the chunk up may leave fewer shards than requested; never more.
  const int chunk = n <= 0 ? 1 : (n + max_shards - 1) / max_shards;
  shard_shift_ = 0;
  while ((1 << shard_shift_) < chunk) ++shard_shift_;
  num_shards_ = n <= 0 ? 1 : ((n - 1) >> shard_shift_) + 1;
  const int S = num_shards_;
  // One cursor row per sender shard, padded to a cache line so concurrent
  // senders in different shards never share a line.
  cur_stride_ = ((S + 15) / 16) * 16;

  if (faults != nullptr && faults->enabled()) {
    fault_ = std::make_unique<FaultPlane>(*faults, g, S, shard_shift_);
    delivery_mult_ = 3;  // delayed-due + duplicated fresh, per arc per round
  }

  arc_.resize(static_cast<std::size_t>(g.num_arcs()));
  for (int a = 0; a < g.num_arcs(); ++a) {
    const int m = g.mirror(a);
    arc_[static_cast<std::size_t>(a)] =
        ArcRec{g.arc_owner(m), g.port_of_arc(m), 0};
  }
  for (int v = 0; v < n; ++v)
    PW_CHECK_MSG(static_cast<std::uint64_t>(g.degree(v)) *
                         static_cast<std::uint64_t>(delivery_mult_) <
                     (1ULL << 24),
                 "degree of node %d overflows the wake-word fan-in counter", v);

  // Bucket (d, s) capacity = #arcs from shard s into shard d; exact, so the
  // flat staging arena stays at num_arcs total and appends never collide.
  bucket_base_.assign(static_cast<std::size_t>(S) * S + 1, 0);
  for (int a = 0; a < g.num_arcs(); ++a) {
    const int s = shard_of(g.arc_owner(a));
    const int d = shard_of(g.arc(a).to);
    ++bucket_base_[static_cast<std::size_t>(d) * S + s + 1];
  }
  for (std::size_t i = 1; i < bucket_base_.size(); ++i)
    bucket_base_[i] += bucket_base_[i - 1];
  bucket_cur_.assign(static_cast<std::size_t>(S) * cur_stride_ / 16, CurLine{});

  // Dependency graph of the pipelined close (§8): s feeds d iff bucket (d, s)
  // has nonzero capacity, plus the self edge. Built from bucket_base_ so the
  // graph and the capacities can never disagree.
  if (S > 1) {
    auto has_edge = [&](int s, int d) {
      const auto b = static_cast<std::size_t>(d) * S + s;
      return s == d || bucket_base_[b + 1] > bucket_base_[b];
    };
    seal_out_beg_.assign(static_cast<std::size_t>(S) + 1, 0);
    merge_dep_count_.assign(static_cast<std::size_t>(S), 0);
    for (int s = 0; s < S; ++s)
      for (int d = 0; d < S; ++d)
        if (has_edge(s, d)) {
          ++seal_out_beg_[static_cast<std::size_t>(s) + 1];
          ++merge_dep_count_[static_cast<std::size_t>(d)];
        }
    for (int s = 0; s < S; ++s)
      seal_out_beg_[static_cast<std::size_t>(s) + 1] +=
          seal_out_beg_[static_cast<std::size_t>(s)];
    seal_out_.resize(static_cast<std::size_t>(seal_out_beg_.back()));
    std::vector<int> cur(seal_out_beg_.begin(), seal_out_beg_.end() - 1);
    for (int s = 0; s < S; ++s)
      for (int d = 0; d < S; ++d)
        if (has_edge(s, d))
          seal_out_[static_cast<std::size_t>(cur[static_cast<std::size_t>(s)]++)] = d;
  }

  // Per-node distinct non-self destination shards (eager seal only): node v
  // in shard s reaches shard d iff one of v's arcs heads into d, a static
  // property — the seal point of bucket (s, d) is just the last active node
  // whose list contains d. Two passes (count, fill) with a seen-marker per
  // destination keep each list deduped.
  if (S > 1 && eager_seal_) {
    node_dest_beg_.assign(static_cast<std::size_t>(n) + 1, 0);
    std::vector<int> seen(static_cast<std::size_t>(S), -1);
    for (int v = 0; v < n; ++v) {
      const int sv = shard_of(v);
      for (const graph::Arc& a : g.arcs(v)) {
        const int d = shard_of(a.to);
        if (d != sv && seen[static_cast<std::size_t>(d)] != v) {
          seen[static_cast<std::size_t>(d)] = v;
          ++node_dest_beg_[static_cast<std::size_t>(v) + 1];
        }
      }
    }
    for (int v = 0; v < n; ++v)
      node_dest_beg_[static_cast<std::size_t>(v) + 1] +=
          node_dest_beg_[static_cast<std::size_t>(v)];
    node_dest_.resize(static_cast<std::size_t>(node_dest_beg_.back()));
    std::fill(seen.begin(), seen.end(), -1);
    std::vector<int> cur(node_dest_beg_.begin(), node_dest_beg_.end() - 1);
    for (int v = 0; v < n; ++v) {
      const int sv = shard_of(v);
      for (const graph::Arc& a : g.arcs(v)) {
        const int d = shard_of(a.to);
        if (d != sv && seen[static_cast<std::size_t>(d)] != v) {
          seen[static_cast<std::size_t>(d)] = v;
          node_dest_[static_cast<std::size_t>(
              cur[static_cast<std::size_t>(v)]++)] = d;
        }
      }
    }
  }

  {
    // One arena for both SoA staging views (see the member comment for why a
    // single allocation matters): payloads first — the arena start carries
    // operator new's fundamental alignment, satisfying Incoming's — then the
    // receiver ids, whose 4-byte alignment any Incoming boundary meets.
    static_assert(std::is_trivially_copyable_v<Incoming> &&
                  alignof(Incoming) % alignof(int) == 0);
    const auto arcs = static_cast<std::size_t>(g.num_arcs());
    staging_raw_.resize(arcs * (sizeof(Incoming) + sizeof(int)));
    staging_inc_ = reinterpret_cast<Incoming*>(staging_raw_.data());
    staging_to_ =
        reinterpret_cast<int*>(staging_raw_.data() + arcs * sizeof(Incoming));
  }
  // Transport (§10): stage() and the merge both address bucket (s → d)
  // through the transport's per-bucket views, queried once here. The in-proc
  // transport aliases every view straight to the staging arena — identity,
  // never called; the shm-ring transport points cross-shard views INTO the
  // ring frame regions, so staged bytes are wire bytes and the seal's
  // publish is copy-free. A single-shard plane has no cross-shard links:
  // degenerate to in-proc.
  if (transport == TransportKind::kShmRing && S > 1) {
    transport_ = std::make_unique<ShmRingTransport>(S, bucket_base_,
                                                    staging_to_, staging_inc_);
    shm_transport_ = true;
  } else {
    transport_ = std::make_unique<InProcTransport>(S, bucket_base_,
                                                   staging_to_, staging_inc_);
  }
  bucket_view_.resize(static_cast<std::size_t>(S) * S);
  for (int d = 0; d < S; ++d)
    for (int s = 0; s < S; ++s)
      bucket_view_[static_cast<std::size_t>(d) * S + s] =
          transport_->bucket(s, d);

  delivery_.resize(static_cast<std::size_t>(g.num_arcs()) *
                   static_cast<std::size_t>(delivery_mult_));
  inbox_run_.resize(static_cast<std::size_t>(n));
  wake_stamp_.assign(static_cast<std::size_t>(n), 0);
  active_.resize(static_cast<std::size_t>(n));
  if (S > 1) scratch_.resize(static_cast<std::size_t>(n));

  shards_.resize(static_cast<std::size_t>(S));
  for (int d = 0; d < S; ++d) {
    Shard& sh = shards_[static_cast<std::size_t>(d)];
    sh.beg = d << shard_shift_;
    sh.end = std::min(n, (d + 1) << shard_shift_);
    // One slot of slack past the shard size: the vectorized scatter's
    // branchless append (scatter_bucket) unconditionally writes wl[wcnt]
    // before deciding whether the entry was fresh, so the write index can
    // touch (but never pass) index shard_size.
    sh.wake_list.reserve(static_cast<std::size_t>(sh.end - sh.beg) + 1);
    if (S > 1 && eager_seal_) {
      sh.seal_points.resize(static_cast<std::size_t>(S));
      sh.full_seal_points.resize(static_cast<std::size_t>(S));
      sh.seal_last.assign(static_cast<std::size_t>(S), -1);
    }
  }
  if (S > 1 && eager_seal_) {
    // Static all-active seal schedule (§8): when a shard's materialized
    // active slice is the FULL shard, the last feeder per destination is a
    // property of the graph alone — compute that schedule once, here, over a
    // synthetic all-nodes slice. compute_seal_points() repoints sched at it
    // whenever a materialization covers the whole shard.
    std::vector<int> ids;
    for (int s = 0; s < S; ++s) {
      Shard& sh = shards_[static_cast<std::size_t>(s)];
      ids.resize(static_cast<std::size_t>(sh.end - sh.beg));
      for (int i = 0; i < sh.end - sh.beg; ++i) ids[static_cast<std::size_t>(i)] = sh.beg + i;
      sh.full_seal_count = build_seal_points(
          s, ids.data(), static_cast<int>(ids.size()),
          sh.full_seal_points.data());
    }
    // Seed every shard's seal points for the empty active set, so a shard
    // that has never been materialized (not woken since construction) still
    // seals its whole out-list when a pipelined round sweeps it —
    // materialization only ever OVERWRITES this row, and merges touch every
    // shard every round.
    for (int s = 0; s < S; ++s) compute_seal_points(s);
  }
  if (incremental_merge()) {
    scatter_done_.assign(static_cast<std::size_t>(S) * S, 0);
    scatter_count_.assign(static_cast<std::size_t>(S), 0);
    commit_done_.assign(static_cast<std::size_t>(S), 0);
  }
}

void DataPlane::stage(int v, int port, const Msg& m) {
  const int s = shard_of(v);
  if (parallel_callbacks_) {
    PW_CHECK_MSG(Executor::this_task() == s,
                 "parallel callback sent from node %d outside its shard "
                 "(DESIGN.md §7 contract)",
                 v);
    // A parallel callback may send only AS the node it was invoked on: a
    // send on behalf of a same-shard sibling could land after the sibling's
    // bucket sealed under the eager close (§8) — into a bucket a merge may
    // already be scanning. Checked in every close mode so a conforming
    // callback cannot tell them apart.
    PW_CHECK_MSG(shards_[static_cast<std::size_t>(s)].current_cb == v,
                 "parallel callback for node %d sent as node %d: sends are "
                 "allowed only for the invoked node (DESIGN.md §7 contract)",
                 shards_[static_cast<std::size_t>(s)].current_cb, v);
  } else if (num_shards_ > 1) {
    // The merge delivers in ascending-sender order; a manual loop sending
    // out of that order would get an inbox order that differs from the
    // 1-thread engine — abort instead of silently diverging (§7).
    PW_CHECK_MSG(v >= last_manual_sender_,
                 "manual sends must come in non-decreasing sender id on a "
                 "multi-shard engine (node %d after %d, DESIGN.md §7)",
                 v, last_manual_sender_);
    last_manual_sender_ = v;
  }
  const int arc = g_->arc_id(v, port);
  ArcRec& rec = arc_[static_cast<std::size_t>(arc)];
  PW_CHECK_MSG(rec.stamp != round_id_,
               "node %d sent two messages on port %d in one round", v, port);
  rec.stamp = round_id_;

  // Raw cursor store: the arc-stamp guard bounds the bucket fill by its
  // exact arc-count capacity. The append goes through the bucket view —
  // under the shm transport a cross-shard record lands directly at its wire
  // offset in the ring frame (§10), so the seal's publish has nothing left
  // to copy.
  const int d = shard_of(rec.to);
  int& cur = bucket_cur(s, d);
  const BucketView& bv =
      bucket_view_[static_cast<std::size_t>(d) * num_shards_ + s];
  bv.to[cur] = rec.to;
  Incoming& inc = bv.inc[cur];
  ++cur;
  inc.from = v;
  inc.port = rec.port;
  inc.msg = m;

  if (num_shards_ == 1 && fault_ == nullptr) {
    // Single-shard fast path: one owner means the receiver's wake/count
    // update can ride on the send (the pre-shard hot path), and the merge
    // skips its discovery pass over the staged messages entirely. Disabled
    // under faults (§9): a stage-time wake would fire for messages the merge
    // later drops, diverging from the multi-shard planes — with the plane
    // armed, every shard count routes wakes through the same merge verdicts.
    auto& w = wake_stamp_[static_cast<std::size_t>(rec.to)];
    if ((w & kEpochMask) != wake_epoch_) {
      w = wake_epoch_ | kCountOne;
      Shard& sh = shards_[0];
      sh.wake_list.push_back(rec.to);
      if (rec.to < sh.wake_min) sh.wake_min = rec.to;
      if (rec.to > sh.wake_max) sh.wake_max = rec.to;
    } else {
      w += kCountOne;
    }
  }
}

void DataPlane::wake(int v) {
  const int s = shard_of(v);
  if (parallel_callbacks_)
    PW_CHECK_MSG(Executor::this_task() == s,
                 "parallel callback woke node %d outside its shard "
                 "(DESIGN.md §7 contract)",
                 v);
  if (fault_ != nullptr && fault_->down_now(v)) {
    // Crashed nodes don't schedule (§9). Deterministic across policies: the
    // wake targets fault round(), fixed for the whole inter-begin_round span.
    // Same single-writer slot as the data plane's Shard row for s.
    ++fault_->shard_stats(s).wakes_suppressed;
    return;
  }
  auto& w = wake_stamp_[static_cast<std::size_t>(v)];
  if ((w & kEpochMask) == wake_epoch_) return;
  w = wake_epoch_;
  Shard& sh = shards_[static_cast<std::size_t>(s)];
  sh.wake_list.push_back(v);
  sh.dirty = true;
  if (v < sh.wake_min) sh.wake_min = v;
  if (v > sh.wake_max) sh.wake_max = v;
}

int DataPlane::sort_shard_wake(Shard& sh, int* out) {
  const auto count = sh.wake_list.size();
  if (count == 0) return 0;
  const std::size_t range = static_cast<std::size_t>(sh.wake_max) -
                            static_cast<std::size_t>(sh.wake_min) + 1;
  if (range <= 8 * count) {
    // Dense case: one forward sweep over the shard's touched id range.
    int cnt = 0;
    for (int v = sh.wake_min; v <= sh.wake_max; ++v)
      if ((wake_stamp_[static_cast<std::size_t>(v)] & kEpochMask) == wake_epoch_)
        out[cnt++] = v;
    return cnt;
  }
  // Sparse case: LSD radix (byte digits) ping-ponging between the wake list
  // and `out`; both hold shard-size ints, so no extra buffer. Node ids fit
  // 31 bits, so < 4 passes and shifts stay below 32.
  int passes = 1;
  while (passes < 4 &&
         (static_cast<unsigned>(sh.wake_max) >> (8 * passes)) != 0)
    ++passes;
  int* src = sh.wake_list.data();
  int* dst = out;
  for (int p = 0; p < passes; ++p) {
    std::uint32_t cnt[256] = {};
    const int shift = 8 * p;
    for (std::size_t i = 0; i < count; ++i)
      ++cnt[(static_cast<unsigned>(src[i]) >> shift) & 0xff];
    std::uint32_t pos = 0;
    for (auto& c : cnt) {
      const std::uint32_t start = pos;
      pos += c;
      c = start;
    }
    for (std::size_t i = 0; i < count; ++i)
      dst[cnt[(static_cast<unsigned>(src[i]) >> shift) & 0xff]++] = src[i];
    std::swap(src, dst);
  }
  if (src != out) std::memcpy(out, src, count * sizeof(int));
  return static_cast<int>(count);
}

void DataPlane::bump_wake_epoch() {
  if (++wake_epoch_ > kEpochMask) {
    // Epoch 2^40 would spill into the fan-in count bits and never compare
    // equal through kEpochMask again. Clear every word (0 is never a live
    // epoch) and restart; one pass per 2^40 advances.
    std::fill(wake_stamp_.begin(), wake_stamp_.end(), 0);
    wake_epoch_ = 1;
  }
}

// Concatenates the shards' sorted active slices in ascending shard order
// (= ascending node id) into active_. Shared by the merge and the
// wake-triggered rebuild so the two paths can never disagree on layout.
void DataPlane::compact_active() {
  int abase = 0;
  for (int d = 0; d < num_shards_; ++d) {
    Shard& sh = shards_[static_cast<std::size_t>(d)];
    sh.active_beg = abase;
    if (num_shards_ > 1 && sh.active_count > 0)
      std::memcpy(active_.data() + abase, scratch_.data() + sh.beg,
                  static_cast<std::size_t>(sh.active_count) * sizeof(int));
    abase += sh.active_count;
  }
  active_total_ = abase;
}

void DataPlane::rebuild_active() {
  for (int d = 0; d < num_shards_; ++d) {
    Shard& sh = shards_[static_cast<std::size_t>(d)];
    if (!sh.dirty) continue;  // its sorted output from the last merge stands
                              // (and with it the shard's seal points)
    sh.active_count = sort_shard_wake(sh, sorted_out(d));
    sh.dirty = false;
    if (eager_seal()) compute_seal_points(d);
  }
  compact_active();
}

int DataPlane::build_seal_points(int s, const int* act, int count,
                                 SealPoint* out) {
  Shard& sh = shards_[static_cast<std::size_t>(s)];
  const int* beg = seal_out_beg_.data();
  // Reset only the slots the shard's static out-list can read back: the
  // rebuild never does O(S) work for sparse out-lists.
  int remaining = 0;
  for (int i = beg[s]; i < beg[s + 1]; ++i) {
    const int d = seal_out_[static_cast<std::size_t>(i)];
    if (d != s) {
      sh.seal_last[static_cast<std::size_t>(d)] = -1;
      ++remaining;
    }
  }
  // Walk the active slice BACKWARD and keep only each destination's first
  // hit (= the last feeder), stopping once every destination is pinned: on
  // dense rounds (flood fronts, everything active) this touches a handful of
  // tail nodes instead of the whole slice, keeping the per-merge rebuild far
  // below one pass over the staged messages.
  for (int i = count - 1; i >= 0 && remaining > 0; --i) {
    const int v = act[i];
    for (int j = node_dest_beg_[static_cast<std::size_t>(v)];
         j < node_dest_beg_[static_cast<std::size_t>(v) + 1]; ++j) {
      auto& last = sh.seal_last[static_cast<std::size_t>(
          node_dest_[static_cast<std::size_t>(j)])];
      if (last < 0) {
        last = i;
        --remaining;
      }
    }
  }
  int cnt = 0;
  for (int i = beg[s]; i < beg[s + 1]; ++i) {
    const int d = seal_out_[static_cast<std::size_t>(i)];
    if (d != s)
      out[static_cast<std::size_t>(cnt++)] =
          SealPoint{sh.seal_last[static_cast<std::size_t>(d)], d};
  }
  // Ascending (idx, dest): idx -1 entries (no active feeder — the bucket may
  // have capacity but stays empty this round) sort first and seal before the
  // sweep's first callback. At most S-1 elements; std::sort allocates
  // nothing at these sizes.
  std::sort(out, out + cnt, [](const SealPoint& a, const SealPoint& b) {
    return a.idx != b.idx ? a.idx < b.idx : a.dest < b.dest;
  });
  return cnt;
}

void DataPlane::compute_seal_points(int s) {
  Shard& sh = shards_[static_cast<std::size_t>(s)];
  if (sh.active_count == sh.end - sh.beg) {
    // All-active slice: a full contiguous shard materializes as exactly
    // [beg, end), so the schedule is the static one built at construction —
    // skip the backward scan entirely (§8).
    sh.sched = sh.full_seal_points.data();
    sh.sched_count = sh.full_seal_count;
    return;
  }
  sh.sched_count =
      build_seal_points(s, sorted_out(s), sh.active_count, sh.seal_points.data());
  sh.sched = sh.seal_points.data();
}

void DataPlane::begin_round() {
  bool any_dirty = false;
  for (const Shard& sh : shards_) any_dirty = any_dirty || sh.dirty;
  if (any_dirty) rebuild_active();
  for (Shard& sh : shards_) {
    sh.wake_list.clear();
    sh.wake_min = std::numeric_limits<int>::max();
    sh.wake_max = -1;
  }
  last_manual_sender_ = -1;
  bump_wake_epoch();
  if (fault_ != nullptr) {
    // Advance the fault clock to the round wakes/merges now target, apply
    // crash/recover transitions, and reboot freshly recovered nodes: the wake
    // lands in the epoch just opened, so a recovered node runs an (empty-
    // inbox) callback on its first up round and protocols notice it is back.
    fault_->advance_round();
    for (const int v : fault_->recovered()) wake(v);
  }
}

// Fan-in count update for one (possibly repeated) delivery to `to`; first
// touch this epoch also wakes the receiver. All state owned by sh's shard;
// additive and dedup-by-epoch, so the order buckets are scattered in cannot
// change the final counts, wake membership, or min/max (§8).
void DataPlane::count_in(Shard& sh, int to, int k) {
  auto& w = wake_stamp_[static_cast<std::size_t>(to)];
  if ((w & kEpochMask) != wake_epoch_) {
    w = wake_epoch_ | (kCountOne * static_cast<std::uint64_t>(k));
    sh.wake_list.push_back(to);
    if (to < sh.wake_min) sh.wake_min = to;
    if (to > sh.wake_max) sh.wake_max = to;
  } else {
    w += kCountOne * static_cast<std::uint64_t>(k);
  }
}

// Fault verdict of one fresh staged record (§9), read off the bucket view by
// the caller. Both merge passes call this and must take identical branches:
// all inputs — crash state, the (seed, round, receiver-side arc slot) hash —
// are frozen for the round. Stats/enqueue side effects happen only in the
// discovery (scatter) pass. Under a real transport the record is judged as
// it leaves the link — the view points at the drained frame (§10) — and
// carries identical (to, port) inputs, so verdicts land identically on every
// transport.
DataPlane::Fate DataPlane::fate_of(int to, const Incoming& inc, int d,
                                   bool discovery) {
  FaultPlane* const fp = fault_.get();
  FaultStats& fs = fp->shard_stats(d);
  if (fp->down_when_sent(inc.from)) {
    if (discovery) ++fs.messages_shed_crashed;
    return Fate::kShed;
  }
  switch (fp->verdict(g_->arc_id(to, inc.port))) {
    case FaultPlane::Verdict::kDrop:
      if (discovery) ++fs.messages_dropped;
      return Fate::kDrop;
    case FaultPlane::Verdict::kDelay:
      if (discovery) {
        ++fs.messages_delayed;
        fp->push_delayed(d, inc, to);
      }
      return Fate::kDelay;
    case FaultPlane::Verdict::kDup:
      if (fp->down_now(to)) {
        if (discovery) ++fs.messages_shed_crashed;
        return Fate::kShed;
      }
      if (discovery) ++fs.messages_duplicated;
      return Fate::kTwice;
    case FaultPlane::Verdict::kDeliver:
      break;
  }
  if (fp->down_now(to)) {
    if (discovery) ++fs.messages_shed_crashed;
    return Fate::kShed;
  }
  return Fate::kOnce;
}

// Delayed messages due this round (§9): counted before any fresh traffic, in
// original send order. The receiver's crash state is judged at DELIVERY time
// — it may have crashed (shed) or recovered since. push_delayed (from
// fate_of) only appends entries due in a LATER round, so the due prefix is
// identical when the commit re-fetches it (the vector may have reallocated,
// hence the re-fetch instead of holding the span).
void DataPlane::scatter_due(int d) {
  FaultPlane* const fp = fault_.get();
  Shard& sh = shards_[static_cast<std::size_t>(d)];
  FaultStats& fs = fp->shard_stats(d);
  for (const FaultPlane::Delayed& e : fp->due_now(d)) {
    if (fp->down_now(e.to))
      ++fs.messages_shed_crashed;
    else
      count_in(sh, e.to, 1);
  }
}

// Scatter of one feeder bucket (s → d): fan-in counts + wake discovery for
// every staged message in it, through the fault choke point when armed. The
// SoA layout keeps the fault-free loop on the dense receiver-id stream.
void DataPlane::scatter_bucket(int d, int s) {
  Shard& sh = shards_[static_cast<std::size_t>(d)];
  const int cnt = bucket_cur(s, d);
  const BucketView& bv =
      bucket_view_[static_cast<std::size_t>(d) * num_shards_ + s];
  // Every merge path scatters before it commits, so this is the single drain
  // point of the §10 transport: a pure assertion that the frame the view
  // points at is visible and carries `cnt` records. Non-blocking — the seal
  // machinery ordered the publish first.
  if (shm_transport_) transport_->drain(s, d, cnt);
  if (fault_ != nullptr) {
    for (int i = 0; i < cnt; ++i) {
      const int to = bv.to[i];
      switch (fate_of(to, bv.inc[i], d, /*discovery=*/true)) {
        case Fate::kOnce:
          count_in(sh, to, 1);
          break;
        case Fate::kTwice:
          count_in(sh, to, 2);
          break;
        default:
          break;
      }
    }
  } else {
    // Fault-free fast path, split so the memory traffic the compiler CAN
    // vectorize is in its own counted loop. Semantically identical to
    // count_in per record; already-woken receivers are inside the running
    // min/max by induction, so reducing over the WHOLE bucket — not just the
    // fresh wakes — lands on the same bounds.
    const int* to = bv.to;
    int lo = sh.wake_min;
    int hi = sh.wake_max;
    // VEC-GUARD: scatter-minmax
    for (int i = 0; i < cnt; ++i) {
      const int v = to[i];
      lo = v < lo ? v : lo;
      hi = v > hi ? v : hi;
    }
    sh.wake_min = lo;
    sh.wake_max = hi;
    // Stamp/count pass, branch-light: the epoch test becomes a select on the
    // stamp word plus a branchless wake-list append (write unconditionally,
    // advance the cursor only when fresh — hence the one-slot slack in the
    // reserve). The read-modify-write through to[i] can repeat a receiver
    // within any window, so this loop stays scalar by design; it just no
    // longer mispredicts on the wake branch.
    const std::uint64_t epoch = wake_epoch_;
    std::uint64_t* const stamp = wake_stamp_.data();
    std::size_t wcnt = sh.wake_list.size();
    sh.wake_list.resize(
        std::min(wcnt + static_cast<std::size_t>(cnt),
                 static_cast<std::size_t>(sh.end - sh.beg) + 1));
    int* const wl = sh.wake_list.data();
    for (int i = 0; i < cnt; ++i) {
      const int v = to[i];
      const std::uint64_t w = stamp[v];
      const bool fresh = (w & kEpochMask) != epoch;
      stamp[v] = fresh ? (epoch | kCountOne) : (w + kCountOne);
      wl[wcnt] = v;
      wcnt += static_cast<std::size_t>(fresh);
    }
    sh.wake_list.resize(wcnt);
  }
}

// The barriered/eager merge body: scatter every feeder bucket in ascending
// sender-shard order — that IS the global ascending-sender send order
// restricted to this shard — then commit. (Single-shard fault-free planes
// counted at stage() time — see the fast path there; under faults the choke
// point runs at every shard count.)
void DataPlane::merge_shard(int d, std::uint32_t next_stamp) {
  const int S = num_shards_;
  if (fault_ != nullptr) {
    scatter_due(d);
    for (int s = 0; s < S; ++s) scatter_bucket(d, s);
  } else if (S > 1) {
    for (int s = 0; s < S; ++s) scatter_bucket(d, s);
  }
  commit_shard(d, next_stamp);
}

// The incremental merge body (§8): claimed as soon as d's own sweep sealed
// the self edge, scatters each feeder bucket as its seal arrives. Fault-free
// scattering is order-independent (see count_in), so buckets go in ARRIVAL
// order; under faults the per-destination delay queue is append-order-
// sensitive, so buckets scatter strictly in ascending sender order, parking
// per bucket. Either way the commit runs after all S buckets scattered and
// is identical to every other mode — traces stay bit-identical.
void DataPlane::merge_shard_incremental(int d, std::uint32_t next_stamp,
                                        Executor& ex) {
  const int S = num_shards_;
  std::uint8_t* done = scatter_done_.data() + static_cast<std::size_t>(d) * S;
  // A zero-capacity feeder bucket has no dependency edge (§8: the graph is
  // built from bucket_base_), so s never seals it — waiting on it would
  // deadlock. Pre-mark those scattered; they hold no messages by definition.
  // (The zero-capacity SELF bucket still has its edge — sealed at publish —
  // so it needs no exception.)
  int premarked = 0;
  for (int s = 0; s < S; ++s) {
    const auto b = static_cast<std::size_t>(d) * S + s;
    if (s != d && bucket_base_[b + 1] == bucket_base_[b]) {
      done[s] = 1;
      ++premarked;
    }
  }
  scatter_count_[static_cast<std::size_t>(d)] = premarked;
  if (fault_ != nullptr) {
    scatter_due(d);
    for (int s = 0; s < S; ++s) {
      if (done[s] != 0) continue;
      while (!ex.edge_sealed(s, d)) {
        // Snapshot the seal-event count, re-check the flag (the seal raises
        // the flag BEFORE bumping the count), then park on the snapshot.
        const int seen = ex.dest_seals(d);
        if (ex.edge_sealed(s, d)) break;
        ex.wait_dest_seals(d, seen);
      }
      scatter_bucket(d, s);
      done[s] = 1;
      ++scatter_count_[static_cast<std::size_t>(d)];
    }
  } else {
    int scattered = premarked;
    while (scattered < S) {
      const int seen = ex.dest_seals(d);
      bool progressed = false;
      for (int s = 0; s < S; ++s) {
        if (done[s] == 0 && ex.edge_sealed(s, d)) {
          scatter_bucket(d, s);
          done[s] = 1;
          scatter_count_[static_cast<std::size_t>(d)] = ++scattered;
          progressed = true;
        }
      }
      if (scattered >= S) break;
      // Nothing new sealed during the scan: park until the seal-event count
      // moves past the pre-scan snapshot (a seal that raced the scan already
      // bumped it, so the park returns immediately — no lost wakeup).
      if (!progressed) ex.wait_dest_seals(d, seen);
    }
  }
  commit_shard(d, next_stamp);
  commit_done_[static_cast<std::size_t>(d)] = 1;
}

int DataPlane::merge_size(int d) const {
  const int S = num_shards_;
  if (incremental_merge())
    // Publish happens at the self seal, while feeder cursors may still be
    // written — weigh by the static capacity of d's bucket region instead
    // of reading live cursors.
    return static_cast<int>(
        bucket_base_[static_cast<std::size_t>(d + 1) * S] -
        bucket_base_[static_cast<std::size_t>(d) * S]);
  int total = 0;
  for (int s = 0; s < S; ++s) total += bucket_cur(s, d);
  return total;
}

void DataPlane::commit_shard(int d, std::uint32_t next_stamp) {
  const int S = num_shards_;
  Shard& sh = shards_[static_cast<std::size_t>(d)];
  FaultPlane* const fp = fault_.get();

  // Ascending actives + run offsets, starting at this shard's STATIC delivery
  // base: the start of its bucket-capacity region, bucket_base_[d * S]. The
  // base depends on the graph alone — not on this round's traffic — which is
  // what lets a pipelined merge (§8) run before other destinations' counts
  // are known: each destination packs its runs inside its own region, and no
  // two regions overlap. (With one shard the region is the whole arena and
  // the base is 0, exactly the §5 layout.) The dense sweep fuses emission and
  // offset assignment (each wake word is read once); the radix path sorts
  // first, then assigns.
  int* out = sorted_out(d);
  // delivery_mult_ scales region starts in lockstep with the arena (§9), so
  // the per-destination regions stay disjoint under the 3× fault sizing.
  int off = delivery_mult_ *
            static_cast<int>(bucket_base_[static_cast<std::size_t>(d) * S]);
  int cnt = 0;
  const auto count = sh.wake_list.size();
  if (count != 0) {
    const std::size_t range = static_cast<std::size_t>(sh.wake_max) -
                              static_cast<std::size_t>(sh.wake_min) + 1;
    if (range <= 8 * count) {
      for (int v = sh.wake_min; v <= sh.wake_max; ++v) {
        const std::uint64_t word = wake_stamp_[static_cast<std::size_t>(v)];
        if ((word & kEpochMask) != wake_epoch_) continue;
        out[cnt++] = v;
        InboxRun& run = inbox_run_[static_cast<std::size_t>(v)];
        run.beg = run.end = off;
        run.stamp = next_stamp;
        off += static_cast<int>(word >> 40);
      }
    } else {
      cnt = sort_shard_wake(sh, out);
      for (int i = 0; i < cnt; ++i) {
        const auto vi = static_cast<std::size_t>(out[i]);
        InboxRun& run = inbox_run_[vi];
        run.beg = run.end = off;
        run.stamp = next_stamp;
        off += static_cast<int>(wake_stamp_[vi] >> 40);
      }
    }
  }
  sh.active_count = cnt;
  // The freshly materialized active slice is exactly what the shard's NEXT
  // stage-1 sweep iterates, so this is the one moment its eager-seal points
  // are computable and fresh (§8). Runs inside the merge task that owns
  // shard d, so the metadata stays single-writer.
  if (eager_seal()) compute_seal_points(d);

  // Stable delivery copy: per-recipient delivery order is ascending sender
  // shard, then within-shard send order — the global send order (§7). Under
  // faults, due delayed messages land first (older traffic), then fresh
  // survivors, each pass replaying the scatter pass's verdicts branch for
  // branch. The incremental merge shares this unchanged: whatever order its
  // scatter phase counted buckets in, the copy below walks them ascending.
  if (fp != nullptr) {
    const auto due = fp->due_now(d);
    for (const FaultPlane::Delayed& e : due) {
      if (fp->down_now(e.to)) continue;
      delivery_[static_cast<std::size_t>(
          inbox_run_[static_cast<std::size_t>(e.to)].end++)] = e.inc;
    }
    for (int s = 0; s < S; ++s) {
      const int bcnt = bucket_cur(s, d);
      const BucketView& bv =
          bucket_view_[static_cast<std::size_t>(d) * S + s];
      for (int i = 0; i < bcnt; ++i) {
        const int to = bv.to[i];
        const Incoming& in = bv.inc[i];
        switch (fate_of(to, in, d, /*discovery=*/false)) {
          case Fate::kTwice:
            delivery_[static_cast<std::size_t>(
                inbox_run_[static_cast<std::size_t>(to)].end++)] = in;
            [[fallthrough]];
          case Fate::kOnce:
            delivery_[static_cast<std::size_t>(
                inbox_run_[static_cast<std::size_t>(to)].end++)] = in;
            break;
          default:
            break;
        }
      }
    }
    fp->pop_due(d, due.size());
  } else {
    for (int s = 0; s < S; ++s) {
      const int bcnt = bucket_cur(s, d);
      const BucketView& bv =
          bucket_view_[static_cast<std::size_t>(d) * S + s];
      const int* to = bv.to;
      const Incoming* inc = bv.inc;
      // Prefetch branch peeled out of the copy: the main loop prefetches
      // unconditionally 8 records ahead, the short tail copies without the
      // lookahead — no per-iteration bounds test on the hot body.
      int i = 0;
      for (; i + 8 < bcnt; ++i) {
        const InboxRun& ahead =
            inbox_run_[static_cast<std::size_t>(to[i + 8])];
        __builtin_prefetch(&ahead, 1);
        __builtin_prefetch(&delivery_[static_cast<std::size_t>(ahead.end)], 1);
        delivery_[static_cast<std::size_t>(
            inbox_run_[static_cast<std::size_t>(to[i])].end++)] = inc[i];
      }
      for (; i < bcnt; ++i)
        delivery_[static_cast<std::size_t>(
            inbox_run_[static_cast<std::size_t>(to[i])].end++)] = inc[i];
    }
  }
  // The delivery copy above was this destination's LAST read of its drained
  // frames: retire them so each link is free for the next round's in-place
  // staging (§10). No-op in-proc and on loopback/zero-capacity links.
  if (shm_transport_)
    for (int s = 0; s < S; ++s)
      if (s != d) transport_->retire(s, d);
  sh.dirty = false;
}

void DataPlane::publish_bucket(int s, int d) {
  if (s == d) return;  // the self bucket never leaves the staging arena
  // The frame was staged in place through the bucket view; publishing is the
  // count store plus the ring's release bump — the copy-free seal (§10).
  transport_->publish(s, d, bucket_cur(s, d));
}

// Barriered-close publish pass (§10): without seal points (end_round, the
// stamp-wrap fallback, manual round loops) every nonzero link's frame goes
// out here, on the caller thread, before the merges dispatch — the dispatch
// barrier then orders publish before every drain, exactly like a seal's
// release chain does under the pipelined closes.
void DataPlane::publish_all() {
  const int S = num_shards_;
  for (int d = 0; d < S; ++d)
    for (int s = 0; s < S; ++s) {
      if (s == d) continue;
      const auto b = static_cast<std::size_t>(d) * S + s;
      if (bucket_base_[b + 1] > bucket_base_[b]) publish_bucket(s, d);
    }
}

std::uint32_t DataPlane::prepare_next_stamp() {
  if (round_id_ == std::numeric_limits<std::uint32_t>::max()) {
    // 32-bit round id is about to wrap: clear every stamp so a stale one can
    // never equal a live id. One pass per 2^32 rounds.
    for (auto& rec : arc_) rec.stamp = 0;
    for (auto& run : inbox_run_) run.stamp = 0;
    round_id_ = 0;  // close_round()'s ++ makes the next live id 1
  }
  return round_id_ + 1;
}

std::uint64_t DataPlane::close_round() {
  // The cursor total IS the round's message count (every stage() bumps
  // exactly one cursor); padding lanes beyond S stay zero.
  std::uint64_t total = 0;
  // VEC-GUARD: cursor-total
  for (const CurLine& line : bucket_cur_)
    for (const int c : line.w) total += static_cast<std::uint64_t>(c);
  compact_active();
  std::fill(bucket_cur_.begin(), bucket_cur_.end(), CurLine{});
  if (incremental_merge()) {
    // Reset the scatter cursors for the next dispatch (sequential tail, so
    // the next generation bump publishes the zeroes to every worker).
    std::fill(scatter_done_.begin(), scatter_done_.end(), std::uint8_t{0});
    std::fill(scatter_count_.begin(), scatter_count_.end(), 0);
    std::fill(commit_done_.begin(), commit_done_.end(), std::uint8_t{0});
  }
  ++round_id_;
  return total;
}

std::uint64_t DataPlane::end_round(Executor& ex) {
  const std::uint32_t next_stamp = prepare_next_stamp();
  if (shm_transport_) publish_all();
  if (num_shards_ == 1) {
    merge_shard(0, next_stamp);
  } else {
    struct Ctx {
      DataPlane* dp;
      std::uint32_t stamp;
    } ctx{this, next_stamp};
    ex.parallel(
        num_shards_,
        +[](void* c, int t) {
          auto* x = static_cast<Ctx*>(c);
          x->dp->merge_shard(t, x->stamp);
        },
        &ctx);
  }
  return close_round();
}

std::uint64_t DataPlane::run_pipelined_round(Executor& ex,
                                             Executor::TaskFn sweep,
                                             void* cb_ctx) {
  PW_CHECK(num_shards_ > 1);
  if (round_id_ == std::numeric_limits<std::uint32_t>::max()) {
    // Once per 2^32 rounds the stamp wrap must clear the arc and run stamp
    // arrays, which cannot overlap callbacks still staging into them — take
    // the barriered close for this one round. (Its sweeps run outside a
    // pipeline dispatch, so an eager-sealing sweep's Executor::seal calls
    // no-op, and end_round()'s merges re-materialize every shard's actives —
    // and with them the seal schedules — so the pipelined close resumes
    // cleanly next round.)
    ex.parallel(num_shards_, sweep, cb_ctx);
    return end_round(ex);
  }
  struct Ctx {
    DataPlane* dp;
    Executor* ex;
    std::uint32_t stamp;
    Executor::TaskFn sweep;
    void* cb_ctx;
  } ctx{this, &ex, round_id_ + 1, sweep, cb_ctx};
  const Executor::PipelineDeps deps{seal_out_beg_.data(), seal_out_.data(),
                                    merge_dep_count_.data()};
  // Under eager_seal() the sweep issues every bucket seal itself
  // (caller_seals); otherwise the executor seals a shard's whole out-list
  // when its sweep returns — the shard-granular close. The incremental merge
  // (§8) additionally publishes each destination at its self seal and runs
  // the scattering merge body; either way stage-2 claims go largest-first by
  // merge_size.
  Executor::PipelineOpts opts;
  opts.caller_seals = eager_seal();
  opts.incremental = incremental_merge();
  opts.size_of = +[](void* c, int d) {
    return static_cast<Ctx*>(c)->dp->merge_size(d);
  };
  // §10: a seal IS a publish. The hook runs on the sealing thread — the
  // owner of sender shard s — before the edge flag rises, so the frame the
  // merge drains is ordered by the very release chain that unlocks it. Fires
  // for caller-issued seals (eager sweeps) and the executor's automatic
  // whole-out-list seal (shard-granular close) alike.
  if (shm_transport_)
    opts.on_seal = +[](void* c, int s, int d) {
      static_cast<Ctx*>(c)->dp->publish_bucket(s, d);
    };
  ex.pipeline(
      num_shards_,
      +[](void* c, int s) {
        auto* x = static_cast<Ctx*>(c);
        x->sweep(x->cb_ctx, s);
      },
      +[](void* c, int d) {
        auto* x = static_cast<Ctx*>(c);
        if (x->dp->incremental_merge())
          x->dp->merge_shard_incremental(d, x->stamp, *x->ex);
        else
          x->dp->merge_shard(d, x->stamp);
      },
      deps, &ctx, opts);
  return close_round();
}

void DataPlane::drain() {
  // Delivered-but-unread runs and wakeups die by stamp invalidation; no data
  // moves. Every shard is marked dirty so the next begin_round() rebuilds
  // the (now empty) active set instead of reusing the stale one. In-flight
  // delayed messages (§9) are discarded with everything else.
  if (fault_ != nullptr) fault_->clear_in_flight();
  for (Shard& sh : shards_) {
    for (const int v : sh.wake_list)
      inbox_run_[static_cast<std::size_t>(v)].stamp = 0;
    sh.wake_list.clear();
    sh.wake_min = std::numeric_limits<int>::max();
    sh.wake_max = -1;
    sh.dirty = true;
  }
  bump_wake_epoch();
}

void DataPlane::watchdog_dump() const {
  const int S = num_shards_;
  for (int s = 0; s < S; ++s) {
    const Shard& sh = shards_[static_cast<std::size_t>(s)];
    std::fprintf(stderr,
                 "PW_WATCHDOG: shard %d: nodes [%d,%d) active=%d "
                 "current_cb=%d dirty=%d\n",
                 s, sh.beg, sh.end, sh.active_count, sh.current_cb,
                 static_cast<int>(sh.dirty));
    for (int i = 0; i < sh.sched_count; ++i)
      std::fprintf(stderr,
                   "PW_WATCHDOG: shard %d seal point: bucket (%d -> %d) "
                   "seals after active index %d\n",
                   s, s, sh.sched[static_cast<std::size_t>(i)].dest,
                   sh.sched[static_cast<std::size_t>(i)].idx);
    for (int d = 0; d < S; ++d) {
      const auto b = static_cast<std::size_t>(d) * S + s;
      const int cap = static_cast<int>(bucket_base_[b + 1] - bucket_base_[b]);
      const int cur = bucket_cur(s, d);
      if (cap != 0 || cur != 0)
        std::fprintf(stderr,
                     "PW_WATCHDOG: bucket (%d -> %d): staged %d of %d\n", s, d,
                     cur, cap);
    }
  }
  // Link liveness (§10): per-ring publish/consume indices. On a wedged close
  // this names the stalled links — a ring still "awaiting publish" while its
  // consumer parks is a producer that died (or withheld its seal).
  transport_->watchdog_dump();
  if (incremental_merge()) {
    // Scatter-cursor state of the incremental merge (§8): which feeder
    // buckets each destination has scattered and whether its commit ran —
    // the first thing to read on a wedged incremental close, since a merge
    // parked in scatter-wait names its missing feeders here.
    for (int d = 0; d < S; ++d) {
      std::fprintf(
          stderr,
          "PW_WATCHDOG: dest %d scatter cursor: scattered %d of %d buckets, "
          "committed=%d, pending senders:",
          d, scatter_count_[static_cast<std::size_t>(d)], S,
          static_cast<int>(commit_done_[static_cast<std::size_t>(d)]));
      bool any = false;
      for (int s = 0; s < S; ++s)
        if (scatter_done_[static_cast<std::size_t>(d) * S + s] == 0) {
          std::fprintf(stderr, " %d", s);
          any = true;
        }
      std::fprintf(stderr, any ? "\n" : " none\n");
    }
  }
}

void DataPlane::debug_set_wrap_state(std::uint32_t round_id,
                                     std::uint64_t wake_epoch) {
  PW_CHECK_MSG(staging_empty() && !pending(),
               "debug_set_wrap_state on a non-quiescent plane");
  PW_CHECK(round_id >= 1);
  PW_CHECK(wake_epoch >= 1 && wake_epoch <= kEpochMask);
  // Clear both stamp families and the wake words exactly like the real wrap
  // paths (prepare_next_stamp / bump_wake_epoch) do, so nothing delivered
  // under the old ids can alias the new range.
  for (auto& rec : arc_) rec.stamp = 0;
  for (auto& run : inbox_run_) run.stamp = 0;
  std::fill(wake_stamp_.begin(), wake_stamp_.end(), 0);
  round_id_ = round_id;
  wake_epoch_ = wake_epoch;
}

bool DataPlane::staging_empty() const {
  for (const CurLine& line : bucket_cur_)
    for (const int c : line.w)
      if (c != 0) return false;
  return true;
}

}  // namespace pw::sim
