// Deterministic fault-injection plane of the CONGEST engine (DESIGN.md §9).
//
// The paper's model (§2.1) assumes perfectly reliable synchronous rounds; the
// transport the engine is growing toward (ROADMAP: shared-memory rings, then
// sockets) does not. This plane lets any workload run under a reproducible
// fault model TODAY, so the algorithm stack and the close pipeline are
// chaos-tested before a real network ever gets to misbehave.
//
// Every fault decision is derived from a counter-based hash of
// (seed, delivery round, message slot), where the slot is the receiver-side
// arc id of the message — a static property that uniquely identifies
// (sender, receiver, port), and, because CONGEST allows at most one message
// per arc per direction per round, uniquely identifies the message within its
// round. No RNG state advances, no ordering is consumed: the verdict for a
// message is a pure function of the policy seed and values every execution
// policy agrees on. A fixed FaultPolicy therefore produces BIT-IDENTICAL
// delivery traces across {1} ∪ {2,4} × {barriered, pipelined, eager-sealed}
// (pinned by tests/engine_fault_test.cpp) — the engine's central determinism
// invariant survives the chaos plane by construction.
//
// Faults are applied at a single choke point: the per-destination merge
// (DataPlane::merge_shard). Nothing else in the data plane makes fault
// decisions, which is also what keeps the plane deterministic — the merge is
// the one place every message passes through in a policy-independent order.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/sim/message.hpp"
#include "src/util/check.hpp"

namespace pw::sim {

// One node outage: `node` is down for every round in [from, until) — it runs
// no callbacks, receives no messages (they are shed at the merge), and wake()
// calls targeting those rounds are suppressed. until == NEVER means the node
// never recovers. On the first round >= until the fault plane wakes the node
// (a reboot), so retransmission protocols reach it again without polling.
struct CrashSpan {
  static constexpr std::uint64_t kNever =
      std::numeric_limits<std::uint64_t>::max();
  int node = 0;
  std::uint64_t from = 0;
  std::uint64_t until = kNever;
};

// What the network may do to a message, and to whom. Probabilities are
// per-message and mutually exclusive in hash order drop -> delay -> dup
// (their sum must be <= 1); delayed messages arrive exactly `delay_rounds`
// rounds late, in their original relative order, before that round's fresh
// traffic. An all-zero policy (enabled() == false) arms nothing: the engine
// runs the fault-free hot paths, bit for bit.
struct FaultPolicy {
  std::uint64_t seed = 1;
  double drop_prob = 0;
  double delay_prob = 0;
  double dup_prob = 0;
  int delay_rounds = 1;  // extra rounds a DELAY verdict adds (>= 1)
  std::vector<CrashSpan> crashes;

  bool enabled() const {
    return drop_prob > 0 || delay_prob > 0 || dup_prob > 0 || !crashes.empty();
  }
};

// Cumulative fault accounting, surfaced through Engine::fault_stats().
// Everything here is in addition to the engine's rounds()/messages():
// messages() keeps counting SENDS (a dropped message was still sent — same
// convention as drain()), while these count what the network then did.
struct FaultStats {
  std::uint64_t messages_dropped = 0;     // hash verdict: vanished in flight
  std::uint64_t messages_delayed = 0;     // hash verdict: arrived late
  std::uint64_t messages_duplicated = 0;  // hash verdict: delivered twice
  std::uint64_t messages_shed_crashed = 0;  // endpoint was down
  std::uint64_t wakes_suppressed = 0;       // wake() targeting a down round

  FaultStats& operator+=(const FaultStats& o) {
    messages_dropped += o.messages_dropped;
    messages_delayed += o.messages_delayed;
    messages_duplicated += o.messages_duplicated;
    messages_shed_crashed += o.messages_shed_crashed;
    wakes_suppressed += o.wakes_suppressed;
    return *this;
  }
};

class FaultPlane {
 public:
  enum class Verdict : std::uint8_t { kDeliver, kDrop, kDelay, kDup };

  // A message parked by a DELAY verdict, owned by the queue of its
  // RECEIVER's shard (single-writer: only that shard's merge task touches
  // the queue, exactly like every other per-destination structure).
  struct Delayed {
    Incoming inc;
    int to = 0;
    std::uint64_t due = 0;  // absolute delivery round
  };

  FaultPlane(const FaultPolicy& policy, const graph::Graph& g, int num_shards,
             int shard_shift);

  // --- round clock ----------------------------------------------------------
  // The plane keeps its own 64-bit absolute round counter ("the round wakes
  // and deliveries currently target"), advanced once per DataPlane::
  // begin_round. It never wraps, so delay due-rounds and crash spans are
  // immune to the engine's 2^32 round-id and 2^40 wake-epoch wraps.
  void advance_round();
  std::uint64_t round() const { return round_; }

  // Nodes whose outage ended exactly this round, ascending; the data plane
  // wakes them (the reboot). Valid until the next advance_round().
  std::span<const int> recovered() const {
    return {recovered_.data(), recovered_.size()};
  }

  // --- crash state ----------------------------------------------------------
  // Down at the round deliveries/wakes currently target (= round()).
  bool down_now(int v) const {
    return down_[static_cast<std::size_t>(v)] != 0;
  }
  // Down at round() - 1 — the round the currently merging traffic was SENT
  // in; a message from a down sender is shed (it can only exist through a
  // manual round loop, since down nodes never run callbacks).
  bool down_when_sent(int v) const {
    return down_prev_[static_cast<std::size_t>(v)] != 0;
  }

  // v's outage schedule, ascending and disjoint (the policy's spans, sorted).
  std::span<const CrashSpan> crash_epochs(int v) const {
    return {spans_.data() + span_beg_[static_cast<std::size_t>(v)],
            static_cast<std::size_t>(span_beg_[static_cast<std::size_t>(v) + 1] -
                                     span_beg_[static_cast<std::size_t>(v)])};
  }

  // --- the counter-based hash ----------------------------------------------
  // Verdict for the message occupying receiver-side arc slot `rarc` this
  // round. Pure: both merge passes (discovery and scatter) recompute it and
  // must agree, so it takes no state beyond (seed, round, slot).
  Verdict verdict(int rarc) const {
    const std::uint64_t h =
        mix(round_mixed_ ^
            (static_cast<std::uint64_t>(rarc) * 0xd1b54a32d192ed03ULL));
    if (h < drop_cut_) return Verdict::kDrop;
    if (h < delay_cut_) return Verdict::kDelay;
    if (h < dup_cut_) return Verdict::kDup;
    return Verdict::kDeliver;
  }

  int delay_rounds() const { return policy_.delay_rounds; }

  // --- per-destination delay queues ----------------------------------------
  // All three are called only from destination shard d's merge task (or the
  // sequential caller), so the queues need no synchronization.
  void push_delayed(int d, const Incoming& inc, int to) {
    auto& q = queues_[static_cast<std::size_t>(d)];
    q.entries.push_back(Delayed{inc, to, round_ + policy_.delay_rounds});
  }
  // Entries due exactly this round: a prefix of the queue, since the fixed
  // delay keeps due-rounds nondecreasing in append order. The span stays
  // valid until pop_due()/clear_in_flight().
  std::span<const Delayed> due_now(int d) const {
    const auto& q = queues_[static_cast<std::size_t>(d)];
    std::size_t k = q.head;
    while (k < q.entries.size() && q.entries[k].due <= round_) ++k;
    return {q.entries.data() + q.head, k - q.head};
  }
  void pop_due(int d, std::size_t count);

  // True while any delay queue holds traffic: the engine must keep closing
  // rounds or in-flight messages would be lost. Cross-shard read — only
  // legal from sequential code (DataPlane::pending's own contract).
  bool any_in_flight() const;
  // Engine::drain(): in-flight delayed messages are discarded like every
  // other undelivered message (they stay counted as sent AND as delayed).
  void clear_in_flight();

  // --- stats ----------------------------------------------------------------
  // Shard-local accounting slot, written only by shard d's merge task /
  // callback task (cache-line isolated like the data plane's Shard rows).
  FaultStats& shard_stats(int d) {
    return queues_[static_cast<std::size_t>(d)].stats;
  }
  FaultStats totals() const;

 private:
  struct CrashEvent {
    std::uint64_t at = 0;
    int node = 0;
    bool down = false;
  };

  struct alignas(64) ShardSlot {
    std::vector<Delayed> entries;
    std::size_t head = 0;  // consumed prefix; compacted opportunistically
    FaultStats stats;
  };

  static std::uint64_t mix(std::uint64_t x) {
    // splitmix64 finalizer: full avalanche, no state.
    x ^= x >> 30;
    x *= 0xbf58476d1ce4e5b9ULL;
    x ^= x >> 27;
    x *= 0x94d049bb133111ebULL;
    x ^= x >> 31;
    return x;
  }
  static std::uint64_t cut(double p) {
    if (p <= 0) return 0;
    if (p >= 1) return std::numeric_limits<std::uint64_t>::max();
    return static_cast<std::uint64_t>(p * 18446744073709551616.0 /* 2^64 */);
  }

  void apply_events_for_round();

  FaultPolicy policy_;
  std::uint64_t drop_cut_ = 0;   // cumulative thresholds in hash space
  std::uint64_t delay_cut_ = 0;  // drop + delay
  std::uint64_t dup_cut_ = 0;    // drop + delay + dup

  std::uint64_t round_ = 0;        // round wakes/deliveries target
  std::uint64_t round_mixed_ = 0;  // mix(seed, round), refreshed per round

  std::vector<CrashEvent> events_;  // sorted by (at, node, recover-first)
  std::size_t next_event_ = 0;
  std::vector<std::uint8_t> down_;       // down at round()
  std::vector<std::uint8_t> down_prev_;  // down at round() - 1
  std::vector<int> recovered_;           // outages that ended this round
  std::vector<int> touched_;             // event scratch for recovered_

  std::vector<int> span_beg_;      // per-node CSR into spans_
  std::vector<CrashSpan> spans_;   // sorted (node, from)

  std::vector<ShardSlot> queues_;  // per destination shard
};

}  // namespace pw::sim
