// Synchronous CONGEST execution engine.
//
// The engine enforces the model of Section 2.1 of the paper:
//   * execution proceeds in discrete synchronous rounds;
//   * per round, each node may send at most one Msg along each incident edge
//     in each direction (violations abort);
//   * a message sent in round t is delivered at the start of round t+1.
//
// Algorithms are written as per-round loops over the engine's active-node
// set (nodes that received a message or were explicitly woken), so the cost
// of simulating quiet regions of the network is zero while round/message
// accounting remains exact.
//
// Execution is layered (DESIGN.md §5, §7, §8): this header owns the public
// round protocol and accounting; `data_plane.{hpp,cpp}` owns the sharded flat
// message arenas and the deterministic end-of-round merge; `executor.{hpp,cpp}`
// owns the persistent worker pool. With ExecutionPolicy{k > 1} the per-node
// callbacks of run() and the end-of-round merge execute shard-parallel, and
// with the (default-on) pipelined close of §8 the two phases overlap — a
// destination shard starts merging as soon as its incoming traffic is
// complete, while unrelated shards still run callbacks. Either way, round
// counts, message counts, active-node order, and per-inbox delivery order are
// BIT-IDENTICAL to the sequential engine for any thread count — parallelism
// lives entirely below the accounting layer. Parallel callbacks must honor
// the §7 thread-safety contract: the callback for node v may call
// send(v, ...) / wake(v) (checked) and may only write per-node state it owns.
//
// Accounting: `rounds()` and `messages()` count everything that ran through
// the engine; messages of the open round are added at end_round().
// `charge_rounds()`/`charge_messages()` exist for the few inner schedules the
// library accounts analytically (see DESIGN.md §4); each call site documents
// the lemma justifying the charge.
#pragma once

#include <cstdint>
#include <span>
#include <type_traits>
#include <utility>

#include "src/graph/graph.hpp"
#include "src/sim/data_plane.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/message.hpp"
#include "src/util/check.hpp"

namespace pw::sim {

struct Snapshot {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
};

struct PhaseStats {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;

  PhaseStats& operator+=(const PhaseStats& o) {
    rounds += o.rounds;
    messages += o.messages;
    return *this;
  }
};

class Engine {
 public:
  explicit Engine(const graph::Graph& g, ExecutionPolicy policy = {});

  // Chaos-mode engine (DESIGN.md §9): same round protocol, same accounting,
  // but the network may drop, delay, or duplicate messages and crash nodes
  // per `faults` — every decision a pure function of (seed, round, arc), so
  // a fixed policy replays bit-identically at any thread count / close mode.
  Engine(const graph::Graph& g, ExecutionPolicy policy,
         const FaultPolicy& faults);

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  const graph::Graph& graph() const { return *g_; }
  int num_threads() const { return exec_.num_threads(); }

  // The policy this engine was constructed with, as requested (shard rounding
  // may grant fewer worker threads; see num_threads()). Algorithms that spawn
  // inner engines — e.g. min-cut's per-trial MST engines — pass this through
  // so parallelism follows the caller's choice across the whole stack.
  ExecutionPolicy policy() const { return policy_; }

  // True when run() closes rounds with the pipelined overlap of DESIGN.md §8
  // (multi-shard engine with ExecutionPolicy::pipeline set). Purely a
  // scheduling property: accounting and delivery are identical either way.
  bool pipelined() const { return pipeline_ && dp_.num_shards() > 1; }

  // True when the pipelined close additionally seals bucket-granular (§8,
  // ExecutionPolicy::eager_seal): destination merges unlock the moment their
  // last feeding callback ran, not when the whole sender sweep ends. Like
  // pipelined(), purely a scheduling property.
  bool eager_sealed() const { return pipelined() && dp_.eager_seal(); }

  // True when destination merges additionally scatter each feeder bucket the
  // moment it seals (§8, ExecutionPolicy::incremental): the merge overlaps
  // with the sweeps still feeding it instead of waiting for its last seal.
  // Commit order is unchanged, so — like the two modes above — this is purely
  // a scheduling property.
  bool incremental_merge() const {
    return eager_sealed() && dp_.incremental_merge();
  }

  // The transport actually carrying cross-shard buckets (§10): kShmRing when
  // requested on a multi-shard engine, else kInProc (a single shard has no
  // links to carry). Like the close modes, purely a data-plane property —
  // delivery traces and accounting are bit-identical on either.
  TransportKind transport_kind() const { return dp_.transport_kind(); }

  // Schedules v to be processed next round even if it receives no message.
  // On a faulty() engine the wake is suppressed (and counted) while v is
  // crashed (§9).
  void wake(int v);

  // --- fault plane (§9) -----------------------------------------------------
  // True when a FaultPolicy is armed (the chaos-mode constructor with an
  // enabled policy). Fault-free engines pay nothing for the plane's existence.
  bool faulty() const { return dp_.faulty(); }
  // What the network did so far: drops, delays, duplicates, crash sheds,
  // suppressed wakes. All zero on a fault-free engine. Between rounds only,
  // like idle().
  FaultStats fault_stats() const { return dp_.fault_stats(); }
  // v's outage schedule under the armed policy (empty when fault-free):
  // the per-node crash epochs of the stats API.
  std::span<const CrashSpan> crash_epochs(int v) const {
    return dp_.crash_epochs(v);
  }

  // True when no message is in flight and no node is scheduled: advancing
  // rounds would be a no-op.
  bool idle() const { return !dp_.pending(); }

  // --- Round protocol ------------------------------------------------------
  // begin_round(); for (v : active_nodes()) { inbox(v) / send(v, ...); }
  // end_round();
  void begin_round();

  // The round's active nodes, ascending. Like inbox(), the span aliases an
  // engine buffer that end_round() repopulates: read it inside the round.
  std::span<const int> active_nodes() const { return dp_.active(); }

  // v's messages delivered for the current round, in per-sender send order.
  // The span aliases the delivery arena: it is valid only until the next
  // end_round()/drain(). Do not hold it across rounds.
  std::span<const Incoming> inbox(int v) const { return dp_.inbox(v); }

  void send(int v, int port, const Msg& m);
  void end_round();

  // Discards undelivered messages and scheduled wakeups. Phases that stop at
  // a fixed round budget call this so stale traffic cannot leak into the
  // next phase. (Sent-but-dropped messages remain counted: they were sent.)
  // Only legal between rounds on a quiescent engine: calling it from inside
  // an open round — in particular from a shard-parallel callback while
  // pipelined merge tasks may be in flight — aborts (checked; §8).
  void drain();

  // TEST HOOK (watchdog coverage; see Executor::debug_withhold_seal):
  // swallows exactly one seal of bucket (task -> dest) in the next pipelined
  // close, wedging that round's merge so the §9 watchdog fires.
  void debug_withhold_seal(int task, int dest) {
    exec_.debug_withhold_seal(task, dest);
  }

  // TEST HOOK (wrap coverage; see DataPlane::debug_set_wrap_state): jumps
  // the round id and wake epoch so the once-per-2^32-round stamp wrap and
  // the once-per-2^40 wake-epoch wrap run inside a test. Legal only between
  // rounds on an idle engine; accounting (rounds()/messages()) is untouched.
  void debug_set_wrap_state(std::uint32_t round_id, std::uint64_t wake_epoch) {
    PW_CHECK(!in_round_);
    dp_.debug_set_wrap_state(round_id, wake_epoch);
  }

  // Runs rounds until the network is idle or `max_rounds` elapsed, invoking
  // fn(v) for every active node each round. With ExecutionPolicy{k > 1} the
  // callbacks of one round execute shard-parallel (contract: DESIGN.md §7),
  // and with pipelined() additionally overlapped with the end-of-round merge
  // (§8): fn may observe other shards' NEXT-round state being built while it
  // runs, which is why the §7 contract already confines fn(v) to shard-local
  // reads and writes — a conforming callback cannot tell the modes apart.
  //
  // Returns the number of round-loop iterations EXECUTED — by design NOT the
  // same thing as the rounds() delta. rounds() additionally grows by any
  // charge_rounds() the callbacks issue (analytic charges land inside the
  // phase that pays them, DESIGN.md §4), while `max_rounds` budgets and the
  // return value count executed loop iterations only. Charging from inside a
  // callback is legal only under the sequential engine: with
  // ExecutionPolicy{k > 1} the callbacks run shard-parallel and charge_*()
  // aborts there (the counters are engine-global, not shard-owned — §7).
  template <class F>
  std::uint64_t run(F&& fn, std::uint64_t max_rounds = UINT64_MAX) {
    std::uint64_t executed = 0;
    if (dp_.num_shards() <= 1) {
      while (!idle() && executed < max_rounds) {
        begin_round();
        for (const int v : active_nodes()) fn(v);
        end_round();
        ++executed;
      }
      return executed;
    }
    struct Ctx {
      Engine* e;
      std::remove_reference_t<F>* f;
    } ctx{this, &fn};
    // Two whole-shard sweeps over the same ctx, both with fn inlined in the
    // loop: the plain one (barriered dispatch, shard-sealed pipelined close,
    // and the stamp-wrap fallback) and the eager-sealing one, which walks
    // the shard's seal schedule in lockstep with its active slice — sealing
    // each outgoing bucket right after its last feeder's callback, empty
    // buckets up front, and the self edge after the whole sweep (§8).
    const auto callbacks = +[](void* c, int s) {
      auto* x = static_cast<Ctx*>(c);
      for (const int v : x->e->dp_.shard_active(s)) {
        x->e->dp_.set_current_callback(s, v);
        (*x->f)(v);
        x->e->exec_.tick();  // watchdog heartbeat: sweeping ≠ wedged (§9)
      }
    };
    const auto eager_callbacks = +[](void* c, int s) {
      auto* x = static_cast<Ctx*>(c);
      Engine& e = *x->e;
      const auto pts = e.dp_.seal_schedule(s);
      const auto act = e.dp_.shard_active(s);
      std::size_t p = 0;
      while (p < pts.size() && pts[p].idx < 0) e.exec_.seal(pts[p++].dest);
      for (int i = 0; i < static_cast<int>(act.size()); ++i) {
        const int v = act[static_cast<std::size_t>(i)];
        e.dp_.set_current_callback(s, v);
        (*x->f)(v);
        e.exec_.tick();  // watchdog heartbeat: sweeping ≠ wedged (§9)
        while (p < pts.size() && pts[p].idx == i) e.exec_.seal(pts[p++].dest);
      }
      // A leftover seal point means the schedule disagrees with the active
      // slice — the merge waiting on that bucket would deadlock (or worse,
      // run early). Abort loudly instead.
      PW_CHECK_MSG(p == pts.size(),
                   "shard %d finished its sweep with unsealed buckets "
                   "(seal schedule stale, DESIGN.md §8)",
                   s);
      // The self edge seals only after the WHOLE sweep: the shard's merge
      // rewrites wake words, inbox runs, and the delivery region these
      // callbacks read.
      e.exec_.seal(s);
    };
    while (!idle() && executed < max_rounds) {
      begin_round();
      dp_.set_parallel_callbacks(true);
      if (pipeline_) {
        // Pipelined close (§8): callbacks and the merge fuse into one
        // two-stage dispatch; only the accounting tail is sequential.
        const std::uint64_t staged = dp_.run_pipelined_round(
            exec_, dp_.eager_seal() ? eager_callbacks : callbacks, &ctx);
        dp_.set_parallel_callbacks(false);
        finish_round(staged);
      } else {
        exec_.parallel(dp_.num_shards(), callbacks, &ctx);
        dp_.set_parallel_callbacks(false);
        end_round();
      }
      ++executed;
    }
    return executed;
  }

  // --- Accounting -----------------------------------------------------------
  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t messages() const { return messages_; }
  // The counters are engine-global and unsynchronized, so charging from a
  // shard-parallel callback would be a data race; the §7 contract forbids it
  // (checked). All in-tree charge sites run between rounds or in central
  // per-phase code, never inside parallel dispatch.
  void charge_rounds(std::uint64_t r) {
    PW_CHECK_MSG(!dp_.in_parallel_callbacks(),
                 "charge_rounds() from a shard-parallel callback (DESIGN.md §7)");
    rounds_ += r;
  }
  void charge_messages(std::uint64_t m) {
    PW_CHECK_MSG(!dp_.in_parallel_callbacks(),
                 "charge_messages() from a shard-parallel callback (DESIGN.md §7)");
    messages_ += m;
  }

  Snapshot snap() const { return {rounds_, messages_}; }
  PhaseStats since(const Snapshot& s) const {
    return {rounds_ - s.rounds, messages_ - s.messages};
  }

 private:
  // The accounting tail every round close funds, whichever close mode staged
  // the messages (§7 end_round(), §8 pipelined) — keep it in one place so the
  // two modes cannot drift.
  void finish_round(std::uint64_t staged) {
    in_round_ = false;
    messages_ += staged;
    ++rounds_;
  }

  const graph::Graph* g_;
  DataPlane dp_;
  Executor exec_;

  ExecutionPolicy policy_;  // as requested at construction
  bool pipeline_ = false;   // §8 pipelined close armed (multi-shard only)
  bool in_round_ = false;
  std::uint64_t rounds_ = 0;
  std::uint64_t messages_ = 0;
};

}  // namespace pw::sim
