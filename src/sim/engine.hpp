// Synchronous CONGEST execution engine.
//
// The engine enforces the model of Section 2.1 of the paper:
//   * execution proceeds in discrete synchronous rounds;
//   * per round, each node may send at most one Msg along each incident edge
//     in each direction (violations abort);
//   * a message sent in round t is delivered at the start of round t+1.
//
// Algorithms are written as per-round loops over the engine's active-node
// set (nodes that received a message or were explicitly woken), so the cost
// of simulating quiet regions of the network is zero while round/message
// accounting remains exact.
//
// Data plane (DESIGN.md §5): messages live in two flat, double-buffered
// arenas — `staging_` collects sends append-only during a round, and
// `end_round()` buckets them into per-recipient runs of the contiguous
// `delivery_` arena with a stable counting pass. `inbox(v)` is a span into
// `delivery_`; it is INVALIDATED by `end_round()` (and `drain()`). The
// active set is materialized already ordered from the wake stamps, so the
// steady-state round loop performs no sorting and no heap allocation.
//
// Accounting: `rounds()` and `messages()` count everything that ran through
// the engine. `charge_rounds()`/`charge_messages()` exist for the few inner
// schedules the library accounts analytically (see DESIGN.md §4); each call
// site documents the lemma justifying the charge.
#pragma once

#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/sim/message.hpp"

namespace pw::sim {

struct Snapshot {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
};

struct PhaseStats {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;

  PhaseStats& operator+=(const PhaseStats& o) {
    rounds += o.rounds;
    messages += o.messages;
    return *this;
  }
};

class Engine {
 public:
  explicit Engine(const graph::Graph& g);

  const graph::Graph& graph() const { return *g_; }

  // Schedules v to be processed next round even if it receives no message.
  void wake(int v);

  // True when no message is in flight and no node is scheduled: advancing
  // rounds would be a no-op.
  bool idle() const { return wake_list_.empty(); }

  // --- Round protocol ------------------------------------------------------
  // begin_round(); for (v : active_nodes()) { inbox(v) / send(v, ...); }
  // end_round();
  void begin_round();

  // The round's active nodes, ascending. Like inbox(), the span aliases an
  // engine buffer that end_round() repopulates: read it inside the round.
  std::span<const int> active_nodes() const { return active_; }

  // v's messages delivered for the current round, in per-sender send order.
  // The span aliases the delivery arena: it is valid only until the next
  // end_round()/drain(). Do not hold it across rounds.
  std::span<const Incoming> inbox(int v) const {
    const InboxRun r = inbox_run_[static_cast<std::size_t>(v)];
    if (r.stamp != round_id_) return {};
    return {delivery_.data() + r.beg, static_cast<std::size_t>(r.end - r.beg)};
  }

  void send(int v, int port, const Msg& m);
  void end_round();

  // Discards undelivered messages and scheduled wakeups. Phases that stop at
  // a fixed round budget call this so stale traffic cannot leak into the
  // next phase. (Sent-but-dropped messages remain counted: they were sent.)
  void drain();

  // Runs rounds until the network is idle or `max_rounds` elapsed, invoking
  // fn(v) for every active node each round. Returns rounds executed.
  template <class F>
  std::uint64_t run(F&& fn, std::uint64_t max_rounds = UINT64_MAX) {
    std::uint64_t executed = 0;
    while (!idle() && executed < max_rounds) {
      begin_round();
      for (int v : active_nodes()) fn(v);
      end_round();
      ++executed;
    }
    return executed;
  }

  // --- Accounting -----------------------------------------------------------
  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t messages() const { return messages_; }
  void charge_rounds(std::uint64_t r) { rounds_ += r; }
  void charge_messages(std::uint64_t m) { messages_ += m; }

  Snapshot snap() const { return {rounds_, messages_}; }
  PhaseStats since(const Snapshot& s) const {
    return {rounds_ - s.rounds, messages_ - s.messages};
  }

 private:
  // Materializes `active_` in ascending order from `wake_list_` without
  // comparison sorting: a stamp sweep over [wake_min_, wake_max_] when the
  // woken ids are dense in their range, an LSD radix pass otherwise. Both
  // are O(|touched|) amortized and allocation-free at steady state.
  void build_active_set();

  // Advances wake_epoch_, clearing every wake word when the 40-bit epoch
  // field would wrap (once per 2^40 advances) so a stale epoch can never
  // match a live one — the epoch-field analogue of the round_id_ wrap
  // handling in end_round().
  void bump_wake_epoch();

  const graph::Graph* g_;

  // Per-arc record: the receiver endpoint (the mirror arc resolved to
  // node + port, precomputed via graph::Graph::port_of_arc) fused with the
  // one-message-per-arc-per-round stamp — everything a send must know or
  // mark about its arc in one compact 12-byte slot (~5 records per cache
  // line), so the arc-table touch of a send is a single line in the
  // common case.
  // 32-bit round ids keep the slot small; on the (once per 2^32 rounds)
  // wrap all stamps are cleared so stale ones can never collide.
  struct ArcRec {
    int to = 0;
    int port = 0;
    std::uint32_t stamp = 0;
  };
  std::vector<ArcRec> arc_;

  // Flat double-buffered message arenas (DESIGN.md §5). The
  // one-message-per-arc-per-round rule bounds a round's traffic by
  // num_arcs(), so both arenas are sized once at construction and appends
  // are raw cursor stores — no growth checks anywhere in the round loop.
  struct Staged {
    Incoming inc;
    int to = 0;  // recipient node id
  };
  std::vector<Staged> staging_;     // sends of the round in flight, send order
  std::size_t staging_size_ = 0;
  std::vector<Incoming> delivery_;  // bucketed per-recipient runs, read side

  // Per-node run descriptor into delivery_: [beg, end) plus the round id the
  // run is valid for. `end` doubles as the scatter cursor. Kept to a compact
  // 12 bytes (~5 runs per cache line) so publishing, scattering, and reading
  // an inbox each touch one line in the common case.
  struct InboxRun {
    int beg = 0;
    int end = 0;
    std::uint32_t stamp = 0;
  };
  std::vector<InboxRun> inbox_run_;

  // Per-node wake word: low 40 bits hold the epoch the node was last woken
  // in, high 24 bits count the messages staged to it this round. One word —
  // one cache line — carries both facts a send must update about its
  // receiver. 24 bits bound a node's per-round fan-in, which the
  // one-message-per-arc rule caps at its degree (checked in the ctor).
  static constexpr std::uint64_t kEpochMask = (1ULL << 40) - 1;
  static constexpr std::uint64_t kCountOne = 1ULL << 40;
  std::vector<std::uint64_t> wake_stamp_;

  std::vector<int> active_;
  bool active_dirty_ = true;  // wake() since the last build_active_set()
  std::vector<int> wake_list_;
  std::vector<int> radix_buf_;
  std::uint64_t wake_epoch_ = 1;
  int wake_min_ = std::numeric_limits<int>::max();
  int wake_max_ = -1;

  std::uint32_t round_id_ = 1;
  bool in_round_ = false;

  std::uint64_t rounds_ = 0;
  std::uint64_t messages_ = 0;
};

}  // namespace pw::sim
