// Synchronous CONGEST execution engine.
//
// The engine enforces the model of Section 2.1 of the paper:
//   * execution proceeds in discrete synchronous rounds;
//   * per round, each node may send at most one Msg along each incident edge
//     in each direction (violations abort);
//   * a message sent in round t is delivered at the start of round t+1.
//
// Algorithms are written as per-round loops over the engine's active-node
// set (nodes that received a message or were explicitly woken), so the cost
// of simulating quiet regions of the network is zero while round/message
// accounting remains exact.
//
// Accounting: `rounds()` and `messages()` count everything that ran through
// the engine. `charge_rounds()`/`charge_messages()` exist for the few inner
// schedules the library accounts analytically (see DESIGN.md §4); each call
// site documents the lemma justifying the charge.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/sim/message.hpp"

namespace pw::sim {

struct Snapshot {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
};

struct PhaseStats {
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;

  PhaseStats& operator+=(const PhaseStats& o) {
    rounds += o.rounds;
    messages += o.messages;
    return *this;
  }
};

class Engine {
 public:
  explicit Engine(const graph::Graph& g);

  const graph::Graph& graph() const { return *g_; }

  // Schedules v to be processed next round even if it receives no message.
  void wake(int v);

  // True when no message is in flight and no node is scheduled: advancing
  // rounds would be a no-op.
  bool idle() const { return wake_list_.empty(); }

  // --- Round protocol ------------------------------------------------------
  // begin_round(); for (v : active_nodes()) { inbox(v) / send(v, ...); }
  // end_round();
  void begin_round();
  std::span<const int> active_nodes() const { return active_; }
  std::span<const Incoming> inbox(int v) const { return inbox_cur_[v]; }
  void send(int v, int port, const Msg& m);
  void end_round();

  // Discards undelivered messages and scheduled wakeups. Phases that stop at
  // a fixed round budget call this so stale traffic cannot leak into the
  // next phase. (Sent-but-dropped messages remain counted: they were sent.)
  void drain();

  // Runs rounds until the network is idle or `max_rounds` elapsed, invoking
  // fn(v) for every active node each round. Returns rounds executed.
  template <class F>
  std::uint64_t run(F&& fn, std::uint64_t max_rounds = UINT64_MAX) {
    std::uint64_t executed = 0;
    while (!idle() && executed < max_rounds) {
      begin_round();
      for (int v : active_nodes()) fn(v);
      end_round();
      ++executed;
    }
    return executed;
  }

  // --- Accounting -----------------------------------------------------------
  std::uint64_t rounds() const { return rounds_; }
  std::uint64_t messages() const { return messages_; }
  void charge_rounds(std::uint64_t r) { rounds_ += r; }
  void charge_messages(std::uint64_t m) { messages_ += m; }

  Snapshot snap() const { return {rounds_, messages_}; }
  PhaseStats since(const Snapshot& s) const {
    return {rounds_ - s.rounds, messages_ - s.messages};
  }

 private:
  const graph::Graph* g_;

  std::vector<std::vector<Incoming>> inbox_cur_;
  std::vector<std::vector<Incoming>> inbox_next_;

  std::vector<int> active_;
  std::vector<int> wake_list_;
  std::vector<std::uint64_t> wake_stamp_;
  std::uint64_t wake_epoch_ = 1;

  std::vector<std::uint64_t> arc_stamp_;  // one-message-per-arc-per-round guard
  std::uint64_t round_id_ = 1;
  bool in_round_ = false;

  std::uint64_t rounds_ = 0;
  std::uint64_t messages_ = 0;
};

}  // namespace pw::sim
