#include "src/sim/engine.hpp"

namespace pw::sim {

Engine::Engine(const graph::Graph& g, ExecutionPolicy policy)
    : Engine(g, policy, FaultPolicy{}) {}

Engine::Engine(const graph::Graph& g, ExecutionPolicy policy,
               const FaultPolicy& faults)
    : g_(&g),
      // Eager-seal metadata is only ever consumed by the pipelined close, so
      // a barriered-only engine skips the bookkeeping entirely. A disabled
      // fault policy (the default) arms nothing — same engine, bit for bit.
      dp_(g, policy.num_threads < 1 ? 1 : policy.num_threads,
          policy.pipeline && policy.eager_seal,
          policy.pipeline && policy.eager_seal && policy.incremental, &faults,
          policy.transport),
      // Shard rounding can leave fewer shards than requested threads; never
      // spawn workers that could have no shard to own.
      exec_(dp_.num_shards(), policy.watchdog_ms),
      policy_(policy),
      // The pipelined close only exists where there are phases to overlap.
      pipeline_(policy.pipeline && dp_.num_shards() > 1) {
  // When the watchdog fires, the data plane's per-bucket seal state is the
  // half of the picture the executor cannot print itself (§9).
  exec_.set_watchdog_dump(
      +[](void* c) { static_cast<DataPlane*>(c)->watchdog_dump(); }, &dp_);
}

void Engine::wake(int v) {
  PW_CHECK(v >= 0 && v < g_->n());
  dp_.wake(v);
}

void Engine::begin_round() {
  PW_CHECK(!in_round_);
  // The staging buckets must be empty here: end_round() consumed them and
  // drain() never refills them. A violation means a layout bug, and with it
  // silently wrong delivery — abort instead.
  PW_CHECK(dp_.staging_empty());
  in_round_ = true;
  dp_.begin_round();
}

void Engine::send(int v, int port, const Msg& m) {
  PW_CHECK(in_round_);
  PW_CHECK(port >= 0 && port < g_->degree(v));
  dp_.stage(v, port, m);
}

void Engine::end_round() {
  PW_CHECK(in_round_);
  finish_round(dp_.end_round(exec_));
}

void Engine::drain() {
  // Mid-round drains are forbidden, and with the pipelined close they would
  // be catastrophic, not just wrong: a callback that drained while sibling
  // shards still sweep — and destination merges are in flight or their
  // dependency counters nonzero — would discard wake lists the merges are
  // concurrently writing (§8). Abort with an explicit message instead of
  // relying on the generic in_round_ check.
  PW_CHECK_MSG(!in_round_ && !dp_.in_parallel_callbacks(),
               "drain() inside an open round: finish the round (or let run() "
               "return) before draining (DESIGN.md §8)");
  // Belt and suspenders for the same §8 hazard from a second thread: every
  // dispatch (barriered or pipelined) fully quiesces the executor before the
  // round closes, so any in-flight merge task here means the protocol above
  // was bypassed.
  PW_CHECK_MSG(exec_.quiescent(),
               "drain() with executor tasks still in flight (DESIGN.md §8)");
  // Sends only happen inside rounds and end_round() consumes them, so the
  // staging buckets are empty here; only delivered-but-unread runs and
  // wakeups need discarding.
  PW_CHECK(dp_.staging_empty());
  dp_.drain();
}

}  // namespace pw::sim
