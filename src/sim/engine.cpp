#include "src/sim/engine.hpp"

#include <algorithm>
#include <limits>

namespace pw::sim {

Engine::Engine(const graph::Graph& g)
    : g_(&g),
      arc_(static_cast<std::size_t>(g.num_arcs())),
      staging_(static_cast<std::size_t>(g.num_arcs())),
      delivery_(static_cast<std::size_t>(g.num_arcs())),
      inbox_run_(static_cast<std::size_t>(g.n())),
      wake_stamp_(static_cast<std::size_t>(g.n()), 0) {
  for (int a = 0; a < g.num_arcs(); ++a) {
    const int m = g.mirror(a);
    arc_[static_cast<std::size_t>(a)] =
        ArcRec{g.arc_owner(m), g.port_of_arc(m), 0};
  }
  for (int v = 0; v < g.n(); ++v)
    PW_CHECK_MSG(static_cast<std::uint64_t>(g.degree(v)) < (1ULL << 24),
                 "degree of node %d overflows the wake-word fan-in counter", v);
}

void Engine::wake(int v) {
  PW_CHECK(v >= 0 && v < g_->n());
  auto& s = wake_stamp_[static_cast<std::size_t>(v)];
  if ((s & kEpochMask) == wake_epoch_) return;
  s = wake_epoch_;
  wake_list_.push_back(v);
  active_dirty_ = true;
  if (v < wake_min_) wake_min_ = v;
  if (v > wake_max_) wake_max_ = v;
}

void Engine::build_active_set() {
  active_dirty_ = false;
  active_.clear();
  const auto count = wake_list_.size();
  if (count == 0) return;
  const std::size_t range =
      static_cast<std::size_t>(wake_max_) - static_cast<std::size_t>(wake_min_) + 1;
  if (range <= 8 * count) {
    // Dense case (the common one: flood fronts, whole-graph phases): one
    // forward sweep over the touched id range, emitting stamped nodes in
    // ascending order.
    for (int v = wake_min_; v <= wake_max_; ++v)
      if ((wake_stamp_[static_cast<std::size_t>(v)] & kEpochMask) == wake_epoch_)
        active_.push_back(v);
  } else {
    // Sparse case: LSD radix sort of the wake list (byte digits). Linear in
    // |touched|, no comparisons, buffers reused across rounds.
    // Node ids fit 31 bits, so 4 byte-digits always suffice; the passes < 4
    // cap also keeps the shift below 32 (x >> 32 on a 32-bit value is UB).
    int passes = 1;
    while (passes < 4 &&
           (static_cast<unsigned>(wake_max_) >> (8 * passes)) != 0)
      ++passes;
    radix_buf_.resize(count);
    std::vector<int>* src = &wake_list_;
    std::vector<int>* dst = &radix_buf_;
    for (int p = 0; p < passes; ++p) {
      std::uint32_t cnt[256] = {};
      const int shift = 8 * p;
      for (const int x : *src) ++cnt[(static_cast<unsigned>(x) >> shift) & 0xff];
      std::uint32_t pos = 0;
      for (auto& c : cnt) {
        const std::uint32_t start = pos;
        pos += c;
        c = start;
      }
      for (const int x : *src)
        (*dst)[cnt[(static_cast<unsigned>(x) >> shift) & 0xff]++] = x;
      std::swap(src, dst);
    }
    active_.assign(src->begin(), src->end());
  }
}

void Engine::bump_wake_epoch() {
  if (++wake_epoch_ > kEpochMask) {
    // Epoch 2^40 would spill into the fan-in count bits of the wake word and
    // never compare equal through kEpochMask again. Clear every word (0 is
    // never a live epoch) and restart; one pass per 2^40 rounds.
    std::fill(wake_stamp_.begin(), wake_stamp_.end(), 0);
    wake_epoch_ = 1;
  }
}

void Engine::begin_round() {
  PW_CHECK(!in_round_);
  // The next-direction arena must be empty here: end_round() consumed it and
  // drain() never refills it. A violation means a layout bug, and with it
  // silently wrong delivery — abort instead.
  PW_CHECK(staging_size_ == 0);
  in_round_ = true;
  // end_round() already materialized the active set for this round; only
  // explicit wake() calls since then (phase starts, reseeds) force a redo.
  if (active_dirty_) build_active_set();
  wake_list_.clear();
  bump_wake_epoch();
  wake_min_ = std::numeric_limits<int>::max();
  wake_max_ = -1;
}

void Engine::send(int v, int port, const Msg& m) {
  PW_CHECK(in_round_);
  PW_CHECK(port >= 0 && port < g_->degree(v));
  const int arc = g_->arc_id(v, port);
  ArcRec& rec = arc_[static_cast<std::size_t>(arc)];
  PW_CHECK_MSG(rec.stamp != round_id_,
               "node %d sent two messages on port %d in one round", v, port);
  rec.stamp = round_id_;

  // Raw cursor store: the arc-stamp guard proves staging_size_ < num_arcs.
  Staged& slot = staging_[staging_size_++];
  slot.inc.from = v;
  slot.inc.port = rec.port;
  slot.inc.msg = m;
  slot.to = rec.to;

  // One word carries both receiver-side updates: schedule the receiver and
  // bump its staged-message count.
  auto& s = wake_stamp_[static_cast<std::size_t>(rec.to)];
  if ((s & kEpochMask) != wake_epoch_) {
    s = wake_epoch_ | kCountOne;
    wake_list_.push_back(rec.to);
    if (rec.to < wake_min_) wake_min_ = rec.to;
    if (rec.to > wake_max_) wake_max_ = rec.to;
  } else {
    s += kCountOne;
  }
  ++messages_;
}

void Engine::end_round() {
  PW_CHECK(in_round_);
  in_round_ = false;

  if (round_id_ == std::numeric_limits<std::uint32_t>::max()) {
    // 32-bit round id is about to wrap: clear every stamp so a stale one can
    // never equal a live id. One pass per 2^32 rounds.
    for (auto& rec : arc_) rec.stamp = 0;
    for (auto& run : inbox_run_) run.stamp = 0;
    round_id_ = 0;  // the ++ below makes the next live id 1
  }

  // Materialize next round's active set now, while the wake stamps are
  // live, and assign per-node run offsets in ITS (ascending) order:
  // receivers then read the delivery arena front to back over the round —
  // one forward stream. In the dense case both are produced by a single
  // sweep over the wake words (each word is read once: it carries the epoch
  // AND the staged-message count). The counts need no reset — the next
  // round's first touch of a node restamps its whole word. Stamping each
  // run with the upcoming round id both publishes it and lazily invalidates
  // every older run without touching it.
  active_dirty_ = false;
  active_.clear();
  int off = 0;
  const auto count = wake_list_.size();
  const std::size_t range =
      count == 0 ? 1
                 : static_cast<std::size_t>(wake_max_) -
                       static_cast<std::size_t>(wake_min_) + 1;
  if (count != 0 && range <= 8 * count) {
    for (int v = wake_min_; v <= wake_max_; ++v) {
      const auto vi = static_cast<std::size_t>(v);
      const std::uint64_t word = wake_stamp_[vi];
      if ((word & kEpochMask) != wake_epoch_) continue;
      active_.push_back(v);
      InboxRun& run = inbox_run_[vi];
      run.beg = run.end = off;
      run.stamp = round_id_ + 1;
      off += static_cast<int>(word >> 40);
    }
  } else {
    build_active_set();
    for (const int v : active_) {
      const auto vi = static_cast<std::size_t>(v);
      InboxRun& run = inbox_run_[vi];
      run.beg = run.end = off;
      run.stamp = round_id_ + 1;
      off += static_cast<int>(wake_stamp_[vi] >> 40);
    }
  }

  // Stable scatter: per-recipient delivery order is send order, exactly the
  // order the old per-node push_back produced. Both arenas were sized to
  // num_arcs at construction, so nothing here allocates — ever.
  for (std::size_t i = 0; i < staging_size_; ++i) {
    if (i + 8 < staging_size_) {
      const InboxRun& ahead =
          inbox_run_[static_cast<std::size_t>(staging_[i + 8].to)];
      __builtin_prefetch(&ahead, 1);
      __builtin_prefetch(&delivery_[static_cast<std::size_t>(ahead.end)], 1);
    }
    const Staged& s = staging_[i];
    delivery_[static_cast<std::size_t>(
        inbox_run_[static_cast<std::size_t>(s.to)].end++)] = s.inc;
  }
  staging_size_ = 0;

  ++rounds_;
  ++round_id_;
}

void Engine::drain() {
  PW_CHECK(!in_round_);
  // Sends only happen inside rounds and end_round() consumes them, so the
  // staging arena is empty here; only delivered-but-unread runs and wakeups
  // need discarding (their runs die by stamp invalidation, no data moves).
  PW_CHECK(staging_size_ == 0);
  for (const int v : wake_list_) inbox_run_[static_cast<std::size_t>(v)].stamp = 0;
  wake_list_.clear();
  active_dirty_ = true;
  bump_wake_epoch();
  wake_min_ = std::numeric_limits<int>::max();
  wake_max_ = -1;
}

}  // namespace pw::sim
