#include "src/sim/engine.hpp"

#include <algorithm>

namespace pw::sim {

Engine::Engine(const graph::Graph& g)
    : g_(&g),
      inbox_cur_(g.n()),
      inbox_next_(g.n()),
      wake_stamp_(g.n(), 0),
      arc_stamp_(g.num_arcs(), 0) {}

void Engine::wake(int v) {
  PW_CHECK(v >= 0 && v < g_->n());
  if (wake_stamp_[v] == wake_epoch_) return;
  wake_stamp_[v] = wake_epoch_;
  wake_list_.push_back(v);
}

void Engine::begin_round() {
  PW_CHECK(!in_round_);
  in_round_ = true;
  active_.swap(wake_list_);
  wake_list_.clear();
  ++wake_epoch_;
  // Deterministic processing order regardless of wake order.
  std::sort(active_.begin(), active_.end());
}

void Engine::send(int v, int port, const Msg& m) {
  PW_CHECK(in_round_);
  PW_CHECK(port >= 0 && port < g_->degree(v));
  const int arc = g_->arc_id(v, port);
  PW_CHECK_MSG(arc_stamp_[arc] != round_id_,
               "node %d sent two messages on port %d in one round", v, port);
  arc_stamp_[arc] = round_id_;

  const int to = g_->arcs(v)[port].to;
  const int mirror_arc = g_->mirror(arc);
  const int to_port = mirror_arc - g_->arc_id(to, 0);
  inbox_next_[to].push_back(Incoming{v, to_port, m});
  wake(to);
  ++messages_;
}

void Engine::drain() {
  PW_CHECK(!in_round_);
  for (int v : wake_list_) inbox_cur_[v].clear();
  wake_list_.clear();
  ++wake_epoch_;
}

void Engine::end_round() {
  PW_CHECK(in_round_);
  in_round_ = false;
  for (int v : active_) inbox_cur_[v].clear();
  inbox_cur_.swap(inbox_next_);
  ++rounds_;
  ++round_id_;
}

}  // namespace pw::sim
