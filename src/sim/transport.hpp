// Transport layer of the sharded data plane (DESIGN.md §10).
//
// The bucket layout of §8 — (sender shard, destination shard) staging buckets
// with exact arc-count capacities, sealed at deterministic per-round points,
// consumed by the ascending-sender merge — is a network message schedule in
// everything but name. This header makes that literal: the merge no longer
// reads the staging arena directly but a per-bucket RECEIVE view owned by a
// Transport, and the seal of bucket (s → d) doubles as the publish of that
// bucket's frame on the transport's (s → d) link.
//
// Two backends:
//
//   * InProcTransport — the identity transport. The staged bucket IS the
//     received bucket (the receive view aliases the staging arena), publish
//     and drain are never called, and the engine is bit-for-bit the pre-§10
//     one. Default.
//
//   * ShmRingTransport — one fixed-width-serialized SPSC ring per
//     nonzero-capacity (s → d) shard pair, s ≠ d, living in a single
//     MAP_SHARED memory segment. A seal serializes the bucket's staged
//     messages into WireMsg records and publishes the frame (release bump of
//     the ring's publish index); the destination's merge drains the frame —
//     deserializing into a receive arena laid out exactly like the staging
//     arena — before its first read of the bucket. The self bucket (d → d)
//     never crosses a shard boundary and drains as a local copy (the loopback
//     link). Because the §8 dependency machinery already guarantees
//     publish-happens-before-drain, the in-engine drain is non-blocking: ring
//     indices are ASSERTED, not waited on, so all four close modes and the §9
//     fault choke point run unchanged on top of rings. The segment really is
//     shared memory (MAP_SHARED | MAP_ANONYMOUS): a child forked after
//     construction sees the same rings at the same addresses, which is
//     exactly how tools/partwise_shard runs one process per shard over these
//     same structs.
//
// Rings carry at most ONE frame at a time (publish in round r's close, drain
// in the same close, next publish a full round later), so the frame protocol
// is two monotone counters: pub_seq (frames published) and cons_seq (frames
// consumed), equal exactly when the ring is empty. Each counter is
// single-writer; the release publish / acquire drain pair carries the frame
// bytes. A watchdog reads both to name stalled links: pub == cons with a
// starving consumer means the producer died before publishing.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "src/sim/executor.hpp"
#include "src/sim/message.hpp"
#include "src/util/check.hpp"

namespace pw::sim {

// Fixed-width wire record: one staged message as it crosses a shard boundary.
// Every field is explicit (including the padding word, zeroed on serialize)
// so a frame's bytes are a pure function of its messages — frames can be
// hashed, compared, or shipped to a different process without a schema.
struct WireMsg {
  std::int32_t to = 0;    // receiver node id
  std::int32_t from = 0;  // sender node id
  std::int32_t port = 0;  // receiver's port
  std::uint16_t tag = 0;
  std::uint16_t pad = 0;
  std::uint64_t a = 0;
  std::uint64_t b = 0;
  std::uint64_t c = 0;
};
static_assert(sizeof(WireMsg) == 40 && std::is_trivially_copyable_v<WireMsg>,
              "wire records are fixed-width memcpy-able frames");

// Serialization is field-by-field (not a struct memcpy) so the wire format
// stays stable even if Incoming/Msg ever reorder or grow padding.
inline WireMsg wire_pack(int to, const Incoming& inc) {
  WireMsg w;
  w.to = to;
  w.from = inc.from;
  w.port = inc.port;
  w.tag = inc.msg.tag;
  w.a = inc.msg.a;
  w.b = inc.msg.b;
  w.c = inc.msg.c;
  return w;
}

inline void wire_unpack(const WireMsg& w, int& to, Incoming& inc) {
  to = w.to;
  inc.from = w.from;
  inc.port = w.port;
  inc.msg.tag = w.tag;
  inc.msg.a = w.a;
  inc.msg.b = w.b;
  inc.msg.c = w.c;
}

// SPSC ring header, one cache line, lives at the start of each ring's slice
// of the shared segment. Both counters count FRAMES (one frame per round per
// link), not records; `count` is the record count of the open frame.
struct alignas(64) RingHdr {
  std::atomic<std::uint64_t> pub_seq{0};   // frames published (producer-owned)
  std::atomic<std::uint64_t> cons_seq{0};  // frames consumed (consumer-owned)
  std::atomic<std::uint32_t> count{0};     // records in the open frame
};
static_assert(sizeof(RingHdr) == 64);
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "ring counters must be plain shared-memory words");

// Attached view of one ring inside a mapped segment. The creator placement-
// news the header once; every attach (same process or a forked child) just
// points at it. Capacity is the link's static bucket capacity — a frame can
// never exceed it, so the data region never wraps and a frame is always one
// contiguous [0, count) prefix.
class SpscRing {
 public:
  SpscRing() = default;
  SpscRing(void* mem, int capacity, bool create)
      : hdr_(create ? new (mem) RingHdr{} : static_cast<RingHdr*>(mem)),
        data_(reinterpret_cast<WireMsg*>(static_cast<unsigned char*>(mem) +
                                         sizeof(RingHdr))),
        capacity_(capacity) {}

  static std::size_t bytes(int capacity) {
    // Header line + records, padded to a cache line so adjacent rings in the
    // segment never share one.
    const std::size_t raw =
        sizeof(RingHdr) + static_cast<std::size_t>(capacity) * sizeof(WireMsg);
    return (raw + 63) & ~std::size_t{63};
  }

  bool attached() const { return hdr_ != nullptr; }
  int capacity() const { return capacity_; }
  std::uint64_t pub_seq() const {
    return hdr_->pub_seq.load(std::memory_order_acquire);
  }
  std::uint64_t cons_seq() const {
    return hdr_->cons_seq.load(std::memory_order_acquire);
  }

  // Producer side: serialize `count` staged messages into the next frame and
  // publish it. The ring must be empty — with one frame per round per link,
  // a non-empty ring here means the consumer skipped a round.
  void publish(const int* to, const Incoming* inc, int count) {
    PW_CHECK_MSG(hdr_->pub_seq.load(std::memory_order_relaxed) ==
                     hdr_->cons_seq.load(std::memory_order_acquire),
                 "ring frame published over an unconsumed one (§10)");
    PW_CHECK(count >= 0 && count <= capacity_);
    for (int i = 0; i < count; ++i)
      data_[i] = wire_pack(to[i], inc[i]);
    hdr_->count.store(static_cast<std::uint32_t>(count),
                      std::memory_order_relaxed);
    hdr_->pub_seq.fetch_add(1, std::memory_order_release);
  }

  // Consumer side, non-blocking: true once exactly one unconsumed frame is
  // visible (acquire — its records are readable on true).
  bool frame_ready() const {
    return pub_seq() == hdr_->cons_seq.load(std::memory_order_relaxed) + 1;
  }
  int frame_count() const {
    return static_cast<int>(hdr_->count.load(std::memory_order_relaxed));
  }
  const WireMsg* frame() const { return data_; }

  // Retires the drained frame (release: the producer's emptiness check in
  // publish() may acquire it from another thread or process).
  void consume() {
    hdr_->cons_seq.store(hdr_->cons_seq.load(std::memory_order_relaxed) + 1,
                         std::memory_order_release);
  }

 private:
  RingHdr* hdr_ = nullptr;
  WireMsg* data_ = nullptr;
  int capacity_ = 0;
};

// One anonymous shared mapping, zero-filled by the kernel. MAP_SHARED is the
// point: a process forked after construction shares the PAGES, not copies —
// the ring protocol works unchanged across the fork boundary. Falls back to
// heap memory where mmap is unavailable (rings then work in-process only).
class ShmArena {
 public:
  explicit ShmArena(std::size_t bytes);
  ~ShmArena();
  ShmArena(const ShmArena&) = delete;
  ShmArena& operator=(const ShmArena&) = delete;

  void* base() const { return base_; }
  std::size_t size() const { return size_; }

 private:
  void* base_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
};

// The seam the data plane talks through. Per round and per bucket the calls
// are:
//   publish(s, d, ...)  — bucket (s → d) is final; called at its §8 seal
//                         point (or in a pre-merge pass under the barriered
//                         close) on the thread that owns sender shard s.
//   drain(s, d, ...)    — called by destination d's merge task before its
//                         first read of the bucket; after it returns the
//                         bucket's records are readable at rx_to()/rx_inc()
//                         at the same global slot offsets as the staging
//                         arena.
// Virtual dispatch is once per bucket per round (≤ S² calls), not per
// message.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual TransportKind kind() const = 0;
  virtual void publish(int s, int d, const int* to, const Incoming* inc,
                       int count) = 0;
  virtual void drain(int s, int d, const int* to, const Incoming* inc,
                     int count) = 0;
  virtual const int* rx_to() const = 0;
  virtual const Incoming* rx_inc() const = 0;
  // Appended to the §9 watchdog dump: per-link liveness (publish/consume
  // indices), so a wedged close names its stalled links.
  virtual void watchdog_dump() const {}
};

// The identity transport: staged bytes are received bytes. The data plane
// aliases its receive view to the staging arena and never calls publish or
// drain — the §8 dependency machinery alone orders writer and reader, which
// is the pre-§10 engine bit for bit.
class InProcTransport final : public Transport {
 public:
  InProcTransport(const int* staging_to, const Incoming* staging_inc)
      : to_(staging_to), inc_(staging_inc) {}
  TransportKind kind() const override { return TransportKind::kInProc; }
  void publish(int, int, const int*, const Incoming*, int) override {}
  void drain(int, int, const int*, const Incoming*, int) override {}
  const int* rx_to() const override { return to_; }
  const Incoming* rx_inc() const override { return inc_; }

 private:
  const int* to_;
  const Incoming* inc_;
};

// Shared-memory ring transport: real serialization, real shared pages, one
// SPSC ring per nonzero cross-shard link, sized by the link's static bucket
// capacity. The receive arena is process-private (each consumer has its own
// deserialized copy — on a socket backend it would be the recv buffer) and
// mirrors the staging arena's bucket offsets exactly, so the merge's slot
// arithmetic is unchanged.
class ShmRingTransport final : public Transport {
 public:
  // `bucket_base` is the data plane's (d * S + s)-indexed prefix-sum table,
  // size S² + 1; capacities and receive offsets both derive from it.
  ShmRingTransport(int num_shards, const std::vector<int>& bucket_base);

  TransportKind kind() const override { return TransportKind::kShmRing; }
  void publish(int s, int d, const int* to, const Incoming* inc,
               int count) override;
  void drain(int s, int d, const int* to, const Incoming* inc,
             int count) override;
  const int* rx_to() const override { return rx_to_.data(); }
  const Incoming* rx_inc() const override { return rx_inc_.data(); }
  void watchdog_dump() const override;

  // The multi-process runner's view: the shared segment and the ring table,
  // so a forked shard worker drives the SAME rings the in-process engine
  // would. ring(s, d) is unattached when the link has zero capacity or
  // s == d.
  const ShmArena& arena() const { return *arena_; }
  const SpscRing& ring(int s, int d) const {
    return rings_[static_cast<std::size_t>(d) * num_shards_ + s];
  }

 private:
  int num_shards_;
  std::vector<int> bucket_base_;       // copy: offsets outlive the data plane
  std::vector<SpscRing> rings_;        // (d * S + s), unattached where no link
  std::vector<int> rx_to_;             // receive arena, staging layout
  std::vector<Incoming> rx_inc_;
  std::unique_ptr<ShmArena> arena_;
};

}  // namespace pw::sim
