// Transport layer of the sharded data plane (DESIGN.md §10).
//
// The bucket layout of §8 — (sender shard, destination shard) staging buckets
// with exact arc-count capacities, sealed at deterministic per-round points,
// consumed by the ascending-sender merge — is a network message schedule in
// everything but name. This header makes that literal: every bucket the data
// plane stages into or merges from is a per-bucket VIEW owned by a Transport,
// and the seal of bucket (s → d) doubles as the publish of that bucket's
// frame on the transport's (s → d) link.
//
// The wire format IS the staging format. A frame is the bucket's SoA pair —
// the Incoming payload run followed by the receiver-id run — laid out in the
// ring region itself. stage() writes cross-shard records directly into the
// ring at their final wire offsets, so publish is a pure release-bump of the
// ring's publish index (no serialize loop), the drain is a pure assertion
// (no memcpy into a receive arena), and the merge reads frames in place.
// There is no separate WireMsg: `Incoming` is the wire record, pinned below
// by static_assert so the cross-process format can't drift silently.
//
// Two backends:
//
//   * InProcTransport — the identity transport. Every bucket view aliases
//     the staging arena, publish and drain are no-ops, and the engine is
//     bit-for-bit the pre-§10 one. Default.
//
//   * ShmRingTransport — one SPSC ring per nonzero-capacity (s → d) shard
//     pair, s ≠ d, living in a single MAP_SHARED memory segment. The bucket
//     view for a cross-shard link points INTO the ring's frame region, so
//     staged bytes are wire bytes; a seal publishes the frame (release bump
//     of the ring's publish index) and the destination's merge reads it in
//     place, retiring the frame only after the commit pass took its copy.
//     Self buckets (d → d) never cross a shard boundary: their views alias
//     the staging arena exactly like the in-proc transport (the loopback
//     link carries no ring and no copy). Because the §8 dependency machinery
//     already guarantees publish-happens-before-drain, the in-engine drain is
//     non-blocking: ring indices are ASSERTED, not waited on, so all four
//     close modes and the §9 fault choke point run unchanged on top of
//     rings. The segment really is shared memory (MAP_SHARED |
//     MAP_ANONYMOUS): a child forked after construction sees the same rings
//     at the same addresses, which is exactly how tools/partwise_shard runs
//     one process per shard over these same structs.
//
// Rings carry at most ONE frame at a time (publish in round r's close, drain
// in the same close, next publish a full round later), so the frame protocol
// is two monotone counters: pub_seq (frames published) and cons_seq (frames
// consumed), equal exactly when the ring is empty. Each counter is
// single-writer; the release publish / acquire drain pair carries the frame
// bytes. Overwrite safety for the in-place staging is the round structure
// itself: round r's retire happens inside round r's dispatch, and round
// r + 1's stage writes happen after that dispatch's completion barrier — the
// publish-time emptiness PW_CHECK still pins the protocol. A watchdog reads
// both counters to name stalled links: pub == cons with a starving consumer
// means the producer died before publishing.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <vector>

#include "src/sim/executor.hpp"
#include "src/sim/message.hpp"
#include "src/util/check.hpp"

namespace pw::sim {

// The wire record is the staging record. Frames are raw SoA runs of these,
// so the cross-process format is exactly the in-memory layout — pinned here
// so a field reorder or padding change is a compile error, not a silent
// protocol break between differently-built shard workers.
static_assert(sizeof(Incoming) == 40 &&
                  std::is_trivially_copyable_v<Incoming>,
              "Incoming is the §10 wire record: fixed-width, memcpy-able");
static_assert(sizeof(int) == 4,
              "receiver ids are 4-byte wire words in the frame's id run");

// SPSC ring header, one cache line, lives at the start of each ring's slice
// of the shared segment. Both counters count FRAMES (one frame per round per
// link), not records; `count` is the record count of the open frame.
struct alignas(64) RingHdr {
  std::atomic<std::uint64_t> pub_seq{0};   // frames published (producer-owned)
  std::atomic<std::uint64_t> cons_seq{0};  // frames consumed (consumer-owned)
  std::atomic<std::uint32_t> count{0};     // records in the open frame
};
static_assert(sizeof(RingHdr) == 64);
static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "ring counters must be plain shared-memory words");

// Attached view of one ring inside a mapped segment. The creator placement-
// news the header once; every attach (same process or a forked child) just
// points at it. Capacity is the link's static bucket capacity — a frame can
// never exceed it, so the data region never wraps and a frame is always one
// contiguous [0, count) prefix.
//
// Region layout: [RingHdr | Incoming inc[cap] | int to[cap]], padded to a
// cache line. The producer stages records directly into inc()/to() during
// the round (the ring is provably empty then — see the header comment), and
// publish() is only the count store plus the release bump.
class SpscRing {
 public:
  SpscRing() = default;
  SpscRing(void* mem, int capacity, bool create)
      : hdr_(create ? new (mem) RingHdr{} : static_cast<RingHdr*>(mem)),
        inc_(reinterpret_cast<Incoming*>(static_cast<unsigned char*>(mem) +
                                         sizeof(RingHdr))),
        to_(reinterpret_cast<int*>(
            static_cast<unsigned char*>(mem) + sizeof(RingHdr) +
            static_cast<std::size_t>(capacity) * sizeof(Incoming))),
        capacity_(capacity) {}

  static std::size_t bytes(int capacity) {
    // Header line + the SoA frame (payload run then id run), padded to a
    // cache line so adjacent rings in the segment never share one.
    const std::size_t raw =
        sizeof(RingHdr) +
        static_cast<std::size_t>(capacity) * (sizeof(Incoming) + sizeof(int));
    return (raw + 63) & ~std::size_t{63};
  }

  bool attached() const { return hdr_ != nullptr; }
  int capacity() const { return capacity_; }
  std::uint64_t pub_seq() const {
    // PAIR(ring-pub-seq): acquire the frame bytes behind the publish bump
    return hdr_->pub_seq.load(std::memory_order_acquire);
  }
  std::uint64_t cons_seq() const {
    // PAIR(ring-cons-seq): acquire the consumer's retirement
    return hdr_->cons_seq.load(std::memory_order_acquire);
  }

  // The frame region. Producer-writable while the ring is empty (staging),
  // consumer-readable between frame_ready() and consume() — the SPSC
  // protocol plus the one-frame-per-round schedule make the two windows
  // disjoint.
  Incoming* inc() const { return inc_; }
  int* to() const { return to_; }

  // Producer side: the frame's records are already in place (staged through
  // inc()/to()); publishing is recording the count and bumping pub_seq. The
  // ring must be empty — with one frame per round per link, a non-empty ring
  // here means the consumer skipped a round.
  void publish(int count) {
    // PAIR(ring-cons-seq): emptiness check acquires the last retirement
    PW_CHECK_MSG(hdr_->pub_seq.load(std::memory_order_relaxed) ==
                     hdr_->cons_seq.load(std::memory_order_acquire),
                 "ring frame published over an unconsumed one (§10)");
    PW_CHECK(count >= 0 && count <= capacity_);
    hdr_->count.store(static_cast<std::uint32_t>(count),
                      std::memory_order_relaxed);
    // PAIR(ring-pub-seq): frame bytes + count published to the consumer
    hdr_->pub_seq.fetch_add(1, std::memory_order_release);
  }

  // Consumer side, non-blocking: true once exactly one unconsumed frame is
  // visible (acquire — its records are readable on true).
  bool frame_ready() const {
    return pub_seq() == hdr_->cons_seq.load(std::memory_order_relaxed) + 1;
  }
  int frame_count() const {
    return static_cast<int>(hdr_->count.load(std::memory_order_relaxed));
  }

  // Retires the drained frame (release: the producer's emptiness check in
  // publish() may acquire it from another thread or process).
  void consume() {
    // PAIR(ring-cons-seq): retirement published to the producer's
    // emptiness acquire in publish()
    hdr_->cons_seq.store(hdr_->cons_seq.load(std::memory_order_relaxed) + 1,
                         std::memory_order_release);
  }

 private:
  RingHdr* hdr_ = nullptr;
  Incoming* inc_ = nullptr;
  int* to_ = nullptr;
  int capacity_ = 0;
};

// One anonymous shared mapping, zero-filled by the kernel. MAP_SHARED is the
// point: a process forked after construction shares the PAGES, not copies —
// the ring protocol works unchanged across the fork boundary. Falls back to
// heap memory where mmap is unavailable (rings then work in-process only).
class ShmArena {
 public:
  explicit ShmArena(std::size_t bytes);
  ~ShmArena();
  ShmArena(const ShmArena&) = delete;
  ShmArena& operator=(const ShmArena&) = delete;

  void* base() const { return base_; }
  std::size_t size() const { return size_; }

 private:
  void* base_ = nullptr;
  std::size_t size_ = 0;
  bool mapped_ = false;
};

// Where bucket (s → d)'s records live: the id run and the payload run the
// data plane stages into and the merge reads from. For local buckets both
// point into the staging arena; for a cross-shard shm link both point into
// the ring's frame region, so staging IS serialization.
struct BucketView {
  int* to = nullptr;
  Incoming* inc = nullptr;
};

// The seam the data plane talks through. bucket(s, d) is queried once at
// data-plane construction (the views are stable for the transport's
// lifetime); per round and per bucket the calls are:
//   publish(s, d, count) — bucket (s → d) is final; called at its §8 seal
//                          point (or in a pre-merge pass under the barriered
//                          close) on the thread that owns sender shard s.
//   drain(s, d, count)   — called by destination d's merge task before its
//                          first read of the bucket; purely an assertion
//                          that the frame is visible and carries `count`
//                          records (the view already points at them).
//   retire(s, d)         — called by destination d after its LAST read of
//                          the bucket (the commit pass copied the frame into
//                          the delivery arena); frees the link for the next
//                          round's staging.
// Virtual dispatch is once per bucket per round (≤ S² calls), not per
// message.
class Transport {
 public:
  virtual ~Transport() = default;
  virtual TransportKind kind() const = 0;
  virtual BucketView bucket(int s, int d) = 0;
  virtual void publish(int s, int d, int count) = 0;
  virtual void drain(int s, int d, int count) = 0;
  virtual void retire(int s, int d) = 0;
  // Appended to the §9 watchdog dump: per-link liveness (publish/consume
  // indices), so a wedged close names its stalled links.
  virtual void watchdog_dump() const {}
};

// The identity transport: staged bytes are received bytes. Every bucket view
// aliases the staging arena at the bucket's prefix-sum offset, and publish /
// drain / retire are no-ops — the §8 dependency machinery alone orders
// writer and reader, which is the pre-§10 engine bit for bit.
class InProcTransport final : public Transport {
 public:
  // `bucket_base` is the data plane's (d * S + s)-indexed prefix-sum table,
  // size S² + 1, in slots of the staging arena.
  InProcTransport(int num_shards, const std::vector<int>& bucket_base,
                  int* staging_to, Incoming* staging_inc)
      : num_shards_(num_shards),
        bucket_base_(bucket_base),
        to_(staging_to),
        inc_(staging_inc) {}
  TransportKind kind() const override { return TransportKind::kInProc; }
  BucketView bucket(int s, int d) override {
    const auto base = static_cast<std::size_t>(
        bucket_base_[static_cast<std::size_t>(d) * num_shards_ + s]);
    return BucketView{to_ + base, inc_ + base};
  }
  void publish(int, int, int) override {}
  void drain(int, int, int) override {}
  void retire(int, int) override {}

 private:
  int num_shards_;
  std::vector<int> bucket_base_;  // copy: offsets outlive the data plane
  int* to_;
  Incoming* inc_;
};

// Shared-memory ring transport: real shared pages, one SPSC ring per nonzero
// cross-shard link, sized by the link's static bucket capacity. Cross-shard
// bucket views point into the ring frame regions (staged in place, drained
// in place — zero copies on the wire path); self and zero-capacity buckets
// alias the staging arena like the identity transport.
class ShmRingTransport final : public Transport {
 public:
  // `bucket_base` is the data plane's (d * S + s)-indexed prefix-sum table,
  // size S² + 1; ring capacities and the local-bucket views derive from it.
  ShmRingTransport(int num_shards, const std::vector<int>& bucket_base,
                   int* staging_to, Incoming* staging_inc);

  TransportKind kind() const override { return TransportKind::kShmRing; }
  BucketView bucket(int s, int d) override;
  void publish(int s, int d, int count) override;
  void drain(int s, int d, int count) override;
  void retire(int s, int d) override;
  void watchdog_dump() const override;

  // The multi-process runner's view: the shared segment and the ring table,
  // so a forked shard worker drives the SAME rings the in-process engine
  // would. ring(s, d) is unattached when the link has zero capacity or
  // s == d.
  const ShmArena& arena() const { return *arena_; }
  const SpscRing& ring(int s, int d) const {
    return rings_[static_cast<std::size_t>(d) * num_shards_ + s];
  }

 private:
  int num_shards_;
  std::vector<int> bucket_base_;  // copy: offsets outlive the data plane
  std::vector<SpscRing> rings_;   // (d * S + s), unattached where no link
  int* staging_to_;               // local-bucket (loopback) views
  Incoming* staging_inc_;
  std::unique_ptr<ShmArena> arena_;
};

}  // namespace pw::sim
