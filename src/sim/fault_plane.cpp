#include "src/sim/fault_plane.hpp"

#include <algorithm>
#include <cstring>

namespace pw::sim {

FaultPlane::FaultPlane(const FaultPolicy& policy, const graph::Graph& g,
                       int num_shards, int /*shard_shift*/)
    : policy_(policy) {
  PW_CHECK_MSG(policy.drop_prob >= 0 && policy.delay_prob >= 0 &&
                   policy.dup_prob >= 0 &&
                   policy.drop_prob + policy.delay_prob + policy.dup_prob <=
                       1.0,
               "fault probabilities must be nonnegative and sum to <= 1");
  PW_CHECK_MSG(policy.delay_rounds >= 1,
               "delay_rounds must be >= 1 (a zero delay is a delivery)");
  drop_cut_ = cut(policy.drop_prob);
  delay_cut_ = cut(policy.drop_prob + policy.delay_prob);
  dup_cut_ = cut(policy.drop_prob + policy.delay_prob + policy.dup_prob);
  round_mixed_ = mix(policy_.seed ^ (round_ * 0x9e3779b97f4a7c15ULL));

  const std::size_t n = static_cast<std::size_t>(g.n());
  down_.assign(n, 0);
  down_prev_.assign(n, 0);

  // Per-node span CSR (ascending, checked disjoint) + the flat event list the
  // round clock replays.
  std::vector<CrashSpan> spans = policy.crashes;
  for (const CrashSpan& c : spans) {
    PW_CHECK_MSG(c.node >= 0 && c.node < g.n(), "crash span names node %d",
                 c.node);
    PW_CHECK_MSG(c.from < c.until, "empty crash span for node %d", c.node);
  }
  std::sort(spans.begin(), spans.end(), [](const CrashSpan& a, const CrashSpan& b) {
    return a.node != b.node ? a.node < b.node : a.from < b.from;
  });
  span_beg_.assign(n + 1, 0);
  for (const CrashSpan& c : spans)
    ++span_beg_[static_cast<std::size_t>(c.node) + 1];
  for (std::size_t v = 0; v < n; ++v) span_beg_[v + 1] += span_beg_[v];
  spans_ = std::move(spans);
  for (std::size_t i = 1; i < spans_.size(); ++i)
    if (spans_[i].node == spans_[i - 1].node)
      PW_CHECK_MSG(spans_[i - 1].until <= spans_[i].from,
                   "overlapping crash spans for node %d (merge them)",
                   spans_[i].node);

  events_.reserve(spans_.size() * 2);
  for (const CrashSpan& c : spans_) {
    events_.push_back(CrashEvent{c.from, c.node, true});
    if (c.until != CrashSpan::kNever)
      events_.push_back(CrashEvent{c.until, c.node, false});
  }
  // Recover-before-crash at equal (round, node): back-to-back spans
  // [a,b) + [b,c) then read as "down throughout", never a one-round blip up.
  std::sort(events_.begin(), events_.end(),
            [](const CrashEvent& a, const CrashEvent& b) {
              if (a.at != b.at) return a.at < b.at;
              if (a.node != b.node) return a.node < b.node;
              return !a.down && b.down;
            });

  // Spans covering round 0 are the plane's initial state (wakes before the
  // first begin_round target round 0 and must already see them).
  apply_events_for_round();
  recovered_.clear();  // nothing "recovers" into existence at round 0
  down_prev_ = down_;  // round -1 never existed; treat it like round 0

  queues_.resize(static_cast<std::size_t>(num_shards));
  if (delay_cut_ > drop_cut_) {
    // One round's worth of incoming arcs spread over the shards is a sane
    // first capacity; chaos runs may grow past it (the fault plane is not on
    // the alloc-free hot path — see DESIGN.md §9).
    const std::size_t per =
        static_cast<std::size_t>(g.num_arcs()) /
            static_cast<std::size_t>(num_shards) +
        1;
    for (ShardSlot& q : queues_) q.entries.reserve(per);
  }
}

void FaultPlane::apply_events_for_round() {
  touched_.clear();
  while (next_event_ < events_.size() && events_[next_event_].at <= round_) {
    const CrashEvent& e = events_[next_event_++];
    down_[static_cast<std::size_t>(e.node)] = e.down ? 1 : 0;
    touched_.push_back(e.node);
  }
}

void FaultPlane::advance_round() {
  std::memcpy(down_prev_.data(), down_.data(), down_.size());
  ++round_;
  round_mixed_ = mix(policy_.seed ^ (round_ * 0x9e3779b97f4a7c15ULL));
  apply_events_for_round();
  // A node recovered this round iff it was down last round and is up now —
  // judged AFTER all of the round's events, so adjacent spans that crash the
  // node again in the same round don't produce a phantom reboot. Events are
  // node-sorted within the round, so recovered_ comes out ascending.
  recovered_.clear();
  int last = -1;
  for (const int v : touched_) {
    if (v == last) continue;  // recover+crash pair for the same node
    last = v;
    if (down_prev_[static_cast<std::size_t>(v)] != 0 &&
        down_[static_cast<std::size_t>(v)] == 0)
      recovered_.push_back(v);
  }
}

void FaultPlane::pop_due(int d, std::size_t count) {
  ShardSlot& q = queues_[static_cast<std::size_t>(d)];
  q.head += count;
  if (q.head == q.entries.size()) {
    q.entries.clear();
    q.head = 0;
  }
}

bool FaultPlane::any_in_flight() const {
  for (const ShardSlot& q : queues_)
    if (q.head < q.entries.size()) return true;
  return false;
}

void FaultPlane::clear_in_flight() {
  for (ShardSlot& q : queues_) {
    q.entries.clear();
    q.head = 0;
  }
}

FaultStats FaultPlane::totals() const {
  FaultStats t;
  for (const ShardSlot& q : queues_) t += q.stats;
  return t;
}

}  // namespace pw::sim
