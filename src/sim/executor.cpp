#include "src/sim/executor.hpp"

#include "src/util/check.hpp"

namespace pw::sim {

namespace {
// Shard index of the current thread inside a dispatch. Thread-local rather
// than a member so the data plane can query it without plumbing the executor
// through every hot call.
thread_local int tl_task = -1;
}  // namespace

int Executor::this_task() { return tl_task; }

Executor::Executor(int num_threads)
    : deps_left_(static_cast<std::size_t>(num_threads < 1 ? 1 : num_threads)),
      ready_(static_cast<std::size_t>(num_threads < 1 ? 1 : num_threads)),
      num_threads_(num_threads < 1 ? 1 : num_threads) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

Executor::~Executor() {
  if (workers_.empty()) return;
  stop_ = true;
  num_tasks_ = 0;
  outstanding_.store(static_cast<int>(workers_.size()), std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_release);
  generation_.notify_all();
  for (auto& w : workers_) w.join();
}

void Executor::worker_loop(int idx) {
  std::uint64_t seen = 0;
  for (;;) {
    generation_.wait(seen, std::memory_order_acquire);
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (gen == seen) continue;  // spurious wake
    seen = gen;
    if (stop_) {
      outstanding_.fetch_sub(1, std::memory_order_release);
      return;
    }
    if (stage2_ != nullptr) {
      pipeline_thread(idx);
    } else if (idx < num_tasks_) {
      tl_task = idx;
      fn_(ctx_, idx);
      tl_task = -1;
    }
    if (outstanding_.fetch_sub(1, std::memory_order_release) == 1)
      outstanding_.notify_one();
  }
}

void Executor::wait_barrier() {
  for (;;) {
    const int left = outstanding_.load(std::memory_order_acquire);
    if (left == 0) break;
    outstanding_.wait(left, std::memory_order_acquire);
  }
}

void Executor::parallel(int num_tasks, TaskFn fn, void* ctx) {
  PW_CHECK(num_tasks >= 1 && num_tasks <= num_threads_);
  PW_CHECK(tl_task == -1);  // no nested dispatch
  if (workers_.empty() || num_tasks == 1) {
    tl_task = 0;
    fn(ctx, 0);
    tl_task = -1;
    // With num_tasks == 1 no worker has anything to do; skipping the wakeup
    // keeps single-task dispatches free of cross-thread traffic.
    return;
  }
  fn_ = fn;
  ctx_ = ctx;
  stage2_ = nullptr;
  num_tasks_ = num_tasks;
  outstanding_.store(static_cast<int>(workers_.size()), std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_release);
  generation_.notify_all();
  tl_task = 0;
  fn(ctx, 0);
  tl_task = -1;
  wait_barrier();
}

// The per-thread body of a pipeline() dispatch: stage-1 task idx (if the
// thread owns one), then the seal, then the claim loop over the ready ring.
void Executor::pipeline_thread(int idx) {
  if (idx < num_tasks_) {
    tl_task = idx;
    fn_(ctx_, idx);
    tl_task = -1;
    // Seal stage-1 task idx. The acq_rel fetch_sub chains the feeders: the
    // thread that drops a counter to zero has acquired every earlier feeder's
    // release, so its release-store of the ring slot publishes ALL of the
    // stage-2 task's inputs to whichever thread claims it.
    for (int i = deps_.out_beg[idx]; i < deps_.out_beg[idx + 1]; ++i) {
      const int d = deps_.out[i];
      if (deps_left_[static_cast<std::size_t>(d)].fetch_sub(
              1, std::memory_order_acq_rel) == 1) {
        const int slot = ready_tail_.fetch_add(1, std::memory_order_relaxed);
        auto& cell = ready_[static_cast<std::size_t>(slot)];
        cell.store(d, std::memory_order_release);
        cell.notify_all();
      }
    }
  }
  // Claim loop: reserve ring indices until every stage-2 task is claimed.
  // Each reserved index is eventually published (all stage-1 tasks run, so
  // every dependency counter reaches zero), so the slot wait terminates.
  for (;;) {
    const int my = ready_head_.fetch_add(1, std::memory_order_relaxed);
    if (my >= num_tasks_) break;
    auto& cell = ready_[static_cast<std::size_t>(my)];
    int d = cell.load(std::memory_order_acquire);
    while (d < 0) {
      cell.wait(d, std::memory_order_acquire);
      d = cell.load(std::memory_order_acquire);
    }
    tl_task = d;
    stage2_(ctx_, d);
    tl_task = -1;
  }
}

void Executor::pipeline(int num_tasks, TaskFn stage1, TaskFn stage2,
                        const PipelineDeps& deps, void* ctx) {
  PW_CHECK(num_tasks >= 1 && num_tasks <= num_threads_);
  PW_CHECK(tl_task == -1);  // no nested dispatch
  if (workers_.empty() || num_tasks == 1) {
    // Degenerate pipeline: the single stage-1 task followed by its only
    // dependent, inline on the caller.
    tl_task = 0;
    stage1(ctx, 0);
    stage2(ctx, 0);
    tl_task = -1;
    return;
  }
  for (int d = 0; d < num_tasks; ++d) {
    deps_left_[static_cast<std::size_t>(d)].store(deps.dep_count[d],
                                                  std::memory_order_relaxed);
    ready_[static_cast<std::size_t>(d)].store(-1, std::memory_order_relaxed);
  }
  ready_head_.store(0, std::memory_order_relaxed);
  ready_tail_.store(0, std::memory_order_relaxed);
  fn_ = stage1;
  stage2_ = stage2;
  deps_ = deps;
  ctx_ = ctx;
  num_tasks_ = num_tasks;
  outstanding_.store(static_cast<int>(workers_.size()), std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_release);
  generation_.notify_all();
  pipeline_thread(0);
  wait_barrier();
  stage2_ = nullptr;
}

}  // namespace pw::sim
