#include "src/sim/executor.hpp"

#include "src/util/check.hpp"

namespace pw::sim {

namespace {
// Shard index of the current thread inside a dispatch. Thread-local rather
// than a member so the data plane can query it without plumbing the executor
// through every hot call.
thread_local int tl_task = -1;
}  // namespace

int Executor::this_task() { return tl_task; }

Executor::Executor(int num_threads)
    : deps_left_(static_cast<std::size_t>(num_threads < 1 ? 1 : num_threads)),
      ready_(static_cast<std::size_t>(num_threads < 1 ? 1 : num_threads)),
      num_threads_(num_threads < 1 ? 1 : num_threads) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

Executor::~Executor() {
  if (workers_.empty()) return;
  stop_ = true;
  num_tasks_ = 0;
  outstanding_.store(static_cast<int>(workers_.size()), std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_release);
  generation_.notify_all();
  for (auto& w : workers_) w.join();
}

void Executor::worker_loop(int idx) {
  std::uint64_t seen = 0;
  for (;;) {
    generation_.wait(seen, std::memory_order_acquire);
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (gen == seen) continue;  // spurious wake
    seen = gen;
    if (stop_) {
      outstanding_.fetch_sub(1, std::memory_order_release);
      return;
    }
    if (stage2_ != nullptr) {
      pipeline_thread(idx);
    } else if (idx < num_tasks_) {
      tl_task = idx;
      fn_(ctx_, idx);
      tl_task = -1;
    }
    if (outstanding_.fetch_sub(1, std::memory_order_release) == 1)
      outstanding_.notify_one();
  }
}

void Executor::wait_barrier() {
  for (;;) {
    const int left = outstanding_.load(std::memory_order_acquire);
    if (left == 0) break;
    outstanding_.wait(left, std::memory_order_acquire);
  }
}

void Executor::parallel(int num_tasks, TaskFn fn, void* ctx) {
  PW_CHECK(num_tasks >= 1 && num_tasks <= num_threads_);
  PW_CHECK(tl_task == -1);  // no nested dispatch
  if (workers_.empty() || num_tasks == 1) {
    tl_task = 0;
    fn(ctx, 0);
    tl_task = -1;
    // With num_tasks == 1 no worker has anything to do; skipping the wakeup
    // keeps single-task dispatches free of cross-thread traffic.
    return;
  }
  fn_ = fn;
  ctx_ = ctx;
  stage2_ = nullptr;
  num_tasks_ = num_tasks;
  outstanding_.store(static_cast<int>(workers_.size()), std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_release);
  generation_.notify_all();
  tl_task = 0;
  fn(ctx, 0);
  tl_task = -1;
  wait_barrier();
}

// Seals one dependency edge into stage-2 task d. The acq_rel fetch_sub
// chains the feeders: the thread that drops a counter to zero has acquired
// every earlier feeder's release, so its release-store of the ring slot
// publishes ALL of the stage-2 task's inputs to whichever thread claims it.
// This is the same code path whether the executor seals a whole stage-1 task
// at once (the default) or the stage-1 function seals bucket by bucket from
// mid-run (caller_seals) — the counter cannot tell who decrements it.
void Executor::seal(int d) {
  // Outside a live multi-thread pipeline dispatch there is nothing to
  // decrement and nobody waiting: the degenerate inline pipeline runs its
  // stage 2 right after stage 1, and a caller-sealing sweep dispatched
  // through parallel() (the data plane's stamp-wrap fallback) is followed by
  // a barriered merge. stage2_ is non-null exactly while a real pipeline
  // dispatch is live (set before the generation bump, cleared after the
  // barrier), so it is the discriminator workers already use.
  if (stage2_ == nullptr) return;
  if (deps_left_[static_cast<std::size_t>(d)].fetch_sub(
          1, std::memory_order_acq_rel) == 1) {
    const int slot = ready_tail_.fetch_add(1, std::memory_order_relaxed);
    auto& cell = ready_[static_cast<std::size_t>(slot)];
    cell.store(d, std::memory_order_release);
    cell.notify_all();
  }
}

// The per-thread body of a pipeline() dispatch: stage-1 task idx (if the
// thread owns one), then the seal (unless the stage-1 fn sealed eagerly
// itself), then the claim loop over the ready ring.
void Executor::pipeline_thread(int idx) {
  if (idx < num_tasks_) {
    tl_task = idx;
    fn_(ctx_, idx);
    tl_task = -1;
    if (!caller_seals_)
      for (int i = deps_.out_beg[idx]; i < deps_.out_beg[idx + 1]; ++i)
        seal(deps_.out[i]);
  }
  // Claim loop: reserve ring indices until every stage-2 task is claimed.
  // Each reserved index is eventually published (all stage-1 tasks run, so
  // every dependency counter reaches zero), so the slot wait terminates.
  for (;;) {
    const int my = ready_head_.fetch_add(1, std::memory_order_relaxed);
    if (my >= num_tasks_) break;
    auto& cell = ready_[static_cast<std::size_t>(my)];
    int d = cell.load(std::memory_order_acquire);
    while (d < 0) {
      cell.wait(d, std::memory_order_acquire);
      d = cell.load(std::memory_order_acquire);
    }
    tl_task = d;
    stage2_(ctx_, d);
    tl_task = -1;
  }
}

void Executor::pipeline(int num_tasks, TaskFn stage1, TaskFn stage2,
                        const PipelineDeps& deps, void* ctx,
                        bool caller_seals) {
  PW_CHECK(num_tasks >= 1 && num_tasks <= num_threads_);
  PW_CHECK(tl_task == -1);  // no nested dispatch
  if (workers_.empty() || num_tasks == 1) {
    // Degenerate pipeline: the single stage-1 task followed by its only
    // dependent, inline on the caller. A caller-sealing stage1 still issues
    // its seal() calls; they no-op (stage2_ stays null on this path).
    tl_task = 0;
    stage1(ctx, 0);
    stage2(ctx, 0);
    tl_task = -1;
    return;
  }
  for (int d = 0; d < num_tasks; ++d) {
    deps_left_[static_cast<std::size_t>(d)].store(deps.dep_count[d],
                                                  std::memory_order_relaxed);
    ready_[static_cast<std::size_t>(d)].store(-1, std::memory_order_relaxed);
  }
  ready_head_.store(0, std::memory_order_relaxed);
  ready_tail_.store(0, std::memory_order_relaxed);
  fn_ = stage1;
  stage2_ = stage2;
  deps_ = deps;
  ctx_ = ctx;
  num_tasks_ = num_tasks;
  caller_seals_ = caller_seals;
  outstanding_.store(static_cast<int>(workers_.size()), std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_release);
  generation_.notify_all();
  pipeline_thread(0);
  wait_barrier();
  stage2_ = nullptr;
  // Every dependency edge must have been sealed exactly once — under
  // caller_seals that discipline lives in the stage-1 functions, so verify
  // it: a missed seal would have deadlocked a merge (the claim loop above
  // would never return), a double seal leaves a counter negative here and
  // could have published a stage-2 task twice.
  for (int d = 0; d < num_tasks; ++d)
    PW_CHECK_MSG(
        deps_left_[static_cast<std::size_t>(d)].load(
            std::memory_order_relaxed) == 0,
        "pipeline dispatch ended with a nonzero dependency counter for "
        "stage-2 task %d (seal discipline broken, DESIGN.md §8)",
        d);
}

}  // namespace pw::sim
