#include "src/sim/executor.hpp"

#include "src/util/check.hpp"

namespace pw::sim {

namespace {
// Shard index of the current thread inside a parallel() dispatch. Thread-local
// rather than a member so the data plane can query it without plumbing the
// executor through every hot call.
thread_local int tl_task = -1;
}  // namespace

int Executor::this_task() { return tl_task; }

Executor::Executor(int num_threads) : num_threads_(num_threads < 1 ? 1 : num_threads) {
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

Executor::~Executor() {
  if (workers_.empty()) return;
  stop_ = true;
  num_tasks_ = 0;
  outstanding_.store(static_cast<int>(workers_.size()), std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_release);
  generation_.notify_all();
  for (auto& w : workers_) w.join();
}

void Executor::worker_loop(int idx) {
  std::uint64_t seen = 0;
  for (;;) {
    generation_.wait(seen, std::memory_order_acquire);
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (gen == seen) continue;  // spurious wake
    seen = gen;
    if (stop_) {
      outstanding_.fetch_sub(1, std::memory_order_release);
      return;
    }
    if (idx < num_tasks_) {
      tl_task = idx;
      fn_(ctx_, idx);
      tl_task = -1;
    }
    if (outstanding_.fetch_sub(1, std::memory_order_release) == 1)
      outstanding_.notify_one();
  }
}

void Executor::parallel(int num_tasks, TaskFn fn, void* ctx) {
  PW_CHECK(num_tasks >= 1 && num_tasks <= num_threads_);
  PW_CHECK(tl_task == -1);  // no nested dispatch
  if (workers_.empty() || num_tasks == 1) {
    tl_task = 0;
    fn(ctx, 0);
    tl_task = -1;
    // With num_tasks == 1 no worker has anything to do; skipping the wakeup
    // keeps single-task dispatches free of cross-thread traffic.
    return;
  }
  fn_ = fn;
  ctx_ = ctx;
  num_tasks_ = num_tasks;
  outstanding_.store(static_cast<int>(workers_.size()), std::memory_order_relaxed);
  generation_.fetch_add(1, std::memory_order_release);
  generation_.notify_all();
  tl_task = 0;
  fn(ctx, 0);
  tl_task = -1;
  for (;;) {
    const int left = outstanding_.load(std::memory_order_acquire);
    if (left == 0) break;
    outstanding_.wait(left, std::memory_order_acquire);
  }
}

}  // namespace pw::sim
