#include "src/sim/executor.hpp"

#include <climits>
#include <cstdio>
#include <cstdlib>
#include <ctime>

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>

#include <linux/futex.h>
#endif

#include "src/util/check.hpp"

namespace pw::sim {

namespace {
// Shard index of the current thread inside a dispatch. Thread-local rather
// than a member so the data plane can query it without plumbing the executor
// through every hot call.
thread_local int tl_task = -1;
// Stable thread index (0 = dispatching caller, workers 1..): the watchdog's
// per-thread tick/stage slots are keyed by it, not by the task id, which is
// -1 between claimed stage-2 tasks.
thread_local int tl_thread = -1;

std::int64_t mono_ns() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return ts.tv_sec * 1'000'000'000LL + ts.tv_nsec;
}

#if defined(__linux__)
// The watchdog needs TIMED parks, which std::atomic::wait cannot express, so
// the waits it guards (dispatch barrier, merge-claim park, incremental
// scatter wait) use the futex syscall directly — wait AND wake sides, never
// mixed with the std:: ones.
// The generation park in worker_loop is not a deadlock class (the caller
// always bumps it) and stays on std::atomic.
static_assert(sizeof(std::atomic<int>) == sizeof(std::uint32_t));

// Parks until woken, timed out (timeout_ns > 0), or *a != expected at entry.
// Spurious returns are fine: every caller re-checks in a loop.
void futex_wait(const std::atomic<int>* a, int expected,
                std::int64_t timeout_ns) {
  timespec ts;
  timespec* tsp = nullptr;
  if (timeout_ns > 0) {
    ts.tv_sec = timeout_ns / 1'000'000'000LL;
    ts.tv_nsec = timeout_ns % 1'000'000'000LL;
    tsp = &ts;
  }
  syscall(SYS_futex, reinterpret_cast<const std::uint32_t*>(a),
          FUTEX_WAIT_PRIVATE, static_cast<std::uint32_t>(expected), tsp,
          nullptr, 0);
}

void futex_wake_all(std::atomic<int>* a) {
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(a), FUTEX_WAKE_PRIVATE,
          INT_MAX, nullptr, nullptr, 0);
}

void futex_wake_one(std::atomic<int>* a) {
  syscall(SYS_futex, reinterpret_cast<std::uint32_t*>(a), FUTEX_WAKE_PRIVATE,
          1, nullptr, nullptr, 0);
}

constexpr bool kTimedParks = true;
#else
// No timed park off Linux: the waits fall back to std::atomic and the
// watchdog is inert (waits still correct, hangs just stay hangs).
void futex_wait(const std::atomic<int>* a, int expected, std::int64_t) {
  // WD-EXEMPT: this IS the park primitive — phase accounting lives in the
  // wait_watched wrapper, which is the only pipelined caller.
  a->wait(expected, std::memory_order_relaxed);
}
void futex_wake_all(std::atomic<int>* a) { a->notify_all(); }
void futex_wake_one(std::atomic<int>* a) { a->notify_one(); }
constexpr bool kTimedParks = false;
#endif

const char* phase_name(int phase) {
  switch (phase) {
    case 1: return "stage1-sweep";
    case 2: return "barrier-wait";
    case 3: return "claim-wait";
    case 4: return "stage2-merge";
    case 5: return "scatter-wait";
    default: return "idle";
  }
}
}  // namespace

int Executor::this_task() { return tl_task; }

void Executor::tick() {
  if (tl_thread >= 0)
    threads_state_[static_cast<std::size_t>(tl_thread)].ticks.fetch_add(
        1, std::memory_order_relaxed);
}

Executor::Executor(int num_threads, int watchdog_ms)
    : deps_left_(static_cast<std::size_t>(num_threads < 1 ? 1 : num_threads)),
      ready_state_(static_cast<std::size_t>(num_threads < 1 ? 1 : num_threads)),
      deques_(static_cast<std::size_t>(num_threads < 1 ? 1 : num_threads)),
      deque_buf_(static_cast<std::size_t>(num_threads < 1 ? 1 : num_threads) *
                 static_cast<std::size_t>(num_threads < 1 ? 1 : num_threads)),
      edge_sealed_(static_cast<std::size_t>(num_threads < 1 ? 1 : num_threads) *
                   static_cast<std::size_t>(num_threads < 1 ? 1 : num_threads)),
      dest_seals_(static_cast<std::size_t>(num_threads < 1 ? 1 : num_threads)),
      dest_waiters_(
          static_cast<std::size_t>(num_threads < 1 ? 1 : num_threads)),
      threads_state_(
          static_cast<std::size_t>(num_threads < 1 ? 1 : num_threads)),
      num_threads_(num_threads < 1 ? 1 : num_threads) {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): ctor runs before any worker exists
  if (const char* e = std::getenv("PW_WATCHDOG_MS")) watchdog_ms = std::atoi(e);
  watchdog_ns_ = static_cast<std::int64_t>(watchdog_ms > 0 ? watchdog_ms : 0) *
                 1'000'000LL;
  workers_.reserve(static_cast<std::size_t>(num_threads_ - 1));
  for (int i = 1; i < num_threads_; ++i)
    workers_.emplace_back([this, i] { worker_loop(i); });
}

Executor::~Executor() {
  if (workers_.empty()) return;
  stop_ = true;
  num_tasks_ = 0;
  outstanding_.store(static_cast<int>(workers_.size()), std::memory_order_relaxed);
  // PAIR(dispatch-generation): stop flag published to the workers' parks
  generation_.fetch_add(1, std::memory_order_release);
  generation_.notify_all();
  for (auto& w : workers_) w.join();
}

void Executor::worker_loop(int idx) {
  tl_thread = idx;
  ThreadState& st = threads_state_[static_cast<std::size_t>(idx)];
  std::uint64_t seen = 0;
  for (;;) {
    // WD-EXEMPT: not a deadlock class — the dispatching caller always bumps
    // the generation (§9); the watchdog guards only the pipelined waits.
    // PAIR(dispatch-generation): park on the dispatch publish
    generation_.wait(seen, std::memory_order_acquire);
    // PAIR(dispatch-generation): acquire the dispatch fields fn_/ctx_/...
    const std::uint64_t gen = generation_.load(std::memory_order_acquire);
    if (gen == seen) continue;  // spurious wake
    seen = gen;
    if (stop_) {
      // PAIR(dispatch-barrier): the exiting worker's final report
      outstanding_.fetch_sub(1, std::memory_order_release);
      return;
    }
    if (stage2_ != nullptr) {
      pipeline_thread(idx);
    } else if (idx < num_tasks_) {
      st.phase.store(kPhaseStage1, std::memory_order_relaxed);
      st.task.store(idx, std::memory_order_relaxed);
      tl_task = idx;
      fn_(ctx_, idx);
      tl_task = -1;
      st.phase.store(kPhaseIdle, std::memory_order_relaxed);
    }
    progress_.fetch_add(1, std::memory_order_relaxed);
    // PAIR(dispatch-barrier): this worker's task writes, published to the
    // caller's barrier acquire
    if (outstanding_.fetch_sub(1, std::memory_order_release) == 1)
      futex_wake_all(&outstanding_);
  }
}

std::uint64_t Executor::progress_signature() const {
  std::uint64_t sig = progress_.load(std::memory_order_relaxed);
  for (const ThreadState& st : threads_state_)
    sig += st.ticks.load(std::memory_order_relaxed);
  return sig;
}

int Executor::wait_watched(const std::atomic<int>& a, int expected, int phase,
                           int task) {
  int v = a.load(std::memory_order_acquire);
  if (v != expected) return v;
  ThreadState& st = threads_state_[static_cast<std::size_t>(tl_thread)];
  st.phase.store(phase, std::memory_order_relaxed);
  st.task.store(task, std::memory_order_relaxed);
  if (watchdog_ns_ <= 0 || !kTimedParks) {
    do {
      // WD-PHASE(wait-watched-untimed): watchdog disabled — plain park,
      // phase/task already recorded above for the sibling-fired dump
      futex_wait(&a, expected, 0);
    } while ((v = a.load(std::memory_order_acquire)) == expected);
  } else {
    // Timed park + no-progress detection: a wedged close stops producing
    // seals/stage completions/ticks everywhere, so the signature freezes and
    // a full quiet window fires the §9 dump. Any progress re-arms the window
    // — a slow round can re-arm forever, a deadlock cannot.
    std::uint64_t sig = progress_signature();
    std::int64_t deadline = mono_ns() + watchdog_ns_;
    for (;;) {
      const std::int64_t remaining = deadline - mono_ns();
      // WD-PHASE(wait-watched-timed): the watchdog-armed park — bounded by
      // the progress-signature window, fires the §9 dump when it freezes
      if (remaining > 0) futex_wait(&a, expected, remaining);
      v = a.load(std::memory_order_acquire);
      if (v != expected) break;
      const std::uint64_t now_sig = progress_signature();
      if (now_sig != sig) {
        sig = now_sig;
        deadline = mono_ns() + watchdog_ns_;
        continue;
      }
      if (mono_ns() >= deadline) watchdog_fire(phase, task);
    }
  }
  st.phase.store(kPhaseIdle, std::memory_order_relaxed);
  return v;
}

void Executor::watchdog_fire(int phase, int task) {
  // PAIR(watchdog-fired): RMW chain — the winning thread's exchange
  // acquires any state a losing thread published before parking
  if (fired_.exchange(1, std::memory_order_acq_rel) != 0) {
    // Another thread is already dumping; park out of its way until its
    // abort() takes the process down.
    // WD-EXEMPT: terminal park — the winning sibling is mid-dump and will
    // abort() the whole process; there is nothing left to watch.
    for (;;) futex_wait(&fired_, 1, 0);
  }
  std::fprintf(stderr,
               "PW_WATCHDOG: no executor progress for %lld ms — thread %d "
               "wedged in %s (task %d); dumping pipeline state before abort "
               "(DESIGN.md §9)\n",
               static_cast<long long>(watchdog_ns_ / 1'000'000LL), tl_thread,
               phase_name(phase), task);
  const bool live = stage2_ != nullptr;
  std::fprintf(stderr,
               "PW_WATCHDOG: dispatch: %s, num_tasks=%d caller_seals=%d "
               "incremental=%d claimed=%d published_seq=%d outstanding=%d\n",
               live ? "pipeline" : "barriered/none", num_tasks_,
               static_cast<int>(caller_seals_),
               static_cast<int>(incremental_),
               claimed_.load(std::memory_order_relaxed),
               published_seq_.load(std::memory_order_relaxed),
               outstanding_.load(std::memory_order_relaxed));
  if (live)
    for (int d = 0; d < num_tasks_; ++d)
      // ready_state: -1 = unpublished, -2 = claimed, >= 0 = published with
      // that claim weight. dest_seals is live only under incremental.
      std::fprintf(
          stderr,
          "PW_WATCHDOG: stage2 task %d: deps_left=%d ready_state=%d "
          "dest_seals=%d\n",
          d,
          deps_left_[static_cast<std::size_t>(d)].load(
              std::memory_order_relaxed),
          ready_state_[static_cast<std::size_t>(d)].load(
              std::memory_order_relaxed),
          dest_seals_[static_cast<std::size_t>(d)].load(
              std::memory_order_relaxed));
  for (int t = 0; t < num_threads_; ++t) {
    const ThreadState& st = threads_state_[static_cast<std::size_t>(t)];
    std::fprintf(stderr,
                 "PW_WATCHDOG: thread %d: phase=%s task=%d ticks=%llu\n", t,
                 phase_name(st.phase.load(std::memory_order_relaxed)),
                 st.task.load(std::memory_order_relaxed),
                 static_cast<unsigned long long>(
                     st.ticks.load(std::memory_order_relaxed)));
  }
  if (live)
    for (int t = 0; t < num_threads_; ++t) {
      const ClaimDeque& dq = deques_[static_cast<std::size_t>(t)];
      std::fprintf(stderr,
                   "PW_WATCHDOG: thread %d claim deque: top=%d bottom=%d\n", t,
                   dq.top.load(std::memory_order_relaxed),
                   dq.bottom.load(std::memory_order_relaxed));
    }
  if (dump_fn_ != nullptr) dump_fn_(dump_ctx_);
  std::abort();
}

void Executor::wait_barrier() {
  for (;;) {
    // PAIR(dispatch-barrier): acquire every finished worker's task writes
    const int left = outstanding_.load(std::memory_order_acquire);
    if (left == 0) break;
    wait_watched(outstanding_, left, kPhaseBarrier, -1);
  }
}

void Executor::parallel(int num_tasks, TaskFn fn, void* ctx) {
  PW_CHECK(num_tasks >= 1 && num_tasks <= num_threads_);
  PW_CHECK(tl_task == -1);  // no nested dispatch
  tl_thread = 0;
  if (workers_.empty() || num_tasks == 1) {
    tl_task = 0;
    fn(ctx, 0);
    tl_task = -1;
    // With num_tasks == 1 no worker has anything to do; skipping the wakeup
    // keeps single-task dispatches free of cross-thread traffic.
    return;
  }
  fn_ = fn;
  ctx_ = ctx;
  stage2_ = nullptr;
  num_tasks_ = num_tasks;
  outstanding_.store(static_cast<int>(workers_.size()), std::memory_order_relaxed);
  // PAIR(dispatch-generation): fn_/ctx_/num_tasks_ published to the workers
  generation_.fetch_add(1, std::memory_order_release);
  generation_.notify_all();
  tl_task = 0;
  fn(ctx, 0);
  tl_task = -1;
  wait_barrier();
}

// Publishes stage-2 task d for claiming, weighted by the caller's size hook.
// Called on the thread whose seal triggered publication: in a
// dependency-counter publish that thread has acquired every feeder's release
// (so size_fn_ may read all staged inputs), in an incremental self-seal
// publish only d's own stage-1 writes are guaranteed (the data plane uses
// static capacities there). The release store of the weight plus the
// claimer's acquire CAS carry the same inputs to whichever thread runs d.
void Executor::publish(int d) {
  int size = size_fn_ != nullptr ? size_fn_(ctx_, d) : 0;
  if (size < 0) size = 0;
  // PAIR(ready-state): publish d's weight (and, transitively, its sealed
  // inputs) to the claimers' acquire CAS/loads
  ready_state_[static_cast<std::size_t>(d)].store(size,
                                                  std::memory_order_release);
  // Push the hint onto the publishing thread's own claim deque. Owner-only
  // bottom end, so a plain load/store pair; the release store of bottom
  // publishes both the slot and the ready weight above to a thief's acquire
  // load of bottom. Pushed AFTER the ready store so any thread that sees the
  // hint sees a published (or later: claimed) state, never unpublished.
  {
    ClaimDeque& dq = deques_[static_cast<std::size_t>(tl_thread)];
    const int b = dq.bottom.load(std::memory_order_relaxed);
    deque_buf_[static_cast<std::size_t>(tl_thread) *
                   static_cast<std::size_t>(num_threads_) +
               static_cast<std::size_t>(b)]
        .store(d, std::memory_order_relaxed);
    // PAIR(deque-bottom): slot + ready weight published to thieves
    dq.bottom.store(b + 1, std::memory_order_release);
  }
  // Same store-buffer handshake as the seal()/wait_dest_seals pair: the
  // seq_cst bump vs. the parker's seq_cst registration guarantee at least
  // one side sees the other, so the wake is CONDITIONAL on a registered
  // waiter — no syscall when every thread is busy scanning or merging — and
  // wakes ONE parked claimer, since one publish makes one task claimable
  // (the old ring had the same one-wake discipline via per-slot cells; an
  // unconditional wake-all here is a thundering herd on every publish).
  // PAIR(published-seq): publish event, observed by the claim loop's parks
  published_seq_.fetch_add(1, std::memory_order_seq_cst);
  // PAIR(claim-waiters): Dekker read — is anyone parked on the sequence?
  if (claim_waiters_.load(std::memory_order_seq_cst) != 0)
    futex_wake_one(&published_seq_);
}

// Seals one dependency edge into stage-2 task d. The acq_rel fetch_sub
// chains the feeders: the thread that drops a counter to zero has acquired
// every earlier feeder's release, so its publish() carries ALL of the
// stage-2 task's inputs to whichever thread claims it. This is the same code
// path whether the executor seals a whole stage-1 task at once (the default)
// or the stage-1 function seals bucket by bucket from mid-run (caller_seals)
// — the counter cannot tell who decrements it. An incremental dispatch adds
// the per-edge protocol (flag + counter + conditional wake) and moves
// publication to the self seal; the counter still runs to zero for the
// end-of-dispatch discipline check.
void Executor::seal(int d) {
  // Outside a live multi-thread pipeline dispatch there is nothing to
  // decrement and nobody waiting: the degenerate inline pipeline runs its
  // stage 2 right after stage 1, and a caller-sealing sweep dispatched
  // through parallel() (the data plane's stamp-wrap fallback) is followed by
  // a barriered merge. stage2_ is non-null exactly while a real pipeline
  // dispatch is live (set before the generation bump, cleared after the
  // barrier), so it is the discriminator workers already use.
  if (stage2_ == nullptr) return;
  if (d == withhold_dest_.load(std::memory_order_relaxed) &&
      tl_task == withhold_task_.load(std::memory_order_relaxed)) {
    // debug_withhold_seal: swallow exactly this one seal — the on-demand
    // missed-seal deadlock the watchdog death test drives (§9).
    withhold_dest_.store(-1, std::memory_order_relaxed);
    withhold_task_.store(-1, std::memory_order_relaxed);
    return;
  }
  // Transport publish hook (§10): runs on the sealing thread before the edge
  // flag rises and before the dependency counter drops, so the seal's own
  // release chain is what carries the published frame to the merge.
  if (seal_fn_ != nullptr) seal_fn_(ctx_, tl_task, d);
  progress_.fetch_add(1, std::memory_order_relaxed);
  if (incremental_) {
    // Raise the edge flag FIRST (release: publishes the staged bucket), then
    // bump the seal-event counter a parked scatter wait watches. The seq_cst
    // bump vs. the waiter's seq_cst registration is a store-buffer handshake:
    // at least one side sees the other, so either the waiter re-checks a
    // fresh count and skips the park or the sealer sees the waiter and wakes.
    // PAIR(edge-sealed): bucket (tl_task, d)'s staged contents published to
    // the scattering merge's edge_sealed() acquire
    edge_sealed_[static_cast<std::size_t>(tl_task) *
                     static_cast<std::size_t>(num_threads_) +
                 static_cast<std::size_t>(d)]
        .store(1, std::memory_order_release);
    auto& seals = dest_seals_[static_cast<std::size_t>(d)];
    // PAIR(dest-seals): seal event, observed by the scatter wait's parks
    seals.fetch_add(1, std::memory_order_seq_cst);
    // PAIR(dest-waiters): Dekker read — is the merge parked on this dest?
    if (dest_waiters_[static_cast<std::size_t>(d)].load(
            std::memory_order_seq_cst) != 0)
      futex_wake_all(&seals);
  }
  // PAIR(deps-left): RMW chain — each decrement acquires every earlier
  // feeder's release, so the zero-dropper holds ALL of d's inputs
  if (deps_left_[static_cast<std::size_t>(d)].fetch_sub(
          1, std::memory_order_acq_rel) == 1) {
    if (!incremental_) publish(d);
  }
  // Incremental publication rule (§8): d's merge mutates wake state d's own
  // callbacks write, so it becomes claimable exactly when d's sweep is done
  // — the (d, d) self seal — independent of the other feeders.
  if (incremental_ && tl_task == d) publish(d);
}

int Executor::wait_dest_seals(int d, int seen) {
  auto& seals = dest_seals_[static_cast<std::size_t>(d)];
  // PAIR(dest-seals): acquire the sealed buckets behind the new count
  int v = seals.load(std::memory_order_acquire);
  if (v != seen) return v;
  auto& waiters = dest_waiters_[static_cast<std::size_t>(d)];
  // PAIR(dest-waiters): Dekker write — register before the re-check so the
  // sealing side's read cannot miss this parker
  waiters.fetch_add(1, std::memory_order_seq_cst);
  // PAIR(dest-seals): re-check after registration (store-buffer handshake)
  v = seals.load(std::memory_order_seq_cst);
  if (v == seen) v = wait_watched(seals, seen, kPhaseScatter, d);
  waiters.fetch_sub(1, std::memory_order_relaxed);
  // wait_watched left the phase at idle; the caller is still inside its
  // claimed stage-2 merge, so restore that for the watchdog dump.
  ThreadState& st = threads_state_[static_cast<std::size_t>(tl_thread)];
  st.phase.store(kPhaseStage2, std::memory_order_relaxed);
  st.task.store(tl_task, std::memory_order_relaxed);
  return v;
}

// Owner-side pop (Chase-Lev take): claim the bottom entry of this thread's
// own deque. The seq_cst fence orders the bottom decrement against the top
// read so the only contended slot — the last one — is arbitrated by the top
// CAS against a racing thief. Returns the task hint, or -1 when empty or the
// thief won.
int Executor::deque_take(int idx) {
  ClaimDeque& dq = deques_[static_cast<std::size_t>(idx)];
  const int b = dq.bottom.load(std::memory_order_relaxed) - 1;
  dq.bottom.store(b, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  int t = dq.top.load(std::memory_order_relaxed);
  int d = -1;
  if (t <= b) {
    d = deque_buf_[static_cast<std::size_t>(idx) *
                       static_cast<std::size_t>(num_threads_) +
                   static_cast<std::size_t>(b)]
            .load(std::memory_order_relaxed);
    if (t == b) {
      // Last entry: a thief may be CASing top for the same slot. Exactly one
      // CAS wins it.
      // PAIR(deque-top): owner-vs-thief arbitration for the last slot
      if (!dq.top.compare_exchange_strong(t, t + 1, std::memory_order_seq_cst,
                                          std::memory_order_relaxed))
        d = -1;
      dq.bottom.store(b + 1, std::memory_order_relaxed);
    }
  } else {
    dq.bottom.store(b + 1, std::memory_order_relaxed);
  }
  return d;
}

// Thief-side pop: peek the top entry of every other deque, pick the heaviest
// (weight read back from ready_state_ — a stale, already-claimed hint weighs
// kReadyClaimed and is chosen only when nothing live is visible, which pops
// the garbage and unclogs the deque), then CAS that deque's top. top only
// grows and a push can land on slot t only after top passed it (bottom never
// drops to t while slot t is still unpopped), so a successful CAS always
// hands over the value peeked — no ABA on the buffer. Returns the stolen
// hint or -1 (empty everywhere, or lost the steal race: the caller rescans).
int Executor::deque_steal(int idx) {
  int best_v = -1;
  int best_d = -1;
  int best_t = 0;
  int best_w = INT_MIN;
  for (int v = 0; v < num_threads_; ++v) {
    if (v == idx) continue;
    ClaimDeque& dq = deques_[static_cast<std::size_t>(v)];
    // PAIR(deque-top): acquire the slot a racing pop retired
    const int t = dq.top.load(std::memory_order_acquire);
    // PAIR(deque-bottom): acquire the owner's pushed slot + ready weight
    const int b = dq.bottom.load(std::memory_order_acquire);
    if (t >= b) continue;
    const int d = deque_buf_[static_cast<std::size_t>(v) *
                                 static_cast<std::size_t>(num_threads_) +
                             static_cast<std::size_t>(t)]
                      .load(std::memory_order_relaxed);
    // PAIR(ready-state): acquire the published weight behind the hint
    const int w =
        ready_state_[static_cast<std::size_t>(d)].load(std::memory_order_acquire);
    if (w > best_w) {
      best_w = w;
      best_v = v;
      best_d = d;
      best_t = t;
    }
  }
  if (best_v < 0) return -1;
  ClaimDeque& dq = deques_[static_cast<std::size_t>(best_v)];
  int expect = best_t;
  // PAIR(deque-top): thief-vs-owner/thief arbitration for the peeked slot
  if (!dq.top.compare_exchange_strong(expect, best_t + 1,
                                      std::memory_order_seq_cst,
                                      std::memory_order_relaxed))
    return -1;
  return best_d;
}

// The per-thread body of a pipeline() dispatch: stage-1 task idx (if the
// thread owns one), then the seal (unless the stage-1 fn sealed eagerly
// itself), then the work-stealing claim loop over the published stage-2
// tasks.
void Executor::pipeline_thread(int idx) {
  ThreadState& st = threads_state_[static_cast<std::size_t>(idx)];
  if (idx < num_tasks_) {
    st.phase.store(kPhaseStage1, std::memory_order_relaxed);
    st.task.store(idx, std::memory_order_relaxed);
    tl_task = idx;
    fn_(ctx_, idx);
    if (!caller_seals_)
      for (int i = deps_.out_beg[idx]; i < deps_.out_beg[idx + 1]; ++i)
        seal(deps_.out[i]);
    tl_task = -1;
    progress_.fetch_add(1, std::memory_order_relaxed);
  }
  // Claim loop: pop a hint — own deque first (newest publish, cache-warm for
  // the thread that just sealed it), then steal the heaviest victim top, then
  // a fallback full scan of the publish states — and CAS its ready state to
  // claimed; a stale hint or a lost race just re-loops. The deques are a
  // scheduling index only: the fallback scan keeps every published task
  // reachable even when all its hints were consumed by CAS losers, so
  // liveness never depends on deque contents. When nothing is poppable, park
  // on published_seq_ (snapshotted BEFORE the pop attempts, so a publish
  // racing them makes the park return immediately). Every task is eventually
  // published (all stage-1 tasks run), so the wait terminates — unless a seal
  // went missing, which is exactly what the watchdog inside wait_watched()
  // turns from a silent hang into a diagnostic abort (§9).
  // PAIR(claimed-count): acquire the final claimer's exit publication
  while (claimed_.load(std::memory_order_acquire) < num_tasks_) {
    // PAIR(published-seq): park snapshot, taken BEFORE the pop attempts
    const int seq = published_seq_.load(std::memory_order_acquire);
    int best = deque_take(idx);
    if (best < 0) best = deque_steal(idx);
    if (best < 0) {
      int best_size = -1;
      for (int d = 0; d < num_tasks_; ++d) {
        // PAIR(ready-state): fallback scan of the publish states
        const int v =
            ready_state_[static_cast<std::size_t>(d)].load(
                std::memory_order_acquire);
        if (v > best_size) {
          best = d;
          best_size = v;
        }
      }
      if (best_size < 0) best = -1;
    }
    if (best >= 0) {
      // PAIR(ready-state): acquire the candidate's published weight
      int expected =
          ready_state_[static_cast<std::size_t>(best)].load(
              std::memory_order_acquire);
      // PAIR(ready-state): the exactly-once claim arbiter — the winning
      // CAS acquires every input the publish released
      if (expected < 0 ||
          !ready_state_[static_cast<std::size_t>(best)]
               .compare_exchange_strong(expected, kReadyClaimed,
                                        std::memory_order_acq_rel,
                                        std::memory_order_relaxed))
        continue;  // stale hint or lost the race for this task; re-loop
      // PAIR(claimed-count): RMW chain — the final claimer acquires every
      // earlier claim before broadcasting the drain
      if (claimed_.fetch_add(1, std::memory_order_acq_rel) + 1 == num_tasks_) {
        // Final claim: bump the publish sequence so threads parked waiting
        // for more work wake up, see claimed_ == num_tasks_, and leave.
        // Everyone still parked must exit, so this wake is the broadcast one.
        // PAIR(published-seq): final bump so parked claimers re-check
        published_seq_.fetch_add(1, std::memory_order_seq_cst);
        // PAIR(claim-waiters): Dekker read before the broadcast wake
        if (claim_waiters_.load(std::memory_order_seq_cst) != 0)
          futex_wake_all(&published_seq_);
      }
      st.phase.store(kPhaseStage2, std::memory_order_relaxed);
      st.task.store(best, std::memory_order_relaxed);
      tl_task = best;
      stage2_(ctx_, best);
      tl_task = -1;
      progress_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    // PAIR(claimed-count): drained-dispatch re-check before parking
    if (claimed_.load(std::memory_order_acquire) >= num_tasks_) break;
    // Register as a parked claimer before sleeping (publish()'s conditional
    // wake reads this count — seq_cst on both sides, see there), then
    // re-check the sequence: a publish that raced the registration already
    // bumped it, and parking on the stale snapshot would miss its wake.
    // PAIR(claim-waiters): Dekker write — register before the re-check
    claim_waiters_.fetch_add(1, std::memory_order_seq_cst);
    // PAIR(published-seq): re-check after registration (handshake)
    if (published_seq_.load(std::memory_order_seq_cst) == seq)
      wait_watched(published_seq_, seq, kPhaseClaim, -1);
    claim_waiters_.fetch_sub(1, std::memory_order_relaxed);
  }
  st.phase.store(kPhaseIdle, std::memory_order_relaxed);
}

void Executor::pipeline(int num_tasks, TaskFn stage1, TaskFn stage2,
                        const PipelineDeps& deps, void* ctx,
                        const PipelineOpts& opts) {
  PW_CHECK(num_tasks >= 1 && num_tasks <= num_threads_);
  PW_CHECK(tl_task == -1);  // no nested dispatch
  PW_CHECK(!opts.incremental || opts.caller_seals);
  tl_thread = 0;
  if (workers_.empty() || num_tasks == 1) {
    // Degenerate pipeline: the single stage-1 task followed by its only
    // dependent, inline on the caller. A caller-sealing stage1 still issues
    // its seal() calls; they no-op (stage2_ stays null on this path).
    tl_task = 0;
    stage1(ctx, 0);
    stage2(ctx, 0);
    tl_task = -1;
    return;
  }
  for (int d = 0; d < num_tasks; ++d) {
    deps_left_[static_cast<std::size_t>(d)].store(deps.dep_count[d],
                                                  std::memory_order_relaxed);
    ready_state_[static_cast<std::size_t>(d)].store(kReadyUnpublished,
                                                    std::memory_order_relaxed);
    dest_seals_[static_cast<std::size_t>(d)].store(0,
                                                   std::memory_order_relaxed);
  }
  if (opts.incremental)
    for (int s = 0; s < num_tasks; ++s)
      for (int d = 0; d < num_tasks; ++d)
        edge_sealed_[static_cast<std::size_t>(s) *
                         static_cast<std::size_t>(num_threads_) +
                     static_cast<std::size_t>(d)]
            .store(0, std::memory_order_relaxed);
  // Claim deques restart empty each dispatch (fixed buffers, no wraparound);
  // the generation release bump below publishes the resets to the workers,
  // and the previous dispatch's barrier means nobody is still popping.
  for (int t = 0; t < num_threads_; ++t) {
    deques_[static_cast<std::size_t>(t)].top.store(0,
                                                   std::memory_order_relaxed);
    deques_[static_cast<std::size_t>(t)].bottom.store(
        0, std::memory_order_relaxed);
  }
  claimed_.store(0, std::memory_order_relaxed);
  // published_seq_ is deliberately NOT reset: waits compare against a
  // snapshot, so a monotone counter across dispatches is fine and avoids
  // confusing a stale parked futex from a previous generation.
  fn_ = stage1;
  stage2_ = stage2;
  deps_ = deps;
  ctx_ = ctx;
  num_tasks_ = num_tasks;
  caller_seals_ = opts.caller_seals;
  incremental_ = opts.incremental;
  size_fn_ = opts.size_of;
  seal_fn_ = opts.on_seal;
  outstanding_.store(static_cast<int>(workers_.size()), std::memory_order_relaxed);
  // PAIR(dispatch-generation): the pipeline fields + counter/deque resets
  // above, published to the workers
  generation_.fetch_add(1, std::memory_order_release);
  generation_.notify_all();
  pipeline_thread(0);
  wait_barrier();
  stage2_ = nullptr;
  incremental_ = false;
  size_fn_ = nullptr;
  seal_fn_ = nullptr;
  // Every dependency edge must have been sealed exactly once — under
  // caller_seals that discipline lives in the stage-1 functions, so verify
  // it: a missed seal would have deadlocked a merge (the claim loop above
  // would never return), a double seal leaves a counter negative here and
  // could have published a stage-2 task twice.
  for (int d = 0; d < num_tasks; ++d)
    PW_CHECK_MSG(
        deps_left_[static_cast<std::size_t>(d)].load(
            std::memory_order_relaxed) == 0,
        "pipeline dispatch ended with a nonzero dependency counter for "
        "stage-2 task %d (seal discipline broken, DESIGN.md §8)",
        d);
}

}  // namespace pw::sim
