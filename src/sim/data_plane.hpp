// Sharded flat-arena message data plane of the CONGEST engine
// (DESIGN.md §5, §7, §8).
//
// Nodes are partitioned into contiguous id-range shards (power-of-two chunk,
// so shard lookup is one shift). All mutable per-node state — wake words,
// wake lists, inbox runs — is owned by the shard holding the node, and all
// mutable per-arc state by the shard holding the arc's SENDER, so the
// shard-parallel phases of a round never write the same cache line from two
// threads and the whole data plane needs no atomics.
//
// Staging is bucketed by (destination shard, sender shard): bucket capacities
// are the exact arc counts between the shard pair (their sum is num_arcs, the
// hard per-round traffic bound), computed once at construction. A send
// appends to bucket (shard(receiver), shard(sender)); the end-of-round merge
// for destination shard d scans its buckets in ascending SENDER-shard order,
// which reproduces the global ascending-sender send order exactly — delivery
// arena layout, inbox run order, active-set order, and message totals are
// bit-identical to the single-shard plane for any shard count (§7).
//
// The merge itself is the per-shard counting pass of §5 run once per
// destination shard: discovery/counting over incoming buckets, ascending
// materialization of the shard's active nodes (dense stamp sweep or LSD
// radix), run-offset assignment starting at the shard's STATIC delivery base
// (the start of its bucket-capacity region — see merge_shard), then the
// stable scatter. Static bases make merge tasks fully independent of each
// other AND of callbacks of unrelated shards, which is what allows the
// pipelined round close (§8): run_pipelined_round() fuses the callback and
// merge phases into one two-stage Executor dispatch, where destination shard
// d starts merging as soon as every sender shard with arcs into d (plus d
// itself — the merge rewrites state d's own callbacks touch) has finished
// its callback sweep, while unrelated shards still run callbacks.
//
// With eager sealing (§8, default) the dependency graph refines from shard
// granularity to BUCKET granularity: bucket (s → d) is sealed the moment the
// last active node of sender shard s with arcs into d has run — not at the
// end of s's whole sweep. The seal point per (shard, destination) is the
// index of that last active node within the shard's active slice, computable
// the moment the active set is materialized (a node's reachable destination
// shards are a static property of its arcs), so on skewed rounds a
// destination's merge can start while the bulk of a big sender shard's sweep
// is still ahead of it. The self edge (d → d) still seals at sweep end: d's
// merge rewrites wake words, runs, and the delivery region d's own callbacks
// read.
//
// With the INCREMENTAL merge (§8, opt-in via ExecutionPolicy::incremental)
// the merge itself splits into a scatter phase and a commit phase:
// destination d's merge task starts the moment d's OWN sweep ends (the self
// seal) and SCATTERS each feeder bucket — fan-in counting, wake discovery,
// fault verdicts — as that bucket seals, in arrival order, parking between
// seals. Scattering is order-independent (counts are additive, wake dedup is
// epoch-keyed, min/max are monotone) so arrival order is safe fault-free;
// under faults the per-destination delay queue is append-order-sensitive, so
// a faulty merge scatters in ascending sender order instead, still bucket by
// bucket as seals arrive. The COMMIT phase (run-offset assignment, the
// stable delivery copy, seal-point rebuild) runs after all buckets scattered
// and walks buckets in ascending sender order exactly like the other closes
// — delivery traces stay bit-identical in every mode.
#pragma once

#include <cstdint>
#include <limits>
#include <memory>
#include <span>
#include <vector>

#include "src/graph/graph.hpp"
#include "src/sim/executor.hpp"
#include "src/sim/fault_plane.hpp"
#include "src/sim/message.hpp"
#include "src/sim/transport.hpp"
#include "src/util/check.hpp"

namespace pw::sim {

class DataPlane {
 public:
  // `eager_seal` arms the bucket-granular seal metadata of §8: per-round seal
  // points are computed whenever a shard's active set is materialized and
  // consumed by run_pipelined_round()'s stage-1 sweeps. Engines that will
  // never close rounds pipelined pass false and skip the bookkeeping.
  // `incremental` (requires eager_seal) arms the incremental merge of §8 —
  // run_pipelined_round() dispatches scattering merge tasks that consume
  // feeder buckets as they seal instead of launching after the last one.
  //
  // A non-null `faults` with faults->enabled() arms the fault-injection plane
  // (§9): the merge becomes the single fault choke point, the delivery arena
  // triples (worst case per arc per round: one delayed-due arrival plus a
  // duplicated fresh one), and the single-shard plane gives up its
  // stage()-time wake fast path so every shard count takes identical fault
  // decisions in identical places.
  // `transport` (§10) selects what carries sealed buckets between shards:
  // kInProc aliases the merge's receive views to the staging arena (the
  // identity transport — zero behavior change), kShmRing serializes each
  // bucket into a shared-memory SPSC ring at its seal point and the merge
  // deserializes before reading. Single-shard planes have no cross-shard
  // links and degenerate to kInProc whatever was requested.
  DataPlane(const graph::Graph& g, int max_shards, bool eager_seal = true,
            bool incremental = false, const FaultPolicy* faults = nullptr,
            TransportKind transport = TransportKind::kInProc);

  int num_shards() const { return num_shards_; }
  int shard_of(int v) const { return v >> shard_shift_; }
  bool eager_seal() const { return eager_seal_ && num_shards_ > 1; }
  bool incremental_merge() const { return incremental_ && eager_seal(); }
  // The transport actually armed (kInProc when a single-shard plane
  // degenerated a kShmRing request).
  TransportKind transport_kind() const { return transport_->kind(); }

  // --- fault plane (§9) -----------------------------------------------------
  bool faulty() const { return fault_ != nullptr; }
  // Aggregated fault accounting; sequential-only like pending().
  FaultStats fault_stats() const {
    PW_CHECK(!parallel_callbacks_);
    return fault_ ? fault_->totals() : FaultStats{};
  }
  // v's outage schedule under the armed policy (empty when fault-free).
  std::span<const CrashSpan> crash_epochs(int v) const {
    return fault_ ? fault_->crash_epochs(v) : std::span<const CrashSpan>{};
  }

  // --- hot path -------------------------------------------------------------

  // Stages one message from v along `port` for next-round delivery. Enforces
  // the one-message-per-arc-per-round rule and, during a shard-parallel
  // callback phase, that v IS the node whose callback is running (§7
  // contract — see set_current_callback; sends on behalf of a sibling would
  // defeat the per-bucket seal points of the eager close, which are computed
  // from each active node's own arcs). On a multi-shard plane, manual
  // (non-dispatched) sends must additionally come in non-decreasing sender
  // id within a round (checked): the merge reconstructs ascending-sender
  // delivery order, which equals the sequential engine's send-call order
  // only under that discipline — every active_nodes() loop satisfies it by
  // construction (§7).
  void stage(int v, int port, const Msg& m);

  // Engine::run's shard-parallel sweeps record the node whose callback is
  // about to run; stage() checks sends against it (§7: a parallel callback
  // may send only as the node it was invoked on). Owner-written: only shard
  // s's stage-1 task stores to slot s.
  void set_current_callback(int s, int v) {
    shards_[static_cast<std::size_t>(s)].current_cb = v;
  }

  // Schedules v for the next round. Same shard-ownership rule as stage()
  // during parallel callback phases.
  void wake(int v);

  // v's delivered messages for the current round (per-sender send order).
  // Aliases the delivery arena; invalidated by the next round close or
  // drain(). During a shard-parallel callback, reading the inbox of a node
  // outside the calling task's shard is forbidden (§7) and checked like
  // stage()/wake() — under the barriered close it was merely nondeterminism,
  // but under the pipelined close (§8) that shard's run table and delivery
  // region may already be merging for the next round, a silent data race.
  std::span<const Incoming> inbox(int v) const {
    if (parallel_callbacks_)
      PW_CHECK_MSG(Executor::this_task() == shard_of(v),
                   "parallel callback read the inbox of node %d outside its "
                   "shard (DESIGN.md §7 contract)",
                   v);
    const InboxRun r = inbox_run_[static_cast<std::size_t>(v)];
    if (r.stamp != round_id_) return {};
    return {delivery_.data() + r.beg, static_cast<std::size_t>(r.end - r.beg)};
  }

  std::span<const int> active() const {
    return {active_.data(), static_cast<std::size_t>(active_total_)};
  }
  std::span<const int> shard_active(int s) const {
    const Shard& sh = shards_[static_cast<std::size_t>(s)];
    return {active_.data() + sh.active_beg,
            static_cast<std::size_t>(sh.active_count)};
  }

  // True when any node is scheduled or any message awaits delivery —
  // including messages still in staging mid-round. (Single-shard planes wake
  // the receiver at stage() time, multi-shard ones at the merge; checking
  // staging too keeps mid-round idle() answers identical at any shard count,
  // the §7 contract.) Reading other shards' wake lists races with their
  // callbacks, so querying from inside a parallel callback is forbidden like
  // every other cross-shard access (checked).
  bool pending() const {
    PW_CHECK_MSG(!parallel_callbacks_,
                 "idle()/pending() from a shard-parallel callback "
                 "(DESIGN.md §7 contract)");
    for (const Shard& sh : shards_)
      if (!sh.wake_list.empty()) return true;
    if (!staging_empty()) return true;
    // Delayed messages are in flight (§9): the engine must keep closing
    // rounds until the delay queues drain or they would be lost.
    return fault_ != nullptr && fault_->any_in_flight();
  }

  // --- round lifecycle ------------------------------------------------------

  // Rebuilds the active set if wake() ran since the last merge, then opens
  // the next wake epoch (wake/stage calls from here on target the round
  // after this one).
  void begin_round();

  // The deterministic barriered merge (§7): buckets the staged messages into
  // per-recipient delivery runs and materializes the next round's active set,
  // shard-parallel via `ex`. Returns the number of messages staged this
  // round. Used by manual round loops and by Engine::run with the pipelined
  // close disabled; run_pipelined_round() is the overlapped equivalent.
  std::uint64_t end_round(Executor& ex);

  // One eager-seal point of a shard's stage-1 sweep (§8): after the callback
  // of the active node at index `idx` of the shard's active slice returns,
  // bucket (this shard → dest) can never grow again this round and must be
  // sealed (Executor::seal). idx == -1 marks a destination with no active
  // feeder this round — its (possibly capacity-carrying, but empty) bucket
  // seals before the sweep's first callback. The self edge is NOT in the
  // schedule: it seals after the whole sweep, unconditionally.
  struct SealPoint {
    int idx = -1;
    int dest = 0;
  };

  // Shard s's seal schedule for its NEXT sweep as a sender, sorted ascending
  // by (idx, dest) — refreshed whenever the shard's active slice is
  // materialized, valid until the next materialization. Engine::run's
  // eager-sealed sweep walks this in lockstep with the active slice so the
  // user callback stays inlined in the sweep loop. Empty when eager_seal()
  // is off. When the materialized slice is the FULL shard (every node
  // active, the common case on flood fronts) this points at a schedule
  // precomputed once at construction — the last feeder per destination is a
  // static graph property then, so the per-round backward scan is skipped
  // entirely (§8).
  std::span<const SealPoint> seal_schedule(int s) const {
    const Shard& sh = shards_[static_cast<std::size_t>(s)];
    return {sh.sched, static_cast<std::size_t>(sh.sched_count)};
  }

  // The pipelined round close (§8): one two-stage Executor dispatch that
  // runs the callback sweep of every shard (stage 1) and merges destination
  // shards (stage 2) as their incoming traffic completes, overlapping merges
  // with still-running callbacks. Equivalent to
  //   for (s) sweep(ctx, s);  // shard-parallel
  //   end_round(ex);
  // with bit-identical delivery, active order, and totals — merge order
  // within a destination shard is unchanged; only the schedule moves.
  //
  // With eager_seal() the caller's sweep must ALSO issue the bucket seals of
  // the shard's seal_schedule() plus the trailing self-edge seal (what
  // Engine::run's eager sweep does, keeping the user callback inlined);
  // `caller_seals` below is wired to eager_seal() accordingly. Without it
  // the sweep just iterates and the executor seals the shard's whole
  // out-list when the sweep returns. Callbacks run under the same §7
  // contract as Engine::run's barriered dispatch; the caller brackets this
  // with set_parallel_callbacks(). Requires num_shards() > 1. Returns the
  // number of messages staged.
  std::uint64_t run_pipelined_round(Executor& ex, Executor::TaskFn sweep,
                                    void* ctx);

  // Discards delivered-but-unread runs and scheduled wakeups (stamp
  // invalidation only; no data moves).
  void drain();

  bool staging_empty() const;

  // Engine::run sets this around shard-parallel callback dispatches; it arms
  // the shard-ownership checks in stage()/wake() and the engine's charge_*
  // guards.
  void set_parallel_callbacks(bool on) { parallel_callbacks_ = on; }
  bool in_parallel_callbacks() const { return parallel_callbacks_; }

  // Watchdog dump (§9): prints each shard's sweep position (current_cb,
  // active slice), per-bucket seal state — schedule entries plus cursor
  // fills — and, under the incremental merge, each destination's
  // scatter-cursor state (which buckets scattered, whether the commit ran)
  // to stderr. Called by the executor's watchdog right before it aborts a
  // wedged close; reads without synchronization (every surviving thread is
  // parked, and the process is about to die anyway).
  void watchdog_dump() const;

  // TEST HOOK (wrap coverage): jumps the round id and wake epoch to arbitrary
  // values so the once-per-2^32-round stamp wrap and the once-per-2^40 wake
  // epoch wrap execute inside a test instead of once a geological age. Legal
  // only on a quiescent plane (no staged traffic, no scheduled wakes); both
  // stamp families and the wake words are cleared exactly like the real wrap
  // paths clear them, so no stale stamp can alias the new id range. Seal
  // metadata is positional (indices into active slices), not stamp-based, and
  // is recomputed at every materialization — the forced-wrap tests pin that
  // it survives both wraps.
  void debug_set_wrap_state(std::uint32_t round_id, std::uint64_t wake_epoch);

 private:
  // Per-arc record: receiver endpoint fused with the once-per-round send
  // stamp (see §5). 12 bytes, ~5 per cache line.
  struct ArcRec {
    int to = 0;
    int port = 0;
    std::uint32_t stamp = 0;
  };

  // Fates a staged message can meet at the fault choke point (§9). Both
  // merge passes (scatter counting, commit delivery) replay the same
  // verdicts branch for branch; side effects happen only in the scatter.
  enum class Fate : std::uint8_t { kShed, kDrop, kDelay, kOnce, kTwice };

  // Per-node run descriptor into delivery_ (§5): [beg, end) plus the round
  // id the run is valid for; `end` doubles as the scatter cursor.
  struct InboxRun {
    int beg = 0;
    int end = 0;
    std::uint32_t stamp = 0;
  };

  // One cache line of bucket cursors. bucket_cur_ rows are padded to a
  // multiple of this AND the storage itself is line-aligned (alignas carries
  // through the allocator), so two sender shards never share a line through
  // their cursor rows.
  struct alignas(64) CurLine {
    int w[16] = {};
  };

  // Shard-owned state, cache-line aligned so two workers never share a line
  // through this array. All fields are written only by the owning task (or
  // by the single caller thread between dispatches). Under the pipelined
  // close "owning task" covers both the shard's stage-1 callback task and
  // its stage-2 merge task: the dependency graph orders the two (§8).
  struct alignas(64) Shard {
    std::vector<int> wake_list;  // woken/receiving ids, unordered, deduped
    int beg = 0, end = 0;        // node id range [beg, end)
    int wake_min = std::numeric_limits<int>::max();
    int wake_max = -1;
    bool dirty = false;  // wake() since the last merge/rebuild
    int active_count = 0;
    int active_beg = 0;  // this shard's slice of active_
    // Node whose callback the shard's stage-1 sweep is currently running
    // (§7 send check; see set_current_callback). Only meaningful while
    // parallel_callbacks_ is set — between dispatches it retains the last
    // invoked node (never reset; every sweep stores before each callback).
    int current_cb = -1;
    // Eager-seal metadata for the NEXT sweep of this shard as a SENDER,
    // refreshed by compute_seal_points() whenever the shard's active slice
    // is materialized (merge or wake-triggered rebuild). The live schedule
    // is sched[0 .. sched_count), sorted ascending by (idx, dest), covering
    // every non-self destination of the shard's static out-list exactly
    // once; it points either at seal_points (scratch, rebuilt per
    // materialization by the backward scan) or — when the slice is the full
    // shard — at full_seal_points, computed once at construction (§8).
    // seal_last is scratch for the rebuild (last feeder index per
    // destination, only out-list entries ever touched). Row-per-shard (not
    // one S² table) so concurrent merge tasks never share a cache line
    // through the seal metadata.
    std::vector<SealPoint> seal_points;
    std::vector<SealPoint> full_seal_points;
    std::vector<int> seal_last;
    int full_seal_count = 0;
    const SealPoint* sched = nullptr;
    int sched_count = 0;
  };

  // Ascending ids of the shard's currently-woken nodes written to `out`
  // (capacity: shard size); returns the count. Dense stamp sweep or LSD
  // radix over the shard's wake list, allocation-free.
  int sort_shard_wake(Shard& sh, int* out);

  void merge_shard(int d, std::uint32_t next_stamp);
  // The incremental merge body (§8): runs as destination d's stage-2 task of
  // an incremental pipeline dispatch, claimed right after d's own sweep.
  // Scatters feeder buckets as their seals arrive via ex (arrival order
  // fault-free, ascending sender order under faults), then commits.
  void merge_shard_incremental(int d, std::uint32_t next_stamp, Executor& ex);
  // Pieces the merge bodies share. scatter_due / scatter_bucket do the
  // counting + wake discovery (+ fault verdicts and their side effects) for
  // the delayed-due prefix / one feeder bucket; commit_shard assigns run
  // offsets from the static delivery base, performs the stable delivery
  // copy in ascending sender order, rebuilds the seal schedule, and retires
  // the destination's drained frames. fate_of is the §9 verdict of one
  // staged record, passed by value off the bucket view (both passes call it
  // and must take identical branches; side effects only with discovery).
  void scatter_due(int d);
  void scatter_bucket(int d, int s);
  void commit_shard(int d, std::uint32_t next_stamp);
  // §10 transport plumbing (no-ops compiled out when the transport is
  // in-proc). publish_bucket publishes bucket (s, d)'s frame — already
  // staged in place through the bucket view, so this is a count store plus
  // a release bump — at the bucket's seal point via the executor's on_seal
  // hook. publish_all is the barriered close's equivalent: every bucket at
  // once, on the caller thread, before the merges dispatch (the stamp-wrap
  // fallback and manual end_round() loops have no seal points).
  void publish_bucket(int s, int d);
  void publish_all();
  void count_in(Shard& sh, int to, int k);
  Fate fate_of(int to, const Incoming& inc, int d, bool discovery);
  // Claim weight of destination d's merge for the executor's largest-first
  // stage-2 ordering: the exact staged count when every feeder has sealed
  // (non-incremental publishes), the static bucket-region capacity under the
  // incremental merge (live cursors may still be written at publish time).
  int merge_size(int d) const;
  void rebuild_active();
  void compact_active();
  void bump_wake_epoch();

  // Rebuilds shard s's eager-seal points from its freshly materialized active
  // slice (eager_seal() only): a backward walk over the actives' static
  // destination-shard lists records the last feeder index per destination
  // (early exit once every destination is pinned), then the shard's out-list
  // (minus the self edge, which always seals at sweep end) becomes the
  // (idx, dest)-sorted seal schedule. Allocation-free (all buffers sized at
  // construction); runs inside the owning shard's merge task or the
  // sequential rebuild. When the slice is the full shard it just repoints
  // the schedule at the static all-active row (§8); build_seal_points is the
  // shared backward scan both paths are built from.
  void compute_seal_points(int s);
  int build_seal_points(int s, const int* act, int count, SealPoint* out);

  // Handles the once-per-2^32-rounds round-id wrap (clears both stamp
  // families so a stale stamp can never equal a live id), then returns the
  // stamp the closing merge publishes runs under.
  std::uint32_t prepare_next_stamp();

  // The sequential tail of every round close: totals the bucket cursors
  // (= messages staged this round), concatenates the shards' active slices,
  // resets the cursors, and advances the round id.
  std::uint64_t close_round();

  // Where merge/rebuild materialize a shard's sorted actives: directly into
  // active_ when single-sharded, into the shard's scratch_ slice otherwise
  // (compacted into active_ once all shard counts are known).
  int* sorted_out(int d) {
    return num_shards_ == 1 ? active_.data()
                            : scratch_.data() + shards_[static_cast<std::size_t>(d)].beg;
  }

  static constexpr std::uint64_t kEpochMask = (1ULL << 40) - 1;
  static constexpr std::uint64_t kCountOne = 1ULL << 40;

  const graph::Graph* g_;
  int num_shards_ = 1;
  int shard_shift_ = 0;
  int cur_stride_ = 0;  // row stride of bucket_cur_, padded to a cache line

  // Fill count of bucket (sender s, dest d), at flat index
  // s * cur_stride_ + d of the line-aligned cursor storage.
  int& bucket_cur(int s, int d) {
    const auto i = static_cast<std::size_t>(s) * cur_stride_ + d;
    return bucket_cur_[i >> 4].w[i & 15];
  }
  int bucket_cur(int s, int d) const {
    const auto i = static_cast<std::size_t>(s) * cur_stride_ + d;
    return bucket_cur_[i >> 4].w[i & 15];
  }

  std::vector<ArcRec> arc_;
  // SoA staging arenas, partitioned into buckets (§8): slot i of the flat
  // arena holds its receiver id in staging_to_[i] and the delivered payload
  // in staging_inc_[i]. The split keeps the counting pass — which reads ONLY
  // receiver ids — on a dense 4-byte stream (12× the ids per cache line vs
  // the old interleaved record), so it vectorizes and stops dragging payload
  // bytes through the cache it immediately re-reads in the delivery copy.
  // Both views live in ONE allocation (payloads first, then ids): as two
  // vectors, staging_inc_ and delivery_ are the same byte size, and glibc's
  // dynamic mmap threshold — set to the largest freed chunk — keeps BOTH
  // outside the reusable heap, re-faulting ~2× the pages on every engine
  // construction (measured 1.8× on the flood_cold rows). One arena larger
  // than delivery_ restores the old profile: only it stays mmap-backed.
  std::vector<unsigned char> staging_raw_;
  Incoming* staging_inc_ = nullptr;  // element i: staging_raw_ byte i*sizeof
  int* staging_to_ = nullptr;        // after the payloads, same count

  // The §10 transport and the per-bucket views BOTH sides use: stage()
  // appends bucket (s → d)'s records through bucket_view_[d * S + s] and the
  // merge (scatter, fault verdicts, the delivery copy) reads the same view —
  // staged bytes ARE received bytes on every transport. In-proc every view
  // aliases the staging arena and the transport is never called
  // (shm_transport_ false — the §8 behavior, bit for bit); under kShmRing
  // cross-shard views point INTO the ring frame regions, so the seal's
  // publish is a pure release-bump and the merge reads frames in place,
  // retiring each after the commit copied it out.
  std::unique_ptr<Transport> transport_;
  bool shm_transport_ = false;
  std::vector<BucketView> bucket_view_;  // (d * S + s), fixed at construction
  std::vector<int> bucket_base_;    // bucket (d, s) at [d * S + s], size S²+1
  std::vector<CurLine> bucket_cur_;
  std::vector<Incoming> delivery_;
  std::vector<InboxRun> inbox_run_;

  // Per-node wake word: low 40 bits = wake epoch, high 24 bits = messages
  // staged to the node this round (counted during the merge). Written only
  // by the owning shard.
  std::vector<std::uint64_t> wake_stamp_;

  std::vector<Shard> shards_;
  std::vector<int> active_;         // ascending, all shards concatenated
  std::vector<int> scratch_;        // per-shard sort output (S > 1 only)

  // Static dependency graph of the pipelined close (§8), built once at
  // construction from the bucket capacities: sender shard s feeds destination
  // shard d iff any arc runs from s into d, plus the self edge s -> s (a
  // shard's merge rewrites wake words, runs, and the delivery region its own
  // callbacks read, so it must wait for them even with no self-arcs).
  // Layout matches Executor::PipelineDeps. Eager sealing keeps this graph
  // and its per-destination counters unchanged — each of the S² possible
  // buckets still decrements its destination exactly once per round; only
  // WHEN it does moves from sweep end to the bucket's seal point.
  std::vector<int> seal_out_beg_;     // size S + 1
  std::vector<int> seal_out_;         // concatenated dest lists
  std::vector<int> merge_dep_count_;  // per dest shard, >= 1

  // Static per-node CSR of the distinct non-self destination shards a node's
  // arcs reach (eager_seal() only): the ingredient that makes per-(shard,
  // dest) seal points computable at active-set materialization time — which
  // destinations a node can feed is a property of the graph, not the round.
  std::vector<int> node_dest_beg_;  // size n + 1
  std::vector<int> node_dest_;

  // Armed fault plane (§9), or null for the fault-free hot paths. Set at
  // construction only; merge tasks touch only their own shard's queue/stats
  // slot, so the plane inherits the data plane's no-atomics discipline.
  std::unique_ptr<FaultPlane> fault_;
  // Delivery-arena scale factor: 1 fault-free, 3 under faults (delayed-due +
  // duplicated fresh per arc per round). Also scales each shard's static
  // delivery base and the wake-word fan-in headroom check.
  int delivery_mult_ = 1;

  // Scatter-cursor bookkeeping of the incremental merge (sized S², S, S when
  // armed; reset by close_round). Written only by destination d's merge task
  // within a dispatch — the watchdog dump reads them unsynchronized, like
  // everything else it prints. scatter_done_[d * S + s] marks bucket (s → d)
  // scattered, scatter_count_[d] counts them, commit_done_[d] marks d
  // committed.
  std::vector<std::uint8_t> scatter_done_;
  std::vector<int> scatter_count_;
  std::vector<std::uint8_t> commit_done_;

  int active_total_ = 0;

  std::uint32_t round_id_ = 1;
  std::uint64_t wake_epoch_ = 1;
  bool parallel_callbacks_ = false;
  bool eager_seal_ = false;
  bool incremental_ = false;
  int last_manual_sender_ = -1;  // ascending-send check, multi-shard manual loops
};

}  // namespace pw::sim
