// Tree-restricted low-congestion shortcuts (Definitions 2.1–2.3).
//
// A T-restricted shortcut assigns every part Pi a set Hi of edges of the
// rooted spanning tree T. Since every non-root node has exactly one parent
// edge, Hi is stored edge-indexed-by-child: parts_on[v] lists the parts
// whose Hi contains the tree edge (v -> parent(v)).
//
//   congestion c  = max over tree edges of |parts_on|             (Def 2.1.1)
//   blocks of Pi  = connected components of Hi's edge set          (Def 2.3)
//   block parameter b = max over parts of max(#blocks, 1)
//
// Convention (documented in DESIGN.md §2): parts with Hi = ∅ have b = 1 —
// they are exactly the parts Algorithm 1 serves through their own spanning
// trees without touching T. Isolated part nodes are reached through sub-part
// trees, not blocks, so they do not contribute blocks.
//
// block_root_depth_on mirrors parts_on: the depth (in T) of the block's
// topmost node, which is the priority key BlockRoute's deterministic
// scheduler uses (Lemma 4.2). It is a byproduct of shortcut construction
// (each part learns its block structure while claiming edges).
#pragma once

#include <vector>

#include "src/graph/partition.hpp"
#include "src/tree/forest.hpp"

namespace pw::shortcut {

struct Shortcut {
  // Indexed by child node v; sorted ascending part ids.
  std::vector<std::vector<int>> parts_on;
  // Parallel to parts_on: depth of the block root of that (edge, part).
  std::vector<std::vector<int>> block_root_depth_on;

  int n() const { return static_cast<int>(parts_on.size()); }

  static Shortcut empty(int n) {
    Shortcut s;
    s.parts_on.assign(n, {});
    s.block_root_depth_on.assign(n, {});
    return s;
  }

  bool edge_in_part(int child, int part) const;
};

// Maximum number of parts sharing one tree edge (0 for the empty shortcut).
int congestion(const Shortcut& s);

// Number of blocks of every part (0 when Hi is empty).
std::vector<int> blocks_per_part(const graph::Graph& g,
                                 const tree::SpanningForest& t,
                                 const graph::Partition& p, const Shortcut& s);

// max(#blocks, 1) over all parts.
int block_parameter(const graph::Graph& g, const tree::SpanningForest& t,
                    const graph::Partition& p, const Shortcut& s);

// Recomputes block_root_depth_on from scratch (used by constructions after
// they finish claiming edges).
void annotate_block_roots(const graph::Graph& g, const tree::SpanningForest& t,
                          Shortcut& s);

// Structural checks: part ids in range, lists sorted/unique, annotation
// depths consistent with an actual walk of each block.
void validate_shortcut(const graph::Graph& g, const tree::SpanningForest& t,
                       const graph::Partition& p, const Shortcut& s);

// The existential fallback the paper invokes ("every graph admits a shortcut
// with b = 1 and c = sqrt(n)"): every part with more than `size_threshold`
// nodes receives the entire tree as its Hi (one block, so b = 1); smaller
// parts get Hi = ∅ and are served through their own spanning trees. With
// size_threshold = sqrt(n) at most sqrt(n) parts qualify, so c <= sqrt(n).
Shortcut trivial_whole_tree_shortcut(const graph::Graph& g,
                                     const tree::SpanningForest& t,
                                     const graph::Partition& p,
                                     int size_threshold);

}  // namespace pw::shortcut
