// Cole–Vishkin deterministic 3-coloring [4] of oriented pseudo-forests
// (max out-degree 1, i.e. disjoint directed paths and cycles after
// Algorithm 5 strips trees from its super-graph).
//
// One CV step replaces a node's color by 2i + bit, where i is the lowest
// bit position at which its color differs from its successor's; starting
// from distinct O(log n)-bit colors, O(log* n) steps reach 6 colors, and
// three shift-down steps (recoloring classes 5, 4, 3 to the least color
// unused by the at most two neighbors) reach 3.
//
// The step functions are pure: Algorithm 5 executes them at part leaders
// and moves colors around with real messages (each super-graph step is O(1)
// intra-sub-part broadcasts/convergecasts plus one cross-edge exchange —
// exactly the simulation the paper describes in Lemma 6.3's proof). The
// whole-forest runner below is the centralized reference used in tests.
#pragma once

#include <cstdint>
#include <vector>

namespace pw::shortcut::cv {

// One Cole–Vishkin iteration for a node with color `own` whose successor
// has color `succ` (own != succ required).
std::uint64_t cv_step(std::uint64_t own, std::uint64_t succ);

// Fake partner color for nodes without a successor/predecessor.
inline std::uint64_t fake_partner(std::uint64_t own) { return own == 0 ? 1 : 0; }

// Shift-down recoloring: the least color in {0,1,2} not used by the (at
// most two) neighbor colors. Pass ~0ull for a missing neighbor.
int reduce_color(std::uint64_t succ_color, std::uint64_t pred_color);

// Number of cv_step iterations that certainly reach colors < 6 from
// distinct initial colors below 2^32.
int steps_to_six_colors();

// Centralized reference: 3-colors the pseudo-forest given by succ
// (succ[v] = -1 when none). Initial colors are the node indices.
std::vector<int> three_color(const std::vector<int>& succ);

// Checks properness: color[v] != color[succ[v]] and colors in [0, 3).
bool is_proper_three_coloring(const std::vector<int>& succ,
                              const std::vector<int>& colors);

}  // namespace pw::shortcut::cv
