// Deterministic sub-part divisions (Section 6.1-6.2, Algorithms 5 and 6).
//
// Every node starts as its own sub-part; O(log n) rounds of star joinings
// merge sub-parts until each either holds at least D nodes ("complete") or
// spans its entire part ("final"). Star joinings (Definition 6.1 /
// Algorithm 5) force merges to happen joiner-into-receiver only, which is
// what keeps sub-part tree depths at O(D) (Lemma 6.4; attach chains onto
// complete sub-parts can stack to O(D log n) in the worst case — still
// Õ(D), see DESIGN.md §2).
//
// All coordination runs as real CONGEST traffic on the engine:
//   * neighbor announcements of (sub-part, completeness) each iteration;
//   * candidate-edge selection by convergecast/broadcast on sub-part trees
//     (the "PA algorithm A" of Algorithm 5 — incomplete sub-parts have
//     fewer than D nodes, so their own trees serve as the PA substrate, as
//     Lemma 6.4's proof observes);
//   * in-degree counting, receiver/joiner notification and Cole-Vishkin
//     color exchanges across chosen edges (Lemma 6.3: O(log* n) PA calls);
//   * re-rooting of joiner trees by a restricted BFS wave ("Fj orients its
//     tree edges to v", Algorithm 6 line 14).
#pragma once

#include "src/graph/partition.hpp"
#include "src/shortcut/subpart.hpp"
#include "src/sim/engine.hpp"

namespace pw::shortcut {

struct DetDivisionStats {
  int iterations = 0;
  int star_joinings = 0;  // total merges performed
  sim::PhaseStats traffic;
};

SubPartDivision build_subpart_division_det(sim::Engine& eng,
                                           const graph::Partition& p,
                                           int diameter_bound,
                                           DetDivisionStats* stats = nullptr);

}  // namespace pw::shortcut
