#include "src/shortcut/subpart.hpp"

#include <algorithm>
#include <cmath>

#include "src/tree/bfs.hpp"

namespace pw::shortcut {

void validate_subpart_division(const graph::Graph& g,
                               const graph::Partition& p,
                               const SubPartDivision& d, int max_depth) {
  PW_CHECK(static_cast<int>(d.subpart_of.size()) == g.n());
  PW_CHECK(static_cast<int>(d.rep_of_subpart.size()) == d.num_subparts);
  tree::validate_forest(g, d.forest);

  // Roots of the forest are exactly the representatives, one per sub-part.
  std::vector<int> root_of_subpart(d.num_subparts, -1);
  for (int r : d.forest.roots) {
    const int s = d.subpart_of[r];
    PW_CHECK(s >= 0 && s < d.num_subparts);
    PW_CHECK_MSG(root_of_subpart[s] == -1, "sub-part %d has two roots", s);
    root_of_subpart[s] = r;
    PW_CHECK(d.rep_of_subpart[s] == r);
  }
  for (int s = 0; s < d.num_subparts; ++s)
    PW_CHECK_MSG(root_of_subpart[s] >= 0, "sub-part %d has no root", s);

  for (int v = 0; v < g.n(); ++v) {
    const int s = d.subpart_of[v];
    PW_CHECK(s >= 0 && s < d.num_subparts);
    // Sub-parts nest inside parts.
    PW_CHECK(p.part_of[v] == p.part_of[d.rep_of_subpart[s]]);
    // Every node is in its sub-part's tree (claimed or a root).
    PW_CHECK_MSG(d.forest.depth[v] >= 0, "node %d outside every tree", v);
    PW_CHECK(d.forest.depth[v] <= max_depth);
    // Tree edges stay within the sub-part.
    if (d.forest.parent[v] >= 0)
      PW_CHECK(d.subpart_of[d.forest.parent[v]] == s);
  }
}

std::vector<int> subparts_per_part(const graph::Partition& p,
                                   const SubPartDivision& d) {
  std::vector<int> count(p.num_parts, 0);
  for (int s = 0; s < d.num_subparts; ++s)
    ++count[p.part_of[d.rep_of_subpart[s]]];
  return count;
}

SubPartDivision build_subpart_division_random(sim::Engine& eng,
                                              const graph::Partition& p,
                                              int diameter_bound, Rng& rng) {
  const auto& g = eng.graph();
  PW_CHECK(diameter_bound >= 1);
  PW_CHECK_MSG(p.has_leaders(), "Algorithm 3 needs known part leaders");
  const double rep_prob =
      std::min(1.0, std::log(std::max(2, g.n())) / diameter_bound);

  // Line 2's |Pi| <= D branch: leaders know their part size (obtainable by
  // one bootstrap aggregation within the paper's bounds; see DESIGN.md §2).
  std::vector<int> part_size(p.num_parts, 0);
  for (int v = 0; v < g.n(); ++v) ++part_size[p.part_of[v]];

  for (int attempt = 0;; ++attempt) {
    PW_CHECK_MSG(attempt < 64, "sub-part division kept failing; bug likely");

    // Line 7: sample representatives in parts larger than D; part leaders
    // always serve (lines 2-4 make them the sole representative of small
    // parts, and they anchor leader-to-representative routing in large ones).
    std::vector<int> reps;
    std::vector<char> is_rep(g.n(), 0);
    for (int i = 0; i < p.num_parts; ++i) {
      is_rep[p.leader[i]] = 1;
      reps.push_back(p.leader[i]);
    }
    for (int v = 0; v < g.n(); ++v) {
      if (is_rep[v]) continue;
      if (part_size[p.part_of[v]] <= diameter_bound) continue;
      if (rng.next_bool(rep_prob)) {
        is_rep[v] = 1;
        reps.push_back(v);
      }
    }

    // Lines 8-11: every representative claims a ball of radius D inside its
    // part; nodes adopt the first wave to arrive.
    auto forest = tree::build_restricted_bfs(
        eng, reps,
        [&](int v, int port) {
          return p.part_of[v] == p.part_of[g.arcs(v)[port].to];
        },
        diameter_bound);

    // W.h.p. every node is claimed (parts with more than D nodes have
    // Θ(log n) representatives in every radius-D ball; smaller parts are
    // covered by their leader's wave since |Pi| <= D implies radius <= D...
    // strictly, |Pi| <= D gives eccentricity < |Pi| <= D). On failure:
    // retry with fresh coins.
    bool all_claimed = true;
    for (int v = 0; v < g.n() && all_claimed; ++v)
      all_claimed = forest.depth[v] >= 0;
    if (!all_claimed) continue;

    // Bookkeeping: extract sub-part ids (the wave could carry the root id in
    // its explore message within the same O(log n)-bit budget; we recover it
    // from parent pointers instead).
    SubPartDivision d;
    d.subpart_of.assign(g.n(), -1);
    for (int s = 0; s < static_cast<int>(reps.size()); ++s) {
      d.subpart_of[reps[s]] = s;
      d.rep_of_subpart.push_back(reps[s]);
    }
    d.num_subparts = static_cast<int>(reps.size());
    // Nodes in BFS order (by depth) inherit their parent's sub-part.
    std::vector<int> by_depth(g.n());
    for (int v = 0; v < g.n(); ++v) by_depth[v] = v;
    std::sort(by_depth.begin(), by_depth.end(), [&](int a, int b) {
      return forest.depth[a] < forest.depth[b];
    });
    for (int v : by_depth)
      if (d.subpart_of[v] < 0) d.subpart_of[v] = d.subpart_of[forest.parent[v]];

    d.forest = std::move(forest);
    return d;
  }
}

}  // namespace pw::shortcut
