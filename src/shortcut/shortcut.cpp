#include "src/shortcut/shortcut.hpp"

#include <algorithm>
#include <unordered_map>

namespace pw::shortcut {

bool Shortcut::edge_in_part(int child, int part) const {
  const auto& list = parts_on[child];
  return std::binary_search(list.begin(), list.end(), part);
}

int congestion(const Shortcut& s) {
  std::size_t c = 0;
  for (const auto& list : s.parts_on) c = std::max(c, list.size());
  return static_cast<int>(c);
}

namespace {

// Walks the blocks of every part. For each (child-edge, part) entry, finds
// the block's topmost node by climbing parent edges that stay in the part's
// Hi. Runs in O(total entries * depth) worst case but memoizes per part.
struct BlockWalker {
  const graph::Graph& g;
  const tree::SpanningForest& t;
  const Shortcut& s;

  // For part `part`, the topmost node above `child` reachable through Hi
  // edges (starting with child's own parent edge, which must be in Hi).
  int block_root(int child, int part) const {
    int cur = child;
    while (s.edge_in_part(cur, part)) {
      cur = t.parent[cur];
      PW_CHECK(cur >= 0);
    }
    return cur;
  }
};

}  // namespace

std::vector<int> blocks_per_part(const graph::Graph& g,
                                 const tree::SpanningForest& t,
                                 const graph::Partition& p, const Shortcut& s) {
  PW_CHECK(s.n() == g.n());
  BlockWalker walker{g, t, s};
  // A block is uniquely identified by (part, block root). Count distinct
  // roots per part.
  std::vector<std::unordered_map<int, char>> roots(p.num_parts);
  for (int v = 0; v < g.n(); ++v)
    for (int part : s.parts_on[v]) {
      PW_CHECK(part >= 0 && part < p.num_parts);
      roots[part][walker.block_root(v, part)] = 1;
    }
  std::vector<int> blocks(p.num_parts, 0);
  for (int i = 0; i < p.num_parts; ++i)
    blocks[i] = static_cast<int>(roots[i].size());
  return blocks;
}

int block_parameter(const graph::Graph& g, const tree::SpanningForest& t,
                    const graph::Partition& p, const Shortcut& s) {
  int b = 1;
  for (int x : blocks_per_part(g, t, p, s)) b = std::max(b, std::max(x, 1));
  return b;
}

void annotate_block_roots(const graph::Graph& g, const tree::SpanningForest& t,
                          Shortcut& s) {
  BlockWalker walker{g, t, s};
  s.block_root_depth_on.assign(g.n(), {});
  for (int v = 0; v < g.n(); ++v) {
    s.block_root_depth_on[v].reserve(s.parts_on[v].size());
    for (int part : s.parts_on[v])
      s.block_root_depth_on[v].push_back(t.depth[walker.block_root(v, part)]);
  }
}

void validate_shortcut(const graph::Graph& g, const tree::SpanningForest& t,
                       const graph::Partition& p, const Shortcut& s) {
  PW_CHECK(s.n() == g.n());
  BlockWalker walker{g, t, s};
  for (int v = 0; v < g.n(); ++v) {
    const auto& list = s.parts_on[v];
    PW_CHECK(std::is_sorted(list.begin(), list.end()));
    PW_CHECK(std::adjacent_find(list.begin(), list.end()) == list.end());
    if (!list.empty())
      PW_CHECK_MSG(t.parent[v] >= 0,
                   "shortcut claims the (nonexistent) parent edge of root %d", v);
    for (int part : list)
      PW_CHECK(part >= 0 && part < p.num_parts);
    if (!s.block_root_depth_on.empty() && !s.block_root_depth_on[v].empty()) {
      PW_CHECK(s.block_root_depth_on[v].size() == list.size());
      for (std::size_t k = 0; k < list.size(); ++k)
        PW_CHECK(s.block_root_depth_on[v][k] ==
                 t.depth[walker.block_root(v, list[k])]);
    }
  }
}

Shortcut trivial_whole_tree_shortcut(const graph::Graph& g,
                                     const tree::SpanningForest& t,
                                     const graph::Partition& p,
                                     int size_threshold) {
  std::vector<int> part_size(p.num_parts, 0);
  for (int v = 0; v < g.n(); ++v) ++part_size[p.part_of[v]];

  std::vector<int> big_parts;
  for (int i = 0; i < p.num_parts; ++i)
    if (part_size[i] > size_threshold) big_parts.push_back(i);

  Shortcut s = Shortcut::empty(g.n());
  for (int v = 0; v < g.n(); ++v)
    if (t.parent[v] >= 0) s.parts_on[v] = big_parts;  // already sorted
  annotate_block_roots(g, t, s);
  return s;
}

}  // namespace pw::shortcut
