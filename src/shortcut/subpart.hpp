// Sub-part divisions (Definition 4.1) and their randomized construction
// (Algorithm 3).
//
// A sub-part division refines every part Pi into Õ(|Pi|/D) sub-parts, each
// with an O(D)-diameter spanning tree rooted at a designated representative.
// Representatives are the only nodes allowed to inject traffic into shortcut
// blocks — the mechanism that brings PA's message complexity down from
// Ω(nD) to Õ(m) (Section 3.2).
#pragma once

#include "src/graph/partition.hpp"
#include "src/sim/engine.hpp"
#include "src/tree/forest.hpp"
#include "src/util/rng.hpp"

namespace pw::shortcut {

struct SubPartDivision {
  // Spanning trees of all sub-parts; roots are exactly the representatives.
  tree::SpanningForest forest;
  std::vector<int> subpart_of;       // per node
  std::vector<int> rep_of_subpart;   // node id per sub-part (== forest root)
  int num_subparts = 0;

  int representative(int v) const { return rep_of_subpart[subpart_of[v]]; }
  bool is_representative(int v) const { return representative(v) == v; }
};

// Structural validation: sub-parts nest in parts, forests span their
// sub-parts, exactly one root (the representative) per sub-part, and tree
// depth at most `max_depth`.
void validate_subpart_division(const graph::Graph& g,
                               const graph::Partition& p,
                               const SubPartDivision& d, int max_depth);

// Counts sub-parts per part (for Definition 4.1's Õ(|Pi|/D) density checks).
std::vector<int> subparts_per_part(const graph::Partition& p,
                                   const SubPartDivision& d);

// Algorithm 3: randomized sub-part division.
//
// Every node of a part with more than D nodes elects itself representative
// with probability min(1, ln(n)/D); part leaders are representatives
// unconditionally (they serve the |Pi| <= D branch and anchor routing to
// leaders). All representatives then claim balls of radius D inside their
// part by a synchronized restricted BFS (O(D) rounds, O(m) messages). With
// high probability every node is claimed — the failure probability is
// 1/poly(n), and in the unlucky case the construction retries with fresh
// randomness (at most a constant expected number of times).
//
// `diameter_bound` is the D the division is built against (the graph
// diameter in the paper; any upper bound works, trading sub-part count for
// depth).
SubPartDivision build_subpart_division_random(sim::Engine& eng,
                                              const graph::Partition& p,
                                              int diameter_bound, Rng& rng);

}  // namespace pw::shortcut
