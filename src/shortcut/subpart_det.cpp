#include "src/shortcut/subpart_det.hpp"

#include <algorithm>
#include <cmath>

#include "src/shortcut/colevishkin.hpp"
#include "src/tree/bfs.hpp"
#include "src/util/agg.hpp"

namespace pw::shortcut {

namespace {

enum : std::uint16_t {
  kAnnounce = 31,  // (root, complete?) to all neighbors
  kAggUp = 32,     // convergecast within a sub-part tree
  kBcast = 33,     // broadcast within a sub-part tree
  kChose = 34,     // "my sub-part chose your edge" across a candidate arc
  kReply = 35,     // status/color reply across a chosen arc
  kClimb = 36,     // gateway-to-root routing inside a sub-part
};

constexpr std::uint64_t kNone = ~0ULL;

// Sub-part life-cycle within one star-joining iteration.
enum class Status : std::uint8_t {
  Idle,       // complete or not a super-node this iteration
  Remaining,  // in the residual paths-and-cycles super-graph
  Receiver,
  Joiner,
  Final,      // spans its whole part; nothing to merge with
};

class DetBuilder {
 public:
  DetBuilder(sim::Engine& eng, const graph::Partition& p, int diameter_bound)
      : eng_(eng),
        g_(eng.graph()),
        p_(p),
        d_(std::max(1, diameter_bound)),
        root_(g_.n()),
        parent_port_(g_.n(), -1),
        child_ports_(g_.n()),
        complete_(g_.n(), 0),
        tree_edge_(g_.m(), 0),
        size_(g_.n(), 1) {
    for (int v = 0; v < g_.n(); ++v) {
      root_[v] = v;
      complete_[v] = size_[v] >= d_ ? 1 : 0;
    }
  }

  SubPartDivision run(DetDivisionStats* stats) {
    const auto snap = eng_.snap();
    const int cap =
        6 * static_cast<int>(std::ceil(std::log2(std::max(2, g_.n())))) + 12;
    int iter = 0;
    int joinings = 0;
    while (true) {
      rebuild_members();
      std::vector<int> incomplete_roots;
      for (int r = 0; r < g_.n(); ++r)
        if (root_[r] == r && !complete_[r]) incomplete_roots.push_back(r);
      if (incomplete_roots.empty()) break;
      PW_CHECK_MSG(iter < cap, "deterministic division failed to converge");
      ++iter;

      announce();
      joinings += one_star_joining(incomplete_roots);
    }
    if (stats != nullptr) {
      stats->iterations = iter;
      stats->star_joinings = joinings;
      stats->traffic = eng_.since(snap);
    }
    return extract();
  }

 private:
  // ---- iteration-level engine phases --------------------------------------

  void rebuild_members() {
    members_.assign(g_.n(), {});
    for (int v = 0; v < g_.n(); ++v) members_[root_[v]].push_back(v);
  }

  void announce() {
    nbr_root_.assign(g_.num_arcs(), -1);
    nbr_complete_.assign(g_.num_arcs(), 0);
    std::vector<char> sent(g_.n(), 0);
    for (int v = 0; v < g_.n(); ++v) eng_.wake(v);
    eng_.run([&](int v) {
      for (const auto& in : eng_.inbox(v)) {
        if (in.msg.tag != kAnnounce) continue;
        nbr_root_[g_.arc_id(v, in.port)] = static_cast<int>(in.msg.a);
        nbr_complete_[g_.arc_id(v, in.port)] = static_cast<char>(in.msg.b);
      }
      if (sent[v]) return;
      sent[v] = 1;
      for (int port = 0; port < g_.degree(v); ++port)
        eng_.send(v, port,
                  sim::Msg{kAnnounce, static_cast<std::uint64_t>(root_[v]),
                           static_cast<std::uint64_t>(complete_[root_[v]]), 0});
    });
  }

  // Convergecast `value` to the roots flagged in active_root; returns the
  // aggregate per root (indexed by root node id).
  std::vector<std::uint64_t> agg_to_roots(const std::vector<char>& active_root,
                                          const std::vector<std::uint64_t>& value,
                                          const Agg& agg) {
    std::vector<std::uint64_t> acc(value);
    std::vector<int> pending(g_.n(), -1);
    for (int v = 0; v < g_.n(); ++v) {
      if (!active_root[root_[v]]) continue;
      pending[v] = static_cast<int>(child_ports_[v].size());
      if (pending[v] == 0) eng_.wake(v);
    }
    eng_.run([&](int v) {
      for (const auto& in : eng_.inbox(v)) {
        if (in.msg.tag != kAggUp) continue;
        acc[v] = agg(acc[v], in.msg.a);
        --pending[v];
      }
      if (pending[v] == 0) {
        pending[v] = -1;
        if (parent_port_[v] >= 0)
          eng_.send(v, parent_port_[v], sim::Msg{kAggUp, acc[v], 0, 0});
      }
    });
    return acc;
  }

  // Broadcast the root's entry of `value` to every member of active parts.
  void bcast_from_roots(const std::vector<char>& active_root,
                        std::vector<std::uint64_t>& value) {
    for (int r = 0; r < g_.n(); ++r)
      if (root_[r] == r && active_root[r]) eng_.wake(r);
    std::vector<char> got(g_.n(), 0);
    eng_.run([&](int v) {
      if (!active_root[root_[v]]) return;
      for (const auto& in : eng_.inbox(v)) {
        if (in.msg.tag != kBcast) continue;
        value[v] = in.msg.a;
        got[v] = 1;
      }
      if (root_[v] != v && !got[v]) return;
      for (int cp : child_ports_[v])
        eng_.send(v, cp, sim::Msg{kBcast, value[v], 0, 0});
    });
  }

  // Routes (node, value) pairs up to their sub-part roots (at most one start
  // per sub-part). Returns per-root received value (kNone when none).
  std::vector<std::uint64_t> climb(const std::vector<std::pair<int, std::uint64_t>>& starts) {
    std::vector<std::uint64_t> at_root(g_.n(), kNone);
    std::vector<std::uint64_t> carry(g_.n(), kNone);
    for (const auto& [v, value] : starts) {
      carry[v] = value;
      eng_.wake(v);
    }
    eng_.run([&](int v) {
      for (const auto& in : eng_.inbox(v))
        if (in.msg.tag == kClimb) carry[v] = in.msg.a;
      if (carry[v] == kNone) return;
      if (parent_port_[v] >= 0) {
        eng_.send(v, parent_port_[v], sim::Msg{kClimb, carry[v], 0, 0});
      } else {
        at_root[v] = carry[v];
      }
      carry[v] = kNone;
    });
    return at_root;
  }

  // One round of pairwise exchange: each (node, port, payload) sends; the
  // deliveries land in out[g.arc_id(receiver, port)] = payload.
  std::vector<std::uint64_t> exchange(
      const std::vector<std::tuple<int, int, std::uint64_t>>& sends,
      std::uint16_t tag) {
    std::vector<std::uint64_t> received(g_.num_arcs(), kNone);
    std::vector<char> fired(g_.n(), 0);
    // Group sends by node.
    std::vector<std::vector<std::pair<int, std::uint64_t>>> by_node(g_.n());
    for (const auto& [v, port, payload] : sends) {
      by_node[v].push_back({port, payload});
      eng_.wake(v);
    }
    eng_.run([&](int v) {
      for (const auto& in : eng_.inbox(v))
        if (in.msg.tag == tag) received[g_.arc_id(v, in.port)] = in.msg.a;
      if (fired[v]) return;
      fired[v] = 1;
      for (const auto& [port, payload] : by_node[v])
        eng_.send(v, port, sim::Msg{tag, payload, 0, 0});
    });
    return received;
  }

  // ---- one star joining (Algorithm 5 + merge, Algorithm 6 lines 5-16) -----

  int one_star_joining(const std::vector<int>& incomplete_roots) {
    std::vector<char> active(g_.n(), 0);
    for (int r : incomplete_roots) active[r] = 1;

    // Candidate selection (Algorithm 6 lines 5-9): min over packed
    // (prefer-incomplete, arc id), aggregated to the root, broadcast back.
    std::vector<std::uint64_t> cand(g_.n(), kNone);
    for (int v = 0; v < g_.n(); ++v) {
      if (!active[root_[v]]) continue;
      for (int port = 0; port < g_.degree(v); ++port) {
        const int a = g_.arc_id(v, port);
        if (nbr_root_[a] < 0 || nbr_root_[a] == root_[v]) continue;
        if (p_.part_of[g_.arcs(v)[port].to] != p_.part_of[v]) continue;
        const std::uint64_t key =
            (static_cast<std::uint64_t>(nbr_complete_[a]) << 40) |
            static_cast<std::uint64_t>(a);
        cand[v] = std::min(cand[v], key);
      }
    }
    auto chosen = agg_to_roots(active, cand, agg::min());
    bcast_from_roots(active, chosen);

    // Decode: gateway/target per active sub-part (root-indexed).
    std::vector<int> gateway(g_.n(), -1), gw_port(g_.n(), -1),
        target_root(g_.n(), -1);
    std::vector<Status> status(g_.n(), Status::Idle);
    std::vector<std::tuple<int, int, std::uint64_t>> chose_msgs;
    for (int r : incomplete_roots) {
      if (chosen[r] == kNone) {
        status[r] = Status::Final;  // spans its part: no outside neighbor
        complete_[r] = 1;
        continue;
      }
      const int arc = static_cast<int>(chosen[r] & 0xffffffffULL);
      const int v = g_.arc_owner(arc);
      const int port = arc - g_.arc_id(v, 0);
      gateway[r] = v;
      gw_port[r] = port;
      target_root[r] = nbr_root_[arc];
      status[r] = Status::Remaining;
      if (complete_[target_root[r]]) {
        // Line 9 targets: complete sub-parts absorb joiners unconditionally.
        status[r] = Status::Joiner;
      } else {
        chose_msgs.push_back({v, port, static_cast<std::uint64_t>(root_[v])});
      }
    }

    // In-degree counting (Algorithm 5 line 3): targets count kChose arrivals
    // and aggregate; >= 2 makes the sub-part a receiver.
    const auto chose_recv = exchange(chose_msgs, kChose);
    std::vector<std::uint64_t> indeg(g_.n(), 0);
    std::vector<std::vector<int>> chose_ports(g_.n());  // per target node
    for (int v = 0; v < g_.n(); ++v)
      for (int port = 0; port < g_.degree(v); ++port) {
        const int a = g_.arc_id(v, port);
        if (chose_recv[a] == kNone) continue;
        ++indeg[v];
        chose_ports[v].push_back(port);
      }
    const auto indeg_at_root = agg_to_roots(active, indeg, agg::sum());
    for (int r : incomplete_roots)
      if (status[r] == Status::Remaining && indeg_at_root[r] >= 2)
        status[r] = Status::Receiver;

    // Status notification helper: broadcast each sub-part's status to its
    // members, reply across chosen arcs, climb to the source root. Returns
    // the target's status as known at each source root.
    auto probe_targets = [&]() {
      std::vector<std::uint64_t> st(g_.n(), 0);
      for (int v = 0; v < g_.n(); ++v)
        st[v] = static_cast<std::uint64_t>(status[root_[v]]);
      // Only incomplete sub-parts can be probe targets (complete targets
      // were resolved from the announcement alone), so the broadcast is
      // restricted to them.
      bcast_from_roots(active, st);
      std::vector<std::tuple<int, int, std::uint64_t>> replies;
      for (int v = 0; v < g_.n(); ++v)
        for (int port : chose_ports[v]) replies.push_back({v, port, st[v]});
      const auto got = exchange(replies, kReply);
      std::vector<std::pair<int, std::uint64_t>> climbs;
      for (int r : incomplete_roots) {
        if (gateway[r] < 0) continue;
        const int a = g_.arc_id(gateway[r], gw_port[r]);
        if (got[a] != kNone) climbs.push_back({gateway[r], got[a]});
      }
      return climb(climbs);
    };

    // Algorithm 5 line 4: non-receivers pointing at receivers join.
    {
      const auto tstat = probe_targets();
      for (int r : incomplete_roots)
        if (status[r] == Status::Remaining && tstat[r] != kNone &&
            static_cast<Status>(tstat[r]) == Status::Receiver)
          status[r] = Status::Joiner;
    }

    // Residual super-graph: Remaining nodes whose target is also Remaining
    // form disjoint directed paths and cycles (in-degree <= 1: anything with
    // two choosers became a receiver). Cole-Vishkin 3-colors it; each CV
    // step is simulated with real traffic: broadcast colors, exchange across
    // chosen arcs (both directions), climb to roots (Lemma 6.3).
    std::vector<std::uint64_t> color(g_.n(), kNone);
    for (int r : incomplete_roots)
      if (status[r] == Status::Remaining)
        color[r] = static_cast<std::uint64_t>(r);

    auto cv_round = [&](bool reduction, std::uint64_t klass) {
      // Spread own color to members of remaining sub-parts.
      std::vector<std::uint64_t> col(g_.n(), kNone);
      for (int v = 0; v < g_.n(); ++v) col[v] = color[root_[v]];
      std::vector<char> remaining_root(g_.n(), 0);
      for (int r : incomplete_roots)
        if (status[r] == Status::Remaining) remaining_root[r] = 1;
      bcast_from_roots(remaining_root, col);
      // Exchanges: forward (gateway -> target: predecessor color) and
      // backward (target -> gateway: successor color), remaining pairs only.
      std::vector<std::tuple<int, int, std::uint64_t>> fw, bw;
      for (int r : incomplete_roots) {
        if (status[r] != Status::Remaining || gateway[r] < 0) continue;
        if (status[target_root[r]] != Status::Remaining) continue;
        fw.push_back({gateway[r], gw_port[r], col[gateway[r]]});
      }
      const auto fw_recv = exchange(fw, kReply);
      std::vector<std::pair<int, std::uint64_t>> pred_climbs;
      for (int v = 0; v < g_.n(); ++v)
        for (int port : chose_ports[v]) {
          const int a = g_.arc_id(v, port);
          if (fw_recv[a] == kNone) continue;
          pred_climbs.push_back({v, fw_recv[a]});
          bw.push_back({v, port, col[v]});
        }
      const auto pred_at_root = climb(pred_climbs);
      const auto bw_recv = exchange(bw, kReply);
      std::vector<std::pair<int, std::uint64_t>> succ_climbs;
      for (int r : incomplete_roots) {
        if (status[r] != Status::Remaining || gateway[r] < 0) continue;
        const int a = g_.arc_id(gateway[r], gw_port[r]);
        if (bw_recv[a] != kNone) succ_climbs.push_back({gateway[r], bw_recv[a]});
      }
      const auto succ_at_root = climb(succ_climbs);
      // Local recompute at roots.
      for (int r : incomplete_roots) {
        if (status[r] != Status::Remaining) continue;
        const std::uint64_t own = color[r];
        const std::uint64_t succ = succ_at_root[r];
        const std::uint64_t pred = pred_at_root[r];
        if (!reduction) {
          color[r] = cv::cv_step(own, succ != kNone ? succ : cv::fake_partner(own));
        } else if (own == klass) {
          color[r] = static_cast<std::uint64_t>(cv::reduce_color(
              succ != kNone ? succ : kNone, pred != kNone ? pred : kNone));
        }
      }
    };

    bool any_remaining = false;
    for (int r : incomplete_roots)
      any_remaining = any_remaining || status[r] == Status::Remaining;
    if (any_remaining) {
      for (int step = 0; step < cv::steps_to_six_colors(); ++step)
        cv_round(false, 0);
      for (std::uint64_t k = 5; k >= 3; --k) cv_round(true, k);
      // Lines 7-9: colors 1, 2, 3 (here 0, 1, 2) become receivers in turn;
      // their pointees join.
      for (std::uint64_t k = 0; k < 3; ++k) {
        for (int r : incomplete_roots)
          if (status[r] == Status::Remaining && color[r] == k)
            status[r] = Status::Receiver;
        const auto tstat = probe_targets();
        for (int r : incomplete_roots)
          if (status[r] == Status::Remaining && tstat[r] != kNone &&
              static_cast<Status>(tstat[r]) == Status::Receiver)
            status[r] = Status::Joiner;
      }
    }

    // ---- merge (Algorithm 6 lines 11-14) -----------------------------------
    std::vector<int> joiners;
    for (int r : incomplete_roots)
      if (status[r] == Status::Joiner) joiners.push_back(r);
    if (joiners.empty()) return 0;

    // Re-root every joiner tree at its gateway with one restricted BFS wave.
    std::vector<char> is_joiner_node(g_.n(), 0);
    for (int j : joiners)
      for (int v : members_[j]) is_joiner_node[v] = 1;
    std::vector<int> bfs_roots;
    for (int j : joiners) bfs_roots.push_back(gateway[j]);
    const auto rerooted = tree::build_restricted_bfs(
        eng_, bfs_roots, [&](int v, int port) {
          return is_joiner_node[v] && tree_edge_[g_.arcs(v)[port].edge] != 0;
        });
    for (int v = 0; v < g_.n(); ++v)
      if (is_joiner_node[v])
        PW_CHECK_MSG(rerooted.depth[v] >= 0, "re-rooting missed node %d", v);

    // "u remembers v as its parent" (Algorithm 6 line 13): one real message
    // per joiner across its chosen arc.
    eng_.charge_messages(joiners.size());
    eng_.charge_rounds(1);

    for (int j : joiners) {
      const int new_root = target_root[j];
      for (int v : members_[j]) {
        parent_port_[v] = rerooted.parent_port[v];
        root_[v] = new_root;
      }
      // Gateway hooks into the target across the chosen arc.
      parent_port_[gateway[j]] = gw_port[j];
      tree_edge_[g_.arcs(gateway[j])[gw_port[j]].edge] = 1;
    }
    rebuild_children();

    // Sizes of merged sub-parts (convergecast of ones), then completeness.
    rebuild_members();
    std::vector<char> touched(g_.n(), 0);
    for (int j : joiners) touched[root_[gateway[j]]] = 1;
    std::vector<std::uint64_t> ones(g_.n(), 1);
    const auto sizes = agg_to_roots(touched, ones, agg::sum());
    for (int r = 0; r < g_.n(); ++r) {
      if (root_[r] != r || !touched[r]) continue;
      size_[r] = static_cast<int>(sizes[r]);
      if (size_[r] >= d_) complete_[r] = 1;
    }
    return static_cast<int>(joiners.size());
  }

  void rebuild_children() {
    for (auto& list : child_ports_) list.clear();
    for (int v = 0; v < g_.n(); ++v) {
      if (parent_port_[v] < 0) continue;
      const int a = g_.arc_id(v, parent_port_[v]);
      const int parent = g_.arcs(v)[parent_port_[v]].to;
      child_ports_[parent].push_back(g_.mirror(a) - g_.arc_id(parent, 0));
    }
  }

  SubPartDivision extract() {
    SubPartDivision d;
    d.subpart_of.assign(g_.n(), -1);
    for (int v = 0; v < g_.n(); ++v) {
      if (root_[v] != v) continue;
      d.subpart_of[v] = d.num_subparts++;
      d.rep_of_subpart.push_back(v);
    }
    for (int v = 0; v < g_.n(); ++v) d.subpart_of[v] = d.subpart_of[root_[v]];

    d.forest.parent.assign(g_.n(), -1);
    d.forest.parent_port = parent_port_;
    d.forest.children_ports.assign(g_.n(), {});
    d.forest.roots = d.rep_of_subpart;
    for (int v = 0; v < g_.n(); ++v)
      if (parent_port_[v] >= 0)
        d.forest.parent[v] = g_.arcs(v)[parent_port_[v]].to;
    // Depths and children by BFS over parent pointers (bookkeeping).
    d.forest.depth.assign(g_.n(), -1);
    rebuild_children();
    d.forest.children_ports = child_ports_;
    std::vector<int> frontier = d.forest.roots;
    for (int r : d.forest.roots) d.forest.depth[r] = 0;
    while (!frontier.empty()) {
      std::vector<int> next;
      for (int v : frontier)
        for (int cp : child_ports_[v]) {
          const int c = g_.arcs(v)[cp].to;
          d.forest.depth[c] = d.forest.depth[v] + 1;
          next.push_back(c);
        }
      frontier.swap(next);
    }
    return d;
  }

  sim::Engine& eng_;
  const graph::Graph& g_;
  const graph::Partition& p_;
  const int d_;

  std::vector<int> root_;
  std::vector<int> parent_port_;
  std::vector<std::vector<int>> child_ports_;
  std::vector<char> complete_;  // valid at roots
  std::vector<char> tree_edge_;
  std::vector<int> size_;  // valid at roots
  std::vector<std::vector<int>> members_;
  std::vector<int> nbr_root_;
  std::vector<char> nbr_complete_;
};

}  // namespace

SubPartDivision build_subpart_division_det(sim::Engine& eng,
                                           const graph::Partition& p,
                                           int diameter_bound,
                                           DetDivisionStats* stats) {
  DetBuilder builder(eng, p, diameter_bound);
  return builder.run(stats);
}

}  // namespace pw::shortcut
