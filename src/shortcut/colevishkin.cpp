#include "src/shortcut/colevishkin.hpp"

#include "src/util/check.hpp"

namespace pw::shortcut::cv {

std::uint64_t cv_step(std::uint64_t own, std::uint64_t succ) {
  PW_CHECK(own != succ);
  const std::uint64_t diff = own ^ succ;
  const int i = __builtin_ctzll(diff);
  const std::uint64_t bit = (own >> i) & 1;
  return 2 * static_cast<std::uint64_t>(i) + bit;
}

int reduce_color(std::uint64_t succ_color, std::uint64_t pred_color) {
  for (int c = 0; c < 3; ++c)
    if (static_cast<std::uint64_t>(c) != succ_color &&
        static_cast<std::uint64_t>(c) != pred_color)
      return c;
  PW_CHECK_MSG(false, "no free color among 3 with two neighbors");
}

int steps_to_six_colors() {
  // 32-bit colors: 32 -> <=63 (6 bits) -> <=11 (4 bits) -> <=7 (3 bits)
  // -> <=5. Four steps suffice; one spare for safety.
  return 5;
}

std::vector<int> three_color(const std::vector<int>& succ) {
  const int n = static_cast<int>(succ.size());
  std::vector<std::uint64_t> color(n);
  for (int v = 0; v < n; ++v) color[v] = static_cast<std::uint64_t>(v);

  // Predecessor map (in-degree <= 1 required for the reduction phase).
  std::vector<int> pred(n, -1);
  for (int v = 0; v < n; ++v) {
    if (succ[v] < 0) continue;
    PW_CHECK_MSG(pred[succ[v]] == -1, "pseudo-forest has in-degree >= 2");
    pred[succ[v]] = v;
  }

  for (int step = 0; step < steps_to_six_colors(); ++step) {
    std::vector<std::uint64_t> next(n);
    for (int v = 0; v < n; ++v) {
      const std::uint64_t partner =
          succ[v] >= 0 ? color[succ[v]] : fake_partner(color[v]);
      next[v] = cv_step(color[v], partner);
    }
    color.swap(next);
  }
  for (int v = 0; v < n; ++v) PW_CHECK(color[v] < 6);

  // Shift down classes 5, 4, 3.
  for (std::uint64_t k = 5; k >= 3; --k) {
    std::vector<std::uint64_t> next(color);
    for (int v = 0; v < n; ++v) {
      if (color[v] != k) continue;
      const std::uint64_t sc = succ[v] >= 0 ? color[succ[v]] : ~0ULL;
      const std::uint64_t pc = pred[v] >= 0 ? color[pred[v]] : ~0ULL;
      next[v] = static_cast<std::uint64_t>(reduce_color(sc, pc));
    }
    color.swap(next);
  }

  std::vector<int> out(n);
  for (int v = 0; v < n; ++v) {
    PW_CHECK(color[v] < 3);
    out[v] = static_cast<int>(color[v]);
  }
  return out;
}

bool is_proper_three_coloring(const std::vector<int>& succ,
                              const std::vector<int>& colors) {
  for (std::size_t v = 0; v < succ.size(); ++v) {
    if (colors[v] < 0 || colors[v] >= 3) return false;
    if (succ[v] >= 0 && colors[v] == colors[succ[v]]) return false;
  }
  return true;
}

}  // namespace pw::shortcut::cv
