// Aggregate functions for Part-Wise Aggregation (Definition 1.1, item 3):
// commutative, associative functions over O(log n)-bit values, here packed
// into 64-bit words.
//
// MST uses `min` over (weight << 32 | edge_id) packings, counting uses
// `sum`, leader agreement uses `min` over ids, and so on.
#pragma once

#include <algorithm>
#include <cstdint>

namespace pw {

struct Agg {
  using Fn = std::uint64_t (*)(std::uint64_t, std::uint64_t);
  std::uint64_t identity = 0;
  Fn fn = nullptr;
  const char* name = "";

  std::uint64_t operator()(std::uint64_t x, std::uint64_t y) const {
    return fn(x, y);
  }
};

namespace agg {

inline constexpr std::uint64_t kU64Max = ~0ULL;

inline Agg min() {
  return {kU64Max, [](std::uint64_t x, std::uint64_t y) { return std::min(x, y); },
          "min"};
}

inline Agg max() {
  return {0, [](std::uint64_t x, std::uint64_t y) { return std::max(x, y); },
          "max"};
}

inline Agg sum() {
  return {0, [](std::uint64_t x, std::uint64_t y) { return x + y; }, "sum"};
}

inline Agg bit_or() {
  return {0, [](std::uint64_t x, std::uint64_t y) { return x | y; }, "or"};
}

inline Agg bit_and() {
  return {kU64Max, [](std::uint64_t x, std::uint64_t y) { return x & y; }, "and"};
}

// Packs a (key, value) pair so that `min` selects the pair with the smallest
// key (ties: smallest value). Key and value must fit in 32 bits.
inline std::uint64_t pack_pair(std::uint64_t key, std::uint64_t value) {
  return (key << 32) | (value & 0xffffffffULL);
}
inline std::uint64_t pair_key(std::uint64_t packed) { return packed >> 32; }
inline std::uint64_t pair_value(std::uint64_t packed) {
  return packed & 0xffffffffULL;
}

}  // namespace agg
}  // namespace pw
