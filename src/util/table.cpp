#include "src/util/table.hpp"

#include <cinttypes>
#include <cstdio>

namespace pw {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string(const std::string& title) const {
  std::vector<std::size_t> width(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) width[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c)
      if (row[c].size() > width[c]) width[c] = row[c].size();

  std::string out;
  if (!title.empty()) {
    out += "== " + title + " ==\n";
  }
  auto emit_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += row[c];
      out.append(width[c] - row[c].size() + 2, ' ');
    }
    out += '\n';
  };
  emit_row(headers_);
  std::size_t rule = 0;
  for (std::size_t c = 0; c < headers_.size(); ++c) rule += width[c] + 2;
  out.append(rule, '-');
  out += '\n';
  for (const auto& row : rows_) emit_row(row);
  return out;
}

void Table::print(const std::string& title) const {
  std::fputs(to_string(title).c_str(), stdout);
  std::fflush(stdout);
}

std::string Table::fmt(double v, int precision) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", precision, v);
  return buf;
}

std::string Table::fmt(std::uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRIu64, v);
  return buf;
}

std::string Table::fmt(std::int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%" PRId64, v);
  return buf;
}

std::string Table::fmt(int v) { return fmt(static_cast<std::int64_t>(v)); }

}  // namespace pw
