// Lightweight invariant checking used across the library.
//
// PW_CHECK is always on (benchmarks included): the algorithms in this library
// are intricate enough that silently-corrupted state would invalidate every
// measured round/message count. Failures print the condition and abort.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace pw {

[[noreturn]] inline void check_fail(const char* cond, const char* file, int line) {
  std::fprintf(stderr, "PW_CHECK failed: %s at %s:%d\n", cond, file, line);
  std::abort();
}

}  // namespace pw

#define PW_CHECK(cond)                                   \
  do {                                                   \
    if (!(cond)) ::pw::check_fail(#cond, __FILE__, __LINE__); \
  } while (0)

#define PW_CHECK_MSG(cond, ...)                          \
  do {                                                   \
    if (!(cond)) {                                       \
      std::fprintf(stderr, "PW_CHECK: " __VA_ARGS__);    \
      std::fprintf(stderr, "\n");                        \
      ::pw::check_fail(#cond, __FILE__, __LINE__);       \
    }                                                    \
  } while (0)
