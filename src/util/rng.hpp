// Deterministic, seedable pseudo-random number generation.
//
// All randomized algorithms in the library take an explicit Rng so that every
// experiment is reproducible from its seed. The generator is xoshiro256**
// seeded via splitmix64 (the reference seeding procedure), which is far
// faster than std::mt19937_64 and has no global state.
#pragma once

#include <cstdint>

#include "src/util/check.hpp"

namespace pw {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& word : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      word = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform integer in [0, bound). bound must be positive.
  std::uint64_t next_below(std::uint64_t bound) {
    PW_CHECK(bound > 0);
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = UINT64_MAX - UINT64_MAX % bound;
    std::uint64_t x;
    do {
      x = next_u64();
    } while (x >= limit);
    return x % bound;
  }

  // Uniform integer in [lo, hi] inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    PW_CHECK(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool next_bool(double p) { return next_double() < p; }

  // Derive an independent child generator (for per-node randomness).
  Rng fork() { return Rng(next_u64() ^ 0xd1b54a32d192ed03ULL); }

 private:
  static std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4];
};

}  // namespace pw
