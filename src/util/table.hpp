// Minimal aligned-column table printer used by the benchmark harnesses to
// emit the rows/series the paper's tables report.
#pragma once

#include <string>
#include <vector>

namespace pw {

class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  // Appends a row; the row is padded/truncated to the header width.
  void add_row(std::vector<std::string> cells);

  // Renders with column alignment, a header rule, and a title line.
  std::string to_string(const std::string& title = "") const;

  // Convenience: prints to stdout.
  void print(const std::string& title = "") const;

  static std::string fmt(double v, int precision = 2);
  static std::string fmt(std::uint64_t v);
  static std::string fmt(std::int64_t v);
  static std::string fmt(int v);

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace pw
