#include "src/apps/mincut.hpp"

#include <algorithm>
#include <cmath>

#include "src/apps/mst.hpp"
#include "src/graph/generators.hpp"

namespace pw::apps {

namespace {

// Scores all n-1 single-tree-edge cuts of the given spanning tree and
// returns (best weight, side bits). Centralized stand-in for the sketching
// step of [15]; the caller charges its communication cost.
std::pair<std::int64_t, std::vector<char>> best_single_edge_cut(
    const graph::Graph& g, const std::vector<char>& in_tree) {
  // Root the tree at 0; compute, per tree edge (v, parent), the weight of
  // the cut separating subtree(v): sum over edges with exactly one endpoint
  // inside. Using Euler intervals: edge (a,b) crosses subtree(v) iff
  // exactly one endpoint's tin lies within v's interval.
  const int n = g.n();
  std::vector<std::vector<int>> adj(n);
  for (int e = 0; e < g.m(); ++e)
    if (in_tree[e]) {
      adj[g.edge(e).u].push_back(g.edge(e).v);
      adj[g.edge(e).v].push_back(g.edge(e).u);
    }
  std::vector<int> tin(n, -1), tout(n, -1), order, parent(n, -1);
  int clock = 0;
  std::vector<int> stack{0};
  parent[0] = 0;
  while (!stack.empty()) {
    const int v = stack.back();
    if (tin[v] < 0) {
      tin[v] = clock++;
      order.push_back(v);
      for (int u : adj[v])
        if (tin[u] < 0) {
          parent[u] = v;
          stack.push_back(u);
        }
    } else {
      tout[v] = clock;
      stack.pop_back();
    }
  }
  auto inside = [&](int node, int sub) {
    return tin[sub] <= tin[node] && tin[node] < tout[sub];
  };
  // cut(v) = sum over non-tree edges crossing + tree edge above v itself.
  // Accumulate with the standard subtree-sum trick: contribution of edge
  // (a,b,w): +w to cut(x) for x on the tree path a..b. Do it directly per
  // edge over ancestors (O(m * depth) — a reference computation).
  std::vector<std::int64_t> cut(n, 0);
  for (int e = 0; e < g.m(); ++e) {
    const auto& ed = g.edge(e);
    // Walk both endpoints up to their LCA; the edge crosses subtree(x) for
    // every x strictly below the LCA on either side. The larger-tin node is
    // never an ancestor of the other, so it is the one to move.
    int a = ed.u, b = ed.v;
    while (a != b) {
      if (tin[a] < tin[b]) std::swap(a, b);
      cut[a] += ed.w;
      a = parent[a];
    }
  }
  std::int64_t best = -1;
  int best_node = -1;
  for (int v = 1; v < n; ++v)
    if (best < 0 || cut[v] < best) {
      best = cut[v];
      best_node = v;
    }
  std::vector<char> side(n, 0);
  for (int v = 0; v < n; ++v)
    if (inside(v, best_node)) side[v] = 1;
  return {best, side};
}

}  // namespace

std::int64_t cut_weight(const graph::Graph& g, const std::vector<char>& side) {
  std::int64_t w = 0;
  for (const auto& e : g.edges())
    if (side[e.u] != side[e.v]) w += e.w;
  return w;
}

MinCutResult approx_min_cut(sim::Engine& eng, double eps,
                            const core::PaSolverConfig& cfg) {
  PW_CHECK(eps > 0);
  const auto& g = eng.graph();
  const auto snap = eng.snap();
  Rng rng(cfg.seed ^ 0x5ca1ab1eULL);

  const int logn = static_cast<int>(std::ceil(std::log2(std::max(2, g.n()))));
  const int trials =
      std::max(2, static_cast<int>(std::ceil(logn * (1.0 + 1.0 / eps))));

  MinCutResult out;
  out.trials = trials;
  out.cut_value = -1;

  for (int t = 0; t < trials; ++t) {
    // Karger perturbation: exponential "lengths" with rate w make heavy
    // edges short, so random MSTs concentrate around small cuts.
    std::vector<graph::Edge> edges = g.edges();
    for (auto& e : edges) {
      const double u = std::max(1e-12, rng.next_double());
      const double len = -std::log(u) / static_cast<double>(e.w);
      e.w = 1 + static_cast<graph::Weight>(len * (1 << 16));
    }
    const graph::Graph perturbed = graph::Graph::from_edges(g.n(), std::move(edges));

    // Distributed MST on the perturbed weights (real engine traffic on an
    // engine over the same topology; counts merge into the caller's). The
    // trial engine inherits the caller's execution policy so the inner MSTs
    // ride the same parallel data plane as everything else.
    sim::Engine trial_eng(perturbed, eng.policy());
    core::PaSolverConfig tcfg = cfg;
    tcfg.seed = rng.next_u64();
    const auto mst = boruvka_mst(trial_eng, tcfg);
    eng.charge_rounds(trial_eng.rounds());
    eng.charge_messages(trial_eng.messages());

    // Score the n-1 single-tree-edge cuts against the ORIGINAL weights.
    auto [value, side] = best_single_edge_cut(g, mst.in_mst);
    // Substituted sketching cost ([15]): O(log^2 n) tree aggregations.
    eng.charge_rounds(static_cast<std::uint64_t>(logn) * logn * 2);
    eng.charge_messages(static_cast<std::uint64_t>(logn) * logn * g.n());

    if (out.cut_value < 0 || value < out.cut_value) {
      out.cut_value = value;
      out.side = std::move(side);
    }
  }

  out.stats = eng.since(snap);
  return out;
}

std::int64_t stoer_wagner_min_cut(const graph::Graph& g) {
  const int n = g.n();
  PW_CHECK(n >= 2);
  std::vector<std::vector<std::int64_t>> w(n, std::vector<std::int64_t>(n, 0));
  for (const auto& e : g.edges()) {
    w[e.u][e.v] += e.w;
    w[e.v][e.u] += e.w;
  }
  std::vector<int> vertices(n);
  for (int i = 0; i < n; ++i) vertices[i] = i;
  std::int64_t best = -1;
  while (vertices.size() > 1) {
    // Maximum adjacency order.
    std::vector<std::int64_t> key(vertices.size(), 0);
    std::vector<char> used(vertices.size(), 0);
    int prev = -1, last = -1;
    for (std::size_t it = 0; it < vertices.size(); ++it) {
      int pick = -1;
      for (std::size_t i = 0; i < vertices.size(); ++i)
        if (!used[i] && (pick < 0 || key[i] > key[pick]))
          pick = static_cast<int>(i);
      used[pick] = 1;
      prev = last;
      last = pick;
      for (std::size_t i = 0; i < vertices.size(); ++i)
        if (!used[i]) key[i] += w[vertices[pick]][vertices[i]];
    }
    const std::int64_t phase_cut = key[last];
    if (best < 0 || phase_cut < best) best = phase_cut;
    // Merge last into prev.
    const int a = vertices[prev], b = vertices[last];
    for (int x : vertices) {
      if (x == a || x == b) continue;
      w[a][x] += w[b][x];
      w[x][a] += w[x][b];
    }
    vertices.erase(vertices.begin() + last);
  }
  return best;
}

}  // namespace pw::apps
