// (1+ε)-approximate minimum cut (Corollary 1.4), after Ghaffari–Haeupler
// [15] §5.2: Karger-style random tree packing. Each trial perturbs edge
// weights (exponential variables with rate proportional to the weight, so
// heavy edges look short), computes a distributed MST with Borůvka-over-PA,
// and scores the n-1 single-tree-edge cuts; across O(log n · 1/ε) trials
// the best single-edge tree cut is a (1+ε)-approximate min cut w.h.p.
//
// The MST of every trial runs entirely on the engine. Scoring the tree-edge
// cuts stands in for [15]'s PA-based sketching: the values are computed
// from the tree structure and charged as the O(log^2 n) tree-aggregation
// passes the sketches cost (DESIGN.md §2/§4 document the substitution).
#pragma once

#include "src/core/solver.hpp"

namespace pw::apps {

struct MinCutResult {
  std::vector<char> side;  // side[v] == 1 for nodes inside the cut's S
  std::int64_t cut_value = 0;
  int trials = 0;
  sim::PhaseStats stats;
};

MinCutResult approx_min_cut(sim::Engine& eng, double eps,
                            const core::PaSolverConfig& cfg = {});

// Exact reference (Stoer–Wagner, O(n^3)); for validation on small graphs.
std::int64_t stoer_wagner_min_cut(const graph::Graph& g);

// Weight of the cut induced by `side`.
std::int64_t cut_weight(const graph::Graph& g, const std::vector<char>& side);

}  // namespace pw::apps
