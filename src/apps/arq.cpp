#include "src/apps/arq.hpp"

namespace pw::apps {

namespace {
// Piggybacked per-arc frame: an arc carries at most one Msg per round
// (CONGEST), so DATA and ACK share it via tag bits.
constexpr std::uint16_t kData = 1;  // msg.a carries the token
constexpr std::uint16_t kAck = 2;
}  // namespace

ArqResult arq_flood(sim::Engine& eng, int root, std::uint64_t token,
                    const ArqConfig& cfg) {
  const graph::Graph& g = eng.graph();
  PW_CHECK(root >= 0 && root < g.n());
  PW_CHECK(token != ArqResult::kNoToken);
  PW_CHECK(cfg.rto >= 1);

  ArqResult res;
  res.token.assign(static_cast<std::size_t>(g.n()), ArqResult::kNoToken);
  const auto arcs = static_cast<std::size_t>(g.num_arcs());
  // All per-arc state is owned by the arc's SENDER, all per-node state by the
  // node itself, so the callback satisfies the §7 shard contract unchanged.
  std::vector<char> pending(arcs, 0);    // DATA unacknowledged on this arc
  std::vector<char> ack_due(arcs, 0);    // DATA arrived this round: ACK it
  std::vector<std::uint8_t> cooldown(arcs, 0);  // rounds to next retransmit
  std::vector<std::uint32_t> sends(arcs, 0);
  std::vector<int> pending_count(static_cast<std::size_t>(g.n()), 0);

  // The root starts informed with every port unacknowledged; everyone else
  // joins when the first DATA reaches them.
  res.token[static_cast<std::size_t>(root)] = token;
  for (int p = 0; p < g.degree(root); ++p)
    pending[static_cast<std::size_t>(g.arc_id(root, p))] = 1;
  pending_count[static_cast<std::size_t>(root)] = g.degree(root);
  eng.wake(root);

  const sim::Snapshot before = eng.snap();
  res.executed_rounds = eng.run(
      [&](int v) {
        const std::size_t sv = static_cast<std::size_t>(v);
        const int abase = g.arc_id(v, 0);
        const int deg = g.degree(v);
        bool adopted = false;
        for (const sim::Incoming& in : eng.inbox(v)) {
          const std::size_t arc = static_cast<std::size_t>(abase + in.port);
          if ((in.msg.tag & kData) != 0) {
            ack_due[arc] = 1;  // always re-ACK: the previous ACK may be lost
            if (res.token[sv] == ArqResult::kNoToken) {
              res.token[sv] = in.msg.a;
              adopted = true;
            }
          }
          if ((in.msg.tag & kAck) != 0 && pending[arc] != 0) {
            pending[arc] = 0;
            --pending_count[sv];
          }
        }
        if (adopted) {
          // Forward everywhere except the ports whose DATA just arrived —
          // those senders provably hold the token already.
          for (int p = 0; p < deg; ++p) {
            const std::size_t arc = static_cast<std::size_t>(abase + p);
            if (ack_due[arc] == 0) {
              pending[arc] = 1;
              cooldown[arc] = 0;
              ++pending_count[sv];
            }
          }
        }
        for (int p = 0; p < deg; ++p) {
          const std::size_t arc = static_cast<std::size_t>(abase + p);
          std::uint16_t tag = 0;
          if (ack_due[arc] != 0) {
            ack_due[arc] = 0;
            tag |= kAck;
          }
          if (pending[arc] != 0) {
            if (cooldown[arc] > 0) --cooldown[arc];
            if (cooldown[arc] == 0) {
              // (Re)transmit and restart the RTO clock. With rto == 2 and no
              // faults the ACK lands exactly when the clock hits zero again,
              // so the fault-free run never retransmits.
              tag |= kData;
              ++sends[arc];
              cooldown[arc] = static_cast<std::uint8_t>(cfg.rto);
            }
          }
          if (tag != 0) eng.send(v, p, sim::Msg{tag, res.token[sv], 0, 0});
        }
        if (pending_count[sv] > 0) eng.wake(v);
      },
      cfg.max_rounds);
  res.stats = eng.since(before);

  bool informed = true;
  for (const std::uint64_t t : res.token)
    informed = informed && t != ArqResult::kNoToken;
  std::uint64_t outstanding = 0;
  for (const int c : pending_count)
    outstanding += static_cast<std::uint64_t>(c);
  res.completed = informed && outstanding == 0;
  for (const std::uint32_t s : sends) {
    res.data_sends += s;
    if (s > 0) res.retransmissions += s - 1;
  }
  // A budget-terminated run (never-ending crash span, drop_prob == 1) leaves
  // wakes or delayed traffic behind; hand the engine back quiescent.
  if (!eng.idle()) eng.drain();
  return res;
}

void validate_arq(const graph::Graph& g, const ArqResult& r,
                  std::uint64_t token) {
  PW_CHECK_MSG(r.completed, "ARQ flood did not complete");
  PW_CHECK(r.token.size() == static_cast<std::size_t>(g.n()));
  for (int v = 0; v < g.n(); ++v)
    PW_CHECK_MSG(r.token[static_cast<std::size_t>(v)] == token,
                 "node %d finished without the root token", v);
}

}  // namespace pw::apps
