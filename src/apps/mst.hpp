// Distributed MST via Borůvka over Part-Wise Aggregation (Corollary 1.3).
//
// Every node starts as its own fragment. Each of the O(log n) Borůvka phases
// runs two PA instances on the fragment partition:
//   1. min-outgoing-edge: f = min over packed (weight, edge) keys, where
//      each node contributes its lightest edge leaving the fragment — the
//      textbook PA instance the paper names in the corollary's proof;
//   2. relabel: after fragments merge along the selected edges, f = min over
//      fragment ids tells every node its merged fragment's new id (and
//      leader), restoring the "known leader" invariant for the next phase.
// One announcement round per phase refreshes each node's knowledge of its
// neighbors' fragments (O(m) messages).
//
// MST is "solved" in the paper's sense: every node knows which of its
// incident edges are MST edges. The returned edge set is global bookkeeping
// of exactly that distributed knowledge.
#pragma once

#include "src/core/solver.hpp"

namespace pw::apps {

struct MstResult {
  std::vector<char> in_mst;  // indexed by edge id
  std::int64_t total_weight = 0;
  int phases = 0;
  sim::PhaseStats stats;        // everything, including PA structure builds
  sim::PhaseStats select_stats; // the min-outgoing-edge PA calls only
};

// Runs Borůvka-over-PA on the engine's (connected, weighted) graph.
// Weights must fit in 31 bits (they are packed with edge ids into one
// O(log n)-bit aggregate).
MstResult boruvka_mst(sim::Engine& eng, const core::PaSolverConfig& cfg = {});

// GHS-style baseline (Gallager–Humblet–Spira [12] as refined by the
// pre-[35] message-optimal literature): fragments coordinate exclusively
// over their own fragment-tree edges — convergecast the minimum outgoing
// edge up the fragment tree, broadcast the decision back down. Message
// complexity stays Õ(m), but each phase costs the largest fragment-tree
// DIAMETER in rounds, i.e. Θ(n) on low-diameter graphs with long fragments:
// the round-suboptimal side of the trade-off the paper closes.
MstResult ghs_style_mst(sim::Engine& eng, std::uint64_t seed = 1);

// Centralized references.
std::int64_t kruskal_mst_weight(const graph::Graph& g);
// Kruskal with the same (weight, edge id) tie-breaking as the distributed
// algorithm; with it the MST is unique, so edge sets are comparable.
std::vector<char> kruskal_mst_edges(const graph::Graph& g);

// Checks that `in_mst` forms a spanning tree of g.
void validate_spanning_tree(const graph::Graph& g, const std::vector<char>& in_mst);

}  // namespace pw::apps
