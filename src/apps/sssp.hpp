// Approximate single-source shortest paths (Corollary 1.5), in the style of
// Haeupler–Li [18].
//
// The engine of [18] is a low-diameter-decomposition ladder in which
// weighted BFS waves must traverse contracted zero-weight components "in a
// single round" — which is exactly a PA call. This module implements the
// scaled variant of that idea:
//
//   for each distance scale s (geometric ladder):
//     * edges with w * h <= s ("light at s", h = ceil(1/beta)) are
//       contracted: their components are labelled and measured with PA
//       (Algorithm 9 + two aggregates);
//     * distance estimates hop across a component in one PA call, paying a
//       certified upper-bound surcharge of 2 * |C| * ceil(s/h) (a spanning
//       walk of the component's light edges);
//     * heavy edges relax pointwise for h rounds.
//
// Estimates never drop below the true distance (every update follows a real
// walk), and the beta knob trades approximation for rounds/messages exactly
// as in Corollary 1.5: smaller beta means more scales and relaxation rounds
// (Õ(1/beta) factor) but tighter stretch. Measured stretch against Dijkstra
// is reported by the benchmark harness.
#pragma once

#include "src/core/solver.hpp"

namespace pw::apps {

struct SsspResult {
  std::vector<std::int64_t> dist;  // upper bounds; dist[source] == 0
  int scales = 0;
  sim::PhaseStats stats;        // everything
  sim::PhaseStats relax_stats;  // the heavy-edge relaxation alone — the
                                // Õ(1/beta) term of the corollary
};

SsspResult approx_sssp(sim::Engine& eng, int source, double beta,
                       const core::PaSolverConfig& cfg = {});

// Largest and mean stretch of `approx` against exact distances.
struct Stretch {
  double max_stretch = 1.0;
  double mean_stretch = 1.0;
};
Stretch measure_stretch(const std::vector<std::int64_t>& exact,
                        const std::vector<std::int64_t>& approx);

}  // namespace pw::apps
