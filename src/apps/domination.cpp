#include "src/apps/domination.hpp"

#include <algorithm>
#include <queue>

#include "src/apps/verification.hpp"
#include "src/graph/dsu.hpp"
#include "src/graph/properties.hpp"
#include "src/shortcut/subpart_det.hpp"
#include "src/tree/bfs.hpp"
#include "src/tree/leader.hpp"

namespace pw::apps {

KDomResult k_dominating_set(sim::Engine& eng, int k,
                            const core::PaSolverConfig& cfg) {
  PW_CHECK(k >= 1);
  const auto& g = eng.graph();
  const auto snap = eng.snap();

  // Generalized sub-part division with completion threshold k/6 (Appendix
  // A's construction): star joinings until every sub-part holds >= ceil(k/6)
  // nodes or spans the graph.
  const int threshold = std::max(1, (k + 5) / 6);
  graph::Partition whole = graph::whole_partition(g);
  (void)cfg;
  const auto div =
      shortcut::build_subpart_division_det(eng, whole, threshold, nullptr);

  KDomResult out;
  out.dominators = div.rep_of_subpart;
  out.stats = eng.since(snap);
  return out;
}

std::vector<std::vector<std::uint64_t>> component_topk(
    sim::Engine& eng, const std::vector<char>& in_subgraph,
    const std::vector<std::uint64_t>& values, int howmany,
    const core::PaSolverConfig& cfg) {
  const auto& g = eng.graph();
  const auto labels = h_component_labels(eng, in_subgraph, cfg);

  // Partition with the elected labels as leaders.
  graph::Partition p = graph::Partition::from_labels(labels.label);
  p.leader.assign(p.num_parts, -1);
  for (int v = 0; v < g.n(); ++v)
    if (labels.label[v] == v) p.leader[p.part_of[v]] = v;
  core::PaSolver solver(eng, cfg);
  solver.set_partition(p);

  // `howmany` rounds of component max over packed (value, node) pairs,
  // excluding nodes already selected.
  std::vector<char> taken(g.n(), 0);
  std::vector<std::vector<std::uint64_t>> per_part(p.num_parts);
  for (int round = 0; round < howmany; ++round) {
    std::vector<std::uint64_t> contrib(g.n(), 0);
    for (int v = 0; v < g.n(); ++v)
      if (!taken[v])
        contrib[v] = agg::pack_pair(values[v] + 1, static_cast<std::uint64_t>(v));
    const auto res = solver.aggregate(agg::max(), contrib);
    for (int i = 0; i < p.num_parts; ++i) {
      if (res.part_value[i] == 0) continue;  // component exhausted
      per_part[i].push_back(agg::pack_pair(agg::pair_key(res.part_value[i]) - 1,
                                           agg::pair_value(res.part_value[i])));
      taken[agg::pair_value(res.part_value[i])] = 1;
    }
  }

  std::vector<std::vector<std::uint64_t>> out(g.n());
  for (int v = 0; v < g.n(); ++v) out[v] = per_part[p.part_of[v]];
  return out;
}

std::vector<std::uint64_t> component_sum(sim::Engine& eng,
                                         const std::vector<char>& in_subgraph,
                                         const std::vector<std::uint64_t>& values,
                                         const core::PaSolverConfig& cfg) {
  const auto& g = eng.graph();
  const auto labels = h_component_labels(eng, in_subgraph, cfg);
  graph::Partition p = graph::Partition::from_labels(labels.label);
  p.leader.assign(p.num_parts, -1);
  for (int v = 0; v < g.n(); ++v)
    if (labels.label[v] == v) p.leader[p.part_of[v]] = v;
  core::PaSolver solver(eng, cfg);
  solver.set_partition(p);
  return solver.aggregate(agg::sum(), values).node_value;
}

CdsResult connected_dominating_set(sim::Engine& eng,
                                   const core::PaSolverConfig& cfg) {
  const auto& g = eng.graph();
  const auto snap = eng.snap();
  PW_CHECK(g.n() >= 2);

  // Leader election + BFS tree; internal nodes form a CDS.
  int root;
  if (cfg.mode == core::PaMode::Deterministic) {
    root = tree::elect_leader_det(eng).leader;
  } else {
    Rng rng(cfg.seed);
    root = tree::elect_leader_random(eng, rng).leader;
  }
  const auto t = tree::build_bfs_tree(eng, root);

  CdsResult out;
  out.in_cds.assign(g.n(), 0);
  for (int v = 0; v < g.n(); ++v)
    if (!t.children_ports[v].empty()) out.in_cds[v] = 1;
  // A two-node graph: the root alone (its child is a leaf).
  if (std::count(out.in_cds.begin(), out.in_cds.end(), 1) == 0)
    out.in_cds[root] = 1;
  out.size = static_cast<int>(
      std::count(out.in_cds.begin(), out.in_cds.end(), 1));
  out.stats = eng.since(snap);
  return out;
}

std::vector<char> greedy_cds_reference(const graph::Graph& g) {
  // Greedy dominating set, then connect via BFS-tree paths.
  std::vector<char> dominated(g.n(), 0), in_set(g.n(), 0);
  int covered = 0;
  while (covered < g.n()) {
    int best = -1, best_gain = -1;
    for (int v = 0; v < g.n(); ++v) {
      if (in_set[v]) continue;
      int gain = dominated[v] ? 0 : 1;
      for (const auto& arc : g.arcs(v)) gain += dominated[arc.to] ? 0 : 1;
      if (gain > best_gain) {
        best_gain = gain;
        best = v;
      }
    }
    in_set[best] = 1;
    if (!dominated[best]) {
      dominated[best] = 1;
      ++covered;
    }
    for (const auto& arc : g.arcs(best))
      if (!dominated[arc.to]) {
        dominated[arc.to] = 1;
        ++covered;
      }
  }
  // Connect: walk BFS-tree paths between chosen nodes.
  const auto dist = graph::bfs_distances(g, 0);
  std::vector<int> parent(g.n(), -1);
  // Recover a BFS parent structure.
  for (int v = 0; v < g.n(); ++v)
    for (const auto& arc : g.arcs(v))
      if (dist[arc.to] == dist[v] - 1 && parent[v] < 0) parent[v] = arc.to;
  for (int v = 0; v < g.n(); ++v) {
    if (!in_set[v]) continue;
    int cur = v;
    while (parent[cur] >= 0 && !in_set[parent[cur]]) {
      in_set[parent[cur]] = 1;
      cur = parent[cur];
    }
  }
  return in_set;
}

void validate_k_domination(const graph::Graph& g, const std::vector<int>& dom,
                           int k) {
  PW_CHECK(!dom.empty());
  // Multi-source BFS from the dominators.
  std::vector<int> dist(g.n(), -1);
  std::vector<int> frontier;
  for (int v : dom) {
    dist[v] = 0;
    frontier.push_back(v);
  }
  int d = 0;
  while (!frontier.empty() && d < k) {
    ++d;
    std::vector<int> next;
    for (int v : frontier)
      for (const auto& arc : g.arcs(v))
        if (dist[arc.to] < 0) {
          dist[arc.to] = d;
          next.push_back(arc.to);
        }
    frontier.swap(next);
  }
  for (int v = 0; v < g.n(); ++v)
    PW_CHECK_MSG(dist[v] >= 0, "node %d not dominated within k=%d", v, k);
}

void validate_cds(const graph::Graph& g, const std::vector<char>& in_cds) {
  // Domination.
  for (int v = 0; v < g.n(); ++v) {
    bool ok = in_cds[v] != 0;
    for (const auto& arc : g.arcs(v)) ok = ok || in_cds[arc.to];
    PW_CHECK_MSG(ok, "node %d undominated", v);
  }
  // Connectivity of the induced CDS subgraph.
  graph::Dsu dsu(g.n());
  for (const auto& e : g.edges())
    if (in_cds[e.u] && in_cds[e.v]) dsu.unite(e.u, e.v);
  int rep = -1;
  for (int v = 0; v < g.n(); ++v) {
    if (!in_cds[v]) continue;
    if (rep < 0) rep = v;
    PW_CHECK_MSG(dsu.same(rep, v), "CDS disconnected at %d", v);
  }
}

}  // namespace pw::apps
