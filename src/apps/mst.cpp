#include "src/apps/mst.hpp"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "src/graph/dsu.hpp"
#include "src/tree/bfs.hpp"
#include "src/tree/treeops.hpp"

namespace pw::apps {

namespace {

enum : std::uint16_t { kFragmentId = 21 };

constexpr std::uint64_t kNoEdge = ~0ULL;

std::uint64_t pack_edge(graph::Weight w, int edge_id) {
  PW_CHECK(w >= 0 && w < (1LL << 31));
  return (static_cast<std::uint64_t>(w) << 32) |
         static_cast<std::uint32_t>(edge_id);
}

// One announcement round: every node tells every neighbor its fragment id.
void announce_fragments(sim::Engine& eng, const std::vector<int>& fragment_of,
                        std::vector<int>& neighbor_fragment) {
  const auto& g = eng.graph();
  neighbor_fragment.assign(g.num_arcs(), -1);
  for (int v = 0; v < g.n(); ++v) eng.wake(v);
  std::vector<char> sent(g.n(), 0);
  eng.run([&](int v) {
    for (const auto& in : eng.inbox(v))
      if (in.msg.tag == kFragmentId)
        neighbor_fragment[g.arc_id(v, in.port)] = static_cast<int>(in.msg.a);
    if (sent[v]) return;
    sent[v] = 1;
    for (int port = 0; port < g.degree(v); ++port)
      eng.send(v, port,
               sim::Msg{kFragmentId, static_cast<std::uint64_t>(fragment_of[v]),
                        0, 0});
  });
}

}  // namespace

MstResult boruvka_mst(sim::Engine& eng, const core::PaSolverConfig& cfg) {
  const auto& g = eng.graph();
  const auto snap = eng.snap();
  MstResult out;
  out.in_mst.assign(g.m(), 0);

  core::PaSolver solver(eng, cfg);

  // Fragment state: labels and, per fragment, its leader node.
  std::vector<int> fragment_of(g.n());
  std::iota(fragment_of.begin(), fragment_of.end(), 0);
  std::vector<int> neighbor_fragment;

  const int max_phases = 2 * static_cast<int>(std::log2(std::max(2, g.n()))) + 4;
  for (int phase = 0;; ++phase) {
    PW_CHECK_MSG(phase < max_phases, "Boruvka failed to converge");

    announce_fragments(eng, fragment_of, neighbor_fragment);

    // Build the PA partition for the current fragments.
    graph::Partition part = graph::Partition::from_labels(fragment_of);
    part.elect_min_id_leaders();
    solver.set_partition(part);

    // PA #1: lightest outgoing edge per fragment.
    std::vector<std::uint64_t> candidate(g.n(), kNoEdge);
    for (int v = 0; v < g.n(); ++v)
      for (int port = 0; port < g.degree(v); ++port) {
        if (neighbor_fragment[g.arc_id(v, port)] == fragment_of[v]) continue;
        const auto& arc = g.arcs(v)[port];
        candidate[v] = std::min(candidate[v],
                                pack_edge(g.edge(arc.edge).w, arc.edge));
      }
    const auto sel_snap = eng.snap();
    const auto chosen = solver.aggregate(agg::min(), candidate);
    out.select_stats += eng.since(sel_snap);

    // Mark selected edges; a node marks the edge when it is an endpoint.
    bool any = false;
    for (int i = 0; i < part.num_parts; ++i) {
      if (chosen.part_value[i] == kNoEdge) continue;
      any = true;
      const int e = static_cast<int>(chosen.part_value[i] & 0xffffffffULL);
      out.in_mst[e] = 1;
    }
    if (!any) break;  // no fragment has an outgoing edge: spanning tree done

    // Fragments merge along selected edges. The DSU mirrors what nodes know
    // distributedly (each endpoint marked its selected edges); PA #2 then
    // propagates the merged fragment's id (min old fragment id) to everyone.
    graph::Dsu dsu(part.num_parts);
    for (int e = 0; e < g.m(); ++e)
      if (out.in_mst[e])
        dsu.unite(part.part_of[g.edge(e).u], part.part_of[g.edge(e).v]);
    std::vector<int> merged_label(g.n());
    for (int v = 0; v < g.n(); ++v) merged_label[v] = dsu.find(part.part_of[v]);
    graph::Partition merged = graph::Partition::from_labels(merged_label);
    merged.elect_min_id_leaders();
    solver.set_partition(merged);

    std::vector<std::uint64_t> own_id(g.n());
    for (int v = 0; v < g.n(); ++v)
      own_id[v] = static_cast<std::uint64_t>(fragment_of[v]);
    const auto relabeled = solver.aggregate(agg::min(), own_id);
    for (int v = 0; v < g.n(); ++v)
      fragment_of[v] = static_cast<int>(relabeled.node_value[v]);
    out.phases = phase + 1;
  }

  for (int e = 0; e < g.m(); ++e)
    if (out.in_mst[e]) out.total_weight += g.edge(e).w;
  out.stats = eng.since(snap);
  return out;
}

MstResult ghs_style_mst(sim::Engine& eng, std::uint64_t seed) {
  (void)seed;
  const auto& g = eng.graph();
  const auto snap = eng.snap();
  MstResult out;
  out.in_mst.assign(g.m(), 0);

  std::vector<int> fragment_of(g.n());
  std::iota(fragment_of.begin(), fragment_of.end(), 0);
  std::vector<int> neighbor_fragment;

  const int max_phases = 2 * static_cast<int>(std::log2(std::max(2, g.n()))) + 4;
  for (int phase = 0;; ++phase) {
    PW_CHECK_MSG(phase < max_phases, "GHS-style MST failed to converge");
    announce_fragments(eng, fragment_of, neighbor_fragment);

    // Root each fragment's TREE (selected edges only) at its minimum id.
    std::vector<int> leader_of(g.n(), -1);  // by fragment label
    for (int v = g.n() - 1; v >= 0; --v) leader_of[fragment_of[v]] = v;
    std::vector<int> roots;
    for (int v = 0; v < g.n(); ++v)
      if (leader_of[fragment_of[v]] == v) roots.push_back(v);
    const auto forest = tree::build_restricted_bfs(
        eng, roots, [&](int v, int port) {
          return out.in_mst[g.arcs(v)[port].edge] != 0;
        });

    // Convergecast the min outgoing edge along fragment-tree edges only,
    // then broadcast the choice back down.
    std::vector<std::uint64_t> candidate(g.n(), kNoEdge);
    for (int v = 0; v < g.n(); ++v)
      for (int port = 0; port < g.degree(v); ++port) {
        if (neighbor_fragment[g.arc_id(v, port)] == fragment_of[v]) continue;
        const auto& arc = g.arcs(v)[port];
        candidate[v] = std::min(candidate[v],
                                pack_edge(g.edge(arc.edge).w, arc.edge));
      }
    const auto sel_snap = eng.snap();
    const auto mins = tree::forest_convergecast(eng, forest, agg::min(), candidate);
    std::vector<std::uint64_t> chosen(g.n(), kNoEdge);
    for (int r : roots) chosen[r] = mins[r];
    const auto decision = tree::forest_broadcast(eng, forest, chosen, kNoEdge);
    out.select_stats += eng.since(sel_snap);

    bool any = false;
    for (int r : roots) {
      if (chosen[r] == kNoEdge) continue;
      any = true;
      out.in_mst[chosen[r] & 0xffffffffULL] = 1;
    }
    (void)decision;
    if (!any) break;

    // Merge + relabel: new label = min old label, spread along the NEW
    // fragment trees (one more restricted BFS wave carrying the label).
    graph::Dsu dsu(g.n());
    for (int e = 0; e < g.m(); ++e)
      if (out.in_mst[e]) dsu.unite(g.edge(e).u, g.edge(e).v);
    std::vector<int> new_roots;
    for (int v = 0; v < g.n(); ++v)
      if (dsu.find(v) == v) new_roots.push_back(v);
    // The wave itself is the relabel broadcast (O(fragment diameter) rounds,
    // O(n) messages).
    const auto relabel_forest = tree::build_restricted_bfs(
        eng, new_roots, [&](int v, int port) {
          return out.in_mst[g.arcs(v)[port].edge] != 0;
        });
    for (int v = 0; v < g.n(); ++v) {
      int cur = v;
      while (relabel_forest.parent[cur] >= 0) cur = relabel_forest.parent[cur];
      fragment_of[v] = cur;
    }
    out.phases = phase + 1;
  }

  for (int e = 0; e < g.m(); ++e)
    if (out.in_mst[e]) out.total_weight += g.edge(e).w;
  out.stats = eng.since(snap);
  return out;
}

std::int64_t kruskal_mst_weight(const graph::Graph& g) {
  std::int64_t total = 0;
  const auto edges = kruskal_mst_edges(g);
  for (int e = 0; e < g.m(); ++e)
    if (edges[e]) total += g.edge(e).w;
  return total;
}

std::vector<char> kruskal_mst_edges(const graph::Graph& g) {
  std::vector<int> order(g.m());
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(), [&](int a, int b) {
    if (g.edge(a).w != g.edge(b).w) return g.edge(a).w < g.edge(b).w;
    return a < b;  // same tie-break as pack_edge
  });
  graph::Dsu dsu(g.n());
  std::vector<char> in_mst(g.m(), 0);
  for (int e : order)
    if (dsu.unite(g.edge(e).u, g.edge(e).v)) in_mst[e] = 1;
  return in_mst;
}

void validate_spanning_tree(const graph::Graph& g, const std::vector<char>& in_mst) {
  graph::Dsu dsu(g.n());
  int count = 0;
  for (int e = 0; e < g.m(); ++e) {
    if (!in_mst[e]) continue;
    ++count;
    PW_CHECK_MSG(dsu.unite(g.edge(e).u, g.edge(e).v), "cycle in MST at edge %d", e);
  }
  PW_CHECK_MSG(count == g.n() - 1, "MST has %d edges, expected %d", count,
               g.n() - 1);
}

}  // namespace pw::apps
