// Graph verification problems (Corollary A.1, after Das Sarma et al. [5]).
//
// The workhorse is Thurimella's connected-component labelling [41]: given a
// subgraph H of G (every node knows which of its incident edges are in H),
// label every node with the minimum node id of its H-component. As the
// paper observes, this is precisely a PA instance whose parts are the
// H-components — and since components start without known leaders, it is
// exactly what Algorithm 9 (pa_noleader) solves.
//
// On top of the labelling primitive:
//   verify_connectivity   — H spans G and connects it (all labels equal)
//   verify_spanning_tree  — connectivity plus |H| = n - 1
//   verify_cut            — G minus H is disconnected
//   verify_s_t_connectivity — s and t share an H-component
// all in Õ(D + sqrt(n)) rounds and Õ(m) messages, every node learning the
// verdict.
#pragma once

#include "src/core/noleader.hpp"

namespace pw::apps {

struct LabelsResult {
  std::vector<int> label;  // min node id of v's H-component
  int num_components = 0;
  sim::PhaseStats stats;
};

// in_subgraph is indexed by edge id.
LabelsResult h_component_labels(sim::Engine& eng,
                                const std::vector<char>& in_subgraph,
                                const core::PaSolverConfig& cfg = {});

struct Verdict {
  bool ok = false;
  sim::PhaseStats stats;
};

Verdict verify_connectivity(sim::Engine& eng,
                            const std::vector<char>& in_subgraph,
                            const core::PaSolverConfig& cfg = {});

Verdict verify_spanning_tree(sim::Engine& eng,
                             const std::vector<char>& in_subgraph,
                             const core::PaSolverConfig& cfg = {});

Verdict verify_cut(sim::Engine& eng, const std::vector<char>& in_subgraph,
                   const core::PaSolverConfig& cfg = {});

Verdict verify_s_t_connectivity(sim::Engine& eng,
                                const std::vector<char>& in_subgraph, int s,
                                int t, const core::PaSolverConfig& cfg = {});

// Bipartiteness of H (footnote 4 of the paper): root a spanning tree of
// every H-component at its elected leader, 2-color by tree depth parity,
// and check every H edge joins opposite colors (one announcement round +
// one PA to spread any violation). The tree-building wave runs over H
// edges, so its round count is the H-component diameter — the rooted-tree
// byproduct Thurimella's algorithm would maintain for free (substitution
// noted in DESIGN.md).
Verdict verify_bipartiteness(sim::Engine& eng,
                             const std::vector<char>& in_subgraph,
                             const core::PaSolverConfig& cfg = {});

}  // namespace pw::apps
