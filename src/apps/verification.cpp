#include "src/apps/verification.hpp"

#include <algorithm>

#include "src/graph/dsu.hpp"
#include "src/tree/bfs.hpp"

namespace pw::apps {

namespace {

// PA over the whole graph as one part (leader elected by the solver's
// pipeline): every node learns the aggregate.
std::uint64_t whole_graph_agg(core::PaSolver& solver, const Agg& agg,
                              const std::vector<std::uint64_t>& values) {
  const auto res = solver.aggregate(agg, values);
  return res.part_value[0];
}

}  // namespace

LabelsResult h_component_labels(sim::Engine& eng,
                                const std::vector<char>& in_subgraph,
                                const core::PaSolverConfig& cfg) {
  const auto& g = eng.graph();
  PW_CHECK(static_cast<int>(in_subgraph.size()) == g.m());

  // The PA partition: H-components. Each node knows its incident H edges,
  // which is the distributed knowledge this DSU mirrors.
  graph::Dsu dsu(g.n());
  for (int e = 0; e < g.m(); ++e)
    if (in_subgraph[e]) dsu.unite(g.edge(e).u, g.edge(e).v);
  std::vector<int> raw(g.n());
  for (int v = 0; v < g.n(); ++v) raw[v] = dsu.find(v);
  graph::Partition p = graph::Partition::from_labels(raw);

  // Components have no leaders: Algorithm 9 does the labelling.
  std::vector<std::uint64_t> ids(g.n());
  for (int v = 0; v < g.n(); ++v) ids[v] = static_cast<std::uint64_t>(v);
  const auto res = core::pa_noleader(eng, p, agg::min(), ids, cfg);

  LabelsResult out;
  out.num_components = p.num_parts;
  out.label.resize(g.n());
  for (int v = 0; v < g.n(); ++v)
    out.label[v] = static_cast<int>(res.node_value[v]);
  out.stats = res.stats;
  return out;
}

Verdict verify_connectivity(sim::Engine& eng,
                            const std::vector<char>& in_subgraph,
                            const core::PaSolverConfig& cfg) {
  const auto snap = eng.snap();
  const auto labels = h_component_labels(eng, in_subgraph, cfg);

  // All labels equal <=> min == max over labels, checked with one PA over
  // the whole graph so every node learns the verdict.
  core::PaSolver solver(eng, cfg);
  auto whole = graph::whole_partition(eng.graph());
  solver.set_partition(whole);
  std::vector<std::uint64_t> lab(labels.label.begin(), labels.label.end());
  const auto lo = whole_graph_agg(solver, agg::min(), lab);
  const auto hi = whole_graph_agg(solver, agg::max(), lab);

  Verdict out;
  out.ok = lo == hi;
  out.stats = eng.since(snap);
  return out;
}

Verdict verify_spanning_tree(sim::Engine& eng,
                             const std::vector<char>& in_subgraph,
                             const core::PaSolverConfig& cfg) {
  const auto& g = eng.graph();
  const auto snap = eng.snap();
  Verdict conn = verify_connectivity(eng, in_subgraph, cfg);

  // Edge count: every node contributes its incident H-degree; the sum
  // double-counts, so H is a tree iff it equals 2(n-1) given connectivity.
  core::PaSolver solver(eng, cfg);
  auto whole = graph::whole_partition(g);
  solver.set_partition(whole);
  std::vector<std::uint64_t> hdeg(g.n(), 0);
  for (int e = 0; e < g.m(); ++e)
    if (in_subgraph[e]) {
      ++hdeg[g.edge(e).u];
      ++hdeg[g.edge(e).v];
    }
  const auto total = whole_graph_agg(solver, agg::sum(), hdeg);

  Verdict out;
  out.ok = conn.ok && total == 2ULL * (g.n() - 1);
  out.stats = eng.since(snap);
  return out;
}

Verdict verify_cut(sim::Engine& eng, const std::vector<char>& in_subgraph,
                   const core::PaSolverConfig& cfg) {
  const auto snap = eng.snap();
  // H is an (edge) cut iff G - H is disconnected.
  std::vector<char> complement(in_subgraph.size());
  for (std::size_t e = 0; e < in_subgraph.size(); ++e)
    complement[e] = in_subgraph[e] ? 0 : 1;
  Verdict rest = verify_connectivity(eng, complement, cfg);
  Verdict out;
  out.ok = !rest.ok;
  out.stats = eng.since(snap);
  return out;
}

Verdict verify_bipartiteness(sim::Engine& eng,
                             const std::vector<char>& in_subgraph,
                             const core::PaSolverConfig& cfg) {
  const auto& g = eng.graph();
  const auto snap = eng.snap();
  const auto labels = h_component_labels(eng, in_subgraph, cfg);

  // Rooted spanning tree of each H-component (roots = elected labels),
  // built by a wave over H edges only.
  std::vector<int> roots;
  for (int v = 0; v < g.n(); ++v)
    if (labels.label[v] == v) roots.push_back(v);
  const auto forest = tree::build_restricted_bfs(
      eng, roots, [&](int v, int port) {
        return in_subgraph[g.arcs(v)[port].edge] != 0;
      });

  // One announcement round: every node shouts its depth parity; every node
  // checks its H edges for a same-parity neighbor.
  std::vector<char> violated(g.n(), 0);
  {
    std::vector<char> sent(g.n(), 0);
    for (int v = 0; v < g.n(); ++v) eng.wake(v);
    eng.run([&](int v) {
      for (const auto& in : eng.inbox(v)) {
        if (in.msg.tag != 71) continue;
        const int port = in.port;
        if (!in_subgraph[g.arcs(v)[port].edge]) continue;
        if ((forest.depth[v] & 1) == static_cast<int>(in.msg.a)) violated[v] = 1;
      }
      if (sent[v]) return;
      sent[v] = 1;
      for (int port = 0; port < g.degree(v); ++port)
        eng.send(v, port,
                 sim::Msg{71, static_cast<std::uint64_t>(forest.depth[v] & 1),
                          0, 0});
    });
  }

  // Spread any violation to everyone with one whole-graph PA (max).
  core::PaSolver solver(eng, cfg);
  auto whole = graph::whole_partition(g);
  solver.set_partition(whole);
  std::vector<std::uint64_t> flags(g.n(), 0);
  for (int v = 0; v < g.n(); ++v) flags[v] = violated[v];
  const auto any = whole_graph_agg(solver, agg::max(), flags);

  Verdict out;
  out.ok = any == 0;
  out.stats = eng.since(snap);
  return out;
}

Verdict verify_s_t_connectivity(sim::Engine& eng,
                                const std::vector<char>& in_subgraph, int s,
                                int t, const core::PaSolverConfig& cfg) {
  const auto snap = eng.snap();
  const auto labels = h_component_labels(eng, in_subgraph, cfg);

  // Broadcast s's label (min over a one-hot vector) so t — and everyone
  // else — can compare locally.
  core::PaSolver solver(eng, cfg);
  auto whole = graph::whole_partition(eng.graph());
  solver.set_partition(whole);
  std::vector<std::uint64_t> onehot(eng.graph().n(), ~0ULL);
  onehot[s] = static_cast<std::uint64_t>(labels.label[s]);
  const auto s_label = whole_graph_agg(solver, agg::min(), onehot);

  Verdict out;
  out.ok = s_label == static_cast<std::uint64_t>(labels.label[t]);
  out.stats = eng.since(snap);
  return out;
}

}  // namespace pw::apps
