// Domination problems: k-dominating sets (Corollary A.3) and connected
// dominating sets (Corollary A.2).
//
// k-dominating set: the paper's generalized sub-part division — merge
// sub-parts by star joinings, freezing them at ceil(k/6) nodes instead of
// D. Every frozen sub-part has Õ(k) tree diameter and at least k/6 nodes,
// so the representatives form a k-dominating set of size O(n/k).
//
// Connected dominating set: Ghaffari's O(log n)-approximation [14] reduces
// to two Thurimella-style component aggregates — (A) the k = O(1) largest
// values in a component and (B) component sums — both PA instances. This
// module supplies exactly those primitives (component_topk, component_sum)
// plus a structural CDS built from the internal nodes of a distributed BFS
// tree; the greedy centralized reference quantifies its quality in the
// benchmarks (see DESIGN.md §2 for the substitution note).
#pragma once

#include "src/core/solver.hpp"

namespace pw::apps {

struct KDomResult {
  std::vector<int> dominators;
  sim::PhaseStats stats;
};

// Computes a k-dominating set of size O(n/k) in Õ(D + sqrt(n)) rounds.
KDomResult k_dominating_set(sim::Engine& eng, int k,
                            const core::PaSolverConfig& cfg = {});

// Largest `howmany` values (with their node ids) per H-component.
// Returns, for each node, the packed (value, node) pairs of its component
// in descending order. Runs `howmany` PA rounds.
std::vector<std::vector<std::uint64_t>> component_topk(
    sim::Engine& eng, const std::vector<char>& in_subgraph,
    const std::vector<std::uint64_t>& values, int howmany,
    const core::PaSolverConfig& cfg = {});

// Sum of values per H-component, delivered to every node.
std::vector<std::uint64_t> component_sum(sim::Engine& eng,
                                         const std::vector<char>& in_subgraph,
                                         const std::vector<std::uint64_t>& values,
                                         const core::PaSolverConfig& cfg = {});

struct CdsResult {
  std::vector<char> in_cds;
  int size = 0;
  sim::PhaseStats stats;
};

// Structural CDS: internal nodes of a distributed BFS tree.
CdsResult connected_dominating_set(sim::Engine& eng,
                                   const core::PaSolverConfig& cfg = {});

// Centralized greedy dominating-set-plus-connectors reference (for quality
// ratios in benchmarks).
std::vector<char> greedy_cds_reference(const graph::Graph& g);

// Validators.
void validate_k_domination(const graph::Graph& g, const std::vector<int>& dom,
                           int k);
void validate_cds(const graph::Graph& g, const std::vector<char>& in_cds);

}  // namespace pw::apps
