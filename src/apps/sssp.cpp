#include "src/apps/sssp.hpp"

#include <algorithm>
#include <cmath>

#include "src/apps/verification.hpp"
#include "src/graph/dsu.hpp"

namespace pw::apps {

namespace {

enum : std::uint16_t { kRelax = 61 };

constexpr std::int64_t kInf = (1LL << 62);

// Hop-limited synchronous relaxation: exactly `rounds` Bellman-Ford steps
// (one engine round each), so estimates improve along paths of at most
// `rounds` heavy hops — the hop budget h of the decomposition. A final
// receive-only round lands the last wave; anything still in flight beyond
// the budget is dropped (hop-limited semantics).
//
// Both phases are Engine::run callbacks (budget-limited), so the relaxation
// sweeps dispatch shard-parallel under ExecutionPolicy{k > 1}: the callback
// for v writes only est[v] / last_sent[v] and sends from v (DESIGN.md §7).
void relax_rounds(sim::Engine& eng, std::vector<std::int64_t>& est, int rounds) {
  const auto& g = eng.graph();
  std::vector<std::int64_t> last_sent(g.n(), kInf);
  for (int v = 0; v < g.n(); ++v)
    if (est[v] < kInf) eng.wake(v);

  auto receive = [&](int v) {
    for (const auto& in : eng.inbox(v)) {
      if (in.msg.tag != kRelax) continue;
      const std::int64_t through = static_cast<std::int64_t>(in.msg.a) +
                                   g.edge(g.arcs(v)[in.port].edge).w;
      est[v] = std::min(est[v], through);
    }
  };
  eng.run(
      [&](int v) {
        receive(v);
        if (est[v] >= last_sent[v]) return;
        last_sent[v] = est[v];
        for (int port = 0; port < g.degree(v); ++port)
          eng.send(v, port,
                   sim::Msg{kRelax, static_cast<std::uint64_t>(est[v]), 0, 0});
      },
      static_cast<std::uint64_t>(rounds));
  if (!eng.idle()) eng.run(receive, 1);  // land the last wave, send nothing
  eng.drain();
}

}  // namespace

SsspResult approx_sssp(sim::Engine& eng, int source, double beta,
                       const core::PaSolverConfig& cfg) {
  PW_CHECK(beta > 0 && beta <= 1);
  const auto& g = eng.graph();
  const auto snap = eng.snap();
  const int h = std::max(2, static_cast<int>(std::llround(1.0 / beta)));

  std::vector<std::int64_t> est(g.n(), kInf);
  est[source] = 0;

  std::int64_t wsum = 0;
  for (const auto& e : g.edges()) wsum += e.w;

  SsspResult out;
  for (std::int64_t s = 1; s <= 2 * std::max<std::int64_t>(1, wsum); s *= 2) {
    ++out.scales;
    // Light edges at this scale contract into components.
    std::vector<char> light(g.m(), 0);
    bool any_light = false;
    for (int e = 0; e < g.m(); ++e)
      if (g.edge(e).w * h <= s) {
        light[e] = 1;
        any_light = true;
      }

    if (any_light) {
      // PA: label light components (Algorithm 9), then per-component min
      // estimate and size; hop across each component with a certified
      // spanning-walk surcharge.
      const auto labels = h_component_labels(eng, light, cfg);
      graph::Partition p = graph::Partition::from_labels(labels.label);
      p.leader.assign(p.num_parts, -1);
      for (int v = 0; v < g.n(); ++v)
        if (labels.label[v] == v) p.leader[p.part_of[v]] = v;
      core::PaSolver solver(eng, cfg);
      solver.set_partition(p);

      std::vector<std::uint64_t> est_u(g.n());
      for (int v = 0; v < g.n(); ++v)
        est_u[v] = static_cast<std::uint64_t>(est[v]);
      const auto comp_min = solver.aggregate(agg::min(), est_u);
      std::vector<std::uint64_t> ones(g.n(), 1);
      const auto comp_size = solver.aggregate(agg::sum(), ones);

      const std::int64_t light_cap = (s + h - 1) / h;  // max light weight
      for (int v = 0; v < g.n(); ++v) {
        const auto lo = static_cast<std::int64_t>(comp_min.node_value[v]);
        if (lo >= kInf) continue;
        const auto size = static_cast<std::int64_t>(comp_size.node_value[v]);
        est[v] = std::min(est[v], lo + 2 * size * light_cap);
      }
    }

    // Heavy-edge (pointwise) relaxation: h rounds.
    const auto r0 = eng.snap();
    relax_rounds(eng, est, h);
    out.relax_stats += eng.since(r0);
  }
  // Final cleanup pass so small graphs converge exactly.
  {
    const auto r0 = eng.snap();
    relax_rounds(eng, est, 1);
    out.relax_stats += eng.since(r0);
  }

  out.dist = std::move(est);
  out.stats = eng.since(snap);
  return out;
}

Stretch measure_stretch(const std::vector<std::int64_t>& exact,
                        const std::vector<std::int64_t>& approx) {
  Stretch s;
  double sum = 0;
  int counted = 0;
  for (std::size_t v = 0; v < exact.size(); ++v) {
    if (exact[v] <= 0) continue;
    const double r =
        static_cast<double>(approx[v]) / static_cast<double>(exact[v]);
    s.max_stretch = std::max(s.max_stretch, r);
    sum += r;
    ++counted;
  }
  if (counted > 0) s.mean_stretch = sum / counted;
  return s;
}

}  // namespace pw::apps
