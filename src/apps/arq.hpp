// ARQ-style reliable flood: the chaos-plane degradation workload
// (DESIGN.md §9).
//
// The paper's algorithms assume the reliable synchronous CONGEST model; this
// workload is the counterpoint — a protocol built to SURVIVE the fault plane.
// A root floods a token through the graph under stop-and-wait ARQ per arc:
// every DATA is acknowledged, unacknowledged arcs retransmit on an RTO
// cooldown, ACKs piggyback on DATA so an arc never needs more than the one
// message per round CONGEST grants it. Against drop/dup/delay faults the
// flood still terminates with every node holding the root's token, paying
// for the chaos only in retransmissions and rounds — which bench_fault.cpp
// quantifies as a function of drop_prob. Against crash faults the protocol
// keeps retransmitting toward a down node (the fault plane sheds the
// traffic) and reaches it when it reboots, provided the outage ends.
//
// On a fault-free engine the schedule is exact: no spurious retransmissions
// (the default RTO equals the ACK round trip), so the run degrades to a
// plain flood plus one ACK per arc — the bench's drop_prob = 0 baseline.
#pragma once

#include <cstdint>
#include <vector>

#include "src/sim/engine.hpp"

namespace pw::apps {

struct ArqConfig {
  // Rounds between retransmissions of an unacknowledged arc. The ACK round
  // trip is exactly 2 (DATA delivered at t+1, ACK back at t+2); a smaller
  // value cannot help, a larger one trades rounds for fewer duplicate sends
  // under delay-heavy policies.
  int rto = 2;
  // Round budget: a crash span that never ends (or drop_prob == 1) leaves
  // arcs unacknowledged forever, and the budget is what terminates the run.
  std::uint64_t max_rounds = 1 << 16;
};

struct ArqResult {
  static constexpr std::uint64_t kNoToken = ~0ULL;

  std::vector<std::uint64_t> token;  // per node; kNoToken = never informed
  bool completed = false;  // every node informed AND every DATA acked
  std::uint64_t executed_rounds = 0;
  std::uint64_t data_sends = 0;       // DATA transmissions, total
  std::uint64_t retransmissions = 0;  // data_sends minus first sends per arc
  sim::PhaseStats stats;
};

// Floods `token` from `root` until every arc is acknowledged or the round
// budget runs out. Works on faulty and fault-free engines alike, sequential
// or shard-parallel (the callback honors the §7 contract: all mutable state
// is owned by the running node — its token slot and its outgoing arcs).
ArqResult arq_flood(sim::Engine& eng, int root, std::uint64_t token,
                    const ArqConfig& cfg = {});

// Aborts unless the result claims completion and every node indeed holds
// `token` (what a completed ARQ flood guarantees even under faults).
void validate_arq(const graph::Graph& g, const ArqResult& r,
                  std::uint64_t token);

}  // namespace pw::apps
