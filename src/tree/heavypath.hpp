// Heavy path decomposition (Definition 6.5, after Sleator–Tarjan [39]).
//
// An edge (u, v) of the rooted tree T (u the parent) is heavy when v's
// subtree holds more than half of u's subtree; all heavy edges form vertex-
// disjoint paths, and every leaf-to-root path crosses at most floor(log2 n)
// of them. The decomposition is computed distributedly: one convergecast for
// subtree sizes, one broadcast wave to assign path heads — O(height) rounds
// and O(n) messages, as charged in Lemma 6.7.
//
// The returned object also carries the centrally-extracted path node lists
// (each node already knows its own head/position locally; the lists are
// bookkeeping for driving Algorithm 7 and for tests).
#pragma once

#include "src/sim/engine.hpp"
#include "src/tree/forest.hpp"

namespace pw::tree {

struct HeavyPaths {
  // Per node: the topmost node of its heavy path (head[v] == v for heads).
  std::vector<int> head;
  // Port to the unique heavy child, or -1.
  std::vector<int> heavy_child_port;
  // Path node lists ordered from the deepest node ("source", index 0) up to
  // the head. Singleton paths are included.
  std::vector<std::vector<int>> paths;
  std::vector<int> path_of;      // index into `paths`
  std::vector<int> pos_in_path;  // 0 at the source (deepest node)
  // Scheduling level: a path's level is 1 + max level over paths hanging off
  // it via light edges (leaf paths have level 0). Algorithm 8 processes
  // paths level by level, bottom-up.
  std::vector<int> level_of_path;
  int max_level = 0;
};

HeavyPaths heavy_path_decompose(sim::Engine& eng, const SpanningForest& tree);

}  // namespace pw::tree
