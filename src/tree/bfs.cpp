#include "src/tree/bfs.hpp"

namespace pw::tree {

namespace {

enum : std::uint16_t { kExplore = 1, kChild = 2 };

}  // namespace

void validate_forest(const graph::Graph& g, const SpanningForest& f) {
  PW_CHECK(f.n() == g.n());
  std::vector<char> is_root(g.n(), 0);
  for (int r : f.roots) {
    PW_CHECK(r >= 0 && r < g.n());
    PW_CHECK(f.parent[r] == -1 && f.parent_port[r] == -1);
    PW_CHECK(f.depth[r] == 0);
    is_root[r] = 1;
  }
  for (int v = 0; v < g.n(); ++v) {
    if (is_root[v]) continue;
    if (f.parent[v] < 0) continue;  // unclaimed node (restricted BFS)
    PW_CHECK(f.parent_port[v] >= 0 && f.parent_port[v] < g.degree(v));
    PW_CHECK(g.arcs(v)[f.parent_port[v]].to == f.parent[v]);
    PW_CHECK(f.depth[v] == f.depth[f.parent[v]] + 1);
  }
  for (int v = 0; v < g.n(); ++v)
    for (int cp : f.children_ports[v]) {
      const int child = g.arcs(v)[cp].to;
      PW_CHECK(f.parent[child] == v);
    }
}

SpanningForest build_bfs_tree(sim::Engine& eng, int root) {
  const auto& g = eng.graph();
  SpanningForest f = build_restricted_bfs(
      eng, {root}, [](int, int) { return true; });
  for (int v = 0; v < g.n(); ++v)
    PW_CHECK_MSG(f.depth[v] >= 0, "graph disconnected: node %d unreachable", v);
  return f;
}

SpanningForest build_restricted_bfs(
    sim::Engine& eng, const std::vector<int>& roots,
    const std::function<bool(int v, int port)>& allow, int max_depth) {
  const auto& g = eng.graph();
  SpanningForest f;
  f.parent.assign(g.n(), -1);
  f.parent_port.assign(g.n(), -1);
  f.depth.assign(g.n(), -1);
  f.children_ports.assign(g.n(), {});
  f.roots = roots;

  std::vector<char> claimed(g.n(), 0);
  for (int r : roots) {
    PW_CHECK(!claimed[r]);
    claimed[r] = 1;
    f.depth[r] = 0;
    eng.wake(r);
  }

  eng.run([&](int v) {
    // Process incoming traffic.
    bool newly_claimed = false;
    for (const auto& in : eng.inbox(v)) {
      if (in.msg.tag == kChild) {
        f.children_ports[v].push_back(in.port);
      } else if (in.msg.tag == kExplore) {
        if (claimed[v]) continue;
        claimed[v] = 1;
        newly_claimed = true;
        f.parent[v] = in.from;
        f.parent_port[v] = in.port;
        f.depth[v] = static_cast<int>(in.msg.a) + 1;
      }
    }
    const bool is_fresh_root = f.depth[v] == 0 && eng.inbox(v).empty();
    if (!newly_claimed && !is_fresh_root) return;

    if (newly_claimed)
      eng.send(v, f.parent_port[v], sim::Msg{kChild, 0, 0, 0});
    if (max_depth >= 0 && f.depth[v] >= max_depth) return;
    const auto arcs = g.arcs(v);
    for (int port = 0; port < static_cast<int>(arcs.size()); ++port) {
      if (port == f.parent_port[v]) continue;
      if (!allow(v, port)) continue;
      eng.send(v, port, sim::Msg{kExplore, static_cast<std::uint64_t>(f.depth[v]), 0, 0});
    }
  });

  return f;
}

}  // namespace pw::tree
