// Broadcast / convergecast over spanning forests.
//
// These are the workhorse primitives of the paper: aggregating "within
// sub-parts" along their spanning trees (Algorithm 1 lines 3, 14; Lemma 4.4
// charges O(depth) rounds and one message per tree edge per wave), and the
// symmetric broadcast. Both run as genuine message passing on the engine.
#pragma once

#include "src/sim/engine.hpp"
#include "src/tree/forest.hpp"
#include "src/util/agg.hpp"

namespace pw::tree {

// Sends each root's payload (payload[root]) down its tree. Returns the value
// received per node (roots keep their own payload); nodes outside the forest
// (parent == -1, not a root) keep `absent`.
// Rounds: height(f) ; messages: one per tree edge.
std::vector<std::uint64_t> forest_broadcast(sim::Engine& eng,
                                            const SpanningForest& f,
                                            const std::vector<std::uint64_t>& payload,
                                            std::uint64_t absent = 0);

// Aggregates values up each tree. Returns per-node subtree aggregates (the
// entry at a root is its whole tree's aggregate).
// Rounds: height(f) ; messages: one per tree edge.
std::vector<std::uint64_t> forest_convergecast(sim::Engine& eng,
                                               const SpanningForest& f,
                                               const Agg& agg,
                                               const std::vector<std::uint64_t>& values);

// Subtree sizes via convergecast of 1s.
std::vector<std::uint64_t> subtree_sizes(sim::Engine& eng, const SpanningForest& f);

}  // namespace pw::tree
