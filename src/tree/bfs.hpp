// Distributed BFS-tree construction.
//
// Classic CONGEST flooding: the root emits an "explore" wave; every node
// adopts the first explorer heard as its parent (deterministic tie-break:
// lowest port), acknowledges with a "child" message, and propagates the
// wave. O(ecc(root)) rounds, O(m) explore + O(n) child messages — the
// bounds the paper charges for building its global BFS tree T (§2.2).
//
// The restricted variant only explores across edges permitted by a
// predicate; it is how sub-part spanning trees "restricted to Pi"
// (Algorithm 3 line 4) are built.
#pragma once

#include <functional>

#include "src/sim/engine.hpp"
#include "src/tree/forest.hpp"

namespace pw::tree {

// Builds a BFS tree of the whole (connected) graph rooted at `root`.
SpanningForest build_bfs_tree(sim::Engine& eng, int root);

// Multi-source restricted BFS: every node in `roots` is the root of its own
// tree; the wave only crosses (v, port) pairs with allow(v, port) == true,
// and only claims nodes with eligible(node) == true. Nodes never claimed end
// up as their own isolated roots only if they appear in `roots`; otherwise
// parent stays -1 and depth -1 (caller decides how to treat them).
// `max_depth` < 0 means unbounded.
SpanningForest build_restricted_bfs(
    sim::Engine& eng, const std::vector<int>& roots,
    const std::function<bool(int v, int port)>& allow, int max_depth = -1);

}  // namespace pw::tree
