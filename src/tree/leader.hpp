// Leader election.
//
// The paper charges Õ(D) rounds and Õ(m) messages for electing a leader and
// building the BFS tree T (via Kutten et al. [27], cited not described). We
// implement priority flooding: every node floods the best (priority, id)
// pair it has seen and forwards only strict improvements.
//
//   * Randomized mode draws uniform 64-bit priorities: each node forwards
//     O(log n) improvements w.h.p. (record values of a random permutation),
//     giving O(D) rounds and O(m log n) messages — matching [27]'s budget.
//   * Deterministic mode uses the node id as priority. This is
//     deterministic and O(D) rounds; its message complexity is O(m log n)
//     for random id layouts (all our instances) but Θ(mn) against an
//     adversarial id assignment — the full Kutten et al. machinery is the
//     cited substitute (see DESIGN.md §2).
//
// The elected leader is the node with the minimum (priority, id) pair.
#pragma once

#include "src/sim/engine.hpp"
#include "src/util/rng.hpp"

namespace pw::tree {

struct LeaderResult {
  int leader = -1;
  // What each node believes; all entries equal `leader` on termination.
  std::vector<int> believed_leader;
};

LeaderResult elect_leader_random(sim::Engine& eng, Rng& rng);
LeaderResult elect_leader_det(sim::Engine& eng);

}  // namespace pw::tree
