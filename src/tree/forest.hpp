// Rooted spanning forests — the structural output of distributed BFS and
// the representation every tree-based primitive operates on.
//
// A SpanningForest with a single root is a rooted spanning tree (the paper's
// T). Sub-part divisions (Definition 4.1) are forests with one root per
// sub-part. parent/parent_port describe what each node locally knows: which
// of its ports leads toward its root.
#pragma once

#include <vector>

#include "src/graph/graph.hpp"

namespace pw::tree {

struct SpanningForest {
  std::vector<int> parent;       // node id of parent; -1 at roots
  std::vector<int> parent_port;  // port at v toward parent; -1 at roots
  std::vector<int> depth;        // hops to the root of v's tree
  std::vector<std::vector<int>> children_ports;  // ports of v's tree children
  std::vector<int> roots;

  int n() const { return static_cast<int>(parent.size()); }

  // Max depth over all nodes (the forest's height).
  int height() const {
    int h = 0;
    for (int d : depth) h = std::max(h, d);
    return h;
  }
};

// Checks structural consistency against g: ports valid, depths consistent,
// children lists mirror parents, exactly `roots` have no parent.
void validate_forest(const graph::Graph& g, const SpanningForest& f);

}  // namespace pw::tree
