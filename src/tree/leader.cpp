#include "src/tree/leader.hpp"

namespace pw::tree {

namespace {

enum : std::uint16_t { kClaim = 1 };

LeaderResult elect_with_priorities(sim::Engine& eng,
                                   const std::vector<std::uint64_t>& prio) {
  const auto& g = eng.graph();
  std::vector<std::uint64_t> best_prio(g.n());
  std::vector<int> best_id(g.n());
  for (int v = 0; v < g.n(); ++v) {
    best_prio[v] = prio[v];
    best_id[v] = v;
    eng.wake(v);
  }

  std::vector<char> announced(g.n(), 0);
  eng.run([&](int v) {
    bool improved = false;
    for (const auto& in : eng.inbox(v)) {
      const std::uint64_t p = in.msg.a;
      const int id = static_cast<int>(in.msg.b);
      if (p < best_prio[v] || (p == best_prio[v] && id < best_id[v])) {
        best_prio[v] = p;
        best_id[v] = id;
        improved = true;
      }
    }
    // First activation announces own candidacy; later activations forward
    // only strict improvements.
    if (!announced[v]) {
      announced[v] = 1;
      improved = true;
    }
    if (!improved) return;
    for (int port = 0; port < g.degree(v); ++port)
      eng.send(v, port,
               sim::Msg{kClaim, best_prio[v], static_cast<std::uint64_t>(best_id[v]), 0});
  });

  LeaderResult r;
  r.believed_leader = best_id;
  r.leader = best_id.empty() ? -1 : best_id[0];
  for (int v = 0; v < g.n(); ++v)
    PW_CHECK_MSG(best_id[v] == r.leader, "leader election did not converge");
  return r;
}

}  // namespace

LeaderResult elect_leader_random(sim::Engine& eng, Rng& rng) {
  std::vector<std::uint64_t> prio(eng.graph().n());
  for (auto& p : prio) p = rng.next_u64();
  return elect_with_priorities(eng, prio);
}

LeaderResult elect_leader_det(sim::Engine& eng) {
  std::vector<std::uint64_t> prio(eng.graph().n());
  for (int v = 0; v < eng.graph().n(); ++v)
    prio[v] = static_cast<std::uint64_t>(v);
  return elect_with_priorities(eng, prio);
}

}  // namespace pw::tree
