#include "src/tree/treeops.hpp"

namespace pw::tree {

namespace {

enum : std::uint16_t { kDown = 1, kUp = 2 };

}  // namespace

std::vector<std::uint64_t> forest_broadcast(sim::Engine& eng,
                                            const SpanningForest& f,
                                            const std::vector<std::uint64_t>& payload,
                                            std::uint64_t absent) {
  const auto& g = eng.graph();
  std::vector<std::uint64_t> received(g.n(), absent);
  std::vector<char> has_value(g.n(), 0);

  for (int r : f.roots) {
    received[r] = payload[r];
    has_value[r] = 1;
    eng.wake(r);
  }

  eng.run([&](int v) {
    for (const auto& in : eng.inbox(v)) {
      if (in.msg.tag != kDown) continue;
      PW_CHECK(!has_value[v]);
      received[v] = in.msg.a;
      has_value[v] = 1;
    }
    if (!has_value[v]) return;
    for (int cp : f.children_ports[v])
      eng.send(v, cp, sim::Msg{kDown, received[v], 0, 0});
  });
  return received;
}

std::vector<std::uint64_t> forest_convergecast(sim::Engine& eng,
                                               const SpanningForest& f,
                                               const Agg& agg,
                                               const std::vector<std::uint64_t>& values) {
  const auto& g = eng.graph();
  std::vector<std::uint64_t> acc(values);
  std::vector<int> waiting(g.n(), 0);

  // Participants: roots and every claimed node.
  std::vector<char> in_forest(g.n(), 0);
  for (int r : f.roots) in_forest[r] = 1;
  for (int v = 0; v < g.n(); ++v)
    if (f.parent[v] >= 0) in_forest[v] = 1;

  for (int v = 0; v < g.n(); ++v) {
    if (!in_forest[v]) continue;
    waiting[v] = static_cast<int>(f.children_ports[v].size());
    if (waiting[v] == 0) eng.wake(v);  // leaves fire immediately
  }

  eng.run([&](int v) {
    for (const auto& in : eng.inbox(v)) {
      if (in.msg.tag != kUp) continue;
      acc[v] = agg(acc[v], in.msg.a);
      --waiting[v];
      PW_CHECK(waiting[v] >= 0);
    }
    // A leaf's first activation has an empty inbox; interior nodes fire when
    // the last child reports.
    if (waiting[v] == 0 && f.parent_port[v] >= 0) {
      eng.send(v, f.parent_port[v], sim::Msg{kUp, acc[v], 0, 0});
      waiting[v] = -1;  // fired; never send twice
    }
  });
  return acc;
}

std::vector<std::uint64_t> subtree_sizes(sim::Engine& eng, const SpanningForest& f) {
  std::vector<std::uint64_t> ones(f.n(), 1);
  return forest_convergecast(eng, f, agg::sum(), ones);
}

}  // namespace pw::tree
