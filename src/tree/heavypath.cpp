#include "src/tree/heavypath.hpp"

#include <algorithm>

#include "src/tree/treeops.hpp"

namespace pw::tree {

namespace {

enum : std::uint16_t { kHeadIs = 1 };

}  // namespace

HeavyPaths heavy_path_decompose(sim::Engine& eng, const SpanningForest& tree) {
  const auto& g = eng.graph();
  PW_CHECK_MSG(tree.roots.size() == 1, "heavy paths need a single rooted tree");
  const int root = tree.roots[0];

  // Pass 1: subtree sizes (distributed convergecast).
  const std::vector<std::uint64_t> size = subtree_sizes(eng, tree);

  HeavyPaths hp;
  hp.head.assign(g.n(), -1);
  hp.heavy_child_port.assign(g.n(), -1);

  // Each node locally determines its heavy child: the unique child whose
  // subtree holds more than half of its own (Definition 6.5).
  for (int v = 0; v < g.n(); ++v) {
    for (int cp : tree.children_ports[v]) {
      const int c = g.arcs(v)[cp].to;
      if (2 * size[c] > size[v]) {
        PW_CHECK(hp.heavy_child_port[v] == -1);
        hp.heavy_child_port[v] = cp;
      }
    }
  }

  // Pass 2: broadcast head assignments down the tree. The root heads its own
  // path; a heavy child inherits its parent's head; a light child becomes a
  // head itself.
  hp.head[root] = root;
  eng.wake(root);
  eng.run([&](int v) {
    for (const auto& in : eng.inbox(v)) {
      if (in.msg.tag != kHeadIs) continue;
      PW_CHECK(hp.head[v] == -1);
      hp.head[v] = static_cast<int>(in.msg.a);
    }
    if (hp.head[v] < 0) return;
    for (int cp : tree.children_ports[v]) {
      const int c = g.arcs(v)[cp].to;
      const int child_head = (cp == hp.heavy_child_port[v]) ? hp.head[v] : c;
      eng.send(v, cp, sim::Msg{kHeadIs, static_cast<std::uint64_t>(child_head), 0, 0});
    }
  });

  // Central extraction of path lists (pure bookkeeping over local state).
  hp.path_of.assign(g.n(), -1);
  hp.pos_in_path.assign(g.n(), -1);
  for (int v = 0; v < g.n(); ++v) {
    if (hp.head[v] != v) continue;  // not a head
    std::vector<int> chain;         // head downward
    int cur = v;
    while (true) {
      chain.push_back(cur);
      const int hcp = hp.heavy_child_port[cur];
      if (hcp < 0) break;
      cur = g.arcs(cur)[hcp].to;
    }
    std::reverse(chain.begin(), chain.end());  // source (deepest) first
    const int path_id = static_cast<int>(hp.paths.size());
    for (int i = 0; i < static_cast<int>(chain.size()); ++i) {
      hp.path_of[chain[i]] = path_id;
      hp.pos_in_path[chain[i]] = i;
    }
    hp.paths.push_back(std::move(chain));
  }

  // Scheduling levels: level(P) = 1 + max level of paths attached below P by
  // light edges. Process paths in order of increasing source depth... the
  // robust way is a DFS over the path DAG.
  const int num_paths = static_cast<int>(hp.paths.size());
  hp.level_of_path.assign(num_paths, 0);
  // children_paths[p] = paths whose head's parent lies on p.
  std::vector<std::vector<int>> children_paths(num_paths);
  for (int p = 0; p < num_paths; ++p) {
    const int h = hp.paths[p].back();
    if (h == root) continue;
    const int attach = tree.parent[h];
    children_paths[hp.path_of[attach]].push_back(p);
  }
  // Levels via iterative post-order from the root path.
  const int root_path = hp.path_of[root];
  std::vector<std::pair<int, int>> stack{{root_path, 0}};
  while (!stack.empty()) {
    auto& [p, next_child] = stack.back();
    if (next_child < static_cast<int>(children_paths[p].size())) {
      const int c = children_paths[p][next_child++];
      stack.emplace_back(c, 0);
    } else {
      int lvl = 0;
      for (int c : children_paths[p])
        lvl = std::max(lvl, hp.level_of_path[c] + 1);
      hp.level_of_path[p] = lvl;
      hp.max_level = std::max(hp.max_level, lvl);
      stack.pop_back();
    }
  }
  return hp;
}

}  // namespace pw::tree
