// The "global tree" PA baseline: classic pipelined aggregation over one
// BFS tree, with no shortcuts and no sub-part divisions.
//
// Every part's values convergecast up the global BFS tree T, merging at
// internal nodes; the root then floods every part's result back down the
// whole tree. Pipelining makes this round-competitive — O(D + N) for N
// parts — but the down-flood alone costs Θ(n · N) messages and the up phase
// Θ(sum over tree edges of parts below), i.e. up to Θ(nD): this is the
// message-suboptimal world the paper's introduction contrasts against
// (and, on Figure 2a's network, the Ω(nD) behaviour of Section 3.1).
#pragma once

#include "src/core/solver.hpp"

namespace pw::core {

PaRunResult global_tree_pa(sim::Engine& eng, const graph::Partition& p,
                           const tree::SpanningForest& t, const Agg& agg,
                           const std::vector<std::uint64_t>& values);

}  // namespace pw::core
