// Deterministic shortcut construction (Section 6.3, Algorithms 7 and 8).
//
// Algorithm 7 moves "claim sets" up a heavy path by distance doubling:
// iteration i ships the set at every position v ≡ 2^i (mod 2^{i+1}) to
// v + 2^i, breaking the edge above any position whose set reaches 2c (such
// claims die there, ending the part's block). Lemma 6.6: O(c log D + D)
// rounds, every edge ends up with O(c log D) parts. The schedule is fully
// determined, so the library executes it centrally and charges the engine
// the exact pipelined round/message cost (DESIGN.md §4, analytic charge i).
//
// Algorithm 8 composes path runs bottom-up over the heavy-path decomposition
// (at most floor(log2 n) levels on any leaf-root walk): sub-part
// representatives of active parts seed claims at their positions, each
// level's paths run Algorithm 7, and each sink pushes its surviving set
// across its light edge into the parent path. After every level has run the
// candidate shortcut is verified with Algorithm 2 (real traffic) and parts
// within 3x the block target freeze, halving the active set per repetition
// (Lemma 6.7).
#pragma once

#include "src/core/pa_given.hpp"
#include "src/tree/heavypath.hpp"

namespace pw::core {

// Algorithm 7 on one path, exported for unit tests. Positions are 1-indexed
// from the bottom of the path; initial_sets[k] holds the part ids wanting
// the parent edge of position k+1.
struct PathDoubleResult {
  // claimed[k]: parts that crossed the edge above position k+1 (these edges
  // enter those parts' Hi).
  std::vector<std::vector<int>> claimed;
  // Surviving set that reached the sink (to cross the light edge).
  std::vector<int> sink_set;
  // broken[k]: the edge above position k+1 broke.
  std::vector<char> broken;
  // Exact pipelined schedule cost (Lemma 6.6).
  std::uint64_t rounds = 0;
  std::uint64_t messages = 0;
};

PathDoubleResult path_shortcut_double(
    const std::vector<std::vector<int>>& initial_sets, int congestion_cap);

struct DetShortcutConfig {
  int congestion_cap = 1;  // c: sets of size >= 2c break their edge
  int block_target = 1;    // freeze parts with <= 3 * block_target blocks
  int max_repetitions = 0; // 0: ceil(log2 n) + 4
  std::vector<char> skip_parts;
  PaMode mode = PaMode::Deterministic;  // verification PA mode
};

struct DetShortcutResult {
  shortcut::Shortcut sc;
  std::vector<char> part_frozen;
  std::vector<int> frozen_at;
  sim::PhaseStats stats;

  bool all_frozen() const {
    for (char c : part_frozen)
      if (!c) return false;
    return true;
  }
};

DetShortcutResult build_shortcut_det(sim::Engine& eng,
                                     const graph::Partition& p,
                                     const shortcut::SubPartDivision& d,
                                     const tree::SpanningForest& t,
                                     const tree::HeavyPaths& hp,
                                     const DetShortcutConfig& cfg);

}  // namespace pw::core
