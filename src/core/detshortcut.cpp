#include "src/core/detshortcut.hpp"

#include <algorithm>
#include <cmath>

namespace pw::core {

namespace {

// Sorted-unique merge of b into a.
void merge_into(std::vector<int>& a, const std::vector<int>& b) {
  std::vector<int> out;
  out.reserve(a.size() + b.size());
  std::set_union(a.begin(), a.end(), b.begin(), b.end(),
                 std::back_inserter(out));
  a.swap(out);
}

}  // namespace

PathDoubleResult path_shortcut_double(
    const std::vector<std::vector<int>>& initial_sets, int congestion_cap) {
  const int len = static_cast<int>(initial_sets.size());
  PW_CHECK(len >= 1);
  PW_CHECK(congestion_cap >= 1);

  // Pad to a power of two; virtual positions > len sit physically at the
  // sink (position len), so moves beyond the top cross no physical edges.
  int padded = 1;
  while (padded < len) padded *= 2;

  // sets are 1-indexed by arithmetic position.
  std::vector<std::vector<int>> sets(padded + 1);
  for (int k = 0; k < len; ++k) {
    sets[k + 1] = initial_sets[k];
    std::sort(sets[k + 1].begin(), sets[k + 1].end());
    sets[k + 1].erase(std::unique(sets[k + 1].begin(), sets[k + 1].end()),
                      sets[k + 1].end());
  }

  PathDoubleResult out;
  out.claimed.assign(len, {});
  out.broken.assign(len, 0);

  auto physical = [&](int pos) { return std::min(pos, len); };

  for (int step = 1; step < padded; step *= 2) {
    std::uint64_t iter_rounds = 0;
    for (int v = step; v <= padded; v += 2 * step) {
      auto& s = sets[v];
      if (s.empty()) continue;
      // Line 5: congestion check applies at physical positions only (a
      // virtual position has no physical edge above it).
      if (v <= len && static_cast<int>(s.size()) >= 2 * congestion_cap) {
        if (v < len) out.broken[v - 1 + 1 - 1] = 1;  // edge above position v
        // (claims die; edges below stay claimed from earlier moves)
        s.clear();
        continue;
      }
      const int u = v + step;
      // Line 9: transfers blocked by broken edges between v and u stall.
      bool blocked = false;
      for (int w = physical(v); w < physical(u); ++w)
        if (out.broken[w - 1 + 1 - 1]) {  // edge above position w
          blocked = true;
          break;
        }
      if (blocked) continue;
      // Claim the physical edges crossed and account the pipelined cost.
      const int hops = physical(u) - physical(v);
      for (int w = physical(v); w < physical(u); ++w)
        merge_into(out.claimed[w - 1], s);
      if (hops > 0) {
        iter_rounds = std::max(
            iter_rounds, static_cast<std::uint64_t>(hops + s.size() - 1));
        out.messages += static_cast<std::uint64_t>(hops) * s.size();
      }
      merge_into(sets[u], s);
      s.clear();
    }
    out.rounds += iter_rounds;
  }

  // Everything that survived sits at the arithmetic sink.
  out.sink_set = sets[padded];
  // Residue stuck below broken edges stays where it stalled; it neither
  // crosses the light edge nor claims further edges.
  return out;
}

DetShortcutResult build_shortcut_det(sim::Engine& eng,
                                     const graph::Partition& p,
                                     const shortcut::SubPartDivision& d,
                                     const tree::SpanningForest& t,
                                     const tree::HeavyPaths& hp,
                                     const DetShortcutConfig& cfg) {
  const auto& g = eng.graph();
  const auto snap = eng.snap();

  int max_reps = cfg.max_repetitions;
  if (max_reps <= 0)
    max_reps = static_cast<int>(std::ceil(std::log2(std::max(2, g.n())))) + 4;

  DetShortcutResult out;
  out.sc = shortcut::Shortcut::empty(g.n());
  out.part_frozen.assign(p.num_parts, 0);
  out.frozen_at.assign(p.num_parts, -1);
  std::vector<char> settled(p.num_parts, 0);
  if (!cfg.skip_parts.empty()) {
    PW_CHECK(static_cast<int>(cfg.skip_parts.size()) == p.num_parts);
    settled = cfg.skip_parts;
  }
  auto all_settled = [&] {
    return std::all_of(settled.begin(), settled.end(),
                       [](char c) { return c != 0; });
  };

  // Paths grouped by scheduling level.
  std::vector<std::vector<int>> paths_by_level(hp.max_level + 1);
  for (int pth = 0; pth < static_cast<int>(hp.paths.size()); ++pth)
    paths_by_level[hp.level_of_path[pth]].push_back(pth);

  for (int rep = 0; rep < max_reps && !all_settled(); ++rep) {
    // Lines 4-8: seed claims at representatives of active parts.
    std::vector<std::vector<std::vector<int>>> seed(hp.paths.size());
    for (std::size_t pth = 0; pth < hp.paths.size(); ++pth)
      seed[pth].assign(hp.paths[pth].size(), {});
    for (int s = 0; s < d.num_subparts; ++s) {
      const int rep_node = d.rep_of_subpart[s];
      const int part = p.part_of[rep_node];
      if (settled[part]) continue;
      seed[hp.path_of[rep_node]][hp.pos_in_path[rep_node]].push_back(part);
    }

    // Candidate shortcut built this repetition.
    auto candidate = shortcut::Shortcut::empty(g.n());

    // Lines 9-13: process levels bottom-up; sinks push their surviving set
    // across their light edge into the parent path's seed.
    for (const auto& level : paths_by_level) {
      std::uint64_t level_rounds = 0, level_messages = 0;
      std::uint64_t cross_rounds = 0, cross_messages = 0;
      for (int pth : level) {
        const auto& nodes = hp.paths[pth];
        const auto run = path_shortcut_double(seed[pth], cfg.congestion_cap);
        level_rounds = std::max(level_rounds, run.rounds);
        level_messages += run.messages;
        // Claimed path edges: the edge above position k+1 is the parent
        // edge of node nodes[k].
        for (std::size_t k = 0; k + 1 < nodes.size(); ++k)
          if (!run.claimed[k].empty())
            merge_into(candidate.parts_on[nodes[k]], run.claimed[k]);
        if (run.sink_set.empty()) continue;
        const int head = nodes.back();
        if (t.parent[head] < 0) continue;  // reached the root of T
        // Line 12: cross the light edge (claiming it) into the parent path.
        merge_into(candidate.parts_on[head], run.sink_set);
        const int u = t.parent[head];
        auto& dest = seed[hp.path_of[u]][hp.pos_in_path[u]];
        dest.insert(dest.end(), run.sink_set.begin(), run.sink_set.end());
        cross_rounds = std::max(
            cross_rounds, static_cast<std::uint64_t>(run.sink_set.size()));
        cross_messages += run.sink_set.size();
      }
      // Lemma 6.6 schedule: paths of one level run in parallel; the light
      // edge hops pipeline behind them.
      eng.charge_rounds(level_rounds + cross_rounds);
      eng.charge_messages(level_messages + cross_messages);
    }

    shortcut::annotate_block_roots(g, t, candidate);

    // Line 14: verify and freeze (Algorithm 2, real traffic).
    PaGivenConfig vcfg;
    vcfg.mode = cfg.mode;
    const auto verdict = verify_block_parameter(eng, p, d, candidate, t,
                                                3 * cfg.block_target, vcfg);
    for (int i = 0; i < p.num_parts; ++i) {
      if (settled[i] || !verdict.part_good[i]) continue;
      settled[i] = 1;
      out.part_frozen[i] = 1;
      out.frozen_at[i] = rep;
      for (int v = 0; v < g.n(); ++v) {
        if (!candidate.edge_in_part(v, i)) continue;
        auto& parts = out.sc.parts_on[v];
        parts.insert(std::upper_bound(parts.begin(), parts.end(), i), i);
      }
    }
  }

  shortcut::annotate_block_roots(g, t, out.sc);
  out.stats = eng.since(snap);
  return out;
}

}  // namespace pw::core
