#include "src/core/pa_given.hpp"

#include <algorithm>

namespace pw::core {

namespace {

enum : std::uint16_t {
  kInfo = 1,       // announce (part, sub-part) to neighbors (KT0 bootstrap)
  kToken = 2,      // wave token along sub-part trees / cross edges
  kBlockUp = 3,    // BlockRoute climb toward the block root
  kBlockDown = 4,  // BlockRoute broadcast down block edges
  kAdopt = 5,      // "I am your wave child" ack
  kNack = 6,       // Algorithm 2 objection from an uninformed node
  kGather = 7,     // convergecast value up the wave tree
  kResult = 8,     // broadcast f(Pi) down the wave tree
};

// Wave-tree bookkeeping for one (node, part) participation.
struct Entry {
  int part = -1;
  int parent_port = -1;  // -1 at the wave origin (the part leader)
  bool spread_done = false;
  bool up_done = false;
  bool down_done = false;
  bool is_block_root = false;
  std::vector<int> children_ports;
  // Gather/scatter state.
  std::uint64_t acc = 0;
  int pending = 0;
  bool fired = false;
};

// Outgoing message queue of one node. The CONGEST constraint allows one
// message per port per round; flush() picks, per port, the item with the
// smallest (priority, sequence) pair — block packets carry their block
// root's depth as priority, realizing Lemma 4.2's scheduling rule.
struct OutItem {
  int port;
  std::int64_t prio;
  std::uint64_t seq;
  sim::Msg msg;
};

class Waveguide {
 public:
  Waveguide(sim::Engine& eng, const graph::Partition& p,
            const shortcut::SubPartDivision& d, const shortcut::Shortcut& s,
            const tree::SpanningForest& t, const PaGivenConfig& cfg)
      : eng_(eng),
        g_(eng.graph()),
        p_(p),
        d_(d),
        s_(s),
        t_(t),
        cfg_(cfg),
        entries_(g_.n()),
        outbox_(g_.n()),
        pending_origin_(g_.n(), 0),
        cross_ports_(g_.n()),
        seq_(g_.n(), 0) {
    PW_CHECK(p.has_leaders());
    precompute_hi_children();
  }

  // --- Stage 0: KT0 neighbor announcement (one round, 2m messages). -------
  void announce() {
    const int n = g_.n();
    neighbor_part_.assign(g_.num_arcs(), -1);
    neighbor_subpart_.assign(g_.num_arcs(), -1);
    for (int v = 0; v < n; ++v) eng_.wake(v);
    std::vector<char> info_sent(n, 0);
    eng_.run([&](int v) {
      for (const auto& in : eng_.inbox(v)) {
        if (in.msg.tag != kInfo) continue;
        neighbor_part_[g_.arc_id(v, in.port)] = static_cast<int>(in.msg.a);
        neighbor_subpart_[g_.arc_id(v, in.port)] = static_cast<int>(in.msg.b);
      }
      if (info_sent[v]) return;
      info_sent[v] = 1;
      for (int port = 0; port < g_.degree(v); ++port)
        eng_.send(v, port,
                  sim::Msg{kInfo, static_cast<std::uint64_t>(p_.part_of[v]),
                           static_cast<std::uint64_t>(d_.subpart_of[v]), 0});
    });
    // Derive cross ports: same part, different sub-part.
    for (int v = 0; v < n; ++v)
      for (int port = 0; port < g_.degree(v); ++port) {
        const int a = g_.arc_id(v, port);
        if (neighbor_part_[a] == p_.part_of[v] &&
            neighbor_subpart_[a] != d_.subpart_of[v])
          cross_ports_[v].push_back(port);
      }
  }

  // --- Stage 1: wave (Algorithm 1 lines 1-20). -----------------------------
  // Executed as budget-limited Engine::run segments between delay groups, so
  // the per-node wave steps dispatch shard-parallel (DESIGN.md §7) and the
  // pipelined close (§8) applies; the delay bookkeeping — waking the next
  // leaders, charging idle gaps — stays in sequential inter-segment code.
  // Accounting is identical to a manual one-round-at-a-time loop: run()
  // executes a round exactly when the network isn't idle, and the skipped
  // rounds of an idle gap are genuine CONGEST rounds, charged as before.
  void run_wave() {
    struct Start {
      int delay;
      int leader;
    };
    std::vector<Start> starts;
    Rng rng(cfg_.seed);
    for (int i = 0; i < p_.num_parts; ++i) {
      int delay = 0;
      if (cfg_.mode == PaMode::Randomized && cfg_.delay_range > 1)
        delay = static_cast<int>(rng.next_below(cfg_.delay_range));
      starts.push_back({delay, p_.leader[i]});
    }
    std::sort(starts.begin(), starts.end(),
              [](const Start& a, const Start& b) { return a.delay < b.delay; });

    const auto step = [this](int v) { process_wave(v); };
    std::size_t next = 0;
    std::uint64_t round = 0;
    while (next < starts.size()) {
      while (next < starts.size() &&
             static_cast<std::uint64_t>(starts[next].delay) <= round) {
        pending_origin_[starts[next].leader] = 1;
        eng_.wake(starts[next].leader);
        ++next;
      }
      if (next >= starts.size()) break;
      // Run until the next scheduled start (or idle, whichever comes first).
      const auto budget = static_cast<std::uint64_t>(starts[next].delay) - round;
      const std::uint64_t executed = eng_.run(step, budget);
      round += executed;
      if (executed < budget) {
        // Nothing in flight; skip ahead to the next scheduled start. The
        // skipped rounds are genuine CONGEST rounds and stay counted.
        eng_.charge_rounds(budget - executed);
        round = static_cast<std::uint64_t>(starts[next].delay);
      }
    }
    eng_.run(step);  // every wave started; drain to quiescence
  }

  // --- Stage 2: gather (line 21). ------------------------------------------
  // contribution(v, e) supplies each participant's value; members typically
  // contribute val(v), Steiner nodes the identity.
  template <class ContributionFn>
  std::vector<std::uint64_t> run_gather(const Agg& agg, ContributionFn&& contribution) {
    std::vector<std::uint64_t> origin_value(p_.num_parts, agg.identity);
    for (int v = 0; v < g_.n(); ++v) {
      bool any = false;
      for (auto& e : entries_[v]) {
        e.pending = static_cast<int>(e.children_ports.size());
        e.acc = contribution(v, e);
        e.fired = false;
        any = true;
      }
      if (any) eng_.wake(v);
    }
    eng_.run([&](int v) {
      for (const auto& in : eng_.inbox(v)) {
        if (in.msg.tag != kGather) continue;
        Entry* e = find(v, static_cast<int>(in.msg.a));
        PW_CHECK(e != nullptr);
        e->acc = agg(e->acc, in.msg.b);
        --e->pending;
        PW_CHECK(e->pending >= 0);
      }
      for (auto& e : entries_[v]) {
        if (e.fired || e.pending != 0) continue;
        e.fired = true;
        if (e.parent_port >= 0) {
          enqueue(v, e.parent_port, e.part,
                  sim::Msg{kGather, static_cast<std::uint64_t>(e.part), e.acc, 0});
        } else {
          // Uniquely-owned slot (§7 cookbook): only the wave origin — the
          // part's leader, one fixed node — ever has parent_port < 0 for
          // this part, so the write is single-writer under parallel
          // dispatch.
          origin_value[e.part] = e.acc;
        }
      }
      flush(v);
    });
    return origin_value;
  }

  // --- Stage 3: scatter (line 22). ------------------------------------------
  // Returns the value delivered to each node (part members only).
  std::vector<std::uint64_t> run_scatter(const std::vector<std::uint64_t>& origin_value,
                                         std::uint64_t absent) {
    std::vector<std::uint64_t> delivered(g_.n(), absent);
    for (int i = 0; i < p_.num_parts; ++i) {
      const int li = p_.leader[i];
      Entry* e = find(li, i);
      if (e == nullptr) continue;
      delivered[li] = origin_value[i];
      for (int cp : e->children_ports)
        enqueue(li, cp, i,
                sim::Msg{kResult, static_cast<std::uint64_t>(i), origin_value[i], 0});
      eng_.wake(li);
    }
    eng_.run([&](int v) {
      for (const auto& in : eng_.inbox(v)) {
        if (in.msg.tag != kResult) continue;
        const int part = static_cast<int>(in.msg.a);
        Entry* e = find(v, part);
        PW_CHECK(e != nullptr);
        if (p_.part_of[v] == part) delivered[v] = in.msg.b;
        for (int cp : e->children_ports)
          enqueue(v, cp, part, sim::Msg{kResult, in.msg.a, in.msg.b, 0});
      }
      flush(v);
    });
    return delivered;
  }

  // --- Algorithm 2's objection round. ---------------------------------------
  // Uninformed part members shout kNack on every port; informed same-part
  // receivers raise their objection flag. Returns the flags.
  std::vector<char> objection_round() {
    std::vector<char> objected(g_.n(), 0);
    std::vector<char> nack_sent(g_.n(), 0);
    for (int v = 0; v < g_.n(); ++v)
      if (find(v, p_.part_of[v]) == nullptr) eng_.wake(v);
    eng_.run([&](int v) {
      for (const auto& in : eng_.inbox(v)) {
        if (in.msg.tag != kNack) continue;
        if (neighbor_part_[g_.arc_id(v, in.port)] != p_.part_of[v]) continue;
        if (find(v, p_.part_of[v]) != nullptr) objected[v] = 1;
      }
      if (!nack_sent[v] && find(v, p_.part_of[v]) == nullptr) {
        nack_sent[v] = 1;
        for (int port = 0; port < g_.degree(v); ++port)
          eng_.send(v, port, sim::Msg{kNack, 0, 0, 0});
      }
    });
    return objected;
  }

  // --- Wave results ----------------------------------------------------------
  std::vector<char> coverage() const {
    std::vector<char> covered(p_.num_parts, 1);
    for (int v = 0; v < g_.n(); ++v)
      if (find(v, p_.part_of[v]) == nullptr) covered[p_.part_of[v]] = 0;
    return covered;
  }

  std::vector<std::uint64_t> blocks_touched() const {
    std::vector<std::uint64_t> count(p_.num_parts, 0);
    for (int v = 0; v < g_.n(); ++v)
      for (const auto& e : entries_[v])
        if (e.is_block_root) ++count[e.part];
    return count;
  }

  bool is_member(int v, int part) const { return p_.part_of[v] == part; }
  Entry* find(int v, int part) {
    for (auto& e : entries_[v])
      if (e.part == part) return &e;
    return nullptr;
  }
  const Entry* find(int v, int part) const {
    for (const auto& e : entries_[v])
      if (e.part == part) return &e;
    return nullptr;
  }

 private:
  void precompute_hi_children() {
    hi_children_.assign(g_.n(), {});
    for (int c = 0; c < g_.n(); ++c) {
      if (s_.parts_on[c].empty()) continue;
      const int parent = t_.parent[c];
      PW_CHECK(parent >= 0);
      // Port at the parent toward c.
      const int arc_up = g_.arc_id(c, t_.parent_port[c]);
      const int port_down = g_.mirror(arc_up) - g_.arc_id(parent, 0);
      for (int part : s_.parts_on[c])
        hi_children_[parent].push_back({part, port_down});
    }
    for (auto& list : hi_children_) std::sort(list.begin(), list.end());
  }

  std::int64_t up_prio(int v, int part) const {
    if (s_.block_root_depth_on.empty() || s_.block_root_depth_on[v].empty())
      return 0;
    const auto& parts = s_.parts_on[v];
    const auto it = std::lower_bound(parts.begin(), parts.end(), part);
    PW_CHECK(it != parts.end() && *it == part);
    return s_.block_root_depth_on[v][it - parts.begin()];
  }

  // The sequence tie-breaker is per NODE, not global: flush() only ever
  // compares items of one node's outbox, whose relative seq order equals its
  // enqueue order either way — and per-node counters keep the gather/scatter
  // callbacks free of shared mutable state, as the engine's shard-parallel
  // execution requires (DESIGN.md §7).
  void enqueue(int v, int port, std::int64_t prio, const sim::Msg& msg) {
    outbox_[v].push_back(OutItem{port, prio, seq_[v]++, msg});
  }

  void flush(int v) {
    auto& box = outbox_[v];
    if (box.empty()) return;
    std::sort(box.begin(), box.end(), [](const OutItem& a, const OutItem& b) {
      if (a.port != b.port) return a.port < b.port;
      if (a.prio != b.prio) return a.prio < b.prio;
      return a.seq < b.seq;
    });
    std::vector<OutItem> kept;
    int last_port = -1;
    for (auto& item : box) {
      if (item.port != last_port) {
        last_port = item.port;
        eng_.send(v, item.port, item.msg);
      } else {
        kept.push_back(item);
      }
    }
    box.swap(kept);
    if (!box.empty()) eng_.wake(v);
  }

  // Creates the wave entry for (v, part) if absent; acks the parent and
  // applies the member rules of Algorithm 1. Returns the entry.
  Entry& grant(int v, int part, int parent_port) {
    if (Entry* existing = find(v, part)) return *existing;
    entries_[v].push_back(Entry{});
    Entry& e = entries_[v].back();
    e.part = part;
    e.parent_port = parent_port;
    if (parent_port >= 0)
      enqueue(v, parent_port, -1,
              sim::Msg{kAdopt, static_cast<std::uint64_t>(part), 0, 0});

    if (is_member(v, part)) {
      // Lines 13-15: spread through the sub-part tree and across edges that
      // exit sub-parts; line 18's route-to-representative is the same tree
      // spread seen from below.
      e.spread_done = true;
      const sim::Msg token{kToken, static_cast<std::uint64_t>(part), 0, 0};
      const int tp = d_.forest.parent_port[v];
      if (tp >= 0 && tp != parent_port) enqueue(v, tp, -1, token);
      for (int cp : d_.forest.children_ports[v])
        if (cp != parent_port) enqueue(v, cp, -1, token);
      for (int xp : cross_ports_[v])
        if (xp != parent_port) enqueue(v, xp, -1, token);
      // Lines 8-12: representatives alone inject into shortcut blocks.
      if (d_.is_representative(v)) handle_block_up(v, e);
    }
    return e;
  }

  // BlockRoute climb step at v for part e.part: forward up while the parent
  // edge stays in Hi; otherwise v is the block root and turns the flow down.
  void handle_block_up(int v, Entry& e) {
    if (s_.edge_in_part(v, e.part)) {
      if (e.up_done) return;
      e.up_done = true;
      enqueue(v, t_.parent_port[v], up_prio(v, e.part),
              sim::Msg{kBlockUp, static_cast<std::uint64_t>(e.part), 0, 0});
    } else {
      start_down(v, e, t_.depth[v], /*as_root=*/true);
    }
  }

  void start_down(int v, Entry& e, std::int64_t root_depth, bool as_root) {
    if (e.down_done) return;
    e.down_done = true;
    const auto& list = hi_children_[v];
    auto it = std::lower_bound(
        list.begin(), list.end(), std::pair<int, int>{e.part, -1});
    bool any = false;
    for (; it != list.end() && it->first == e.part; ++it) {
      any = true;
      enqueue(v, it->second, root_depth,
              sim::Msg{kBlockDown, static_cast<std::uint64_t>(e.part), 0,
                       static_cast<std::uint64_t>(root_depth)});
    }
    if (any && as_root) e.is_block_root = true;
  }

  void process_wave(int v) {
    if (pending_origin_[v]) {
      pending_origin_[v] = 0;
      grant(v, p_.part_of[v], -1);
    }
    for (const auto& in : eng_.inbox(v)) {
      const int part = static_cast<int>(in.msg.a);
      switch (in.msg.tag) {
        case kToken: {
          Entry& e = grant(v, part, in.port);
          (void)e;
          break;
        }
        case kBlockUp: {
          Entry& e = grant(v, part, in.port);
          handle_block_up(v, e);
          break;
        }
        case kBlockDown: {
          Entry& e = grant(v, part, in.port);
          start_down(v, e, static_cast<std::int64_t>(in.msg.c),
                     /*as_root=*/false);
          break;
        }
        case kAdopt: {
          Entry* e = find(v, part);
          PW_CHECK(e != nullptr);
          e->children_ports.push_back(in.port);
          break;
        }
        default:
          PW_CHECK_MSG(false, "unexpected tag %d in wave", in.msg.tag);
      }
    }
    flush(v);
  }

  sim::Engine& eng_;
  const graph::Graph& g_;
  const graph::Partition& p_;
  const shortcut::SubPartDivision& d_;
  const shortcut::Shortcut& s_;
  const tree::SpanningForest& t_;
  PaGivenConfig cfg_;

  std::vector<std::vector<Entry>> entries_;
  std::vector<std::vector<OutItem>> outbox_;
  std::vector<char> pending_origin_;
  std::vector<std::vector<int>> cross_ports_;
  std::vector<int> neighbor_part_;
  std::vector<int> neighbor_subpart_;
  // Per parent node: (part, child port) pairs with that child edge in Hi.
  std::vector<std::vector<std::pair<int, int>>> hi_children_;
  std::vector<std::uint64_t> seq_;
};

}  // namespace

PaGivenResult pa_given(sim::Engine& eng, const graph::Partition& p,
                       const shortcut::SubPartDivision& d,
                       const shortcut::Shortcut& s,
                       const tree::SpanningForest& t, const Agg& agg,
                       const std::vector<std::uint64_t>& values,
                       const PaGivenConfig& cfg) {
  PW_CHECK(static_cast<int>(values.size()) == eng.graph().n());
  Waveguide wg(eng, p, d, s, t, cfg);

  PaGivenResult r;
  auto snap = eng.snap();
  wg.announce();
  wg.run_wave();
  r.wave_stats = eng.since(snap);
  r.part_covered = wg.coverage();
  r.blocks_touched = wg.blocks_touched();

  snap = eng.snap();
  r.part_value = wg.run_gather(agg, [&](int v, const Entry& e) {
    return wg.is_member(v, e.part) ? values[v] : agg.identity;
  });
  r.gather_stats = eng.since(snap);

  snap = eng.snap();
  r.node_value = wg.run_scatter(r.part_value, agg.identity);
  r.scatter_stats = eng.since(snap);
  return r;
}

VerifyResult verify_block_parameter(sim::Engine& eng,
                                    const graph::Partition& p,
                                    const shortcut::SubPartDivision& d,
                                    const shortcut::Shortcut& s,
                                    const tree::SpanningForest& t,
                                    int b_target, const PaGivenConfig& cfg) {
  Waveguide wg(eng, p, d, s, t, cfg);
  const auto snap = eng.snap();
  wg.announce();
  wg.run_wave();

  // Lines 3-4: uninformed nodes object to their in-part neighbors.
  const std::vector<char> objected = wg.objection_round();

  // Lines 5-9: one gather/scatter tells every covered node whether anyone
  // objected and how many blocks its part has. The packed value keeps both
  // counts in one O(log n)-bit word.
  const Agg sum = agg::sum();
  auto packed = wg.run_gather(sum, [&](int v, const Entry& e) -> std::uint64_t {
    std::uint64_t x = 0;
    if (wg.is_member(v, e.part) && objected[v]) x += (1ULL << 32);
    if (e.is_block_root) x += 1;
    return x;
  });
  wg.run_scatter(packed, 0);

  VerifyResult out;
  out.stats = eng.since(snap);
  out.part_good.assign(p.num_parts, 0);
  out.blocks_counted.assign(p.num_parts, 0);
  const auto covered = wg.coverage();
  for (int i = 0; i < p.num_parts; ++i) {
    const std::uint64_t objections = packed[i] >> 32;
    out.blocks_counted[i] = packed[i] & 0xffffffffULL;
    out.part_good[i] = covered[i] && objections == 0 &&
                       out.blocks_counted[i] <= static_cast<std::uint64_t>(b_target);
    // An uncovered part must see at least one objection (Lemma 4.5).
    if (!covered[i]) PW_CHECK(objections > 0);
  }
  return out;
}

}  // namespace pw::core
