#include "src/core/solver.hpp"

#include <algorithm>

#include "src/shortcut/subpart_det.hpp"
#include "src/tree/bfs.hpp"
#include "src/tree/leader.hpp"

namespace pw::core {

PaSolver::PaSolver(sim::Engine& eng, PaSolverConfig cfg)
    : eng_(&eng), cfg_(cfg), rng_(cfg.seed) {}

void PaSolver::ensure_global() {
  if (global_ready_) return;
  const auto snap = eng_->snap();
  // Leader election then BFS tree T rooted at the leader (Section 2.2: the
  // paper's T is a rooted BFS tree obtained via Kutten et al. [27]).
  int root;
  if (cfg_.mode == PaMode::Randomized) {
    root = tree::elect_leader_random(*eng_, rng_).leader;
  } else {
    root = tree::elect_leader_det(*eng_).leader;
  }
  st_.t = tree::build_bfs_tree(*eng_, root);
  st_.diameter_bound = std::max(1, st_.t.height());
  if (cfg_.mode == PaMode::Deterministic &&
      cfg_.strategy != PaStrategy::NoShortcut)
    st_.hp = tree::heavy_path_decompose(*eng_, st_.t);
  st_.tree_stats = eng_->since(snap);
  global_ready_ = true;
}

void PaSolver::build_division() {
  const auto snap = eng_->snap();
  if (cfg_.strategy == PaStrategy::NoSubparts) {
    // Prior-work behaviour: every node talks to the shortcut directly. We
    // model it as the degenerate division where every node is its own
    // sub-part (and so its own representative).
    shortcut::SubPartDivision d;
    const auto& g = eng_->graph();
    d.num_subparts = g.n();
    d.subpart_of.resize(g.n());
    d.rep_of_subpart.resize(g.n());
    for (int v = 0; v < g.n(); ++v) {
      d.subpart_of[v] = v;
      d.rep_of_subpart[v] = v;
    }
    d.forest.parent.assign(g.n(), -1);
    d.forest.parent_port.assign(g.n(), -1);
    d.forest.depth.assign(g.n(), 0);
    d.forest.children_ports.assign(g.n(), {});
    d.forest.roots = d.rep_of_subpart;
    st_.div = std::move(d);
  } else if (cfg_.mode == PaMode::Deterministic) {
    st_.div = shortcut::build_subpart_division_det(*eng_, part_,
                                                   st_.diameter_bound);
  } else {
    st_.div = shortcut::build_subpart_division_random(*eng_, part_,
                                                      st_.diameter_bound, rng_);
  }
  st_.division_stats = eng_->since(snap);
}

void PaSolver::build_shortcut() {
  const auto snap = eng_->snap();
  const auto& g = eng_->graph();
  st_.sc = shortcut::Shortcut::empty(g.n());
  st_.frozen_at_guess.assign(part_.num_parts, 0);
  st_.final_guess = 0;
  if (cfg_.strategy == PaStrategy::NoShortcut) {
    st_.shortcut_stats = eng_->since(snap);
    return;
  }

  // Doubling trick over κ = max(b̂, ĉ): unfrozen parts retry at the doubled
  // guess; κ = n is a certain stop (no edge ever breaks, so every part's
  // claims merge into a single block at the root of T).
  std::vector<char> frozen(part_.num_parts, 0);
  auto all_frozen = [&] {
    return std::all_of(frozen.begin(), frozen.end(), [](char c) { return c; });
  };
  for (int guess = std::max(1, cfg_.initial_guess); !all_frozen();
       guess *= 2) {
    PW_CHECK_MSG(guess <= 4 * g.n(), "shortcut doubling failed to converge");
    std::vector<char> round_frozen;
    shortcut::Shortcut round_sc;
    if (cfg_.mode == PaMode::Deterministic) {
      DetShortcutConfig dc;
      dc.congestion_cap = guess;
      dc.block_target = guess;
      dc.max_repetitions = cfg_.corefast_iters_per_guess;
      dc.skip_parts = frozen;
      auto round = build_shortcut_det(*eng_, part_, st_.div, st_.t, st_.hp, dc);
      round_frozen = std::move(round.part_frozen);
      round_sc = std::move(round.sc);
    } else {
      CoreFastConfig cc;
      cc.congestion_cap = guess;
      cc.block_target = guess;
      cc.max_iterations = cfg_.corefast_iters_per_guess;
      cc.seed = rng_.next_u64();
      cc.mode = cfg_.mode;
      cc.skip_parts = frozen;  // parts served at smaller guesses sit out
      auto round = build_shortcut_random(*eng_, part_, st_.div, st_.t, cc);
      round_frozen = std::move(round.part_frozen);
      round_sc = std::move(round.sc);
    }
    for (int i = 0; i < part_.num_parts; ++i) {
      if (frozen[i] || !round_frozen[i]) continue;
      frozen[i] = 1;
      st_.frozen_at_guess[i] = guess;
      st_.final_guess = std::max(st_.final_guess, guess);
      for (int v = 0; v < g.n(); ++v) {
        if (!round_sc.edge_in_part(v, i)) continue;
        auto& parts = st_.sc.parts_on[v];
        parts.insert(std::upper_bound(parts.begin(), parts.end(), i), i);
      }
    }
  }
  shortcut::annotate_block_roots(g, st_.t, st_.sc);
  st_.shortcut_stats = eng_->since(snap);
}

void PaSolver::set_partition(graph::Partition p) {
  PW_CHECK_MSG(p.has_leaders(),
               "PaSolver requires known leaders; use pa_noleader for the "
               "leaderless setting (Appendix B)");
  part_ = std::move(p);
  ensure_global();
  build_division();
  build_shortcut();
  partition_ready_ = true;
}

PaRunResult PaSolver::aggregate(const Agg& agg,
                                const std::vector<std::uint64_t>& values) {
  PW_CHECK_MSG(partition_ready_, "call set_partition first");
  PaGivenConfig pc;
  pc.mode = cfg_.mode;
  pc.delay_range = std::max(1, shortcut::congestion(st_.sc));
  pc.seed = rng_.next_u64();
  const auto res =
      pa_given(*eng_, part_, st_.div, st_.sc, st_.t, agg, values, pc);
  PW_CHECK_MSG(res.all_covered(), "PA wave failed to cover a part");
  PaRunResult out;
  out.part_value = res.part_value;
  out.node_value = res.node_value;
  out.stats = res.total();
  return out;
}

}  // namespace pw::core
