#include "src/core/baselines.hpp"

#include <algorithm>
#include <climits>
#include <map>

namespace pw::core {

namespace {

enum : std::uint16_t { kUp = 51, kUpDone = 52, kDown = 53 };

}  // namespace

PaRunResult global_tree_pa(sim::Engine& eng, const graph::Partition& p,
                           const tree::SpanningForest& t, const Agg& agg,
                           const std::vector<std::uint64_t>& values) {
  const auto& g = eng.graph();
  const auto snap = eng.snap();
  PW_CHECK(t.roots.size() == 1);
  const int root = t.roots[0];

  // --- Up: pipelined merge of (part, value) pairs toward the root. --------
  // Classic watermark pipelining: every node streams its merged slots in
  // ascending part-id order; slot p may leave once every child's watermark
  // has reached p (ascending streams mean no child can contribute to p
  // afterwards). Rounds: O(depth + #parts), not their product.
  std::vector<std::map<int, std::uint64_t>> slots(g.n());
  std::vector<std::map<int, int>> watermark(g.n());  // per child port
  std::vector<char> done_sent(g.n(), 0);
  constexpr int kDone = INT_MAX;

  for (int v = 0; v < g.n(); ++v) {
    slots[v][p.part_of[v]] = values[v];
    for (int cp : t.children_ports[v]) watermark[v][cp] = -1;
    eng.wake(v);
  }

  std::vector<std::uint64_t> part_value(p.num_parts, agg.identity);
  eng.run([&](int v) {
    for (const auto& in : eng.inbox(v)) {
      if (in.msg.tag == kUp) {
        const int part = static_cast<int>(in.msg.a);
        auto [it, fresh] = slots[v].try_emplace(part, in.msg.b);
        if (!fresh) it->second = agg(it->second, in.msg.b);
        watermark[v][in.port] = part;
      } else if (in.msg.tag == kUpDone) {
        watermark[v][in.port] = kDone;
      }
    }
    int floor = kDone;
    for (const auto& [cp, wm] : watermark[v]) floor = std::min(floor, wm);
    if (!slots[v].empty() && slots[v].begin()->first <= floor) {
      const auto [part, value] = *slots[v].begin();
      slots[v].erase(slots[v].begin());
      if (v == root) {
        // Uniquely-owned slots (DESIGN.md §7 cookbook): only the root's
        // callback writes part_value, one slot per drained part.
        part_value[part] = value;
        eng.wake(v);  // keep draining
      } else {
        eng.send(v, t.parent_port[v],
                 sim::Msg{kUp, static_cast<std::uint64_t>(part), value, 0});
        eng.wake(v);
      }
    } else if (v != root && slots[v].empty() && floor == kDone && !done_sent[v]) {
      done_sent[v] = 1;
      eng.send(v, t.parent_port[v], sim::Msg{kUpDone, 0, 0, 0});
    }
  });

  // --- Down: flood every part's result through the whole tree, pipelined
  // one result per edge per round (the Θ(n·N) step).
  std::vector<std::uint64_t> node_value(g.n(), agg.identity);
  std::vector<std::vector<std::pair<int, std::uint64_t>>> down_q(g.n());
  node_value[root] = part_value[p.part_of[root]];
  for (int i = 0; i < p.num_parts; ++i)
    down_q[root].push_back({i, part_value[i]});
  if (!down_q[root].empty()) eng.wake(root);
  std::vector<int> dcursor(g.n(), 0);

  eng.run([&](int v) {
    for (const auto& in : eng.inbox(v)) {
      if (in.msg.tag != kDown) continue;
      const int part = static_cast<int>(in.msg.a);
      if (part == p.part_of[v]) node_value[v] = in.msg.b;
      down_q[v].push_back({part, in.msg.b});
    }
    if (dcursor[v] < static_cast<int>(down_q[v].size())) {
      const auto& [part, value] = down_q[v][dcursor[v]++];
      for (int cp : t.children_ports[v])
        eng.send(v, cp,
                 sim::Msg{kDown, static_cast<std::uint64_t>(part), value, 0});
      if (dcursor[v] < static_cast<int>(down_q[v].size())) eng.wake(v);
    }
  });

  PaRunResult out;
  out.part_value = std::move(part_value);
  out.node_value = std::move(node_value);
  out.stats = eng.since(snap);
  return out;
}

}  // namespace pw::core
