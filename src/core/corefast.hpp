// Randomized message-efficient shortcut construction (Section 5.2,
// Algorithm 4), built on the CoreFast claiming procedure of Haeupler, Izumi
// and Zuzic [19] as the paper describes it: sub-part representatives send
// claims up the BFS tree T; a tree edge accepts at most `congestion_cap`
// distinct parts and breaks for everyone else, fragmenting each part's
// claimed edge set into blocks.
//
// Message efficiency comes precisely from the sub-part division: only the
// Õ(n/D) representatives inject claims (each travelling <= depth(T) hops),
// so claiming costs Õ(n) messages instead of the Ω(n · D) a node-level
// CoreFast would pay — the same observation that drives Algorithm 1.
//
// Algorithm 4's loop: every active part participates in an iteration with
// probability 1/2 (the contention-halving that [19, Lemma 4] supplies);
// claimed candidates are verified with Algorithm 2, and parts whose block
// count lands within 3·b_target freeze their edges and go inactive. After
// O(log n) iterations all parts are frozen w.h.p.; per-edge congestion grows
// by at most `congestion_cap` per iteration, i.e. Õ(c) overall.
#pragma once

#include "src/core/pa_given.hpp"

namespace pw::core {

struct CoreFastConfig {
  int congestion_cap = 1;   // per-iteration cap (the paper's 8c)
  int block_target = 1;     // freeze parts with <= 3 * block_target blocks
  int max_iterations = 0;   // 0: 2*ceil(log2 n) + 4
  std::uint64_t seed = 1;
  PaMode mode = PaMode::Randomized;  // mode used by the verification PA runs
  // Parts to leave out entirely (already served at a smaller guess by the
  // doubling trick). Empty means: build for every part.
  std::vector<char> skip_parts;
};

struct CoreFastResult {
  shortcut::Shortcut sc;
  std::vector<char> part_frozen;   // parts that met the block target
  std::vector<int> frozen_at;      // iteration index, -1 if never
  sim::PhaseStats stats;

  bool all_frozen() const {
    for (char c : part_frozen)
      if (!c) return false;
    return true;
  }
};

// One claiming pass (CoreFast proper) for the given set of participating
// parts. Returns the candidate shortcut (claims of participating parts
// only). All traffic is real engine traffic, including the downward
// root-depth backflow that tells every claimed edge its block root's depth
// (the annotation Algorithm 1's scheduler consumes).
shortcut::Shortcut corefast_claim(sim::Engine& eng, const graph::Partition& p,
                                  const shortcut::SubPartDivision& d,
                                  const tree::SpanningForest& t,
                                  const std::vector<char>& participating,
                                  int congestion_cap);

// Algorithm 4: the claim/verify/freeze loop.
CoreFastResult build_shortcut_random(sim::Engine& eng,
                                     const graph::Partition& p,
                                     const shortcut::SubPartDivision& d,
                                     const tree::SpanningForest& t,
                                     const CoreFastConfig& cfg);

}  // namespace pw::core
