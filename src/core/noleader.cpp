#include "src/core/noleader.hpp"

#include <algorithm>
#include <cmath>

namespace pw::core {

namespace {

enum : std::uint16_t { kPseudoId = 41 };

constexpr std::uint64_t kNone = ~0ULL;

}  // namespace

NoLeaderResult pa_noleader(sim::Engine& eng, const graph::Partition& p,
                           const Agg& agg,
                           const std::vector<std::uint64_t>& values,
                           const PaSolverConfig& cfg) {
  const auto& g = eng.graph();
  const auto snap = eng.snap();
  Rng rng(cfg.seed ^ 0x9d2c5680ULL);

  // Pseudo-part label = its leader's node id (Appendix B lines 1-2).
  std::vector<int> pseudo(g.n());
  for (int v = 0; v < g.n(); ++v) pseudo[v] = v;

  PaSolver solver(eng, cfg);
  std::vector<int> nbr_pseudo(g.num_arcs(), -1);
  std::vector<char> nbr_coin(g.num_arcs(), 0);

  const int cap = 4 * static_cast<int>(std::ceil(std::log2(std::max(2, g.n())))) + 8;
  int rounds_used = 0;
  for (int round = 0;; ++round) {
    PW_CHECK_MSG(round <= cap, "Algorithm 9 coarsening failed to converge");

    // Coins: the pseudo-part leader flips; the flip rides along with the id
    // announcement (one O(log n)-bit message per edge).
    std::vector<char> coin_of(g.n(), 0);  // indexed by pseudo id (= leader)
    for (int v = 0; v < g.n(); ++v)
      if (pseudo[v] == v) coin_of[v] = rng.next_bool(0.5) ? 1 : 0;

    // Announce (pseudo id, coin) to neighbors.
    {
      std::vector<char> sent(g.n(), 0);
      for (int v = 0; v < g.n(); ++v) eng.wake(v);
      eng.run([&](int v) {
        for (const auto& in : eng.inbox(v)) {
          if (in.msg.tag != kPseudoId) continue;
          nbr_pseudo[g.arc_id(v, in.port)] = static_cast<int>(in.msg.a);
          nbr_coin[g.arc_id(v, in.port)] = static_cast<char>(in.msg.b);
        }
        if (sent[v]) return;
        sent[v] = 1;
        for (int port = 0; port < g.degree(v); ++port)
          eng.send(v, port,
                   sim::Msg{kPseudoId, static_cast<std::uint64_t>(pseudo[v]),
                            static_cast<std::uint64_t>(coin_of[pseudo[v]]), 0});
      });
    }

    // Pseudo-partition with known leaders (the label IS the leader id).
    graph::Partition pp = graph::Partition::from_labels(pseudo);
    pp.leader.assign(pp.num_parts, -1);
    for (int v = 0; v < g.n(); ++v)
      if (pseudo[v] == v) pp.leader[pp.part_of[v]] = v;
    solver.set_partition(pp);

    // Line 5: tails pick an edge into an adjacent head pseudo-part of the
    // same input part (the coin-flip star joining). The candidate carries
    // the target pseudo id in its low word.
    std::vector<std::uint64_t> cand(g.n(), kNone);
    bool any_cross = false;
    for (int v = 0; v < g.n(); ++v) {
      for (int port = 0; port < g.degree(v); ++port) {
        const int a = g.arc_id(v, port);
        const int u = g.arcs(v)[port].to;
        if (p.part_of[u] != p.part_of[v]) continue;
        if (nbr_pseudo[a] == pseudo[v]) continue;
        any_cross = true;
        if (coin_of[pseudo[v]] != 0) continue;  // heads never join
        if (nbr_coin[a] == 0) continue;         // join heads only
        const std::uint64_t key =
            (static_cast<std::uint64_t>(g.arc_id(v, port)) << 32) |
            static_cast<std::uint32_t>(nbr_pseudo[a]);
        cand[v] = std::min(cand[v], key);
      }
    }
    if (!any_cross) break;  // pseudo-partition == input partition

    // Lines 6-9: the leader learns the chosen target (PA min) and the whole
    // pseudo-part adopts the target's id/leader (PA broadcast via scatter).
    const auto chosen = solver.aggregate(agg::min(), cand);
    std::vector<std::uint64_t> adopt(g.n(), kNone);
    for (int i = 0; i < pp.num_parts; ++i) {
      const int leader = pp.leader[i];
      if (chosen.part_value[i] == kNone) continue;
      adopt[leader] = chosen.part_value[i] & 0xffffffffULL;  // target pseudo id
    }
    // Broadcast the adoption decision within each pseudo-part: min over
    // (leader's decision, kNone elsewhere).
    const auto decision = solver.aggregate(agg::min(), adopt);
    for (int v = 0; v < g.n(); ++v)
      if (decision.node_value[v] != kNone)
        pseudo[v] = static_cast<int>(decision.node_value[v]);
    rounds_used = round + 1;
  }

  // Line 10: ordinary PA on the coarsened partition (= input partition,
  // with elected leaders).
  graph::Partition final_p = graph::Partition::from_labels(pseudo);
  final_p.leader.assign(final_p.num_parts, -1);
  for (int v = 0; v < g.n(); ++v)
    if (pseudo[v] == v) final_p.leader[final_p.part_of[v]] = v;
  solver.set_partition(final_p);
  const auto res = solver.aggregate(agg, values);

  NoLeaderResult out;
  out.coarsening_rounds = rounds_used;
  out.node_value = res.node_value;
  out.part_value.assign(p.num_parts, agg.identity);
  out.elected_leader.assign(p.num_parts, -1);
  for (int v = 0; v < g.n(); ++v) {
    out.part_value[p.part_of[v]] = res.node_value[v];
    if (pseudo[v] == v) out.elected_leader[p.part_of[v]] = v;
  }
  out.stats = eng.since(snap);
  return out;
}

}  // namespace pw::core
