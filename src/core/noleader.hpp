// Algorithm 9 (Appendix B): Part-Wise Aggregation without known leaders.
//
// The known-leader assumption of Section 4 is dropped by coarsening: every
// node starts as its own singleton pseudo-part P'_v (leader: itself), and
// O(log n) star-joining rounds merge pseudo-parts within input parts until
// the pseudo-partition equals the input partition — at which point every
// part has an elected leader and one ordinary PA call answers the query.
//
// Each coarsening round costs O(1) PA calls on the current pseudo-partition
// (whose leaders are known, maintaining the invariant), so the total
// overhead is the logarithmic factor of Lemma B.1.
//
// Star joinings here use the random-coin variant the paper sketches in
// Section 3.2 ("enforcing this behavior is easily accomplished with random
// coin flips"): each pseudo-part flips a coin; tails pointing at heads
// join. The deterministic alternative is Algorithm 5's Cole-Vishkin
// machinery (implemented for sub-part divisions in
// src/shortcut/subpart_det.cpp); see DESIGN.md §2.
#pragma once

#include "src/core/solver.hpp"

namespace pw::core {

struct NoLeaderResult {
  std::vector<std::uint64_t> part_value;  // per input part
  std::vector<std::uint64_t> node_value;
  std::vector<int> elected_leader;        // per input part
  int coarsening_rounds = 0;
  sim::PhaseStats stats;
};

// p must NOT rely on leaders (any leader entries are ignored).
NoLeaderResult pa_noleader(sim::Engine& eng, const graph::Partition& p,
                           const Agg& agg,
                           const std::vector<std::uint64_t>& values,
                           const PaSolverConfig& cfg = {});

}  // namespace pw::core
