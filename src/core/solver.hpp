// PaSolver — the library's main entry point, realizing Theorem 1.2.
//
// A PaSolver owns the per-graph preprocessing (leader election + BFS tree T,
// Section 2.2) and the per-partition structures (sub-part division +
// T-restricted shortcut). Since the optimal block parameter b and congestion
// c are unknown, the shortcut is built with the doubling trick the paper
// describes in Section 1.3: guesses κ = 1, 2, 4, ... are tried, parts whose
// shortcut verifies (Algorithm 2) freeze at their guess, and the rest
// continue — so every part performs as well as the best shortcut the graph
// admits for it.
//
// Strategies select between the paper's algorithm and the baselines the
// paper argues against (Section 3.1):
//   Ours        — sub-part division + constructed shortcut (Theorem 1.2)
//   NoShortcut  — sub-part trees and cross edges only: round complexity
//                 degrades to the part diameter (the "message-optimal but
//                 round-suboptimal" world)
//   NoSubparts  — every node is its own sub-part, i.e. every node injects
//                 into shortcut blocks: the prior round-optimal shortcut
//                 algorithms whose messages blow up to Ω(nD) on Figure 2a
#pragma once

#include "src/core/corefast.hpp"
#include "src/core/detshortcut.hpp"
#include "src/core/pa_given.hpp"

namespace pw::core {

enum class PaStrategy { Ours, NoShortcut, NoSubparts };

struct PaSolverConfig {
  PaMode mode = PaMode::Randomized;
  PaStrategy strategy = PaStrategy::Ours;
  std::uint64_t seed = 1;
  int corefast_iters_per_guess = 4;
  // Starting κ for the doubling trick (raise when the caller knows a bound).
  int initial_guess = 1;
};

struct PaStructures {
  tree::SpanningForest t;
  tree::HeavyPaths hp;  // deterministic mode only (Algorithm 8 substrate)
  shortcut::SubPartDivision div;
  shortcut::Shortcut sc;
  int diameter_bound = 1;   // height of T (a 2-approximation of D)
  int final_guess = 0;      // κ at which the last part froze (0: no shortcut)
  std::vector<int> frozen_at_guess;  // per part
  sim::PhaseStats tree_stats, division_stats, shortcut_stats;
};

struct PaRunResult {
  std::vector<std::uint64_t> part_value;
  std::vector<std::uint64_t> node_value;
  sim::PhaseStats stats;
};

// Parallelism note: a PaSolver runs on whatever engine it is given — every
// callback in the pipeline honors the shard-safety contract of DESIGN.md §7,
// so constructing the engine with ExecutionPolicy{k > 1} runs the whole
// solve shard-parallel with bit-identical results and accounting
// (tests/apps_parallel_test.cpp). Algorithms that spawn inner engines
// (approx_min_cut's per-trial MSTs) propagate the policy via
// Engine::policy().
class PaSolver {
 public:
  explicit PaSolver(sim::Engine& eng, PaSolverConfig cfg = {});

  // Installs the partition PA queries will run against and builds the
  // per-partition structures. Leaders must be known (Section 4's assumption;
  // see pa_noleader.hpp / Algorithm 9 for dropping it). The partition is
  // copied; repeated aggregate() calls reuse the structures.
  void set_partition(graph::Partition p);

  // Solves one PA instance (Definition 1.1) on the installed partition.
  PaRunResult aggregate(const Agg& agg, const std::vector<std::uint64_t>& values);

  const graph::Partition& partition() const { return part_; }
  const PaStructures& structures() const { return st_; }
  sim::Engine& engine() { return *eng_; }
  const PaSolverConfig& config() const { return cfg_; }

 private:
  void ensure_global();
  void build_division();
  void build_shortcut();

  sim::Engine* eng_;
  PaSolverConfig cfg_;
  Rng rng_;
  graph::Partition part_;
  PaStructures st_;
  bool global_ready_ = false;
  bool partition_ready_ = false;
};

}  // namespace pw::core
