#include "src/core/corefast.hpp"

#include <algorithm>
#include <cmath>

namespace pw::core {

namespace {

enum : std::uint16_t { kClaim = 1, kRootDepth = 2 };

}  // namespace

shortcut::Shortcut corefast_claim(sim::Engine& eng, const graph::Partition& p,
                                  const shortcut::SubPartDivision& d,
                                  const tree::SpanningForest& t,
                                  const std::vector<char>& participating,
                                  int congestion_cap) {
  const auto& g = eng.graph();
  PW_CHECK(congestion_cap >= 1);

  // Per node: distinct parts forwarded up the parent edge (<= cap), whether
  // the parent edge broke, pending claims not yet forwarded, and — for the
  // backflow — which child ports carried each part's claim.
  std::vector<std::vector<int>> forwarded(g.n());
  std::vector<char> broken(g.n(), 0);
  std::vector<std::vector<int>> queue(g.n());  // parts awaiting the parent edge
  std::vector<std::vector<std::pair<int, int>>> claim_children(g.n());
  // Claims the node received but did not forward (it is their block root).
  std::vector<std::vector<int>> rooted(g.n());

  auto offer = [&](int v, int part) {
    // Dedup: drop if already forwarded, queued, or rooted here.
    auto& fwd = forwarded[v];
    if (std::find(fwd.begin(), fwd.end(), part) != fwd.end()) return;
    auto& q = queue[v];
    if (std::find(q.begin(), q.end(), part) != q.end()) return;
    auto& r = rooted[v];
    if (std::find(r.begin(), r.end(), part) != r.end()) return;
    if (t.parent_port[v] < 0 || broken[v] ||
        static_cast<int>(fwd.size()) >= congestion_cap) {
      if (t.parent_port[v] >= 0 &&
          static_cast<int>(fwd.size()) >= congestion_cap)
        broken[v] = 1;  // the edge is saturated; nobody else may use it
      r.push_back(part);
      return;
    }
    q.push_back(part);
  };

  // Phase 1: representatives of participating parts inject claims; claims
  // climb with one message per edge per round (pipelined).
  for (int s = 0; s < d.num_subparts; ++s) {
    const int rep = d.rep_of_subpart[s];
    if (!participating[p.part_of[rep]]) continue;
    offer(rep, p.part_of[rep]);
    eng.wake(rep);
  }
  eng.run([&](int v) {
    for (const auto& in : eng.inbox(v)) {
      if (in.msg.tag != kClaim) continue;
      const int part = static_cast<int>(in.msg.a);
      claim_children[v].push_back({part, in.port});
      offer(v, part);
    }
    if (!queue[v].empty()) {
      const int part = queue[v].front();
      queue[v].erase(queue[v].begin());
      forwarded[v].push_back(part);
      eng.send(v, t.parent_port[v],
               sim::Msg{kClaim, static_cast<std::uint64_t>(part), 0, 0});
      if (!queue[v].empty()) eng.wake(v);
    }
  });

  // Phase 2: backflow — every block root pushes (part, its depth) down the
  // child edges that carried the part's claim, so each claimed edge learns
  // its block root's depth (consumed by Lemma 4.2 scheduling). O(depth)
  // rounds, one message per claimed edge.
  shortcut::Shortcut sc = shortcut::Shortcut::empty(g.n());
  for (int v = 0; v < g.n(); ++v) {
    sc.parts_on[v] = forwarded[v];
    std::sort(sc.parts_on[v].begin(), sc.parts_on[v].end());
    sc.block_root_depth_on[v].assign(sc.parts_on[v].size(), -1);
  }
  auto record_depth = [&](int v, int part, int depth) {
    const auto& parts = sc.parts_on[v];
    const auto it = std::lower_bound(parts.begin(), parts.end(), part);
    PW_CHECK(it != parts.end() && *it == part);
    sc.block_root_depth_on[v][it - parts.begin()] = depth;
  };
  // Per node: pending (part, root depth) notifications to push down.
  std::vector<std::vector<std::pair<int, int>>> notify(g.n());
  for (int v = 0; v < g.n(); ++v) {
    if (rooted[v].empty()) continue;
    for (int part : rooted[v]) notify[v].push_back({part, t.depth[v]});
    eng.wake(v);
  }
  eng.run([&](int v) {
    for (const auto& in : eng.inbox(v)) {
      if (in.msg.tag != kRootDepth) continue;
      const int part = static_cast<int>(in.msg.a);
      const int depth = static_cast<int>(in.msg.b);
      // This node forwarded the claim, so its parent edge is in Hi.
      record_depth(v, part, depth);
      notify[v].push_back({part, depth});
    }
    // Fan notifications out to the child ports that carried each claim; one
    // message per (edge, part) in total, batched one-per-port-per-round.
    std::vector<std::pair<int, std::pair<int, int>>> sends;  // port -> payload
    std::vector<char> port_used(g.degree(v), 0);
    auto& todo = notify[v];
    for (std::size_t k = 0; k < todo.size();) {
      const auto [part, depth] = todo[k];
      bool any_left = false;
      auto& kids = claim_children[v];
      for (std::size_t j = 0; j < kids.size();) {
        if (kids[j].first != part) {
          ++j;
          continue;
        }
        const int port = kids[j].second;
        if (port_used[port]) {
          ++j;
          any_left = true;
          continue;
        }
        port_used[port] = 1;
        sends.push_back({port, {part, depth}});
        kids.erase(kids.begin() + j);
      }
      if (any_left) {
        ++k;  // some children still pending (port conflict); retry next round
      } else {
        todo.erase(todo.begin() + k);
      }
    }
    for (const auto& [port, payload] : sends)
      eng.send(v, port,
               sim::Msg{kRootDepth, static_cast<std::uint64_t>(payload.first),
                        static_cast<std::uint64_t>(payload.second), 0});
    if (!todo.empty()) eng.wake(v);
  });

  // Every claimed edge must know its root depth now.
  for (int v = 0; v < g.n(); ++v)
    for (std::size_t k = 0; k < sc.parts_on[v].size(); ++k)
      PW_CHECK(sc.block_root_depth_on[v][k] >= 0);
  return sc;
}

CoreFastResult build_shortcut_random(sim::Engine& eng,
                                     const graph::Partition& p,
                                     const shortcut::SubPartDivision& d,
                                     const tree::SpanningForest& t,
                                     const CoreFastConfig& cfg) {
  const auto& g = eng.graph();
  const auto snap = eng.snap();
  Rng rng(cfg.seed ^ 0xC0FEFA57ULL);

  int max_iters = cfg.max_iterations;
  if (max_iters <= 0)
    max_iters = 2 * static_cast<int>(std::ceil(std::log2(std::max(2, g.n())))) + 4;

  CoreFastResult out;
  out.sc = shortcut::Shortcut::empty(g.n());
  out.part_frozen.assign(p.num_parts, 0);
  out.frozen_at.assign(p.num_parts, -1);
  std::vector<char> skipped(p.num_parts, 0);
  if (!cfg.skip_parts.empty()) {
    PW_CHECK(static_cast<int>(cfg.skip_parts.size()) == p.num_parts);
    skipped = cfg.skip_parts;
    // Skipped parts count as settled for the termination condition but
    // receive no edges and report part_frozen = 0.
    for (int i = 0; i < p.num_parts; ++i)
      if (skipped[i]) out.part_frozen[i] = 1;
  }

  for (int iter = 0; iter < max_iters && !out.all_frozen(); ++iter) {
    // Line 3: run CoreFast on representatives of active parts. Active parts
    // subsample themselves (probability 1/2 after the first attempt) — the
    // contention halving behind [19, Lemma 4]'s progress guarantee.
    std::vector<char> participating(p.num_parts, 0);
    bool any = false;
    for (int i = 0; i < p.num_parts; ++i) {
      if (out.part_frozen[i]) continue;
      participating[i] = (iter == 0) || rng.next_bool(0.5);
      any = any || participating[i];
    }
    if (!any) continue;

    const auto candidate =
        corefast_claim(eng, p, d, t, participating, cfg.congestion_cap);

    // Lines 4-5: verify the block parameter on the candidate (Algorithm 2)
    // and freeze parts meeting the 3b target.
    PaGivenConfig vcfg;
    vcfg.mode = cfg.mode;
    vcfg.delay_range = cfg.congestion_cap;
    vcfg.seed = rng.next_u64();
    const auto verdict = verify_block_parameter(eng, p, d, candidate, t,
                                                3 * cfg.block_target, vcfg);
    for (int i = 0; i < p.num_parts; ++i) {
      if (out.part_frozen[i] || !participating[i]) continue;
      if (!verdict.part_good[i]) continue;
      out.part_frozen[i] = 1;
      out.frozen_at[i] = iter;
      // Line 6: the newly frozen part keeps its candidate edges.
      for (int v = 0; v < g.n(); ++v) {
        if (!candidate.edge_in_part(v, i)) continue;
        auto& parts = out.sc.parts_on[v];
        parts.insert(std::upper_bound(parts.begin(), parts.end(), i), i);
      }
    }
  }

  for (int i = 0; i < p.num_parts; ++i)
    if (skipped[i]) out.part_frozen[i] = 0;
  shortcut::annotate_block_roots(g, t, out.sc);
  out.stats = eng.since(snap);
  return out;
}

}  // namespace pw::core
