// Algorithm 1: Part-Wise Aggregation given a sub-part division and a
// T-restricted shortcut (Section 4.2 of the paper).
//
// The implementation realizes the paper's three symmetric stages:
//
//   Wave    — the leader li floods a token mi through its part: up its
//             sub-part tree to r(li), through shortcut blocks (BlockRoute,
//             Lemma 4.2 — representatives alone inject into blocks, which is
//             what keeps messages at Õ(m), Observation 4.3), down sub-part
//             trees, and across edges exiting sub-parts (Algorithm 1 lines
//             1-20). Every participant (part members and the Steiner nodes
//             of T that block routes traverse) records the channel it first
//             heard the token on, which assembles a "wave tree" per part.
//   Gather  — f(Pi) is computed at li by convergecast over the wave tree
//             (Algorithm 1 line 21, "symmetrically to lines 1-20": the wave
//             tree's reversal IS that symmetric schedule; it retraces
//             exactly the channels of the wave, so rounds, messages and
//             per-edge congestion match the forward run).
//   Scatter — f(Pi) is broadcast back down the wave tree (line 22).
//
// Contention is resolved per directed edge with the scheduling rule of
// Lemma 4.2: block packets are prioritized by the depth of their block root
// (ties by part id); a queued edge sends one message per round. In
// randomized mode each part additionally delays its start uniformly in [c]
// (Section 4.2), which w.h.p. spreads distinct parts' traffic so only
// O(log n) parts contend per edge.
//
// All traffic is real engine traffic; no analytic charges in this module.
#pragma once

#include "src/graph/partition.hpp"
#include "src/shortcut/shortcut.hpp"
#include "src/shortcut/subpart.hpp"
#include "src/sim/engine.hpp"
#include "src/util/agg.hpp"
#include "src/util/rng.hpp"

namespace pw::core {

enum class PaMode { Deterministic, Randomized };

struct PaGivenConfig {
  PaMode mode = PaMode::Deterministic;
  // Randomized mode draws each part's start delay uniformly from
  // [0, max(1, delay_range)); the paper uses delay_range = c.
  int delay_range = 0;
  std::uint64_t seed = 1;
};

struct PaGivenResult {
  // f(Pi) as computed at each part leader.
  std::vector<std::uint64_t> part_value;
  // Value delivered to each node by the scatter stage (the PA output:
  // node_value[v] == f(P_{part_of[v]}) whenever its part was covered).
  std::vector<std::uint64_t> node_value;
  // Whether the wave reached every member of the part. Coverage can only
  // fail when the provided shortcut's block parameter exceeds the iteration
  // budget implied by its structure — the condition Algorithm 2 tests for.
  std::vector<char> part_covered;
  // Per-part count of shortcut blocks the wave touched (equals the number
  // of blocks of Pi whenever covered; used by Algorithm 2 / Lemma 4.5).
  std::vector<std::uint64_t> blocks_touched;

  bool all_covered() const {
    for (char c : part_covered)
      if (!c) return false;
    return true;
  }

  sim::PhaseStats wave_stats, gather_stats, scatter_stats;
  sim::PhaseStats total() const {
    sim::PhaseStats t = wave_stats;
    t += gather_stats;
    t += scatter_stats;
    return t;
  }
};

// Runs Algorithm 1. Requirements: p has leaders; d is a sub-part division of
// p; s is a T-restricted shortcut for p on tree t (possibly empty).
PaGivenResult pa_given(sim::Engine& eng, const graph::Partition& p,
                       const shortcut::SubPartDivision& d,
                       const shortcut::Shortcut& s,
                       const tree::SpanningForest& t, const Agg& agg,
                       const std::vector<std::uint64_t>& values,
                       const PaGivenConfig& cfg = {});

// Algorithm 2: block-parameter verification. Runs the wave, lets uninformed
// nodes object to their in-part neighbors (one round, their port count in
// messages), and re-runs PA to tell every covered node whether its part
// failed coverage or has more than `b_target` blocks. Returns, per part,
// whether the part is "good": fully covered with at most b_target blocks.
struct VerifyResult {
  std::vector<char> part_good;
  std::vector<std::uint64_t> blocks_counted;
  sim::PhaseStats stats;
};

VerifyResult verify_block_parameter(sim::Engine& eng,
                                    const graph::Partition& p,
                                    const shortcut::SubPartDivision& d,
                                    const shortcut::Shortcut& s,
                                    const tree::SpanningForest& t,
                                    int b_target, const PaGivenConfig& cfg = {});

}  // namespace pw::core
